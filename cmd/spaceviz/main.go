// spaceviz renders nested recursive iteration spaces and their schedules as
// text, reproducing the paper's Fig 1(c) (original order) and Fig 4(b)
// (twisted order). With -irregular it also shows the Fig 6(a) space, where
// an outer-dependent truncation skips part of one column.
//
// Usage:
//
//	spaceviz                       # 7x7 paper example, all schedules
//	spaceviz -height 3             # 15x15 trees
//	spaceviz -schedule twisted     # one schedule only
//	spaceviz -irregular            # the Fig 6(a) irregular space
package main

import (
	"flag"
	"fmt"
	"os"

	"twist/internal/nest"
	"twist/internal/sched"
	"twist/internal/transform/algebra"
	"twist/internal/tree"
)

func main() {
	var (
		height    = flag.Int("height", 2, "height of both perfect trees (2 gives the paper's 7-node example)")
		schedule  = flag.String("schedule", "all", "schedule: all, or any schedule-algebra expression (original, interchanged, twisted, twisted-cutoff[:N], stripmine(N)\u2218twist(flagged), ...)")
		cutoff    = flag.Int("cutoff", -1, "if >= 0, render twisted-with-cutoff instead of parameterless twisting")
		irregular = flag.Bool("irregular", false, "apply the Fig 6(a) truncation: skip (B,2) and its descendants")
		order     = flag.Bool("order", false, "also print the schedule as a (label,label) sequence")
	)
	flag.Parse()

	outer := tree.NewPerfect(*height)
	inner := tree.NewPerfect(*height)
	spec := nest.Spec{Outer: outer, Inner: inner, Work: func(o, i tree.NodeID) {}}
	if *irregular {
		// Fig 6(a): the inner recursion truncates at (B, 2); with perfect
		// trees and preorder IDs, B is outer node 1 and 2 is inner node 1.
		spec.TruncInner2 = func(o, i tree.NodeID) bool { return o == 1 && i == 1 }
	}

	var variants []nest.Variant
	if *schedule == "all" {
		variants = []nest.Variant{nest.Original(), nest.Interchanged(), nest.Twisted()}
	} else {
		sc, err := algebra.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spaceviz: %v\n", err)
			os.Exit(2)
		}
		variants = []nest.Variant{sc.Variant()}
	}
	if *cutoff >= 0 {
		// Back-compat: -cutoff upgrades the plain twisted schedule.
		for k, v := range variants {
			if v == nest.Twisted() {
				variants[k] = nest.TwistedCutoff(*cutoff)
			}
		}
	}

	for _, v := range variants {
		pairs, err := sched.Record(spec, v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spaceviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("== %s schedule (%d iterations) ==\n", v, len(pairs))
		fmt.Print(sched.Grid(outer, inner, pairs))
		if *order {
			fmt.Println()
			fmt.Print(sched.Order(outer, inner, pairs, inner.Len()))
		}
		fmt.Println()
	}
}
