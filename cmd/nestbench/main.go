// nestbench regenerates the tables and figures of the paper's evaluation
// (§6, §7.1). Each experiment prints the rows the paper plots; EXPERIMENTS.md
// records a reference run and names, for every table, the invocation that
// regenerates it.
//
// Usage:
//
//	nestbench -exp all                   # every experiment at default scales
//	nestbench -exp fig5 -n 1024          # reuse-distance CDF (Fig 5)
//	nestbench -exp fig7 -scale 16384     # speedups across the six benchmarks
//	nestbench -exp fig8a|fig8b           # instruction overhead / miss rates
//	nestbench -exp fig9                  # PC input-size sweep
//	nestbench -exp fig10                 # PC cutoff study
//	nestbench -exp iters                 # §4.2 iteration counts
//	nestbench -exp inventory             # benchmark inventory (§6.1)
//	nestbench -exp layout                # arena layout × schedule miss rates
//	nestbench -exp bench -variant ...    # suite under one schedule
//	nestbench -exp bench -layout veb     # ... under a repacked arena layout
//	nestbench -oracle                    # semantic-equivalence smoke (§4.9)
//
// Observability (DESIGN.md §4.7):
//
//	nestbench -exp fig7 -json BENCH_fig7.json       # record a baseline
//	nestbench -exp fig7 -baseline BENCH_fig7.json   # regression-check a fresh
//	                                                # run against it (exit 1 on
//	                                                # deterministic mismatch)
//	nestbench -exp all -json out/                   # one BENCH_<exp>.json per
//	                                                # experiment into out/
//	nestbench -exp fig8b -telemetry events.jsonl    # stream counters/timers
//	nestbench -exp fig7 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Run nestbench -h for the per-experiment flag matrix: each experiment
// honors only the flags listed for it and silently leaves the rest to their
// defaults.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"text/tabwriter"
	"time"

	"twist/internal/experiments"
	"twist/internal/layout"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/oracle"
	"twist/internal/transform/algebra"
	"twist/internal/workloads"
)

// opts carries every flag value an experiment might honor.
type opts struct {
	scale      int
	scaleSet   bool // -scale given explicitly (oracle shrinks its default)
	n          int
	pcN        int
	radius     float64
	seed       int64
	repeats    int
	workers    int
	simWorkers int
	variant    nest.Variant
	raw        string // -variant as typed, for params
	layout     layout.Kind
	engine     nest.Engine
}

// experiment is one registered harness. run prints the human-readable table
// and returns the machine-checkable report (nil when the experiment has no
// meaningful report, like inventory). flags lists exactly the flags the
// harness honors — the matrix printed by -h and mirrored in README.md.
type experiment struct {
	name  string
	title string
	flags string
	inAll bool
	run   func(o opts) (*obs.Report, error)
}

var registry = []experiment{
	{"inventory", "inventory (§6.1 benchmarks)", "-scale -seed", true, inventory},
	{"fig5", "fig5: reuse-distance CDF, tree join", "-n -seed", true, fig5},
	{"fig7", "fig7: speedup of recursion twisting", "-scale -seed -repeats -workers -simworkers -geometry", true, fig7},
	{"fig8a", "fig8a: instruction overhead (op model)", "-scale -seed", true, fig8a},
	{"fig8b", "fig8b: simulated L2/L3 miss rates", "-scale -seed -workers -simworkers -geometry", true, fig8b},
	{"fig9", "fig9: PC across input sizes", "-radius -seed -repeats -workers -simworkers -geometry", true, fig9},
	{"fig10", "fig10: PC cutoff study (§7.1)", "-pcn -radius -seed -repeats -workers", true, fig10},
	{"ablation", "ablation: flag modes / subtree truncation / node stride (DESIGN.md §4.5)", "-pcn -radius -seed -repeats -geometry", true, ablation},
	{"kary", "kary: octree (8-ary) point correlation extension (§2.1 generality)", "-pcn -seed -geometry", true, kary},
	{"layout", "layout: arena layout × schedule miss rates (DESIGN.md §4.12)", "-scale -seed -simworkers -geometry", true, layoutExp},
	{"wallclock", "wallclock: iterative vs recursive visit engine (DESIGN.md §4.13)", "-scale -seed -repeats", true, wallclock},
	{"iters", "iters: §4.2 iteration counts, PC", "-pcn -radius -seed", true, iters},
	{"bench", "bench: suite under one schedule", "-scale -seed -repeats -workers -variant -layout -engine", false, bench},
	{"oracle", "oracle: semantic-equivalence smoke (DESIGN.md §4.9)", "-scale -seed -workers", false, oracleSmoke},
	{"schedules", "schedules: algebra enumeration, legality × oracle", "-scale -seed", false, schedulesExp},
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "Usage: nestbench [flags]\n\nFlags:\n")
	fs.PrintDefaults()
	fmt.Fprintf(w, "\nExperiments and the flags each honors (all others are ignored):\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  experiment\thonored flags\tnotes")
	for _, ex := range registry {
		note := ""
		switch ex.name {
		case "fig8b", "fig9":
			note = "-workers > 1 = merge-mode simulation (nondeterministic; report rates become noisy)"
		case "fig7":
			note = "-workers >= 1 adds the §7.3 parallel columns; -simworkers >= 1 adds the sim-engine columns"
		case "fig10":
			note = "-workers >= 1 times all schedules under the work-stealing executor"
		case "layout":
			note = "the \"wins\" row is the CI-gated acceptance signal (DESIGN.md §4.12)"
		case "wallclock":
			note = "the engine-ops reduction is the CI-gated acceptance signal (DESIGN.md §4.13); walls are noisy"
		case "bench":
			note = "not part of -exp all"
		case "oracle":
			note = "not part of -exp all; -scale defaults to 512 here (golden traces are materialized)"
		case "schedules":
			note = "not part of -exp all; -scale defaults to 512 here (golden traces are materialized)"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", ex.name, ex.flags, note)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nBaselines: -json writes BENCH_<exp>.json (a directory when several experiments\nrun); -baseline re-checks a single experiment against a committed baseline and\nexits 1 on a deterministic mismatch (wall-clock drift warns unless -strict-wall).\n")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main, parameterized for tests. Exit-code
// vocabulary: 0 success, 1 runtime failure (an experiment, baseline check,
// or output file failed), 2 usage error (bad flags, unknown experiment,
// invalid flag combinations — always accompanied by the usage text on
// stderr).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nestbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "experiment: fig5, fig7, fig8a, fig8b, fig9, fig10, iters, ablation, kary, layout, wallclock, inventory, bench, all")
		scale      = fs.Int("scale", 16384, "suite scale for fig7/fig8a/fig8b/bench (points per dual-tree benchmark)")
		n          = fs.Int("n", 1024, "tree size for fig5")
		pcN        = fs.Int("pcn", 8192, "PC input size for fig10/ablation/kary/iters")
		radius     = fs.Float64("radius", 0.4, "PC correlation radius")
		seed       = fs.Int64("seed", 42, "workload seed")
		repeats    = fs.Int("repeats", 3, "wall-clock repetitions (best is kept)")
		workers    = fs.Int("workers", 0, "parallel dimension (see -h flag matrix): 0 = off")
		simWorkers = fs.Int("simworkers", 1, "cache-simulation shard workers: <= 1 sequential, > 1 set-partitioned parallel engine (stats bit-identical either way)")
		geometry   = fs.String("geometry", "", "simulated cache hierarchy, e.g. \"32K/64:8,256K/64:8,20M/64:20\" (empty = scaled default)")
		variant    = fs.String("variant", "twisted", "schedule for -exp bench, legacy variant form (original, interchanged, twisted, twisted-cutoff[:N]); alias for -schedule")
		schedule   = fs.String("schedule", "", "schedule for -exp bench as an algebra expression, e.g. \"stripmine(64)\u2218twist(flagged)\" (mutually exclusive with -variant)")
		layoutF    = fs.String("layout", "", "arena layout for -exp bench: buildorder, hotcold, preorder, schedule, veb (empty = legacy build-order)")
		engineF    = fs.String("engine", "", "visit engine for -exp bench: recursive or iterative (empty = recursive; bit-identical stats either way, DESIGN.md §4.13)")
		oracleRun  = fs.Bool("oracle", false, "shorthand for -exp oracle: semantic-equivalence smoke over the suite")
		jsonOut    = fs.String("json", "", "write BENCH_<exp>.json report(s): a file path for one experiment, a directory when several run")
		baseline   = fs.String("baseline", "", "compare a single experiment's fresh run against this committed BENCH_<exp>.json")
		wallTol    = fs.Float64("wall-tol", 4, "noisy-signal tolerance band for -baseline (fresh within baseline/tol..baseline*tol)")
		wallFloor  = fs.Float64("wall-floor", 0.05, "ignore noisy drift below this absolute difference (seconds for wall clocks)")
		strictWall = fs.Bool("strict-wall", false, "treat wall-clock-only drift as a failure (exit 1), not a warning")
		telemetry  = fs.String("telemetry", "", "stream telemetry events as JSON lines to this file (\"-\" = stderr)")
		cpuProf    = fs.String("cpuprofile", "", "capture a pprof CPU profile of the whole run to this file")
		memProf    = fs.String("memprofile", "", "capture a pprof heap profile after the run to this file")
	)
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		// The flag package already printed the error and called fs.Usage.
		return 2
	}
	if *oracleRun {
		*exp = "oracle"
	}
	scaleSet, variantSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scale":
			scaleSet = true
		case "variant":
			variantSet = true
		}
	})

	// usageFail is for errors the usage text explains (unknown experiment,
	// invalid flag values or combinations): message + usage, exit 2.
	usageFail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "nestbench: "+format+"\n\n", args...)
		usage(fs, stderr)
		return 2
	}
	// fail is for runtime errors (filesystem, profiles, telemetry): the
	// flags were fine, the run failed — exit 1, no usage wall.
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "nestbench: "+format+"\n", args...)
		return 1
	}

	expr := *variant
	if *schedule != "" {
		if variantSet {
			return usageFail("-schedule and -variant are mutually exclusive")
		}
		expr = *schedule
	}
	sched, err := algebra.ParseSchedule(expr)
	if err != nil {
		return usageFail("%v", err)
	}
	if sched.InlineDepth() > 0 {
		return usageFail("inline(K) is a code-generation transformation; the engine cannot execute %q (use cmd/twist -schedules)", expr)
	}
	v := sched.Variant()
	lk, err := layout.ParseKind(*layoutF)
	if err != nil {
		return usageFail("%v", err)
	}
	eng := nest.EngineRecursive
	if *engineF != "" {
		if eng, err = nest.ParseEngine(*engineF); err != nil {
			return usageFail("%v", err)
		}
	}
	if *geometry != "" {
		levels, err := memsim.ParseGeometry(*geometry)
		if err != nil {
			return usageFail("%v", err)
		}
		experiments.SetGeometry(levels)
	}
	o := opts{
		scale: *scale, scaleSet: scaleSet, n: *n, pcN: *pcN, radius: *radius,
		seed: *seed, repeats: *repeats, workers: *workers, simWorkers: *simWorkers,
		variant: v, raw: expr, layout: lk, engine: eng,
	}

	var selected []experiment
	for _, ex := range registry {
		if *exp == ex.name || (*exp == "all" && ex.inAll) {
			selected = append(selected, ex)
		}
	}
	if len(selected) == 0 {
		return usageFail("unknown experiment %q", *exp)
	}
	if *baseline != "" && len(selected) != 1 {
		return usageFail("-baseline needs a single experiment (-exp %s selects %d)", *exp, len(selected))
	}

	// Telemetry sinks: every experiment aggregates into a fresh Memory
	// recorder (snapshotted into its report); -telemetry additionally
	// streams every event as JSON lines.
	var jsonl *obs.JSONLines
	if *telemetry != "" {
		var w io.Writer = stderr
		if *telemetry != "-" {
			f, err := os.Create(*telemetry)
			if err != nil {
				return fail("%v", err)
			}
			defer f.Close()
			w = f
		}
		jsonl = obs.NewJSONLines(w)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "nestbench: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "nestbench: %v\n", err)
			}
		}()
	}

	exit := 0
	for _, ex := range selected {
		mem := obs.NewMemory()
		if jsonl != nil {
			experiments.SetRecorder(obs.Tee(mem, jsonl))
		} else {
			experiments.SetRecorder(mem)
		}
		fmt.Fprintf(stdout, "== %s ==\n", ex.title)
		rep, err := ex.run(o)
		experiments.SetRecorder(nil)
		if err != nil {
			fmt.Fprintf(stderr, "nestbench: %s: %v\n", ex.name, err)
			return 1
		}
		fmt.Fprintln(stdout)
		if rep == nil {
			continue
		}
		rep.Telemetry = mem.Counters()

		if *jsonOut != "" {
			path := *jsonOut
			if len(selected) > 1 {
				if err := os.MkdirAll(path, 0o755); err != nil {
					return fail("%v", err)
				}
				path = filepath.Join(path, "BENCH_"+ex.name+".json")
			}
			if err := rep.WriteFile(path); err != nil {
				return fail("%v", err)
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}

		if *baseline != "" {
			base, err := obs.ReadReport(*baseline)
			if err != nil {
				return fail("%v", err)
			}
			verdict, diffs := obs.Compare(base, rep, obs.CompareOptions{Tolerance: *wallTol, Floor: *wallFloor})
			fmt.Fprintf(stdout, "baseline check (%s): %v\n", *baseline, verdict)
			for _, d := range diffs {
				fmt.Fprintf(stdout, "  %s\n", d)
			}
			switch verdict {
			case obs.DetMismatch:
				exit = 1
			case obs.WallDrift:
				if *strictWall {
					exit = 1
				} else {
					fmt.Fprintln(stdout, "  (wall-clock drift only; pass -strict-wall to fail on this)")
				}
			}
		}
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fail("telemetry: %v", err)
		}
	}
	return exit
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// params assembles a report's Params map from the honored flag set.
func params(o opts, keys ...string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		switch k {
		case "scale":
			out[k] = strconv.Itoa(o.scale)
		case "n":
			out[k] = strconv.Itoa(o.n)
		case "pcn":
			out[k] = strconv.Itoa(o.pcN)
		case "radius":
			out[k] = obs.FormatFloat(o.radius)
		case "seed":
			out[k] = strconv.FormatInt(o.seed, 10)
		case "repeats":
			out[k] = strconv.Itoa(o.repeats)
		case "workers":
			out[k] = strconv.Itoa(o.workers)
		case "simworkers":
			out[k] = strconv.Itoa(o.simWorkers)
		case "geometry":
			// The resolved geometry, not the raw flag: a baseline pins the
			// hierarchy it was measured on even when the flag was defaulted.
			out[k] = experiments.GeometryString()
		case "variant":
			out[k] = o.variant.String()
		case "layout":
			out[k] = o.layout.String()
		case "engine":
			out[k] = o.engine.String()
		default:
			panic("nestbench: unknown param " + k)
		}
	}
	return out
}

func inventory(o opts) (*obs.Report, error) {
	w := table()
	fmt.Fprintln(w, "bench\tdescription")
	for _, in := range workloads.Suite(o.scale, o.seed) {
		fmt.Fprintf(w, "%s\t%s\n", in.Name, in.Description)
	}
	return nil, w.Flush()
}

func fig5(o opts) (*obs.Report, error) {
	rows := experiments.Fig5(o.n, o.seed)
	rep := obs.NewReport("fig5", params(o, "n", "seed"))
	w := table()
	fmt.Fprintln(w, "r\toriginal CDF\ttwisted CDF")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", r.R, r.Original, r.Twisted)
		rep.AddRow(fmt.Sprintf("r=%d", r.R)).
			DetFloat("original_cdf", r.Original).
			DetFloat("twisted_cdf", r.Twisted)
	}
	return rep, w.Flush()
}

func fig7(o opts) (*obs.Report, error) {
	rows, err := experiments.Fig7(o.scale, o.seed, o.repeats, o.workers, o.simWorkers)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("fig7", params(o, "scale", "seed", "repeats", "workers", "simworkers", "geometry"))
	w := table()
	hdr := "bench\tbaseline\ttwisted\tspeedup"
	if o.workers >= 1 {
		hdr += fmt.Sprintf("\tpar w=1\tpar w=%d\tpar speedup", o.workers)
	}
	if o.simWorkers >= 1 {
		hdr += fmt.Sprintf("\tsim seq\tsim w=%d\tsim speedup\tsim L2\tsim L3", o.simWorkers)
	}
	fmt.Fprintln(w, hdr)
	for _, r := range rows {
		row := rep.AddRow(r.Bench).
			DetUint("checksum", r.Checksum).
			NoisySeconds("baseline", r.Baseline).
			NoisySeconds("twisted", r.Twisted).
			NoisyVal("speedup", r.Speedup)
		line := fmt.Sprintf("%s\t%v\t%v\t%.2fx", r.Bench, r.Baseline, r.Twisted, r.Speedup)
		if o.workers >= 1 {
			line += fmt.Sprintf("\t%v\t%v\t%.2fx", r.Par1, r.ParN, r.ParSpeedup)
			row.NoisySeconds("par1", r.Par1).
				NoisySeconds("parN", r.ParN).
				NoisyVal("par_speedup", r.ParSpeedup)
		}
		if o.simWorkers >= 1 {
			line += fmt.Sprintf("\t%v\t%v\t%.2fx\t%.1f%%\t%.1f%%",
				r.SimSeq, r.SimPar, r.SimSpeedup, 100*r.SimL2, 100*r.SimL3)
			// The sim miss rates are deterministic — both engines produced
			// them bit-identically or Fig7 would have errored, which is the
			// parallel-vs-sequential gate the CI baseline check leans on.
			row.NoisySeconds("sim_seq", r.SimSeq).
				NoisySeconds("sim_par", r.SimPar).
				NoisyVal("sim_speedup", r.SimSpeedup).
				DetFloat("sim_l2", r.SimL2).
				DetFloat("sim_l3", r.SimL3)
		}
		fmt.Fprintln(w, line)
	}
	geo := experiments.GeoMean(rows)
	fmt.Fprintf(w, "geomean\t\t\t%.2fx\n", geo)
	rep.AddRow("geomean").NoisyVal("speedup", geo)
	return rep, w.Flush()
}

func bench(o opts) (*obs.Report, error) {
	repeats := o.repeats
	if repeats < 1 {
		repeats = 1
	}
	rep := obs.NewReport("bench", params(o, "scale", "seed", "repeats", "workers", "variant", "layout", "engine"))
	w := table()
	fmt.Fprintln(w, "bench\tschedule\twall\titerations\twork\tchecksum")
	for _, in := range workloads.Suite(o.scale, o.seed) {
		// -layout repacks the arena the run's traced addresses would be
		// generated under and carries the dimension with the run
		// (RunConfig.Layout). The semantic columns — iterations, work,
		// checksum — must come out identical to the legacy arena: a layout
		// renames storage slots and nothing else (DESIGN.md §4.12).
		run := in
		var cfgLayout string
		if o.layout != layout.BuildOrder {
			lin, err := in.UnderLayout(o.layout, o.variant)
			if err != nil {
				return nil, err
			}
			run = lin
			cfgLayout = o.layout.String()
		}
		var st nest.Stats
		var best time.Duration
		mode := "seq"
		for k := 0; k < repeats; k++ {
			start := time.Now()
			if o.workers >= 1 {
				res, err := run.RunWith(nest.RunConfig{Variant: o.variant, Engine: o.engine, Workers: o.workers, Stealing: true, Layout: cfgLayout})
				if err != nil {
					return nil, err
				}
				if k > 0 && res.Stats != st {
					return nil, fmt.Errorf("bench: %s merged stats not deterministic across runs", in.Name)
				}
				st = res.Stats
				mode = fmt.Sprintf("w=%d", o.workers)
			} else {
				var err error
				if st, _, err = run.RunSeq(nil, o.variant, func(e *nest.Exec) { e.Engine = o.engine }); err != nil {
					return nil, err
				}
			}
			if wall := time.Since(start); k == 0 || wall < best {
				best = wall
			}
		}
		if o.engine != nest.EngineRecursive {
			mode += "/" + o.engine.String()
		}
		fmt.Fprintf(w, "%s\t%v (%s)\t%v\t%d\t%d\t%#x\n",
			in.Name, o.variant, mode, best, st.Iterations, st.Work, in.Checksum())
		rep.AddRow(in.Name).
			DetInt("iterations", st.Iterations).
			DetInt("work", st.Work).
			DetUint("checksum", in.Checksum()).
			NoisySeconds("wall", best)
	}
	return rep, w.Flush()
}

func fig8a(o opts) (*obs.Report, error) {
	rows := experiments.Fig8a(o.scale, o.seed)
	rep := obs.NewReport("fig8a", params(o, "scale", "seed"))
	w := table()
	fmt.Fprintln(w, "bench\tbaseline ops\ttwisted ops\toverhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%+.1f%%\n", r.Bench, r.BaselineOps, r.TwistedOps, 100*r.Overhead)
		rep.AddRow(r.Bench).
			DetInt("baseline_ops", r.BaselineOps).
			DetInt("twisted_ops", r.TwistedOps).
			DetFloat("overhead", r.Overhead)
	}
	return rep, w.Flush()
}

func fig8b(o opts) (*obs.Report, error) {
	rows, err := experiments.Fig8b(o.scale, o.seed, o.workers, o.simWorkers)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("fig8b", params(o, "scale", "seed", "workers", "simworkers", "geometry"))
	det := o.workers <= 1 // merge-mode interleaving is nondeterministic
	w := table()
	fmt.Fprintln(w, "bench\tL2 base\tL2 twisted\tL3 base\tL3 twisted")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Bench, 100*r.BaseL2, 100*r.TwistL2, 100*r.BaseL3, 100*r.TwistL3)
		row := rep.AddRow(r.Bench)
		rateSignal(row, det, "l2_base", r.BaseL2)
		rateSignal(row, det, "l2_twisted", r.TwistL2)
		rateSignal(row, det, "l3_base", r.BaseL3)
		rateSignal(row, det, "l3_twisted", r.TwistL3)
	}
	return rep, w.Flush()
}

func fig9(o opts) (*obs.Report, error) {
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768}
	rows, err := experiments.Fig9(sizes, o.radius, o.seed, o.repeats, o.workers, o.simWorkers)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("fig9", params(o, "radius", "seed", "repeats", "workers", "simworkers", "geometry"))
	det := o.workers <= 1
	w := table()
	fmt.Fprintln(w, "n\tspeedup\tL2 base\tL2 twisted\tL3 base\tL3 twisted")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2fx\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.N, r.Speedup, 100*r.BaseL2, 100*r.TwistL2, 100*r.BaseL3, 100*r.TwistL3)
		row := rep.AddRow(fmt.Sprintf("n=%d", r.N)).NoisyVal("speedup", r.Speedup)
		rateSignal(row, det, "l2_base", r.BaseL2)
		rateSignal(row, det, "l2_twisted", r.TwistL2)
		rateSignal(row, det, "l3_base", r.BaseL3)
		rateSignal(row, det, "l3_twisted", r.TwistL3)
	}
	return rep, w.Flush()
}

// rateSignal files a simulated miss rate as deterministic (single-sink
// streaming order) or noisy (merge mode, workers > 1).
func rateSignal(row *obs.Row, det bool, name string, v float64) {
	if det {
		row.DetFloat(name, v)
	} else {
		row.NoisyVal(name, v)
	}
}

func fig10(o opts) (*obs.Report, error) {
	cutoffs := []int{16, 64, 256, 1024, 4096}
	rows, err := experiments.Fig10(o.pcN, o.radius, cutoffs, o.seed, o.repeats, o.workers)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("fig10", params(o, "pcn", "radius", "seed", "repeats", "workers"))
	w := table()
	fmt.Fprintln(w, "cutoff\tinstr overhead\tspeedup")
	for _, r := range rows {
		name := fmt.Sprint(r.Cutoff)
		if r.Cutoff < 0 {
			name = "parameterless"
		}
		fmt.Fprintf(w, "%s\t%+.1f%%\t%.2fx\n", name, 100*r.Overhead, r.Speedup)
		rep.AddRow("cutoff="+name).
			DetFloat("overhead", r.Overhead).
			NoisyVal("speedup", r.Speedup)
	}
	return rep, w.Flush()
}

func iters(o opts) (*obs.Report, error) {
	rows := experiments.TblIters(o.pcN, o.radius, o.seed)
	rep := obs.NewReport("iters", params(o, "pcn", "radius", "seed"))
	w := table()
	fmt.Fprintln(w, "schedule\titerations\twork\toverhead vs original")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%+.1f%%\n", r.Schedule, r.Iterations, r.Work, 100*r.Overhead)
		rep.AddRow(r.Schedule).
			DetInt("iterations", r.Iterations).
			DetInt("work", r.Work).
			DetFloat("overhead", r.Overhead)
	}
	return rep, w.Flush()
}

func ablation(o opts) (*obs.Report, error) {
	rep := obs.NewReport("ablation", params(o, "pcn", "radius", "seed", "repeats", "geometry"))
	w := table()
	fmt.Fprintln(w, "flag mode\tflag sets\tflag clears\tmodel ops\twall")
	for _, r := range experiments.AblationFlags(o.pcN, o.radius, o.seed, o.repeats) {
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%v\n", r.Mode, r.FlagSets, r.FlagClears, r.Ops, r.Wall)
		rep.AddRow(fmt.Sprintf("flags/%v", r.Mode)).
			DetInt("flag_sets", r.FlagSets).
			DetInt("flag_clears", r.FlagClears).
			DetInt("ops", r.Ops).
			NoisySeconds("wall", r.Wall)
	}
	fmt.Fprintln(w, "\nsubtree truncation\titerations\tcuts\twall")
	for _, r := range experiments.AblationSubtree(o.pcN, o.radius, o.seed, o.repeats) {
		fmt.Fprintf(w, "%v\t%d\t%d\t%v\n", r.Enabled, r.Iterations, r.SubtreeCuts, r.Wall)
		rep.AddRow(fmt.Sprintf("subtree/%v", r.Enabled)).
			DetInt("iterations", r.Iterations).
			DetInt("subtree_cuts", r.SubtreeCuts).
			NoisySeconds("wall", r.Wall)
	}
	fmt.Fprintln(w, "\nnode stride\tL3 base\tL3 twisted\tL3 base misses\tL3 twisted misses")
	for _, r := range experiments.AblationStride(o.pcN, []int{64, 32, 16}, o.seed) {
		fmt.Fprintf(w, "%dB\t%.1f%%\t%.1f%%\t%d\t%d\n",
			r.Stride, 100*r.BaseL3, 100*r.TwistL3, r.BaseL3Misses, r.TwistL3Misses)
		rep.AddRow(fmt.Sprintf("stride/%dB", r.Stride)).
			DetFloat("l3_base", r.BaseL3).
			DetFloat("l3_twisted", r.TwistL3).
			DetInt("l3_base_misses", r.BaseL3Misses).
			DetInt("l3_twisted_misses", r.TwistL3Misses)
	}
	return rep, w.Flush()
}

// oracleSmoke runs the internal/oracle differential suite over the six
// workloads: every engine variant (both flag modes) and a grid of parallel
// schedules (workers × executors) must be permutation-equivalent to the
// captured golden trace (DESIGN.md §4.9). The first failing verdict aborts
// the run with its minimized counterexample (exit 1) — the CI-facing smoke
// complement to the exhaustive go test suite.
func oracleSmoke(o opts) (*obs.Report, error) {
	if !o.scaleSet {
		o.scale = 512 // golden traces are materialized; the timing default is too big
	}
	workerGrid := []int{1, 4, 8}
	if o.workers >= 1 {
		workerGrid = []int{1}
		if o.workers > 1 {
			workerGrid = append(workerGrid, o.workers)
		}
	}
	variants := []nest.Variant{nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(64)}

	rep := obs.NewReport("oracle", params(o, "scale", "seed", "workers"))
	w := table()
	fmt.Fprintln(w, "bench\tvisits\ttruncs\tcolumns\tdigest\tchecks")
	for _, in := range workloads.Suite(o.scale, o.seed) {
		spec := in.OracleSpec()
		g, err := oracle.Capture(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", in.Name, err)
		}
		checks := 0
		for _, v := range variants {
			for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
				if verdict := g.CheckVariant(spec, v, fm, true); !verdict.OK {
					return nil, fmt.Errorf("%s: %v", in.Name, verdict.Err())
				}
				checks++
			}
		}
		for _, workers := range workerGrid {
			for _, stealing := range []bool{false, true} {
				cfg := nest.RunConfig{Variant: nest.Twisted(), Workers: workers, Stealing: stealing}
				verdict, err := g.CheckParallel(spec, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", in.Name, err)
				}
				if !verdict.OK {
					return nil, fmt.Errorf("%s: %v", in.Name, verdict.Err())
				}
				checks++
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%#016x\t%d ok\n",
			in.Name, g.Visits(), len(g.Truncs), g.Columns(), g.Digest(), checks)
		rep.AddRow(in.Name).
			DetInt("visits", int64(g.Visits())).
			DetInt("truncs", int64(len(g.Truncs))).
			DetInt("columns", int64(g.Columns())).
			DetUint("digest", g.Digest()).
			DetUint("column_digest", g.ColumnDigest()).
			DetInt("checks", int64(checks))
	}
	return rep, w.Flush()
}

// schedulesExp enumerates the schedule algebra over the suite
// (experiments.Schedules): legality verdicts with the violated dependence
// witnesses, and an oracle differential over every legal lowering.
func schedulesExp(o opts) (*obs.Report, error) {
	if !o.scaleSet {
		o.scale = 512 // golden traces are materialized; the timing default is too big
	}
	rows, err := experiments.Schedules(o.scale, o.seed)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("schedules", params(o, "scale", "seed"))
	w := table()
	fmt.Fprintln(w, "bench\tschedule\tvariant\tlegal\toracle\twitness")
	for _, r := range rows {
		legal, check := "yes", "ok"
		if !r.Legal {
			legal, check = "no", "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n", r.Workload, r.Schedule, r.Variant, legal, check, r.Witness)
		rep.AddRow(r.Workload+" "+r.Schedule).
			DetString("variant", r.Variant).
			DetInt("legal", boolInt(r.Legal)).
			DetInt("oracle_ok", boolInt(r.OracleOK))
	}
	return rep, w.Flush()
}

// boolInt renders a verdict as a deterministic report integer.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// layoutExp sweeps the layout × schedule product (DESIGN.md §4.12): every
// arena layout under the original and twisted schedules, six benchmarks,
// deterministic simulated L2/L3 signals. The closing "wins" row counts the
// benchmarks where a reordering layout (schedule-order or vEB) strictly
// beats build-order on miss counts — the committed BENCH_layout.json pins
// it and CI asserts it stays >= 2.
func layoutExp(o opts) (*obs.Report, error) {
	rows, err := experiments.LayoutSweep(o.scale, o.seed, o.simWorkers)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("layout", params(o, "scale", "seed", "simworkers", "geometry"))
	w := table()
	fmt.Fprintln(w, "bench\tschedule\tlayout\tL2\tL3\tL2 misses\tL3 misses")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f%%\t%.1f%%\t%d\t%d\n",
			r.Bench, r.Schedule, r.Layout, 100*r.L2, 100*r.L3, r.L2Misses, r.L3Misses)
		rep.AddRow(fmt.Sprintf("%s/%s/%s", r.Bench, r.Schedule, r.Layout)).
			DetFloat("l2", r.L2).
			DetFloat("l3", r.L3).
			DetInt("l2_misses", r.L2Misses).
			DetInt("l3_misses", r.L3Misses).
			DetInt("accesses", r.Accesses)
	}
	wins := experiments.LayoutWins(rows)
	fmt.Fprintf(w, "\nreordering wins\t%d benchmarks beat buildorder\n", wins)
	rep.AddRow("wins").DetInt("benchmarks", int64(wins))
	return rep, w.Flush()
}

// wallclock compares the two visit engines on the twisted schedule across
// the suite (DESIGN.md §4.13). The deterministic signals — per-benchmark
// engine-ops counters, their reduction, and the checksums — are what the
// committed BENCH_wallclock.json pins (CI additionally asserts the reduction
// stays >= 30%); both wall clocks and their speedup ride along as noisy
// corroboration.
func wallclock(o opts) (*obs.Report, error) {
	rows, err := experiments.Wallclock(o.scale, o.seed, o.repeats)
	if err != nil {
		return nil, err
	}
	rep := obs.NewReport("wallclock", params(o, "scale", "seed", "repeats"))
	w := table()
	fmt.Fprintln(w, "bench\trecursive ops\titerative ops\treduction\trecursive wall\titerative wall\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t-%.1f%%\t%v\t%v\t%.2fx\n",
			r.Bench, r.RecursiveOps, r.IterativeOps, r.ReductionPct,
			r.RecursiveWall, r.IterativeWall, r.WallSpeedup)
		rep.AddRow(r.Bench).
			DetInt("recursive_ops", r.RecursiveOps).
			DetInt("iterative_ops", r.IterativeOps).
			DetFloat("reduction_pct", r.ReductionPct).
			DetUint("checksum", r.Checksum).
			NoisySeconds("recursive_wall", r.RecursiveWall).
			NoisySeconds("iterative_wall", r.IterativeWall).
			NoisyVal("wall_speedup", r.WallSpeedup)
	}
	return rep, w.Flush()
}

func kary(o opts) (*obs.Report, error) {
	rep := obs.NewReport("kary", params(o, "pcn", "seed", "geometry"))
	w := table()
	fmt.Fprintln(w, "schedule\tpairs<=r\titerations\ttwists\tL2\tL3")
	for _, r := range experiments.KAryOctree(o.pcN, 0.3, o.seed) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\t%.1f%%\n",
			r.Schedule, r.Count, r.Iterations, r.Twists, 100*r.L2, 100*r.L3)
		rep.AddRow(r.Schedule).
			DetInt("pairs", r.Count).
			DetInt("iterations", r.Iterations).
			DetInt("twists", r.Twists).
			DetFloat("l2", r.L2).
			DetFloat("l3", r.L3)
	}
	return rep, w.Flush()
}
