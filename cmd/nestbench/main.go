// nestbench regenerates the tables and figures of the paper's evaluation
// (§6, §7.1). Each experiment prints the rows the paper plots; EXPERIMENTS.md
// records a reference run.
//
// Usage:
//
//	nestbench -exp all                # every experiment at default scales
//	nestbench -exp fig5 -n 1024       # reuse-distance CDF (Fig 5)
//	nestbench -exp fig7 -scale 16384  # speedups across the six benchmarks
//	nestbench -exp fig8a|fig8b        # instruction overhead / miss rates
//	nestbench -exp fig9               # PC input-size sweep
//	nestbench -exp fig10              # PC cutoff study
//	nestbench -exp iters              # §4.2 iteration counts
//	nestbench -exp inventory          # benchmark inventory (§6.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"twist/internal/experiments"
	"twist/internal/nest"
	"twist/internal/workloads"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig5, fig7, fig8a, fig8b, fig9, fig10, iters, ablation, kary, inventory, bench, all")
		scale   = flag.Int("scale", 16384, "suite scale for fig7/fig8a/fig8b/bench (points per dual-tree benchmark)")
		n       = flag.Int("n", 1024, "tree size for fig5")
		pcN     = flag.Int("pcn", 8192, "PC input size for fig10/iters")
		radius  = flag.Float64("radius", 0.4, "PC correlation radius")
		seed    = flag.Int64("seed", 42, "workload seed")
		repeats = flag.Int("repeats", 3, "wall-clock repetitions (best is kept)")
		workers = flag.Int("workers", 0, "parallel dimension for fig7/fig8b/bench: run the work-stealing executor with this many workers (0 = off)")
		variant = flag.String("variant", "twisted", "schedule for -exp bench (original, interchanged, twisted, twisted-cutoff[:N])")
	)
	flag.Parse()

	v, err := nest.ParseVariant(*variant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nestbench: %v\n", err)
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "nestbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	all := *exp == "all"
	any := false
	if all || *exp == "inventory" {
		any = true
		run("inventory (§6.1 benchmarks)", func() error { return inventory(*scale, *seed) })
	}
	if all || *exp == "fig5" {
		any = true
		run("fig5: reuse-distance CDF, tree join", func() error { return fig5(*n, *seed) })
	}
	if all || *exp == "fig7" {
		any = true
		run("fig7: speedup of recursion twisting", func() error { return fig7(*scale, *seed, *repeats, *workers) })
	}
	if all || *exp == "fig8a" {
		any = true
		run("fig8a: instruction overhead (op model)", func() error { return fig8a(*scale, *seed) })
	}
	if all || *exp == "fig8b" {
		any = true
		run("fig8b: simulated L2/L3 miss rates", func() error { return fig8b(*scale, *seed, *workers) })
	}
	if *exp == "bench" {
		any = true
		run("bench: suite under one schedule", func() error { return bench(*scale, *seed, *repeats, *workers, v) })
	}
	if all || *exp == "fig9" {
		any = true
		run("fig9: PC across input sizes", func() error { return fig9(*radius, *seed, *repeats) })
	}
	if all || *exp == "fig10" {
		any = true
		run("fig10: PC cutoff study (§7.1)", func() error { return fig10(*pcN, *radius, *seed, *repeats) })
	}
	if all || *exp == "ablation" {
		any = true
		run("ablation: flag modes / subtree truncation / node stride (DESIGN.md §4.5)",
			func() error { return ablation(*pcN, *radius, *seed, *repeats) })
	}
	if all || *exp == "kary" {
		any = true
		run("kary: octree (8-ary) point correlation extension (§2.1 generality)",
			func() error { return kary(*pcN, *seed) })
	}
	if all || *exp == "iters" {
		any = true
		run("iters: §4.2 iteration counts, PC", func() error { return iters(*pcN, *radius, *seed) })
	}
	if !any {
		fmt.Fprintf(os.Stderr, "nestbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func inventory(scale int, seed int64) error {
	w := table()
	fmt.Fprintln(w, "bench\tdescription")
	for _, in := range workloads.Suite(scale, seed) {
		fmt.Fprintf(w, "%s\t%s\n", in.Name, in.Description)
	}
	return w.Flush()
}

func fig5(n int, seed int64) error {
	rows := experiments.Fig5(n, seed)
	w := table()
	fmt.Fprintln(w, "r\toriginal CDF\ttwisted CDF")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", r.R, r.Original, r.Twisted)
	}
	return w.Flush()
}

func fig7(scale int, seed int64, repeats, workers int) error {
	rows, err := experiments.Fig7(scale, seed, repeats, workers)
	if err != nil {
		return err
	}
	w := table()
	if workers >= 1 {
		fmt.Fprintf(w, "bench\tbaseline\ttwisted\tspeedup\tpar w=1\tpar w=%d\tpar speedup\n", workers)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%v\t%.2fx\t%v\t%v\t%.2fx\n",
				r.Bench, r.Baseline, r.Twisted, r.Speedup, r.Par1, r.ParN, r.ParSpeedup)
		}
	} else {
		fmt.Fprintln(w, "bench\tbaseline\ttwisted\tspeedup")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%v\t%.2fx\n", r.Bench, r.Baseline, r.Twisted, r.Speedup)
		}
	}
	fmt.Fprintf(w, "geomean\t\t\t%.2fx\n", experiments.GeoMean(rows))
	return w.Flush()
}

func bench(scale int, seed int64, repeats, workers int, v nest.Variant) error {
	if repeats < 1 {
		repeats = 1
	}
	w := table()
	fmt.Fprintln(w, "bench\tschedule\twall\titerations\twork\tchecksum")
	for _, in := range workloads.Suite(scale, seed) {
		var st nest.Stats
		var best time.Duration
		mode := "seq"
		for k := 0; k < repeats; k++ {
			start := time.Now()
			if workers >= 1 {
				res, err := in.RunWith(nest.RunConfig{Variant: v, Workers: workers, Stealing: true})
				if err != nil {
					return err
				}
				if k > 0 && res.Stats != st {
					return fmt.Errorf("bench: %s merged stats not deterministic across runs", in.Name)
				}
				st = res.Stats
				mode = fmt.Sprintf("w=%d", workers)
			} else {
				st = in.Run(v, nest.FlagCounter)
			}
			if wall := time.Since(start); k == 0 || wall < best {
				best = wall
			}
		}
		fmt.Fprintf(w, "%s\t%v (%s)\t%v\t%d\t%d\t%#x\n", in.Name, v, mode, best, st.Iterations, st.Work, in.Checksum())
	}
	return w.Flush()
}

func fig8a(scale int, seed int64) error {
	rows := experiments.Fig8a(scale, seed)
	w := table()
	fmt.Fprintln(w, "bench\tbaseline ops\ttwisted ops\toverhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%+.1f%%\n", r.Bench, r.BaselineOps, r.TwistedOps, 100*r.Overhead)
	}
	return w.Flush()
}

func fig8b(scale int, seed int64, workers int) error {
	rows, err := experiments.Fig8b(scale, seed, workers)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "bench\tL2 base\tL2 twisted\tL3 base\tL3 twisted")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Bench, 100*r.BaseL2, 100*r.TwistL2, 100*r.BaseL3, 100*r.TwistL3)
	}
	return w.Flush()
}

func fig9(radius float64, seed int64, repeats int) error {
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768}
	rows, err := experiments.Fig9(sizes, radius, seed, repeats)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "n\tspeedup\tL2 base\tL2 twisted\tL3 base\tL3 twisted")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2fx\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.N, r.Speedup, 100*r.BaseL2, 100*r.TwistL2, 100*r.BaseL3, 100*r.TwistL3)
	}
	return w.Flush()
}

func fig10(n int, radius float64, seed int64, repeats int) error {
	cutoffs := []int{16, 64, 256, 1024, 4096}
	rows, err := experiments.Fig10(n, radius, cutoffs, seed, repeats)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "cutoff\tinstr overhead\tspeedup")
	for _, r := range rows {
		name := fmt.Sprint(r.Cutoff)
		if r.Cutoff < 0 {
			name = "parameterless"
		}
		fmt.Fprintf(w, "%s\t%+.1f%%\t%.2fx\n", name, 100*r.Overhead, r.Speedup)
	}
	return w.Flush()
}

func iters(n int, radius float64, seed int64) error {
	rows := experiments.TblIters(n, radius, seed)
	w := table()
	fmt.Fprintln(w, "schedule\titerations\twork\toverhead vs original")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%+.1f%%\n", r.Schedule, r.Iterations, r.Work, 100*r.Overhead)
	}
	return w.Flush()
}

func ablation(n int, radius float64, seed int64, repeats int) error {
	w := table()
	fmt.Fprintln(w, "flag mode\tflag sets\tflag clears\tmodel ops\twall")
	for _, r := range experiments.AblationFlags(n, radius, seed, repeats) {
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%v\n", r.Mode, r.FlagSets, r.FlagClears, r.Ops, r.Wall)
	}
	fmt.Fprintln(w, "\nsubtree truncation\titerations\tcuts\twall")
	for _, r := range experiments.AblationSubtree(n, radius, seed, repeats) {
		fmt.Fprintf(w, "%v\t%d\t%d\t%v\n", r.Enabled, r.Iterations, r.SubtreeCuts, r.Wall)
	}
	fmt.Fprintln(w, "\nnode stride\tL3 base\tL3 twisted\tL3 base misses\tL3 twisted misses")
	for _, r := range experiments.AblationStride(n, []int{64, 32, 16}, seed) {
		fmt.Fprintf(w, "%dB\t%.1f%%\t%.1f%%\t%d\t%d\n",
			r.Stride, 100*r.BaseL3, 100*r.TwistL3, r.BaseL3Misses, r.TwistL3Misses)
	}
	return w.Flush()
}

func kary(n int, seed int64) error {
	w := table()
	fmt.Fprintln(w, "schedule\tpairs<=r\titerations\ttwists\tL2\tL3")
	for _, r := range experiments.KAryOctree(n, 0.3, seed) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\t%.1f%%\n",
			r.Schedule, r.Count, r.Iterations, r.Twists, 100*r.L2, 100*r.L3)
	}
	return w.Flush()
}
