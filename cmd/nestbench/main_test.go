package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the exit-code vocabulary of run(): 0 success, 1 runtime
// failure, 2 usage error. Usage errors must put the usage text on stderr;
// runtime failures must not (the flags were fine — a usage wall would bury
// the actual error).
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		code      int
		wantErr   string // substring expected on stderr ("" = don't care)
		wantUsage bool   // stderr must (not) contain the usage text
	}{
		{
			name: "success",
			args: []string{"-exp", "inventory", "-scale", "64"},
			code: 0,
		},
		{
			name: "help",
			args: []string{"-h"},
			code: 0,
		},
		{
			name:      "unknown experiment",
			args:      []string{"-exp", "fig99"},
			code:      2,
			wantErr:   `unknown experiment "fig99"`,
			wantUsage: true,
		},
		{
			name:      "bad variant",
			args:      []string{"-exp", "bench", "-variant", "sideways"},
			code:      2,
			wantErr:   "sideways",
			wantUsage: true,
		},
		{
			name:      "bad geometry",
			args:      []string{"-exp", "fig8b", "-geometry", "not-a-hierarchy"},
			code:      2,
			wantErr:   "not-a-hierarchy",
			wantUsage: true,
		},
		{
			name:      "baseline with multiple experiments",
			args:      []string{"-exp", "all", "-baseline", "BENCH_fig7.json"},
			code:      2,
			wantErr:   "-baseline needs a single experiment",
			wantUsage: true,
		},
		{
			name:      "undefined flag",
			args:      []string{"-no-such-flag"},
			code:      2,
			wantUsage: true,
		},
		{
			name:    "runtime failure is not a usage error",
			args:    []string{"-exp", "inventory", "-scale", "64", "-telemetry", "/nonexistent-dir/events.jsonl"},
			code:    1,
			wantErr: "nestbench:",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.code {
				t.Errorf("exit code %d, want %d\nstderr: %s", got, tc.code, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			hasUsage := strings.Contains(stderr.String(), "Usage: nestbench")
			if tc.wantUsage && !hasUsage {
				t.Errorf("stderr missing usage text:\n%s", stderr.String())
			}
			if !tc.wantUsage && tc.code == 1 && hasUsage {
				t.Errorf("runtime failure printed the usage wall:\n%s", stderr.String())
			}
		})
	}
}
