// Command twistd is the long-running serving daemon over the twist engine:
// an HTTP/JSON API exposing run, misscurve, transform, and oracle jobs with
// a content-addressed result cache, request coalescing, bounded admission,
// and graceful drain (internal/serve; DESIGN.md §4.10).
//
// Usage:
//
//	twistd [-addr :7457] [-queue 64] [-workers N] [-cache 256]
//	       [-job-timeout 60s] [-drain-timeout 30s] [-telemetry file.jsonl]
//	       [-peers id=url,...] [-node id] [-advertise url] [-replicas 2]
//	       [-vnodes 64] [-probe-interval 1s] [-forward-timeout 2s]
//	       [-forward-retries 1] [-fleet-queue-bound 0]
//
// Endpoints:
//
//	POST /v1/run        POST /v1/misscurve
//	POST /v1/transform  POST /v1/oracle
//	GET  /healthz       GET  /readyz       GET  /metrics
//	GET  /clusterz      GET  /metrics/fleet          (fleet mode only)
//
// Fleet mode (DESIGN.md §4.14) activates when -peers is non-empty: jobs
// route by their canonical spec digest over a consistent-hash ring to an
// owner node (forwarded at most one hop), every node admits forwarded
// results into its own cache, unreachable peers are probed and routed
// around (degrading to local-only serving under full partition), and
// responses stay bit-identical to a single-node daemon and to direct
// library calls wherever they are served from.
//
// On SIGTERM/SIGINT the daemon stops accepting work (/readyz turns 503),
// finishes every admitted job within -drain-timeout, and exits 0 on a clean
// drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twist/internal/cluster"
	"twist/internal/obs"
	"twist/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("twistd", flag.ExitOnError)
	addr := fs.String("addr", ":7457", "listen address")
	queue := fs.Int("queue", 64, "admission queue capacity (full queue answers 429)")
	workers := fs.Int("workers", 0, "job worker count (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 256, "result cache entries (negative disables caching)")
	jobTimeout := fs.Duration("job-timeout", 60*time.Second, "per-job execution deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	telemetry := fs.String("telemetry", "", "append telemetry events as JSON lines to this file")
	peers := fs.String("peers", "", "fleet peers as comma-separated id=url pairs (non-empty enables fleet mode)")
	nodeID := fs.String("node", "", "this node's fleet id (default: the listen address)")
	advertise := fs.String("advertise", "", "this node's advertised base URL (default: http://127.0.0.1<addr>)")
	replicas := fs.Int("replicas", 2, "ring replicas tried per digest before degrading to local serving")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring")
	probeInterval := fs.Duration("probe-interval", time.Second, "peer health probe period")
	forwardTimeout := fs.Duration("forward-timeout", 2*time.Second, "per-hop forward timeout")
	forwardRetries := fs.Int("forward-retries", 1, "per-hop retries on transient forward failures")
	fleetQueueBound := fs.Int64("fleet-queue-bound", 0, "shed with 429 when fleet-wide queue depth reaches this (0 disables)")
	fs.Parse(os.Args[1:])

	log.SetPrefix("twistd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	cfg := serve.Config{
		Queue:        *queue,
		Workers:      *workers,
		CacheEntries: *cache,
		JobTimeout:   *jobTimeout,
	}
	if *peers != "" {
		members, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Printf("%v", err)
			return 1
		}
		self := cluster.Member{ID: *nodeID, URL: *advertise}
		if self.ID == "" {
			self.ID = *addr
		}
		if self.URL == "" {
			host := *addr
			if len(host) > 0 && host[0] == ':' {
				host = "127.0.0.1" + host
			}
			self.URL = "http://" + host
		}
		cfg.Cluster = cluster.NewNode(cluster.Config{
			Self:            self,
			Peers:           members,
			Version:         serve.EngineVersion,
			VNodes:          *vnodes,
			Replicas:        *replicas,
			FleetQueueBound: *fleetQueueBound,
			ProbeInterval:   *probeInterval,
			ForwardTimeout:  *forwardTimeout,
			ForwardRetries:  *forwardRetries,
		})
		log.Printf("fleet mode: node %s (%s), peers [%s], replicas %d, engine version %s",
			self.ID, self.URL, cluster.FormatPeers(members), *replicas, serve.EngineVersion)
	}
	if *telemetry != "" {
		f, err := os.OpenFile(*telemetry, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Printf("open telemetry file: %v", err)
			return 1
		}
		defer f.Close()
		cfg.Recorder = obs.NewJSONLines(f)
	}
	s := serve.New(cfg)
	defer s.Close()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue=%d workers=%d cache=%d)", *addr, *queue, *workers, *cache)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown happens on
		// the signal path), so any error is fatal.
		log.Printf("serve: %v", err)
		return 1
	case sig := <-sigc:
		log.Printf("received %v, draining (budget %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	s.BeginDrain() // stop admitting before closing the listener
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
		// Fall through to the job drain: admitted jobs may still finish.
	}
	if err := s.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "twistd: drained cleanly")
	return 0
}
