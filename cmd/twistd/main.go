// Command twistd is the long-running serving daemon over the twist engine:
// an HTTP/JSON API exposing run, misscurve, transform, and oracle jobs with
// a content-addressed result cache, request coalescing, bounded admission,
// and graceful drain (internal/serve; DESIGN.md §4.10).
//
// Usage:
//
//	twistd [-addr :7457] [-queue 64] [-workers N] [-cache 256]
//	       [-job-timeout 60s] [-drain-timeout 30s] [-telemetry file.jsonl]
//
// Endpoints:
//
//	POST /v1/run        POST /v1/misscurve
//	POST /v1/transform  POST /v1/oracle
//	GET  /healthz       GET  /readyz       GET  /metrics
//
// On SIGTERM/SIGINT the daemon stops accepting work (/readyz turns 503),
// finishes every admitted job within -drain-timeout, and exits 0 on a clean
// drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twist/internal/obs"
	"twist/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("twistd", flag.ExitOnError)
	addr := fs.String("addr", ":7457", "listen address")
	queue := fs.Int("queue", 64, "admission queue capacity (full queue answers 429)")
	workers := fs.Int("workers", 0, "job worker count (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 256, "result cache entries (negative disables caching)")
	jobTimeout := fs.Duration("job-timeout", 60*time.Second, "per-job execution deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	telemetry := fs.String("telemetry", "", "append telemetry events as JSON lines to this file")
	fs.Parse(os.Args[1:])

	log.SetPrefix("twistd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	cfg := serve.Config{
		Queue:        *queue,
		Workers:      *workers,
		CacheEntries: *cache,
		JobTimeout:   *jobTimeout,
	}
	if *telemetry != "" {
		f, err := os.OpenFile(*telemetry, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Printf("open telemetry file: %v", err)
			return 1
		}
		defer f.Close()
		cfg.Recorder = obs.NewJSONLines(f)
	}
	s := serve.New(cfg)
	defer s.Close()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue=%d workers=%d cache=%d)", *addr, *queue, *workers, *cache)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown happens on
		// the signal path), so any error is fatal.
		log.Printf("serve: %v", err)
		return 1
	case sig := <-sigc:
		log.Printf("received %v, draining (budget %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	s.BeginDrain() // stop admitting before closing the listener
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
		// Fall through to the job drain: admitted jobs may still finish.
	}
	if err := s.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "twistd: drained cleanly")
	return 0
}
