// twist is the source-to-source transformation tool of paper §5: given a Go
// file containing a nested recursion annotated with //twist:outer and
// //twist:inner, it sanity-checks the template, detects irregular
// (outer-dependent) truncation, and emits a file with the requested
// schedules (including Fig 6(b) truncation-flag code when required).
//
// Usage:
//
//	twist -in join.go                  # writes join_twisted.go
//	twist -in join.go -out sched.go    # explicit output path
//	twist -in join.go -stdout          # print to stdout
//	twist -in join.go -variants twisted
//	                                   # emit only one schedule family
//	twist -in join.go -schedules 'inline(2)∘twist(flagged)'
//	                                   # schedule-algebra expressions,
//	                                   # legality-checked against the
//	                                   # template's dependence witnesses
//
// See examples/transform for an annotated corpus, internal/transform for
// the template rules, and internal/transform/algebra for the schedule
// grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twist/internal/transform"
	"twist/internal/transform/algebra"
)

func main() {
	var (
		in        = flag.String("in", "", "input Go file containing the annotated template (required)")
		out       = flag.String("out", "", "output file (default: <in>_twisted.go)")
		stdout    = flag.Bool("stdout", false, "write generated code to stdout instead of a file")
		variants  = flag.String("variants", "", "comma-separated schedule families to emit (interchanged, twisted, twisted-cutoff); empty means all")
		schedules = flag.String("schedules", "", "comma-separated schedule-algebra expressions to emit, e.g. 'inline(2)∘twist(flagged)'; subsumes -variants")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "twist: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	var scheds []algebra.Schedule
	for _, raw := range []string{*variants, *schedules} {
		if raw == "" {
			continue
		}
		for _, expr := range strings.Split(raw, ",") {
			s, err := algebra.ParseSchedule(strings.TrimSpace(expr))
			if err != nil {
				fatal(err)
			}
			scheds = append(scheds, s)
		}
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	tmpl, err := transform.ParseFile(*in, src)
	if err != nil {
		fatal(err)
	}
	code, err := algebra.GenerateSchedules(tmpl, scheds)
	if err != nil {
		fatal(err)
	}
	if *stdout {
		os.Stdout.Write(code)
		return
	}
	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(*in, ".go") + "_twisted.go"
	}
	if err := os.WriteFile(dest, code, 0o644); err != nil {
		fatal(err)
	}
	kind := "regular"
	if tmpl.Irregular() {
		kind = "irregular (truncation flags synthesized)"
	}
	fmt.Printf("twist: %s template; wrote %s\n", kind, dest)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "twist: %v\n", err)
	os.Exit(1)
}
