// twist is the source-to-source transformation tool of paper §5: given a Go
// file containing a nested recursion annotated with //twist:outer and
// //twist:inner, it sanity-checks the template, detects irregular
// (outer-dependent) truncation, and emits a file with the requested
// schedules (including Fig 6(b) truncation-flag code when required).
//
// With -from-loops the input need not be recursive at all: a //twist:loops
// function holding a plain loop nest is first converted to the recursion
// template by the loop front-end (internal/loopfront, after Insa & Silva's
// loop→recursion recipe), the template is written next to the input, and
// schedule generation proceeds from it — loops→template→schedules in one
// invocation, the §7.2 "twisting as parameterless loop tiling" path.
//
// Usage:
//
//	twist -in join.go                  # writes join_twisted.go
//	twist -in join.go -out sched.go    # explicit output path
//	twist -in join.go -stdout          # print to stdout
//	twist -in join.go -variants twisted
//	                                   # emit only one schedule family
//	twist -in join.go -schedules 'inline(2)∘twist(flagged)'
//	                                   # schedule-algebra expressions,
//	                                   # legality-checked against the
//	                                   # template's dependence witnesses
//	twist -in loops.go -from-loops     # convert a //twist:loops nest, then
//	                                   # write loops_template.go and
//	                                   # loops_twisted.go
//	twist -in loops.go -from-loops -nest tile -template-out t.go
//	                                   # select one nest by name; explicit
//	                                   # template path
//
// See examples/transform for an annotated corpus (recursive and loop
// sources), internal/transform for the template rules, internal/loopfront
// for the recognized loop shapes, and internal/transform/algebra for the
// schedule grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twist/internal/loopfront"
	"twist/internal/transform"
	"twist/internal/transform/algebra"
)

func main() {
	var (
		in          = flag.String("in", "", "input Go file containing the annotated template (required)")
		out         = flag.String("out", "", "output file (default: <in>_twisted.go)")
		stdout      = flag.Bool("stdout", false, "write generated code to stdout instead of a file")
		variants    = flag.String("variants", "", "comma-separated schedule families to emit (interchanged, twisted, twisted-cutoff); empty means all")
		schedules   = flag.String("schedules", "", "comma-separated schedule-algebra expressions to emit, e.g. 'inline(2)∘twist(flagged)'; subsumes -variants")
		fromLoops   = flag.Bool("from-loops", false, "treat -in as plain loop nests: convert the //twist:loops function through internal/loopfront first")
		nestName    = flag.String("nest", "", "with -from-loops: select one //twist:loops nest by name when the file holds several")
		templateOut = flag.String("template-out", "", "with -from-loops: where to write the generated recursion template (default: <in>_template.go)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "twist: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if !*fromLoops && (*nestName != "" || *templateOut != "") {
		fatal(fmt.Errorf("-nest and -template-out require -from-loops"))
	}
	var scheds []algebra.Schedule
	for _, raw := range []string{*variants, *schedules} {
		if raw == "" {
			continue
		}
		for _, expr := range strings.Split(raw, ",") {
			s, err := algebra.ParseSchedule(strings.TrimSpace(expr))
			if err != nil {
				fatal(err)
			}
			scheds = append(scheds, s)
		}
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}

	templateName := *in
	var unit *loopfront.Unit
	if *fromLoops {
		unit, err = loopfront.Single(*in, src, *nestName)
		if err != nil {
			fatal(err)
		}
		templateName = *templateOut
		if templateName == "" {
			templateName = strings.TrimSuffix(*in, ".go") + "_template.go"
		}
		if *stdout {
			os.Stdout.Write(unit.Source)
		} else if err := os.WriteFile(templateName, unit.Source, 0o644); err != nil {
			fatal(err)
		}
		src = unit.Source
	}

	tmpl, err := transform.ParseFile(templateName, src)
	if err != nil {
		fatal(err)
	}
	code, err := algebra.GenerateSchedules(tmpl, scheds)
	if err != nil {
		fatal(err)
	}
	if *stdout {
		os.Stdout.Write(code)
		return
	}
	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(*in, ".go") + "_twisted.go"
	}
	if err := os.WriteFile(dest, code, 0o644); err != nil {
		fatal(err)
	}
	kind := "regular"
	if tmpl.Irregular() {
		kind = "irregular (truncation flags synthesized)"
	}
	if unit != nil {
		fmt.Printf("twist: loop nest %q (%s/%s-shaped, %s): wrote %s and %s\n",
			unit.Name, unit.OuterShape, unit.InnerShape, kind, templateName, dest)
		return
	}
	fmt.Printf("twist: %s template; wrote %s\n", kind, dest)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "twist: %v\n", err)
	os.Exit(1)
}
