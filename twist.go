// Package twist is a library of locality-enhancing scheduling transformations
// for nested recursive iteration spaces, reproducing "Locality
// Transformations for Nested Recursive Iteration Spaces" (Sundararajah,
// Sakka, Kulkarni — ASPLOS 2017).
//
// A nested recursion — a recursive method that calls another recursive
// method, as in a tree join or a dual-tree n-body algorithm — defines a
// two-dimensional iteration space whose points are pairs (o, i) of positions
// in an outer and an inner tree. This package reschedules such computations:
//
//   - Original: the untransformed column-by-column schedule.
//   - Interchanged: recursion interchange, the analog of loop interchange.
//   - Twisted: recursion twisting, a parameterless analog of multi-level
//     loop tiling that improves locality at every level of the memory
//     hierarchy simultaneously.
//   - TwistedCutoff: twisting with a cutoff parameter that falls back to
//     the original order for small subproblems.
//
// Programs with data-dependent truncation (an inner recursion cut off based
// on both indices, as dual-tree algorithms do with Score-based pruning) are
// handled with truncation flags; see Spec.TruncInner2 and Spec.Hereditary.
//
// # Quick start
//
//	outer := twist.NewBalancedTree(1 << 10)
//	inner := twist.NewBalancedTree(1 << 10)
//	spec := twist.Spec{
//		Outer: outer,
//		Inner: inner,
//		Work:  func(o, i twist.NodeID) { join(o, i) },
//	}
//	exec := twist.MustNew(spec)
//	res, err := twist.Run(exec, twist.WithVariant(twist.Twisted()))
//
// The iteration order changes; the set of Work invocations (and, for
// programs meeting the paper's soundness criterion, the program result)
// does not. Run is the single entrypoint for every execution axis —
// schedule (WithVariant / WithSchedule), visit engine (WithEngine),
// parallelism (WithWorkers), telemetry (WithRecorder), cancellation
// (WithContext) — see run.go.
package twist

import (
	"twist/internal/depcheck"
	"twist/internal/layout"
	"twist/internal/loopnest"
	"twist/internal/nest"
	"twist/internal/sched"
	"twist/internal/transform/algebra"
	"twist/internal/tree"
)

// NodeID identifies a node of a Topology; Nil is the absent child.
type NodeID = tree.NodeID

// Nil is the absent-node sentinel.
const Nil = tree.Nil

// Topology is the shape of a binary tree: the index space of one recursion.
type Topology = tree.Topology

// TreeBuilder constructs Topologies node by node.
type TreeBuilder = tree.Builder

// NewTreeBuilder returns a TreeBuilder with capacity for n nodes.
func NewTreeBuilder(n int) *TreeBuilder { return tree.NewBuilder(n) }

// NewBalancedTree builds a balanced binary tree with n nodes, IDs assigned
// in preorder.
func NewBalancedTree(n int) *Topology { return tree.NewBalanced(n) }

// NewPerfectTree builds a perfect binary tree of the given height in edges.
func NewPerfectTree(height int) *Topology { return tree.NewPerfect(height) }

// NewChainTree builds a degenerate right-spine tree — the recursion template
// over chains devolves into an ordinary nested loop.
func NewChainTree(n int) *Topology { return tree.NewChain(n) }

// NewRandomBST builds the shape of a random-insertion binary search tree.
func NewRandomBST(n int, seed int64) *Topology { return tree.NewRandomBST(n, seed) }

// Spec describes one instance of the nested recursion template.
type Spec = nest.Spec

// Exec executes a Spec under the transformed schedules.
type Exec = nest.Exec

// Stats holds the dynamic operation counts of a run.
type Stats = nest.Stats

// FlagMode selects the truncation-flag representation for irregular spaces.
type FlagMode = nest.FlagMode

// Truncation-flag representations: FlagSets is the paper's Fig 6(b) set
// protocol; FlagCounter is the §4.3 preorder-counter optimization.
const (
	FlagSets    = nest.FlagSets
	FlagCounter = nest.FlagCounter
)

// Variant selects an engine schedule. The four constructors are the
// canonical points of the composable schedule algebra; see Schedule for the
// general form.
type Variant = nest.Variant

// ParseVariant parses a Variant from its String form: "original",
// "interchanged" (or "interchange"), "twisted", "twisted-cutoff[:N]".
//
// Deprecated: use ParseSchedule, which accepts every variant name plus the
// full schedule-expression grammar, and lower with Schedule.Variant.
func ParseVariant(name string) (Variant, error) { return nest.ParseVariant(name) }

// Schedule is a normalized composition of schedule transformations — code
// motion (twisting), interchange, strip mining, and inlining — the general
// form of the four Variant constructors. Every composition normalizes to
// the canonical form [inline(k)∘][stripmine(c)∘]core; schedules are
// legality-checked against dependence witnesses, and inline-free schedules
// lower exactly onto a Variant via Schedule.Variant. The zero value is the
// identity schedule.
type Schedule = algebra.Schedule

// ParseSchedule parses a schedule expression — terms joined by ∘ (or the
// ASCII "."), e.g. "stripmine(64)∘twist(flagged)" or "inline(2)∘twisted".
// Every ParseVariant name is a valid expression, and
// ParseSchedule(s.String()) == s for every schedule s.
func ParseSchedule(expr string) (Schedule, error) { return algebra.ParseSchedule(expr) }

// ScheduleOf expresses an engine variant as its canonical schedule:
// Original() = identity, Interchanged() = interchange, Twisted() =
// twist(flagged), TwistedCutoff(N) = stripmine(N)∘twist(flagged).
func ScheduleOf(v Variant) (Schedule, error) { return algebra.FromVariant(v) }

// New returns an Exec for the given spec.
func New(s Spec) (*Exec, error) { return nest.New(s) }

// MustNew is New that panics on error.
func MustNew(s Spec) *Exec { return nest.MustNew(s) }

// Original is the untransformed column-by-column schedule.
func Original() Variant { return nest.Original() }

// Interchanged is the row-by-row schedule of recursion interchange.
func Interchanged() Variant { return nest.Interchanged() }

// Twisted is parameterless recursion twisting.
func Twisted() Variant { return nest.Twisted() }

// TwistedCutoff is twisting with a cutoff: the schedule only twists while
// the tree held by the inner recursion is larger than cutoff.
func TwistedCutoff(cutoff int) Variant { return nest.TwistedCutoff(cutoff) }

// RunConfig configures a parallel run: the schedule variant, worker count,
// spawn depth, executor choice (static queue or work stealing), optional
// context cancellation, and the per-task Spec hooks. See Exec.RunWith.
type RunConfig = nest.RunConfig

// RunResult reports a parallel run: merged Stats (identical across worker
// counts and executors for a fixed SpawnDepth), per-worker Stats, and task
// and steal counts.
type RunResult = nest.RunResult

// DefaultSpawnDepth is the outer-tree depth at which the parallel executors
// stop splitting; see nest.DefaultSpawnDepth for why it is a constant.
const DefaultSpawnDepth = nest.DefaultSpawnDepth

// RunParallel executes the computation with the task-parallel decomposition
// of paper §7.3: one task per outer subtree at spawnDepth (shallower columns
// run sequentially first), each task running variant v — typically
// Twisted(), applied only after enough parallelism has been generated, as
// the paper prescribes. Work and the truncation predicates must be safe to
// call concurrently for distinct outer subtrees. At most workers tasks run
// at once (0 = unbounded). Per-task statistics are returned in spawn order.
//
// Deprecated: use Exec.RunWith with a RunConfig, which runs the same
// decomposition on the work-stealing executor, merges Stats
// deterministically, and supports cancellation:
//
//	exec := twist.MustNew(spec)
//	res, err := exec.RunWith(twist.RunConfig{Variant: v, Workers: workers, Stealing: true})
func RunParallel(s Spec, v Variant, spawnDepth, workers int) ([]Stats, error) {
	return nest.RunParallel(s, v, spawnDepth, workers, nil)
}

// Pair is one iteration of the space: an outer and an inner tree node.
type Pair = sched.Pair

// Record executes variant v of spec s and returns the iterations in
// execution order (the spec's own Work still runs).
func Record(s Spec, v Variant) ([]Pair, error) { return sched.Record(s, v) }

// RenderGrid renders a recorded schedule as the iteration-space matrices of
// the paper's Fig 1(c)/4(b): each cell holds the iteration's position in the
// schedule.
func RenderGrid(outer, inner *Topology, pairs []Pair) string {
	return sched.Grid(outer, inner, pairs)
}

// CheckSchedule verifies that got is a permutation of reference that
// preserves per-column order — the paper's §3.3 soundness conditions for
// programs whose dependences are carried over the inner recursion.
func CheckSchedule(reference, got []Pair) error { return sched.Check(reference, got) }

// CheckShardedSchedule is CheckSchedule for the per-worker traces of a
// parallel run: the shards must jointly cover the reference exactly once,
// with every column whole and in reference order inside a single shard.
func CheckShardedSchedule(reference []Pair, shards [][]Pair) error {
	return sched.CheckSharded(reference, shards)
}

// LoopNest recasts a doubly-nested for loop as a nested recursive iteration
// space (the §7.2 front-end), so Twisted() acts as automatic, parameterless
// multi-level loop tiling.
type LoopNest = loopnest.Nest

// NewLoopNest builds the recursive decomposition of an n×m loop nest with
// the given grain size (indices per recursion leaf; 1 decomposes fully).
func NewLoopNest(n, m, leafRun int) (*LoopNest, error) { return loopnest.New(n, m, leafRun) }

// LayoutKind names an arena layout pass: a storage-order factorization of a
// tree's node records that leaves every traversal's visit sequence — and
// hence the program result — unchanged while changing which cache lines the
// traversal touches (the complement of the schedule transformations above).
type LayoutKind = layout.Kind

// The arena layouts: BuildOrderLayout is the identity (nodes stay in arena
// build order at full stride); HotColdLayout splits each record into a hot
// traversal half; PreorderLayout stores nodes in preorder; ScheduleLayout
// stores them in first-touch order under a given schedule; VEBLayout uses
// cache-oblivious van Emde Boas blocking.
const (
	BuildOrderLayout = layout.BuildOrder
	HotColdLayout    = layout.HotCold
	PreorderLayout   = layout.Preorder
	ScheduleLayout   = layout.Schedule
	VEBLayout        = layout.VEB
)

// ParseLayout parses a LayoutKind from its String form ("buildorder",
// "hotcold", "preorder", "schedule", "veb", plus common aliases; "" is
// BuildOrderLayout).
func ParseLayout(name string) (LayoutKind, error) { return layout.ParseKind(name) }

// LayoutRemap is an old→new arena slot permutation; nil is the identity.
type LayoutRemap = layout.Remap

// RealizeLayout computes the slot permutation of a topology-determined
// layout (every kind except ScheduleLayout, whose order depends on a
// traversal — see internal/layout.Schemes).
func RealizeLayout(k LayoutKind, t *Topology) (LayoutRemap, error) {
	s, err := layout.Realize(k, t)
	if err != nil {
		return nil, err
	}
	return s.Remap, nil
}

// ApplyLayout physically repacks a topology under a remap: node old is
// stored at slot remap[old], with every edge re-indexed, so the returned
// tree is isomorphic to t and any traversal visits the same logical nodes
// in the same order.
func ApplyLayout(t *Topology, r LayoutRemap) (*Topology, error) { return layout.Apply(t, r) }

// Loc is an abstract memory location for dependence analysis.
type Loc = depcheck.Loc

// Footprint reports the locations one work(o, i) invocation reads and writes.
type Footprint = depcheck.Footprint

// DependenceKind classifies a program's dependence structure.
type DependenceKind = depcheck.Kind

// Dependence structures, in increasing strictness of what they permit:
// Independent (TJ, MM), InnerCarried (the dual-tree benchmarks; outer
// recursion parallel, transformations sound per §3.3), CrossColumn (the
// §3.3 sufficient condition fails).
const (
	Independent  = depcheck.Independent
	InnerCarried = depcheck.InnerCarried
	CrossColumn  = depcheck.CrossColumn
)

// DependenceResult is the outcome of AnalyzeDependences; its Sound method
// reports whether the §3.3 criterion held on the analyzed input.
type DependenceResult = depcheck.Result

// AnalyzeDependences executes the original schedule of s, recording every
// iteration's footprint, and classifies the dependence structure — the
// dynamic version of the soundness analysis the paper leaves to future work
// (§3.3). A Sound() result certifies interchange and twisting for the
// analyzed input.
func AnalyzeDependences(s Spec, fp Footprint, maxConflicts int) (DependenceResult, error) {
	return depcheck.Analyze(s, fp, maxConflicts)
}
