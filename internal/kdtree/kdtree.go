// Package kdtree builds kd-trees (Bentley [4]) over point sets: each internal
// node splits its points at the median along the longest axis of their
// bounding box. kd-trees are the spatial index of the paper's PC, NN, and
// KNN dual-tree benchmarks (§6.1).
package kdtree

import (
	"twist/internal/geom"
	"twist/internal/spatial"
)

// Build constructs a kd-tree over pts with at most leafSize points per leaf.
// Node IDs are assigned in preorder, which is also the order node payloads
// are laid out in the arena — the layout the memory simulation assumes.
func Build(pts []geom.Point, leafSize int) (*spatial.Index, error) {
	return spatial.Construct(pts, leafSize, medianSplit)
}

// MustBuild is Build that panics on error.
func MustBuild(pts []geom.Point, leafSize int) *spatial.Index {
	ix, err := Build(pts, leafSize)
	if err != nil {
		panic(err)
	}
	return ix
}

// medianSplit partitions [lo, hi) at the median of the longest axis of the
// range's bounding box. If every point is identical (zero-width box) the
// node stays a leaf.
func medianSplit(pts []geom.Point, perm []int32, lo, hi int32) int32 {
	axis, width := geom.BoxOf(pts[lo:hi]).LongestAxis()
	if width == 0 {
		return lo // degenerate: all points coincide
	}
	mid := lo + (hi-lo)/2
	quickselect(pts, perm, lo, hi, mid, axis)
	// Points equal to the median value may straddle mid; move the split to
	// the first occurrence of the median value so equal points stay together
	// (and neither side ends up empty — the box has positive width on this
	// axis, so not all values are equal).
	mv := pts[mid][axis]
	for mid > lo && pts[mid-1][axis] == mv {
		mid--
	}
	if mid == lo {
		mid = lo + (hi-lo)/2
		for mid < hi && pts[mid][axis] == mv {
			mid++
		}
	}
	return mid
}

// quickselect rearranges pts[lo:hi] so the element with rank k (absolute
// index) is in position, with smaller-on-axis elements before it. perm is
// permuted in lockstep.
func quickselect(pts []geom.Point, perm []int32, lo, hi, k int32, axis int) {
	for hi-lo > 1 {
		p := medianOfThree(pts, lo, hi, axis)
		i, j := lo, hi-1
		for i <= j {
			for pts[i][axis] < p {
				i++
			}
			for pts[j][axis] > p {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				perm[i], perm[j] = perm[j], perm[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// medianOfThree picks a pivot value from the first, middle, and last points.
func medianOfThree(pts []geom.Point, lo, hi int32, axis int) float64 {
	a := pts[lo][axis]
	b := pts[lo+(hi-lo)/2][axis]
	c := pts[hi-1][axis]
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	default:
		return c
	}
}
