package kdtree

import (
	"testing"
	"testing/quick"

	"twist/internal/geom"
	"twist/internal/tree"
)

func TestBuildValidatesAcrossSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1000} {
		for _, leaf := range []int{1, 4, 16} {
			pts := geom.Generate(geom.Uniform, n, int64(n))
			ix := MustBuild(pts, leaf)
			if err := ix.Validate(); err != nil {
				t.Fatalf("n=%d leaf=%d: %v", n, leaf, err)
			}
			if ix.Len() != n {
				t.Fatalf("n=%d: index holds %d points", n, ix.Len())
			}
		}
	}
}

func TestLeafSizeRespected(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 500, 1)
	const leaf = 8
	ix := MustBuild(pts, leaf)
	for n := tree.NodeID(0); int(n) < ix.Topo.Len(); n++ {
		if ix.Topo.IsLeaf(n) && ix.Count(n) > leaf {
			t.Fatalf("leaf %d holds %d points (max %d)", n, ix.Count(n), leaf)
		}
	}
}

func TestSplitsAreBalancedEnough(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 1<<12, 2)
	ix := MustBuild(pts, 8)
	// Median splits on continuous data should give near log-depth trees.
	h := ix.Topo.Height()
	if h > 2*13 {
		t.Fatalf("kd-tree height %d too deep for %d points", h, len(pts))
	}
	root := ix.Topo.Root()
	l, r := ix.Topo.Left(root), ix.Topo.Right(root)
	if l == tree.Nil || r == tree.Nil {
		t.Fatal("root of large tree is a leaf")
	}
	lc, rc := ix.Count(l), ix.Count(r)
	if lc < rc/2 || rc < lc/2 {
		t.Fatalf("root split %d/%d badly unbalanced", lc, rc)
	}
}

func TestDuplicatePointsDoNotLoop(t *testing.T) {
	pts := make([]geom.Point, 100)
	for k := range pts {
		pts[k] = geom.Point{1, 2, 3}
	}
	ix := MustBuild(pts, 4)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// All identical points cannot be split: single leaf.
	if ix.Topo.Len() != 1 {
		t.Fatalf("identical points built %d nodes, want 1", ix.Topo.Len())
	}
}

func TestMixedDuplicates(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 64, 3)
	for k := 0; k < 32; k++ {
		pts = append(pts, geom.Point{0.5, 0.5, 0.5})
	}
	ix := MustBuild(pts, 2)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermMapsPointsBack(t *testing.T) {
	pts := geom.Generate(geom.Clustered, 300, 4)
	ix := MustBuild(pts, 8)
	for k, p := range ix.Points {
		if pts[ix.Perm[k]] != p {
			t.Fatalf("perm[%d]=%d maps to %v, stored %v", k, ix.Perm[k], pts[ix.Perm[k]], p)
		}
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 100, 5)
	orig := append([]geom.Point(nil), pts...)
	MustBuild(pts, 4)
	for k := range pts {
		if pts[k] != orig[k] {
			t.Fatalf("input point %d mutated", k)
		}
	}
}

func TestBuildRejectsBadLeafSize(t *testing.T) {
	if _, err := Build(geom.Generate(geom.Uniform, 10, 1), 0); err == nil {
		t.Fatal("leafSize 0 accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	ix := MustBuild(nil, 4)
	if ix.Topo.Len() != 0 || ix.Len() != 0 {
		t.Fatal("empty input built nodes")
	}
}

// Property: every Build on random input validates and the root box spans the
// input's bounding box exactly.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw)%200 + 1
		pts := geom.Generate(geom.Clustered, n, seed)
		ix, err := Build(pts, 4)
		if err != nil || ix.Validate() != nil {
			return false
		}
		want := geom.BoxOf(pts)
		got := ix.Boxes[ix.Topo.Root()]
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	pts := geom.Generate(geom.Uniform, 1<<14, 1)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		MustBuild(pts, 16)
	}
}
