// Package dualtree implements the paper's four real-world benchmark
// algorithms (§6.1) in the style of Curtin et al.'s tree-independent
// dual-tree framework [11]: a *query* tree is traversed against a *reference*
// tree, a Score rule prunes node pairs whose bounding regions cannot
// interact, and a BaseCase runs on point pairs at the leaves.
//
// Each algorithm is expressed as an instance of the nested recursion template
// (internal/nest): the query tree is the outer tree, the reference tree is
// the inner tree, Score is truncateInner2?(o, i) — the outer-dependent,
// irregular truncation of paper §4 — and BaseCase is performed by work(o, i)
// at leaf-leaf pairs. Box pruning is hereditary (shrinking either box can
// only increase the minimum box distance), enabling the §4.2 subtree
// truncation.
//
// The nearest-neighbor algorithms carry dependences over the inner recursion
// (each query's current best distance tightens Score), while different query
// nodes never read each other's state: exactly the "parallel outer
// recursion" soundness criterion of §3.3. Pruning with any currently-valid
// bound is conservative, so every schedule produces identical final results
// (verified against brute force in the tests).
package dualtree

import (
	"math"

	"twist/internal/geom"
	"twist/internal/nest"
	"twist/internal/spatial"
	"twist/internal/tree"
)

// PC is dual-tree 2-point correlation: it counts the pairs (q, r) of query
// and reference points with ‖q−r‖ ≤ radius. Score prunes node pairs whose
// boxes are farther apart than the radius — a fixed threshold, so the
// iteration space, although irregular, is schedule-independent.
type PC struct {
	Query, Ref *spatial.Index
	R2         float64

	// Count is the result: the number of in-radius pairs.
	Count int64

	// PairOps counts point-pair distance evaluations (the base-case work
	// attributed to the schedule's instruction model).
	PairOps int64
}

// NewPC returns a point-correlation instance with the given radius. Counting
// a set against itself (the paper's PC) passes the same index twice; self
// pairs (q == r by original point identity) are then excluded.
func NewPC(query, ref *spatial.Index, radius float64) *PC {
	return &PC{Query: query, Ref: ref, R2: radius * radius}
}

// Reset clears results between runs.
func (p *PC) Reset() { p.Count, p.PairOps = 0, 0 }

// Spec assembles the nested-recursion template for this instance.
func (p *PC) Spec() nest.Spec { return p.SpecInto(&p.Count, &p.PairOps) }

// SpecInto is Spec with the result cells supplied by the caller. Parallel
// runs use it to give each task a private (count, pairOps) shard, summed
// after the run; the template is otherwise identical to Spec's.
func (p *PC) SpecInto(count, pairOps *int64) nest.Spec {
	selfJoin := p.Query == p.Ref
	return nest.Spec{
		Outer:      p.Query.Topo,
		Inner:      p.Ref.Topo,
		Hereditary: true,
		TruncInner2: func(o, i tree.NodeID) bool {
			return p.Query.MinDist2(o, p.Ref, i) > p.R2
		},
		Work: func(o, i tree.NodeID) {
			if !p.Query.Topo.IsLeaf(o) || !p.Ref.Topo.IsLeaf(i) {
				return
			}
			qs := p.Query.NodePoints(o)
			rs := p.Ref.NodePoints(i)
			*pairOps += int64(len(qs)) * int64(len(rs))
			for qk, q := range qs {
				for rk, r := range rs {
					if selfJoin && p.Query.Perm[int(p.Query.Start[o])+qk] == p.Ref.Perm[int(p.Ref.Start[i])+rk] {
						continue
					}
					if geom.Dist2(q, r) <= p.R2 {
						*count++
					}
				}
			}
		},
	}
}

// BrutePC is the oracle: counts in-radius pairs by exhaustive comparison.
// If selfJoin is true, pairs (k, k) are excluded.
func BrutePC(query, ref []geom.Point, radius float64, selfJoin bool) int64 {
	r2 := radius * radius
	var count int64
	for qk, q := range query {
		for rk, r := range ref {
			if selfJoin && qk == rk {
				continue
			}
			if geom.Dist2(q, r) <= r2 {
				count++
			}
		}
	}
	return count
}

// NN is dual-tree all-nearest-neighbors: for every query point, find the
// closest reference point. Score prunes a node pair when the boxes' minimum
// distance exceeds the node's bound — the largest current best distance of
// any query point in the node's subtree — which tightens as base cases run:
// the inner-recursion-carried dependence of §6.1.
type NN struct {
	Query, Ref *spatial.Index

	// BestD[q] and BestI[q] are the squared distance and original reference
	// index of the nearest neighbor of original query point q.
	BestD []float64
	BestI []int32

	// PairOps counts point-pair distance evaluations.
	PairOps int64

	// bound[n] is an upper bound on max over query points in n's subtree of
	// their current best distance; it only decreases.
	bound []float64
}

// NewNN returns an all-nearest-neighbor instance.
func NewNN(query, ref *spatial.Index) *NN {
	nn := &NN{Query: query, Ref: ref}
	nn.Reset()
	return nn
}

// Reset clears results and bounds between runs.
func (nn *NN) Reset() {
	nn.BestD = make([]float64, nn.Query.Len())
	nn.BestI = make([]int32, nn.Query.Len())
	for k := range nn.BestD {
		nn.BestD[k] = math.Inf(1)
		nn.BestI[k] = -1
	}
	// Cleared in place: Spec closures capture the slice, so reallocating
	// here would leave them tightening a stale array across runs.
	if nn.bound == nil {
		nn.bound = make([]float64, nn.Query.Topo.Len())
	}
	for k := range nn.bound {
		nn.bound[k] = math.Inf(1)
	}
	nn.PairOps = 0
}

// better reports whether (d, idx) improves on (d0, idx0), breaking distance
// ties by smaller original index so results are schedule-independent.
func better(d float64, idx int32, d0 float64, idx0 int32) bool {
	return d < d0 || (d == d0 && idx < idx0)
}

// Spec assembles the nested-recursion template for this instance.
func (nn *NN) Spec() nest.Spec { return nn.SpecInto(nn.bound, &nn.PairOps) }

// SpecInto is Spec with the pruning-bound array and the pairOps cell
// supplied by the caller. Parallel runs give each task a fresh all-infinite
// bound array (conservative pruning — always sound, and it makes each
// task's behaviour a pure function of its subtree) plus a private pairOps
// shard. BestD/BestI stay shared: distinct outer subtrees touch disjoint
// query points, so concurrent tasks never write the same cell.
func (nn *NN) SpecInto(bound []float64, pairOps *int64) nest.Spec {
	return nest.Spec{
		Outer:      nn.Query.Topo,
		Inner:      nn.Ref.Topo,
		Hereditary: true,
		TruncInner2: func(o, i tree.NodeID) bool {
			return nn.Query.MinDist2(o, nn.Ref, i) > bound[o]
		},
		Work: func(o, i tree.NodeID) {
			if !nn.Query.Topo.IsLeaf(o) || !nn.Ref.Topo.IsLeaf(i) {
				return
			}
			qs := nn.Query.NodePoints(o)
			rs := nn.Ref.NodePoints(i)
			*pairOps += int64(len(qs)) * int64(len(rs))
			newBound := 0.0
			for qk, q := range qs {
				qi := nn.Query.Perm[int(nn.Query.Start[o])+qk]
				bd, bi := nn.BestD[qi], nn.BestI[qi]
				for rk, r := range rs {
					ri := nn.Ref.Perm[int(nn.Ref.Start[i])+rk]
					if d := geom.Dist2(q, r); better(d, ri, bd, bi) {
						bd, bi = d, ri
					}
				}
				nn.BestD[qi], nn.BestI[qi] = bd, bi
				if bd > newBound {
					newBound = bd
				}
			}
			tighten(nn.Query.Topo, bound, o, newBound)
		},
	}
}

// InfBounds returns a fresh all-infinite bound array sized for the query
// tree — the starting state of SpecInto's pruning for one parallel task.
func InfBounds(topo *tree.Topology) []float64 {
	bound := make([]float64, topo.Len())
	for k := range bound {
		bound[k] = math.Inf(1)
	}
	return bound
}

// tighten lowers the leaf's bound to b and propagates the improvement up the
// query tree: an ancestor's bound is the max of its children's.
func tighten(topo *tree.Topology, bound []float64, leaf tree.NodeID, b float64) {
	if b >= bound[leaf] {
		return
	}
	bound[leaf] = b
	for n := topo.Parent(leaf); n != tree.Nil; n = topo.Parent(n) {
		nb := childBoundMax(topo, bound, n)
		if nb >= bound[n] {
			break
		}
		bound[n] = nb
	}
}

// childBoundMax returns the max bound among n's children (or keeps n's own
// bound if a child is absent — absent children carry no points, but a
// single-child node's bound is just the child's).
func childBoundMax(topo *tree.Topology, bound []float64, n tree.NodeID) float64 {
	l, r := topo.Left(n), topo.Right(n)
	switch {
	case l == tree.Nil && r == tree.Nil:
		return bound[n]
	case l == tree.Nil:
		return bound[r]
	case r == tree.Nil:
		return bound[l]
	default:
		return math.Max(bound[l], bound[r])
	}
}

// BruteNN is the oracle: exhaustive all-nearest-neighbors with the same
// tie-breaking rule. Returns squared distances and reference indices.
func BruteNN(query, ref []geom.Point) ([]float64, []int32) {
	ds := make([]float64, len(query))
	is := make([]int32, len(query))
	for qk, q := range query {
		bd, bi := math.Inf(1), int32(-1)
		for rk, r := range ref {
			if d := geom.Dist2(q, r); better(d, int32(rk), bd, bi) {
				bd, bi = d, int32(rk)
			}
		}
		ds[qk], is[qk] = bd, bi
	}
	return ds, is
}
