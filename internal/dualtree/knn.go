package dualtree

import (
	"math"
	"sort"

	"twist/internal/geom"
	"twist/internal/nest"
	"twist/internal/spatial"
	"twist/internal/tree"
)

// neighbor is one candidate in a query's k-best set.
type neighbor struct {
	d   float64 // squared distance
	idx int32   // original reference index
}

// worse orders neighbors descending by (distance, index): a max-heap keyed
// this way keeps the k best with deterministic, schedule-independent tie
// handling.
func worse(a, b neighbor) bool {
	return a.d > b.d || (a.d == b.d && a.idx > b.idx)
}

// kheap is a fixed-capacity max-heap of the k best neighbors seen so far.
type kheap struct {
	k  int
	ns []neighbor
}

// full reports whether k candidates have been collected.
func (h *kheap) full() bool { return len(h.ns) == h.k }

// kth returns the current kth-best squared distance (+inf until full).
func (h *kheap) kth() float64 {
	if !h.full() {
		return math.Inf(1)
	}
	return h.ns[0].d
}

// offer inserts a candidate if it beats the current kth best.
func (h *kheap) offer(n neighbor) {
	if !h.full() {
		h.ns = append(h.ns, n)
		// Sift up.
		for c := len(h.ns) - 1; c > 0; {
			p := (c - 1) / 2
			if !worse(h.ns[c], h.ns[p]) {
				break
			}
			h.ns[c], h.ns[p] = h.ns[p], h.ns[c]
			c = p
		}
		return
	}
	if !worse(h.ns[0], n) {
		return
	}
	h.ns[0] = n
	// Sift down.
	for c := 0; ; {
		l, r := 2*c+1, 2*c+2
		w := c
		if l < len(h.ns) && worse(h.ns[l], h.ns[w]) {
			w = l
		}
		if r < len(h.ns) && worse(h.ns[r], h.ns[w]) {
			w = r
		}
		if w == c {
			break
		}
		h.ns[c], h.ns[w] = h.ns[w], h.ns[c]
		c = w
	}
}

// sorted returns the neighbors ascending by (distance, index).
func (h *kheap) sorted() []neighbor {
	out := append([]neighbor(nil), h.ns...)
	sort.Slice(out, func(a, b int) bool { return worse(out[b], out[a]) })
	return out
}

// KNN is dual-tree k-nearest-neighbors: for every query point, find the k
// closest reference points. The paper's KNN benchmark runs it over kd-trees
// (k=5) and the VP benchmark runs the same algorithm over vantage-point
// trees (k=10); only the spatial.Index construction differs.
type KNN struct {
	Query, Ref *spatial.Index
	K          int

	// Heaps[q] holds the current k best for original query point q.
	Heaps []kheap

	// PairOps counts point-pair distance evaluations.
	PairOps int64

	// bound[n] bounds the kth-best distance of any query point in n's
	// subtree (infinite until every point there has k candidates).
	bound []float64

	selfJoin bool
}

// NewKNN returns a k-nearest-neighbor instance. Passing the same index for
// query and ref excludes self pairs, the usual all-kNN convention.
func NewKNN(query, ref *spatial.Index, k int) *KNN {
	kn := &KNN{Query: query, Ref: ref, K: k, selfJoin: query == ref}
	kn.Reset()
	return kn
}

// Reset clears results and bounds between runs.
func (kn *KNN) Reset() {
	kn.Heaps = make([]kheap, kn.Query.Len())
	for q := range kn.Heaps {
		kn.Heaps[q] = kheap{k: kn.K, ns: make([]neighbor, 0, kn.K)}
	}
	// Cleared in place: Spec closures capture the slice, so reallocating
	// here would leave them tightening a stale array across runs.
	if kn.bound == nil {
		kn.bound = make([]float64, kn.Query.Topo.Len())
	}
	for k := range kn.bound {
		kn.bound[k] = math.Inf(1)
	}
	kn.PairOps = 0
}

// Spec assembles the nested-recursion template for this instance.
func (kn *KNN) Spec() nest.Spec { return kn.SpecInto(kn.bound, &kn.PairOps) }

// SpecInto is Spec with the pruning-bound array and pairOps cell supplied by
// the caller; see NN.SpecInto for the parallel-sharding rationale. Heaps
// stay shared — distinct outer subtrees hold disjoint query points.
func (kn *KNN) SpecInto(bound []float64, pairOps *int64) nest.Spec {
	return nest.Spec{
		Outer:      kn.Query.Topo,
		Inner:      kn.Ref.Topo,
		Hereditary: true,
		TruncInner2: func(o, i tree.NodeID) bool {
			return kn.Query.MinDist2(o, kn.Ref, i) > bound[o]
		},
		Work: func(o, i tree.NodeID) {
			if !kn.Query.Topo.IsLeaf(o) || !kn.Ref.Topo.IsLeaf(i) {
				return
			}
			qs := kn.Query.NodePoints(o)
			rs := kn.Ref.NodePoints(i)
			*pairOps += int64(len(qs)) * int64(len(rs))
			newBound := 0.0
			for qk, q := range qs {
				qi := kn.Query.Perm[int(kn.Query.Start[o])+qk]
				h := &kn.Heaps[qi]
				for rk, r := range rs {
					ri := kn.Ref.Perm[int(kn.Ref.Start[i])+rk]
					if kn.selfJoin && ri == qi {
						continue
					}
					h.offer(neighbor{d: geom.Dist2(q, r), idx: ri})
				}
				if kb := h.kth(); kb > newBound {
					newBound = kb
				}
			}
			tighten(kn.Query.Topo, bound, o, newBound)
		},
	}
}

// Result returns, for original query point q, the sorted (ascending) squared
// distances and reference indices of its k nearest neighbors.
func (kn *KNN) Result(q int) ([]float64, []int32) {
	ns := kn.Heaps[q].sorted()
	ds := make([]float64, len(ns))
	is := make([]int32, len(ns))
	for k, n := range ns {
		ds[k], is[k] = n.d, n.idx
	}
	return ds, is
}

// BruteKNN is the oracle: exhaustive k-nearest-neighbors with the same tie
// rule. Returns per-query ascending (distance, index) lists.
func BruteKNN(query, ref []geom.Point, k int, selfJoin bool) ([][]float64, [][]int32) {
	ds := make([][]float64, len(query))
	is := make([][]int32, len(query))
	for qk, q := range query {
		cands := make([]neighbor, 0, len(ref))
		for rk, r := range ref {
			if selfJoin && qk == rk {
				continue
			}
			cands = append(cands, neighbor{d: geom.Dist2(q, r), idx: int32(rk)})
		}
		sort.Slice(cands, func(a, b int) bool { return worse(cands[b], cands[a]) })
		if len(cands) > k {
			cands = cands[:k]
		}
		ds[qk] = make([]float64, len(cands))
		is[qk] = make([]int32, len(cands))
		for n, c := range cands {
			ds[qk][n], is[qk][n] = c.d, c.idx
		}
	}
	return ds, is
}
