package dualtree

import (
	"math"
	"testing"

	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
	"twist/internal/spatial"
	"twist/internal/vptree"
)

var allVariants = []nest.Variant{
	nest.Original(), nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(64),
}

func runSpec(t *testing.T, s nest.Spec, v nest.Variant, fm nest.FlagMode) nest.Stats {
	t.Helper()
	e := nest.MustNew(s)
	e.Flags = fm
	e.Run(v)
	return e.Stats
}

func TestPCMatchesBruteForceAllSchedules(t *testing.T) {
	for _, dist := range []geom.Distribution{geom.Uniform, geom.Clustered} {
		qpts := geom.Generate(dist, 400, 1)
		rpts := geom.Generate(dist, 300, 2)
		radius := 0.1
		want := BrutePC(qpts, rpts, radius, false)
		if want == 0 {
			t.Fatalf("%v: trivial oracle; adjust radius", dist)
		}
		q := kdtree.MustBuild(qpts, 8)
		r := kdtree.MustBuild(rpts, 8)
		pc := NewPC(q, r, radius)
		for _, v := range allVariants {
			for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
				pc.Reset()
				runSpec(t, pc.Spec(), v, fm)
				if pc.Count != want {
					t.Fatalf("%v/%v/%v: count %d, want %d", dist, v, fm, pc.Count, want)
				}
			}
		}
	}
}

func TestPCSelfJoin(t *testing.T) {
	pts := geom.Generate(geom.Clustered, 500, 3)
	radius := 0.05
	want := BrutePC(pts, pts, radius, true)
	ix := kdtree.MustBuild(pts, 8)
	pc := NewPC(ix, ix, radius)
	for _, v := range allVariants {
		pc.Reset()
		runSpec(t, pc.Spec(), v, nest.FlagCounter)
		if pc.Count != want {
			t.Fatalf("%v: self-join count %d, want %d", v, pc.Count, want)
		}
	}
}

func TestPCPrunesWork(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 2000, 4)
	ix := kdtree.MustBuild(pts, 8)
	pc := NewPC(ix, ix, 0.05)
	st := runSpec(t, pc.Spec(), nest.Original(), nest.FlagCounter)
	full := int64(ix.Topo.Len()) * int64(ix.Topo.Len())
	if st.Iterations >= full/4 {
		t.Fatalf("pruning ineffective: %d iterations of %d full cross product", st.Iterations, full)
	}
	if pc.PairOps >= int64(len(pts))*int64(len(pts))/4 {
		t.Fatalf("base cases not pruned: %d pair ops", pc.PairOps)
	}
}

func TestNNMatchesBruteForceAllSchedules(t *testing.T) {
	qpts := geom.Generate(geom.Clustered, 300, 5)
	rpts := geom.Generate(geom.Clustered, 400, 6)
	wantD, wantI := BruteNN(qpts, rpts)
	q := kdtree.MustBuild(qpts, 8)
	r := kdtree.MustBuild(rpts, 8)
	nn := NewNN(q, r)
	for _, v := range allVariants {
		for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
			nn.Reset()
			runSpec(t, nn.Spec(), v, fm)
			for k := range wantD {
				if nn.BestI[k] != wantI[k] || nn.BestD[k] != wantD[k] {
					t.Fatalf("%v/%v: query %d got (%v,%d), want (%v,%d)",
						v, fm, k, nn.BestD[k], nn.BestI[k], wantD[k], wantI[k])
				}
			}
		}
	}
}

func TestNNBoundsPrune(t *testing.T) {
	qpts := geom.Generate(geom.Uniform, 1000, 7)
	rpts := geom.Generate(geom.Uniform, 1000, 8)
	q := kdtree.MustBuild(qpts, 8)
	r := kdtree.MustBuild(rpts, 8)
	nn := NewNN(q, r)
	st := runSpec(t, nn.Spec(), nest.Original(), nest.FlagCounter)
	if nn.PairOps >= int64(len(qpts))*int64(len(rpts))/2 {
		t.Fatalf("NN pruning ineffective: %d pair ops", nn.PairOps)
	}
	if st.TruncChecks == 0 {
		t.Fatal("no truncation checks happened")
	}
}

func TestKNNMatchesBruteForceAllSchedules(t *testing.T) {
	for _, k := range []int{1, 5} {
		qpts := geom.Generate(geom.Clustered, 250, 9)
		rpts := geom.Generate(geom.Clustered, 350, 10)
		wantD, wantI := BruteKNN(qpts, rpts, k, false)
		q := kdtree.MustBuild(qpts, 8)
		r := kdtree.MustBuild(rpts, 8)
		kn := NewKNN(q, r, k)
		for _, v := range allVariants {
			kn.Reset()
			runSpec(t, kn.Spec(), v, nest.FlagCounter)
			for qi := range qpts {
				gotD, gotI := kn.Result(qi)
				if len(gotD) != len(wantD[qi]) {
					t.Fatalf("k=%d %v: query %d has %d neighbors, want %d", k, v, qi, len(gotD), len(wantD[qi]))
				}
				for n := range gotD {
					if gotD[n] != wantD[qi][n] || gotI[n] != wantI[qi][n] {
						t.Fatalf("k=%d %v: query %d neighbor %d got (%v,%d), want (%v,%d)",
							k, v, qi, n, gotD[n], gotI[n], wantD[qi][n], wantI[qi][n])
					}
				}
			}
		}
	}
}

func TestKNNSelfJoinOverVPTree(t *testing.T) {
	// The paper's VP benchmark: kNN (k=10 there; smaller here) over a
	// vantage-point tree.
	pts := geom.Generate(geom.Clustered, 400, 11)
	const k = 4
	wantD, _ := BruteKNN(pts, pts, k, true)
	ix := vptree.MustBuild(pts, 8, 21)
	kn := NewKNN(ix, ix, k)
	for _, v := range allVariants {
		kn.Reset()
		runSpec(t, kn.Spec(), v, nest.FlagCounter)
		for qi := range pts {
			gotD, _ := kn.Result(qi)
			for n := range gotD {
				if gotD[n] != wantD[qi][n] {
					t.Fatalf("%v: query %d neighbor %d distance %v, want %v",
						v, qi, n, gotD[n], wantD[qi][n])
				}
			}
		}
	}
}

func TestKNNFewerRefsThanK(t *testing.T) {
	qpts := geom.Generate(geom.Uniform, 20, 12)
	rpts := geom.Generate(geom.Uniform, 3, 13)
	q := kdtree.MustBuild(qpts, 4)
	r := kdtree.MustBuild(rpts, 4)
	kn := NewKNN(q, r, 5)
	runSpec(t, kn.Spec(), nest.Twisted(), nest.FlagCounter)
	wantD, wantI := BruteKNN(qpts, rpts, 5, false)
	for qi := range qpts {
		gotD, gotI := kn.Result(qi)
		if len(gotD) != 3 {
			t.Fatalf("query %d has %d neighbors, want all 3 refs", qi, len(gotD))
		}
		for n := range gotD {
			if gotD[n] != wantD[qi][n] || gotI[n] != wantI[qi][n] {
				t.Fatalf("query %d neighbor %d mismatch", qi, n)
			}
		}
	}
}

func TestKheap(t *testing.T) {
	h := kheap{k: 3}
	if got := h.kth(); !math.IsInf(got, 1) {
		t.Fatalf("empty kth = %v", got)
	}
	for _, d := range []float64{5, 1, 9, 3, 7, 2} {
		h.offer(neighbor{d: d, idx: int32(d)})
	}
	ns := h.sorted()
	if len(ns) != 3 || ns[0].d != 1 || ns[1].d != 2 || ns[2].d != 3 {
		t.Fatalf("sorted = %v", ns)
	}
	if h.kth() != 3 {
		t.Fatalf("kth = %v", h.kth())
	}
	// Ties broken by index: a later equal-distance candidate with a larger
	// index must not displace; with a smaller index it must.
	h2 := kheap{k: 1}
	h2.offer(neighbor{d: 4, idx: 7})
	h2.offer(neighbor{d: 4, idx: 9})
	if h2.ns[0].idx != 7 {
		t.Fatal("tie displaced by larger index")
	}
	h2.offer(neighbor{d: 4, idx: 2})
	if h2.ns[0].idx != 2 {
		t.Fatal("tie not displaced by smaller index")
	}
}

func TestDuplicatePointsNNDeterministic(t *testing.T) {
	// Many exactly-coincident points: tie-breaking must keep results
	// schedule-independent.
	base := geom.Generate(geom.Uniform, 50, 14)
	pts := append(append([]geom.Point{}, base...), base...) // every point twice
	q := kdtree.MustBuild(pts, 4)
	r := kdtree.MustBuild(pts, 4)
	wantD, wantI := BruteNN(pts, pts)
	nn := NewNN(q, r)
	for _, v := range allVariants {
		nn.Reset()
		runSpec(t, nn.Spec(), v, nest.FlagSets)
		for k := range pts {
			if nn.BestD[k] != wantD[k] || nn.BestI[k] != wantI[k] {
				t.Fatalf("%v: duplicate-point query %d got (%v,%d), want (%v,%d)",
					v, k, nn.BestD[k], nn.BestI[k], wantD[k], wantI[k])
			}
		}
	}
}

// Iteration counts across schedules reproduce the §4.2 ordering on a real
// dual-tree workload (this is the shape behind the 1.25B/5.61B/1.31B/1.27B
// point-correlation numbers).
func TestPCIterationOverheadShape(t *testing.T) {
	pts := geom.Generate(geom.Clustered, 4000, 15)
	ix := kdtree.MustBuild(pts, 8)
	pc := NewPC(ix, ix, 0.03)
	run := func(v nest.Variant, subtree bool) nest.Stats {
		pc.Reset()
		e := nest.MustNew(pc.Spec())
		e.SubtreeTruncation = subtree
		e.Run(v)
		return e.Stats
	}
	orig := run(nest.Original(), true)
	inter := run(nest.Interchanged(), false)
	tw := run(nest.Twisted(), false)
	twSub := run(nest.Twisted(), true)
	if !(inter.Iterations > tw.Iterations && tw.Iterations >= twSub.Iterations && twSub.Iterations >= orig.Iterations) {
		t.Fatalf("iteration ordering violated: orig=%d twist+sub=%d twist=%d inter=%d",
			orig.Iterations, twSub.Iterations, tw.Iterations, inter.Iterations)
	}
	// Twisting should be within a small multiple of the original, while
	// interchange explodes (§4.2: 4%% vs ~4.5x in the paper).
	if float64(twSub.Iterations) > 2.0*float64(orig.Iterations) {
		t.Fatalf("twisted iterations %d more than 2x original %d", twSub.Iterations, orig.Iterations)
	}
	if float64(inter.Iterations) < 1.5*float64(orig.Iterations) {
		t.Fatalf("interchange iterations %d suspiciously low vs original %d", inter.Iterations, orig.Iterations)
	}
}

func buildIndexes(n int, seed int64) (*spatial.Index, *spatial.Index) {
	q := kdtree.MustBuild(geom.Generate(geom.Clustered, n, seed), 8)
	r := kdtree.MustBuild(geom.Generate(geom.Clustered, n, seed+1), 8)
	return q, r
}

func BenchmarkPCOriginal(b *testing.B) {
	q, r := buildIndexes(1<<12, 1)
	pc := NewPC(q, r, 0.05)
	e := nest.MustNew(pc.Spec())
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		pc.Reset()
		e.Run(nest.Original())
	}
}

func BenchmarkPCTwisted(b *testing.B) {
	q, r := buildIndexes(1<<12, 1)
	pc := NewPC(q, r, 0.05)
	e := nest.MustNew(pc.Spec())
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		pc.Reset()
		e.Run(nest.Twisted())
	}
}
