package oracle

import (
	"strings"
	"testing"

	"twist/internal/nest"
	"twist/internal/tree"
)

// regularSpec is a plain cross product of two balanced trees.
func regularSpec(no, ni int) nest.Spec {
	return nest.Spec{
		Outer: tree.NewBalanced(no),
		Inner: tree.NewBalanced(ni),
		Work:  func(o, i tree.NodeID) {},
	}
}

func allVariants(cutoff int) []nest.Variant {
	return []nest.Variant{
		nest.Original(),
		nest.Interchanged(),
		nest.Twisted(),
		nest.TwistedCutoff(cutoff),
	}
}

// The golden trace must be exactly the baseline execution: same sequence,
// column count, and per-column inner-preorder order.
func TestCaptureMatchesBaselineRun(t *testing.T) {
	t.Parallel()
	s := regularSpec(31, 17)
	g, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}
	var want []Visit
	run := s
	run.Work = func(o, i tree.NodeID) { want = append(want, Visit{o, i}) }
	nest.MustNew(run).Run(nest.Original())
	if len(g.Seq) != len(want) || len(want) != 31*17 {
		t.Fatalf("golden trace %d visits, baseline %d, want %d", len(g.Seq), len(want), 31*17)
	}
	for k := range want {
		if g.Seq[k] != want[k] {
			t.Fatalf("visit %d: golden %v, baseline %v", k, g.Seq[k], want[k])
		}
	}
	if g.Columns() != 31 {
		t.Fatalf("columns = %d, want 31", g.Columns())
	}
	if fs := FromSequence(want); fs.Digest() != g.Digest() || fs.ColumnDigest() != g.ColumnDigest() {
		t.Fatal("FromSequence digests differ from Capture digests on the same sequence")
	}
}

// Every engine schedule, flag representation, and subtree-cut setting must
// pass the oracle across a sweep of generated spaces.
func TestVariantsEquivalentOnGeneratedSpaces(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 40; seed++ {
		spec, desc := RandomSpec(seed, 48)
		g, err := Capture(spec)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		for _, v := range allVariants(int(seed % 9)) {
			for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
				for _, subtree := range []bool{false, true} {
					if vd := g.CheckVariant(spec, v, fm, subtree); !vd.OK {
						t.Fatalf("%s: %v", desc, vd)
					}
				}
			}
		}
	}
}

// The parallel executors are oracle-checked permutations at several worker
// counts, both static and stealing.
func TestParallelSchedulesAreCheckedPermutations(t *testing.T) {
	t.Parallel()
	spec, desc := RandomSpec(7, 96)
	g, err := Capture(spec)
	if err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	for _, workers := range []int{1, 4, 8} {
		for _, stealing := range []bool{false, true} {
			vd, err := g.CheckParallel(spec, nest.RunConfig{
				Variant: nest.Twisted(), Workers: workers, Stealing: stealing,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !vd.OK {
				t.Fatalf("%s: %v", desc, vd)
			}
		}
	}
}

// brokenRunner wraps a base runner, dropping or duplicating one target pair.
func brokenRunner(base Runner, target Visit, extra bool) Runner {
	return func(s nest.Spec, o, i tree.NodeID, visit func(o, i tree.NodeID)) {
		base(s, o, i, func(vo, vi tree.NodeID) {
			if (Visit{vo, vi}) == target {
				if !extra {
					return // dropped
				}
				visit(vo, vi) // duplicated
			}
			visit(vo, vi)
		})
	}
}

// The acceptance-criteria mutation test: a deliberately broken variant — one
// leaf pair dropped — is caught, and the counterexample is minimized all the
// way down to the 1×1 sub-space naming exactly that pair.
func TestBrokenVariantMinimizedCounterexample(t *testing.T) {
	t.Parallel()
	s := regularSpec(63, 31)
	g, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}
	oLeaves := s.Outer.Leaves(nil)
	iLeaves := s.Inner.Leaves(nil)
	target := Visit{oLeaves[len(oLeaves)/2], iLeaves[len(iLeaves)/3]}

	base := EngineRunner(nest.Twisted(), nest.FlagCounter, true)
	v := g.Check(s, brokenRunner(base, target, false), "dropped-pair")
	if v.OK {
		t.Fatal("dropped visit not caught")
	}
	if v.DiffPairs != 1 {
		t.Fatalf("DiffPairs = %d, want 1 (%v)", v.DiffPairs, v)
	}
	if len(v.Missing) != 1 || v.Missing[0].Visit != target || v.Missing[0].Want != 1 || v.Missing[0].Got != 0 {
		t.Fatalf("Missing = %v, want [%v got 0 want 1]", v.Missing, target)
	}
	if v.OuterRoot != target.O || v.InnerRoot != target.I {
		t.Fatalf("minimized to (o=%d, i=%d), want the 1x1 sub-space (o=%d, i=%d)",
			v.OuterRoot, v.InnerRoot, target.O, target.I)
	}
	if !strings.Contains(v.String(), "DIVERGES") {
		t.Fatalf("verdict string %q lacks DIVERGES", v)
	}
	if v.Err() == nil {
		t.Fatal("failing verdict has nil Err")
	}

	// The dual mutation — the pair visited twice — lands in Extra.
	v = g.Check(s, brokenRunner(base, target, true), "doubled-pair")
	if v.OK || len(v.Extra) != 1 || v.Extra[0].Visit != target || v.Extra[0].Got != 2 {
		t.Fatalf("doubled visit verdict = %v", v)
	}
	if v.OuterRoot != target.O || v.InnerRoot != target.I {
		t.Fatalf("doubled visit minimized to (o=%d, i=%d), want (o=%d, i=%d)",
			v.OuterRoot, v.InnerRoot, target.O, target.I)
	}
}

// Reordering visits inside one column is a dependence violation (§3.3: a
// column's intra-traversal order is fixed) even though the multiset is
// unchanged; the oracle must flag the column.
func TestColumnOrderViolationCaught(t *testing.T) {
	t.Parallel()
	s := regularSpec(15, 15)
	g, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}
	victim := s.Outer.Root()
	base := EngineRunner(nest.Original(), nest.FlagCounter, true)
	reversed := func(spec nest.Spec, o, i tree.NodeID, visit func(o, i tree.NodeID)) {
		var buf []Visit
		base(spec, o, i, func(vo, vi tree.NodeID) { buf = append(buf, Visit{vo, vi}) })
		var col []Visit
		for _, v := range buf {
			if v.O == victim {
				col = append(col, v)
			}
		}
		k := len(col)
		for _, v := range buf {
			if v.O == victim {
				k--
				v = col[k]
			}
			visit(v.O, v.I)
		}
	}
	v := g.Check(s, reversed, "reversed-column")
	if v.OK {
		t.Fatal("intra-column reordering not caught")
	}
	if v.DiffPairs != 0 {
		t.Fatalf("multiset should match, got %d differing pairs", v.DiffPairs)
	}
	if v.OrderColumn != victim {
		t.Fatalf("OrderColumn = %d, want %d (%v)", v.OrderColumn, victim, v)
	}
}

// A truncation predicate that changes across runs (adaptive state the caller
// failed to freeze) must be rejected at capture time, not silently baked
// into a wrong golden trace.
func TestStatefulPredicateRejected(t *testing.T) {
	t.Parallel()
	s := regularSpec(31, 31)
	calls := 0
	s.TruncInner2 = func(o, i tree.NodeID) bool {
		calls++
		return calls > 400 // fires at different pairs on the second run
	}
	if _, err := Capture(s); err == nil {
		t.Fatal("stateful predicate not rejected")
	} else if !strings.Contains(err.Error(), "stateful") {
		t.Fatalf("error %q does not name statefulness", err)
	}
}

// Digest is order-independent (any permutation hashes the same) while
// ColumnDigest pins within-column order.
func TestDigestSensitivity(t *testing.T) {
	t.Parallel()
	s := regularSpec(7, 7)
	g, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Visit, len(g.Seq))
	for k, v := range g.Seq {
		rev[len(rev)-1-k] = v
	}
	fr := FromSequence(rev)
	if fr.Digest() != g.Digest() {
		t.Fatal("Digest is order-sensitive; permutations must hash equal")
	}
	if fr.ColumnDigest() == g.ColumnDigest() {
		t.Fatal("ColumnDigest missed a within-column reversal")
	}
	if g.TruncDigest() != fr.TruncDigest() {
		t.Fatal("TruncDigest of two empty truncation sets differs")
	}
}

// Generated shapes must all be valid topologies of the requested size class.
func TestShapesValid(t *testing.T) {
	t.Parallel()
	for sh := Shape(0); sh < numShapes; sh++ {
		for _, n := range []int{1, 2, 17, 64} {
			topo := sh.Topology(n, 5)
			if err := topo.Validate(); err != nil {
				t.Fatalf("%v/%d: %v", sh, n, err)
			}
			if topo.Len() < 1 {
				t.Fatalf("%v/%d: empty topology", sh, n)
			}
		}
	}
}
