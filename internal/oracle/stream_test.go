package oracle_test

import (
	"testing"

	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/oracle"
	"twist/internal/tree"
	"twist/internal/workloads"
)

// recordingSim is a memsim.Simulator that records the address trace it is
// fed instead of simulating caches. Stream serializes all access to it.
type recordingSim struct {
	seq    []memsim.Addr
	counts map[memsim.Addr]int64
}

func newRecordingSim() *recordingSim {
	return &recordingSim{counts: make(map[memsim.Addr]int64)}
}

func (r *recordingSim) Access(a memsim.Addr) {
	r.seq = append(r.seq, a)
	r.counts[a]++
}

func (r *recordingSim) AccessBatch(as []memsim.Addr) {
	for _, a := range as {
		r.Access(a)
	}
}

func (r *recordingSim) Stats() []memsim.LevelStats   { return nil }
func (r *recordingSim) Reset()                       { r.seq = nil; r.counts = make(map[memsim.Addr]int64) }
func (r *recordingSim) ResetStats()                  {}
func (r *recordingSim) Publish(obs.Recorder, string) {}
func (r *recordingSim) Close()                       {}

// expand replays the golden trace's visits through the instance's Trace
// function, producing the address stream the simulator *should* see.
func expand(in *workloads.Instance, g *oracle.Trace) []memsim.Addr {
	var want []memsim.Addr
	for _, v := range g.Seq {
		in.Trace(v.O, v.I, func(a memsim.Addr) { want = append(want, a) })
	}
	return want
}

// Sequential wiring: with one Sink and the baseline schedule, the address
// sequence the simulator consumes is exactly the golden trace expanded in
// order — the memsim pipeline neither drops, reorders, nor invents accesses.
func TestStreamSequentialTraceEqualsOracleTrace(t *testing.T) {
	t.Parallel()
	in := workloads.TreeJoin(96, 3)
	spec := in.OracleSpec()
	g, err := oracle.Capture(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := expand(in, g)

	rec := newRecordingSim()
	st := memsim.NewStream(rec, 64)
	sink := st.Sink()
	run := spec
	run.Work = func(o, i tree.NodeID) { in.Trace(o, i, sink.Emit) }
	nest.MustNew(run).Run(nest.Original())
	st.Close()

	if st.Dropped() != 0 {
		t.Fatalf("stream dropped %d addresses", st.Dropped())
	}
	if len(rec.seq) != len(want) {
		t.Fatalf("simulator consumed %d addresses, oracle trace expands to %d", len(rec.seq), len(want))
	}
	for k := range want {
		if rec.seq[k] != want[k] {
			t.Fatalf("address %d: simulator saw %#x, oracle trace %#x", k, rec.seq[k], want[k])
		}
	}
}

// Parallel wiring: under the work-stealing executor with per-worker sinks
// (the production missRatesWith arrangement), batches interleave in
// completion order but the address *multiset* fed to the simulator must
// still equal the oracle trace's expansion exactly.
func TestStreamParallelTraceMatchesOracleMultiset(t *testing.T) {
	t.Parallel()
	in := workloads.PointCorr(256, 0.4, 9)
	spec := in.OracleSpec()
	g, err := oracle.Capture(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := make(map[memsim.Addr]int64)
	for _, a := range expand(in, g) {
		wantCounts[a]++
	}

	const workers = 4
	rec := newRecordingSim()
	st := memsim.NewStream(rec, 128)
	sinks := make([]*memsim.Sink, workers)
	for w := range sinks {
		sinks[w] = st.Sink()
	}
	run := spec
	run.Work = func(o, i tree.NodeID) {}
	cfg := nest.RunConfig{
		Variant: nest.Twisted(), Workers: workers, Stealing: true,
		WrapWork: func(worker int, _ func(o, i tree.NodeID)) func(o, i tree.NodeID) {
			sk := sinks[worker]
			return func(o, i tree.NodeID) { in.Trace(o, i, sk.Emit) }
		},
	}
	if _, err := nest.MustNew(run).RunWith(cfg); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if st.Dropped() != 0 {
		t.Fatalf("stream dropped %d addresses", st.Dropped())
	}
	if len(rec.counts) != len(wantCounts) {
		t.Fatalf("simulator saw %d distinct addresses, oracle trace expands to %d", len(rec.counts), len(wantCounts))
	}
	for a, n := range wantCounts {
		if rec.counts[a] != n {
			t.Fatalf("address %#x: simulator count %d, oracle trace %d", a, rec.counts[a], n)
		}
	}
}
