package oracle_test

import (
	"fmt"

	"twist/internal/nest"
	"twist/internal/oracle"
	"twist/internal/workloads"
)

// The three-line oracle check a transformation PR copies: capture the golden
// trace of the baseline schedule, check the transformed schedule against it,
// assert the verdict. OracleSpec freezes any adaptive pruning state first;
// on failure, verdict.String() names the minimized counterexample sub-space.
func Example() {
	in := workloads.PointCorr(128, 0.4, 1)
	spec := in.OracleSpec()

	golden, _ := oracle.Capture(spec)
	verdict := golden.CheckVariant(spec, nest.Twisted(), nest.FlagCounter, true)
	fmt.Println(verdict.OK)

	// Output:
	// true
}
