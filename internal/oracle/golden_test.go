package oracle_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"twist/internal/oracle"
	"twist/internal/workloads"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden-trace fixtures under internal/oracle/testdata")

// The fixture point: small enough that capture is instant, large enough that
// every benchmark's truncation machinery engages. Documented (with the
// regeneration command) in EXPERIMENTS.md.
const (
	goldenScale = 256
	goldenSeed  = 1
)

// fixture is the serialized identity of one workload's golden trace.
type fixture struct {
	visits, truncs, columns    int
	digest, colDigest, truncDg uint64
}

func (fx fixture) render(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Golden trace fixture for the %s benchmark at Suite(%d, %d).\n", name, goldenScale, goldenSeed)
	b.WriteString("# Regenerate: go test ./internal/oracle -run TestGoldenTraceFixtures -update-golden\n")
	fmt.Fprintf(&b, "visits: %d\n", fx.visits)
	fmt.Fprintf(&b, "truncs: %d\n", fx.truncs)
	fmt.Fprintf(&b, "columns: %d\n", fx.columns)
	fmt.Fprintf(&b, "digest: %#016x\n", fx.digest)
	fmt.Fprintf(&b, "column_digest: %#016x\n", fx.colDigest)
	fmt.Fprintf(&b, "trunc_digest: %#016x\n", fx.truncDg)
	return b.String()
}

func parseFixture(t *testing.T, data string) fixture {
	t.Helper()
	var fx fixture
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("malformed fixture line %q", line)
		}
		// Base 0 accepts both the decimal counts and the 0x-prefixed digests.
		n, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
		if err != nil {
			t.Fatalf("fixture line %q: %v", line, err)
		}
		switch key {
		case "visits":
			fx.visits = int(n)
		case "truncs":
			fx.truncs = int(n)
		case "columns":
			fx.columns = int(n)
		case "digest":
			fx.digest = n
		case "column_digest":
			fx.colDigest = n
		case "trunc_digest":
			fx.truncDg = n
		default:
			t.Fatalf("unknown fixture key %q", key)
		}
	}
	return fx
}

// TestGoldenTraceFixtures pins the golden traces of all six workloads at a
// fixed small seed: any change to tree construction, truncation predicates,
// or the baseline schedule shows up as a digest mismatch here before it can
// silently shift every benchmark result.
func TestGoldenTraceFixtures(t *testing.T) {
	for k, name := range []string{"TJ", "MM", "PC", "NN", "KNN", "VP"} {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := workloads.Suite(goldenScale, goldenSeed)[k]
			spec := in.OracleSpec()
			g, err := oracle.Capture(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := fixture{
				visits:    g.Visits(),
				truncs:    len(g.Truncs),
				columns:   g.Columns(),
				digest:    g.Digest(),
				colDigest: g.ColumnDigest(),
				truncDg:   g.TruncDigest(),
			}
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got.render(name)), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			want := parseFixture(t, string(data))
			if got != want {
				t.Fatalf("golden trace drifted:\n got %+v\nwant %+v\nIf the change is intentional, regenerate: go test ./internal/oracle -run TestGoldenTraceFixtures -update-golden", got, want)
			}
		})
	}
}
