// Package oracle is the semantic-equivalence backstop for the paper's
// schedule transformations: it decides, for any reordered execution of a
// nested recursive iteration space, whether that execution was a *legal
// permutation* of the baseline recursion — and when it was not, it says
// where, with a minimized counterexample.
//
// The model (DESIGN.md §4.9) follows the paper's §3.3 soundness argument.
// A golden Trace captures the baseline (Original, Fig 2) schedule of a
// nest.Spec whose truncation predicates are pure functions of the node pair:
// the multiset of visited (o, i) pairs, and, per outer node o, the order in
// which o's column visits its inner nodes. Every legal schedule — interchange,
// twisting, truncated twisting, either truncation-flag representation, the
// §4.2 subtree cut, and any parallel decomposition of the outer tree — must
// then replay exactly that multiset, keeping each column's internal order
// (inner-tree preorder) intact, with each column confined to one worker.
// Checks verify all three properties and nothing else: the *placement* of
// truncation-flag operations legitimately differs across schedules and is
// deliberately outside the verdict (it is carried in the Trace only as a
// fixture digest).
//
// Statefully adaptive truncation (nearest-neighbor bounds that tighten as
// work runs) makes the visit multiset schedule-dependent; Capture detects
// such specs by running the baseline twice and refuses them. Workloads
// expose a purified spec via Instance.OracleSpec.
package oracle

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"twist/internal/nest"
	"twist/internal/tree"
)

// Visit is one executed iteration (o, i) of a nested recursive space.
type Visit struct {
	O, I tree.NodeID
}

// String implements fmt.Stringer.
func (v Visit) String() string { return fmt.Sprintf("(o=%d,i=%d)", v.O, v.I) }

// Trace is a golden trace of the baseline schedule.
type Trace struct {
	// Seq is the baseline visit sequence in execution order.
	Seq []Visit

	// Truncs records each (o, i) at which the truncation predicate fired
	// during the baseline run, in execution order. Transformed schedules
	// legitimately make truncation decisions at different pairs (region
	// flags, subtree cuts), so Truncs contributes to fixture digests but
	// never to an equivalence verdict.
	Truncs []Visit

	counts map[Visit]int32
	cols   map[tree.NodeID][]tree.NodeID
}

func newTrace() *Trace {
	return &Trace{
		counts: make(map[Visit]int32),
		cols:   make(map[tree.NodeID][]tree.NodeID),
	}
}

func (g *Trace) addVisit(o, i tree.NodeID) {
	v := Visit{o, i}
	g.Seq = append(g.Seq, v)
	g.counts[v]++
	g.cols[o] = append(g.cols[o], i)
}

// Visits reports the number of visits in the trace.
func (g *Trace) Visits() int { return len(g.Seq) }

// Columns reports the number of distinct outer nodes visited.
func (g *Trace) Columns() int { return len(g.cols) }

// splitmix64's finalizer: the bijective mixer behind all trace digests.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func visitKey(v Visit) uint64 {
	return uint64(uint32(v.O))<<32 | uint64(uint32(v.I))
}

// Digest is an order-independent hash of the visit multiset: any permutation
// of the same visits produces the same value.
func (g *Trace) Digest() uint64 {
	h := mix64(uint64(len(g.Seq)) + 0x9e3779b97f4a7c15)
	for _, v := range g.Seq {
		h += mix64(visitKey(v) + 0x9e3779b97f4a7c15)
	}
	return h
}

// ColumnDigest hashes the per-column visit orders: independent of the order
// in which columns were interleaved, but sensitive to any reordering of
// visits within one column.
func (g *Trace) ColumnDigest() uint64 {
	var h uint64
	for o, is := range g.cols {
		ch := uint64(14695981039346656037)
		for _, i := range is {
			ch = (ch ^ uint64(uint32(i))) * 1099511628211
		}
		h += mix64(uint64(uint32(o)) ^ ch)
	}
	return h
}

// TruncDigest is an order-independent hash of the truncation-decision
// multiset (fixture identity only; see Trace.Truncs).
func (g *Trace) TruncDigest() uint64 {
	h := mix64(uint64(len(g.Truncs)) + 0x9e3779b97f4a7c15)
	for _, v := range g.Truncs {
		h += mix64(visitKey(v) + 0x6a09e667f3bcc909)
	}
	return h
}

// FromSequence builds a Trace from an externally captured visit sequence —
// generated code executed out of process, a replayed log.
func FromSequence(seq []Visit) *Trace {
	g := newTrace()
	for _, v := range seq {
		g.addVisit(v.O, v.I)
	}
	return g
}

// Capture runs the baseline (Original) schedule of s and returns its golden
// trace. The spec's Work is replaced by the recorder — workload state is
// never mutated — so the truncation predicates must be pure functions of the
// node pair; Capture runs the baseline twice and reports an error if the two
// runs diverge (a stateful predicate). Use workloads.Instance.OracleSpec to
// purify the adaptive benchmarks first.
func Capture(s nest.Spec) (*Trace, error) {
	if s.Outer == nil || s.Inner == nil {
		return nil, errors.New("oracle: Spec.Outer and Spec.Inner must be non-nil")
	}
	return CaptureFrom(s, s.Outer.Root(), s.Inner.Root())
}

// CaptureFrom is Capture restricted to the sub-space rooted at outer node o
// and inner node i; it is the building block counterexample minimization
// descends with.
func CaptureFrom(s nest.Spec, o, i tree.NodeID) (*Trace, error) {
	a, err := captureOnce(s, o, i)
	if err != nil {
		return nil, err
	}
	b, err := captureOnce(s, o, i)
	if err != nil {
		return nil, err
	}
	if a.Digest() != b.Digest() || a.ColumnDigest() != b.ColumnDigest() || a.TruncDigest() != b.TruncDigest() {
		return nil, fmt.Errorf("oracle: truncation predicates are stateful — two identical baseline runs diverge (%d vs %d visits, %d vs %d truncations); freeze the adaptive state first (DESIGN.md §4.9)",
			len(a.Seq), len(b.Seq), len(a.Truncs), len(b.Truncs))
	}
	return a, nil
}

func captureOnce(s nest.Spec, o, i tree.NodeID) (*Trace, error) {
	g := newTrace()
	rec := s
	rec.Work = g.addVisit
	if t2 := s.TruncInner2; t2 != nil {
		rec.TruncInner2 = func(o, i tree.NodeID) bool {
			if t2(o, i) {
				g.Truncs = append(g.Truncs, Visit{o, i})
				return true
			}
			return false
		}
	}
	e, err := nest.New(rec)
	if err != nil {
		return nil, err
	}
	e.RunFrom(nest.Original(), o, i)
	return g, nil
}

// Runner executes the schedule under test on the sub-space rooted at (o, i)
// of s, reporting every visit. The oracle calls it with Work-irrelevant
// specs (visit is the only observable), possibly several times on shrinking
// sub-spaces during counterexample minimization.
type Runner func(s nest.Spec, o, i tree.NodeID, visit func(o, i tree.NodeID))

// EngineRunner adapts the in-repo engine to a Runner: variant v under flag
// mode fm, with or without the §4.2 subtree-truncation optimization, on the
// default recursive visit engine.
func EngineRunner(v nest.Variant, fm nest.FlagMode, subtree bool) Runner {
	return EngineRunnerOn(nest.EngineRecursive, v, fm, subtree)
}

// EngineRunnerOn is EngineRunner on an explicit visit engine (recursive or
// the iterative lowering, DESIGN.md §4.13). The engine axis must be invisible
// to the oracle — a diverging verdict here is an engine bug, not a schedule
// bug.
func EngineRunnerOn(eng nest.Engine, v nest.Variant, fm nest.FlagMode, subtree bool) Runner {
	return func(s nest.Spec, o, i tree.NodeID, visit func(o, i tree.NodeID)) {
		s.Work = visit
		e := nest.MustNew(s)
		e.Engine = eng
		e.Flags = fm
		e.SubtreeTruncation = subtree
		e.RunFrom(v, o, i)
	}
}

// maxDiffs caps the pair diffs listed in a Verdict; DiffPairs always carries
// the full count.
const maxDiffs = 8

// Diff is one divergent entry of the visit multiset.
type Diff struct {
	Visit
	Want, Got int32
}

// String implements fmt.Stringer.
func (d Diff) String() string {
	return fmt.Sprintf("(o=%d,i=%d got %d want %d)", d.O, d.I, d.Got, d.Want)
}

// Verdict is the outcome of one equivalence check.
type Verdict struct {
	// OK reports permutation equivalence: visit multiset equal to the golden
	// trace, per-column order intact, no column split across workers.
	OK bool

	// Label identifies the schedule under test, for error messages.
	Label string

	// OuterRoot/InnerRoot is the sub-space the verdict refers to: the full
	// roots for a passing check, the minimal failing sub-space found by
	// greedy shrinking for a failing one.
	OuterRoot, InnerRoot tree.NodeID

	// Missing and Extra list multiset divergences (golden-has-more and
	// run-has-more respectively), sorted by (o, i) and capped at maxDiffs
	// entries each; DiffPairs is the uncapped count of differing pairs.
	Missing, Extra []Diff
	DiffPairs      int

	// OrderColumn, when not tree.Nil, is the first outer column whose
	// intra-column visit order diverges from the baseline, at position
	// OrderIndex. Only meaningful when the multiset matched.
	OrderColumn tree.NodeID
	OrderIndex  int

	// SplitColumn, when not tree.Nil, is a column whose visits were spread
	// across two parallel streams — a violation of the §3.3 rule that one
	// outer column's iterations never run concurrently.
	SplitColumn tree.NodeID
}

// String implements fmt.Stringer.
func (v *Verdict) String() string {
	if v.OK {
		return "oracle: " + v.Label + ": equivalent"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %s: DIVERGES", v.Label)
	if v.SplitColumn != tree.Nil {
		fmt.Fprintf(&b, "; column o=%d split across parallel streams", v.SplitColumn)
	}
	if v.DiffPairs > 0 {
		fmt.Fprintf(&b, "; %d pair(s) differ, minimal sub-space (o=%d, i=%d)", v.DiffPairs, v.OuterRoot, v.InnerRoot)
		if len(v.Missing) > 0 {
			fmt.Fprintf(&b, "; missing %v", v.Missing)
		}
		if len(v.Extra) > 0 {
			fmt.Fprintf(&b, "; extra %v", v.Extra)
		}
	}
	if v.OrderColumn != tree.Nil {
		fmt.Fprintf(&b, "; column o=%d order diverges at position %d", v.OrderColumn, v.OrderIndex)
	}
	return b.String()
}

// Err returns nil for a passing verdict and an error carrying String()
// otherwise.
func (v *Verdict) Err() error {
	if v.OK {
		return nil
	}
	return errors.New(v.String())
}

// compare is the single verdict kernel: merge the streams, diff the multiset
// against the golden trace, and — when the multiset matches — check each
// column's internal order and single-stream confinement.
func (g *Trace) compare(label string, streams [][]Visit, o, i tree.NodeID) *Verdict {
	v := &Verdict{
		OK: true, Label: label,
		OuterRoot: o, InnerRoot: i,
		OrderColumn: tree.Nil, OrderIndex: -1,
		SplitColumn: tree.Nil,
	}
	got := make(map[Visit]int32, len(g.counts))
	owner := make(map[tree.NodeID]int)
	cols := make(map[tree.NodeID][]tree.NodeID, len(g.cols))
	for w, seq := range streams {
		for _, vis := range seq {
			got[vis]++
			cols[vis.O] = append(cols[vis.O], vis.I)
			if prev, ok := owner[vis.O]; ok && prev != w {
				if v.SplitColumn == tree.Nil {
					v.SplitColumn = vis.O
					v.OK = false
				}
			} else {
				owner[vis.O] = w
			}
		}
	}

	var diffs []Diff
	for vis, want := range g.counts {
		if got[vis] != want {
			diffs = append(diffs, Diff{vis, want, got[vis]})
		}
	}
	for vis, gc := range got {
		if _, ok := g.counts[vis]; !ok {
			diffs = append(diffs, Diff{vis, 0, gc})
		}
	}
	if len(diffs) > 0 {
		v.OK = false
		v.DiffPairs = len(diffs)
		sort.Slice(diffs, func(a, b int) bool {
			if diffs[a].O != diffs[b].O {
				return diffs[a].O < diffs[b].O
			}
			return diffs[a].I < diffs[b].I
		})
		for _, d := range diffs {
			if d.Got < d.Want && len(v.Missing) < maxDiffs {
				v.Missing = append(v.Missing, d)
			}
			if d.Got > d.Want && len(v.Extra) < maxDiffs {
				v.Extra = append(v.Extra, d)
			}
		}
		return v
	}

	// Multiset matched: columns have identical contents, so order is the
	// only remaining question. Iterate in sorted column order so the first
	// reported divergence is deterministic.
	keys := make([]tree.NodeID, 0, len(g.cols))
	for col := range g.cols {
		keys = append(keys, col)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, col := range keys {
		want, have := g.cols[col], cols[col]
		for k := range want {
			if k >= len(have) || want[k] != have[k] {
				v.OK = false
				v.OrderColumn = col
				v.OrderIndex = k
				return v
			}
		}
	}
	return v
}

// checkAt runs the schedule under test once on the sub-space rooted at
// (o, i) and compares it against golden.
func checkAt(golden *Trace, s nest.Spec, run Runner, label string, o, i tree.NodeID) *Verdict {
	var seq []Visit
	run(s, o, i, func(o, i tree.NodeID) { seq = append(seq, Visit{o, i}) })
	return golden.compare(label, [][]Visit{seq}, o, i)
}

// Check verifies that the schedule run produces a legal permutation of the
// golden trace over the full space of s. On failure the verdict is greedily
// minimized: the check descends into any child sub-space — outer child ×
// same inner root, or same outer root × inner child — that still fails
// (re-capturing the sub-space's own golden trace via CaptureFrom), until no
// child reproduces the divergence. For a dropped or duplicated leaf pair
// this shrinks all the way to the 1×1 sub-space naming the exact pair.
func (g *Trace) Check(s nest.Spec, run Runner, label string) *Verdict {
	o, i := s.Outer.Root(), s.Inner.Root()
	v := checkAt(g, s, run, label, o, i)
	if v.OK {
		return v
	}
	for {
		descended := false
		var cands [4][2]tree.NodeID
		cands[0] = [2]tree.NodeID{s.Outer.Left(o), i}
		cands[1] = [2]tree.NodeID{s.Outer.Right(o), i}
		cands[2] = [2]tree.NodeID{o, s.Inner.Left(i)}
		cands[3] = [2]tree.NodeID{o, s.Inner.Right(i)}
		for _, cand := range cands {
			co, ci := cand[0], cand[1]
			if co == tree.Nil || ci == tree.Nil {
				continue
			}
			sub, err := CaptureFrom(s, co, ci)
			if err != nil {
				return v // stateful below the root? keep the current verdict
			}
			if sv := checkAt(sub, s, run, label, co, ci); !sv.OK {
				o, i, v = co, ci, sv
				descended = true
				break
			}
		}
		if !descended {
			return v
		}
	}
}

// CheckVariant checks one engine schedule (variant × flag mode × subtree
// optimization) against the golden trace, with counterexample minimization,
// on the default recursive visit engine.
func (g *Trace) CheckVariant(s nest.Spec, v nest.Variant, fm nest.FlagMode, subtree bool) *Verdict {
	return g.CheckVariantOn(s, nest.EngineRecursive, v, fm, subtree)
}

// CheckVariantOn is CheckVariant on an explicit visit engine. The label (and
// so the verdict text) only mentions the engine when it is not the recursive
// default, keeping recursive verdicts byte-identical to CheckVariant's.
func (g *Trace) CheckVariantOn(s nest.Spec, eng nest.Engine, v nest.Variant, fm nest.FlagMode, subtree bool) *Verdict {
	label := fmt.Sprintf("%v flags=%v subtree=%v", v, fm, subtree)
	if eng != nest.EngineRecursive {
		label += fmt.Sprintf(" engine=%v", eng)
	}
	return g.Check(s, EngineRunnerOn(eng, v, fm, subtree), label)
}

// CheckSequence compares an externally produced visit sequence (no re-run is
// possible, so no minimization either).
func (g *Trace) CheckSequence(label string, seq []Visit) *Verdict {
	return g.compare(label, [][]Visit{seq}, tree.Nil, tree.Nil)
}

// CheckParallel runs s under the parallel executor described by cfg —
// workers, spawn depth, static or stealing — and verifies the merged
// execution is a legal permutation of the golden trace with every outer
// column confined to a single worker. The oracle owns cfg.WrapWork (it
// installs per-worker visit recorders) and clears cfg.ForTask: the spec must
// already be pure, so task-private state sharding is unnecessary.
func (g *Trace) CheckParallel(s nest.Spec, cfg nest.RunConfig) (*Verdict, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	bufs := make([][]Visit, cfg.Workers)
	cfg.ForTask = nil
	cfg.WrapWork = func(worker int, _ func(o, i tree.NodeID)) func(o, i tree.NodeID) {
		return func(o, i tree.NodeID) {
			bufs[worker] = append(bufs[worker], Visit{o, i})
		}
	}
	run := s
	run.Work = func(o, i tree.NodeID) {} // replaced per worker by WrapWork
	e, err := nest.New(run)
	if err != nil {
		return nil, err
	}
	if _, err := e.RunWith(cfg); err != nil {
		return nil, err
	}
	label := fmt.Sprintf("%v workers=%d stealing=%v", cfg.Variant, cfg.Workers, cfg.Stealing)
	if cfg.Engine != nest.EngineRecursive {
		label += fmt.Sprintf(" engine=%v", cfg.Engine)
	}
	return g.compare(label, bufs, s.Outer.Root(), s.Inner.Root()), nil
}
