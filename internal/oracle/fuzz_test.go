package oracle

import (
	"testing"

	"twist/internal/nest"
)

// FuzzOracleRandomSpaces is the oracle's own randomized differential test:
// one seed determines a whole space — tree shapes (balanced, chains, skewed,
// BSTs, kd/vp point sets), sizes, and pure truncation predicates — and every
// engine schedule plus one parallel configuration must replay its baseline
// trace as a legal permutation. Any divergence the fuzzer finds is a real
// engine or oracle bug reproducible from the single seed.
func FuzzOracleRandomSpaces(f *testing.F) {
	for _, seed := range []int64{1, 2, 17, 99} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		spec, desc := RandomSpec(seed, 56)
		g, err := Capture(spec)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		cutoff := int(uint64(seed) % 16)
		for _, v := range allVariants(cutoff) {
			for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
				if vd := g.CheckVariant(spec, v, fm, true); !vd.OK {
					t.Fatalf("%s: %v", desc, vd)
				}
			}
		}
		vd, err := g.CheckParallel(spec, nest.RunConfig{
			Variant: nest.Twisted(), Workers: 3, Stealing: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if !vd.OK {
			t.Fatalf("%s: parallel: %v", desc, vd)
		}
	})
}
