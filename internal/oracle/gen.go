package oracle

// Seeded deterministic generators for differential fuzzing: tree shapes
// covering the regimes the paper's analysis distinguishes (balanced,
// degenerate chains, skewed, random BSTs, kd/vp point-set trees) and pure
// truncation predicates (hash-based non-hereditary, size-product
// hereditary). Everything is a pure function of its seed, so a fuzzer
// counterexample is a single integer.

import (
	"fmt"
	"math/rand"

	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
	"twist/internal/tree"
	"twist/internal/vptree"
)

// Shape enumerates generated tree shapes.
type Shape uint8

const (
	ShapeBalanced Shape = iota
	ShapeChain
	ShapeBST
	ShapeSkewed
	ShapeKD
	ShapeVP
	numShapes
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeBalanced:
		return "balanced"
	case ShapeChain:
		return "chain"
	case ShapeBST:
		return "bst"
	case ShapeSkewed:
		return "skewed"
	case ShapeKD:
		return "kd"
	case ShapeVP:
		return "vp"
	}
	return "unknown"
}

// Topology builds a deterministic tree of this shape with roughly n nodes
// (the point-set shapes build over n points, whose leaf buckets make the
// topology smaller). Shapes wrap modulo the shape count, so a fuzzer can
// feed raw bytes.
func (s Shape) Topology(n int, seed int64) *tree.Topology {
	if n < 1 {
		n = 1
	}
	switch s % numShapes {
	case ShapeChain:
		return tree.NewChain(n)
	case ShapeBST:
		return tree.NewRandomBST(n, seed)
	case ShapeSkewed:
		return skewed(n)
	case ShapeKD:
		return kdtree.MustBuild(geom.Generate(geom.Uniform, n, seed), 4).Topo
	case ShapeVP:
		return vptree.MustBuild(geom.Generate(geom.Clustered, n, seed), 4, seed).Topo
	}
	return tree.NewBalanced(n)
}

// skewed builds a left-heavy tree: each node gives three quarters of the
// remaining nodes to its left subtree. Depth grows like log₄∕₃(n) — deeper
// than balanced, shallower than a chain — exercising the twisting size
// comparison on persistently unequal children.
func skewed(n int) *tree.Topology {
	b := tree.NewBuilder(n)
	var build func(count int) tree.NodeID
	build = func(count int) tree.NodeID {
		if count == 0 {
			return tree.Nil
		}
		id := b.Add()
		lc := (count - 1) * 3 / 4
		b.SetLeft(id, build(lc))
		b.SetRight(id, build(count-1-lc))
		return id
	}
	return b.MustBuild(build(n))
}

// PureTrunc returns a stateless truncateInner2? that rejects roughly
// density/256 of the node pairs, keyed by seed. It is deliberately
// non-hereditary: a pruned pair's descendants are usually not pruned, the
// hardest case for the flag protocols.
func PureTrunc(seed int64, density uint8) func(o, i tree.NodeID) bool {
	s := uint64(seed)
	d := uint64(density)
	return func(o, i tree.NodeID) bool {
		return mix64(visitKey(Visit{o, i})^s)&0xff < d
	}
}

// PureTruncNode is PureTrunc for the single-index predicates (truncateOuter?
// / truncateInner1?).
func PureTruncNode(seed int64, density uint8) func(n tree.NodeID) bool {
	s := uint64(seed)
	d := uint64(density)
	return func(n tree.NodeID) bool {
		return mix64(uint64(uint32(n))^s)&0xff < d
	}
}

// HereditaryTrunc prunes pairs whose subtree-size product falls below
// threshold. Descendant pairs have strictly smaller products, so pruning is
// hereditary — the precondition of the aggressive §4.2 subtree cut.
func HereditaryTrunc(outer, inner *tree.Topology, threshold int64) func(o, i tree.NodeID) bool {
	return func(o, i tree.NodeID) bool {
		return int64(outer.Size(o))*int64(inner.Size(i)) < threshold
	}
}

// RandomSpec derives a deterministic Spec from a seed: random shapes and
// sizes for both trees, and one of three truncation regimes (regular, pure
// irregular, hereditary irregular), sometimes with single-index truncation
// stacked on top. The returned description pins every choice so a failing
// seed is self-explanatory. All predicates are pure, as Capture requires.
func RandomSpec(seed int64, maxNodes int) (nest.Spec, string) {
	if maxNodes < 1 {
		maxNodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	so := Shape(rng.Intn(int(numShapes)))
	si := Shape(rng.Intn(int(numShapes)))
	no := rng.Intn(maxNodes) + 1
	ni := rng.Intn(maxNodes) + 1
	s := nest.Spec{
		Outer: so.Topology(no, rng.Int63()),
		Inner: si.Topology(ni, rng.Int63()),
		Work:  func(o, i tree.NodeID) {},
	}
	regime := rng.Intn(3)
	desc := fmt.Sprintf("seed=%d outer=%s/%d inner=%s/%d", seed, so, no, si, ni)
	switch regime {
	case 1:
		density := uint8(rng.Intn(200))
		s.TruncInner2 = PureTrunc(rng.Int63(), density)
		desc += fmt.Sprintf(" trunc2=pure/%d", density)
	case 2:
		// A threshold within the product range prunes the small-pair fringe.
		limit := int64(s.Outer.Size(s.Outer.Root()))*int64(s.Inner.Size(s.Inner.Root())) + 1
		threshold := rng.Int63n(limit)
		s.TruncInner2 = HereditaryTrunc(s.Outer, s.Inner, threshold)
		s.Hereditary = true
		desc += fmt.Sprintf(" trunc2=hereditary/%d", threshold)
	default:
		desc += " trunc2=none"
	}
	if rng.Intn(4) == 0 {
		density := uint8(rng.Intn(64))
		s.TruncOuter = PureTruncNode(rng.Int63(), density)
		desc += fmt.Sprintf(" truncO=%d", density)
	}
	if rng.Intn(4) == 0 {
		density := uint8(rng.Intn(64))
		s.TruncInner1 = PureTruncNode(rng.Int63(), density)
		desc += fmt.Sprintf(" truncI=%d", density)
	}
	return s, desc
}
