package obs

import (
	"math"
	"testing"
)

// mergeSources builds two small node reports shaped like twistd /metrics.
func mergeSources() []NamedReport {
	a := NewReport("twistd", map[string]string{"node": "n0"})
	ra := a.AddRow("serve")
	ra.DetInt("serve.cache.hit", 3)
	ra.DetInt("serve.jobs.total", 5)
	ra.DetString("flag_mode", "counter")
	ra.DetString("geometry", "A")
	ra.NoisyVal("serve.queue.depth", 2)
	a.Telemetry = map[string]int64{"serve.cache.hit": 3}

	b := NewReport("twistd", map[string]string{"node": "n1"})
	rb := b.AddRow("serve")
	rb.DetInt("serve.cache.hit", 1)
	rb.DetInt("serve.jobs.total", 2)
	rb.DetString("flag_mode", "counter")
	rb.DetString("geometry", "B")
	rb.NoisyVal("serve.queue.depth", 4)
	b.Telemetry = map[string]int64{"serve.cache.hit": 1, "serve.rejected": 7}

	return []NamedReport{{Name: "n0", Report: a}, {Name: "n1", Report: b}}
}

func TestMergeReports(t *testing.T) {
	t.Parallel()
	out := MergeReports("twistd-fleet", map[string]string{"nodes_up": "2"}, mergeSources())
	if out.Experiment != "twistd-fleet" || out.Params["nodes_up"] != "2" {
		t.Fatalf("experiment %q params %v", out.Experiment, out.Params)
	}

	rows := map[string]Row{}
	for _, r := range out.Rows {
		rows[r.Name] = r
	}
	// Per-source rows preserve each node's view verbatim.
	for name, hit := range map[string]string{"n0/serve": "3", "n1/serve": "1"} {
		row, ok := rows[name]
		if !ok {
			t.Fatalf("missing per-source row %q", name)
		}
		if row.Det["serve.cache.hit"] != hit {
			t.Errorf("%s serve.cache.hit = %q, want %q", name, row.Det["serve.cache.hit"], hit)
		}
	}

	fleet, ok := rows["fleet/serve"]
	if !ok {
		t.Fatal("missing merged fleet/serve row")
	}
	// Integer counters sum.
	if got := fleet.Det["serve.cache.hit"]; got != "4" {
		t.Errorf("merged serve.cache.hit = %q, want 4", got)
	}
	if got := fleet.Det["serve.jobs.total"]; got != "7" {
		t.Errorf("merged serve.jobs.total = %q, want 7", got)
	}
	// Agreeing non-counters pass through; disagreeing ones are dropped.
	if got := fleet.Det["flag_mode"]; got != "counter" {
		t.Errorf("merged flag_mode = %q, want counter", got)
	}
	if got, ok := fleet.Det["geometry"]; ok {
		t.Errorf("disagreeing geometry merged to %q, want dropped", got)
	}
	// Noisy signals mean.
	if got := fleet.Noisy["serve.queue.depth"]; math.Abs(got-3) > 1e-12 {
		t.Errorf("merged serve.queue.depth = %v, want 3", got)
	}
	// Telemetry sums key-wise across sources.
	if out.Telemetry["serve.cache.hit"] != 4 || out.Telemetry["serve.rejected"] != 7 {
		t.Errorf("merged telemetry %v", out.Telemetry)
	}
}

// TestMergeReportsDegenerate covers nil reports and a single source: a
// fleet of one still produces both views.
func TestMergeReportsDegenerate(t *testing.T) {
	t.Parallel()
	src := mergeSources()[:1]
	src = append(src, NamedReport{Name: "ghost", Report: nil})
	out := MergeReports("twistd-fleet", nil, src)
	rows := map[string]Row{}
	for _, r := range out.Rows {
		rows[r.Name] = r
	}
	if _, ok := rows["n0/serve"]; !ok {
		t.Error("missing n0/serve with a single live source")
	}
	fleet, ok := rows["fleet/serve"]
	if !ok {
		t.Fatal("missing fleet/serve with a single live source")
	}
	if fleet.Det["serve.cache.hit"] != "3" {
		t.Errorf("single-source merged hit = %q, want 3", fleet.Det["serve.cache.hit"])
	}
	if len(rows) != 2 {
		t.Errorf("%d rows, want 2 (per-source + merged)", len(rows))
	}
}
