// Package obs is the observability layer of the reproduction: structured
// counters and phase timers for every subsystem, and the versioned JSON
// benchmark reports that make experiment results machine-checkable.
//
// Two halves:
//
//   - Recorder (this file) is the telemetry sink. Subsystems publish named
//     counters (tasks spawned, steals, truncation hits, per-level cache
//     hits/misses/evictions) and named wall-clock spans into whatever
//     Recorder the caller supplies: Nop discards, Memory aggregates for
//     tests and in-process inspection, JSONLines streams one event per line
//     for offline analysis. internal/nest publishes through
//     nest.RunConfig.Recorder, internal/memsim through Hierarchy.Publish,
//     and internal/experiments through experiments.SetRecorder.
//
//   - Report (report.go) is the benchmark artifact. Every cmd/nestbench
//     figure harness can emit a BENCH_<exp>.json report (host info, flags,
//     per-row signals) and re-check a fresh run against a committed
//     baseline, with deterministic signals compared exactly and noisy
//     signals within a tolerance band (DESIGN.md §4.7).
//
// All Recorder implementations are safe for concurrent use; counter and
// timer names are flat dotted strings ("nest.steals", "memsim.L3.misses").
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Recorder receives telemetry. Count accumulates a named monotonic counter;
// Time records one wall-clock sample of a named span or phase.
// Implementations must be safe for concurrent use: the work-stealing
// executor and the streaming cache simulation publish from worker
// goroutines.
type Recorder interface {
	Count(name string, delta int64)
	Time(name string, d time.Duration)
}

// Span starts timing a phase and returns the function that stops the clock
// and records the elapsed time under name:
//
//	defer obs.Span(rec, "experiments.fig7")()
//
// A nil Recorder is accepted and records nothing.
func Span(r Recorder, name string) func() {
	if r == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { r.Time(name, time.Since(t0)) }
}

// nop discards everything.
type nop struct{}

func (nop) Count(string, int64)        {}
func (nop) Time(string, time.Duration) {}

// Nop returns the Recorder that discards all telemetry. It is the default
// everywhere a Recorder is optional, so instrumented code paths never need
// a nil check beyond their entry point.
func Nop() Recorder { return nop{} }

// tee fans every event out to several recorders.
type tee []Recorder

func (t tee) Count(name string, delta int64) {
	for _, r := range t {
		r.Count(name, delta)
	}
}

func (t tee) Time(name string, d time.Duration) {
	for _, r := range t {
		r.Time(name, d)
	}
}

// Tee returns a Recorder that forwards every event to all of rs (nil
// entries are skipped). cmd/nestbench uses it to aggregate an experiment's
// counters in memory for the BENCH report while also streaming them as
// JSON lines.
func Tee(rs ...Recorder) Recorder {
	var out tee
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// Memory aggregates telemetry in process: counters sum their deltas, timers
// keep both the sample count and the total duration per name. The zero
// value is ready to use.
type Memory struct {
	mu       sync.Mutex
	counters map[string]int64
	timeSum  map[string]time.Duration
	timeN    map[string]int64
}

// NewMemory returns an empty in-memory recorder.
func NewMemory() *Memory { return &Memory{} }

// Count implements Recorder.
func (m *Memory) Count(name string, delta int64) {
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Time implements Recorder.
func (m *Memory) Time(name string, d time.Duration) {
	m.mu.Lock()
	if m.timeSum == nil {
		m.timeSum = make(map[string]time.Duration)
		m.timeN = make(map[string]int64)
	}
	m.timeSum[name] += d
	m.timeN[name]++
	m.mu.Unlock()
}

// Counters returns a copy of the counter totals.
func (m *Memory) Counters() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}

// Counter returns one counter's total (0 if never recorded).
func (m *Memory) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Timings returns a copy of the per-name total durations.
func (m *Memory) Timings() map[string]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Duration, len(m.timeSum))
	for k, v := range m.timeSum {
		out[k] = v
	}
	return out
}

// Names returns every counter and timer name recorded so far, sorted.
func (m *Memory) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters)+len(m.timeSum))
	for k := range m.counters {
		names = append(names, k)
	}
	for k := range m.timeSum {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Event is one JSON-lines telemetry record. Kind is "count" or "time";
// Total is the running sum for the name (counter deltas or span seconds),
// so a truncated stream still carries absolute values.
type Event struct {
	Seq     int64   `json:"seq"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Delta   int64   `json:"delta,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	Total   float64 `json:"total"`
}

// JSONLines streams every telemetry event as one JSON object per line,
// suitable for `jq` and for replaying an experiment's counter evolution.
// Writes are serialized; encoding errors are sticky and reported by Err.
type JSONLines struct {
	mu     sync.Mutex
	enc    *json.Encoder
	seq    int64
	totals map[string]float64
	err    error
}

// NewJSONLines wraps w. The caller owns w's lifetime (close it after the
// last event).
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{enc: json.NewEncoder(w), totals: make(map[string]float64)}
}

// Count implements Recorder.
func (j *JSONLines) Count(name string, delta int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	j.totals[name] += float64(delta)
	j.emit(Event{Seq: j.seq, Kind: "count", Name: name, Delta: delta, Total: j.totals[name]})
}

// Time implements Recorder.
func (j *JSONLines) Time(name string, d time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	s := d.Seconds()
	j.totals[name] += s
	j.emit(Event{Seq: j.seq, Kind: "time", Name: name, Seconds: s, Total: j.totals[name]})
}

func (j *JSONLines) emit(e Event) {
	if j.err == nil {
		j.err = j.enc.Encode(e)
	}
}

// Err returns the first write or encoding error, if any.
func (j *JSONLines) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
