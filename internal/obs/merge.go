package obs

import (
	"sort"
	"strconv"
)

// NamedReport pairs a report with the source (fleet node) that produced it,
// for MergeReports.
type NamedReport struct {
	Name   string
	Report *Report
}

// MergeReports combines per-source reports into one aggregate report — the
// shape behind twistd's fleet-level /metrics/fleet endpoint (DESIGN.md
// §4.14). The result keeps both views:
//
//   - per-source rows: every source row reappears as "<source>/<row>", so
//     per-node signals stay inspectable;
//   - merged rows: for each distinct row name, a "fleet/<row>" row whose
//     deterministic signals are the column-wise sum where every present
//     value parses as an integer (counters), the common value where all
//     sources agree (echoes), and are dropped otherwise (a disagreeing
//     non-counter has no meaningful merge). Noisy signals merge as the
//     mean over the sources that report them; ratios that must be computed
//     from summed counters (hit ratios) are the caller's job.
//
// Telemetry maps sum key-wise. Sources merge in the given order, so the
// caller controls row ordering (conventionally self first, peers sorted).
func MergeReports(experiment string, params map[string]string, sources []NamedReport) *Report {
	out := NewReport(experiment, params)
	type agg struct {
		name  string
		det   map[string][]string
		noisy map[string][]float64
	}
	var order []string
	merged := make(map[string]*agg)
	for _, src := range sources {
		if src.Report == nil {
			continue
		}
		for _, row := range src.Report.Rows {
			nr := out.AddRow(src.Name + "/" + row.Name)
			a := merged[row.Name]
			if a == nil {
				a = &agg{name: row.Name, det: map[string][]string{}, noisy: map[string][]float64{}}
				merged[row.Name] = a
				order = append(order, row.Name)
			}
			for _, k := range sortedKeys(row.Det) {
				nr.DetString(k, row.Det[k])
				a.det[k] = append(a.det[k], row.Det[k])
			}
			for _, k := range sortedKeys(floatKeys(row.Noisy)) {
				nr.NoisyVal(k, row.Noisy[k])
				a.noisy[k] = append(a.noisy[k], row.Noisy[k])
			}
		}
		for k, v := range src.Report.Telemetry {
			if out.Telemetry == nil {
				out.Telemetry = make(map[string]int64)
			}
			out.Telemetry[k] += v
		}
	}
	for _, name := range order {
		a := merged[name]
		row := out.AddRow("fleet/" + name)
		for _, k := range sortedKeys(stringSliceKeys(a.det)) {
			if sum, ok := sumInts(a.det[k]); ok {
				row.DetInt(k, sum)
			} else if v, ok := allEqual(a.det[k]); ok {
				row.DetString(k, v)
			}
		}
		noisyKeys := make([]string, 0, len(a.noisy))
		for k := range a.noisy {
			noisyKeys = append(noisyKeys, k)
		}
		sort.Strings(noisyKeys)
		for _, k := range noisyKeys {
			var sum float64
			for _, v := range a.noisy[k] {
				sum += v
			}
			row.NoisyVal(k, sum/float64(len(a.noisy[k])))
		}
	}
	return out
}

// sumInts sums values when every one parses as int64.
func sumInts(vals []string) (int64, bool) {
	var sum int64
	for _, v := range vals {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, false
		}
		sum += n
	}
	return sum, true
}

// allEqual returns the common value when every entry matches.
func allEqual(vals []string) (string, bool) {
	for _, v := range vals[1:] {
		if v != vals[0] {
			return "", false
		}
	}
	return vals[0], true
}

func stringSliceKeys(m map[string][]string) map[string]string {
	out := make(map[string]string, len(m))
	for k := range m {
		out[k] = ""
	}
	return out
}
