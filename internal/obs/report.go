package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// SchemaVersion identifies the BENCH_<exp>.json layout. Bump it on any
// field change that breaks Compare; the checker refuses to diff reports
// across schema versions.
const SchemaVersion = 1

// Report is one experiment run in machine-checkable form: the artifact
// behind the BENCH_<exp>.json baselines and the `-baseline` regression gate
// (DESIGN.md §4.7).
//
// Every row splits its signals into two classes:
//
//   - Det: deterministic signals — miss counts and rates from the
//     single-sink simulator, reuse-distance CDFs, operation and iteration
//     counts, result checksums. These are pure functions of (seed, flags)
//     and must reproduce bit-identically; the checker compares them
//     exactly, as formatted strings.
//
//   - Noisy: host- and timing-dependent signals — wall clocks in seconds,
//     wall-clock speedup ratios, and merge-mode (workers > 1) simulation
//     results whose interleaving is timing-dependent. The checker compares
//     them within a tolerance band.
type Report struct {
	Schema     int               `json:"schema"`
	Experiment string            `json:"experiment"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	Host       string            `json:"host,omitempty"`
	CreatedAt  string            `json:"created_at,omitempty"`
	Params     map[string]string `json:"params"`
	Rows       []Row             `json:"rows"`
	Telemetry  map[string]int64  `json:"telemetry,omitempty"`
}

// Row is one table row of an experiment (one benchmark, one input size, one
// cutoff, ...). Map values are formatted with FormatInt/FormatUint/
// FormatFloat so exact string equality is exact value equality.
type Row struct {
	Name  string             `json:"name"`
	Det   map[string]string  `json:"det,omitempty"`
	Noisy map[string]float64 `json:"noisy,omitempty"`
}

// NewReport returns a report stamped with the host environment. Params
// should hold exactly the flags the experiment honors (the -h flag matrix),
// formatted as strings; the checker treats a params mismatch as a
// configuration error.
func NewReport(experiment string, params map[string]string) *Report {
	host, _ := os.Hostname()
	return &Report{
		Schema:     SchemaVersion,
		Experiment: experiment,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Host:       host,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Params:     params,
	}
}

// AddRow appends a row and returns a pointer to it for Det*/Noisy calls.
func (r *Report) AddRow(name string) *Row {
	r.Rows = append(r.Rows, Row{Name: name})
	return &r.Rows[len(r.Rows)-1]
}

// DetInt records a deterministic integer signal.
func (w *Row) DetInt(name string, v int64) *Row { return w.det(name, FormatInt(v)) }

// DetUint records a deterministic unsigned signal (checksums, hex-formatted).
func (w *Row) DetUint(name string, v uint64) *Row { return w.det(name, FormatUint(v)) }

// DetFloat records a deterministic float signal with full precision.
func (w *Row) DetFloat(name string, v float64) *Row { return w.det(name, FormatFloat(v)) }

// DetString records a deterministic string signal.
func (w *Row) DetString(name, v string) *Row { return w.det(name, v) }

func (w *Row) det(name, v string) *Row {
	if w.Det == nil {
		w.Det = make(map[string]string)
	}
	w.Det[name] = v
	return w
}

// NoisyVal records a tolerance-band signal (dimensionless, e.g. a speedup
// ratio or a merge-mode miss rate).
func (w *Row) NoisyVal(name string, v float64) *Row {
	if w.Noisy == nil {
		w.Noisy = make(map[string]float64)
	}
	w.Noisy[name] = v
	return w
}

// NoisySeconds records a wall-clock duration in seconds.
func (w *Row) NoisySeconds(name string, d time.Duration) *Row {
	return w.NoisyVal(name, d.Seconds())
}

// FormatInt formats a deterministic integer signal.
func FormatInt(v int64) string { return strconv.FormatInt(v, 10) }

// FormatUint formats a deterministic unsigned signal as hex (the repo's
// checksum convention).
func FormatUint(v uint64) string { return "0x" + strconv.FormatUint(v, 16) }

// FormatFloat formats a deterministic float with the shortest
// representation that round-trips, so string equality is float64 equality.
func FormatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteFile writes the report as indented JSON with a trailing newline
// (stable formatting keeps committed baselines diff-friendly).
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport parses a report file and validates its schema version.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this binary speaks %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Verdict classifies a baseline comparison. Ordering matters: a
// deterministic mismatch dominates wall-clock drift.
type Verdict int

const (
	// Pass: every deterministic signal matched exactly and every noisy
	// signal stayed inside the tolerance band.
	Pass Verdict = iota

	// WallDrift: deterministic signals all matched, but at least one noisy
	// signal (wall clock, speedup, merge-mode rate) left the band. On a
	// shared CI runner this is usually load noise; it fails the gate only
	// under -strict-wall.
	WallDrift

	// DetMismatch: a deterministic signal differs from the baseline (or the
	// reports are structurally incomparable: different experiment, params,
	// or row set). This is a real regression — the simulator, the operation
	// model, or a result checksum changed.
	DetMismatch
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case WallDrift:
		return "wall-clock drift"
	case DetMismatch:
		return "deterministic mismatch"
	}
	return "unknown"
}

// CompareOptions tunes the noisy-signal band. The zero value selects the
// defaults (factor 4, floor 0.05): generous enough for shared CI runners,
// tight enough to flag an order-of-magnitude perf regression.
type CompareOptions struct {
	// Tolerance is the allowed multiplicative band for noisy signals:
	// fresh must lie within [baseline/Tolerance, baseline*Tolerance].
	// <= 1 means the default of 4.
	Tolerance float64

	// Floor suppresses band violations whose absolute difference is below
	// this value (seconds for wall clocks; absolute units otherwise) —
	// microsecond phases drift by large factors without meaning anything.
	// <= 0 means the default of 0.05.
	Floor float64
}

// Compare diffs a fresh run against a baseline and returns the verdict with
// one human-readable line per difference, deterministic mismatches first.
func Compare(baseline, fresh *Report, opt CompareOptions) (Verdict, []string) {
	tol := opt.Tolerance
	if tol <= 1 {
		tol = 4
	}
	floor := opt.Floor
	if floor <= 0 {
		floor = 0.05
	}

	var det, drift []string
	if baseline.Experiment != fresh.Experiment {
		det = append(det, fmt.Sprintf("experiment: baseline %q, fresh %q", baseline.Experiment, fresh.Experiment))
	}
	for _, k := range sortedKeys(baseline.Params, fresh.Params) {
		b, bok := baseline.Params[k]
		f, fok := fresh.Params[k]
		switch {
		case !bok:
			det = append(det, fmt.Sprintf("param %s: absent in baseline, fresh %s (rerun with matching flags)", k, f))
		case !fok:
			det = append(det, fmt.Sprintf("param %s: baseline %s, absent in fresh run (rerun with matching flags)", k, b))
		case b != f:
			det = append(det, fmt.Sprintf("param %s: baseline %s, fresh %s (rerun with matching flags)", k, b, f))
		}
	}

	bRows := rowIndex(baseline.Rows)
	fRows := rowIndex(fresh.Rows)
	for _, row := range baseline.Rows {
		fr, ok := fRows[row.Name]
		if !ok {
			det = append(det, fmt.Sprintf("row %q: present in baseline, missing from fresh run", row.Name))
			continue
		}
		for _, k := range sortedKeys(row.Det, fr.Det) {
			b, bok := row.Det[k]
			f, fok := fr.Det[k]
			switch {
			case !bok:
				det = append(det, fmt.Sprintf("row %q det %s: absent in baseline, fresh %s", row.Name, k, f))
			case !fok:
				det = append(det, fmt.Sprintf("row %q det %s: baseline %s, absent in fresh run", row.Name, k, b))
			case b != f:
				det = append(det, fmt.Sprintf("row %q det %s: baseline %s, fresh %s", row.Name, k, b, f))
			}
		}
		for _, k := range sortedKeys(floatKeys(row.Noisy), floatKeys(fr.Noisy)) {
			b, bok := row.Noisy[k]
			f, fok := fr.Noisy[k]
			if !bok || !fok {
				drift = append(drift, fmt.Sprintf("row %q noisy %s: present on only one side", row.Name, k))
				continue
			}
			if outsideBand(b, f, tol, floor) {
				drift = append(drift, fmt.Sprintf("row %q noisy %s: baseline %.4g, fresh %.4g (band ×%g, floor %g)",
					row.Name, k, b, f, tol, floor))
			}
		}
	}
	for _, row := range fresh.Rows {
		if _, ok := bRows[row.Name]; !ok {
			det = append(det, fmt.Sprintf("row %q: new in fresh run, absent from baseline", row.Name))
		}
	}

	switch {
	case len(det) > 0:
		return DetMismatch, append(det, drift...)
	case len(drift) > 0:
		return WallDrift, drift
	}
	return Pass, nil
}

// outsideBand reports whether fresh falls outside the multiplicative
// tolerance band around base, ignoring differences below the floor.
func outsideBand(base, fresh, tol, floor float64) bool {
	diff := fresh - base
	if diff < 0 {
		diff = -diff
	}
	if diff < floor {
		return false
	}
	lo, hi := base/tol, base*tol
	if base < 0 {
		lo, hi = hi, lo
	}
	return fresh < lo || fresh > hi
}

func rowIndex(rows []Row) map[string]Row {
	out := make(map[string]Row, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out
}

func floatKeys(m map[string]float64) map[string]string {
	out := make(map[string]string, len(m))
	for k := range m {
		out[k] = ""
	}
	return out
}

// sortedKeys returns the sorted union of the key sets of ms.
func sortedKeys(ms ...map[string]string) []string {
	seen := make(map[string]bool)
	var keys []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}
