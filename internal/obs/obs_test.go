package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestMemoryRecorder(t *testing.T) {
	m := NewMemory()
	m.Count("nest.tasks", 3)
	m.Count("nest.tasks", 4)
	m.Time("phase", 2*time.Second)
	m.Time("phase", time.Second)
	if got := m.Counter("nest.tasks"); got != 7 {
		t.Fatalf("Counter = %d, want 7", got)
	}
	if got := m.Timings()["phase"]; got != 3*time.Second {
		t.Fatalf("Timings[phase] = %v, want 3s", got)
	}
	if got := m.Names(); len(got) != 2 || got[0] != "nest.tasks" || got[1] != "phase" {
		t.Fatalf("Names = %v", got)
	}
	if got := m.Counter("never"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
}

func TestMemoryRecorderConcurrent(t *testing.T) {
	m := NewMemory()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				m.Count("c", 1)
				m.Time("t", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c"); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestJSONLinesEvents(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLines(&buf)
	j.Count("memsim.L3.misses", 10)
	j.Count("memsim.L3.misses", 5)
	j.Time("run", 250*time.Millisecond)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[1].Kind != "count" || events[1].Total != 15 {
		t.Fatalf("second event = %+v, want running total 15", events[1])
	}
	if events[2].Kind != "time" || events[2].Seconds != 0.25 {
		t.Fatalf("time event = %+v", events[2])
	}
	for k, e := range events {
		if e.Seq != int64(k+1) {
			t.Fatalf("event %d has seq %d", k, e.Seq)
		}
	}
}

func TestSpanAndNop(t *testing.T) {
	m := NewMemory()
	done := Span(m, "phase")
	done()
	if _, ok := m.Timings()["phase"]; !ok {
		t.Fatal("Span did not record")
	}
	Span(nil, "x")() // must not panic
	Nop().Count("x", 1)
	Nop().Time("x", time.Second)
}
