package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	r := NewReport("fig7", map[string]string{"scale": "16384", "seed": "42"})
	r.AddRow("TJ").
		DetUint("checksum", 0xdeadbeef).
		DetInt("iterations", 1234567).
		DetFloat("cdf", 0.49951171875).
		NoisySeconds("baseline", 280*time.Millisecond).
		NoisySeconds("twisted", 400*time.Millisecond).
		NoisyVal("speedup", 0.7)
	r.AddRow("PC").
		DetUint("checksum", 0x1).
		NoisySeconds("baseline", 700*time.Millisecond)
	r.Telemetry = map[string]int64{"nest.tasks": 127}
	return r
}

// TestReportRoundTrip is the emit → parse → compare-with-itself contract:
// a report written to disk and read back must compare as an exact pass
// against its in-memory source.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "BENCH_fig7.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, diffs := Compare(r, got, CompareOptions{}); v != Pass || len(diffs) != 0 {
		t.Fatalf("round-trip verdict %v, diffs %v", v, diffs)
	}
	if v, diffs := Compare(got, got, CompareOptions{}); v != Pass || len(diffs) != 0 {
		t.Fatalf("self-compare verdict %v, diffs %v", v, diffs)
	}
	if got.GoVersion == "" || got.GOARCH == "" || got.NumCPU == 0 {
		t.Fatalf("host info lost in round trip: %+v", got)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	r := sampleReport()
	r.Schema = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestCompareVerdicts exercises the checker's three verdicts: pass,
// deterministic mismatch, and wall-clock-only drift.
func TestCompareVerdicts(t *testing.T) {
	t.Run("pass despite small wall noise", func(t *testing.T) {
		fresh := sampleReport()
		fresh.Rows[0].Noisy["baseline"] *= 1.5 // inside the ×4 band
		if v, diffs := Compare(sampleReport(), fresh, CompareOptions{}); v != Pass {
			t.Fatalf("verdict %v, diffs %v", v, diffs)
		}
	})

	t.Run("deterministic mismatch", func(t *testing.T) {
		fresh := sampleReport()
		fresh.Rows[0].Det["iterations"] = FormatInt(1234568)
		v, diffs := Compare(sampleReport(), fresh, CompareOptions{})
		if v != DetMismatch {
			t.Fatalf("verdict %v, want DetMismatch", v)
		}
		if len(diffs) != 1 || !strings.Contains(diffs[0], "iterations") ||
			!strings.Contains(diffs[0], "1234567") || !strings.Contains(diffs[0], "1234568") {
			t.Fatalf("diff not readable: %v", diffs)
		}
	})

	t.Run("wall-clock-only drift", func(t *testing.T) {
		fresh := sampleReport()
		fresh.Rows[1].Noisy["baseline"] *= 10 // outside the band, above the floor
		v, diffs := Compare(sampleReport(), fresh, CompareOptions{})
		if v != WallDrift {
			t.Fatalf("verdict %v (%v), want WallDrift", v, diffs)
		}
		if len(diffs) != 1 || !strings.Contains(diffs[0], `row "PC" noisy baseline`) {
			t.Fatalf("diff not readable: %v", diffs)
		}
	})

	t.Run("floor suppresses microsecond drift", func(t *testing.T) {
		base, fresh := sampleReport(), sampleReport()
		base.Rows[1].Noisy["baseline"] = 0.0001
		fresh.Rows[1].Noisy["baseline"] = 0.0099 // 99x but < 0.05 absolute
		if v, diffs := Compare(base, fresh, CompareOptions{}); v != Pass {
			t.Fatalf("verdict %v, diffs %v", v, diffs)
		}
	})

	t.Run("param mismatch is deterministic", func(t *testing.T) {
		fresh := sampleReport()
		fresh.Params["scale"] = "4096"
		v, diffs := Compare(sampleReport(), fresh, CompareOptions{})
		if v != DetMismatch || len(diffs) != 1 || !strings.Contains(diffs[0], "rerun with matching flags") {
			t.Fatalf("verdict %v, diffs %v", v, diffs)
		}
	})

	t.Run("missing and extra rows are deterministic", func(t *testing.T) {
		fresh := sampleReport()
		fresh.Rows[1].Name = "VP"
		v, diffs := Compare(sampleReport(), fresh, CompareOptions{})
		if v != DetMismatch || len(diffs) != 2 {
			t.Fatalf("verdict %v, diffs %v", v, diffs)
		}
	})

	t.Run("missing det key is deterministic", func(t *testing.T) {
		fresh := sampleReport()
		delete(fresh.Rows[0].Det, "checksum")
		if v, _ := Compare(sampleReport(), fresh, CompareOptions{}); v != DetMismatch {
			t.Fatalf("verdict %v, want DetMismatch", v)
		}
	})
}

func TestFormatFloatRoundTrips(t *testing.T) {
	for _, v := range []float64{0, 1.0 / 3, 0.49951171875, 1e-300, 123456789.123456789} {
		s := FormatFloat(v)
		if got := FormatFloat(v); got != s {
			t.Fatalf("unstable formatting for %v", v)
		}
	}
	if FormatUint(0xdeadbeef) != "0xdeadbeef" {
		t.Fatalf("FormatUint = %s", FormatUint(0xdeadbeef))
	}
}
