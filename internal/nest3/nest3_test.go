package nest3

import (
	"reflect"
	"testing"

	"twist/internal/memsim"
	"twist/internal/tree"
)

type triple struct{ a, b, c tree.NodeID }

func collect(s Spec, twisted bool) []triple {
	var out []triple
	s.Work = func(a, b, c tree.NodeID) { out = append(out, triple{a, b, c}) }
	e := MustNew(s)
	if twisted {
		e.RunTwisted()
	} else {
		e.RunOriginal()
	}
	return out
}

func TestOriginalIsLexicographic(t *testing.T) {
	s := Spec{A: tree.NewBalanced(3), B: tree.NewBalanced(2), C: tree.NewBalanced(2)}
	got := collect(s, false)
	var want []triple
	for _, a := range s.A.Preorder(nil) {
		for _, b := range s.B.Preorder(nil) {
			for _, c := range s.C.Preorder(nil) {
				want = append(want, triple{a, b, c})
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("original 3-level order:\n got %v\nwant %v", got, want)
	}
}

func TestTwistedIsPermutation(t *testing.T) {
	shapes := [][3]*tree.Topology{
		{tree.NewBalanced(7), tree.NewBalanced(7), tree.NewBalanced(7)},
		{tree.NewBalanced(15), tree.NewBalanced(5), tree.NewBalanced(9)},
		{tree.NewRandomBST(11, 1), tree.NewRandomBST(13, 2), tree.NewRandomBST(6, 3)},
		{tree.NewChain(4), tree.NewBalanced(6), tree.NewChain(3)},
		{tree.NewBalanced(1), tree.NewBalanced(8), tree.NewBalanced(8)},
	}
	for _, sh := range shapes {
		s := Spec{A: sh[0], B: sh[1], C: sh[2]}
		got := collect(s, true)
		total := sh[0].Len() * sh[1].Len() * sh[2].Len()
		if len(got) != total {
			t.Fatalf("twisted executed %d of %d triples", len(got), total)
		}
		seen := map[triple]bool{}
		for _, x := range got {
			if seen[x] {
				t.Fatalf("triple %v executed twice", x)
			}
			seen[x] = true
		}
	}
}

func TestTwistedActuallyReSortsRoles(t *testing.T) {
	s := Spec{A: tree.NewBalanced(63), B: tree.NewBalanced(63), C: tree.NewBalanced(63)}
	s.Work = func(a, b, c tree.NodeID) {}
	e := MustNew(s)
	e.RunTwisted()
	if e.Stats.Twists == 0 {
		t.Fatal("equal-size trees never re-sorted roles")
	}
	if e.Stats.Work != 63*63*63 {
		t.Fatalf("work = %d", e.Stats.Work)
	}
}

// The three-dimensional locality claim: under the original order the two
// inner dimensions have reuse distances on the order of their full subspace,
// while three-level twisting shrinks them recursively.
func TestTwistedImprovesInnerDimensionLocality(t *testing.T) {
	const n = 15 // per-tree nodes; space is n³
	s := Spec{A: tree.NewBalanced(n), B: tree.NewBalanced(n), C: tree.NewBalanced(n)}
	mean := func(twisted bool, dim int) float64 {
		ra := memsim.NewReuseAnalyzer()
		h := memsim.NewHistogram()
		s.Work = func(a, b, c tree.NodeID) {
			id := [3]tree.NodeID{a, b, c}[dim]
			h.Add(ra.Access(memsim.Addr(dim)<<32 | memsim.Addr(id)))
		}
		e := MustNew(s)
		if twisted {
			e.RunTwisted()
		} else {
			e.RunOriginal()
		}
		return h.Mean()
	}
	// The innermost dimension is the cold one under the original order
	// (every access to a C node is a full C-tree apart); twisting must
	// collapse its distances.
	origC, twC := mean(false, 2), mean(true, 2)
	if twC > origC/2 {
		t.Fatalf("dim 2: twisted mean reuse %v not well below original %v", twC, origC)
	}
	// Combined stream over all three dimensions: twisting lowers the mean
	// too (the outer dimensions were already hot, so the win is smaller).
	meanAll := func(twisted bool) float64 {
		ra := memsim.NewReuseAnalyzer()
		h := memsim.NewHistogram()
		s.Work = func(a, b, c tree.NodeID) {
			h.Add(ra.Access(0<<32 | memsim.Addr(a)))
			h.Add(ra.Access(1<<32 | memsim.Addr(b)))
			h.Add(ra.Access(2<<32 | memsim.Addr(c)))
		}
		e := MustNew(s)
		if twisted {
			e.RunTwisted()
		} else {
			e.RunOriginal()
		}
		return h.Mean()
	}
	origAll, twAll := meanAll(false), meanAll(true)
	if twAll >= origAll {
		t.Fatalf("combined mean reuse: twisted %v not below original %v", twAll, origAll)
	}
}

// Matrix-matrix multiplication through three-level twisting: the §7.2 target
// application. Integer matrices make every schedule bit-identical.
func TestMatMul3Correct(t *testing.T) {
	const n = 12
	topoOf := func() (*tree.Topology, []int32) {
		b := tree.NewBuilder(2*n - 1)
		var idx []int32
		var build func(lo, hi int32) tree.NodeID
		build = func(lo, hi int32) tree.NodeID {
			id := b.Add()
			if hi-lo == 1 {
				idx = append(idx, lo)
				return id
			}
			idx = append(idx, -1)
			mid := lo + (hi-lo)/2
			b.SetLeft(id, build(lo, mid))
			b.SetRight(id, build(mid, hi))
			return id
		}
		root := build(0, n)
		return b.MustBuild(root), idx
	}
	ti, ii := topoOf()
	tj, ij := topoOf()
	tk, ik := topoOf()

	var m1, m2 [n][n]int64
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			m1[x][y] = int64(x*7 + y*3 + 1)
			m2[x][y] = int64(x*5 - y*2 + 4)
		}
	}
	var want [n][n]int64
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for k := 0; k < n; k++ {
				want[x][y] += m1[x][k] * m2[k][y]
			}
		}
	}

	var got [n][n]int64
	s := Spec{A: ti, B: tj, C: tk, Work: func(a, b, c tree.NodeID) {
		i, j, k := ii[a], ij[b], ik[c]
		if i < 0 || j < 0 || k < 0 {
			return
		}
		got[i][j] += m1[i][k] * m2[k][j]
	}}
	e := MustNew(s)
	e.RunTwisted()
	if got != want {
		t.Fatal("three-level twisted matrix product incorrect")
	}

	// And the original order gives the same matrix.
	got = [n][n]int64{}
	e.RunOriginal()
	if got != want {
		t.Fatal("original three-level matrix product incorrect")
	}
}

func TestValidation(t *testing.T) {
	tr := tree.NewBalanced(3)
	if _, err := New(Spec{A: tr, B: tr, C: tr}); err == nil {
		t.Fatal("nil Work accepted")
	}
	if _, err := New(Spec{A: tr, C: tr, Work: func(a, b, c tree.NodeID) {}}); err == nil {
		t.Fatal("nil B accepted")
	}
}

func TestEmptyDimension(t *testing.T) {
	s := Spec{A: tree.NewBalanced(3), B: tree.NewBalanced(0), C: tree.NewBalanced(3)}
	if got := collect(s, true); len(got) != 0 {
		t.Fatalf("empty dimension produced %d triples", len(got))
	}
	if got := collect(s, false); len(got) != 0 {
		t.Fatalf("empty dimension produced %d triples (original)", len(got))
	}
}

func BenchmarkThreeLevel(b *testing.B) {
	s := Spec{A: tree.NewBalanced(63), B: tree.NewBalanced(63), C: tree.NewBalanced(63)}
	var sink int64
	s.Work = func(a, bb, c tree.NodeID) { sink += int64(a) ^ int64(bb) ^ int64(c) }
	e := MustNew(s)
	b.Run("original", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			e.RunOriginal()
		}
	})
	b.Run("twisted", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			e.RunTwisted()
		}
	})
	_ = sink
}
