// Package nest3 prototypes the generalization the paper names as future
// work in §7.2: "generalize recursion twisting to more than two levels of
// recursion, to allow it to handle algorithms like matrix-matrix
// multiplication."
//
// A triply-nested recursion — recursion A calling recursion B calling
// recursion C — defines a three-dimensional recursive iteration space
// A × B × C. The Original schedule is the template order (lexicographic in
// the three preorders). The Twisted schedule generalizes the pairwise size
// rule of Fig 4(a): whenever the outer role descends, roles are re-sorted so
// the *largest* remaining subtree is traversed outermost; the inner two
// dimensions are scheduled by ordinary two-level twisting. Each step shrinks
// the largest extent of the current sub-space, so working sets halve
// recursively in all three dimensions — the same parameterless multi-level
// blocking cache-oblivious matrix multiplication achieves.
//
// Scope: regular (untruncated) spaces whose iterations are independent or
// commutative — the loop-nest codes §7.2 targets. Irregular truncation in
// three dimensions is future work beyond even the paper's.
package nest3

import (
	"errors"

	"twist/internal/tree"
)

// Spec is a three-level nested recursion over three binary index trees, with
// Work invoked at every triple (a, b, c).
type Spec struct {
	A, B, C *tree.Topology
	Work    func(a, b, c tree.NodeID)
}

func (s *Spec) validate() error {
	if s.A == nil || s.B == nil || s.C == nil {
		return errors.New("nest3: A, B, and C must be non-nil")
	}
	if s.Work == nil {
		return errors.New("nest3: Work must be non-nil")
	}
	return nil
}

// Stats counts scheduling operations.
type Stats struct {
	Work         int64
	SizeCompares int64
	Twists       int64 // role re-orderings that changed the outermost tree
}

// Exec runs a Spec.
type Exec struct {
	spec  Spec
	Stats Stats
}

// New returns an Exec for the spec.
func New(s Spec) (*Exec, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &Exec{spec: s}, nil
}

// MustNew is New that panics on error.
func MustNew(s Spec) *Exec {
	e, err := New(s)
	if err != nil {
		panic(err)
	}
	return e
}

// cursor is one dimension's position: which tree, where in it, and which
// Work argument slot it feeds.
type cursor struct {
	topo *tree.Topology
	node tree.NodeID
	slot int // 0 → a, 1 → b, 2 → c
}

func (c cursor) size() int32 { return c.topo.Size(c.node) }

// work dispatches to Spec.Work with the three cursors routed to their
// argument slots.
func (e *Exec) work(x, y, z cursor) {
	var args [3]tree.NodeID
	args[x.slot], args[y.slot], args[z.slot] = x.node, y.node, z.node
	e.Stats.Work++
	e.spec.Work(args[0], args[1], args[2])
}

// RunOriginal executes the template order: the full B × C space for each A
// node, the full C space for each B node within it — lexicographic in the
// three preorders.
func (e *Exec) RunOriginal() {
	e.Stats = Stats{}
	s := e.spec
	var recC func(a, b, c tree.NodeID)
	recC = func(a, b, c tree.NodeID) {
		if c == tree.Nil {
			return
		}
		e.Stats.Work++
		s.Work(a, b, c)
		recC(a, b, s.C.Left(c))
		recC(a, b, s.C.Right(c))
	}
	var recB func(a, b tree.NodeID)
	recB = func(a, b tree.NodeID) {
		if b == tree.Nil {
			return
		}
		recC(a, b, s.C.Root())
		recB(a, s.B.Left(b))
		recB(a, s.B.Right(b))
	}
	var recA func(a tree.NodeID)
	recA = func(a tree.NodeID) {
		if a == tree.Nil {
			return
		}
		recB(a, s.B.Root())
		recA(s.A.Left(a))
		recA(s.A.Right(a))
	}
	recA(s.A.Root())
}

// RunTwisted executes the three-dimensional twisted schedule.
func (e *Exec) RunTwisted() {
	e.Stats = Stats{}
	a := cursor{e.spec.A, e.spec.A.Root(), 0}
	b := cursor{e.spec.B, e.spec.B.Root(), 1}
	c := cursor{e.spec.C, e.spec.C.Root(), 2}
	e.tw3(sort3(a, b, c))
}

// sort3 orders three cursors by descending subtree size (stable on ties).
func sort3(x, y, z cursor) (cursor, cursor, cursor) {
	if y.size() > x.size() {
		x, y = y, x
	}
	if z.size() > x.size() {
		x, z = z, x
	}
	if z.size() > y.size() {
		y, z = z, y
	}
	return x, y, z
}

// tw3 processes the sub-space outer × mid × inn, with outer the (currently)
// largest tree: the outer node's "plane" {outer.node} × mid × inn runs as a
// two-level twisted schedule, then each outer child sub-space is re-sorted
// and recursed into.
func (e *Exec) tw3(outer, mid, inn cursor) {
	if outer.node == tree.Nil {
		return
	}
	e.tw2(outer, mid, inn)
	for _, c := range [2]tree.NodeID{outer.topo.Left(outer.node), outer.topo.Right(outer.node)} {
		child := cursor{outer.topo, c, outer.slot}
		e.Stats.SizeCompares += 2
		no, nm, ni := sort3(child, mid, inn)
		if no.slot != child.slot {
			e.Stats.Twists++
		}
		e.tw3(no, nm, ni)
	}
}

// tw2 runs the two-level twisted schedule (Fig 4a) over x × y for a fixed
// node of the third dimension.
func (e *Exec) tw2(fixed, x, y cursor) {
	if x.node == tree.Nil {
		return
	}
	e.tw2inner(fixed, x, y)
	for _, c := range [2]tree.NodeID{x.topo.Left(x.node), x.topo.Right(x.node)} {
		child := cursor{x.topo, c, x.slot}
		e.Stats.SizeCompares++
		if child.size() <= y.size() {
			e.Stats.Twists++
			e.tw2(fixed, y, child) // swapped orientation: roles exchange
		} else {
			e.tw2(fixed, child, y)
		}
	}
}

// tw2inner is the inner recursion of the two-level schedule: the full y
// subtree for fixed (fixed, x) nodes.
func (e *Exec) tw2inner(fixed, x, y cursor) {
	if y.node == tree.Nil {
		return
	}
	e.work(fixed, x, y)
	e.tw2inner(fixed, x, cursor{y.topo, y.topo.Left(y.node), y.slot})
	e.tw2inner(fixed, x, cursor{y.topo, y.topo.Right(y.node), y.slot})
}
