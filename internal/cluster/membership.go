package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Member is one fleet node: a stable ID (the ring placement key) and the
// base URL its HTTP surface answers on.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ParsePeers parses the -peers flag form: comma-separated id=url pairs,
// e.g. "7461=http://127.0.0.1:7461,7462=http://127.0.0.1:7462". IDs must be
// unique and non-empty; URLs must be non-empty.
func ParsePeers(s string) ([]Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return out, nil
}

// FormatPeers renders members in ParsePeers form, sorted by ID.
func FormatPeers(members []Member) string {
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = m.ID + "=" + m.URL
	}
	return strings.Join(parts, ",")
}

// NodeStatus is the health/load snapshot one node publishes on /clusterz
// and the prober collects from peers. QueueDepth feeds the fleet-wide
// admission bound; Version is the engine/schema stamp that gates the
// replicated cache tier.
type NodeStatus struct {
	ID         string `json:"id"`
	Version    string `json:"version"`
	QueueDepth int64  `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
	Draining   bool   `json:"draining"`
}

// PeerState is one peer's membership entry as the router sees it: identity,
// liveness, and the last status the prober (or a passive observation)
// recorded.
type PeerState struct {
	Member Member
	Up     bool
	Status NodeStatus
}

// Membership is the static member set plus mutable per-peer health. Peers
// start up (optimistic: a booting fleet routes normally and discovers dead
// peers on first contact); MarkDown/Observe flip them as probes and forward
// attempts report. Safe for concurrent use.
type Membership struct {
	self  Member
	peers []Member // excludes self, sorted by ID

	mu    sync.RWMutex
	down  map[string]bool
	fails map[string]int
	last  map[string]NodeStatus
	// failThreshold is how many consecutive probe failures mark a peer
	// down; passive failures (a failed forward) mark down immediately.
	failThreshold int
}

// NewMembership builds the member set for self among peers. Self is
// filtered out of the peer list by ID; the threshold (<= 0 means 1) is the
// consecutive-probe-failure count that marks a peer down.
func NewMembership(self Member, peers []Member, failThreshold int) *Membership {
	if failThreshold <= 0 {
		failThreshold = 1
	}
	m := &Membership{
		self:          self,
		down:          make(map[string]bool),
		fails:         make(map[string]int),
		last:          make(map[string]NodeStatus),
		failThreshold: failThreshold,
	}
	for _, p := range peers {
		if p.ID != self.ID {
			m.peers = append(m.peers, p)
		}
	}
	sort.Slice(m.peers, func(i, j int) bool { return m.peers[i].ID < m.peers[j].ID })
	return m
}

// Self returns this node's own member entry.
func (m *Membership) Self() Member { return m.self }

// Peers returns the static peer set (excluding self), sorted by ID.
func (m *Membership) Peers() []Member { return append([]Member(nil), m.peers...) }

// AllIDs returns every member ID including self — the ring's node set.
func (m *Membership) AllIDs() []string {
	ids := []string{m.self.ID}
	for _, p := range m.peers {
		ids = append(ids, p.ID)
	}
	sort.Strings(ids)
	return ids
}

// Lookup resolves a member ID (self included) to its entry.
func (m *Membership) Lookup(id string) (Member, bool) {
	if id == m.self.ID {
		return m.self, true
	}
	for _, p := range m.peers {
		if p.ID == id {
			return p, true
		}
	}
	return Member{}, false
}

// IsDown reports whether a peer is currently marked down. Self is never
// down from its own point of view.
func (m *Membership) IsDown(id string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.down[id]
}

// MarkDown records a definite failure (a failed forward or a probe past the
// threshold): the peer is routed around until a probe succeeds again.
func (m *Membership) MarkDown(id string) {
	m.mu.Lock()
	m.down[id] = true
	m.fails[id] = m.failThreshold
	m.mu.Unlock()
}

// ProbeFailed records one failed probe; the peer goes down once
// failThreshold consecutive probes fail.
func (m *Membership) ProbeFailed(id string) {
	m.mu.Lock()
	m.fails[id]++
	if m.fails[id] >= m.failThreshold {
		m.down[id] = true
	}
	m.mu.Unlock()
}

// Observe records a successful status fetch from a peer: the peer is up and
// its load snapshot replaces the previous one.
func (m *Membership) Observe(id string, st NodeStatus) {
	m.mu.Lock()
	m.down[id] = false
	m.fails[id] = 0
	m.last[id] = st
	m.mu.Unlock()
}

// States snapshots every peer's liveness and last observed status, sorted
// by ID.
func (m *Membership) States() []PeerState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]PeerState, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, PeerState{Member: p, Up: !m.down[p.ID], Status: m.last[p.ID]})
	}
	return out
}

// PeerQueueDepth sums the last observed queue depth of every live peer —
// the remote half of the fleet-wide admission bound. Down peers contribute
// nothing (their queues are unreachable anyway).
func (m *Membership) PeerQueueDepth() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var sum int64
	for _, p := range m.peers {
		if !m.down[p.ID] {
			sum += m.last[p.ID].QueueDepth
		}
	}
	return sum
}
