package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ringNodes builds n member IDs "n0".."n<n-1>".
func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i)
	}
	return out
}

// ringKeys builds k distinct routing keys shaped like version-stamped
// digests.
func ringKeys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("1:digest-%04d", i)
	}
	return out
}

// TestRingDeterministicAcrossInsertionOrder is the no-map-order-leak
// property: rings built from any permutation of the same member set route
// every key identically. Consistent hashing here is pure SHA-256 over
// member IDs, so this equality is also cross-process equality.
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	t.Parallel()
	nodes := ringNodes(7)
	keys := ringKeys(500)
	base := NewRing(32, nodes...)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(32, shuffled...)
		for _, k := range keys {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("trial %d key %q: owner %q, want %q", trial, k, got, want)
			}
			if got, want := r.Replicas(k, 3), base.Replicas(k, 3); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d key %q: replicas %v, want %v", trial, k, got, want)
			}
		}
	}
}

// TestRingPinnedRouting pins a handful of routings computed by the SHA-256
// placement. These constants are the cross-process determinism contract
// made explicit: if they ever change, every deployed fleet would disagree
// about ownership during a rolling restart.
func TestRingPinnedRouting(t *testing.T) {
	t.Parallel()
	r := NewRing(64, "n0", "n1", "n2")
	pinned := map[string]string{
		"1:k0": "n2",
		"1:k1": "n2",
		"1:k2": "n1",
		"1:k3": "n0",
		"1:k4": "n2",
	}
	for k, want := range pinned {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want pinned %q", k, got, want)
		}
	}
}

// TestRingMovementBounded is the ~K/N property: adding one member to an
// N-member ring reassigns roughly K/(N+1) of K keys, and removing it
// restores the original assignment exactly.
func TestRingMovementBounded(t *testing.T) {
	t.Parallel()
	const n, k = 10, 2000
	r := NewRing(64, ringNodes(n)...)
	keys := ringKeys(k)
	before := make(map[string]string, k)
	for _, key := range keys {
		before[key] = r.Owner(key)
	}

	grown := r.With("extra")
	moved := 0
	for _, key := range keys {
		owner := grown.Owner(key)
		if owner != before[key] {
			if owner != "extra" {
				t.Fatalf("key %q moved to %q, not the joining member", key, owner)
			}
			moved++
		}
	}
	ideal := k / (n + 1)
	if moved == 0 || moved > ideal*5/2 {
		t.Errorf("join moved %d of %d keys; want within (0, %d] (~K/N = %d)", moved, k, ideal*5/2, ideal)
	}

	shrunk := grown.Without("extra")
	for _, key := range keys {
		if got := shrunk.Owner(key); got != before[key] {
			t.Errorf("key %q: owner %q after leave, want original %q", key, got, before[key])
		}
	}
}

// TestRingReplicas checks the replica-set contract: distinct members,
// owner first, clamped to the member count, and every member enumerable.
func TestRingReplicas(t *testing.T) {
	t.Parallel()
	r := NewRing(16, ringNodes(5)...)
	for _, key := range ringKeys(200) {
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3", key, len(reps))
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("key %q: replicas[0] %q != owner %q", key, reps[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range reps {
			if seen[id] {
				t.Fatalf("key %q: duplicate replica %q in %v", key, id, reps)
			}
			seen[id] = true
		}
		if all := r.Replicas(key, 99); len(all) != 5 {
			t.Fatalf("key %q: Replicas(99) returned %d members, want all 5", key, len(all))
		}
	}
	if got := NewRing(16).Owner("k"); got != "" {
		t.Errorf("empty ring owner %q, want \"\"", got)
	}
	if reps := r.Replicas("k", 0); reps != nil {
		t.Errorf("Replicas(k, 0) = %v, want nil", reps)
	}
}

// TestRingWithWithoutIdempotent checks the duplicate/absent edge cases.
func TestRingWithWithoutIdempotent(t *testing.T) {
	t.Parallel()
	r := NewRing(16, "a", "b")
	if got := r.With("a").Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("With(dup) nodes %v", got)
	}
	if got := r.Without("zzz").Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Without(absent) nodes %v", got)
	}
	if got := r.Len(); got != 2 {
		t.Errorf("Len %d", got)
	}
}

// FuzzRing fuzzes the routing invariants over arbitrary member counts,
// replication factors, and keys: owners are members, replica sets are
// distinct with the owner first, routing is identical across insertion
// orders, and a join+leave round trip restores the original owner.
func FuzzRing(f *testing.F) {
	f.Add(uint8(3), uint8(2), "1:abc")
	f.Add(uint8(1), uint8(1), "")
	f.Add(uint8(16), uint8(8), "1:57b33fe9646800d535ba5c36a28569e566913346f662b15e837a4198683847f0")
	f.Fuzz(func(t *testing.T, n uint8, reps uint8, key string) {
		count := int(n%16) + 1
		nodes := ringNodes(count)
		r := NewRing(8, nodes...)
		owner := r.Owner(key)
		found := false
		for _, m := range nodes {
			if m == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q not a member of %v", owner, nodes)
		}
		rs := r.Replicas(key, int(reps))
		seen := map[string]bool{}
		for _, id := range rs {
			if seen[id] {
				t.Fatalf("duplicate replica %q in %v", id, rs)
			}
			seen[id] = true
		}
		if len(rs) > 0 && rs[0] != owner {
			t.Fatalf("replicas[0] %q != owner %q", rs[0], owner)
		}
		reversed := make([]string, count)
		for i, m := range nodes {
			reversed[count-1-i] = m
		}
		if got := NewRing(8, reversed...).Owner(key); got != owner {
			t.Fatalf("insertion order changed owner: %q vs %q", got, owner)
		}
		if got := r.With("joiner").Without("joiner").Owner(key); got != owner {
			t.Fatalf("join+leave changed owner: %q vs %q", got, owner)
		}
	})
}
