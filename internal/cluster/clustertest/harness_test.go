package clustertest_test

// The harness's own contract tests: kill/restart really sever and revive a
// node at the same address, fault rules really apply per target, and the
// helpers (placement lookups, posting, converge) behave — so fleet tests
// built on the harness can trust its primitives.

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"twist/internal/cluster"
	"twist/internal/cluster/clustertest"
	"twist/internal/serve"
)

func transformSpec() serve.TransformSpec {
	return serve.TransformSpec{
		Source: `package p

//twist:outer
func Outer(o *Node, i *Node) {
	if o == nil {
		return
	}
	Inner(o, i)
	Outer(o.Left, i)
	Outer(o.Right, i)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if i == nil {
		return
	}
	work(o, i)
	Inner(o, i.Left)
	Inner(o, i.Right)
}
`,
		Variants: []string{"interchanged"},
	}
}

// TestHarnessBootAndHelpers boots a fleet and exercises the query surface:
// per-node health endpoints, placement helpers agreeing with the ring, and
// envelope decoding.
func TestHarnessBootAndHelpers(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	if len(f.Nodes) != 3 {
		t.Fatalf("fleet size %d, want 3", len(f.Nodes))
	}
	for i, n := range f.Nodes {
		if n.Killed() {
			t.Errorf("node %d born killed", i)
		}
		status, body := f.Get(t, i, "/healthz")
		if status != http.StatusOK {
			t.Errorf("node %d /healthz status %d", i, status)
		}
		if string(body) != "ok\n" {
			t.Errorf("node %d /healthz body %q", i, body)
		}
		status, body = f.Get(t, i, "/clusterz")
		if status != http.StatusOK {
			t.Fatalf("node %d /clusterz status %d", i, status)
		}
		var st cluster.NodeStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("node %d /clusterz body: %v", i, err)
		}
		if st.ID != n.ID || st.Version != serve.EngineVersion {
			t.Errorf("node %d reports id %q version %q", i, st.ID, st.Version)
		}
	}

	// Placement helpers are consistent: the owner leads the replica set,
	// and the pure forwarder appears nowhere in it.
	spec := serve.RunSpec{Workload: "TJ", Scale: 256, Seed: 7}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := serve.Digest(&spec)
	owner, fwd := f.OwnerIndex(d), f.NonOwnerIndex(d)
	reps := f.ReplicaIDs(d)
	if len(reps) != 2 {
		t.Fatalf("replica set %v, want 2 entries", reps)
	}
	if owner < 0 || f.Nodes[owner].ID != reps[0] {
		t.Errorf("OwnerIndex %d does not lead replica set %v", owner, reps)
	}
	for _, id := range reps {
		if fwd >= 0 && id == f.Nodes[fwd].ID {
			t.Errorf("pure forwarder %q found in replica set %v", id, reps)
		}
	}

	// A non-run kind round-trips through the harness too.
	env := f.PostEnvelope(t, 0, serve.KindTransform, transformSpec())
	if env.Kind != string(serve.KindTransform) || len(env.Result) == 0 {
		t.Errorf("transform envelope kind %q, %d result bytes", env.Kind, len(env.Result))
	}
}

// TestHarnessKillRestart proves the kill switch severs a node at the
// connection level and Restart revives it at the same address with its
// state (the warm cache) intact.
func TestHarnessKillRestart(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 2})
	spec := serve.RunSpec{Workload: "TJ", Scale: 256, Seed: 9}
	f.PostEnvelope(t, 0, serve.KindRun, spec) // warm whoever serves it

	f.Nodes[0].Kill()
	if !f.Nodes[0].Killed() {
		t.Fatal("Killed() false after Kill")
	}
	if _, _, err := f.PostE(0, serve.KindRun, spec); err == nil {
		t.Fatal("post to a killed node succeeded")
	}
	// The peer keeps serving while its neighbor is dead.
	if env := f.PostEnvelope(t, 1, serve.KindRun, spec); env.Digest == "" {
		t.Fatal("survivor returned an empty digest")
	}

	f.Nodes[0].Restart()
	url := f.Nodes[0].URL
	env := f.PostEnvelope(t, 0, serve.KindRun, spec)
	if env.Digest == "" {
		t.Fatal("restarted node returned an empty digest")
	}
	if f.Nodes[0].URL != url {
		t.Errorf("restart moved the node from %s to %s", url, f.Nodes[0].URL)
	}
}

// TestHarnessFaultRules proves each rule kind behaves as documented when
// driven directly through the fault client.
func TestHarnessFaultRules(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 2})
	client := f.Faults.Client()

	// Drop: transport-level failure.
	f.Faults.Set("n1", clustertest.Rule{Drop: true})
	if _, err := client.Get(f.Nodes[1].URL + "/healthz"); err == nil {
		t.Error("dropped request succeeded")
	}
	// Unknown hosts and rule-free nodes pass through.
	if resp, err := client.Get(f.Nodes[0].URL + "/healthz"); err != nil {
		t.Errorf("rule-free request failed: %v", err)
	} else {
		resp.Body.Close()
	}

	// Status: synthesized response without touching the listener.
	f.Faults.Set("n1", clustertest.Rule{Status: http.StatusBadGateway})
	resp, err := client.Get(f.Nodes[1].URL + "/healthz")
	if err != nil {
		t.Fatalf("status-faulted request errored: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status %d, want 502", resp.StatusCode)
	}

	// Delay: the request completes after the hold.
	f.Faults.Set("n1", clustertest.Rule{Delay: 20 * time.Millisecond})
	begin := time.Now()
	resp, err = client.Get(f.Nodes[1].URL + "/healthz")
	if err != nil {
		t.Fatalf("delayed request errored: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(begin); elapsed < 20*time.Millisecond {
		t.Errorf("delayed request returned after %v, want >= 20ms", elapsed)
	}
	// Delay respects cancellation.
	f.Faults.Set("n1", clustertest.Rule{Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Nodes[1].URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Do(req); err == nil {
		t.Error("hour-delayed request returned before its context expired")
	}

	// Clear and ClearAll heal.
	f.Faults.Clear("n1")
	if resp, err := client.Get(f.Nodes[1].URL + "/healthz"); err != nil {
		t.Errorf("cleared node still faulted: %v", err)
	} else {
		resp.Body.Close()
	}
	f.Faults.Set("n0", clustertest.Rule{Drop: true})
	f.Faults.ClearAll()
	if resp, err := client.Get(f.Nodes[0].URL + "/healthz"); err != nil {
		t.Errorf("ClearAll left a fault in place: %v", err)
	} else {
		resp.Body.Close()
	}
}

// TestHarnessConverge proves Converge synchronously refreshes membership
// in both directions around a kill.
func TestHarnessConverge(t *testing.T) {
	t.Parallel()
	// A long probe interval isolates Converge from the background prober.
	f := clustertest.Start(t, clustertest.Config{Nodes: 3, ProbeInterval: time.Hour})
	f.Converge(context.Background())
	for _, n := range f.Nodes {
		for _, peer := range f.Nodes {
			if peer.ID != n.ID && n.Cluster.Membership().IsDown(peer.ID) {
				t.Fatalf("%s sees %s down in a healthy fleet", n.ID, peer.ID)
			}
		}
	}
	f.Nodes[2].Kill()
	f.Converge(context.Background())
	if !f.Nodes[0].Cluster.Membership().IsDown("n2") {
		t.Error("n0 still sees the killed n2 as up after Converge")
	}
	f.Nodes[2].Restart()
	f.Converge(context.Background())
	if f.Nodes[0].Cluster.Membership().IsDown("n2") {
		t.Error("n0 still sees the restarted n2 as down after Converge")
	}
}
