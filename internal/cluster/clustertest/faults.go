package clustertest

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Rule is one injected transport fault for traffic addressed to a node.
// Zero value means "no fault". Exactly one of the fields is normally set:
// Drop fails the request at the transport layer (a dead or partitioned
// peer), Delay holds it before delivery (a slow link), Status short-
// circuits with a synthesized HTTP error of that code (a sick peer).
type Rule struct {
	Drop   bool
	Delay  time.Duration
	Status int
}

// Faults is the fault-injection table every inter-node HTTP client in a
// Fleet routes through: rules are keyed by target node ID and applied in
// the RoundTripper, so drops look like connection failures and synthesized
// statuses look like real peer answers. Safe for concurrent use.
type Faults struct {
	mu     sync.Mutex
	rules  map[string]Rule
	addrID map[string]string // host:port -> node ID
}

// NewFaults returns an empty fault table.
func NewFaults() *Faults {
	return &Faults{rules: make(map[string]Rule), addrID: make(map[string]string)}
}

// register maps a listener address to its node ID so rules can be keyed by
// the stable ID rather than the ephemeral port.
func (f *Faults) register(addr, id string) {
	f.mu.Lock()
	f.addrID[addr] = id
	f.mu.Unlock()
}

// Set installs the rule for traffic addressed to a node, replacing any
// previous rule.
func (f *Faults) Set(nodeID string, r Rule) {
	f.mu.Lock()
	f.rules[nodeID] = r
	f.mu.Unlock()
}

// Clear removes the rule for a node.
func (f *Faults) Clear(nodeID string) {
	f.mu.Lock()
	delete(f.rules, nodeID)
	f.mu.Unlock()
}

// ClearAll removes every rule (heals the network).
func (f *Faults) ClearAll() {
	f.mu.Lock()
	f.rules = make(map[string]Rule)
	f.mu.Unlock()
}

// rule resolves the rule for a request host ("" ID when unknown).
func (f *Faults) rule(host string) (string, Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id, ok := f.addrID[host]
	if !ok {
		return "", Rule{}
	}
	return id, f.rules[id]
}

// Client returns an *http.Client whose transport applies the fault table
// before delegating to the default transport.
func (f *Faults) Client() *http.Client {
	return &http.Client{Transport: &faultTransport{faults: f, next: http.DefaultTransport}}
}

// faultTransport applies the fault table to each round trip.
type faultTransport struct {
	faults *Faults
	next   http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	id, r := t.faults.rule(req.URL.Host)
	if r.Drop {
		return nil, fmt.Errorf("clustertest: injected drop to %s: %w", id, errors.New("connection refused"))
	}
	if r.Delay > 0 {
		select {
		case <-time.After(r.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if r.Status != 0 {
		body := fmt.Sprintf(`{"error":"clustertest: injected %d from %s"}`, r.Status, id)
		return &http.Response{
			StatusCode: r.Status,
			Status:     http.StatusText(r.Status),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	return t.next.RoundTrip(req)
}
