// Package clustertest is the in-process fleet test harness behind every
// twistd multi-node test (DESIGN.md §4.14): it boots N real serve.Servers
// on httptest listeners wired to each other as consistent-hash peers, with
// hooks to kill and restart a node and to inject transport faults (drop,
// delay, synthesized 5xx) on the inter-node links. Everything runs in one
// process and is race-clean under -race; fault transitions are explicit
// method calls, so fleet tests assert on deterministic digests and bytes
// rather than on timing.
package clustertest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"twist/internal/cluster"
	"twist/internal/serve"
)

// Config parameterizes a Fleet. The zero value of every field has a
// serving-grade test default.
type Config struct {
	// Nodes is the fleet size (default 3).
	Nodes int
	// Replicas is the ring replication factor (default 2).
	Replicas int
	// VNodes is the per-member virtual-node count (default 16 — smaller
	// than production's 64 to keep ring construction cheap in tests).
	VNodes int
	// Serve is the per-node server config template; its Cluster field is
	// overwritten per node. The zero value gets Queue 64 / Workers 2.
	Serve serve.Config
	// ProbeInterval is the health-prober period (default 25ms, fast
	// enough that recovery tests converge promptly).
	ProbeInterval time.Duration
	// FleetQueueBound enables fleet-wide shedding (0 disables).
	FleetQueueBound int64
	// Versions overrides the engine version stamp per node index, for
	// version-skew tests; unlisted nodes use serve.EngineVersion.
	Versions map[int]string
	// ForwardTimeout/ForwardRetries/ForwardBackoff tune the hop transport
	// (defaults 2s / 1 / 10ms).
	ForwardTimeout time.Duration
	ForwardRetries int
	ForwardBackoff time.Duration
}

// Node is one fleet member: the real server, its cluster node, and the
// kill switch.
type Node struct {
	ID      string
	URL     string
	Server  *serve.Server
	Cluster *cluster.Node

	ts     *httptest.Server
	killed atomic.Bool
}

// Kill makes the node unreachable: every in-flight and future request on
// its listener aborts at the connection level (clients observe EOF, as
// with a dead process). The listener itself stays open, so Restart
// revives the node at the same address with its caches intact.
func (n *Node) Kill() { n.killed.Store(true) }

// Restart revives a killed node.
func (n *Node) Restart() { n.killed.Store(false) }

// Killed reports whether the node is currently killed.
func (n *Node) Killed() bool { return n.killed.Load() }

// ServeHTTP implements the node's listener handler: the kill gate in front
// of the real server mux.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if n.killed.Load() {
		panic(http.ErrAbortHandler) // aborts the connection without logging
	}
	n.Server.Handler().ServeHTTP(w, r)
}

// Fleet is a booted in-process twistd fleet.
type Fleet struct {
	Nodes  []*Node
	Faults *Faults

	replicas int
}

// Envelope mirrors the daemon's response envelope for test assertions.
type Envelope struct {
	Kind      string          `json:"kind"`
	Digest    string          `json:"digest"`
	Cached    bool            `json:"cached"`
	ElapsedNS int64           `json:"elapsed_ns"`
	Result    json.RawMessage `json:"result"`
	Node      string          `json:"node,omitempty"`
	Via       string          `json:"via,omitempty"`
}

// Start boots a fleet per cfg and registers cleanup with t. Node IDs are
// "n0".."n<N-1>"; every node knows every other as a static peer.
func Start(t testing.TB, cfg Config) *Fleet {
	t.Helper()
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 16
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 2 * time.Second
	}
	if cfg.ForwardBackoff <= 0 {
		cfg.ForwardBackoff = 10 * time.Millisecond
	}
	if cfg.Serve.Queue == 0 {
		cfg.Serve.Queue = 64
	}
	if cfg.Serve.Workers == 0 {
		cfg.Serve.Workers = 2
	}

	f := &Fleet{Faults: NewFaults(), replicas: cfg.Replicas}
	// Phase 1: allocate listeners so every node's URL is known before any
	// server is constructed (static membership needs the full address set).
	members := make([]cluster.Member, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{ID: fmt.Sprintf("n%d", i)}
		n.ts = httptest.NewUnstartedServer(n)
		n.URL = "http://" + n.ts.Listener.Addr().String()
		f.Faults.register(n.ts.Listener.Addr().String(), n.ID)
		members[i] = cluster.Member{ID: n.ID, URL: n.URL}
		f.Nodes = append(f.Nodes, n)
	}
	// Phase 2: build each node's cluster view and server, then open the
	// listeners. Every inter-node client routes through the fault table.
	for i, n := range f.Nodes {
		version := serve.EngineVersion
		if v, ok := cfg.Versions[i]; ok {
			version = v
		}
		n.Cluster = cluster.NewNode(cluster.Config{
			Self:            members[i],
			Peers:           members,
			Version:         version,
			VNodes:          cfg.VNodes,
			Replicas:        cfg.Replicas,
			FleetQueueBound: cfg.FleetQueueBound,
			ProbeInterval:   cfg.ProbeInterval,
			FailThreshold:   1,
			ForwardTimeout:  cfg.ForwardTimeout,
			ForwardRetries:  cfg.ForwardRetries,
			ForwardBackoff:  cfg.ForwardBackoff,
			Client:          f.Faults.Client(),
		})
		scfg := cfg.Serve
		scfg.Cluster = n.Cluster
		n.Server = serve.New(scfg)
		n.ts.Start()
	}
	t.Cleanup(f.Stop)
	return f
}

// Stop shuts the fleet down: listeners first (so no new requests arrive),
// then the servers (stopping probers and draining pools). Idempotent via
// httptest/serve semantics.
func (f *Fleet) Stop() {
	for _, n := range f.Nodes {
		n.Restart() // let in-flight aborts finish cleanly
		n.ts.Close()
	}
	for _, n := range f.Nodes {
		n.Server.Close()
	}
}

// Converge runs one synchronous probe round on every non-killed node, so
// membership reflects the current kill/fault state without waiting for
// prober ticks — the deterministic alternative to sleeping.
func (f *Fleet) Converge(ctx context.Context) {
	for _, n := range f.Nodes {
		if !n.Killed() {
			n.Cluster.ProbeOnce(ctx)
		}
	}
}

// Post sends a job spec to node i and returns the HTTP status and raw
// body. Transport errors (e.g. posting to a killed node) fail t.
func (f *Fleet) Post(t testing.TB, i int, kind serve.Kind, spec any) (int, []byte) {
	t.Helper()
	status, body, err := f.PostE(i, kind, spec)
	if err != nil {
		t.Fatalf("post to %s: %v", f.Nodes[i].ID, err)
	}
	return status, body
}

// PostE is Post returning transport errors instead of failing the test.
func (f *Fleet) PostE(i int, kind serve.Kind, spec any) (int, []byte, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(f.Nodes[i].URL+"/v1/"+string(kind), "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// PostEnvelope posts a spec to node i, requires HTTP 200, and decodes the
// envelope.
func (f *Fleet) PostEnvelope(t testing.TB, i int, kind serve.Kind, spec any) Envelope {
	t.Helper()
	status, body := f.Post(t, i, kind, spec)
	if status != http.StatusOK {
		t.Fatalf("post to %s: status %d: %s", f.Nodes[i].ID, status, body)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", body, err)
	}
	return env
}

// Get fetches a GET endpoint (e.g. /metrics/fleet) on node i.
func (f *Fleet) Get(t testing.TB, i int, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(f.Nodes[i].URL + path)
	if err != nil {
		t.Fatalf("get %s from %s: %v", path, f.Nodes[i].ID, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// OwnerIndex returns the index of the node owning a digest (per node 0's
// ring — all rings agree by construction).
func (f *Fleet) OwnerIndex(digest string) int {
	owner := f.Nodes[0].Cluster.Ring().Owner(f.Nodes[0].Cluster.RouteKey(digest))
	for i, n := range f.Nodes {
		if n.ID == owner {
			return i
		}
	}
	return -1
}

// ReplicaIDs returns the digest's replica set (owner first) on the shared
// ring, at the fleet's configured replication factor.
func (f *Fleet) ReplicaIDs(digest string) []string {
	return f.Nodes[0].Cluster.Ring().Replicas(f.Nodes[0].Cluster.RouteKey(digest), f.replicas)
}

// NonOwnerIndex returns the index of a node that neither owns digest nor
// appears anywhere in its replica set — a pure forwarder. Returns -1 when
// every node is a replica (fleet size <= replication factor).
func (f *Fleet) NonOwnerIndex(digest string) int {
	reps := f.ReplicaIDs(digest)
	for i, n := range f.Nodes {
		inReps := false
		for _, id := range reps {
			if id == n.ID {
				inReps = true
			}
		}
		if !inReps {
			return i
		}
	}
	return -1
}
