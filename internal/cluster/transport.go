package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Forwarding headers. HeaderForwarded is the loop guard: a node receiving a
// request bearing it must serve locally, never re-forward — so a request
// crosses at most one hop regardless of ring disagreement between nodes.
// HeaderVersion stamps both the forward and the response with the sender's
// engine/schema version; a mismatch on either side rejects the hop, which
// is what invalidates the replicated cache tier across version bumps (a
// node never admits bytes produced by a different engine version).
// HeaderNode names the responding node, for diagnostics and the smoke test.
const (
	HeaderForwarded = "X-Twistd-Forwarded-By"
	HeaderVersion   = "X-Twistd-Engine-Version"
	HeaderNode      = "X-Twistd-Node"
)

// ErrVersionSkew reports that a peer answered with a different
// engine/schema version stamp; its bytes must not enter the local cache.
var ErrVersionSkew = errors.New("cluster: peer engine version differs")

// maxForwardResponseBytes bounds a forwarded response body read. Job
// results are JSON in the low-megabyte range; 32 MiB leaves ample room.
const maxForwardResponseBytes = 32 << 20

// Transport forwards job requests to peers with per-hop timeout, bounded
// retry with backoff, and the loop-guard/version headers. One Transport is
// shared by a node's router, prober, and metrics aggregator; the underlying
// http.Client is injectable so tests can interpose fault rules.
type Transport struct {
	client  *http.Client
	self    string // this node's ID, sent as the loop guard
	version string // engine/schema stamp, sent and checked on every hop
	timeout time.Duration
	retries int // attempts per hop beyond the first
	backoff time.Duration
}

// TransportConfig parameterizes a Transport; zero fields get defaults
// (2s per-hop timeout, 1 retry, 50ms backoff, http.DefaultClient).
type TransportConfig struct {
	Client  *http.Client
	SelfID  string
	Version string
	Timeout time.Duration
	Retries int
	Backoff time.Duration
}

// NewTransport builds a Transport from cfg.
func NewTransport(cfg TransportConfig) *Transport {
	t := &Transport{
		client:  cfg.Client,
		self:    cfg.SelfID,
		version: cfg.Version,
		timeout: cfg.Timeout,
		retries: cfg.Retries,
		backoff: cfg.Backoff,
	}
	if t.client == nil {
		t.client = http.DefaultClient
	}
	if t.timeout <= 0 {
		t.timeout = 2 * time.Second
	}
	if t.retries < 0 {
		t.retries = 1
	}
	if t.backoff <= 0 {
		t.backoff = 50 * time.Millisecond
	}
	return t
}

// ForwardResult is one completed hop: the peer's HTTP status and raw
// response body. Status 200 carries a full response envelope; non-200
// bodies are the peer's JSON error.
type ForwardResult struct {
	Status int
	Body   []byte
}

// retryableStatus reports whether a hop outcome is worth retrying on the
// same peer: transient server-side failures only. 4xx statuses are
// deterministic verdicts about the request (or, for 409/429, about the
// peer) and repeat identically.
func retryableStatus(status int) bool { return status >= 500 }

// Forward POSTs a job body to peer's kind endpoint, retrying transient
// failures (transport errors and 5xx) with backoff. It returns the last
// response for non-retryable statuses, and an error when every attempt
// failed at the transport layer or the peer answered with a different
// engine version (ErrVersionSkew).
func (t *Transport) Forward(ctx context.Context, peer Member, kind string, body []byte) (*ForwardResult, error) {
	url := peer.URL + "/v1/" + kind
	var lastErr error
	for attempt := 0; attempt <= t.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(t.backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := t.post(ctx, url, body)
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(res.Status) {
			lastErr = fmt.Errorf("cluster: peer %s answered %d", peer.ID, res.Status)
			continue
		}
		return res, nil
	}
	return nil, fmt.Errorf("cluster: forward to %s failed: %w", peer.ID, lastErr)
}

// post performs one hop under the per-hop timeout and verifies the response
// version stamp.
func (t *Transport) post(ctx context.Context, url string, body []byte) (*ForwardResult, error) {
	hopCtx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hopCtx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, t.self)
	req.Header.Set(HeaderVersion, t.version)
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponseBytes))
	if err != nil {
		return nil, err
	}
	if v := resp.Header.Get(HeaderVersion); v != "" && v != t.version {
		return nil, fmt.Errorf("%w: ours %q, peer sent %q", ErrVersionSkew, t.version, v)
	}
	return &ForwardResult{Status: resp.StatusCode, Body: out}, nil
}

// Get fetches a peer's GET endpoint (the /clusterz probe and /metrics
// aggregation path) under the per-hop timeout, without retry — probes are
// periodic, so the next tick is the retry.
func (t *Transport) Get(ctx context.Context, peer Member, path string) (*ForwardResult, error) {
	hopCtx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hopCtx, http.MethodGet, peer.URL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderVersion, t.version)
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponseBytes))
	if err != nil {
		return nil, err
	}
	return &ForwardResult{Status: resp.StatusCode, Body: out}, nil
}
