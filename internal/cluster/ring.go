// Package cluster is the multi-node serving substrate behind twistd's fleet
// mode (DESIGN.md §4.14): a consistent-hash ring that routes jobs by their
// canonical spec digest to an owner node, static membership with a health
// prober that routes around dead peers, an HTTP peer-forwarding transport
// with per-hop timeout/retry/backoff and a forwarding-loop guard, and
// fleet-level metrics aggregation over per-node obs.Reports.
//
// The design exploits the same structure the paper exploits for caches, one
// level up: every twistd response is a deterministic, content-addressed
// function of its spec digest (bit-identical to a direct library call), so
// identical requests from any client can be landed on the same owner node,
// where they coalesce into one execution and hit one cache — and any node's
// cached bytes are valid bytes for every other node on the same engine
// version. Hashing is SHA-256 end to end; nothing in the routing path
// depends on Go map iteration order or per-process hash seeds, so two
// processes given the same membership route every key identically.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when RingConfig leaves
// it zero: enough points that load and key movement stay within a few
// percent of the K/N ideal for small fleets.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over member IDs. Each member contributes
// vnodes points placed by SHA-256, so joins and leaves move only ~K/N of
// the key space. The zero value is unusable; construct with NewRing. Ring
// itself is not concurrency-safe — Membership guards the mutable copy, and
// everything else treats rings as immutable values.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, node)
	nodes  []string    // sorted member IDs
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given member IDs with vnodes virtual
// points per member (<= 0 means DefaultVNodes). Duplicate IDs collapse to
// one membership; insertion order is irrelevant to routing.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			r.nodes = append(r.nodes, m)
		}
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// With returns a new ring with the member added (a no-op copy if already
// present). The receiver is unchanged.
func (r *Ring) With(member string) *Ring {
	return NewRing(r.vnodes, append(append([]string{}, r.nodes...), member)...)
}

// Without returns a new ring with the member removed (a no-op copy if
// absent). The receiver is unchanged.
func (r *Ring) Without(member string) *Ring {
	keep := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != member {
			keep = append(keep, n)
		}
	}
	return NewRing(r.vnodes, keep...)
}

// Nodes returns the sorted member IDs.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the member owning key: the first ring point at or after the
// key's hash, wrapping at the top. Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct members for key in ring order starting
// at the owner. Successive entries are the fallback owners a router tries
// when earlier ones are down; Replicas(key, Len()) enumerates every member.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// pointHash places one virtual node: the first 8 bytes of
// SHA-256("node\x00vnode") as a big-endian uint64. SHA-256 keeps placement
// identical across processes, architectures, and Go versions.
func pointHash(node string, vnode int) uint64 {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(vnode))
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write(idx[:])
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// keyHash places a routing key on the ring. Keys are version-stamped spec
// digests (Node.RouteKey), but any string routes deterministically.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
