package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes one fleet node. Self and Peers are the static
// membership (-peers flag); everything else has serving-grade defaults.
type Config struct {
	// Self is this node's identity and advertised URL.
	Self Member
	// Peers are the other fleet members (entries matching Self.ID are
	// ignored, so the full fleet list can be passed to every node).
	Peers []Member
	// Version is the engine/schema stamp: it prefixes every routing key and
	// gates every hop, so a version bump invalidates the replicated cache
	// tier fleet-wide (old bytes are simply never admitted or hit again).
	Version string
	// VNodes is the virtual-node count per member (<= 0: DefaultVNodes).
	VNodes int
	// Replicas is how many ring successors (owner first) may serve a
	// digest; the router tries them in order before degrading to local
	// serving. <= 0 means 2.
	Replicas int
	// FleetQueueBound sheds new external work with 429 once the fleet-wide
	// admission queue depth (local + last observed live peers) reaches it.
	// 0 disables fleet-level shedding (local backpressure still applies).
	FleetQueueBound int64
	// ProbeInterval is the health-prober period (<= 0: 1s).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive probe failures marking a peer down
	// (<= 0: 1). Failed forwards mark down immediately regardless.
	FailThreshold int
	// ForwardTimeout, ForwardRetries, ForwardBackoff tune the per-hop
	// transport (see TransportConfig).
	ForwardTimeout time.Duration
	ForwardRetries int
	ForwardBackoff time.Duration
	// Client overrides the HTTP client every hop and probe uses; tests
	// inject fault-wrapping clients here.
	Client *http.Client
}

// Node bundles the ring, membership, and transport of one fleet member —
// the object internal/serve consults on every request in fleet mode. All
// methods are safe for concurrent use.
type Node struct {
	cfg  Config
	ring *Ring
	mem  *Membership
	tr   *Transport

	proberMu   sync.Mutex
	proberStop chan struct{}
	proberDone chan struct{}
}

// NewNode builds a fleet node from cfg.
func NewNode(cfg Config) *Node {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	mem := NewMembership(cfg.Self, cfg.Peers, cfg.FailThreshold)
	return &Node{
		cfg:  cfg,
		ring: NewRing(cfg.VNodes, mem.AllIDs()...),
		mem:  mem,
		tr: NewTransport(TransportConfig{
			Client:  cfg.Client,
			SelfID:  cfg.Self.ID,
			Version: cfg.Version,
			Timeout: cfg.ForwardTimeout,
			Retries: cfg.ForwardRetries,
			Backoff: cfg.ForwardBackoff,
		}),
	}
}

// Self returns this node's member entry.
func (n *Node) Self() Member { return n.cfg.Self }

// Version returns the engine/schema stamp hops are gated on.
func (n *Node) Version() string { return n.cfg.Version }

// Membership returns the node's member/health table.
func (n *Node) Membership() *Membership { return n.mem }

// Ring returns the node's (immutable) hash ring over the full static
// membership; health filtering happens in Route.
func (n *Node) Ring() *Ring { return n.ring }

// RouteKey stamps a spec digest with the engine/schema version: the string
// the ring hashes and the replicated tier is effectively keyed on. Two
// nodes on different versions compute different placements and, more
// importantly, refuse each other's hops — so a version bump is a
// fleet-wide cache invalidation without any coordination.
func (n *Node) RouteKey(digest string) string { return n.cfg.Version + ":" + digest }

// Route returns the members that may serve digest, in preference order:
// the ring's replica set (owner first) filtered to live members. An empty
// result means every replica is unreachable — the caller degrades to
// local-only serving.
func (n *Node) Route(digest string) []Member {
	ids := n.ring.Replicas(n.RouteKey(digest), n.cfg.Replicas)
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		if id != n.cfg.Self.ID && n.mem.IsDown(id) {
			continue
		}
		if m, ok := n.mem.Lookup(id); ok {
			out = append(out, m)
		}
	}
	return out
}

// Forward sends a job to a peer through the transport; a transport-level
// failure passively marks the peer down (the prober brings it back).
func (n *Node) Forward(ctx context.Context, peer Member, kind string, body []byte) (*ForwardResult, error) {
	res, err := n.tr.Forward(ctx, peer, kind, body)
	if err != nil {
		n.mem.MarkDown(peer.ID)
		return nil, err
	}
	return res, nil
}

// FleetQueueDepth is the fleet-wide admission pressure: the local queue
// depth plus the last observed depth of every live peer.
func (n *Node) FleetQueueDepth(localDepth int64) int64 {
	return localDepth + n.mem.PeerQueueDepth()
}

// ShouldShed reports whether a new external request must be shed with 429:
// a fleet queue bound is configured and the fleet-wide depth has reached
// it. Forwarded requests are never shed here — their entry node already
// charged them against the bound.
func (n *Node) ShouldShed(localDepth int64) bool {
	return n.cfg.FleetQueueBound > 0 && n.FleetQueueDepth(localDepth) >= n.cfg.FleetQueueBound
}

// StartProber begins the background health loop: every ProbeInterval it
// fetches each peer's /clusterz, observing status (up + queue depth) on
// success and counting failures toward down on error. Idempotent; stop
// with StopProber.
func (n *Node) StartProber() {
	n.proberMu.Lock()
	defer n.proberMu.Unlock()
	if n.proberStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	n.proberStop, n.proberDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(n.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				n.ProbeOnce(context.Background())
			}
		}
	}()
}

// StopProber stops the health loop and waits for it to exit. Idempotent.
func (n *Node) StopProber() {
	n.proberMu.Lock()
	stop, done := n.proberStop, n.proberDone
	n.proberStop, n.proberDone = nil, nil
	n.proberMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ProbeOnce probes every peer once, synchronously — the prober's body,
// exported so tests (and recovering routers) can force a deterministic
// membership refresh instead of sleeping through a tick.
func (n *Node) ProbeOnce(ctx context.Context) {
	for _, p := range n.mem.Peers() {
		res, err := n.tr.Get(ctx, p, "/clusterz")
		if err != nil || res.Status != http.StatusOK {
			n.mem.ProbeFailed(p.ID)
			continue
		}
		var st NodeStatus
		if err := json.Unmarshal(res.Body, &st); err != nil || (st.Version != "" && st.Version != n.cfg.Version) {
			// Unparseable or version-skewed peers are routed around: their
			// cached bytes must not serve this node's requests.
			n.mem.ProbeFailed(p.ID)
			continue
		}
		n.mem.Observe(p.ID, st)
	}
}
