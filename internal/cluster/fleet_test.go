package cluster_test

// The fleet fault-injection suite (DESIGN.md §4.14): every scenario is
// asserted via deterministic digests and result bytes — the contract is
// that a fleet under faults serves exactly the bytes a direct library call
// produces, never that it serves them at a particular speed. Timing enters
// only through Fleet.Converge, which is a synchronous probe round, not a
// sleep.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"twist/internal/cluster"
	"twist/internal/cluster/clustertest"
	"twist/internal/obs"
	"twist/internal/serve"
)

// runSpec builds the suite's standard small run job with a distinguishing
// seed, so tests can mint digests routed to whichever node they need.
func runSpec(seed int64) serve.RunSpec {
	return serve.RunSpec{Workload: "TJ", Variant: "twisted", Scale: 256, Seed: seed}
}

// digestOf normalizes a copy of the spec and returns its content digest.
func digestOf(t testing.TB, spec serve.RunSpec) string {
	t.Helper()
	c := spec
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	return serve.Digest(&c)
}

// directBytes runs the spec through the library and marshals the result —
// the fleet's ground truth.
func directBytes(t testing.TB, spec serve.RunSpec) []byte {
	t.Helper()
	c := spec
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	out, err := serve.RunJob(context.Background(), &c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// findSpec scans seeds from start until the minted digest satisfies pred —
// how tests pick jobs with a particular placement (owned by a node, pure-
// forwarded by another) without depending on any specific hash value.
func findSpec(t testing.TB, start int64, pred func(digest string) bool) (serve.RunSpec, string) {
	t.Helper()
	for seed := start; seed < start+512; seed++ {
		spec := runSpec(seed)
		d := digestOf(t, spec)
		if pred(d) {
			return spec, d
		}
	}
	t.Fatal("no seed found with the requested placement")
	return serve.RunSpec{}, ""
}

// TestFleetDigestRouting is the basic coalescing-locality property: a
// request posted to a pure forwarder executes on the owner, the forwarder
// admits the bytes, and every response equals the direct library call.
func TestFleetDigestRouting(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	spec := runSpec(1)
	d := digestOf(t, spec)
	fwd := f.NonOwnerIndex(d)
	if fwd < 0 {
		t.Fatal("no pure forwarder in a 3-node/2-replica fleet")
	}
	owner := f.OwnerIndex(d)
	third := 3 - fwd - owner
	want := directBytes(t, spec)

	env := f.PostEnvelope(t, fwd, serve.KindRun, spec)
	if env.Digest != d {
		t.Fatalf("digest %s, want %s", env.Digest, d)
	}
	if env.Node != f.Nodes[owner].ID || env.Via != f.Nodes[fwd].ID {
		t.Errorf("served by %q via %q, want owner %q via forwarder %q",
			env.Node, env.Via, f.Nodes[owner].ID, f.Nodes[fwd].ID)
	}
	if env.Cached {
		t.Error("first execution reported cached")
	}
	if !bytes.Equal(env.Result, want) {
		t.Errorf("forwarded result differs from direct library call\nfleet:  %s\ndirect: %s", env.Result, want)
	}

	// The owner populated its cache: the same job posted to the second
	// replica forwards to the owner and comes back a cache hit, identical.
	env2 := f.PostEnvelope(t, third, serve.KindRun, spec)
	if !env2.Cached || !bytes.Equal(env2.Result, want) {
		t.Errorf("cross-node repeat: cached=%v, bytes equal=%v", env2.Cached, bytes.Equal(env2.Result, want))
	}
	if env2.Node != f.Nodes[owner].ID {
		t.Errorf("repeat served by %q, want owner %q", env2.Node, f.Nodes[owner].ID)
	}

	// The forwarder admitted the response: a repeat there is served from
	// its own replica cache without any network hop.
	env3 := f.PostEnvelope(t, fwd, serve.KindRun, spec)
	if !env3.Cached || env3.Node != f.Nodes[fwd].ID || env3.Via != "" {
		t.Errorf("replica-cache repeat: cached=%v node=%q via=%q, want local hit on %q",
			env3.Cached, env3.Node, env3.Via, f.Nodes[fwd].ID)
	}
	if !bytes.Equal(env3.Result, want) {
		t.Error("replica-cache bytes differ from direct library call")
	}
	if got := f.Nodes[fwd].Server.Counters()["serve.fleet.replica_hit"]; got < 1 {
		t.Errorf("serve.fleet.replica_hit = %d, want >= 1", got)
	}
}

// TestFleetOwnerDeathFallsBackToReplica kills an owner and requires both
// halves of the fallback story: a node holding admitted bytes serves them
// from its replica cache, and a node holding nothing falls back to a live
// replica — the same bytes either way, asserted against the direct call.
func TestFleetOwnerDeathFallsBackToReplica(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	spec := runSpec(1)
	d := digestOf(t, spec)
	owner, fwd := f.OwnerIndex(d), f.NonOwnerIndex(d)
	third := 3 - owner - fwd
	want := directBytes(t, spec)

	// Seed the forwarder's replica cache through a normal forward.
	if env := f.PostEnvelope(t, fwd, serve.KindRun, spec); !bytes.Equal(env.Result, want) {
		t.Fatal("pre-kill bytes differ from direct library call")
	}

	f.Nodes[owner].Kill()

	// Replica-cache path: the forwarder still serves the digest, owner
	// dead or not, from the bytes it admitted.
	env := f.PostEnvelope(t, fwd, serve.KindRun, spec)
	if !env.Cached || !bytes.Equal(env.Result, want) {
		t.Errorf("replica cache after owner death: cached=%v, bytes equal=%v", env.Cached, bytes.Equal(env.Result, want))
	}

	// Fallback path: the second replica has nothing cached; its forward to
	// the dead owner fails, it falls back to itself (the next live
	// replica), and determinism reproduces the identical bytes.
	env2 := f.PostEnvelope(t, third, serve.KindRun, spec)
	if !bytes.Equal(env2.Result, want) {
		t.Errorf("fallback result differs from direct library call\nfleet:  %s\ndirect: %s", env2.Result, want)
	}
	if env2.Digest != d {
		t.Errorf("fallback digest %s, want %s", env2.Digest, d)
	}
	if env2.Node == f.Nodes[owner].ID {
		t.Errorf("response claims the dead owner %q served it", env2.Node)
	}
}

// TestFleetPartitionDegradesToLocal partitions a node from every peer and
// requires local-only serving with correct bytes instead of errors, even
// for a digest the node is not a replica of.
func TestFleetPartitionDegradesToLocal(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	// Node 0 is partitioned: every hop to a peer drops at the transport.
	f.Faults.Set("n1", clustertest.Rule{Drop: true})
	f.Faults.Set("n2", clustertest.Rule{Drop: true})

	// A digest whose replica set is exactly the unreachable peers.
	spec, d := findSpec(t, 1, func(d string) bool { return f.NonOwnerIndex(d) == 0 })
	want := directBytes(t, spec)
	env := f.PostEnvelope(t, 0, serve.KindRun, spec)
	if env.Digest != d {
		t.Fatalf("digest %s, want %s", env.Digest, d)
	}
	if env.Node != "n0" || env.Via != "" {
		t.Errorf("partitioned node served node=%q via=%q, want local n0", env.Node, env.Via)
	}
	if !bytes.Equal(env.Result, want) {
		t.Error("degraded result differs from direct library call")
	}
	if got := f.Nodes[0].Server.Counters()["serve.fleet.degraded"]; got < 1 {
		t.Errorf("serve.fleet.degraded = %d, want >= 1", got)
	}
}

// TestFleetRecoveryReconverges heals a partition and requires routing to
// re-converge onto the owner — asserted by who serves, not by timing:
// Converge is a synchronous probe round.
func TestFleetRecoveryReconverges(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	f.Faults.Set("n1", clustertest.Rule{Drop: true})
	f.Faults.Set("n2", clustertest.Rule{Drop: true})

	ownedByN1 := func(d string) bool {
		return f.OwnerIndex(d) == 1 && f.NonOwnerIndex(d) == 0
	}
	spec, _ := findSpec(t, 1, ownedByN1)
	want := directBytes(t, spec)
	// Under partition: n0 degrades to local execution of n1's digest.
	if env := f.PostEnvelope(t, 0, serve.KindRun, spec); env.Node != "n0" || !bytes.Equal(env.Result, want) {
		t.Fatalf("partition: served by %q, bytes equal %v", env.Node, bytes.Equal(env.Result, want))
	}
	if !f.Nodes[0].Cluster.Membership().IsDown("n1") {
		t.Fatal("n1 not marked down after failed forwards")
	}

	// Heal and converge: a fresh digest owned by n1 must forward again.
	f.Faults.ClearAll()
	f.Converge(context.Background())
	if f.Nodes[0].Cluster.Membership().IsDown("n1") {
		t.Fatal("n1 still down after heal + converge")
	}
	spec2, d2 := findSpec(t, 1000, ownedByN1)
	env := f.PostEnvelope(t, 0, serve.KindRun, spec2)
	if env.Digest != d2 {
		t.Fatalf("digest %s, want %s", env.Digest, d2)
	}
	if env.Node != "n1" || env.Via != "n0" {
		t.Errorf("after recovery served by %q via %q, want owner n1 via n0", env.Node, env.Via)
	}
	if !bytes.Equal(env.Result, directBytes(t, spec2)) {
		t.Error("post-recovery bytes differ from direct library call")
	}
}

// TestFleetTransportFaults drives the 5xx and delay injection paths: a
// peer answering 503 is routed around (correct bytes from a fallback), and
// a delayed link still completes within the hop timeout.
func TestFleetTransportFaults(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	spec := runSpec(1)
	d := digestOf(t, spec)
	owner, fwd := f.OwnerIndex(d), f.NonOwnerIndex(d)
	ownerID := f.Nodes[owner].ID
	want := directBytes(t, spec)

	f.Faults.Set(ownerID, clustertest.Rule{Status: http.StatusServiceUnavailable})
	env := f.PostEnvelope(t, fwd, serve.KindRun, spec)
	if !bytes.Equal(env.Result, want) {
		t.Error("bytes differ with owner answering 503")
	}
	if env.Node == ownerID {
		t.Errorf("response claims the sick owner %q served it", env.Node)
	}
	if got := f.Nodes[fwd].Server.Counters()["serve.fleet.forward.fail"]; got < 1 {
		t.Errorf("serve.fleet.forward.fail = %d, want >= 1", got)
	}

	// Heal, bring the owner back up, and slow its link: a digest it owns
	// still forwards and completes inside the per-hop timeout.
	f.Faults.ClearAll()
	f.Converge(context.Background())
	f.Faults.Set(ownerID, clustertest.Rule{Delay: 50 * time.Millisecond})
	spec2, d2 := findSpec(t, 2000, func(d string) bool {
		return f.OwnerIndex(d) == owner && f.NonOwnerIndex(d) == fwd
	})
	env2 := f.PostEnvelope(t, fwd, serve.KindRun, spec2)
	if env2.Digest != d2 || env2.Node != ownerID {
		t.Fatalf("delayed hop: digest %s served by %q, want %s by %q", env2.Digest, env2.Node, d2, ownerID)
	}
	if !bytes.Equal(env2.Result, directBytes(t, spec2)) {
		t.Error("bytes differ over a delayed link")
	}
}

// TestFleetVersionSkew runs one node on a bumped engine version: probes
// refuse the mismatch in both directions, each side degrades to serving
// its own requests locally, and no cross-version bytes are ever admitted —
// the invalidation contract of the replicated tier.
func TestFleetVersionSkew(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{
		Nodes:    3,
		Versions: map[int]string{1: serve.EngineVersion + "-bumped"},
	})
	f.Converge(context.Background())
	if !f.Nodes[1].Cluster.Membership().IsDown("n0") || !f.Nodes[1].Cluster.Membership().IsDown("n2") {
		t.Fatal("skewed node still trusts different-version peers after probe")
	}
	if !f.Nodes[0].Cluster.Membership().IsDown("n1") {
		t.Fatal("n0 still trusts the skewed node after probe")
	}

	// The skewed node serves everything itself, correctly.
	spec := runSpec(1)
	want := directBytes(t, spec)
	env := f.PostEnvelope(t, 1, serve.KindRun, spec)
	if env.Node != "n1" {
		t.Errorf("skewed node's request served by %q, want local n1", env.Node)
	}
	if !bytes.Equal(env.Result, want) {
		t.Error("skewed node's bytes differ from direct library call")
	}
	// Nothing crossed the version boundary into a same-version cache.
	for _, i := range []int{0, 2} {
		if got := f.Nodes[i].Server.Counters()["serve.cache.admit.forwarded"]; got != 0 {
			t.Errorf("node %d admitted %d forwarded results across a version skew", i, got)
		}
	}
	// The same-version pair still forwards normally between themselves.
	spec2, d2 := findSpec(t, 3000, func(d string) bool {
		return f.OwnerIndex(d) == 2 && f.NonOwnerIndex(d) == 0
	})
	env2 := f.PostEnvelope(t, 0, serve.KindRun, spec2)
	if env2.Digest != d2 || env2.Node != "n2" {
		t.Errorf("same-version pair: digest %s served by %q, want %s by n2", env2.Digest, env2.Node, d2)
	}
	if !bytes.Equal(env2.Result, directBytes(t, spec2)) {
		t.Error("same-version pair bytes differ from direct library call")
	}
}

// TestFleetMetricsAggregation posts through the fleet and checks the
// merged /metrics/fleet report: per-node rows, the summed fleet row, the
// split hit ratios, and per-peer degradation when a node dies.
func TestFleetMetricsAggregation(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{Nodes: 3})
	spec := runSpec(1)
	d := digestOf(t, spec)
	fwd := f.NonOwnerIndex(d)
	f.PostEnvelope(t, fwd, serve.KindRun, spec)             // forward + admit
	f.PostEnvelope(t, fwd, serve.KindRun, spec)             // replica-cache hit
	f.PostEnvelope(t, f.OwnerIndex(d), serve.KindRun, spec) // owner-local hit

	status, body := f.Get(t, 0, "/metrics/fleet")
	if status != http.StatusOK {
		t.Fatalf("/metrics/fleet status %d: %s", status, body)
	}
	var rep obs.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("bad fleet report: %v", err)
	}
	if rep.Experiment != "twistd-fleet" {
		t.Errorf("experiment %q, want twistd-fleet", rep.Experiment)
	}
	if rep.Params["nodes_up"] != "3" {
		t.Errorf("nodes_up %q, want 3", rep.Params["nodes_up"])
	}
	rows := map[string]obs.Row{}
	for _, r := range rep.Rows {
		rows[r.Name] = r
	}
	for _, want := range []string{"n0/serve", "n1/serve", "n2/serve", "fleet/serve"} {
		if _, ok := rows[want]; !ok {
			t.Fatalf("fleet report missing row %q", want)
		}
	}
	fleet := rows["fleet/serve"]
	if fleet.Det["serve.jobs.total"] == "" || fleet.Det["serve.jobs.total"] == "0" {
		t.Errorf("fleet serve.jobs.total = %q, want > 0", fleet.Det["serve.jobs.total"])
	}
	for _, k := range []string{"serve.fleet.hit_ratio.local", "serve.fleet.hit_ratio.remote", "serve.fleet.forward_ratio"} {
		if _, ok := fleet.Noisy[k]; !ok {
			t.Errorf("fleet row missing noisy signal %q", k)
		}
	}
	if fleet.Noisy["serve.fleet.forward_ratio"] <= 0 {
		t.Errorf("forward_ratio %v, want > 0 after a forwarded job", fleet.Noisy["serve.fleet.forward_ratio"])
	}

	// A dead peer degrades aggregation per node, not the endpoint.
	f.Nodes[2].Kill()
	status, body = f.Get(t, 0, "/metrics/fleet")
	if status != http.StatusOK {
		t.Fatalf("/metrics/fleet with dead peer: status %d", status)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Params["nodes_up"] != "2" {
		t.Errorf("nodes_up %q with a dead peer, want 2", rep.Params["nodes_up"])
	}
	if rep.Params["down"] != "n2" {
		t.Errorf("down %q, want n2", rep.Params["down"])
	}
}

// TestFleetShedding fills the fleet-wide queue bound via observed peer
// status and requires 429 + Retry-After on the next external request. The
// probe interval is effectively disabled so the injected observation is
// not overwritten by a real probe mid-test.
func TestFleetShedding(t *testing.T) {
	t.Parallel()
	f := clustertest.Start(t, clustertest.Config{
		Nodes:           2,
		FleetQueueBound: 4,
		ProbeInterval:   time.Hour,
	})
	// Simulate probe-observed peer pressure: the peer reports a deep queue.
	f.Nodes[0].Cluster.Membership().Observe("n1", cluster.NodeStatus{
		ID: "n1", Version: serve.EngineVersion, QueueDepth: 10,
	})
	status, body, err := f.PostE(0, serve.KindRun, runSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429 under fleet queue bound", status, body)
	}
	if got := f.Nodes[0].Server.Counters()["serve.fleet.shed"]; got != 1 {
		t.Errorf("serve.fleet.shed = %d, want 1", got)
	}
	// Pressure gone → served again, correct bytes.
	f.Nodes[0].Cluster.Membership().Observe("n1", cluster.NodeStatus{
		ID: "n1", Version: serve.EngineVersion, QueueDepth: 0,
	})
	env := f.PostEnvelope(t, 0, serve.KindRun, runSpec(1))
	if !bytes.Equal(env.Result, directBytes(t, runSpec(1))) {
		t.Error("post-shed bytes differ from direct library call")
	}
}
