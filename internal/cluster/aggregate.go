package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"twist/internal/obs"
)

// FetchPeerReport scrapes one peer's /metrics obs.Report through the
// node's transport (per-hop timeout applies).
func (n *Node) FetchPeerReport(ctx context.Context, peer Member) (*obs.Report, error) {
	res, err := n.tr.Get(ctx, peer, "/metrics")
	if err != nil {
		return nil, err
	}
	if res.Status != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s /metrics answered %d", peer.ID, res.Status)
	}
	var rep obs.Report
	if err := json.Unmarshal(res.Body, &rep); err != nil {
		return nil, fmt.Errorf("cluster: peer %s /metrics: %w", peer.ID, err)
	}
	return &rep, nil
}

// FleetReport merges this node's local report with every live peer's
// scraped /metrics into one "twistd-fleet" obs.Report: per-node rows
// ("<id>/serve"), summed "fleet/serve" counters, and params recording the
// membership, replication, version stamp, and which peers were reachable
// during aggregation. Peers that fail to answer are skipped and listed in
// the "down" param — aggregation itself degrades per peer, never errors.
func (n *Node) FleetReport(ctx context.Context, local *obs.Report) *obs.Report {
	sources := []obs.NamedReport{{Name: n.cfg.Self.ID, Report: local}}
	var down []string
	for _, ps := range n.mem.States() {
		if !ps.Up {
			down = append(down, ps.Member.ID)
			continue
		}
		rep, err := n.FetchPeerReport(ctx, ps.Member)
		if err != nil {
			down = append(down, ps.Member.ID)
			continue
		}
		sources = append(sources, obs.NamedReport{Name: ps.Member.ID, Report: rep})
	}
	params := map[string]string{
		"node":     n.cfg.Self.ID,
		"peers":    FormatPeers(n.mem.Peers()),
		"replicas": strconv.Itoa(n.cfg.Replicas),
		"version":  n.cfg.Version,
		"nodes_up": strconv.Itoa(len(sources)),
		"down":     joinIDs(down),
	}
	return obs.MergeReports("twistd-fleet", params, sources)
}

// joinIDs renders a comma-separated ID list ("" when empty).
func joinIDs(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += id
	}
	return out
}
