// Package layout implements arena repacking passes for the spatial axis of
// the locality study: schedule-aware memory layouts for the arena trees the
// nested recursions traverse (ROADMAP item 3; the SoCal direction in
// PAPERS.md).
//
// The paper's transformations reorder the *temporal* sequence of (o, i)
// visits; every arena, however, still sits in build order, one cache line per
// node (workloads' §3.2 address model). This package opens the orthogonal
// *spatial* axis: a layout is a pass over an existing tree/kdtree/vptree
// arena that produces an old→new slot permutation (a Remap) plus a packed
// record stride, realized either physically — Apply/ApplyIndex rebuild the
// arena with nodes in the new order — or, equivalently under the simulated
// address model, at address-generation time (Scheme.Addr; DESIGN.md §4.12
// proves the equivalence). Because a layout only renames storage slots and
// never touches the traversal, every schedule visits the identical (o, i)
// sequence under every layout — oracle verdicts are layout-invariant by
// construction.
//
// Five passes are provided:
//
//	buildorder — the identity: one 64-byte line per node, in build order
//	             (the legacy model every pre-layout baseline was measured
//	             under).
//	hotcold    — hot/cold field splitting: the traversal-hot half of each
//	             node record (links, subtree size) is packed into its own
//	             arena at 32 bytes per node, build order preserved; the cold
//	             payload half moves to a separate arena the traversal never
//	             touches.
//	preorder   — hot/cold splitting plus preorder packing: hot records are
//	             stored in preorder. (The benchmark builders — balanced
//	             trees, range trees, kd/vp arenas — assign IDs in preorder
//	             already, so preorder ≡ hotcold on their arenas; the pass
//	             does real work for insertion-ordered or hand-built
//	             topologies.)
//	schedule   — hot/cold splitting plus first-touch packing: hot records
//	             are stored in the order a given schedule variant first
//	             touches the nodes, so the measured traversal walks its own
//	             arena nearly sequentially.
//	veb        — hot/cold splitting plus van Emde Boas blocking: the tree is
//	             split at half its height, the top half is laid out first,
//	             then each bottom subtree recursively — the cache-oblivious
//	             layout that keeps every root-to-node path within
//	             O(log_B n) blocks.
package layout

import (
	"fmt"
	"strings"

	"twist/internal/geom"
	"twist/internal/nest"
	"twist/internal/spatial"
	"twist/internal/tree"
)

// Record footprints of the address model: a full node record is one cache
// line (workloads' nodeStride); the traversal-hot half that the splitting
// passes pack is 32 bytes (two children, subtree size, preorder bounds).
const (
	NodeBytes = 64 // full node record: the paper's one-line-per-node model
	HotBytes  = 32 // traversal-hot record after hot/cold splitting
)

// Kind names an arena repacking pass.
type Kind uint8

// The five layout passes. BuildOrder is the zero value: the legacy
// one-line-per-node arena every pre-layout baseline was measured under.
const (
	BuildOrder Kind = iota
	HotCold
	Preorder
	Schedule
	VEB
)

// Kinds returns all layout kinds in canonical sweep order.
func Kinds() []Kind { return []Kind{BuildOrder, HotCold, Preorder, Schedule, VEB} }

// String returns the canonical name: "buildorder", "hotcold", "preorder",
// "schedule", "veb". ParseKind(k.String()) == k for every kind.
func (k Kind) String() string {
	switch k {
	case BuildOrder:
		return "buildorder"
	case HotCold:
		return "hotcold"
	case Preorder:
		return "preorder"
	case Schedule:
		return "schedule"
	case VEB:
		return "veb"
	}
	return fmt.Sprintf("layout(%d)", uint8(k))
}

// ParseKind parses a layout name, case-insensitively. The empty string,
// "identity", and "build-order" are aliases for BuildOrder; "van-emde-boas"
// and "vEB" for VEB; "firsttouch" and "schedule-order" for Schedule;
// "hot-cold" for HotCold.
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "buildorder", "build-order", "identity":
		return BuildOrder, nil
	case "hotcold", "hot-cold":
		return HotCold, nil
	case "preorder", "pre-order":
		return Preorder, nil
	case "schedule", "schedule-order", "firsttouch", "first-touch":
		return Schedule, nil
	case "veb", "van-emde-boas":
		return VEB, nil
	}
	return 0, fmt.Errorf("layout: unknown layout %q (valid: buildorder, hotcold, preorder, schedule, veb)", name)
}

// Stride returns the packed record stride of the pass in bytes: NodeBytes
// for the legacy build-order arena, HotBytes for every splitting pass.
func (k Kind) Stride() int64 {
	if k == BuildOrder {
		return NodeBytes
	}
	return HotBytes
}

// Reorders reports whether the pass permutes node storage slots (as opposed
// to only splitting the record). On the preorder-ID arenas the benchmark
// builders produce, Preorder's permutation is the identity.
func (k Kind) Reorders() bool { return k == Preorder || k == Schedule || k == VEB }

// Remap is an old→new storage-slot table for one arena: Remap[id] is the
// packed slot of node id. A valid Remap is a permutation of [0, len).
// A nil Remap is the identity.
type Remap []int32

// Validate checks that r is a permutation of [0, len(r)).
func (r Remap) Validate() error {
	seen := make([]bool, len(r))
	for id, slot := range r {
		if slot < 0 || int(slot) >= len(r) {
			return fmt.Errorf("layout: node %d mapped to slot %d, want [0,%d)", id, slot, len(r))
		}
		if seen[slot] {
			return fmt.Errorf("layout: slot %d assigned twice", slot)
		}
		seen[slot] = true
	}
	return nil
}

// Slot returns the packed slot of id (the identity for a nil Remap).
func (r Remap) Slot(id tree.NodeID) int32 {
	if r == nil {
		return int32(id)
	}
	return r[id]
}

// Inverse returns the new→old table: Inverse()[slot] is the node stored at
// slot. r must be a valid permutation.
func (r Remap) Inverse() Remap {
	inv := make(Remap, len(r))
	for id, slot := range r {
		inv[slot] = int32(id)
	}
	return inv
}

// PreorderRemap returns the remap packing t's nodes in preorder. For the
// benchmark builders (which assign IDs in preorder) the result is the
// identity permutation; for insertion-ordered topologies it reorders.
func PreorderRemap(t *tree.Topology) Remap {
	r := make(Remap, t.Len())
	for id := range r {
		r[id] = t.Order(tree.NodeID(id))
	}
	return r
}

// VEBRemap returns the van Emde Boas remap of t: the tree is cut at half
// its height, the top region is laid out recursively, then each subtree
// hanging below the cut, recursively. Nodes of one height-√h region are
// therefore contiguous at every recursion level, which bounds the number of
// distinct blocks on any root-to-node path by O(log_B n) for every block
// size B at once — the cache-oblivious property. Works on arbitrary (not
// just perfect) topologies by cutting on depth.
func VEBRemap(t *tree.Topology) Remap {
	n := t.Len()
	r := make(Remap, n)
	for id := range r {
		r[id] = -1
	}
	var next int32
	// assign lays out the first h levels of the subtree at root and appends
	// the roots of the subtrees hanging below level h to *frontier.
	var assign func(root tree.NodeID, h int, frontier *[]tree.NodeID)
	assign = func(root tree.NodeID, h int, frontier *[]tree.NodeID) {
		if root == tree.Nil {
			return
		}
		if h == 1 {
			r[root] = next
			next++
			if l := t.Left(root); l != tree.Nil {
				*frontier = append(*frontier, l)
			}
			if rt := t.Right(root); rt != tree.Nil {
				*frontier = append(*frontier, rt)
			}
			return
		}
		topH := (h + 1) / 2
		var mid []tree.NodeID
		assign(root, topH, &mid)
		for _, m := range mid {
			assign(m, h-topH, frontier)
		}
	}
	if n > 0 {
		// Height()+1 levels cover the whole tree, so the frontier comes back
		// empty and every reachable node gets a slot.
		var rest []tree.NodeID
		assign(t.Root(), t.Height()+1, &rest)
	}
	fillUnassigned(r, next)
	return r
}

// ScheduleRemaps runs spec under schedule variant v and returns the
// first-touch remaps of the outer and inner arenas: node n is stored at
// slot k iff n was the k-th distinct node of its tree touched by a Work
// invocation. Nodes the schedule never touches (truncated subtrees of the
// irregular spaces) keep their relative build order after all touched
// nodes. The recording run executes spec.Work, so callers measuring a
// stateful workload should record on a scratch instance (same constructor,
// same seed) — first-touch order is deterministic for a fixed spec and
// variant, which is what makes the layout reproducible.
func ScheduleRemaps(spec nest.Spec, v nest.Variant) (outer, inner Remap, err error) {
	ro := newUnassigned(spec.Outer.Len())
	ri := newUnassigned(spec.Inner.Len())
	var no, ni int32
	work := spec.Work
	spec.Work = func(o, i tree.NodeID) {
		if ro[o] < 0 {
			ro[o] = no
			no++
		}
		if ri[i] < 0 {
			ri[i] = ni
			ni++
		}
		if work != nil {
			work(o, i)
		}
	}
	e, err := nest.New(spec)
	if err != nil {
		return nil, nil, err
	}
	e.Run(v)
	fillUnassigned(ro, no)
	fillUnassigned(ri, ni)
	return ro, ri, nil
}

func newUnassigned(n int) Remap {
	r := make(Remap, n)
	for id := range r {
		r[id] = -1
	}
	return r
}

// fillUnassigned gives every slot-less node (unreachable or never touched)
// a slot after all assigned ones, preserving build order among them, so the
// table stays a permutation.
func fillUnassigned(r Remap, next int32) {
	for id, slot := range r {
		if slot < 0 {
			r[id] = next
			next++
		}
	}
}

// Scheme is a realized layout for one arena: the slot permutation plus the
// packed record stride. The zero value is the build-order scheme.
type Scheme struct {
	Kind   Kind
	Remap  Remap // nil = identity
	Stride int64 // bytes between consecutive packed records
}

// Identity reports whether the scheme leaves the legacy address model
// untouched (build-order slots at the full NodeBytes stride).
func (s Scheme) Identity() bool {
	return s.Remap == nil && (s.Stride == 0 || s.Stride == NodeBytes)
}

// StrideBytes returns the scheme's record stride, defaulting the zero
// value to the legacy NodeBytes.
func (s Scheme) StrideBytes() int64 {
	if s.Stride == 0 {
		return NodeBytes
	}
	return s.Stride
}

// Offset returns the byte offset of node id's hot record within its arena.
func (s Scheme) Offset(id tree.NodeID) int64 {
	return int64(s.Remap.Slot(id)) * s.StrideBytes()
}

// Realize builds the Scheme of kind k over topology t. Schedule-order
// layouts depend on the traversal, not just the topology, and are built
// with Schemes instead.
func Realize(k Kind, t *tree.Topology) (Scheme, error) {
	s := Scheme{Kind: k, Stride: k.Stride()}
	switch k {
	case BuildOrder, HotCold:
		// identity permutation
	case Preorder:
		s.Remap = PreorderRemap(t)
	case VEB:
		s.Remap = VEBRemap(t)
	case Schedule:
		return Scheme{}, fmt.Errorf("layout: schedule-order layout needs a traversal; use Schemes")
	default:
		return Scheme{}, fmt.Errorf("layout: unknown kind %v", k)
	}
	return s, nil
}

// Schemes builds the outer and inner arena schemes of kind k for a nested
// recursion. For the schedule-order kind it records first-touch order by
// running spec under v (see ScheduleRemaps); every other kind depends only
// on the topologies.
func Schemes(k Kind, spec nest.Spec, v nest.Variant) (outer, inner Scheme, err error) {
	if k != Schedule {
		if outer, err = Realize(k, spec.Outer); err != nil {
			return Scheme{}, Scheme{}, err
		}
		inner, err = Realize(k, spec.Inner)
		return outer, inner, err
	}
	ro, ri, err := ScheduleRemaps(spec, v)
	if err != nil {
		return Scheme{}, Scheme{}, err
	}
	return Scheme{Kind: k, Remap: ro, Stride: k.Stride()},
		Scheme{Kind: k, Remap: ri, Stride: k.Stride()}, nil
}

// Apply physically repacks a topology arena: the returned Topology stores
// the node with old ID n at new ID r[n], with all links rewritten, so a
// traversal of the result visits the same tree with renamed IDs. The remap
// table is exactly the ID translation: newID = r[oldID]. Builders assign
// derived state (sizes, preorder numbering) from the rebuilt links, and the
// result is validated.
func Apply(t *tree.Topology, r Remap) (*tree.Topology, error) {
	if r == nil { // the identity remap: nothing to repack
		return t, nil
	}
	n := t.Len()
	if len(r) != n {
		return nil, fmt.Errorf("layout: remap has %d entries for %d nodes", len(r), n)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	b := tree.NewBuilder(n)
	for k := 0; k < n; k++ {
		b.Add()
	}
	for old := 0; old < n; old++ {
		id := tree.NodeID(old)
		if l := t.Left(id); l != tree.Nil {
			b.SetLeft(tree.NodeID(r[old]), tree.NodeID(r[l]))
		}
		if rt := t.Right(id); rt != tree.Nil {
			b.SetRight(tree.NodeID(r[old]), tree.NodeID(r[rt]))
		}
	}
	if n == 0 {
		return b.Build(tree.Nil)
	}
	return b.Build(tree.NodeID(r[t.Root()]))
}

// ApplyIndex physically repacks a spatial arena (kd-tree or vp-tree): the
// topology is repacked with Apply and the per-node payload slices (bounding
// boxes, point ranges) are permuted to match, so NodePoints(r[n]) of the
// result returns what NodePoints(n) returned. The point arrays themselves
// are shared, not copied: node repacking permutes node payloads only.
func ApplyIndex(ix *spatial.Index, r Remap) (*spatial.Index, error) {
	topo, err := Apply(ix.Topo, r)
	if err != nil {
		return nil, err
	}
	n := ix.Topo.Len()
	out := &spatial.Index{
		Topo:   topo,
		Points: ix.Points,
		Boxes:  make([]geom.Box, n),
		Start:  make([]int32, n),
		End:    make([]int32, n),
		Perm:   ix.Perm,
	}
	for old := 0; old < n; old++ {
		out.Boxes[r[old]] = ix.Boxes[old]
		out.Start[r[old]] = ix.Start[old]
		out.End[r[old]] = ix.End[old]
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
