package layout

import (
	"testing"

	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
	"twist/internal/tree"
)

// topologies returns a spread of tree shapes: balanced, perfect, degenerate
// chain, and random BSTs — the quick-check corpus for the remap passes.
func topologies(t *testing.T) map[string]*tree.Topology {
	t.Helper()
	out := map[string]*tree.Topology{
		"balanced-1":    tree.NewBalanced(1),
		"balanced-2":    tree.NewBalanced(2),
		"balanced-127":  tree.NewBalanced(127),
		"balanced-1000": tree.NewBalanced(1000),
		"perfect-6":     tree.NewPerfect(6),
		"chain-33":      tree.NewChain(33),
		"bst-257":       tree.NewRandomBST(257, 1),
		"bst-1023":      tree.NewRandomBST(1023, 7),
	}
	return out
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	aliases := map[string]Kind{
		"":              BuildOrder,
		"identity":      BuildOrder,
		"Build-Order":   BuildOrder,
		"hot-cold":      HotCold,
		"VEB":           VEB,
		"van-emde-boas": VEB,
		"first-touch":   Schedule,
		"Schedule":      Schedule,
	}
	for name, want := range aliases {
		if got, err := ParseKind(name); err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("zorder"); err == nil {
		t.Error("ParseKind(zorder) succeeded, want error")
	}
}

// TestRemapsArePermutations is the quick-check the ISSUE names: every remap
// pass must produce a permutation on every topology shape.
func TestRemapsArePermutations(t *testing.T) {
	for name, topo := range topologies(t) {
		for _, r := range []struct {
			pass  string
			remap Remap
		}{
			{"preorder", PreorderRemap(topo)},
			{"veb", VEBRemap(topo)},
		} {
			if len(r.remap) != topo.Len() {
				t.Fatalf("%s/%s: remap has %d entries for %d nodes", name, r.pass, len(r.remap), topo.Len())
			}
			if err := r.remap.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, r.pass, err)
			}
		}
	}
}

// TestPreorderIsIdentityOnBuilders pins the invariant the package doc
// states: the benchmark builders (balanced trees, chains, kd/vp arenas)
// assign IDs in preorder, so the preorder remap is the identity on their
// arenas. Random-insertion BSTs assign IDs in insertion order, so there the
// remap does real work — checked as a non-identity permutation above.
func TestPreorderIsIdentityOnBuilders(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 300, 9)
	for name, topo := range map[string]*tree.Topology{
		"balanced-1000": tree.NewBalanced(1000),
		"perfect-6":     tree.NewPerfect(6),
		"chain-33":      tree.NewChain(33),
		"kdtree-300":    kdtree.MustBuild(pts, 8).Topo,
	} {
		r := PreorderRemap(topo)
		for id, slot := range r {
			if int32(id) != slot {
				t.Fatalf("%s: preorder remap moves node %d to slot %d", name, id, slot)
			}
		}
	}
	bst := tree.NewRandomBST(257, 1)
	r := PreorderRemap(bst)
	identity := true
	for id, slot := range r {
		if int32(id) != slot {
			identity = false
		}
	}
	if identity {
		t.Error("preorder remap of a random BST is the identity; expected insertion order to differ")
	}
}

// TestVEBRootFirst checks the blocking property's anchor: the root is the
// first record of the packed arena, and the top half-height region occupies
// a contiguous prefix.
func TestVEBRootFirst(t *testing.T) {
	topo := tree.NewPerfect(6) // height 6, 127 nodes
	r := VEBRemap(topo)
	if r[topo.Root()] != 0 {
		t.Fatalf("veb root slot = %d, want 0", r[topo.Root()])
	}
	// Height 7 levels → top region = ceil(7/2) = 4 levels = 15 nodes: every
	// node of depth < 4 must sit in slots [0, 15).
	var depth func(n tree.NodeID) int
	depth = func(n tree.NodeID) int {
		if topo.Parent(n) == tree.Nil {
			return 0
		}
		return depth(topo.Parent(n)) + 1
	}
	for id := 0; id < topo.Len(); id++ {
		d := depth(tree.NodeID(id))
		in := r[id] < 15
		if (d < 4) != in {
			t.Errorf("node %d at depth %d packed at slot %d", id, d, r[id])
		}
	}
}

func TestScheduleRemapsFirstTouch(t *testing.T) {
	outer := tree.NewBalanced(63)
	inner := tree.NewBalanced(63)
	spec := nest.Spec{Outer: outer, Inner: inner, Work: func(o, i tree.NodeID) {}}
	for _, v := range []nest.Variant{nest.Original(), nest.Interchanged(), nest.Twisted()} {
		ro, ri, err := ScheduleRemaps(spec, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if err := ro.Validate(); err != nil {
			t.Fatalf("%v outer: %v", v, err)
		}
		if err := ri.Validate(); err != nil {
			t.Fatalf("%v inner: %v", v, err)
		}
		// Every schedule starts at (root, root).
		if ro[outer.Root()] != 0 || ri[inner.Root()] != 0 {
			t.Errorf("%v: roots at slots %d/%d, want 0/0", v, ro[outer.Root()], ri[inner.Root()])
		}
	}
	// Under the original schedule the inner tree is swept in preorder, so
	// first-touch order is exactly preorder — the identity on our arenas.
	_, ri, err := ScheduleRemaps(spec, nest.Original())
	if err != nil {
		t.Fatal(err)
	}
	for id, slot := range ri {
		if int32(id) != slot {
			t.Fatalf("original-schedule inner remap moves node %d to %d", id, slot)
		}
	}
}

func TestSchemeOffsets(t *testing.T) {
	topo := tree.NewBalanced(100)
	bo, err := Realize(BuildOrder, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !bo.Identity() {
		t.Error("buildorder scheme is not the identity")
	}
	if got := bo.Offset(3); got != 3*NodeBytes {
		t.Errorf("buildorder offset(3) = %d, want %d", got, 3*NodeBytes)
	}
	hc, err := Realize(HotCold, topo)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Identity() {
		t.Error("hotcold scheme claims to be the identity")
	}
	if got := hc.Offset(3); got != 3*HotBytes {
		t.Errorf("hotcold offset(3) = %d, want %d", got, 3*HotBytes)
	}
	if _, err := Realize(Schedule, topo); err == nil {
		t.Error("Realize(Schedule) succeeded, want error directing to Schemes")
	}
}

// TestApplyIsomorphism checks the physical repacking pass: the rebuilt
// arena is the same tree under the ID translation newID = r[oldID].
func TestApplyIsomorphism(t *testing.T) {
	for name, topo := range topologies(t) {
		r := VEBRemap(topo)
		packed, err := Apply(topo, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if packed.Len() != topo.Len() {
			t.Fatalf("%s: repacked %d of %d nodes", name, packed.Len(), topo.Len())
		}
		if topo.Len() == 0 {
			continue
		}
		if packed.Root() != tree.NodeID(r[topo.Root()]) {
			t.Fatalf("%s: root %d, want %d", name, packed.Root(), r[topo.Root()])
		}
		for id := 0; id < topo.Len(); id++ {
			old := tree.NodeID(id)
			nw := tree.NodeID(r[id])
			if topo.Size(old) != packed.Size(nw) {
				t.Fatalf("%s: node %d size %d != repacked %d", name, id, topo.Size(old), packed.Size(nw))
			}
			for _, side := range []struct {
				oldC, newC tree.NodeID
			}{
				{topo.Left(old), packed.Left(nw)},
				{topo.Right(old), packed.Right(nw)},
			} {
				want := tree.Nil
				if side.oldC != tree.Nil {
					want = tree.NodeID(r[side.oldC])
				}
				if side.newC != want {
					t.Fatalf("%s: node %d child %d, want %d", name, id, side.newC, want)
				}
			}
		}
	}
}

func TestApplyRejectsBadRemap(t *testing.T) {
	topo := tree.NewBalanced(8)
	if _, err := Apply(topo, make(Remap, 4)); err == nil {
		t.Error("short remap accepted")
	}
	bad := PreorderRemap(topo)
	bad[0] = bad[1] // duplicate slot
	if _, err := Apply(topo, bad); err == nil {
		t.Error("non-permutation accepted")
	}
}

// TestApplyIndex repacks a kd-tree arena and checks that node payloads
// follow their nodes: NodePoints(r[n]) of the repacked index returns what
// NodePoints(n) returned, and the index still validates.
func TestApplyIndex(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 500, 42)
	ix := kdtree.MustBuild(pts, 8)
	r := VEBRemap(ix.Topo)
	packed, err := ApplyIndex(ix, r)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ix.Topo.Len(); id++ {
		old := ix.NodePoints(tree.NodeID(id))
		nw := packed.NodePoints(tree.NodeID(r[id]))
		if len(old) != len(nw) {
			t.Fatalf("node %d: %d points, repacked %d", id, len(old), len(nw))
		}
		for k := range old {
			if old[k] != nw[k] {
				t.Fatalf("node %d point %d moved", id, k)
			}
		}
	}
}

func TestRemapInverse(t *testing.T) {
	topo := tree.NewRandomBST(301, 3)
	r := VEBRemap(topo)
	inv := r.Inverse()
	for id, slot := range r {
		if inv[slot] != int32(id) {
			t.Fatalf("inverse broken at node %d", id)
		}
	}
}
