package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"twist/internal/transform"
)

// diffLoopsSrc is a plain loop nest for the loops front-end axis: the serve
// layer must convert it through internal/loopfront before schedule
// generation, and the equivalent direct library call must agree byte for
// byte.
const diffLoopsSrc = `package p

var visit func(o, i int)

//twist:loops name=kernel leafrun=4
func kernelLoops(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}
}
`

// TestFrontendDigestCanonicalization verifies the frontend field's digest
// contract: "", "template", and case variants all canonicalize to "" — so
// requests predating the front-end axis keep their content digests — while
// "loops" canonicalizes to its one name and digests distinctly.
func TestFrontendDigestCanonicalization(t *testing.T) {
	t.Parallel()
	digest := func(frontend string) string {
		s := &TransformSpec{Source: diffTemplateSrc, Frontend: frontend}
		if err := s.Normalize(); err != nil {
			t.Fatalf("normalize frontend %q: %v", frontend, err)
		}
		return Digest(s)
	}
	base := digest("")
	for _, spelling := range []string{"template", "Template", "TEMPLATE"} {
		if d := digest(spelling); d != base {
			t.Errorf("frontend %q digests %s, want the frontend-free digest %s", spelling, d, base)
		}
	}
	loops := &TransformSpec{Source: diffLoopsSrc, Frontend: "Loops"}
	if err := loops.Normalize(); err != nil {
		t.Fatalf("normalize loops frontend: %v", err)
	}
	if loops.Frontend != "loops" {
		t.Errorf("loops frontend canonicalized to %q, want \"loops\"", loops.Frontend)
	}
	if d := Digest(loops); d == base {
		t.Error("loops transform digests identically to the frontend-free request")
	}

	bad := &TransformSpec{Source: diffTemplateSrc, Frontend: "recursion"}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "frontend") {
		t.Errorf("unknown frontend normalized without a frontend error: %v", err)
	}
	nest := &TransformSpec{Source: diffTemplateSrc, Nest: "kernel"}
	if err := nest.Normalize(); err == nil || !strings.Contains(err.Error(), "loops") {
		t.Errorf("nest selection without the loops frontend normalized: %v", err)
	}
}

// TestDifferentialTransformLoops is the serving-contract check for the loops
// front-end: the served result is exactly the direct library call's JSON,
// the intermediate template round-trips transform.ParseFile, and a repeated
// request is a cache hit on the same digest.
func TestDifferentialTransformLoops(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	spec := TransformSpec{Source: diffLoopsSrc, Frontend: "loops"}
	direct := spec
	want, err := TransformJob(context.Background(), &direct)
	if err != nil {
		t.Fatalf("direct TransformJob: %v", err)
	}
	if want.Frontend != "loops" || want.Nest != "kernel" {
		t.Fatalf("result frontend/nest = %q/%q, want loops/kernel", want.Frontend, want.Nest)
	}
	if want.Template == "" {
		t.Fatal("loops result carries no intermediate template")
	}
	tmpl, err := transform.ParseFile("template.go", []byte(want.Template))
	if err != nil {
		t.Fatalf("intermediate template does not round-trip transform.ParseFile: %v", err)
	}
	if tmpl.Irregular() != want.Irregular {
		t.Fatalf("result irregularity %v disagrees with the template's %v", want.Irregular, tmpl.Irregular())
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	status, body := postJob(t, ts.URL, KindTransform, spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	env := decodeEnvelope(t, body)
	if !bytes.Equal(env.Result, wantJSON) {
		t.Errorf("served result differs\nserved: %s\ndirect: %s", env.Result, wantJSON)
	}
	if env.Cached {
		t.Error("first loops request reported cached")
	}

	status, body = postJob(t, ts.URL, KindTransform, spec)
	if status != http.StatusOK {
		t.Fatalf("repeat status %d: %s", status, body)
	}
	env2 := decodeEnvelope(t, body)
	if !env2.Cached || env2.Digest != env.Digest {
		t.Errorf("repeated loops request missed the cache (cached=%v, digest %s vs %s)",
			env2.Cached, env2.Digest, env.Digest)
	}
}

// TestTransformLoopsRejects routes front-end diagnostics through the serve
// error path: an unsupported nest must fail the job with the positional
// loopfront message, not crash or emit code.
func TestTransformLoopsRejects(t *testing.T) {
	t.Parallel()
	src := strings.Replace(diffLoopsSrc, "for i := 0; i < m; i++ {", "println(o)\n\t\tfor i := 0; i < m; i++ {", 1)
	spec := TransformSpec{Source: src, Frontend: "loops"}
	_, err := TransformJob(context.Background(), &spec)
	if err == nil || !strings.Contains(err.Error(), "loopfront: input.go:") {
		t.Fatalf("imperfect nest error = %v, want a positional loopfront diagnostic", err)
	}
	// The same source through the default front-end fails differently: it
	// is not a recursion template at all.
	tmplSpec := TransformSpec{Source: diffLoopsSrc}
	if _, err := TransformJob(context.Background(), &tmplSpec); err == nil {
		t.Fatal("loop source accepted by the template front-end")
	}
}
