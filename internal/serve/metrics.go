package serve

import (
	"sort"
	"sync"
	"time"
)

// latWindow is how many recent job latencies the quantile window keeps.
const latWindow = 1024

// latencies is a sliding window of recent job durations, from which the
// /metrics endpoint derives p50/p99. Quantiles are inherently noisy signals
// (obs.Row.Noisy), so a bounded window — O(1) memory for an arbitrarily
// long-lived daemon — is the right fidelity.
type latencies struct {
	mu      sync.Mutex
	samples [latWindow]time.Duration
	n       int // valid samples (saturates at latWindow)
	idx     int // next write position
}

// observe records one job duration.
func (l *latencies) observe(d time.Duration) {
	l.mu.Lock()
	l.samples[l.idx] = d
	l.idx = (l.idx + 1) % latWindow
	if l.n < latWindow {
		l.n++
	}
	l.mu.Unlock()
}

// quantiles evaluates the given quantiles (0..1) over the window, by
// nearest-rank on a sorted copy. With no samples every quantile is 0.
func (l *latencies) quantiles(qs ...float64) []time.Duration {
	l.mu.Lock()
	buf := make([]time.Duration, l.n)
	copy(buf, l.samples[:l.n])
	l.mu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(buf) == 0 {
		return out
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	for k, q := range qs {
		rank := int(q*float64(len(buf))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(buf) {
			rank = len(buf) - 1
		}
		out[k] = buf[rank]
	}
	return out
}
