package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twist/internal/obs"
)

// TestLoadBackpressure is the ISSUE acceptance load test: 64 concurrent
// distinct requests against queue 16 / pool 4. Every admitted job must
// complete as a success (zero dropped), every rejection must be a 429 with
// Retry-After, and the success count must equal the number of jobs the pool
// could admit (between 16 and 20: the queue plus up to one in-flight job
// per worker).
func TestLoadBackpressure(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	stub.gate = make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 4, Queue: 16, Executor: stub})

	const n = 64
	type outcome struct {
		status     int
		body       []byte
		retryAfter string
		err        error
	}
	outcomes := make([]outcome, n)
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			body, err := json.Marshal(RunSpec{Workload: "TJ", Scale: 64, Seed: int64(k)})
			if err != nil {
				outcomes[k].err = err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				outcomes[k].err = err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			outcomes[k] = outcome{status: resp.StatusCode, body: buf.Bytes(), retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusTooManyRequests {
				rejected.Add(1)
			}
		}(k)
	}
	// Every request ends up either rejected (429 already returned) or
	// admitted (its flight is registered and blocked on the gate). Once the
	// two buckets cover all 64, release the gate.
	waitFor(t, "all requests rejected or admitted", func() bool {
		return rejected.Load()+int64(s.group.InFlight()) == n
	})
	admitted := s.group.InFlight()
	close(stub.gate)
	wg.Wait()

	var ok, tooMany int
	for k, o := range outcomes {
		if o.err != nil {
			t.Fatalf("request %d: %v", k, o.err)
		}
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			tooMany++
			if o.retryAfter == "" {
				t.Errorf("request %d: 429 without Retry-After", k)
			}
		default:
			t.Errorf("request %d: unexpected status %d: %s", k, o.status, o.body)
		}
	}
	if ok+tooMany != n {
		t.Errorf("ok %d + 429 %d != %d", ok, tooMany, n)
	}
	if ok != admitted {
		t.Errorf("successes %d != admitted jobs %d (a dropped admitted job)", ok, admitted)
	}
	if ok < 16 || ok > 20 {
		t.Errorf("successes %d outside the admissible window [16, 20] for queue 16 / pool 4", ok)
	}
	if got := stub.total(); got != ok {
		t.Errorf("engine executions %d != successes %d", got, ok)
	}
	if got := s.mem.Counter("serve.rejected"); got != int64(tooMany) {
		t.Errorf("serve.rejected = %d, want %d", got, tooMany)
	}
}

// TestGracefulDrain verifies shutdown semantics: admitted jobs finish,
// /readyz flips to 503, new work is refused with 503, and Drain returns
// only after the last job completes.
func TestGracefulDrain(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	stub.gate = make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 2, Queue: 8, Executor: stub})

	const n = 6
	statuses := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			statuses[k], _, errs[k] = postJobE(ts.URL, KindRun, RunSpec{Workload: "MM", Scale: 64, Seed: int64(k)})
		}(k)
	}
	waitFor(t, "all jobs admitted", func() bool { return s.group.InFlight() == n })

	s.BeginDrain()
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz while draining: %d, want 503", resp.StatusCode)
		}
	}
	if status, body := postJob(t, ts.URL, KindRun, RunSpec{Workload: "MM", Scale: 64, Seed: 999}); status != http.StatusServiceUnavailable {
		t.Errorf("job while draining: status %d: %s", status, body)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with jobs still blocked", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(stub.gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			t.Fatalf("request %d: %v", k, errs[k])
		}
		if statuses[k] != http.StatusOK {
			t.Errorf("request %d: status %d, want 200 (admitted jobs must drain as successes)", k, statuses[k])
		}
	}
}

// TestJobTimeout verifies the per-job deadline propagates into the
// execution and surfaces as 504.
func TestJobTimeout(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	stub.gate = make(chan struct{}) // never released: only the deadline fires
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4, JobTimeout: 30 * time.Millisecond, Executor: stub})
	status, body := postJob(t, ts.URL, KindRun, RunSpec{Workload: "TJ", Scale: 64})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s, want 504", status, body)
	}
}

// TestExecutionError verifies engine rejections surface as 422.
func TestExecutionError(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	stub.fail = fmt.Errorf("boom: template rejected")
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4, Executor: stub})
	status, body := postJob(t, ts.URL, KindRun, RunSpec{Workload: "TJ", Scale: 64})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s, want 422", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "boom") {
		t.Errorf("error body %s", body)
	}
}

// TestValidation exercises the 400 surface: malformed JSON, unknown fields,
// unknown workloads, out-of-range parameters, bad variants.
func TestValidation(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 4, Executor: newStubExecutor()})
	post := func(kind Kind, raw string) int {
		resp, err := http.Post(ts.URL+"/v1/"+string(kind), "application/json", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name string
		kind Kind
		raw  string
	}{
		{"malformed json", KindRun, `{"workload":`},
		{"unknown field", KindRun, `{"workload":"TJ","bogus":1}`},
		{"unknown workload", KindRun, `{"workload":"ZZ"}`},
		{"bad variant", KindRun, `{"workload":"TJ","variant":"sideways"}`},
		{"scale too large", KindRun, `{"workload":"TJ","scale":1000000}`},
		{"too many workers", KindRun, `{"workload":"TJ","workers":1000}`},
		{"bad flag mode", KindRun, `{"workload":"TJ","flag_mode":"bitmap"}`},
		{"bad geometry", KindRun, `{"workload":"TJ","geometry":"huge"}`},
		{"bad capacity", KindMissCurve, `{"workload":"TJ","capacities":[0]}`},
		{"bad line bytes", KindMissCurve, `{"workload":"TJ","line_bytes":48}`},
		{"empty source", KindTransform, `{"source":""}`},
		{"original transform", KindTransform, `{"source":"package p","variants":["original"]}`},
		{"oracle scale", KindOracle, `{"workload":"TJ","scale":100000}`},
		{"oracle stealing w/o workers", KindOracle, `{"workload":"TJ","stealing":true}`},
	}
	for _, c := range cases {
		if got := post(c.kind, c.raw); got != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, got)
		}
	}
}

// TestHealthAndMetrics exercises /healthz and the /metrics report shape:
// the obs.Report experiment name, Det job counters, Noisy quantiles, and
// Telemetry mirroring the recorder — the contract that lets obs.Compare
// consume a scraped report like any bench baseline.
func TestHealthAndMetrics(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	extern := obs.NewMemory()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 8, Executor: stub, Recorder: extern})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %d", resp.StatusCode)
	}

	// One miss, one hit, then scrape.
	spec := RunSpec{Workload: "VP", Scale: 64, Seed: 5}
	for k := 0; k < 2; k++ {
		if status, body := postJob(t, ts.URL, KindRun, spec); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "twistd" {
		t.Errorf("experiment %q, want twistd", rep.Experiment)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Name != "serve" {
		t.Fatalf("rows %+v", rep.Rows)
	}
	row := rep.Rows[0]
	if row.Det["serve.jobs.run.ok"] != "1" {
		t.Errorf("serve.jobs.run.ok = %q, want 1", row.Det["serve.jobs.run.ok"])
	}
	if row.Det["serve.jobs.total"] != "1" {
		t.Errorf("serve.jobs.total = %q, want 1", row.Det["serve.jobs.total"])
	}
	if row.Det["serve.cache.hit"] != "1" || row.Det["serve.cache.miss"] != "1" {
		t.Errorf("cache counters hit=%q miss=%q, want 1/1", row.Det["serve.cache.hit"], row.Det["serve.cache.miss"])
	}
	if got := row.Noisy["serve.cache.hit_ratio"]; got != 0.5 {
		t.Errorf("hit ratio %v, want 0.5", got)
	}
	if _, ok := row.Noisy["serve.job.p50"]; !ok {
		t.Error("missing serve.job.p50")
	}
	if _, ok := row.Noisy["serve.job.p99"]; !ok {
		t.Error("missing serve.job.p99")
	}
	if rep.Telemetry["serve.jobs.run.ok"] != 1 {
		t.Errorf("telemetry %+v", rep.Telemetry)
	}
	// The external recorder saw the same serve-layer signals (the Tee).
	if extern.Counter("serve.jobs.run.ok") != 1 {
		t.Errorf("external recorder missed serve.jobs.run.ok: %v", extern.Counters())
	}
	if extern.Counter("serve.cache.hit") != 1 {
		t.Errorf("external recorder missed serve.cache.hit: %v", extern.Counters())
	}
}

// TestLatencyQuantiles pins the nearest-rank window math.
func TestLatencyQuantiles(t *testing.T) {
	t.Parallel()
	var l latencies
	q := l.quantiles(0.5, 0.99)
	if q[0] != 0 || q[1] != 0 {
		t.Errorf("empty window quantiles %v", q)
	}
	for k := 1; k <= 100; k++ {
		l.observe(time.Duration(k) * time.Millisecond)
	}
	q = l.quantiles(0.5, 0.99)
	if q[0] != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", q[0])
	}
	if q[1] != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", q[1])
	}
	// Overflow the window: only the most recent latWindow samples remain.
	for k := 0; k < latWindow+50; k++ {
		l.observe(time.Second)
	}
	q = l.quantiles(0.5)
	if q[0] != time.Second {
		t.Errorf("post-overflow p50 = %v, want 1s", q[0])
	}
}

// TestDigestCanonicalization verifies spec aliases digest identically:
// default-filled vs explicit fields, case-insensitive workloads, variant
// synonyms — the content-address half of the coalescing contract.
func TestDigestCanonicalization(t *testing.T) {
	t.Parallel()
	norm := func(s Spec) string {
		t.Helper()
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		return Digest(s)
	}
	a := norm(&RunSpec{Workload: "tj"})
	b := norm(&RunSpec{Workload: "TJ", Variant: "twisted", Scale: 1024, Workers: 1,
		FlagMode: "counter", SimWorkers: 1, Geometry: DefaultGeometry})
	if a != b {
		t.Error("default-filled and explicit specs digest differently")
	}
	c := norm(&RunSpec{Workload: "TJ", Variant: "interchange"})
	d := norm(&RunSpec{Workload: "TJ", Variant: "interchanged"})
	if c != d {
		t.Error("variant synonyms digest differently")
	}
	if a == c {
		t.Error("different variants digest identically")
	}
	e := norm(&RunSpec{Workload: "TJ", Geometry: "2k/64:8,16k/64:8,128k/64:16"})
	if e != a {
		t.Error("geometry case aliases digest differently")
	}
	if norm(&MissCurveSpec{Workload: "TJ"}) == a {
		t.Error("kinds share a digest")
	}
}
