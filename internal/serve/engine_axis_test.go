package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
)

// TestEngineDigestCanonicalization verifies the engine field's digest
// discipline, mirroring the layout axis: the default recursive engine
// (however spelled) elides to the empty string — so engine-free requests
// keep their pre-engine content digests — while "iterative" canonicalizes
// to its one name and digests distinctly.
func TestEngineDigestCanonicalization(t *testing.T) {
	t.Parallel()
	norm := func(s Spec) string {
		t.Helper()
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		return Digest(s)
	}
	base := norm(&RunSpec{Workload: "TJ"})
	for _, spelling := range []string{"recursive", "RECURSIVE"} {
		s := &RunSpec{Workload: "TJ", Engine: spelling}
		if d := norm(s); d != base {
			t.Errorf("engine %q digests %s, want the engine-free digest %s", spelling, d, base)
		}
		if s.Engine != "" {
			t.Errorf("engine %q canonicalized to %q, want \"\"", spelling, s.Engine)
		}
	}
	iter := &RunSpec{Workload: "TJ", Engine: "ITERATIVE"}
	if d := norm(iter); d == base {
		t.Error("iterative run digests identically to the engine-free request")
	}
	if iter.Engine != "iterative" {
		t.Errorf("engine canonicalized to %q, want \"iterative\"", iter.Engine)
	}
	mc := &MissCurveSpec{Workload: "TJ", Engine: "Recursive"}
	if err := mc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if mc.Engine != "" {
		t.Errorf("misscurve engine canonicalized to %q, want \"\"", mc.Engine)
	}
	oc := &OracleSpec{Workload: "TJ", Engine: "iterative"}
	if err := oc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if oc.Engine != "iterative" {
		t.Errorf("oracle engine canonicalized to %q, want \"iterative\"", oc.Engine)
	}
	bad := &RunSpec{Workload: "TJ", Engine: "flat"}
	if err := bad.Normalize(); err == nil {
		t.Error("Normalize accepted unknown engine \"flat\"")
	}
}

// TestDifferentialRunEngine extends the bit-identical-response contract to
// the engine axis: an iterative run job serves exactly the direct library
// call, reproduces every semantic column of its recursive twin — checksum,
// stats, ops, tasks, simulated miss rates — and spends strictly fewer
// engine ops on the twisted schedule (the counter the lowering exists to
// shrink).
func TestDifferentialRunEngine(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	for _, workers := range []int{1, 4} {
		baseSpec := RunSpec{Workload: "PC", Variant: "twisted", Scale: diffScale, Seed: diffSeed, Workers: workers}
		base, err := RunJob(context.Background(), &baseSpec)
		if err != nil {
			t.Fatal(err)
		}
		spec := RunSpec{
			Workload: "PC", Variant: "twisted",
			Scale: diffScale, Seed: diffSeed, Workers: workers, Engine: "iterative",
		}
		direct := spec
		want, err := RunJob(context.Background(), &direct)
		if err != nil {
			t.Fatalf("direct RunJob: %v", err)
		}
		if want.Engine != "iterative" {
			t.Errorf("result echoes engine %q, want \"iterative\"", want.Engine)
		}
		if want.Checksum != base.Checksum || want.Stats != base.Stats ||
			want.Ops != base.Ops || want.Tasks != base.Tasks {
			t.Errorf("workers=%d: iterative engine changed a semantic column:\n iter %+v\n rec  %+v",
				workers, want, base)
		}
		for li := range want.MissRates {
			if want.MissRates[li] != base.MissRates[li] {
				t.Errorf("workers=%d: iterative engine moved simulated level %s", workers, want.MissRates[li].Level)
			}
		}
		if want.EngineOps >= base.EngineOps {
			t.Errorf("workers=%d: iterative engine ops %d not below recursive %d",
				workers, want.EngineOps, base.EngineOps)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		status, body := postJob(t, ts.URL, KindRun, spec)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		env := decodeEnvelope(t, body)
		if !bytes.Equal(env.Result, wantJSON) {
			t.Errorf("served result differs from direct library call\nserved: %s\ndirect: %s", env.Result, wantJSON)
		}
		if env.Digest != Digest(&direct) {
			t.Errorf("digest %s, want %s", env.Digest, Digest(&direct))
		}
	}
}

// TestEngineCacheCoalescing verifies engine spellings share cache entries
// exactly when they canonicalize identically: an explicit "recursive"
// request is a cache hit on the engine-free twin, while "iterative" is its
// own entry (fresh on first post, hit on repeat).
func TestEngineCacheCoalescing(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	post := func(spec RunSpec) envelope {
		t.Helper()
		status, body := postJob(t, ts.URL, KindRun, spec)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		return decodeEnvelope(t, body)
	}
	spec := RunSpec{Workload: "TJ", Variant: "twisted", Scale: diffScale, Seed: diffSeed}
	first := post(spec)
	if first.Cached {
		t.Fatal("first engine-free request was already cached")
	}
	spec.Engine = "recursive"
	if second := post(spec); !second.Cached || second.Digest != first.Digest {
		t.Errorf("explicit recursive request missed the engine-free cache entry (cached=%v, digest %s vs %s)",
			second.Cached, second.Digest, first.Digest)
	}
	spec.Engine = "iterative"
	iter := post(spec)
	if iter.Cached || iter.Digest == first.Digest {
		t.Errorf("iterative request must be its own cache entry (cached=%v)", iter.Cached)
	}
	if again := post(spec); !again.Cached {
		t.Error("repeated iterative request was not a cache hit")
	}
}

// TestOracleEngineJobs runs the oracle job against the iterative engine,
// sequentially and under the parallel executor: the lowering must be
// invisible to the permutation-equivalence check, and the verdict label
// must name the engine under test.
func TestOracleEngineJobs(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 3} {
		spec := OracleSpec{
			Workload: "PC", Variant: "twisted", Scale: 512, Seed: diffSeed,
			Engine: "iterative", Workers: workers, Stealing: workers > 0,
		}
		res, err := OracleJob(context.Background(), &spec)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("workers=%d: iterative engine fails the oracle: %s", workers, res.Detail)
		}
		if res.Engine != "iterative" {
			t.Errorf("workers=%d: result echoes engine %q, want \"iterative\"", workers, res.Engine)
		}
		if !bytes.Contains([]byte(res.Detail), []byte("engine=iterative")) {
			t.Errorf("workers=%d: verdict label %q does not name the engine", workers, res.Detail)
		}
	}
}
