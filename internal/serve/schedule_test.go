package serve

import (
	"strings"
	"testing"
)

// TestScheduleDigestIdentity verifies the schedule field is pure surface
// syntax: a spec carrying a schedule expression canonicalizes into the same
// Variant — and hence the same content digest, cache entry, and coalescing
// bucket — as the equivalent enum-bearing spec, for every engine job kind
// and for the transform kind's Schedules list.
func TestScheduleDigestIdentity(t *testing.T) {
	t.Parallel()
	norm := func(s Spec) string {
		t.Helper()
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		return Digest(s)
	}
	pairs := []struct {
		name           string
		schedule, enum Spec
	}{
		{"run twist(flagged)",
			&RunSpec{Workload: "TJ", Schedule: "twist(flagged)"},
			&RunSpec{Workload: "TJ", Variant: "twisted"}},
		{"run stripmine",
			&RunSpec{Workload: "PC", Schedule: "stripmine(64)∘twist(flagged)"},
			&RunSpec{Workload: "PC", Variant: "twisted-cutoff:64"}},
		{"run identity",
			&RunSpec{Workload: "TJ", Schedule: "interchange∘interchange"},
			&RunSpec{Workload: "TJ", Variant: "original"}},
		{"misscurve",
			&MissCurveSpec{Workload: "MM", Schedule: "interchange"},
			&MissCurveSpec{Workload: "MM", Variant: "interchanged"}},
		{"oracle",
			&OracleSpec{Workload: "KNN", Schedule: "twist(flagged)"},
			&OracleSpec{Workload: "KNN", Variant: "twisted"}},
		{"transform schedules list",
			&TransformSpec{Source: diffTemplateSrc, Schedules: []string{"twist(flagged)", "stripmine(0)∘twist(flagged)"}},
			&TransformSpec{Source: diffTemplateSrc, Variants: []string{"twisted", "twisted-cutoff"}}},
	}
	for _, p := range pairs {
		if a, b := norm(p.schedule), norm(p.enum); a != b {
			t.Errorf("%s: schedule spec digests %s, enum spec %s", p.name, a, b)
		}
	}
}

// TestScheduleNormalizeRejections covers the legality and mutual-exclusion
// checks the schedule field adds at Normalize time: illegal compositions are
// rejected with the violated dependence witness quoted, inline schedules
// cannot reach engine jobs, and schedule/variant are mutually exclusive.
func TestScheduleNormalizeRejections(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		spec Spec
		want []string
	}{
		{"unflagged twist on irregular workload",
			&RunSpec{Workload: "PC", Schedule: "twist"},
			[]string{"outer-dependent-truncation witness", "truncation-flag protocol"}},
		{"interchange alone is fine on PC, stripmine over bare twist is not",
			&OracleSpec{Workload: "VP", Schedule: "stripmine(8)∘twist"},
			[]string{"outer-dependent-truncation witness"}},
		{"inline in an engine job",
			&RunSpec{Workload: "TJ", Schedule: "inline(2)∘twist(flagged)"},
			[]string{"code-generation transformation", "engine jobs cannot execute"}},
		{"schedule and variant both set",
			&RunSpec{Workload: "TJ", Schedule: "twist(flagged)", Variant: "twisted"},
			[]string{"set schedule or variant, not both"}},
		{"malformed expression",
			&MissCurveSpec{Workload: "TJ", Schedule: "twist(flagged"},
			[]string{"algebra:"}},
		{"structural error",
			&RunSpec{Workload: "TJ", Schedule: "stripmine(4)"},
			[]string{"stripmine", "twist"}},
		{"transform identity schedule",
			&TransformSpec{Source: diffTemplateSrc, Schedules: []string{"identity"}},
			[]string{"transform cannot emit the identity schedule"}},
		{"legality-checked variant field too",
			&RunSpec{Workload: "NN", Variant: "twist"},
			[]string{"outer-dependent-truncation witness"}},
	}
	for _, c := range cases {
		err := c.spec.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize accepted the spec", c.name)
			continue
		}
		for _, want := range c.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", c.name, err, want)
			}
		}
	}
}
