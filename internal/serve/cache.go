package serve

import (
	"container/list"
	"context"
	"sync"
)

// resultCache is the content-addressed LRU over finished job results. Keys
// are spec digests (Digest), values are the exact marshaled result bytes —
// caching bytes rather than structs is what makes a cache hit trivially
// bit-identical to the original execution.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	digest string
	body   []byte
}

// newResultCache builds a cache holding up to capacity results; capacity
// <= 0 disables caching (every Get misses, Put drops).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result bytes for a digest, promoting the entry.
func (c *resultCache) Get(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[digest]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores a result, evicting from the LRU tail past capacity. Callers
// must not mutate body afterwards (the serve layer never does: result bytes
// are write-once).
func (c *resultCache) Put(digest string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		// A coalesced flight already published this digest; keep the first
		// body (identical by the determinism contract) and just promote.
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.entries[digest] = c.order.PushFront(&cacheEntry{digest: digest, body: body})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).digest)
		c.evictions++
	}
}

// Contains reports whether a digest is resident, without promoting the
// entry or touching the hit/miss counters — the fleet router's peek: a
// resident digest is served locally (the replica-cache read path) instead
// of being forwarded.
func (c *resultCache) Contains(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[digest]
	return ok
}

// Len reports the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns (hits, misses, evictions) since construction.
func (c *resultCache) Counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// flight is one in-progress execution of a digest. Followers arriving while
// it runs share its outcome instead of re-executing — the coalescing half of
// the content-addressed contract. done is closed exactly once, after body/err
// are final.
type flight struct {
	digest  string
	done    chan struct{}
	body    []byte
	err     error
	cancel  context.CancelFunc
	g       *flightGroup
	waiters int // guarded by g.mu; last leave cancels the job context
}

// flightGroup indexes in-progress executions by digest (the
// singleflight pattern, specialized: followers can abandon a flight without
// killing it for others, and the job context dies only when the last
// interested request leaves).
type flightGroup struct {
	mu        sync.Mutex
	flights   map[string]*flight
	coalesced int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// finish publishes the outcome and wakes every waiter. The flight is
// removed from the group first, so a request arriving after finish starts a
// fresh flight (it will hit the cache instead when the outcome was a
// success).
func (g *flightGroup) finish(f *flight, body []byte, err error) {
	g.mu.Lock()
	delete(g.flights, f.digest)
	g.mu.Unlock()
	f.body, f.err = body, err
	close(f.done)
}

// leave drops one waiter. When the last waiter leaves, the flight's job
// context is canceled: either the job already finished (cancel is then a
// no-op release of the timeout timer) or every interested request gave up
// and the execution should stop burning the pool.
func (f *flight) leave() {
	f.g.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.g.mu.Unlock()
	if last {
		f.cancel()
	}
}

// Coalesced reports how many requests joined an existing flight.
func (g *flightGroup) Coalesced() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}

// InFlight reports the number of digests currently executing.
func (g *flightGroup) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
