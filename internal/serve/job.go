// Package serve is the production serving layer over the engine: a
// long-running HTTP/JSON daemon (cmd/twistd) that exposes the repository's
// four capabilities as job kinds —
//
//	run       — workload × variant × scale × seed → engine statistics,
//	            result checksum, and simulated per-level miss rates
//	misscurve — reuse-distance histogram of a traced run → predicted
//	            miss-ratio curve across cache capacities (Mattson one-pass)
//	transform — an annotated Go nested-recursion template → the generated
//	            schedule variants (paper §5, internal/transform)
//	oracle    — workload spec + schedule under test → permutation-equivalence
//	            verdict with a minimized counterexample (DESIGN.md §4.9)
//
// The layer is deliberately production-shaped rather than a thin mux: every
// job is content-addressed by a canonical spec digest and served from an LRU
// result cache; identical concurrent requests coalesce onto one in-flight
// execution; admission goes through a bounded queue feeding a fixed worker
// pool (full queue → HTTP 429 + Retry-After); per-job deadlines and request
// cancellation propagate into the executor (nest.RunConfig.Ctx /
// Exec.RunContext) and the memsim stream; shutdown drains admitted jobs; and
// /healthz, /readyz, and /metrics expose liveness, drain state, and the
// obs.Recorder-backed telemetry (DESIGN.md §4.10).
//
// The serving contract is bit-identical results: the "result" field of every
// response is exactly the JSON encoding of the equivalent direct library
// call (RunJob, MissCurveJob, TransformJob, OracleJob) — the cache, the
// coalescer, and the transport add nothing and remove nothing. A
// differential test enforces this across the full workload × variant ×
// executor grid.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"twist/internal/layout"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/transform/algebra"
	"twist/internal/workloads"
)

// Kind names one of the four job families the daemon serves.
type Kind string

// The four job kinds, each with its own endpoint under /v1/.
const (
	KindRun       Kind = "run"
	KindMissCurve Kind = "misscurve"
	KindTransform Kind = "transform"
	KindOracle    Kind = "oracle"
)

// Admission guardrails: a serving daemon must bound the work one request can
// demand. Scales above these limits belong in the offline harness
// (cmd/nestbench), not behind an HTTP deadline.
const (
	// MaxScale bounds the suite scale of run and misscurve jobs.
	MaxScale = 1 << 17
	// MaxOracleScale bounds oracle jobs, which materialize golden traces.
	MaxOracleScale = 1 << 13
	// MaxWorkers bounds the engine worker count a job may request.
	MaxWorkers = 64
	// MaxSimWorkers bounds the cache-simulation shard workers.
	MaxSimWorkers = 64
	// MaxSourceBytes bounds the template source of a transform job.
	MaxSourceBytes = 1 << 20
	// MaxCapacities bounds the capacity grid of a misscurve job.
	MaxCapacities = 64
	// MaxCapacityLines bounds each capacity of a misscurve job (in lines).
	MaxCapacityLines = 1 << 24
)

// DefaultGeometry is the simulated hierarchy run jobs use unless the spec
// names one: the same scaled-down default as internal/experiments (2K L1,
// 16K L2, 128K L3), which reaches the paper's beyond-LLC regime at
// service-friendly scales.
const DefaultGeometry = "2K/64:8,16K/64:8,128K/64:16"

// Spec is one job's parameter set. Implementations are the four *Spec
// types; the set is closed (normalize/exec are unexported), which is what
// lets the digest double as a complete content address.
type Spec interface {
	// Kind reports the job family.
	Kind() Kind
	// Normalize applies defaults in place and validates; after it returns
	// nil the spec is canonical, so equal jobs have equal digests.
	Normalize() error
	// exec runs the job against the engine, recording telemetry into rec.
	exec(ctx context.Context, rec obs.Recorder) (any, error)
}

// Digest returns the canonical content address of a normalized spec: the
// hex SHA-256 of the job kind and the spec's canonical JSON encoding.
// Normalize must have succeeded first; two requests coalesce (and share a
// cache entry) exactly when their digests are equal.
func Digest(s Spec) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Specs are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(s.Kind()))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// RunSpec parameterizes a run job: execute one suite workload under one
// schedule and report the engine statistics, the result checksum, and the
// simulated per-level miss rates.
type RunSpec struct {
	// Workload is the benchmark abbreviation (TJ, MM, PC, NN, KNN, VP).
	Workload string `json:"workload"`
	// Variant is the schedule in legacy nest.ParseVariant form (original,
	// interchanged, twisted, twisted-cutoff:N). Default twisted.
	Variant string `json:"variant,omitempty"`
	// Schedule is the schedule as an algebra expression
	// (algebra.ParseSchedule, e.g. "stripmine(64)∘twist(flagged)"). It is
	// legality-checked against the workload's dependence witnesses, then
	// canonicalized into Variant — a schedule-bearing request digests
	// identically to its variant-bearing equivalent. Mutually exclusive
	// with Variant.
	Schedule string `json:"schedule,omitempty"`
	// Scale is the suite scale parameter (workloads.ByName). Default 1024.
	Scale int `json:"scale,omitempty"`
	// Seed is the workload seed.
	Seed int64 `json:"seed,omitempty"`
	// Workers selects the executor: <= 1 runs the sequential engine, > 1
	// the work-stealing parallel executor at that worker count (merged
	// stats are deterministic either way).
	Workers int `json:"workers,omitempty"`
	// FlagMode is the truncation-flag representation (sets, counter).
	// Default counter.
	FlagMode string `json:"flag_mode,omitempty"`
	// Engine names the visit engine (nest.ParseEngine): recursive or the
	// iterative explicit-stack lowering (DESIGN.md §4.13). The default
	// recursive engine canonicalizes to "", so engine-free requests keep
	// their pre-engine digests; the engine cannot change the checksum,
	// stats, or miss rates of a job — only how fast it runs.
	Engine string `json:"engine,omitempty"`
	// SimWorkers sizes the cache simulation: <= 1 sequential, > 1
	// set-partitioned shards (stats bit-identical either way, §4.8).
	SimWorkers int `json:"sim_workers,omitempty"`
	// Geometry is the simulated hierarchy in memsim.ParseGeometry form.
	// Default DefaultGeometry.
	Geometry string `json:"geometry,omitempty"`
	// Layout names the arena layout (layout.ParseKind) the traced simulation
	// generates node addresses under: buildorder, hotcold, preorder,
	// schedule, veb (DESIGN.md §4.12). The default build-order layout
	// canonicalizes to "", so layout-free requests keep their pre-layout
	// digests. The layout cannot change the checksum, stats, or verdict of a
	// job — only the simulated miss rates.
	Layout string `json:"layout,omitempty"`
}

// Kind implements Spec.
func (s *RunSpec) Kind() Kind { return KindRun }

// Normalize implements Spec.
func (s *RunSpec) Normalize() error {
	if err := normalizeWorkload(&s.Workload); err != nil {
		return err
	}
	if err := normalizeSchedule(&s.Schedule, &s.Variant, s.Workload); err != nil {
		return err
	}
	if err := normalizeScale(&s.Scale, MaxScale); err != nil {
		return err
	}
	if s.Workers <= 1 {
		s.Workers = 1
	}
	if s.Workers > MaxWorkers {
		return fmt.Errorf("serve: workers %d exceeds the limit %d", s.Workers, MaxWorkers)
	}
	if err := normalizeFlagMode(&s.FlagMode); err != nil {
		return err
	}
	if err := normalizeEngine(&s.Engine); err != nil {
		return err
	}
	if s.SimWorkers <= 1 {
		s.SimWorkers = 1
	}
	if s.SimWorkers > MaxSimWorkers {
		return fmt.Errorf("serve: sim_workers %d exceeds the limit %d", s.SimWorkers, MaxSimWorkers)
	}
	if err := normalizeLayout(&s.Layout); err != nil {
		return err
	}
	return normalizeGeometry(&s.Geometry)
}

// MissCurveSpec parameterizes a misscurve job: trace one workload under one
// schedule, build its reuse-distance histogram over cache lines, and
// evaluate the predicted miss-ratio curve at each capacity.
type MissCurveSpec struct {
	// Workload is the benchmark abbreviation (TJ, MM, PC, NN, KNN, VP).
	Workload string `json:"workload"`
	// Variant is the schedule in legacy nest.ParseVariant form. Default
	// twisted.
	Variant string `json:"variant,omitempty"`
	// Schedule is the schedule as an algebra expression; see
	// RunSpec.Schedule. Mutually exclusive with Variant.
	Schedule string `json:"schedule,omitempty"`
	// Scale is the suite scale parameter. Default 1024.
	Scale int `json:"scale,omitempty"`
	// Seed is the workload seed.
	Seed int64 `json:"seed,omitempty"`
	// Capacities are the fully-associative LRU capacities (in lines) the
	// curve is evaluated at. Default 8,32,128,512,2048,8192,32768.
	Capacities []int `json:"capacities,omitempty"`
	// LineBytes is the line size distances are measured in; a power of two.
	// Default 64.
	LineBytes int `json:"line_bytes,omitempty"`
	// Layout names the arena layout node addresses are generated under; see
	// RunSpec.Layout. Default build-order (canonicalized to "").
	Layout string `json:"layout,omitempty"`
	// Engine names the visit engine the trace is produced on; see
	// RunSpec.Engine. The engines trace identical address sequences, so the
	// curve cannot depend on this axis. Default recursive (canonicalized to
	// "").
	Engine string `json:"engine,omitempty"`
}

// Kind implements Spec.
func (s *MissCurveSpec) Kind() Kind { return KindMissCurve }

// Normalize implements Spec.
func (s *MissCurveSpec) Normalize() error {
	if err := normalizeWorkload(&s.Workload); err != nil {
		return err
	}
	if err := normalizeSchedule(&s.Schedule, &s.Variant, s.Workload); err != nil {
		return err
	}
	if err := normalizeScale(&s.Scale, MaxScale); err != nil {
		return err
	}
	if len(s.Capacities) == 0 {
		s.Capacities = []int{8, 32, 128, 512, 2048, 8192, 32768}
	}
	if len(s.Capacities) > MaxCapacities {
		return fmt.Errorf("serve: %d capacities exceeds the limit %d", len(s.Capacities), MaxCapacities)
	}
	for _, c := range s.Capacities {
		if c <= 0 || c > MaxCapacityLines {
			return fmt.Errorf("serve: capacity %d lines out of range 1..%d", c, MaxCapacityLines)
		}
	}
	if s.LineBytes == 0 {
		s.LineBytes = 64
	}
	if s.LineBytes < 8 || s.LineBytes > 4096 || s.LineBytes&(s.LineBytes-1) != 0 {
		return fmt.Errorf("serve: line_bytes %d must be a power of two in 8..4096", s.LineBytes)
	}
	if err := normalizeEngine(&s.Engine); err != nil {
		return err
	}
	return normalizeLayout(&s.Layout)
}

// TransformSpec parameterizes a transform job: run the §5 source-to-source
// tool on an annotated template and return the generated schedule variants.
type TransformSpec struct {
	// Source is a complete Go source file holding the //twist:outer and
	// //twist:inner annotated pair (internal/transform).
	Source string `json:"source"`
	// Variants selects the schedule families to emit. Entries are schedule
	// expressions (algebra.ParseSchedule), which subsumes the legacy
	// nest.ParseVariant names; empty means every family. The identity
	// schedule is rejected — the input template already is it.
	Variants []string `json:"variants,omitempty"`
	// Schedules are additional schedule expressions to emit. Inline-free
	// entries canonicalize into Variants (so a schedule-bearing request
	// digests identically to its variant-bearing equivalent); entries with
	// inline(K) stay here in canonical form and emit the inlined drivers.
	Schedules []string `json:"schedules,omitempty"`
	// Frontend names the source language of the job: "template" for the
	// annotated recursion pair (the default), "loops" for a plain Go file
	// whose //twist:loops loop nest is first converted to the template by
	// the loop front-end (internal/loopfront, §7.2). The default template
	// front-end canonicalizes to "", so requests predating the axis keep
	// their content digests (the same contract as RunSpec.Engine).
	Frontend string `json:"frontend,omitempty"`
	// Nest selects one //twist:loops nest by name when the loops front-end
	// input holds several; requires Frontend "loops".
	Nest string `json:"nest,omitempty"`
}

// Kind implements Spec.
func (s *TransformSpec) Kind() Kind { return KindTransform }

// Normalize implements Spec.
func (s *TransformSpec) Normalize() error {
	if s.Source == "" {
		return fmt.Errorf("serve: transform source must be non-empty")
	}
	if len(s.Source) > MaxSourceBytes {
		return fmt.Errorf("serve: transform source %d bytes exceeds the limit %d", len(s.Source), MaxSourceBytes)
	}
	if err := normalizeFrontend(&s.Frontend); err != nil {
		return err
	}
	if s.Nest != "" && s.Frontend != "loops" {
		return fmt.Errorf("serve: nest selection requires the loops frontend")
	}
	exprs := len(s.Variants) + len(s.Schedules)
	if exprs == 0 {
		s.Variants, s.Schedules = nil, nil // canonical form for "every family"
		return nil
	}
	variants := make([]string, 0, exprs)
	var schedules []string
	for _, expr := range append(append([]string(nil), s.Variants...), s.Schedules...) {
		sched, err := algebra.ParseSchedule(expr)
		if err != nil {
			return fmt.Errorf("serve: %v", err)
		}
		if sched == algebra.Identity() {
			return fmt.Errorf("serve: transform cannot emit the identity schedule (the input template is it)")
		}
		if sched.InlineDepth() == 0 {
			variants = append(variants, sched.Variant().String())
		} else {
			schedules = append(schedules, sched.String())
		}
	}
	if len(variants) == 0 {
		variants = nil
	}
	s.Variants, s.Schedules = variants, schedules
	return nil
}

// OracleSpec parameterizes an oracle job: capture the golden trace of one
// workload and check a schedule against it (DESIGN.md §4.9).
type OracleSpec struct {
	// Workload is the benchmark abbreviation (TJ, MM, PC, NN, KNN, VP).
	Workload string `json:"workload"`
	// Scale is the suite scale parameter. Default 256 — oracle jobs
	// materialize golden traces, so the default stays small.
	Scale int `json:"scale,omitempty"`
	// Seed is the workload seed.
	Seed int64 `json:"seed,omitempty"`
	// Variant is the schedule under test, in legacy nest.ParseVariant form.
	// Default twisted.
	Variant string `json:"variant,omitempty"`
	// Schedule is the schedule under test as an algebra expression; see
	// RunSpec.Schedule. Mutually exclusive with Variant.
	Schedule string `json:"schedule,omitempty"`
	// FlagMode is the truncation-flag representation for sequential checks
	// (sets, counter). Default counter.
	FlagMode string `json:"flag_mode,omitempty"`
	// NoSubtree disables the §4.2 subtree-truncation optimization in
	// sequential checks (the default checks the optimized schedule).
	NoSubtree bool `json:"no_subtree,omitempty"`
	// Engine names the visit engine under test; see RunSpec.Engine. A
	// diverging verdict on the iterative engine indicts the lowering, not
	// the schedule. Default recursive (canonicalized to "").
	Engine string `json:"engine,omitempty"`
	// Workers selects the check: 0 checks the sequential engine schedule;
	// >= 1 checks the parallel executor at that worker count
	// (oracle.Trace.CheckParallel, including column-confinement).
	Workers int `json:"workers,omitempty"`
	// Stealing selects the work-stealing executor for parallel checks.
	Stealing bool `json:"stealing,omitempty"`
}

// Kind implements Spec.
func (s *OracleSpec) Kind() Kind { return KindOracle }

// Normalize implements Spec.
func (s *OracleSpec) Normalize() error {
	if err := normalizeWorkload(&s.Workload); err != nil {
		return err
	}
	if s.Scale <= 0 {
		s.Scale = 256
	}
	if s.Scale > MaxOracleScale {
		return fmt.Errorf("serve: oracle scale %d exceeds the limit %d", s.Scale, MaxOracleScale)
	}
	if err := normalizeSchedule(&s.Schedule, &s.Variant, s.Workload); err != nil {
		return err
	}
	if err := normalizeFlagMode(&s.FlagMode); err != nil {
		return err
	}
	if err := normalizeEngine(&s.Engine); err != nil {
		return err
	}
	if s.Workers < 0 {
		return fmt.Errorf("serve: workers %d must be >= 0", s.Workers)
	}
	if s.Workers > MaxWorkers {
		return fmt.Errorf("serve: workers %d exceeds the limit %d", s.Workers, MaxWorkers)
	}
	if s.Workers == 0 && s.Stealing {
		return fmt.Errorf("serve: stealing requires workers >= 1")
	}
	return nil
}

// normalizeWorkload canonicalizes a suite benchmark name.
func normalizeWorkload(name *string) error {
	canon, err := workloads.CanonicalName(*name)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	*name = canon
	return nil
}

// normalizeSchedule canonicalizes a job's schedule selection. The two
// fields are mutually exclusive: a legacy variant name passes through
// (default twisted), while a schedule expression is parsed with the
// algebra, legality-checked against the workload's dependence witnesses,
// lowered onto its engine variant, and cleared — so a schedule-bearing
// request has the same canonical form (and digest) as its variant-bearing
// equivalent. The workload must already be canonical.
func normalizeSchedule(schedule, variant *string, workload string) error {
	expr := *variant
	if *schedule != "" {
		if *variant != "" {
			return fmt.Errorf("serve: set schedule or variant, not both")
		}
		expr = *schedule
	}
	if expr == "" {
		*variant = nest.Twisted().String()
		return nil
	}
	s, err := algebra.ParseSchedule(expr)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if s.InlineDepth() > 0 {
		return fmt.Errorf("serve: inline(K) is a code-generation transformation; engine jobs cannot execute %q", expr)
	}
	irregular, err := workloads.Irregular(workload)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if v := s.Check(algebra.ForNest(irregular)); v != nil {
		return fmt.Errorf("serve: %v", v)
	}
	*variant = s.Variant().String()
	*schedule = ""
	return nil
}

// normalizeScale defaults a suite scale and enforces the admission limit.
func normalizeScale(scale *int, limit int) error {
	if *scale <= 0 {
		*scale = 1024
	}
	if *scale > limit {
		return fmt.Errorf("serve: scale %d exceeds the limit %d", *scale, limit)
	}
	return nil
}

// normalizeLayout canonicalizes an arena layout name. The default
// build-order layout elides to "" — a layout-free request and an explicit
// "buildorder" request are the same job, and requests predating the layout
// dimension keep their content digests.
func normalizeLayout(name *string) error {
	k, err := layout.ParseKind(*name)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if k == layout.BuildOrder {
		*name = ""
	} else {
		*name = k.String()
	}
	return nil
}

// normalizeEngine canonicalizes a visit-engine name. The default recursive
// engine elides to "" — an engine-free request and an explicit "recursive"
// request are the same job, and requests predating the engine axis keep
// their content digests (the same contract as normalizeLayout).
func normalizeEngine(name *string) error {
	if *name == "" {
		return nil
	}
	eng, err := nest.ParseEngine(strings.ToLower(*name))
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if eng == nest.EngineRecursive {
		*name = ""
	} else {
		*name = eng.String()
	}
	return nil
}

// normalizeFrontend canonicalizes a transform front-end name. The default
// template front-end elides to "" — a frontend-free request and an explicit
// "template" request are the same job, and transform requests predating the
// front-end axis keep their content digests (the same contract as
// normalizeEngine).
func normalizeFrontend(name *string) error {
	switch strings.ToLower(*name) {
	case "", "template":
		*name = ""
		return nil
	case "loops":
		*name = "loops"
		return nil
	default:
		return fmt.Errorf("serve: unknown transform frontend %q (want template or loops)", *name)
	}
}

// normalizeFlagMode canonicalizes a flag-mode name ("" means counter).
func normalizeFlagMode(mode *string) error {
	if *mode == "" {
		*mode = nest.FlagCounter.String()
		return nil
	}
	fm, err := nest.ParseFlagMode(*mode)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	*mode = fm.String()
	return nil
}

// normalizeGeometry canonicalizes a cache geometry ("" means
// DefaultGeometry).
func normalizeGeometry(geometry *string) error {
	if *geometry == "" {
		*geometry = DefaultGeometry
		return nil
	}
	levels, err := memsim.ParseGeometry(*geometry)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	*geometry = memsim.FormatGeometry(levels)
	return nil
}
