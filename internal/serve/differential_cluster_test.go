package serve_test

// The fleet differential suite extends the bit-identical-response contract
// (differential_test.go) across the wire topology: for every job kind and a
// sample of workloads × schedules, the result bytes must be identical
// whether the job is answered by a 3-node fleet entered at a non-owner
// node, by a single-node twistd, or by the direct library call. This file
// lives in package serve_test because it imports the clustertest harness,
// which itself imports serve.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"twist/internal/cluster/clustertest"
	"twist/internal/serve"
)

// diffClusterCase is one kind × spec sample; direct runs the equivalent
// library call on a normalized copy of the spec.
type diffClusterCase struct {
	name   string
	kind   serve.Kind
	spec   any
	direct func(t *testing.T) []byte
}

func marshalResult(t *testing.T, out any, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatalf("direct library call: %v", err)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// diffClusterCases samples every job kind across workloads and schedule
// forms (legacy variants and algebra expressions).
func diffClusterCases() []diffClusterCase {
	const scale, seed = 256, 1
	run := func(spec serve.RunSpec) diffClusterCase {
		return diffClusterCase{
			name: "run/" + spec.Workload + "/" + spec.Variant + spec.Schedule,
			kind: serve.KindRun, spec: spec,
			direct: func(t *testing.T) []byte {
				c := spec
				out, err := serve.RunJob(context.Background(), &c)
				return marshalResult(t, out, err)
			},
		}
	}
	cases := []diffClusterCase{
		run(serve.RunSpec{Workload: "TJ", Variant: "twisted", Scale: scale, Seed: seed}),
		run(serve.RunSpec{Workload: "MM", Variant: "interchanged", Scale: scale, Seed: seed}),
		run(serve.RunSpec{Workload: "KNN", Variant: "original", Scale: scale, Seed: seed}),
		run(serve.RunSpec{Workload: "PC", Schedule: "stripmine(64)∘twist(flagged)", Scale: scale, Seed: seed}),
		run(serve.RunSpec{Workload: "VP", Variant: "twisted-cutoff:8", Scale: scale, Seed: seed, Workers: 4}),
	}

	mc := serve.MissCurveSpec{Workload: "TJ", Variant: "twisted", Scale: scale, Seed: seed}
	cases = append(cases, diffClusterCase{
		name: "misscurve/TJ/twisted", kind: serve.KindMissCurve, spec: mc,
		direct: func(t *testing.T) []byte {
			c := mc
			out, err := serve.MissCurveJob(context.Background(), &c)
			return marshalResult(t, out, err)
		},
	})
	mc2 := serve.MissCurveSpec{Workload: "MM", Schedule: "interchange", Scale: scale, Seed: seed}
	cases = append(cases, diffClusterCase{
		name: "misscurve/MM/interchange", kind: serve.KindMissCurve, spec: mc2,
		direct: func(t *testing.T) []byte {
			c := mc2
			out, err := serve.MissCurveJob(context.Background(), &c)
			return marshalResult(t, out, err)
		},
	})

	tr := serve.TransformSpec{Source: diffClusterTemplateSrc}
	cases = append(cases, diffClusterCase{
		name: "transform/all-variants", kind: serve.KindTransform, spec: tr,
		direct: func(t *testing.T) []byte {
			c := tr
			out, err := serve.TransformJob(context.Background(), &c)
			return marshalResult(t, out, err)
		},
	})
	trLoops := serve.TransformSpec{Source: diffClusterLoopsSrc, Frontend: "loops"}
	cases = append(cases, diffClusterCase{
		name: "transform/loops-frontend", kind: serve.KindTransform, spec: trLoops,
		direct: func(t *testing.T) []byte {
			c := trLoops
			out, err := serve.TransformJob(context.Background(), &c)
			return marshalResult(t, out, err)
		},
	})

	or := serve.OracleSpec{Workload: "TJ", Variant: "twisted", Scale: scale, Seed: seed}
	cases = append(cases, diffClusterCase{
		name: "oracle/TJ/twisted", kind: serve.KindOracle, spec: or,
		direct: func(t *testing.T) []byte {
			c := or
			out, err := serve.OracleJob(context.Background(), &c)
			return marshalResult(t, out, err)
		},
	})
	or2 := serve.OracleSpec{Workload: "KNN", Schedule: "twist(flagged)", Scale: scale, Seed: seed}
	cases = append(cases, diffClusterCase{
		name: "oracle/KNN/twist-expr", kind: serve.KindOracle, spec: or2,
		direct: func(t *testing.T) []byte {
			c := or2
			out, err := serve.OracleJob(context.Background(), &c)
			return marshalResult(t, out, err)
		},
	})
	return cases
}

const diffClusterTemplateSrc = `package p

//twist:outer
func Outer(o *Node, i *Node) {
	if o == nil {
		return
	}
	Inner(o, i)
	Outer(o.Left, i)
	Outer(o.Right, i)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if i == nil {
		return
	}
	work(o, i)
	Inner(o, i.Left)
	Inner(o, i.Right)
}
`

// diffClusterLoopsSrc exercises the loops front-end across the fleet: an
// irregular (triangular) nest, so the routed job covers the truncation-flag
// synthesis path too.
const diffClusterLoopsSrc = `package p

var visit func(o, i int)

//twist:loops name=tri leafrun=2
func triLoops(n int) {
	for o := 0; o < n; o++ {
		for i := 0; i < o; i++ {
			visit(o, i)
		}
	}
}
`

// TestDifferentialCluster is the three-way equality: fleet (entered at a
// node that neither owns nor replicates the digest, so the request crosses
// a hop) == single-node twistd == direct library call, for every kind.
func TestDifferentialCluster(t *testing.T) {
	t.Parallel()
	fleet := clustertest.Start(t, clustertest.Config{Nodes: 3})
	single := serve.New(serve.Config{Workers: 2, Queue: 64})
	ts := httptest.NewServer(single.Handler())
	t.Cleanup(func() {
		ts.Close()
		single.Close()
	})

	for _, tc := range diffClusterCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := tc.direct(t)

			// Single-node twistd.
			body, err := json.Marshal(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/"+string(tc.kind), "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var sEnv clustertest.Envelope
			if err := json.NewDecoder(resp.Body).Decode(&sEnv); err != nil {
				t.Fatalf("single-node envelope: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("single-node status %d", resp.StatusCode)
			}

			// Fleet, entered at a pure forwarder when one exists (with 3
			// nodes and 2 replicas there always is one).
			entry := fleet.NonOwnerIndex(sEnv.Digest)
			if entry < 0 {
				entry = 0
			}
			fEnv := fleet.PostEnvelope(t, entry, tc.kind, tc.spec)

			if fEnv.Digest != sEnv.Digest {
				t.Errorf("fleet digest %s, single-node %s", fEnv.Digest, sEnv.Digest)
			}
			if !bytes.Equal(sEnv.Result, want) {
				t.Errorf("single-node result differs from direct call\nserved: %s\ndirect: %s", sEnv.Result, want)
			}
			if !bytes.Equal(fEnv.Result, want) {
				t.Errorf("fleet result differs from direct call\nserved: %s\ndirect: %s", fEnv.Result, want)
			}
			if ownerIdx := fleet.OwnerIndex(sEnv.Digest); entry != ownerIdx && fEnv.Node == fleet.Nodes[entry].ID {
				t.Errorf("request entered at forwarder %q but was served there, not by the owner", fEnv.Node)
			}
		})
	}
}
