package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"twist/internal/layout"
)

// TestLayoutDigestCanonicalization verifies the layout field's digest
// discipline: the default build-order layout (however spelled) elides to the
// empty string — so layout-free requests keep their pre-layout content
// digests — while each reordering layout canonicalizes to its one name and
// digests distinctly.
func TestLayoutDigestCanonicalization(t *testing.T) {
	t.Parallel()
	norm := func(s Spec) string {
		t.Helper()
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		return Digest(s)
	}
	base := norm(&RunSpec{Workload: "TJ"})
	for _, spelling := range []string{"buildorder", "BUILD-ORDER", "identity"} {
		s := &RunSpec{Workload: "TJ", Layout: spelling}
		if d := norm(s); d != base {
			t.Errorf("layout %q digests %s, want the layout-free digest %s", spelling, d, base)
		}
		if s.Layout != "" {
			t.Errorf("layout %q canonicalized to %q, want \"\"", spelling, s.Layout)
		}
	}
	seen := map[string]string{"": base}
	for _, k := range layout.Kinds() {
		if k == layout.BuildOrder {
			continue
		}
		s := &RunSpec{Workload: "TJ", Layout: strings.ToUpper(k.String())}
		d := norm(s)
		if s.Layout != k.String() {
			t.Errorf("layout %v canonicalized to %q, want %q", k, s.Layout, k.String())
		}
		if prev, dup := seen[s.Layout]; dup && prev != d {
			t.Errorf("layout %v digest not stable", k)
		}
		for other, od := range seen {
			if od == d {
				t.Errorf("layout %q digests identically to %q", s.Layout, other)
			}
		}
		seen[s.Layout] = d
	}
	mc := &MissCurveSpec{Workload: "TJ", Layout: "van-emde-boas"}
	if err := mc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if mc.Layout != "veb" {
		t.Errorf("misscurve layout canonicalized to %q, want \"veb\"", mc.Layout)
	}
	bad := &RunSpec{Workload: "TJ", Layout: "zcurve"}
	if err := bad.Normalize(); err == nil {
		t.Error("Normalize accepted unknown layout \"zcurve\"")
	}
}

// TestDifferentialRunLayout extends the bit-identical-response contract to
// layout-bearing run jobs: the served result equals the direct library call
// byte for byte, echoes the canonical layout name, keeps the checksum and
// engine stats of the legacy arena (a layout renames storage slots and
// nothing else), and actually moves the simulated miss counts for the
// reordering layouts.
func TestDifferentialRunLayout(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	baseSpec := RunSpec{Workload: "TJ", Variant: "twisted", Scale: diffScale, Seed: diffSeed}
	base, err := RunJob(context.Background(), &baseSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hotcold", "preorder", "schedule", "veb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{
				Workload: "TJ", Variant: "twisted",
				Scale: diffScale, Seed: diffSeed, Layout: name,
			}
			direct := spec
			want, err := RunJob(context.Background(), &direct)
			if err != nil {
				t.Fatalf("direct RunJob: %v", err)
			}
			if want.Layout != name {
				t.Errorf("result echoes layout %q, want %q", want.Layout, name)
			}
			if want.Checksum != base.Checksum || want.Stats != base.Stats {
				t.Errorf("layout %s changed the semantic columns: checksum %s/%s", name, want.Checksum, base.Checksum)
			}
			// Only the first level's access count is layout-invariant (it
			// is the trace length); deeper levels see the layer above's
			// misses, which are exactly what layouts move.
			var moved bool
			for li := range want.MissRates {
				if want.MissRates[li].Misses != base.MissRates[li].Misses {
					moved = true
				}
			}
			if want.MissRates[0].Accesses != base.MissRates[0].Accesses {
				t.Errorf("layout %s changed the trace length: %d vs %d",
					name, want.MissRates[0].Accesses, base.MissRates[0].Accesses)
			}
			if !moved {
				t.Errorf("layout %s left every simulated miss count unchanged", name)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			status, body := postJob(t, ts.URL, KindRun, spec)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			env := decodeEnvelope(t, body)
			if !bytes.Equal(env.Result, wantJSON) {
				t.Errorf("served result differs from direct library call\nserved: %s\ndirect: %s", env.Result, wantJSON)
			}
			if env.Digest != Digest(&direct) {
				t.Errorf("digest %s, want %s", env.Digest, Digest(&direct))
			}
		})
	}
}

// TestLayoutCacheCoalescing verifies layout spellings share cache entries
// exactly when they canonicalize identically: an explicit "buildorder"
// request is a cache hit on the layout-free twin, while "veb" is its own
// entry (fresh on first post, hit on repeat).
func TestLayoutCacheCoalescing(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	post := func(spec RunSpec) envelope {
		t.Helper()
		status, body := postJob(t, ts.URL, KindRun, spec)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		return decodeEnvelope(t, body)
	}
	spec := RunSpec{Workload: "MM", Variant: "twisted", Scale: diffScale, Seed: diffSeed}
	first := post(spec)
	if first.Cached {
		t.Fatal("first layout-free request was already cached")
	}
	spec.Layout = "buildorder"
	if second := post(spec); !second.Cached || second.Digest != first.Digest {
		t.Errorf("explicit buildorder request missed the layout-free cache entry (cached=%v, digest %s vs %s)",
			second.Cached, second.Digest, first.Digest)
	}
	spec.Layout = "veb"
	veb := post(spec)
	if veb.Cached || veb.Digest == first.Digest {
		t.Errorf("veb request must be its own cache entry (cached=%v)", veb.Cached)
	}
	if again := post(spec); !again.Cached {
		t.Error("repeated veb request was not a cache hit")
	}
}

// TestDifferentialMissCurveLayout pins the layout dimension of misscurve
// jobs: the vEB layout must shorten TJ's mean reuse distance relative to
// build order under the original schedule (the §4.12 packing effect on the
// Mattson histogram), with the access count unchanged.
func TestDifferentialMissCurveLayout(t *testing.T) {
	t.Parallel()
	mk := func(layoutName string) *MissCurveResult {
		t.Helper()
		spec := MissCurveSpec{Workload: "TJ", Variant: "original", Scale: diffScale, Seed: diffSeed, Layout: layoutName}
		res, err := MissCurveJob(context.Background(), &spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, veb := mk(""), mk("veb")
	if veb.Layout != "veb" || base.Layout != "" {
		t.Fatalf("layout echo: base %q, veb %q", base.Layout, veb.Layout)
	}
	if veb.Accesses != base.Accesses {
		t.Fatalf("veb layout changed the access count: %d vs %d", veb.Accesses, base.Accesses)
	}
	if veb.DistinctLines >= base.DistinctLines {
		t.Errorf("veb packs two nodes per line, so distinct lines must drop: %d vs %d", veb.DistinctLines, base.DistinctLines)
	}
	if veb.MeanDistance >= base.MeanDistance {
		t.Errorf("veb mean reuse distance %v not below build order %v", veb.MeanDistance, base.MeanDistance)
	}
	if fmt.Sprint(veb.Points) == fmt.Sprint(base.Points) {
		t.Error("veb predicted curve identical to build order")
	}
}
