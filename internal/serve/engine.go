package serve

import (
	"context"
	"fmt"

	"twist/internal/layout"
	"twist/internal/loopfront"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/oracle"
	"twist/internal/transform"
	"twist/internal/transform/algebra"
	"twist/internal/workloads"
)

// This file is the serve↔engine boundary: one exported *Job function per
// kind, each a plain library call with no serving machinery attached. The
// daemon's responses embed exactly the JSON encoding of these return values
// — that equality is the bit-identical-response contract the differential
// test enforces.

// RunResult is the result of a run job.
type RunResult struct {
	// Echo of the normalized spec, so a result is self-describing.
	Workload   string `json:"workload"`
	Variant    string `json:"variant"`
	Scale      int    `json:"scale"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
	FlagMode   string `json:"flag_mode"`
	SimWorkers int    `json:"sim_workers"`
	Geometry   string `json:"geometry"`
	// Layout is the arena layout the simulated miss rates were measured
	// under; omitted for the default build-order arena, so pre-layout
	// responses are byte-identical.
	Layout string `json:"layout,omitempty"`
	// Engine is the visit engine the run executed on; omitted for the
	// default recursive engine, so pre-engine responses keep their shape.
	Engine string `json:"engine,omitempty"`

	// Checksum is the workload's result checksum in obs.FormatUint form —
	// identical across every schedule and worker count for one instance.
	Checksum string `json:"checksum"`

	// Stats are the merged engine operation counts (deterministic across
	// worker counts for a fixed spawn depth); Ops is their weighted total
	// under the instruction model.
	Stats nest.Stats `json:"stats"`
	Ops   int64      `json:"ops"`

	// EngineOps is the visit-engine overhead counter (nest.Exec.EngineOps):
	// activation records for the recursive engine, drain-loop steps for the
	// iterative one. Deterministic for a fixed spec — it is the response's
	// schedule-overhead signal, and the axis the iterative engine exists to
	// shrink (DESIGN.md §4.13).
	EngineOps int64 `json:"engine_ops"`

	// Tasks is the parallel task count (1 for a sequential run).
	Tasks int64 `json:"tasks"`

	// MissRates are the simulated per-level cache statistics of the traced
	// sequential run under the spec's geometry (warmup pass, stats reset,
	// measured pass — the steady-state protocol of internal/experiments).
	MissRates []LevelMissRate `json:"miss_rates"`
}

// LevelMissRate is one cache level's simulated statistics.
type LevelMissRate struct {
	Level     string  `json:"level"`
	Accesses  int64   `json:"accesses"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Rate      float64 `json:"rate"`
}

// RunJob executes a run job directly (the library-call equivalent of POST
// /v1/run). The spec is normalized in place.
func RunJob(ctx context.Context, s *RunSpec) (*RunResult, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	out, err := s.exec(ctx, obs.Nop())
	if err != nil {
		return nil, err
	}
	return out.(*RunResult), nil
}

func (s *RunSpec) exec(ctx context.Context, rec obs.Recorder) (any, error) {
	in, err := workloads.ByName(s.Workload, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	v, err := parseVariantExpr(s.Variant)
	if err != nil {
		return nil, err
	}
	fm, err := nest.ParseFlagMode(s.FlagMode)
	if err != nil {
		return nil, err
	}
	eng, err := specEngine(s.Engine)
	if err != nil {
		return nil, err
	}

	res := &RunResult{
		Workload: s.Workload, Variant: s.Variant, Scale: s.Scale, Seed: s.Seed,
		Workers: s.Workers, FlagMode: s.FlagMode, SimWorkers: s.SimWorkers,
		Geometry: s.Geometry, Layout: s.Layout, Engine: s.Engine,
	}

	// Phase 1: the engine run under the requested executor. Merged Stats
	// are deterministic across worker counts (fixed spawn depth), so the
	// response body does not depend on scheduling.
	if s.Workers <= 1 {
		st, engOps, err := in.RunSeq(ctx, v, func(e *nest.Exec) {
			e.Flags = fm
			e.Engine = eng
		})
		if err != nil {
			return nil, err
		}
		if rec != nil {
			st.Record(rec, "nest")
			rec.Count("nest.engine.ops", engOps)
			rec.Count("nest.engine."+eng.String(), 1)
		}
		res.Stats = st
		res.EngineOps = engOps
		res.Tasks = 1
	} else {
		r, err := in.RunWith(nest.RunConfig{
			Variant:  v,
			Engine:   eng,
			Workers:  s.Workers,
			Stealing: true,
			Ctx:      ctx,
			Layout:   s.Layout,
			Recorder: rec,
		})
		if err != nil {
			return nil, err
		}
		res.Stats = r.Stats
		res.EngineOps = r.EngineOps
		res.Tasks = r.Tasks
	}
	res.Ops = res.Stats.Ops()
	res.Checksum = obs.FormatUint(in.Checksum())

	// Phase 2: simulated miss rates from the traced *sequential* run — one
	// sink, so the simulated access order (and thus every counter) is a
	// pure function of the spec, independent of the engine worker count.
	// The spec's layout applies here: node addresses are generated under
	// the repacked arena (build-order returns the instance unchanged).
	lk, err := layout.ParseKind(s.Layout)
	if err != nil {
		return nil, err
	}
	lin, err := in.UnderLayout(lk, v)
	if err != nil {
		return nil, err
	}
	levels, err := memsim.ParseGeometry(s.Geometry)
	if err != nil {
		return nil, err
	}
	sim := memsim.MustNew(memsim.Config{Levels: levels, SimWorkers: s.SimWorkers})
	defer sim.Close()
	tracedRun := func() error {
		st := memsim.NewStream(sim, 0)
		_, _, err := lin.RunSink(ctx, v, st.Sink(), func(e *nest.Exec) {
			e.Flags = fm
			e.Engine = eng
		})
		st.Close()
		return err
	}
	if err := tracedRun(); err != nil { // warmup
		return nil, err
	}
	sim.ResetStats()
	if err := tracedRun(); err != nil {
		return nil, err
	}
	if rec != nil {
		sim.Publish(rec, "serve.memsim")
	}
	for _, ls := range sim.Stats() {
		res.MissRates = append(res.MissRates, LevelMissRate{
			Level: ls.Name, Accesses: ls.Accesses, Misses: ls.Misses,
			Evictions: ls.Evictions, Rate: ls.MissRate(),
		})
	}
	return res, nil
}

// MissCurveResult is the result of a misscurve job.
type MissCurveResult struct {
	// Echo of the normalized spec.
	Workload  string `json:"workload"`
	Variant   string `json:"variant"`
	Scale     int    `json:"scale"`
	Seed      int64  `json:"seed"`
	LineBytes int    `json:"line_bytes"`
	// Layout is the arena layout the distances were measured under; omitted
	// for the default build-order arena (see RunResult.Layout).
	Layout string `json:"layout,omitempty"`
	// Engine is the visit engine the trace was produced on; omitted for the
	// default recursive engine (see RunResult.Engine).
	Engine string `json:"engine,omitempty"`

	// Histogram summary over line-granular stack distances.
	Accesses      int64   `json:"accesses"`
	DistinctLines int     `json:"distinct_lines"`
	ColdMisses    int64   `json:"cold_misses"`
	MaxDistance   int     `json:"max_distance"`
	MeanDistance  float64 `json:"mean_distance"`

	// Points is the predicted miss-ratio curve, one entry per requested
	// capacity in request order.
	Points []MissCurvePoint `json:"points"`
}

// MissCurvePoint is the Mattson prediction at one cache capacity.
type MissCurvePoint struct {
	CapacityLines   int     `json:"capacity_lines"`
	CapacityBytes   int64   `json:"capacity_bytes"`
	PredictedMisses int64   `json:"predicted_misses"`
	MissRatio       float64 `json:"miss_ratio"`
}

// MissCurveJob executes a misscurve job directly (the library-call
// equivalent of POST /v1/misscurve). The spec is normalized in place.
func MissCurveJob(ctx context.Context, s *MissCurveSpec) (*MissCurveResult, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	out, err := s.exec(ctx, obs.Nop())
	if err != nil {
		return nil, err
	}
	return out.(*MissCurveResult), nil
}

func (s *MissCurveSpec) exec(ctx context.Context, rec obs.Recorder) (any, error) {
	in, err := workloads.ByName(s.Workload, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	v, err := parseVariantExpr(s.Variant)
	if err != nil {
		return nil, err
	}
	eng, err := specEngine(s.Engine)
	if err != nil {
		return nil, err
	}

	lk, err := layout.ParseKind(s.Layout)
	if err != nil {
		return nil, err
	}
	lin, err := in.UnderLayout(lk, v)
	if err != nil {
		return nil, err
	}

	ra := memsim.NewReuseAnalyzer()
	h := memsim.NewHistogram()
	line := memsim.Addr(s.LineBytes)
	emit := func(a memsim.Addr) { h.Add(ra.Access(a / line)) }
	if _, _, err := lin.RunEmit(ctx, v, emit, func(e *nest.Exec) { e.Engine = eng }); err != nil {
		return nil, err
	}
	if rec != nil {
		rec.Count("serve.misscurve.accesses", h.Total())
		rec.Count("serve.misscurve.distinct_lines", int64(ra.Distinct()))
	}

	res := &MissCurveResult{
		Workload: s.Workload, Variant: s.Variant, Scale: s.Scale, Seed: s.Seed,
		LineBytes: s.LineBytes, Layout: s.Layout, Engine: s.Engine,
		Accesses:      h.Total(),
		DistinctLines: ra.Distinct(),
		ColdMisses:    h.InfiniteCount(),
		MaxDistance:   h.Max(),
		MeanDistance:  h.Mean(),
	}
	for _, c := range s.Capacities {
		res.Points = append(res.Points, MissCurvePoint{
			CapacityLines:   c,
			CapacityBytes:   int64(c) * int64(s.LineBytes),
			PredictedMisses: memsim.PredictMisses(h, c),
			MissRatio:       memsim.PredictMissRatio(h, c),
		})
	}
	return res, nil
}

// TransformResult is the result of a transform job.
type TransformResult struct {
	// OuterFunc and InnerFunc are the annotated pair's function names;
	// OuterIndex and InnerIndex their index parameter names.
	OuterFunc  string `json:"outer_func"`
	InnerFunc  string `json:"inner_func"`
	OuterIndex string `json:"outer_index"`
	InnerIndex string `json:"inner_index"`

	// Irregular reports whether the template's inner truncation depends on
	// the outer index (the paper's irregular case, §4).
	Irregular bool `json:"irregular"`

	// Frontend and Nest echo the loops front-end selection; omitted for
	// the default template front-end.
	Frontend string `json:"frontend,omitempty"`
	Nest     string `json:"nest,omitempty"`

	// Template is the intermediate recursion template the loop front-end
	// generated from the source nest; omitted for the default template
	// front-end (where the input already is the template).
	Template string `json:"template,omitempty"`

	// Source is the generated Go source file holding the requested
	// schedule variants.
	Source string `json:"source"`
}

// TransformJob executes a transform job directly (the library-call
// equivalent of POST /v1/transform). The spec is normalized in place.
func TransformJob(ctx context.Context, s *TransformSpec) (*TransformResult, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	out, err := s.exec(ctx, obs.Nop())
	if err != nil {
		return nil, err
	}
	return out.(*TransformResult), nil
}

func (s *TransformSpec) exec(ctx context.Context, rec obs.Recorder) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	src := []byte(s.Source)
	var unit *loopfront.Unit
	if s.Frontend == "loops" {
		var err error
		unit, err = loopfront.Single("input.go", src, s.Nest)
		if err != nil {
			return nil, err
		}
		src = unit.Source
	}
	t, err := transform.ParseFile("input.go", src)
	if err != nil {
		return nil, err
	}
	var scheds []algebra.Schedule
	for _, expr := range append(append([]string(nil), s.Variants...), s.Schedules...) {
		sched, err := algebra.ParseSchedule(expr)
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, sched)
	}
	out, err := algebra.GenerateSchedules(t, scheds)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		rec.Count("serve.transform.bytes", int64(len(out)))
	}
	res := &TransformResult{
		OuterFunc:  t.Outer.Name.Name,
		InnerFunc:  t.Inner.Name.Name,
		OuterIndex: t.OName,
		InnerIndex: t.IName,
		Irregular:  t.Irregular(),
		Source:     string(out),
	}
	if unit != nil {
		res.Frontend = "loops"
		res.Nest = unit.Name
		res.Template = string(unit.Source)
	}
	return res, nil
}

// OracleResult is the result of an oracle job.
type OracleResult struct {
	// Echo of the normalized spec.
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	Seed     int64  `json:"seed"`
	Variant  string `json:"variant"`
	FlagMode string `json:"flag_mode"`
	Subtree  bool   `json:"subtree"`
	// Engine is the visit engine the check ran on; omitted for the default
	// recursive engine (see RunResult.Engine).
	Engine   string `json:"engine,omitempty"`
	Workers  int    `json:"workers"`
	Stealing bool   `json:"stealing"`

	// Golden-trace summary: visit and column counts plus the order-,
	// column-order-, and truncation-sensitive digests (obs.FormatUint).
	GoldenVisits  int    `json:"golden_visits"`
	GoldenColumns int    `json:"golden_columns"`
	Digest        string `json:"digest"`
	ColumnDigest  string `json:"column_digest"`
	TruncDigest   string `json:"trunc_digest"`

	// OK mirrors Verdict.OK; Detail is the human-readable verdict line
	// (including the minimized counterexample for a failing check); Verdict
	// is the full structured verdict.
	OK      bool            `json:"ok"`
	Detail  string          `json:"detail"`
	Verdict *oracle.Verdict `json:"verdict"`
}

// OracleJob executes an oracle job directly (the library-call equivalent of
// POST /v1/oracle). The spec is normalized in place.
func OracleJob(ctx context.Context, s *OracleSpec) (*OracleResult, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	out, err := s.exec(ctx, obs.Nop())
	if err != nil {
		return nil, err
	}
	return out.(*OracleResult), nil
}

func (s *OracleSpec) exec(ctx context.Context, rec obs.Recorder) (any, error) {
	in, err := workloads.ByName(s.Workload, s.Scale, s.Seed)
	if err != nil {
		return nil, err
	}
	v, err := parseVariantExpr(s.Variant)
	if err != nil {
		return nil, err
	}
	fm, err := nest.ParseFlagMode(s.FlagMode)
	if err != nil {
		return nil, err
	}
	eng, err := specEngine(s.Engine)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := in.OracleSpec()
	g, err := oracle.Capture(spec)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		rec.Count("serve.oracle.golden_visits", int64(g.Visits()))
	}
	var verdict *oracle.Verdict
	if s.Workers == 0 {
		verdict = g.CheckVariantOn(spec, eng, v, fm, !s.NoSubtree)
	} else {
		verdict, err = g.CheckParallel(spec, nest.RunConfig{
			Variant:  v,
			Engine:   eng,
			Workers:  s.Workers,
			Stealing: s.Stealing,
			Ctx:      ctx,
			Recorder: rec,
		})
		if err != nil {
			return nil, err
		}
	}
	return &OracleResult{
		Workload: s.Workload, Scale: s.Scale, Seed: s.Seed, Variant: s.Variant,
		FlagMode: s.FlagMode, Subtree: !s.NoSubtree, Engine: s.Engine,
		Workers: s.Workers, Stealing: s.Stealing,
		GoldenVisits:  g.Visits(),
		GoldenColumns: g.Columns(),
		Digest:        obs.FormatUint(g.Digest()),
		ColumnDigest:  obs.FormatUint(g.ColumnDigest()),
		TruncDigest:   obs.FormatUint(g.TruncDigest()),
		OK:            verdict.OK,
		Detail:        verdict.String(),
		Verdict:       verdict,
	}, nil
}

// specEngine resolves a normalized spec's engine name ("" is the elided
// recursive default, see normalizeEngine).
func specEngine(name string) (nest.Engine, error) {
	if name == "" {
		return nest.EngineRecursive, nil
	}
	return nest.ParseEngine(name)
}

// parseVariantExpr resolves a normalized spec's schedule expression onto
// its engine variant through the algebra (every legacy variant name is a
// schedule expression, so this subsumes nest.ParseVariant).
func parseVariantExpr(expr string) (nest.Variant, error) {
	s, err := algebra.ParseSchedule(expr)
	if err != nil {
		return nest.Variant{}, err
	}
	return s.Variant(), nil
}

// decodeSpec builds the Spec type for a kind, for the HTTP layer's JSON
// decoding. Unknown kinds return an error rather than a nil Spec.
func decodeSpec(k Kind) (Spec, error) {
	switch k {
	case KindRun:
		return &RunSpec{}, nil
	case KindMissCurve:
		return &MissCurveSpec{}, nil
	case KindTransform:
		return &TransformSpec{}, nil
	case KindOracle:
		return &OracleSpec{}, nil
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", k)
}
