package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// Golden HTTP fixtures, mirroring the oracle fixtures convention
// (internal/oracle/golden_test.go): each job kind has one canonical request
// whose full response — elapsed_ns zeroed, the only timing field — is
// committed under testdata/. Regenerate after an intentional format or
// engine change with:
//
//	go test ./internal/serve -run TestGoldenResponses -update-golden
//
// and review the diff: it is exactly the externally-visible API change.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden HTTP fixtures under testdata/")

const (
	goldenScale = 256
	goldenSeed  = 1
)

// goldenJobs returns the canonical requests: one per kind, plus one
// schedule-expression transform exercising the algebra path end to end.
func goldenJobs() []struct {
	name string
	kind Kind
	spec any
} {
	return []struct {
		name string
		kind Kind
		spec any
	}{
		{"run", KindRun, RunSpec{Workload: "TJ", Variant: "twisted", Scale: goldenScale, Seed: goldenSeed}},
		{"run_layout", KindRun, RunSpec{Workload: "TJ", Variant: "twisted", Scale: goldenScale, Seed: goldenSeed, Layout: "veb"}},
		{"misscurve", KindMissCurve, MissCurveSpec{Workload: "TJ", Variant: "twisted", Scale: goldenScale, Seed: goldenSeed}},
		{"transform", KindTransform, TransformSpec{Source: diffTemplateSrc}},
		{"transform_schedule", KindTransform, TransformSpec{Source: diffTemplateSrc,
			Schedules: []string{"inline(2)∘twist(flagged)"}}},
		{"transform_loops", KindTransform, TransformSpec{Source: diffLoopsSrc, Frontend: "loops"}},
		{"oracle", KindOracle, OracleSpec{Workload: "MM", Variant: "twisted", Scale: goldenScale, Seed: goldenSeed}},
	}
}

func TestGoldenResponses(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 16})
	for _, job := range goldenJobs() {
		job := job
		t.Run(job.name, func(t *testing.T) {
			t.Parallel()
			status, body := postJob(t, ts.URL, job.kind, job.spec)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			env := decodeEnvelope(t, body)
			env.ElapsedNS = 0 // the one timing field in the envelope
			got, err := json.MarshalIndent(env, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", job.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v — regenerate with -update-golden", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response for %s drifted from %s\ngot:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with -update-golden.",
					job.name, path, got, want)
			}
		})
	}
}
