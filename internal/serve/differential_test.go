package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"twist/internal/workloads"
)

// The differential suite is the bit-identical-response contract: for every
// job kind, the "result" field the daemon returns must equal — byte for
// byte — the JSON encoding of the direct library call. The envelope's
// elapsed_ns is the only timing field, and it lives outside result.

const (
	diffScale = 256
	diffSeed  = 1
)

var diffVariants = []string{"original", "interchanged", "twisted", "twisted-cutoff:8"}

// newTestServer starts a Server over httptest, cleaning both up with t.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJobE POSTs a spec to a job endpoint and returns the HTTP status with
// the raw response body. Safe to call from any goroutine.
func postJobE(baseURL string, kind Kind, spec any) (int, []byte, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(baseURL+"/v1/"+string(kind), "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// postJob is postJobE failing the test on transport errors.
func postJob(t *testing.T, baseURL string, kind Kind, spec any) (int, []byte) {
	t.Helper()
	status, out, err := postJobE(baseURL, kind, spec)
	if err != nil {
		t.Fatal(err)
	}
	return status, out
}

// decodeEnvelope parses a 200 response body.
func decodeEnvelope(t *testing.T, body []byte) envelope {
	t.Helper()
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", body, err)
	}
	return env
}

func TestDifferentialRun(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 4, Queue: 256, JobTimeout: 0})
	for _, name := range workloads.Names() {
		for _, variant := range diffVariants {
			for _, engineWorkers := range []int{1, 4} {
				name, variant, engineWorkers := name, variant, engineWorkers
				t.Run(fmt.Sprintf("%s/%s/w%d", name, variant, engineWorkers), func(t *testing.T) {
					t.Parallel()
					spec := RunSpec{
						Workload: name, Variant: variant,
						Scale: diffScale, Seed: diffSeed, Workers: engineWorkers,
					}
					direct := spec // normalized independently by RunJob
					want, err := RunJob(context.Background(), &direct)
					if err != nil {
						t.Fatalf("direct RunJob: %v", err)
					}
					wantJSON, err := json.Marshal(want)
					if err != nil {
						t.Fatal(err)
					}

					status, body := postJob(t, ts.URL, KindRun, spec)
					if status != http.StatusOK {
						t.Fatalf("status %d: %s", status, body)
					}
					env := decodeEnvelope(t, body)
					if !bytes.Equal(env.Result, wantJSON) {
						t.Errorf("served result differs from direct library call\nserved: %s\ndirect: %s", env.Result, wantJSON)
					}
					if env.Digest != Digest(&direct) {
						t.Errorf("digest %s, want %s", env.Digest, Digest(&direct))
					}
				})
			}
		}
	}
}

func TestDifferentialMissCurve(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	for _, variant := range []string{"original", "twisted"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			t.Parallel()
			spec := MissCurveSpec{Workload: "tj", Variant: variant, Scale: diffScale, Seed: diffSeed}
			direct := spec
			want, err := MissCurveJob(context.Background(), &direct)
			if err != nil {
				t.Fatalf("direct MissCurveJob: %v", err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			status, body := postJob(t, ts.URL, KindMissCurve, spec)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			env := decodeEnvelope(t, body)
			if !bytes.Equal(env.Result, wantJSON) {
				t.Errorf("served result differs\nserved: %s\ndirect: %s", env.Result, wantJSON)
			}
		})
	}
}

const diffTemplateSrc = `package p

//twist:outer
func Outer(o *Node, i *Node) {
	if o == nil {
		return
	}
	Inner(o, i)
	Outer(o.Left, i)
	Outer(o.Right, i)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if i == nil {
		return
	}
	work(o, i)
	Inner(o, i.Left)
	Inner(o, i.Right)
}
`

func TestDifferentialTransform(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	spec := TransformSpec{Source: diffTemplateSrc}
	direct := spec
	want, err := TransformJob(context.Background(), &direct)
	if err != nil {
		t.Fatalf("direct TransformJob: %v", err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	status, body := postJob(t, ts.URL, KindTransform, spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	env := decodeEnvelope(t, body)
	if !bytes.Equal(env.Result, wantJSON) {
		t.Errorf("served result differs\nserved: %s\ndirect: %s", env.Result, wantJSON)
	}
}

func TestDifferentialOracle(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 64})
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			t.Parallel()
			spec := OracleSpec{
				Workload: "mm", Variant: "twisted", Scale: diffScale, Seed: diffSeed,
				Workers: workers, Stealing: workers > 0,
			}
			direct := spec
			want, err := OracleJob(context.Background(), &direct)
			if err != nil {
				t.Fatalf("direct OracleJob: %v", err)
			}
			if !want.OK {
				t.Fatalf("oracle verdict unexpectedly failing: %s", want.Detail)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			status, body := postJob(t, ts.URL, KindOracle, spec)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			env := decodeEnvelope(t, body)
			if !bytes.Equal(env.Result, wantJSON) {
				t.Errorf("served result differs\nserved: %s\ndirect: %s", env.Result, wantJSON)
			}
		})
	}
}
