package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"twist/internal/cluster"
	"twist/internal/obs"
)

// maxBodyBytes bounds a request body; transform sources dominate and are
// themselves capped at MaxSourceBytes, so 2 MiB leaves JSON-escaping room.
const maxBodyBytes = 2 << 20

// Executor runs one normalized job spec to its marshaled result bytes. The
// default executor calls the engine (RunJob et al.); tests inject stubs to
// make admission and coalescing observable without engine runtime.
type Executor interface {
	Execute(ctx context.Context, s Spec) ([]byte, error)
}

// engineExecutor is the production Executor: the spec's own engine call,
// telemetry recorded into rec, result marshaled once. Because the bytes a
// cache hit or a coalesced follower receives are these bytes, responses are
// bit-identical to the direct library call by construction.
type engineExecutor struct {
	rec obs.Recorder
}

// Execute implements Executor.
func (e engineExecutor) Execute(ctx context.Context, s Spec) ([]byte, error) {
	out, err := s.exec(ctx, e.rec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(out)
}

// Config parameterizes a Server. The zero value is served with sensible
// defaults by New.
type Config struct {
	// Queue is the admission queue capacity; <= 0 means 64. A full queue
	// rejects with ErrQueueFull (HTTP 429).
	Queue int
	// Workers is the job worker count; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries sizes the result LRU: 0 means 256, negative disables
	// caching.
	CacheEntries int
	// JobTimeout is the per-job execution deadline; <= 0 means 60s.
	JobTimeout time.Duration
	// Recorder, when non-nil, additionally receives every serve-layer
	// signal (it is teed with the server's internal Memory recorder), so
	// the daemon's telemetry can flow into the same JSONLines/Compare
	// tooling as engine telemetry.
	Recorder obs.Recorder
	// Executor overrides the job executor; nil means the engine.
	Executor Executor
	// Cluster, when non-nil, puts the server in fleet mode (DESIGN.md
	// §4.14): jobs route by digest through the consistent-hash ring, with
	// forwarding, follower cache admission, fleet-wide shedding, and the
	// /clusterz and /metrics/fleet endpoints. The server starts the node's
	// health prober and stops it on Close.
	Cluster *cluster.Node
}

// Server is the twistd serving core: an http.Handler plus the admission
// queue, worker pool, result cache, and coalescing index behind it.
// Construct with New, serve via Handler, stop with BeginDrain/Drain/Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *pool
	cache   *resultCache
	group   *flightGroup
	exec    Executor
	cluster *cluster.Node // nil outside fleet mode

	mem *obs.Memory  // internal recorder: /metrics reads its counters
	rec obs.Recorder // mem teed with cfg.Recorder; all signals go here
	lat *latencies

	baseCtx  context.Context // parent of every job context
	baseStop context.CancelFunc
	draining atomic.Bool
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 60 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries),
		group:   newFlightGroup(),
		mem:     obs.NewMemory(),
		lat:     &latencies{},
		cluster: cfg.Cluster,
	}
	s.rec = obs.Recorder(s.mem)
	if cfg.Recorder != nil {
		s.rec = obs.Tee(s.mem, cfg.Recorder)
	}
	s.exec = cfg.Executor
	if s.exec == nil {
		s.exec = engineExecutor{rec: s.rec}
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.pool = newPool(cfg.Workers, cfg.Queue)

	s.mux = http.NewServeMux()
	for _, k := range []Kind{KindRun, KindMissCurve, KindTransform, KindOracle} {
		kind := k
		s.mux.HandleFunc("POST /v1/"+string(kind), func(w http.ResponseWriter, r *http.Request) {
			s.handleJob(w, r, kind)
		})
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		s.mux.HandleFunc("GET /clusterz", s.handleClusterz)
		s.mux.HandleFunc("GET /metrics/fleet", s.handleFleetMetrics)
		s.cluster.StartProber()
	}
	return s
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler { return s.mux }

// envelope is the response wrapper every job endpoint returns. Result is
// the exact marshaling of the corresponding *Job library call; ElapsedNS is
// the only field that varies between identical requests.
type envelope struct {
	Kind      Kind            `json:"kind"`
	Digest    string          `json:"digest"`
	Cached    bool            `json:"cached"`
	ElapsedNS int64           `json:"elapsed_ns"`
	Result    json.RawMessage `json:"result"`
	// Node is the fleet node that produced the result bytes and Via the
	// node that forwarded them, both set only in fleet mode — single-node
	// envelopes keep their pre-fleet shape byte for byte.
	Node string `json:"node,omitempty"`
	Via  string `json:"via,omitempty"`
}

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// handleJob is the shared endpoint implementation: decode → normalize →
// digest → admit/coalesce/cache → envelope.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, kind Kind) {
	start := time.Now()
	spec, err := decodeSpec(kind)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad %s spec: %w", kind, err))
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	digest := Digest(spec)

	// Fleet mode: route by digest — forward to the owner, shed on the
	// fleet bound, or fall through to local serving (we own it, it arrived
	// forwarded, or the fleet is unreachable). See cluster.go.
	if s.cluster != nil && s.clusterServe(w, r, kind, start, digest, spec) {
		return
	}

	body, cached, err := s.do(r.Context(), digest, spec)
	if err != nil {
		s.writeJobError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(envelope{
		Kind:      kind,
		Digest:    digest,
		Cached:    cached,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Result:    body,
		Node:      s.nodeID(),
	})
}

// do resolves one digest to its result bytes: result cache, then the
// coalescing index, then a fresh execution admitted through the pool.
// reqCtx only governs how long this caller waits — an execution keeps
// running for other waiters after one request gives up, and dies when the
// last one does.
func (s *Server) do(reqCtx context.Context, digest string, spec Spec) ([]byte, bool, error) {
	if body, ok := s.cache.Get(digest); ok {
		s.rec.Count("serve.cache.hit", 1)
		return body, true, nil
	}
	s.rec.Count("serve.cache.miss", 1)

	f, leader := s.admit(digest, spec)
	if !leader {
		s.rec.Count("serve.coalesced", 1)
	}
	defer f.leave()
	select {
	case <-f.done:
		return f.body, false, f.err
	case <-reqCtx.Done():
		return nil, false, reqCtx.Err()
	}
}

// admit returns the in-progress flight for digest, or starts one: the
// leader path creates the job context (server-scoped, not request-scoped,
// capped by JobTimeout) and submits the execution to the pool. Admission
// failures finish the flight immediately, so coalesced followers that raced
// onto it observe the same ErrQueueFull/ErrDraining.
func (s *Server) admit(digest string, spec Spec) (*flight, bool) {
	s.group.mu.Lock()
	if f := s.group.flights[digest]; f != nil {
		f.waiters++
		s.group.coalesced++
		s.group.mu.Unlock()
		return f, false
	}
	jobCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	f := &flight{digest: digest, done: make(chan struct{}), cancel: cancel, g: s.group, waiters: 1}
	s.group.flights[digest] = f
	s.group.mu.Unlock()

	if err := s.pool.Submit(func() { s.runJob(jobCtx, f, spec) }); err != nil {
		s.rec.Count("serve.rejected", 1)
		s.group.finish(f, nil, err)
	}
	return f, true
}

// runJob executes one admitted flight on a pool worker and publishes the
// outcome to cache, waiters, and telemetry.
func (s *Server) runJob(ctx context.Context, f *flight, spec Spec) {
	start := time.Now()
	body, err := s.exec.Execute(ctx, spec)
	elapsed := time.Since(start)

	outcome := "ok"
	switch {
	case err == nil:
		s.cache.Put(f.digest, body)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		outcome = "canceled"
	default:
		outcome = "error"
	}
	kind := spec.Kind()
	s.rec.Count("serve.jobs."+string(kind)+"."+outcome, 1)
	s.rec.Time("serve.job."+string(kind), elapsed)
	s.lat.observe(elapsed)
	s.group.finish(f, body, err)
}

// writeJobError maps a do() error onto the HTTP status vocabulary:
// backpressure 429 (+ Retry-After), draining 503, job deadline 504, caller
// gone 408 (best effort — the client usually never reads it), engine
// rejection 422.
func (s *Server) writeJobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// handleHealthz is liveness: the process is up and the mux answers.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics publishes the serve-layer signals as an obs.Report
// ("twistd" experiment): deterministic counters as Det signals, latency
// quantiles and point-in-time gauges as Noisy ones, and the full internal
// counter map as Telemetry — the same shape bench gating consumes, so a
// scraped report feeds obs.Compare unchanged.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rep := s.metricsReport()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// metricsReport builds the single-node obs.Report behind /metrics; the
// fleet endpoint merges one per node (cluster.go).
func (s *Server) metricsReport() *obs.Report {
	params := map[string]string{
		"queue":   strconv.Itoa(s.cfg.Queue),
		"workers": strconv.Itoa(s.cfg.Workers),
		"cache":   strconv.Itoa(s.cfg.CacheEntries),
	}
	if s.cluster != nil {
		params["node"] = s.cluster.Self().ID
		params["version"] = s.cluster.Version()
	}
	rep := obs.NewReport("twistd", params)
	counters := s.mem.Counters()
	row := rep.AddRow("serve")
	var jobs int64
	for name, v := range counters {
		row.DetInt(name, v)
		if len(name) > len("serve.jobs.") && name[:len("serve.jobs.")] == "serve.jobs." {
			jobs += v
		}
	}
	row.DetInt("serve.jobs.total", jobs)
	hits, misses, evictions := s.cache.Counters()
	row.DetInt("serve.cache.entries", int64(s.cache.Len()))
	row.DetInt("serve.cache.evictions", evictions)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	q := s.lat.quantiles(0.50, 0.99)
	row.NoisyVal("serve.cache.hit_ratio", ratio)
	row.NoisyVal("serve.queue.depth", float64(s.pool.Depth()))
	row.NoisyVal("serve.inflight", float64(s.group.InFlight()))
	row.NoisySeconds("serve.job.p50", q[0])
	row.NoisySeconds("serve.job.p99", q[1])
	rep.Telemetry = counters
	return rep
}

// Recorder returns the server's combined recorder: everything the serve
// layer and the engine record flows through it. Exposed so embedding
// programs can snapshot counters without scraping /metrics.
func (s *Server) Recorder() obs.Recorder { return s.rec }

// Counters snapshots the internal telemetry counters.
func (s *Server) Counters() map[string]int64 { return s.mem.Counters() }

// BeginDrain flips the server to draining: /readyz turns 503 and new jobs
// are rejected with ErrDraining, while admitted jobs keep running.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.pool.Close()
	}
}

// Drain begins draining (if not already begun) and waits until every
// admitted job has finished, or until ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	return s.pool.Drain(ctx)
}

// Close releases the server: drains with no grace (jobs already running are
// canceled via the base context) and frees the worker pool. Use Drain first
// for graceful shutdown.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.StopProber()
	}
	s.BeginDrain()
	s.baseStop()
	s.pool.Drain(context.Background())
}
