package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubExecutor is an injectable Executor that counts executions per digest
// and can block on a gate, making admission, coalescing, and drain
// observable without engine runtime.
type stubExecutor struct {
	mu    sync.Mutex
	calls map[string]int
	gate  chan struct{} // when non-nil, Execute blocks here (or on ctx)
	fail  error         // when non-nil, Execute returns it
}

func newStubExecutor() *stubExecutor {
	return &stubExecutor{calls: map[string]int{}}
}

func (e *stubExecutor) Execute(ctx context.Context, s Spec) ([]byte, error) {
	digest := Digest(s)
	e.mu.Lock()
	e.calls[digest]++
	gate := e.gate
	fail := e.fail
	e.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if fail != nil {
		return nil, fail
	}
	return []byte(fmt.Sprintf(`{"digest":%q}`, digest)), nil
}

// total returns the total execution count across digests.
func (e *stubExecutor) total() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, c := range e.calls {
		n += c
	}
	return n
}

// count returns the execution count of one digest.
func (e *stubExecutor) count(digest string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls[digest]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingIdenticalRequests floods the server with identical
// concurrent requests while the (single) execution is blocked: every
// follower must join the leader's flight, the engine must run exactly once,
// and every response must carry the same result bytes.
func TestCoalescingIdenticalRequests(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	stub.gate = make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 2, Queue: 32, Executor: stub})

	const n = 32
	spec := RunSpec{Workload: "TJ", Scale: 64, Seed: 7}
	if err := (&spec).Normalize(); err != nil {
		t.Fatal(err)
	}
	digest := Digest(&spec)

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	errs := make([]error, n)
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			statuses[k], bodies[k], errs[k] = postJobE(ts.URL, KindRun, spec)
		}(k)
	}
	// All n requests target one digest: one becomes leader, the rest join
	// its flight. Wait until every follower is accounted for, then let the
	// single execution finish.
	waitFor(t, "all followers to coalesce", func() bool {
		return s.group.Coalesced() >= n-1
	})
	close(stub.gate)
	wg.Wait()

	if got := stub.count(digest); got != 1 {
		t.Errorf("engine executed %d times for one digest, want 1", got)
	}
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			t.Fatalf("request %d: %v", k, errs[k])
		}
		if statuses[k] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", k, statuses[k], bodies[k])
		}
		env := decodeEnvelope(t, bodies[k])
		if !bytes.Equal(env.Result, []byte(fmt.Sprintf(`{"digest":%q}`, digest))) {
			t.Errorf("request %d: result %s", k, env.Result)
		}
	}
	if got := s.mem.Counter("serve.jobs.run.ok"); got != 1 {
		t.Errorf("serve.jobs.run.ok = %d, want 1", got)
	}
}

// TestConcurrentDistinctRequests runs identical and distinct requests
// together: each distinct digest executes exactly once (coalescing or cache
// — never twice), and every request succeeds.
func TestConcurrentDistinctRequests(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	_, ts := newTestServer(t, Config{Workers: 4, Queue: 128, Executor: stub})

	const distinct = 8
	const perDigest = 6
	var wg sync.WaitGroup
	var failures atomic.Int64
	for d := 0; d < distinct; d++ {
		for r := 0; r < perDigest; r++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				spec := RunSpec{Workload: "TJ", Scale: 64, Seed: int64(d)}
				status, body, err := postJobE(ts.URL, KindRun, spec)
				if err != nil {
					t.Errorf("seed %d: %v", d, err)
					failures.Add(1)
					return
				}
				if status != http.StatusOK {
					t.Errorf("seed %d: status %d: %s", d, status, body)
					failures.Add(1)
				}
			}(d)
		}
	}
	wg.Wait()
	if failures.Load() > 0 {
		return
	}
	for d := 0; d < distinct; d++ {
		spec := RunSpec{Workload: "TJ", Scale: 64, Seed: int64(d)}
		if err := (&spec).Normalize(); err != nil {
			t.Fatal(err)
		}
		if got := stub.count(Digest(&spec)); got != 1 {
			t.Errorf("seed %d executed %d times, want 1", d, got)
		}
	}
	if got := stub.total(); got != distinct {
		t.Errorf("total executions %d, want %d", got, distinct)
	}
}

// TestCacheHitRepeat verifies the second identical request is served from
// the result cache, marked cached, with identical bytes.
func TestCacheHitRepeat(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 16, Executor: stub})

	spec := RunSpec{Workload: "MM", Scale: 64, Seed: 3}
	status, body := postJob(t, ts.URL, KindRun, spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	first := decodeEnvelope(t, body)
	if first.Cached {
		t.Error("first response marked cached")
	}
	status, body = postJob(t, ts.URL, KindRun, spec)
	if status != http.StatusOK {
		t.Fatalf("repeat status %d: %s", status, body)
	}
	second := decodeEnvelope(t, body)
	if !second.Cached {
		t.Error("repeat response not marked cached")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Errorf("cached result differs: %s vs %s", first.Result, second.Result)
	}
	if got := stub.total(); got != 1 {
		t.Errorf("engine executed %d times, want 1", got)
	}
}

// TestCacheLRUEviction exercises the eviction path at a tiny capacity.
func TestCacheLRUEviction(t *testing.T) {
	t.Parallel()
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.Get("a"); !ok || string(got) != "A" {
		t.Errorf("a = %q, %v", got, ok)
	}
	if got, ok := c.Get("c"); !ok || string(got) != "C" {
		t.Errorf("c = %q, %v", got, ok)
	}
	_, _, evictions := c.Counters()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

// TestCacheDisabled verifies a negative capacity disables caching without
// breaking the request path.
func TestCacheDisabled(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 16, CacheEntries: -1, Executor: stub})
	spec := RunSpec{Workload: "PC", Scale: 64, Seed: 1}
	for k := 0; k < 2; k++ {
		status, body := postJob(t, ts.URL, KindRun, spec)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		if env := decodeEnvelope(t, body); env.Cached {
			t.Error("response marked cached with caching disabled")
		}
	}
	if got := stub.total(); got != 2 {
		t.Errorf("engine executed %d times, want 2 (cache disabled)", got)
	}
}

// TestLastWaiterCancelsJob verifies the waiter-refcount teardown: when the
// only request interested in a flight gives up, the job context is
// canceled so the execution stops burning a pool worker.
func TestLastWaiterCancelsJob(t *testing.T) {
	t.Parallel()
	stub := newStubExecutor()
	stub.gate = make(chan struct{}) // never closed: only ctx can unblock
	s, _ := newTestServer(t, Config{Workers: 1, Queue: 4, Executor: stub})

	spec := RunSpec{Workload: "NN", Scale: 64, Seed: 9}
	if err := (&spec).Normalize(); err != nil {
		t.Fatal(err)
	}
	reqCtx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.do(reqCtx, Digest(&spec), &spec)
		errc <- err
	}()
	waitFor(t, "job to start", func() bool { return stub.total() == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("do returned %v, want context.Canceled", err)
	}
	// The stub observes the job context dying and returns; the server
	// records the canceled outcome.
	waitFor(t, "canceled outcome", func() bool {
		return s.mem.Counter("serve.jobs.run.canceled") == 1
	})
}
