package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission errors. The HTTP layer maps ErrQueueFull to 429 + Retry-After
// and ErrDraining to 503; both also propagate to coalesced followers of a
// flight that never got admitted.
var (
	// ErrQueueFull reports that the bounded admission queue was full — the
	// backpressure signal.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining reports that the server has begun graceful shutdown and
	// admits no new jobs.
	ErrDraining = errors.New("serve: draining, not accepting jobs")
)

// pool is the bounded admission queue plus fixed worker set every job
// executes on. The queue bounds memory (a full queue rejects instead of
// growing), the workers bound concurrent engine executions.
type pool struct {
	queue chan func()

	mu     sync.RWMutex
	closed bool

	wg sync.WaitGroup

	depth int64 // queued-but-not-started jobs, for the metrics endpoint
	dmu   sync.Mutex
}

// newPool starts workers goroutines draining a queue of the given capacity.
func newPool(workers, queueCap int) *pool {
	p := &pool{queue: make(chan func(), queueCap)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				p.dmu.Lock()
				p.depth--
				p.dmu.Unlock()
				job()
			}
		}()
	}
	return p
}

// Submit enqueues a job without blocking: a full queue returns ErrQueueFull
// and a draining pool ErrDraining. The RLock makes Submit-vs-Close safe:
// Close takes the write lock, so no Submit can be between its closed check
// and its channel send when the channel closes.
func (p *pool) Submit(job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.queue <- job:
		p.dmu.Lock()
		p.depth++
		p.dmu.Unlock()
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth reports the number of admitted jobs not yet started.
func (p *pool) Depth() int64 {
	p.dmu.Lock()
	defer p.dmu.Unlock()
	return p.depth
}

// Close stops admission. Idempotent; safe to race with Submit.
func (p *pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.queue)
}

// Drain closes admission and waits for every admitted job to finish, or for
// ctx. Jobs still queued keep running to completion — graceful shutdown
// completes admitted work rather than dropping it.
func (p *pool) Drain(ctx context.Context) error {
	p.Close()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
