package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"twist/internal/cluster"
	"twist/internal/obs"
)

// EngineVersion is the engine/schema version stamp of the serving layer:
// it prefixes every fleet routing key and rides the forwarding headers, so
// bumping it invalidates the fleet's replicated result-cache tier without
// coordination — nodes on different versions compute different placements
// and refuse each other's hops, and no stale bytes are ever admitted
// (DESIGN.md §4.14). Bump it whenever a job result schema or the engine's
// deterministic outputs change.
const EngineVersion = "1"

// This file is twistd's fleet mode (DESIGN.md §4.14): when Config.Cluster
// is set, every job request is routed by its canonical spec digest through
// the consistent-hash ring. The owner (first live replica) executes and
// populates its cache; every other node forwards one hop — with the loop
// guard forbidding a second — and admits the returned bytes into its own
// cache, which is what makes the result tier replicated. Forward failures
// fall through the replica list and finally degrade to local serving, so a
// fully partitioned node still answers every request correctly (the
// responses are deterministic; only the coalescing locality is lost).

// clusterServe is the fleet-mode fork of handleJob, called once the spec is
// normalized and digested. It returns true when it wrote the response
// (shed, version-skew reject, successful forward, or a relayed
// deterministic peer error) and false when the request must be served
// locally (we own it, it arrived forwarded, or every replica is down).
func (s *Server) clusterServe(w http.ResponseWriter, r *http.Request, kind Kind, start time.Time, digest string, spec Spec) bool {
	// Stamp every fleet response: the transport rejects version-skewed
	// bytes, and the node header lets clients (and the smoke test) see who
	// actually served.
	w.Header().Set(cluster.HeaderVersion, s.cluster.Version())
	w.Header().Set(cluster.HeaderNode, s.cluster.Self().ID)

	if from := r.Header.Get(cluster.HeaderForwarded); from != "" {
		// Loop guard: a forwarded request is served locally no matter what
		// the ring says — at most one hop per request, even when nodes
		// disagree about ownership mid-reconfiguration.
		if v := r.Header.Get(cluster.HeaderVersion); v != "" && v != s.cluster.Version() {
			s.rec.Count("serve.fleet.version_skew", 1)
			writeError(w, http.StatusConflict, fmt.Errorf(
				"serve: engine version skew: this node %q, forwarder %q sent %q",
				s.cluster.Version(), from, v))
			return true
		}
		s.rec.Count("serve.fleet.received", 1)
		return false
	}

	// Cluster-wide admission control: external requests are shed once the
	// fleet-wide queue depth (local + observed live peers) crosses the
	// bound. Forwarded requests were already charged at their entry node.
	if s.cluster.ShouldShed(s.pool.Depth()) {
		s.rec.Count("serve.fleet.shed", 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf(
			"serve: fleet queue depth %d at bound, shedding", s.cluster.FleetQueueDepth(s.pool.Depth())))
		return true
	}

	// Replica-cache read path: a resident digest — populated as owner or
	// admitted from an earlier forward — is served locally. This is what
	// makes the admitted tier a replica: once the bytes landed here, the
	// owner (and the network to it) is no longer needed to serve them.
	if s.cache.Contains(digest) {
		s.rec.Count("serve.fleet.replica_hit", 1)
		return false
	}

	body, err := json.Marshal(spec)
	if err != nil {
		// Specs are plain data; Marshal cannot fail on them (see Digest).
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	for _, peer := range s.cluster.Route(digest) {
		if peer.ID == s.cluster.Self().ID {
			// We are the first live replica: execute and populate locally.
			s.rec.Count("serve.fleet.owner_local", 1)
			return false
		}
		res, err := s.cluster.Forward(r.Context(), peer, string(kind), body)
		if err != nil {
			s.rec.Count("serve.fleet.forward.fail", 1)
			continue
		}
		switch {
		case res.Status == http.StatusOK:
			if s.admitForwarded(w, kind, start, digest, peer.ID, res.Body) {
				return true
			}
			s.rec.Count("serve.fleet.forward.fail", 1)
		case res.Status == http.StatusConflict || res.Status == http.StatusTooManyRequests:
			// The peer is unusable for this hop (version skew, overload)
			// but the request itself may still succeed elsewhere.
			s.rec.Count("serve.fleet.forward.fail", 1)
		default:
			// Any other non-2xx is a deterministic verdict about the spec
			// (bad workload, illegal schedule, engine rejection): serving
			// locally would reproduce it byte for byte, so relay as-is.
			s.rec.Count("serve.fleet.relayed", 1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.Status)
			w.Write(res.Body)
			return true
		}
	}
	// Every replica was unreachable (or we were not in the replica set and
	// all of them failed): degrade to local-only serving. Responses stay
	// bit-identical — determinism is the partition tolerance.
	s.rec.Count("serve.fleet.degraded", 1)
	return false
}

// admitForwarded finishes a successful hop: decode the peer's envelope,
// admit the result bytes into the local cache (the follower half of the
// replicated tier — the owner populated its own on execution), and write
// this node's envelope around the identical bytes. Returns false when the
// peer's response is unusable (undecodable or for the wrong digest), which
// the caller treats as a failed hop.
func (s *Server) admitForwarded(w http.ResponseWriter, kind Kind, start time.Time, digest, peerID string, peerBody []byte) bool {
	var env envelope
	if err := json.Unmarshal(peerBody, &env); err != nil || env.Digest != digest {
		return false
	}
	s.cache.Put(digest, env.Result)
	s.rec.Count("serve.cache.admit.forwarded", 1)
	s.rec.Count("serve.fleet.forwarded", 1)
	if env.Cached {
		s.rec.Count("serve.fleet.forward.hit", 1)
	} else {
		s.rec.Count("serve.fleet.forward.miss", 1)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(envelope{
		Kind:      kind,
		Digest:    digest,
		Cached:    env.Cached,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Result:    env.Result,
		Node:      env.Node,
		Via:       s.cluster.Self().ID,
	})
	return true
}

// nodeID is this server's fleet identity ("" outside fleet mode, which
// keeps single-node envelopes byte-identical to their pre-fleet shape).
func (s *Server) nodeID() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.Self().ID
}

// handleClusterz publishes this node's health/load snapshot for peer
// probers: identity, version stamp, queue depth, in-flight digests, and
// drain state. Draining nodes answer 503 so peers route around them before
// their forwards start bouncing off ErrDraining.
func (s *Server) handleClusterz(w http.ResponseWriter, _ *http.Request) {
	st := cluster.NodeStatus{
		ID:         s.cluster.Self().ID,
		Version:    s.cluster.Version(),
		QueueDepth: s.pool.Depth(),
		InFlight:   s.group.InFlight(),
		Draining:   s.draining.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	if st.Draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

// handleFleetMetrics publishes the fleet-level aggregation: this node's
// report merged with every live peer's scraped /metrics (per-node rows plus
// summed "fleet/serve" counters), with the fleet hit ratio split into its
// local/remote components and the forward ratio computed from the summed
// counters (averaging per-node ratios would weight idle nodes equally with
// busy ones).
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.cluster.FleetReport(r.Context(), s.metricsReport())
	for i := range rep.Rows {
		if rep.Rows[i].Name == "fleet/serve" {
			addFleetRatios(&rep.Rows[i])
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// addFleetRatios derives the fleet-level ratios from a merged counter row:
//
//	hit_ratio.local   — requests answered from the serving node's own cache
//	hit_ratio.remote  — forwarded requests answered from the owner's cache
//	forward_ratio     — share of routed requests that crossed a hop
func addFleetRatios(row *obs.Row) {
	get := func(name string) float64 {
		v, err := strconv.ParseInt(row.Det[name], 10, 64)
		if err != nil {
			return 0
		}
		return float64(v)
	}
	ratio := func(num, den float64) float64 {
		if den <= 0 {
			return 0
		}
		return num / den
	}
	hits, misses := get("serve.cache.hit"), get("serve.cache.miss")
	fhit, fmiss := get("serve.fleet.forward.hit"), get("serve.fleet.forward.miss")
	routed := get("serve.fleet.forwarded") + get("serve.fleet.owner_local") +
		get("serve.fleet.received") + get("serve.fleet.degraded")
	row.NoisyVal("serve.fleet.hit_ratio.local", ratio(hits, hits+misses))
	row.NoisyVal("serve.fleet.hit_ratio.remote", ratio(fhit, fhit+fmiss))
	row.NoisyVal("serve.fleet.forward_ratio", ratio(get("serve.fleet.forwarded"), routed))
}
