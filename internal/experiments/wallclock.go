package experiments

import (
	"fmt"
	"time"

	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/workloads"
)

// The engine wall-clock study (DESIGN.md §4.13): the iterative explicit-stack
// lowering exists to close the gap between the paper's hand-lowered C++
// kernels and this repository's recursive Go engine. Its acceptance signal is
// deterministic — the engine-overhead counter nest.Exec.EngineOps (activation
// records for the recursive engine, drain-loop steps for the iterative one)
// must drop by >= 30% on twisted schedules — while the wall clocks ride along
// as the noisy corroborating evidence, like every other wall column in this
// package.

// WallclockRow is one benchmark of the engine comparison, run under the
// twisted schedule on both visit engines.
type WallclockRow struct {
	Bench string

	// RecursiveOps/IterativeOps are the deterministic engine-overhead
	// counters; ReductionPct is their relative drop in percent (the gated
	// signal: >= 30 on every suite benchmark).
	RecursiveOps int64
	IterativeOps int64
	ReductionPct float64

	// RecursiveWall/IterativeWall are best-of-repeats wall clocks;
	// WallSpeedup is recursive/iterative. Noisy — host- and
	// runtime-dependent, never gated strictly.
	RecursiveWall time.Duration
	IterativeWall time.Duration
	WallSpeedup   float64

	// Checksum is the benchmark result checksum, identical across engines by
	// the bit-identity contract (verified before the row is returned, along
	// with full Stats equality).
	Checksum uint64
}

// Wallclock runs the six suite benchmarks under the twisted schedule on the
// recursive and the iterative visit engine, erring unless the two engines
// produce identical checksums and bit-identical Stats, and reports the
// engine-ops reduction plus both wall clocks.
func Wallclock(scale int, seed int64, repeats int) ([]WallclockRow, error) {
	defer obs.Span(rec, "experiments.wallclock")()
	var rows []WallclockRow
	for _, in := range workloads.Suite(scale, seed) {
		recStats, recOps, err := in.RunSeq(nil, nest.Twisted(), nil)
		if err != nil {
			return nil, err
		}
		recSum := in.Checksum()
		iterStats, iterOps, err := in.RunSeq(nil, nest.Twisted(),
			func(e *nest.Exec) { e.Engine = nest.EngineIterative })
		if err != nil {
			return nil, err
		}
		iterSum := in.Checksum()
		if iterSum != recSum {
			return nil, fmt.Errorf("wallclock: %s checksum diverges between engines: recursive %x, iterative %x",
				in.Name, recSum, iterSum)
		}
		if iterStats != recStats {
			return nil, fmt.Errorf("wallclock: %s stats diverge between engines:\n iter %v\n rec  %v",
				in.Name, iterStats, recStats)
		}
		dRec, _, _ := runWallOn(in, nest.Twisted(), nest.EngineRecursive, repeats)
		dIter, _, _ := runWallOn(in, nest.Twisted(), nest.EngineIterative, repeats)
		rec.Count("wallclock."+in.Name+".recursive_ops", recOps)
		rec.Count("wallclock."+in.Name+".iterative_ops", iterOps)
		rec.Time("wallclock."+in.Name+".recursive", dRec)
		rec.Time("wallclock."+in.Name+".iterative", dIter)
		rows = append(rows, WallclockRow{
			Bench:         in.Name,
			RecursiveOps:  recOps,
			IterativeOps:  iterOps,
			ReductionPct:  100 * (1 - float64(iterOps)/float64(recOps)),
			RecursiveWall: dRec,
			IterativeWall: dIter,
			WallSpeedup:   float64(dRec) / float64(dIter),
			Checksum:      recSum,
		})
	}
	return rows, nil
}
