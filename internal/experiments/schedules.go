package experiments

import (
	"fmt"

	"twist/internal/nest"
	"twist/internal/oracle"
	"twist/internal/transform/algebra"
	"twist/internal/workloads"
)

// ScheduleRow is one (workload, schedule) cell of the schedule-algebra
// enumeration: the canonical schedule expression, its legality verdict
// against the workload's dependence witnesses, and — for legal schedules —
// the oracle verdict of its engine lowering.
type ScheduleRow struct {
	// Workload is the benchmark abbreviation.
	Workload string
	// Schedule is the canonical schedule expression.
	Schedule string
	// Variant is the engine lowering (Schedule.Variant) the oracle checks.
	Variant string
	// Legal reports the legality verdict.
	Legal bool
	// Witness is the violated dependence witness for an illegal schedule.
	Witness string
	// OracleOK reports the oracle verdict for a legal schedule (always
	// false for illegal ones, which are never run).
	OracleOK bool
}

// Schedules enumerates the schedule algebra over the suite: every canonical
// inline-free schedule reachable from the identity (algebra.Complete with
// legality disabled), classified per workload by the legality checker, with
// each legal schedule's engine lowering differentially checked against the
// workload's golden trace. An error means a *legal* schedule failed the
// oracle — the algebra's soundness contract is broken; illegal schedules
// are reported, not run.
func Schedules(scale int, seed int64) ([]ScheduleRow, error) {
	// The candidate set: completions of the identity with no witnesses, so
	// nothing is filtered; inline is excluded because the engine executes
	// visit orders, not generated code.
	candidates := algebra.Complete(algebra.Identity(), algebra.WitnessSet{},
		algebra.CompleteOptions{Cutoffs: []int{0, 64}, MaxInline: -1})

	var rows []ScheduleRow
	for _, in := range workloads.Suite(scale, seed) {
		irregular, err := workloads.Irregular(in.Name)
		if err != nil {
			return nil, err
		}
		ws := algebra.ForNest(irregular)
		spec := in.OracleSpec()
		g, err := oracle.Capture(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", in.Name, err)
		}
		for _, s := range candidates {
			row := ScheduleRow{
				Workload: in.Name,
				Schedule: s.String(),
				Variant:  s.Variant().String(),
			}
			if v := s.Check(ws); v != nil {
				row.Witness = v.Witness.String()
			} else {
				row.Legal = true
				verdict := g.CheckVariant(spec, s.Variant(), nest.FlagCounter, true)
				row.OracleOK = verdict.OK
				if !verdict.OK {
					return rows, fmt.Errorf("%s: legal schedule %s failed the oracle: %v",
						in.Name, s, verdict.Err())
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
