package experiments

import (
	"fmt"

	"twist/internal/layout"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/workloads"
)

// --- Layout × schedule sweep (ROADMAP item 3; DESIGN.md §4.12) --------------

// LayoutRow is one (benchmark, schedule, layout) cell of the layout sweep:
// the simulated L2/L3 miss rates of the schedule's traversal with node
// addresses generated under the layout. Misses and accesses are the exact
// integer signals behind the rates — the bijection argument of §4.12 makes
// Accesses identical across layouts of one (benchmark, schedule) cell, so
// miss-count comparisons between layouts are exact, not float-rounded.
type LayoutRow struct {
	Bench    string
	Schedule string
	Layout   string
	L2, L3   float64
	L2Misses int64
	L3Misses int64
	Accesses int64
}

// layoutSchedules is the schedule axis of the sweep: the paper's baseline
// and its headline transformation. The layout×schedule product shows the
// spatial axis compounding with the temporal one.
func layoutSchedules() []nest.Variant {
	return []nest.Variant{nest.Original(), nest.Twisted()}
}

// LayoutSweep measures the layout × schedule product over the six
// benchmarks: for every schedule in {original, twisted} and every arena
// layout (buildorder, hotcold, preorder, schedule, veb), the traced
// traversal runs through the streaming cache simulation — single-sink
// sequential order, so every reported rate is deterministic — under the
// warmup/measure protocol of missRates. The schedule-order layout is
// realized per schedule: its first-touch recording run uses the same
// variant the cell measures, which is what makes the layout
// "schedule-aware". simWorkers sizes the simulator engine only (stats are
// bit-identical either way; DESIGN.md §4.8).
func LayoutSweep(scale int, seed int64, simWorkers int) ([]LayoutRow, error) {
	defer obs.Span(rec, "experiments.layout")()
	var rows []LayoutRow
	for _, in := range workloads.Suite(scale, seed) {
		for _, v := range layoutSchedules() {
			for _, kind := range layout.Kinds() {
				lin, err := in.UnderLayout(kind, v)
				if err != nil {
					return nil, fmt.Errorf("layout: %s/%v/%v: %w", in.Name, v, kind, err)
				}
				st, err := missRatesWith(lin, v, 1, simWorkers)
				if err != nil {
					return nil, fmt.Errorf("layout: %s/%v/%v: %w", in.Name, v, kind, err)
				}
				rows = append(rows, LayoutRow{
					Bench:    in.Name,
					Schedule: v.String(),
					Layout:   kind.String(),
					L2:       levelRate(st, 1),
					L3:       levelRate(st, 2),
					L2Misses: levelMisses(st, 1),
					L3Misses: levelMisses(st, 2),
					Accesses: levelAccesses(st, 0),
				})
			}
		}
	}
	return rows, nil
}

// levelMisses returns the miss count of level li (0 when the geometry is
// shallower), the exact integer behind levelRate.
func levelMisses(st []memsim.LevelStats, li int) int64 {
	if li >= len(st) {
		return 0
	}
	return st[li].Misses
}

// levelAccesses returns the access count of level li (0 when the geometry
// is shallower).
func levelAccesses(st []memsim.LevelStats, li int) int64 {
	if li >= len(st) {
		return 0
	}
	return st[li].Accesses
}

// LayoutWins counts the benchmarks on which a *reordering* layout
// (schedule-order or vEB) has strictly fewer L2 or L3 misses than the
// build-order baseline under at least one swept schedule — the acceptance
// signal of the layout subsystem, committed in BENCH_layout.json and gated
// in CI. Comparing integer miss counts is exact because every layout of a
// (benchmark, schedule) cell simulates the identical number of accesses.
func LayoutWins(rows []LayoutRow) int {
	type cell struct{ bench, sched string }
	base := make(map[cell]LayoutRow)
	for _, r := range rows {
		if r.Layout == layout.BuildOrder.String() {
			base[cell{r.Bench, r.Schedule}] = r
		}
	}
	won := make(map[string]bool)
	for _, r := range rows {
		if r.Layout != layout.Schedule.String() && r.Layout != layout.VEB.String() {
			continue
		}
		b, ok := base[cell{r.Bench, r.Schedule}]
		if !ok {
			continue
		}
		if r.L2Misses < b.L2Misses || r.L3Misses < b.L3Misses {
			won[r.Bench] = true
		}
	}
	return len(won)
}
