package experiments

import "testing"

func TestAblationFlagsCounterNeverClears(t *testing.T) {
	rows := AblationFlags(2048, 0.4, 7, 1)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	sets, counter := rows[0], rows[1]
	if sets.FlagSets == 0 || sets.FlagClears != sets.FlagSets {
		t.Fatalf("set mode bookkeeping: %+v", sets)
	}
	if counter.FlagClears != 0 {
		t.Fatalf("counter mode cleared %d flags", counter.FlagClears)
	}
	if counter.Ops >= sets.Ops {
		t.Fatalf("counter mode ops %d not below set mode %d", counter.Ops, sets.Ops)
	}
}

func TestAblationSubtreeReducesIterations(t *testing.T) {
	rows := AblationSubtree(2048, 0.4, 7, 1)
	off, on := rows[0], rows[1]
	if off.Enabled || !on.Enabled {
		t.Fatalf("row order: %+v", rows)
	}
	if on.SubtreeCuts == 0 {
		t.Fatal("subtree truncation never fired")
	}
	if on.Iterations >= off.Iterations {
		t.Fatalf("subtree truncation did not reduce iterations: %d vs %d", on.Iterations, off.Iterations)
	}
}

func TestAblationStrideSpatialPacking(t *testing.T) {
	rows := AblationStride(4096, []int{64, 16}, 3)
	full, packed := rows[0], rows[1]
	if full.Stride != 64 || packed.Stride != 16 {
		t.Fatalf("row order: %+v", rows)
	}
	// One line per node: baseline thrashes (working set 2x the LLC).
	if full.BaseL3 < 0.5 {
		t.Fatalf("stride-64 baseline L3 rate %v; expected thrash", full.BaseL3)
	}
	// Packing 4 nodes per line shrinks the working set 4x (now ~LLC sized):
	// absolute baseline misses must drop substantially.
	if packed.BaseL3Misses*2 > full.BaseL3Misses {
		t.Fatalf("packing did not reduce baseline L3 misses: %d vs %d",
			packed.BaseL3Misses, full.BaseL3Misses)
	}
	// Twisting still wins (or ties) within every stride.
	for _, r := range rows {
		if r.TwistL3Misses > r.BaseL3Misses {
			t.Fatalf("stride %d: twisting raised misses: %+v", r.Stride, r)
		}
	}
}

func TestKAryOctreeExtension(t *testing.T) {
	rows := KAryOctree(4096, 0.3, 7)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	want := rows[0].Count
	if want == 0 {
		t.Fatal("degenerate octree PC")
	}
	byName := map[string]KAryRow{}
	for _, r := range rows {
		if r.Count != want {
			t.Fatalf("%s: count %d, want %d", r.Schedule, r.Count, want)
		}
		byName[r.Schedule] = r
	}
	orig, inter := byName["original"], byName["interchanged"]
	tw, cut := byName["twisted"], byName["twisted-cutoff"]
	if inter.Iterations <= orig.Iterations {
		t.Fatalf("interchange did not add iterations: %+v", rows)
	}
	// On bushy 8-ary trees parameterless twisting flips at every one of the
	// many children, so its iteration overhead can exceed interchange's on
	// denser spaces; it must still stay within a small factor of the
	// original, and the §7.1 cutoff must recover near-original work.
	if tw.Iterations > 2*orig.Iterations {
		t.Fatalf("octree twisting iterations %d more than 2x original %d", tw.Iterations, orig.Iterations)
	}
	if float64(cut.Iterations) > 1.1*float64(orig.Iterations) {
		t.Fatalf("cutoff twisting iterations %d not near original %d", cut.Iterations, orig.Iterations)
	}
	if tw.Twists == 0 {
		t.Fatal("octree twisting never twisted")
	}
	// Locality: the octree baseline streams the reference tree per query
	// (L2 ~ 90%+); both twisted variants must slash it.
	if tw.L2 >= orig.L2/2 || cut.L2 >= orig.L2/2 {
		t.Fatalf("octree twisting did not improve L2: %+v", rows)
	}
}
