package experiments

import (
	"testing"

	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/workloads"
)

// The acceptance differential for the parallel simulator on real traces: for
// every benchmark in the suite, the set-partitioned engine at several worker
// counts produces per-level stats bit-identical to the sequential engine on
// the same twisted-schedule trace. (memsim's own differential tests cover
// synthetic traces; this one covers the six workloads' actual access
// patterns — pointer-chasing cross products, truncated traversals, k-d
// sweeps.)
func TestShardedSimMatchesSequentialOnSuite(t *testing.T) {
	for _, in := range workloads.Suite(256, 17) {
		// Materialize the twisted trace once so every engine consumes the
		// byte-identical address sequence.
		var trace []memsim.Addr
		in.Reset()
		e := nest.MustNew(in.TracedSpec(func(a memsim.Addr) { trace = append(trace, a) }))
		e.Run(nest.Twisted())
		if len(trace) == 0 {
			t.Fatalf("%s produced an empty trace", in.Name)
		}

		seq := newSim(1)
		seq.AccessBatch(trace)
		want := seq.Stats()
		seq.Close()

		for _, w := range []int{2, 4, 8} {
			sim := newSim(w)
			sim.AccessBatch(trace)
			got := sim.Stats()
			sim.Close()
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s: W=%d level %s stats %+v, want %+v",
						in.Name, w, want[k].Name, got[k], want[k])
				}
			}
		}
	}
}
