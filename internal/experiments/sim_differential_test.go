package experiments

import (
	"fmt"
	"testing"

	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/workloads"
)

// The acceptance differential for the parallel simulator on real traces: for
// every benchmark in the suite, the set-partitioned engine at several worker
// counts produces per-level stats bit-identical to the sequential engine on
// the same twisted-schedule trace. (memsim's own differential tests cover
// synthetic traces; this one covers the six workloads' actual access
// patterns — pointer-chasing cross products, truncated traversals, k-d
// sweeps.) Table-driven: one parallel subtest per bench, materializing its
// own trace, with a nested subtest per worker count.
func TestShardedSimMatchesSequentialOnSuite(t *testing.T) {
	suiteNames := []string{"TJ", "MM", "PC", "NN", "KNN", "VP"}
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := workloads.Suite(256, 17)[k]
			// Materialize the twisted trace once so every engine consumes the
			// byte-identical address sequence.
			var trace []memsim.Addr
			in.Reset()
			e := nest.MustNew(in.TracedSpec(func(a memsim.Addr) { trace = append(trace, a) }))
			e.Run(nest.Twisted())
			if len(trace) == 0 {
				t.Fatal("empty trace")
			}

			seq := newSim(1)
			seq.AccessBatch(trace)
			want := seq.Stats()
			seq.Close()

			for _, w := range []int{2, 4, 8} {
				w := w
				t.Run(fmt.Sprintf("W=%d", w), func(t *testing.T) {
					sim := newSim(w)
					sim.AccessBatch(trace)
					got := sim.Stats()
					sim.Close()
					for k := range want {
						if got[k] != want[k] {
							t.Fatalf("level %s stats %+v, want %+v", want[k].Name, got[k], want[k])
						}
					}
				})
			}
		})
	}
}
