package experiments

import (
	"strings"
	"testing"
)

// The schedule-algebra enumeration is itself an acceptance check (a legal
// schedule failing the oracle is an error); this test pins its shape: the
// regular workloads accept every candidate, the irregular ones reject
// exactly the unflagged twists with the outer-dependent-truncation witness,
// and every legal row is oracle-verified.
func TestSchedulesEnumeration(t *testing.T) {
	t.Parallel()
	rows, err := Schedules(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	perWorkload := make(map[string][]ScheduleRow)
	for _, r := range rows {
		perWorkload[r.Workload] = append(perWorkload[r.Workload], r)
		if r.Legal != r.OracleOK {
			t.Errorf("%s %s: legal=%v but oracle_ok=%v", r.Workload, r.Schedule, r.Legal, r.OracleOK)
		}
		if r.Legal && r.Witness != "" {
			t.Errorf("%s %s: legal row carries witness %q", r.Workload, r.Schedule, r.Witness)
		}
	}
	if len(perWorkload) != 6 {
		t.Fatalf("enumerated %d workloads, want 6", len(perWorkload))
	}
	for name, wrows := range perWorkload {
		if len(wrows) != 8 {
			t.Errorf("%s: %d candidates, want 8 (cutoffs {0,64})", name, len(wrows))
		}
		var illegal []ScheduleRow
		for _, r := range wrows {
			if !r.Legal {
				illegal = append(illegal, r)
			}
		}
		switch name {
		case "TJ", "MM":
			if len(illegal) != 0 {
				t.Errorf("%s: regular space rejected %d schedules", name, len(illegal))
			}
		default:
			if len(illegal) != 3 {
				t.Errorf("%s: irregular space rejected %d schedules, want 3 (the unflagged twists)", name, len(illegal))
			}
			for _, r := range illegal {
				if strings.Contains(r.Schedule, "flagged") {
					t.Errorf("%s: flagged schedule %s rejected", name, r.Schedule)
				}
				if !strings.Contains(r.Witness, "outer-dependent-truncation") {
					t.Errorf("%s %s: witness %q, want outer-dependent-truncation", name, r.Schedule, r.Witness)
				}
			}
		}
	}
}
