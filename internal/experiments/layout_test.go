package experiments

import (
	"testing"

	"twist/internal/layout"
	"twist/internal/workloads"
)

// TestLayoutSweepShape checks the sweep's structure and the acceptance
// signal at a small scale: six benchmarks × two schedules × five layouts,
// access counts identical across layouts of a cell (the §4.12 bijection
// argument), MM rows identical across layouts (matrix-only trace), and at
// least two benchmarks won by a reordering layout.
func TestLayoutSweepShape(t *testing.T) {
	const scale, seed = 512, 1
	rows, err := LayoutSweep(scale, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	nKinds := len(layout.Kinds())
	want := len(workloads.Suite(scale, seed)) * len(layoutSchedules()) * nKinds
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	type cell struct{ bench, sched string }
	accesses := map[cell]int64{}
	for _, r := range rows {
		if r.Accesses <= 0 {
			t.Fatalf("%s/%s/%s: no accesses", r.Bench, r.Schedule, r.Layout)
		}
		c := cell{r.Bench, r.Schedule}
		if a, ok := accesses[c]; ok && a != r.Accesses {
			t.Errorf("%s/%s: access count varies across layouts (%d vs %d)", r.Bench, r.Schedule, a, r.Accesses)
		}
		accesses[c] = r.Accesses
	}
	// MM traces only matrix data, so every layout of an MM cell must report
	// identical miss counts.
	mm := map[string][2]int64{}
	for _, r := range rows {
		if r.Bench != "MM" {
			continue
		}
		m := [2]int64{r.L2Misses, r.L3Misses}
		if b, ok := mm[r.Schedule]; ok && b != m {
			t.Errorf("MM/%s: misses vary across layouts (%v vs %v)", r.Schedule, b, m)
		}
		mm[r.Schedule] = m
	}
	if wins := LayoutWins(rows); wins < 2 {
		t.Fatalf("LayoutWins = %d, want >= 2 (acceptance signal)", wins)
	}
}
