// Package experiments regenerates every table and figure of the paper's
// evaluation (§6, §7.1). Each Fig*/Tbl* function runs the corresponding
// workloads under the relevant schedules and returns the rows the paper
// plots; cmd/nestbench renders them as text tables, and EXPERIMENTS.md
// records paper-vs-measured values.
//
// Deterministic signals (reuse-distance CDFs, simulated miss rates,
// operation counts, iteration counts) are the primary reproduction; wall
// clock is also measured for the speedup figures but is subject to host and
// Go-runtime noise (DESIGN.md §1).
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/tree"
	"twist/internal/workloads"
)

// rec receives all experiment telemetry; it is never nil.
var rec obs.Recorder = obs.Nop()

// SetRecorder routes experiment telemetry — per-figure phase wall clocks,
// executor counters from parallel runs, and per-level simulated-cache
// hit/miss/eviction counts — into r (nil restores the discarding default).
// Call it before running experiments; it must not be called concurrently
// with one.
func SetRecorder(r obs.Recorder) {
	if r == nil {
		r = obs.Nop()
	}
	rec = r
}

// scaledLevels is the default simulated geometry: 2K/8-way L1, 16K/8-way
// L2, 128K/16-way L3. The paper's machine had 32K/256K/20M (ratios 1:8:640);
// the scaled-down geometry (1:8:64) reaches the paper's "working set exceeds
// the LLC" regime at laptop-scale inputs while keeping trace lengths
// tractable.
func scaledLevels() []memsim.CacheConfig {
	return []memsim.CacheConfig{
		{Name: "L1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 8},
		{Name: "L2", SizeBytes: 16 << 10, LineBytes: 64, Ways: 8},
		{Name: "L3", SizeBytes: 128 << 10, LineBytes: 64, Ways: 16},
	}
}

// simLevels is the geometry every simulated miss-rate experiment uses.
var simLevels = scaledLevels()

// SetGeometry replaces the simulated cache geometry for subsequent
// experiments (nil restores the scaled default). cmd/nestbench wires its
// -geometry flag here; like SetRecorder, it must not be called concurrently
// with a running experiment.
func SetGeometry(levels []memsim.CacheConfig) {
	if levels == nil {
		levels = scaledLevels()
	}
	simLevels = levels
}

// Geometry returns a copy of the cache levels the simulated experiments
// currently run against.
func Geometry() []memsim.CacheConfig {
	return append([]memsim.CacheConfig(nil), simLevels...)
}

// GeometryString renders the current geometry in memsim.ParseGeometry form —
// the value nestbench records in BENCH report params so a committed baseline
// pins the simulated hierarchy it was measured on.
func GeometryString() string { return memsim.FormatGeometry(simLevels) }

// SimHierarchy returns a fresh sequential simulator over the current
// geometry (see SetGeometry). Harness code that wants the parallel engine
// goes through memsim.New with Config.SimWorkers instead, as newSim does.
func SimHierarchy() memsim.Simulator {
	return newSim(1)
}

// newSim builds a simulator over the current geometry: sequential for
// simWorkers <= 1, set-partitioned parallel otherwise (bit-identical stats
// either way; DESIGN.md §4.8). Callers own the Close.
func newSim(simWorkers int) memsim.Simulator {
	return memsim.MustNew(memsim.Config{Levels: simLevels, SimWorkers: simWorkers})
}

// levelRate returns the miss rate of level li, or 0 when the configured
// geometry has fewer levels (a custom -geometry may be shallower than the
// default three).
func levelRate(st []memsim.LevelStats, li int) float64 {
	if li >= len(st) {
		return 0
	}
	return st[li].MissRate()
}

// time runs f repeats times with the GC quiesced and returns the best
// wall-clock duration.
func timeBest(repeats int, f func()) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	best := time.Duration(1<<63 - 1)
	for k := 0; k < repeats; k++ {
		runtime.GC()
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// runWall times variant v of instance in on the default recursive engine and
// returns (duration, checksum).
func runWall(in *workloads.Instance, v nest.Variant, repeats int) (time.Duration, uint64) {
	d, sum, _ := runWallOn(in, v, nest.EngineRecursive, repeats)
	return d, sum
}

// runWallOn times variant v of instance in on the given visit engine and
// returns (duration, checksum, engine ops). The engine-ops counter is
// deterministic; the duration is the noisy signal.
func runWallOn(in *workloads.Instance, v nest.Variant, eng nest.Engine, repeats int) (time.Duration, uint64, int64) {
	var sum uint64
	var ops int64
	d := timeBest(repeats, func() {
		_, engOps, err := in.RunSeq(nil, v, func(e *nest.Exec) { e.Engine = eng })
		if err != nil {
			panic(err) // unreachable: a nil ctx never cancels
		}
		ops = engOps
		sum = in.Checksum()
	})
	return d, sum, ops
}

// missRates runs a traced execution of variant v through a fresh simulated
// hierarchy and returns the per-level stats. The trace is replayed once as a
// warmup before measuring, so compulsory cold misses do not distort the
// steady-state rates — matching the regime the paper's hardware counters
// observe on multi-hour runs (note Fig 9's remark that compulsory misses are
// only noticeable at the very smallest inputs).
func missRates(in *workloads.Instance, v nest.Variant) []memsim.LevelStats {
	st, err := missRatesWith(in, v, 1, 1)
	if err != nil {
		panic(err) // unreachable: the sequential path cannot fail
	}
	return st
}

// missRatesWith is missRates with two worker dimensions, built on the memsim
// streaming pipeline — the simulation holds O(cache geometry + workers·batch)
// memory regardless of trace length, instead of materializing the trace.
//
// workers drives the traced execution: with workers <= 1 a single Sink
// preserves the exact sequential access order, so the stats are bit-identical
// to the eager flow. With more workers, each executor worker emits into its
// own Sink and the Stream interleaves full batches in completion order: the
// merge mode, modeling the workers sharing one cache hierarchy (the
// interleaving — like real shared-cache timing — is not deterministic, but
// every access is simulated exactly once).
//
// simWorkers drives the simulator consuming the trace: <= 1 sequential,
// > 1 the set-partitioned parallel engine — stats are bit-identical either
// way for the same delivered trace (DESIGN.md §4.8), so the dimension buys
// simulation throughput without perturbing any deterministic signal.
//
// A Stream is single-shot (Close flushes and seals it), so each of the two
// runs — warmup then measure — builds a fresh Stream over the one persistent
// simulator; ResetStats between them implements the warmup/measure protocol.
func missRatesWith(in *workloads.Instance, v nest.Variant, workers, simWorkers int) ([]memsim.LevelStats, error) {
	sim := newSim(simWorkers)
	defer sim.Close()
	var last *memsim.Stream
	run := func() error {
		st := memsim.NewStream(sim, 0)
		last = st
		if workers <= 1 {
			_, _, err := in.RunSink(nil, v, st.Sink(), nil)
			st.Close()
			return err
		}
		in.Reset()
		sinks := make([]*memsim.Sink, workers)
		for w := range sinks {
			sinks[w] = st.Sink()
		}
		trace := in.Trace
		e := nest.MustNew(in.Spec)
		_, err := e.RunWith(nest.RunConfig{
			Variant:    v,
			Workers:    workers,
			Stealing:   true,
			SimWorkers: simWorkers,
			Recorder:   rec,
			ForTask:    in.ForTask,
			WrapWork: func(w int, work func(o, i tree.NodeID)) func(o, i tree.NodeID) {
				emit := sinks[w].Emit
				return func(o, i tree.NodeID) {
					trace(o, i, emit)
					work(o, i)
				}
			},
		})
		if err != nil {
			return err
		}
		st.Close()
		return nil
	}
	if err := run(); err != nil { // warmup
		return nil, err
	}
	sim.ResetStats()
	if err := run(); err != nil {
		return nil, err
	}
	sim.Publish(rec, fmt.Sprintf("memsim.%s.%v", in.Name, v))
	last.Publish(rec, fmt.Sprintf("memsim.%s.%v.stream", in.Name, v))
	return sim.Stats(), nil
}

// --- Fig 5: reuse-distance CDF --------------------------------------------

// Fig5Row is one x-position of the Fig 5 CDF: the fraction of accesses with
// reuse distance < R under each schedule.
type Fig5Row struct {
	R                 int
	Original, Twisted float64
}

// Fig5 runs the reuse-distance simulation of Fig 5: the tree join of
// Fig 1(a) on two n-node trees (the paper uses n=1024), measuring the stack
// distance of every node access under the original and twisted schedules.
func Fig5(n int, seed int64) []Fig5Row {
	defer obs.Span(rec, "experiments.fig5")()
	collect := func(v nest.Variant) *memsim.Histogram {
		in := workloads.TreeJoin(n, seed)
		ra := memsim.NewReuseAnalyzer()
		hist := memsim.NewHistogram()
		if _, _, err := in.RunEmit(nil, v, func(a memsim.Addr) { hist.Add(ra.Access(a)) }, nil); err != nil {
			panic(err) // unreachable: a nil ctx never cancels
		}
		return hist
	}
	orig := collect(nest.Original())
	tw := collect(nest.Twisted())
	var rows []Fig5Row
	for r := 1; r <= 4*n; r *= 2 {
		rows = append(rows, Fig5Row{R: r, Original: orig.CDF(r), Twisted: tw.CDF(r)})
	}
	return rows
}

// --- Fig 7: speedup across the six benchmarks ------------------------------

// Fig7Row is one bar of Fig 7, optionally extended with the §7.3 parallel
// dimension: Par1/ParN time the work-stealing executor running the twisted
// schedule with one worker and with the requested worker count (zero when
// the dimension is off), and ParSpeedup is Par1/ParN — scaling of the
// identical task decomposition, the comparison the paper's §7.3 makes.
type Fig7Row struct {
	Bench      string
	Baseline   time.Duration
	Twisted    time.Duration
	Speedup    float64
	Par1       time.Duration
	ParN       time.Duration
	ParSpeedup float64

	// SimSeq/SimPar time the trace-driven cache simulation of the twisted
	// schedule on the sequential engine and on the set-partitioned parallel
	// engine with the requested shard-worker count (zero when the sim phase
	// is off); SimSpeedup is SimSeq/SimPar. Wall clocks, hence noisy.
	SimSeq     time.Duration
	SimPar     time.Duration
	SimSpeedup float64

	// SimL2/SimL3 are the twisted schedule's simulated L2/L3 miss rates from
	// the same phase — deterministic, and verified bit-identical between the
	// two engines before the row is returned.
	SimL2, SimL3 float64

	// Checksum is the benchmark result checksum, identical across every
	// schedule and worker count — the row's deterministic signal in the
	// BENCH_fig7.json regression baseline.
	Checksum uint64
}

// Fig7 measures the wall-clock speedup of recursion twisting over the
// original schedule for the six benchmarks at the given scale. With
// workers >= 1 it additionally runs the twisted schedule under the
// work-stealing executor at 1 and at workers workers, verifies every run's
// checksum against the baseline, and verifies the two parallel runs' merged
// Stats are identical — the determinism contract of the executor. With
// simWorkers >= 1 it also runs the twisted trace through the sequential and
// the set-partitioned parallel cache simulator, verifies their stats are
// bit-identical (the §4.8 determinism contract — a mismatch is an error,
// which is what the CI gate leans on), and reports both sim wall clocks plus
// the L2/L3 miss rates.
func Fig7(scale int, seed int64, repeats, workers, simWorkers int) ([]Fig7Row, error) {
	defer obs.Span(rec, "experiments.fig7")()
	var rows []Fig7Row
	for _, in := range workloads.Suite(scale, seed) {
		db, cb := runWall(in, nest.Original(), repeats)
		dt, ct := runWall(in, nest.Twisted(), repeats)
		if cb != ct {
			return nil, fmt.Errorf("fig7: %s checksum mismatch: baseline %x, twisted %x", in.Name, cb, ct)
		}
		rec.Time("fig7."+in.Name+".baseline", db)
		rec.Time("fig7."+in.Name+".twisted", dt)
		row := Fig7Row{
			Bench:    in.Name,
			Baseline: db,
			Twisted:  dt,
			Speedup:  float64(db) / float64(dt),
			Checksum: cb,
		}
		if workers >= 1 {
			d1, st1, err := parWall(in, 1, cb, repeats)
			if err != nil {
				return nil, err
			}
			dn, stn := d1, st1
			if workers > 1 {
				if dn, stn, err = parWall(in, workers, cb, repeats); err != nil {
					return nil, err
				}
			}
			if stn != st1 {
				return nil, fmt.Errorf("fig7: %s merged stats not deterministic across workers:\n  1: %v\n%3d: %v",
					in.Name, st1, workers, stn)
			}
			row.Par1, row.ParN = d1, dn
			row.ParSpeedup = float64(d1) / float64(dn)
		}
		if simWorkers >= 1 {
			if err := simPhase(in, simWorkers, &row); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// simPhase runs the twisted trace of in through the sequential simulator and
// through the parallel simulator with simWorkers shard workers, times both
// (the clock covers trace generation plus simulation, stopping only after
// Stats() has drained every in-flight batch), errors unless the two engines'
// per-level stats are bit-identical, and fills the row's Sim* columns.
func simPhase(in *workloads.Instance, simWorkers int, row *Fig7Row) error {
	runSim := func(sim memsim.Simulator) (time.Duration, []memsim.LevelStats) {
		st := memsim.NewStream(sim, 0)
		sk := st.Sink()
		t0 := time.Now()
		if _, _, err := in.RunSink(nil, nest.Twisted(), sk, nil); err != nil {
			panic(err) // unreachable: a nil ctx never cancels
		}
		st.Close()
		stats := sim.Stats()
		return time.Since(t0), stats
	}
	seq := newSim(1)
	dSeq, stSeq := runSim(seq)
	seq.Close()
	par := newSim(simWorkers)
	dPar, stPar := runSim(par)
	par.Publish(rec, "fig7."+in.Name+".sim")
	par.Close()
	for k := range stSeq {
		if stSeq[k] != stPar[k] {
			return fmt.Errorf("fig7: %s simulated stats diverge between engines at %s:\n  seq: %+v\n  par: %+v",
				in.Name, stSeq[k].Name, stSeq[k], stPar[k])
		}
	}
	rec.Time("fig7."+in.Name+".simseq", dSeq)
	rec.Time("fig7."+in.Name+".simpar", dPar)
	row.SimSeq, row.SimPar = dSeq, dPar
	row.SimSpeedup = float64(dSeq) / float64(dPar)
	row.SimL2 = levelRate(stSeq, 1)
	row.SimL3 = levelRate(stSeq, 2)
	return nil
}

// parWall times the work-stealing twisted run of in at the given worker
// count, checking its checksum against want, and returns the merged Stats.
func parWall(in *workloads.Instance, workers int, want uint64, repeats int) (time.Duration, nest.Stats, error) {
	var res nest.RunResult
	var err error
	d := timeBest(repeats, func() {
		res, err = in.RunWith(nest.RunConfig{Variant: nest.Twisted(), Workers: workers, Stealing: true, Recorder: rec})
	})
	if err != nil {
		return 0, nest.Stats{}, err
	}
	if got := in.Checksum(); got != want {
		return 0, nest.Stats{}, fmt.Errorf("fig7: %s parallel (w=%d) checksum %x, want %x", in.Name, workers, got, want)
	}
	return d, res.Stats, nil
}

// GeoMean returns the geometric mean of the speedups (the paper reports a
// 3.94x geomean).
func GeoMean(rows []Fig7Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	p := 1.0
	for _, r := range rows {
		p *= r.Speedup
	}
	return math.Pow(p, 1/float64(len(rows)))
}

// --- Fig 8a: instruction overhead ------------------------------------------

// Fig8aRow is one bar of Fig 8(a): the fractional overhead in the dynamic
// operation model of the twisted schedule over the baseline.
type Fig8aRow struct {
	Bench       string
	BaselineOps int64
	TwistedOps  int64
	Overhead    float64
}

// Fig8a measures instruction overhead for the six benchmarks.
func Fig8a(scale int, seed int64) []Fig8aRow {
	defer obs.Span(rec, "experiments.fig8a")()
	var rows []Fig8aRow
	for _, in := range workloads.Suite(scale, seed) {
		base := in.Run(nest.Original(), nest.FlagCounter)
		tw := in.Run(nest.Twisted(), nest.FlagCounter)
		rows = append(rows, Fig8aRow{
			Bench:       in.Name,
			BaselineOps: base.Ops(),
			TwistedOps:  tw.Ops(),
			Overhead:    tw.Overhead(base),
		})
	}
	return rows
}

// --- Fig 8b: L2/L3 miss rates ----------------------------------------------

// Fig8bRow is one benchmark of Fig 8(b): simulated L2 and L3 miss rates for
// the baseline and twisted schedules.
type Fig8bRow struct {
	Bench                            string
	BaseL2, TwistL2, BaseL3, TwistL3 float64
}

// Fig8b measures simulated miss rates for the six benchmarks. workers <= 1
// reproduces the paper's sequential figure through the streaming pipeline;
// workers > 1 simulates the parallel twisted execution in merge mode, with
// all workers' interleaved accesses sharing the one hierarchy. simWorkers
// sizes the simulator itself (sequential vs set-partitioned parallel; the
// rates are bit-identical either way).
func Fig8b(scale int, seed int64, workers, simWorkers int) ([]Fig8bRow, error) {
	defer obs.Span(rec, "experiments.fig8b")()
	var rows []Fig8bRow
	for _, in := range workloads.Suite(scale, seed) {
		base, err := missRatesWith(in, nest.Original(), workers, simWorkers)
		if err != nil {
			return nil, err
		}
		tw, err := missRatesWith(in, nest.Twisted(), workers, simWorkers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8bRow{
			Bench:   in.Name,
			BaseL2:  levelRate(base, 1),
			TwistL2: levelRate(tw, 1),
			BaseL3:  levelRate(base, 2),
			TwistL3: levelRate(tw, 2),
		})
	}
	return rows, nil
}

// --- Fig 9: PC across input sizes -------------------------------------------

// Fig9Row is one input size of Fig 9: PC speedup (a) and miss rates (b).
type Fig9Row struct {
	N                                int
	Speedup                          float64
	BaseL2, TwistL2, BaseL3, TwistL3 float64
}

// Fig9 sweeps point-correlation input sizes (log-spaced, as in the paper's
// log-scale x axis) and reports wall-clock speedup plus simulated miss
// rates. workers and simWorkers have the same meaning as in Fig8b — the
// miss-rate columns come from the streaming simulation, sequential
// single-sink for workers <= 1 (deterministic), merge mode otherwise; the
// wall-clock speedup column is always the sequential paper comparison.
func Fig9(sizes []int, radius float64, seed int64, repeats, workers, simWorkers int) ([]Fig9Row, error) {
	defer obs.Span(rec, "experiments.fig9")()
	var rows []Fig9Row
	for _, n := range sizes {
		in := workloads.PointCorr(n, radius, seed)
		db, cb := runWall(in, nest.Original(), repeats)
		dt, ct := runWall(in, nest.Twisted(), repeats)
		if cb != ct {
			return nil, fmt.Errorf("fig9: n=%d checksum mismatch", n)
		}
		base, err := missRatesWith(in, nest.Original(), workers, simWorkers)
		if err != nil {
			return nil, err
		}
		tw, err := missRatesWith(in, nest.Twisted(), workers, simWorkers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			N:       n,
			Speedup: float64(db) / float64(dt),
			BaseL2:  levelRate(base, 1),
			TwistL2: levelRate(tw, 1),
			BaseL3:  levelRate(base, 2),
			TwistL3: levelRate(tw, 2),
		})
	}
	return rows, nil
}

// --- Fig 10: the cutoff study (§7.1) ----------------------------------------

// Fig10Row is one cutoff value of Fig 10. Cutoff < 0 denotes the
// parameterless twisting baseline.
type Fig10Row struct {
	Cutoff   int
	Overhead float64 // instruction overhead vs the original schedule (Fig 10a)
	Speedup  float64 // wall-clock speedup vs the original schedule (Fig 10b)
}

// Fig10 reproduces the cutoff study on PC: instruction overhead and speedup
// for a range of cutoff parameters, with parameterless twisting (cutoff -1)
// for comparison. The paper notes it uses a smaller PC input than Fig 7.
// With workers >= 1 every wall-clock measurement (baseline and all cutoff
// variants alike) runs under the work-stealing executor at that worker
// count, so the speedup column compares like with like; the instruction
// overheads always come from sequential counted runs.
func Fig10(n int, radius float64, cutoffs []int, seed int64, repeats, workers int) ([]Fig10Row, error) {
	defer obs.Span(rec, "experiments.fig10")()
	in := workloads.PointCorr(n, radius, seed)
	base := in.Run(nest.Original(), nest.FlagCounter)
	dbase, cb, err := wallOf(in, nest.Original(), repeats, workers)
	if err != nil {
		return nil, err
	}
	variants := []nest.Variant{nest.Twisted()}
	for _, c := range cutoffs {
		variants = append(variants, nest.TwistedCutoff(c))
	}
	var rows []Fig10Row
	for k, v := range variants {
		st := in.Run(v, nest.FlagCounter)
		d, c, err := wallOf(in, v, repeats, workers)
		if err != nil {
			return nil, err
		}
		if c != cb {
			return nil, fmt.Errorf("fig10: %v checksum mismatch", v)
		}
		cutoff := -1
		if k > 0 {
			cutoff = cutoffs[k-1]
		}
		rows = append(rows, Fig10Row{
			Cutoff:   cutoff,
			Overhead: st.Overhead(base),
			Speedup:  float64(dbase) / float64(d),
		})
	}
	return rows, nil
}

// wallOf times variant v of in — sequentially, or under the work-stealing
// executor when workers >= 1 — and returns (duration, checksum).
func wallOf(in *workloads.Instance, v nest.Variant, repeats, workers int) (time.Duration, uint64, error) {
	if workers < 1 {
		d, c := runWall(in, v, repeats)
		return d, c, nil
	}
	var err error
	d := timeBest(repeats, func() {
		if err != nil {
			return
		}
		_, err = in.RunWith(nest.RunConfig{Variant: v, Workers: workers, Stealing: true, Recorder: rec})
	})
	if err != nil {
		return 0, 0, err
	}
	return d, in.Checksum(), nil
}

// --- §4.2 iteration counts ----------------------------------------------------

// ItersRow is one schedule of the §4.2 work-overhead comparison.
type ItersRow struct {
	Schedule   string
	Iterations int64
	Work       int64
	Overhead   float64 // iteration overhead vs the original schedule
}

// TblIters reproduces the §4.2 iteration-count comparison on PC: original,
// interchange, twisting, and twisting with subtree truncation.
func TblIters(n int, radius float64, seed int64) []ItersRow {
	defer obs.Span(rec, "experiments.iters")()
	in := workloads.PointCorr(n, radius, seed)
	run := func(v nest.Variant, subtree bool) nest.Stats {
		st, _, err := in.RunSeq(nil, v, func(e *nest.Exec) { e.SubtreeTruncation = subtree })
		if err != nil {
			panic(err) // unreachable: a nil ctx never cancels
		}
		return st
	}
	orig := run(nest.Original(), true)
	rows := []ItersRow{{Schedule: "original", Iterations: orig.Iterations, Work: orig.Work}}
	add := func(name string, st nest.Stats) {
		rows = append(rows, ItersRow{
			Schedule:   name,
			Iterations: st.Iterations,
			Work:       st.Work,
			Overhead:   float64(st.Iterations-orig.Iterations) / float64(orig.Iterations),
		})
	}
	add("interchange", run(nest.Interchanged(), false))
	add("twisting", run(nest.Twisted(), false))
	add("twisting+subtree", run(nest.Twisted(), true))
	return rows
}
