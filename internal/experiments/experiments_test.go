package experiments

import (
	"testing"

	"twist/internal/nest"
	"twist/internal/workloads"
)

// Fig 5 shape: the original schedule is bimodal — about half of all accesses
// (the outer tree's) have tiny reuse distances, and the other half (the
// inner tree's) have distances on the order of the tree size. Twisting must
// strictly dominate at mid-range distances.
func TestFig5Shape(t *testing.T) {
	const n = 256
	rows := Fig5(n, 1)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	byR := map[int]Fig5Row{}
	for _, r := range rows {
		byR[r.R] = r
	}
	// At r=4 the original already has its "hot half": CDF close to 0.5 and
	// far from 1 until r reaches the tree size.
	small := byR[4]
	if small.Original < 0.4 || small.Original > 0.6 {
		t.Fatalf("original CDF(4) = %v, want ~0.5 (hot/cold split)", small.Original)
	}
	mid := byR[64]
	if mid.Original > 0.6 {
		t.Fatalf("original CDF(64) = %v; cold half should still be cold", mid.Original)
	}
	if mid.Twisted <= mid.Original+0.1 {
		t.Fatalf("twisted CDF(64) = %v not clearly above original %v", mid.Twisted, mid.Original)
	}
	// Everything is below the total space bound eventually.
	last := rows[len(rows)-1]
	if last.Original < 0.95 || last.Twisted < 0.95 {
		t.Fatalf("CDF at max distance: orig %v, twisted %v", last.Original, last.Twisted)
	}
	// CDFs are nondecreasing in r.
	for k := 1; k < len(rows); k++ {
		if rows[k].Original < rows[k-1].Original || rows[k].Twisted < rows[k-1].Twisted {
			t.Fatalf("CDF not monotone at r=%d", rows[k].R)
		}
	}
}

func TestFig7RunsAndVerifies(t *testing.T) {
	rows, err := Fig7(256, 3, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Twisted <= 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// simWorkers=2 turns the sim phase on: both engines ran, agreed
		// bit-identically (or Fig7 would have errored), and timed.
		if r.SimSeq <= 0 || r.SimPar <= 0 {
			t.Fatalf("sim phase skipped in %+v", r)
		}
	}
	if gm := GeoMean(rows); gm <= 0 {
		t.Fatalf("geomean %v", gm)
	}
}

func TestFig8aOverheadSigns(t *testing.T) {
	rows := Fig8a(512, 5)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaselineOps <= 0 || r.TwistedOps <= 0 {
			t.Fatalf("non-positive ops in %+v", r)
		}
		// Twisting adds bookkeeping; at these scales overhead must be >= 0
		// for the regular benchmarks (TJ, MM) and bounded overall.
		if r.Overhead < -0.5 || r.Overhead > 3 {
			t.Fatalf("implausible overhead %+v", r)
		}
	}
}

// The headline memory-system result: on TJ (pure pointer-chasing cross
// product) the baseline thrashes the simulated LLC while twisting nearly
// eliminates LLC misses (Fig 8b's 80+%% → <5%% drop). Probed directly at the
// smallest thrash-regime size to keep the test fast.
func TestFig8bTJL3Drop(t *testing.T) {
	in := workloads.TreeJoin(4096, 7) // 256 KiB per tree vs the 128 KiB simulated LLC
	base := missRates(in, nest.Original())
	tw := missRates(in, nest.Twisted())
	if base[2].MissRate() < 0.5 {
		t.Fatalf("TJ baseline L3 miss rate %v; input too small to thrash the simulated LLC", base[2].MissRate())
	}
	if tw[2].Misses > base[2].Misses/4 {
		t.Fatalf("TJ twisted L3 misses %d vs baseline %d: twisting should slash LLC misses",
			tw[2].Misses, base[2].Misses)
	}
}

// The dual-tree counterpart: NN's baseline inner traversals exceed the
// simulated LLC (bounds start loose), so the baseline thrashes while the
// twisted schedule's miss counts collapse.
func TestFig8bNNRegime(t *testing.T) {
	in := workloads.NearestNeighbor(8192, 7)
	base := missRates(in, nest.Original())
	tw := missRates(in, nest.Twisted())
	if base[2].MissRate() < 0.35 {
		t.Fatalf("NN baseline L3 miss rate %v; not in the paper's thrash regime", base[2].MissRate())
	}
	if tw[2].Misses > base[2].Misses/3 {
		t.Fatalf("NN twisted L3 misses %d vs baseline %d", tw[2].Misses, base[2].Misses)
	}
}

func TestFig9ShapeAcrossSizes(t *testing.T) {
	rows, err := Fig9([]int{256, 8192}, 0.4, 9, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	// The paper's Fig 9(b): the baseline has essentially no L3 misses at
	// small inputs (traversals fit higher levels) and suffers badly at
	// large ones.
	if small.BaseL3 > 0.2 {
		t.Fatalf("small-input baseline L3 miss rate %v; traversals should fit in cache", small.BaseL3)
	}
	if large.BaseL3 < small.BaseL3 {
		t.Fatalf("baseline L3 miss rate fell with size: %v -> %v", small.BaseL3, large.BaseL3)
	}
	if large.TwistL3 > large.BaseL3 {
		t.Fatalf("twisting worsened large-input L3: %v vs %v", large.TwistL3, large.BaseL3)
	}
}

func TestFig10CutoffRows(t *testing.T) {
	rows, err := Fig10(2048, 0.03, []int{16, 256}, 11, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Cutoff != -1 || rows[1].Cutoff != 16 || rows[2].Cutoff != 256 {
		t.Fatalf("rows = %+v", rows)
	}
	// Fig 10a: cutoff reduces instruction overhead below parameterless, and
	// larger cutoffs reduce it further.
	if !(rows[1].Overhead <= rows[0].Overhead && rows[2].Overhead <= rows[1].Overhead) {
		t.Fatalf("overhead not decreasing with cutoff: %+v", rows)
	}
}

func TestTblItersShape(t *testing.T) {
	rows := TblIters(4096, 0.03, 13)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(name string) ItersRow {
		for _, r := range rows {
			if r.Schedule == name {
				return r
			}
		}
		t.Fatalf("missing row %q", name)
		return ItersRow{}
	}
	orig := get("original")
	inter := get("interchange")
	tw := get("twisting")
	sub := get("twisting+subtree")
	if orig.Iterations != orig.Work {
		t.Fatal("original iterations != work")
	}
	if !(inter.Iterations > tw.Iterations && tw.Iterations >= sub.Iterations && sub.Iterations >= orig.Iterations) {
		t.Fatalf("§4.2 ordering violated: %+v", rows)
	}
	if inter.Work != orig.Work || tw.Work != orig.Work || sub.Work != orig.Work {
		t.Fatal("schedules performed different amounts of real work")
	}
}

func TestSimHierarchyLevels(t *testing.T) {
	st := SimHierarchy().Stats()
	if len(st) != 3 || st[0].Name != "L1" || st[1].Name != "L2" || st[2].Name != "L3" {
		t.Fatalf("levels = %+v", st)
	}
}
