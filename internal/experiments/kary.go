package experiments

import (
	"twist/internal/geom"
	"twist/internal/knest"
	"twist/internal/memsim"
	"twist/internal/obs"
)

// KAryRow is one schedule of the k-ary (octree) extension study: dual-tree
// point correlation over an octree self-join, demonstrating that the
// template's "additional recursive calls" generality (§2.1) carries the
// paper's behaviour to 8-ary index spaces.
type KAryRow struct {
	Schedule   string
	Count      int64
	Iterations int64
	Twists     int64
	L2, L3     float64
}

// KAryOctree runs octree point correlation under each schedule, reporting
// iteration counts and simulated miss rates.
func KAryOctree(n int, radius float64, seed int64) []KAryRow {
	defer obs.Span(rec, "experiments.kary")()
	pts := geom.Generate(geom.Uniform, n, seed)
	oc := knest.MustBuildOctree(pts, 8)

	const (
		baseNodes  memsim.Addr = 1 << 30
		baseNodes2 memsim.Addr = 2 << 30
		basePts    memsim.Addr = 3 << 30
		ptBytes                = 24
	)
	var rows []KAryRow
	for _, v := range []knest.Variant{
		knest.Original(), knest.Interchanged(), knest.Twisted(), knest.TwistedCutoff(64),
	} {
		var count int64
		spec := knest.PCSpec(oc, oc, radius, &count)
		h := SimHierarchy()
		work := spec.Work
		spec.Work = func(o, i knest.NodeID) {
			h.Access(baseNodes2 + memsim.Addr(i)*64)
			h.Access(baseNodes + memsim.Addr(o)*64)
			if oc.Topo.IsLeaf(o) && oc.Topo.IsLeaf(i) {
				for k := oc.Start[i] * ptBytes; k < oc.End[i]*ptBytes; k += 64 {
					h.Access(basePts + memsim.Addr(k))
				}
				for k := oc.Start[o] * ptBytes; k < oc.End[o]*ptBytes; k += 64 {
					h.Access(basePts + memsim.Addr(k))
				}
			}
			work(o, i)
		}
		e := knest.MustNew(spec)
		e.Run(v) // warmup pass for the cache simulation
		h.ResetStats()
		count = 0
		e.Run(v)
		st := h.Stats()
		h.Close()
		rows = append(rows, KAryRow{
			Schedule:   v.String(),
			Count:      count,
			Iterations: e.Stats.Iterations,
			Twists:     e.Stats.Twists,
			L2:         levelRate(st, 1),
			L3:         levelRate(st, 2),
		})
	}
	return rows
}
