package experiments

import (
	"time"

	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/obs"
	"twist/internal/tree"
	"twist/internal/workloads"
)

// This file holds the design-choice ablations called out in DESIGN.md §4.5,
// beyond what the paper itself evaluates: the truncation-flag representation
// (§4.3), subtree truncation (§4.2), and node-payload stride (spatial
// locality sensitivity, related-work §8).

// FlagAblationRow compares the two truncation-flag representations on one
// schedule of the PC workload.
type FlagAblationRow struct {
	Mode       nest.FlagMode
	FlagSets   int64
	FlagClears int64
	Ops        int64
	Wall       time.Duration
}

// AblationFlags runs twisted PC under both flag representations. The §4.3
// claim made concrete: the counter mode performs zero flag-clear operations
// and correspondingly fewer model ops.
func AblationFlags(n int, radius float64, seed int64, repeats int) []FlagAblationRow {
	defer obs.Span(rec, "experiments.ablation.flags")()
	in := workloads.PointCorr(n, radius, seed)
	var rows []FlagAblationRow
	for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
		var st nest.Stats
		d := timeBest(repeats, func() {
			var err error
			if st, _, err = in.RunSeq(nil, nest.Twisted(), func(e *nest.Exec) { e.Flags = fm }); err != nil {
				panic(err) // unreachable: a nil ctx never cancels
			}
		})
		rows = append(rows, FlagAblationRow{
			Mode:       fm,
			FlagSets:   st.FlagSets,
			FlagClears: st.FlagClears,
			Ops:        st.Ops(),
			Wall:       d,
		})
	}
	return rows
}

// SubtreeAblationRow compares twisting with and without §4.2 subtree
// truncation.
type SubtreeAblationRow struct {
	Enabled     bool
	Iterations  int64
	SubtreeCuts int64
	Wall        time.Duration
}

// AblationSubtree runs twisted PC with subtree truncation off and on.
func AblationSubtree(n int, radius float64, seed int64, repeats int) []SubtreeAblationRow {
	defer obs.Span(rec, "experiments.ablation.subtree")()
	in := workloads.PointCorr(n, radius, seed)
	var rows []SubtreeAblationRow
	for _, on := range []bool{false, true} {
		var st nest.Stats
		d := timeBest(repeats, func() {
			var err error
			if st, _, err = in.RunSeq(nil, nest.Twisted(), func(e *nest.Exec) { e.SubtreeTruncation = on }); err != nil {
				panic(err) // unreachable: a nil ctx never cancels
			}
		})
		rows = append(rows, SubtreeAblationRow{
			Enabled:     on,
			Iterations:  st.Iterations,
			SubtreeCuts: st.SubtreeCuts,
			Wall:        d,
		})
	}
	return rows
}

// StrideAblationRow reports simulated miss rates of the tree join when a
// node's payload occupies the given number of bytes (64 = one line per node,
// the paper's §3.2 model; smaller strides pack preorder-adjacent nodes into
// a line, adding the spatial locality that layout transformations (§8)
// would provide).
type StrideAblationRow struct {
	Stride                      int
	BaseL3, TwistL3             float64
	BaseL3Misses, TwistL3Misses int64
}

// AblationStride runs the n-node tree join through the simulated hierarchy
// at several node strides. The rows report the last (largest) configured
// level, L3 under the default geometry.
func AblationStride(n int, strides []int, seed int64) []StrideAblationRow {
	defer obs.Span(rec, "experiments.ablation.stride")()
	outer := tree.NewBalanced(n)
	inner := tree.NewBalanced(n)
	var rows []StrideAblationRow
	for _, stride := range strides {
		maps := memsim.DisjointMappers(2, memsim.Addr(stride))
		measure := func(v nest.Variant) memsim.LevelStats {
			h := SimHierarchy()
			defer h.Close()
			s := nest.Spec{
				Outer: outer,
				Inner: inner,
				Work: func(o, i tree.NodeID) {
					h.Access(maps[1].Addr(int32(i)))
					h.Access(maps[0].Addr(int32(o)))
				},
			}
			e := nest.MustNew(s)
			e.Run(v) // warmup
			h.ResetStats()
			e.Run(v)
			st := h.Stats()
			return st[len(st)-1]
		}
		base := measure(nest.Original())
		tw := measure(nest.Twisted())
		rows = append(rows, StrideAblationRow{
			Stride:        stride,
			BaseL3:        base.MissRate(),
			TwistL3:       tw.MissRate(),
			BaseL3Misses:  base.Misses,
			TwistL3Misses: tw.Misses,
		})
	}
	return rows
}
