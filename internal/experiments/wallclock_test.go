package experiments

import "testing"

// The tentpole acceptance bound at the experiment level: every suite
// benchmark's engine-ops counter drops by >= 30% under the twisted schedule,
// and the rows carry the deterministic columns the bench gate pins.
func TestWallclockReduction(t *testing.T) {
	rows, err := Wallclock(1024, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.ReductionPct < 30 {
			t.Errorf("%s: engine ops reduction %.1f%% (rec %d, iter %d), want >= 30%%",
				r.Bench, r.ReductionPct, r.RecursiveOps, r.IterativeOps)
		}
		if r.IterativeOps <= 0 || r.IterativeOps >= r.RecursiveOps {
			t.Errorf("%s: iterative ops %d not within (0, %d)", r.Bench, r.IterativeOps, r.RecursiveOps)
		}
		if r.Checksum == 0 {
			t.Errorf("%s: zero checksum", r.Bench)
		}
		if r.RecursiveWall <= 0 || r.IterativeWall <= 0 {
			t.Errorf("%s: non-positive wall clocks %v/%v", r.Bench, r.RecursiveWall, r.IterativeWall)
		}
	}
}

// Deterministic columns must be reproducible run to run — the property the
// committed BENCH_wallclock.json baseline leans on.
func TestWallclockDeterministic(t *testing.T) {
	a, err := Wallclock(512, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Wallclock(512, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k].RecursiveOps != b[k].RecursiveOps || a[k].IterativeOps != b[k].IterativeOps ||
			a[k].Checksum != b[k].Checksum {
			t.Errorf("%s: deterministic columns drift between runs:\n a %+v\n b %+v", a[k].Bench, a[k], b[k])
		}
	}
}
