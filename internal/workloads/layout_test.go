package workloads

import (
	"fmt"
	"testing"

	"twist/internal/layout"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/oracle"
	"twist/internal/tree"
)

// runTraced executes the instance's traced spec under v, returning the
// visit sequence in execution order, the number of addresses emitted, and a
// digest of the address stream.
func runTraced(in *Instance, v nest.Variant) (seq []oracle.Visit, addrs int64, addrDigest uint64) {
	addrDigest = 14695981039346656037
	spec := in.TracedSpec(func(a memsim.Addr) {
		addrs++
		addrDigest = mix(addrDigest, uint64(a))
	})
	work := spec.Work
	spec.Work = func(o, i tree.NodeID) {
		seq = append(seq, oracle.Visit{O: o, I: i})
		work(o, i)
	}
	nest.MustNew(spec).Run(v)
	return seq, addrs, addrDigest
}

// TestLayoutTraversalDigestInvariant is the acceptance gate of the layout
// subsystem: across every layout, every workload's traversal under a given
// schedule visits the identical (o, i) sequence, computes the identical
// checksum, and emits the same number of simulated accesses — a layout
// renames storage slots and nothing else. Only the address *values* may
// change, and for the build-order layout not even those (the wrapped
// instance must be the original instance).
func TestLayoutTraversalDigestInvariant(t *testing.T) {
	const scale, seed = 256, 11
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := Suite(scale, seed)[k]
			for _, v := range []nest.Variant{nest.Original(), nest.Twisted(), nest.TwistedCutoff(64)} {
				type ref struct {
					visitDigest uint64
					checksum    uint64
					addrs       int64
					addrDigest  uint64
				}
				var base ref
				for _, kind := range layout.Kinds() {
					lin, err := in.UnderLayout(kind, v)
					if err != nil {
						t.Fatalf("%v/%v: %v", v, kind, err)
					}
					if kind == layout.BuildOrder && lin != in {
						t.Fatalf("%v: build-order layout did not return the instance unchanged", v)
					}
					in.Reset()
					seq, addrs, addrDigest := runTraced(lin, v)
					got := ref{
						visitDigest: oracle.FromSequence(seq).Digest(),
						checksum:    in.Checksum(),
						addrs:       addrs,
						addrDigest:  addrDigest,
					}
					if kind == layout.BuildOrder {
						base = got
						continue
					}
					if got.visitDigest != base.visitDigest {
						t.Errorf("%v/%v: visit digest %x != buildorder %x", v, kind, got.visitDigest, base.visitDigest)
					}
					if got.checksum != base.checksum {
						t.Errorf("%v/%v: checksum %x != buildorder %x", v, kind, got.checksum, base.checksum)
					}
					if got.addrs != base.addrs {
						t.Errorf("%v/%v: %d addresses != buildorder %d", v, kind, got.addrs, base.addrs)
					}
					// The node regions of TJ and the dual-tree benchmarks are
					// repacked, so their address streams must differ from the
					// legacy model under every non-identity scheme; MM traces
					// only matrix data, which layouts never touch.
					if name != "MM" && got.addrDigest == base.addrDigest {
						t.Errorf("%v/%v: address stream identical to buildorder; layout had no effect", v, kind)
					}
					if name == "MM" && got.addrDigest != base.addrDigest {
						t.Errorf("%v/%v: MM address stream changed; layouts must not touch matrix data", v, kind)
					}
				}
			}
		})
	}
}

// TestLayoutOracleInvariance checks the layouts against the semantic
// oracle: a golden trace captured from the (layout-free) baseline schedule
// verdicts the visit sequence of every layouted run, for every workload ×
// schedule × layout — permutation equivalence is decided by the traversal
// alone, so the verdict cannot depend on the layout.
func TestLayoutOracleInvariance(t *testing.T) {
	const scale, seed = 256, 11
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := Suite(scale, seed)[k]
			spec := in.OracleSpec() // converged pruning state; see OracleSpec
			g, err := oracle.Capture(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []nest.Variant{nest.Original(), nest.Interchanged(), nest.Twisted()} {
				for _, kind := range layout.Kinds() {
					// Build schemes on a copy of the converged spec with Work
					// stripped: first-touch recording must not mutate pruning
					// state either (one baseline run is not a fixpoint for the
					// KNN heaps).
					frozen := spec
					frozen.Work = func(o, i tree.NodeID) {}
					outer, inner, err := layout.Schemes(kind, frozen, v)
					if err != nil {
						t.Fatalf("%v/%v: %v", v, kind, err)
					}
					lin := in.WithLayout(outer, inner)
					// Replay the layouted trace but do not execute Work: the
					// oracle's premise is that checks never mutate pruning
					// state (see OracleSpec), and the layout wrapper still
					// runs on every visit.
					var seq []oracle.Visit
					s := lin.Spec
					s.Work = func(o, i tree.NodeID) {
						lin.Trace(o, i, func(memsim.Addr) {})
						seq = append(seq, oracle.Visit{O: o, I: i})
					}
					nest.MustNew(s).Run(v)
					label := fmt.Sprintf("%s/%v/layout=%v", name, v, kind)
					if vd := g.CheckSequence(label, seq); !vd.OK {
						t.Fatalf("%s: %v", label, vd)
					}
				}
			}
		})
	}
}

// TestWithLayoutRemapsRegions pins the address arithmetic: under a
// reordering scheme, a node access lands at base + remap[id]*stride within
// the same region, and data accesses are untouched.
func TestWithLayoutRemapsRegions(t *testing.T) {
	in := TreeJoin(64, 1)
	outer, inner, err := in.LayoutSchemes(layout.VEB, nest.Original())
	if err != nil {
		t.Fatal(err)
	}
	lin := in.WithLayout(outer, inner)
	o, i := in.Spec.Outer.Root(), in.Spec.Inner.Root()
	var got []memsim.Addr
	lin.Trace(o, i, func(a memsim.Addr) { got = append(got, a) })
	want := []memsim.Addr{
		baseInnerNodes + memsim.Addr(inner.Offset(i)),
		baseOuterNodes + memsim.Addr(outer.Offset(o)),
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}
