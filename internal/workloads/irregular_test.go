package workloads

import "testing"

// The static Irregular classification must agree with the built instances:
// a benchmark is irregular exactly when its Spec carries the
// outer-dependent truncation predicate.
func TestIrregularMatchesInstances(t *testing.T) {
	t.Parallel()
	for _, in := range Suite(256, 1) {
		static, err := Irregular(in.Name)
		if err != nil {
			t.Fatalf("Irregular(%q): %v", in.Name, err)
		}
		if built := in.Spec.TruncInner2 != nil; static != built {
			t.Errorf("Irregular(%q) = %v, but the built instance says %v", in.Name, static, built)
		}
	}
	if _, err := Irregular("tj"); err == nil {
		t.Error("Irregular accepted a non-canonical name")
	}
	if _, err := Irregular("bogus"); err == nil {
		t.Error("Irregular accepted an unknown name")
	}
}
