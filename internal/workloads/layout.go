package workloads

import (
	"twist/internal/layout"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/tree"
)

// LayoutSchemes realizes layout kind k for this instance's two arenas. The
// schedule-order kind records first-touch order by running the instance
// under v from a freshly Reset state (the same state the measured warmup
// run starts from), and Resets again afterwards so the recording leaves no
// trace in the workload's accumulators; every other kind depends only on
// the topologies. First-touch order is deterministic for a fixed instance
// and variant, so the layout — and every miss-rate signal measured under
// it — is reproducible.
func (in *Instance) LayoutSchemes(k layout.Kind, v nest.Variant) (outer, inner layout.Scheme, err error) {
	if k == layout.Schedule {
		in.Reset()
		defer in.Reset()
	}
	return layout.Schemes(k, in.Spec, v)
}

// WithLayout returns a copy of the instance whose Trace generates node
// addresses under the given per-arena layout schemes: an emitted node
// access Base + id*64 is rewritten to the node's packed hot-record address
// (memsim.Remapper), while point-data and matrix accesses pass through
// untouched — hot/cold splitting moves only the traversal-hot record, and
// the cold payload arena is never touched by the traversal. Identity
// schemes return the instance unchanged, byte-for-byte preserving every
// pre-layout trace. Only addresses change: the traversal, checksum, and
// operation counts are those of the underlying instance, which is why
// oracle verdicts and result digests are layout-invariant.
func (in *Instance) WithLayout(outer, inner layout.Scheme) *Instance {
	if outer.Identity() && inner.Identity() {
		return in
	}
	om := memsim.Remapper{Base: baseOuterNodes, Stride: memsim.Addr(outer.StrideBytes()), Perm: outer.Remap}
	im := memsim.Remapper{Base: baseInnerNodes, Stride: memsim.Addr(inner.StrideBytes()), Perm: inner.Remap}
	trace := in.Trace
	cp := *in
	cp.Trace = func(o, i tree.NodeID, emit func(memsim.Addr)) {
		trace(o, i, func(a memsim.Addr) {
			switch {
			case a >= baseOuterNodes && a < baseInnerNodes:
				a = om.Addr(int32((a - baseOuterNodes) / nodeStride))
			case a >= baseInnerNodes && a < baseOuterData:
				a = im.Addr(int32((a - baseInnerNodes) / nodeStride))
			}
			emit(a)
		})
	}
	return &cp
}

// UnderLayout is LayoutSchemes followed by WithLayout: the instance with
// its node addresses generated under layout k as realized for schedule
// variant v.
func (in *Instance) UnderLayout(k layout.Kind, v nest.Variant) (*Instance, error) {
	outer, inner, err := in.LayoutSchemes(k, v)
	if err != nil {
		return nil, err
	}
	return in.WithLayout(outer, inner), nil
}
