// Package workloads assembles the paper's six evaluation benchmarks (§6.1)
// as instances of the nested recursion template:
//
//	TJ  — tree join: cross product of two trees (Fig 1a)
//	MM  — matrix multiplication via Cilk-style divide-and-conquer range
//	      trees over rows and columns (§6.1, §7.2)
//	PC  — dual-tree 2-point correlation (kd-tree self-join)
//	NN  — dual-tree all-nearest-neighbors (kd-trees)
//	KNN — dual-tree k-nearest-neighbors, k=5 (kd-trees)
//	VP  — dual-tree k-nearest-neighbors, k=10 (vantage-point trees)
//
// Every instance carries, besides its nest.Spec, a checksum of its result
// (used to verify that all schedules compute the same answer), an operation
// count for the instruction model, and a Trace function that replays the
// memory accesses of one work(o, i) invocation for the cache simulation.
package workloads

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"twist/internal/dualtree"
	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/tree"
	"twist/internal/vptree"
)

// Address-space bases for the cache simulation: every data structure lives
// in its own 1 GiB region so structures never alias.
const (
	baseOuterNodes memsim.Addr = 1 << 30
	baseInnerNodes memsim.Addr = 2 << 30
	baseOuterData  memsim.Addr = 3 << 30
	baseInnerData  memsim.Addr = 4 << 30
	baseMatA       memsim.Addr = 5 << 30
	baseMatB       memsim.Addr = 6 << 30
	baseMatC       memsim.Addr = 7 << 30
)

// nodeStride is the default payload footprint of one tree node: one cache
// line, matching the paper's §3.2 model where work(o, i) touches exactly
// node o and node i.
const nodeStride = 64

// Instance is one runnable benchmark.
type Instance struct {
	// Name is the paper's benchmark abbreviation (TJ, MM, PC, NN, KNN, VP).
	Name string

	// Description is a one-line summary for harness output.
	Description string

	// Spec is the nested recursion to run.
	Spec nest.Spec

	// Reset clears result state; call before every run.
	Reset func()

	// Checksum folds the computed result into a value that must agree
	// across all schedules.
	Checksum func() uint64

	// ExtraOps reports workload work (e.g. point-pair distance evaluations)
	// performed during the last run, in instruction-model units.
	ExtraOps func() int64

	// Trace appends the addresses one work(o, i) invocation touches, in
	// access order (inner structure first, per the paper's examples).
	Trace func(o, i tree.NodeID, emit func(memsim.Addr))

	// ForTask derives a task-private Spec for the parallel executors (pass
	// it as nest.RunConfig.ForTask with the unmodified Spec as the base):
	// scalar reductions go to per-task shards and pruning bounds start
	// fresh, so each task's behaviour — and hence its Stats — is a pure
	// function of its outer root, which is what makes merged parallel Stats
	// identical across worker counts. Checksum and ExtraOps include the
	// shard contributions; Reset discards them.
	ForTask func(root tree.NodeID, base nest.Spec) nest.Spec
}

// TracedSpec returns a copy of the Spec whose Work additionally replays its
// memory accesses into emit. Use a fresh Reset before running it.
func (in *Instance) TracedSpec(emit func(memsim.Addr)) nest.Spec {
	s := in.Spec
	work := s.Work
	trace := in.Trace
	s.Work = func(o, i tree.NodeID) {
		trace(o, i, emit)
		work(o, i)
	}
	return s
}

// Run executes the instance under variant v with the given flag mode and
// returns the engine statistics (including ExtraOps).
func (in *Instance) Run(v nest.Variant, fm nest.FlagMode) nest.Stats {
	st, _, err := in.RunSeq(nil, v, func(e *nest.Exec) { e.Flags = fm })
	if err != nil {
		panic(err) // unreachable: a nil ctx never cancels
	}
	return st
}

// RunSeq executes the instance sequentially under v on a fresh Exec,
// applying configure (flag mode, engine, subtree truncation, ...) before the
// run. It is the single sequential entry point the harnesses (serve,
// experiments, nestbench) drive instead of building raw Execs. It returns
// the run's Stats with ExtraOps folded in, the engine-overhead counter
// (nest.Exec.EngineOps), and the context error, if any. ctx may be nil.
func (in *Instance) RunSeq(ctx context.Context, v nest.Variant, configure func(*nest.Exec)) (nest.Stats, int64, error) {
	in.Reset()
	e := nest.MustNew(in.Spec)
	if configure != nil {
		configure(e)
	}
	err := e.RunContext(ctx, v)
	e.Stats.ExtraOps = in.ExtraOps()
	return e.Stats, e.EngineOps(), err
}

// RunEmit is RunSeq over the traced spec: every visit's memory accesses are
// replayed, in access order, into emit before the visit's work runs.
func (in *Instance) RunEmit(ctx context.Context, v nest.Variant, emit func(memsim.Addr), configure func(*nest.Exec)) (nest.Stats, int64, error) {
	in.Reset()
	e := nest.MustNew(in.TracedSpec(emit))
	if configure != nil {
		configure(e)
	}
	err := e.RunContext(ctx, v)
	e.Stats.ExtraOps = in.ExtraOps()
	return e.Stats, e.EngineOps(), err
}

// RunSink is the batched form of RunEmit for simulator pipelines: each
// visit's accesses are gathered into a reusable scratch buffer and handed to
// sink as one EmitBatch call, amortizing the per-address emission cost on
// the trace hot path. Batch boundaries — and therefore simulated stats —
// are identical to emitting address-by-address.
func (in *Instance) RunSink(ctx context.Context, v nest.Variant, sink *memsim.Sink, configure func(*nest.Exec)) (nest.Stats, int64, error) {
	in.Reset()
	var scratch []memsim.Addr
	trace, work := in.Trace, in.Spec.Work
	s := in.Spec
	s.Work = func(o, i tree.NodeID) {
		scratch = scratch[:0]
		trace(o, i, func(a memsim.Addr) { scratch = append(scratch, a) })
		sink.EmitBatch(scratch)
		work(o, i)
	}
	e := nest.MustNew(s)
	if configure != nil {
		configure(e)
	}
	err := e.RunContext(ctx, v)
	e.Stats.ExtraOps = in.ExtraOps()
	return e.Stats, e.EngineOps(), err
}

// OracleSpec returns the Spec the semantic-equivalence oracle should check
// for this instance (internal/oracle): it runs the instance once under the
// baseline schedule so adaptive pruning state — the nearest-neighbor bounds
// that tighten as work executes — converges, then hands back the Spec with
// that state frozen. The oracle replaces Work with its own recorder, so
// captures and checks never mutate workload state again: the truncation
// predicate becomes a pure (and, for the dual-tree bounds, still hereditary)
// function of (o, i), which is the premise of the oracle's
// permutation-equivalence model (DESIGN.md §4.9). For the stateless spaces
// (TJ, MM, PC) the warm-up run changes nothing.
func (in *Instance) OracleSpec() nest.Spec {
	in.Run(nest.Original(), nest.FlagCounter)
	return in.Spec
}

// RunWith executes the instance under the parallel executor, wiring the
// instance's ForTask sharding into cfg (unless the caller set its own) and
// folding ExtraOps into the merged Stats.
func (in *Instance) RunWith(cfg nest.RunConfig) (nest.RunResult, error) {
	in.Reset()
	if cfg.ForTask == nil {
		cfg.ForTask = in.ForTask
	}
	e := nest.MustNew(in.Spec)
	res, err := e.RunWith(cfg)
	res.Stats.ExtraOps = in.ExtraOps()
	return res, err
}

// shardSet collects the per-task reduction shards a run's ForTask hands out.
type shardSet[T any] struct {
	mu   sync.Mutex
	list []*T
}

func (s *shardSet[T]) add() *T {
	t := new(T)
	s.mu.Lock()
	s.list = append(s.list, t)
	s.mu.Unlock()
	return t
}

func (s *shardSet[T]) reset() {
	s.mu.Lock()
	s.list = nil
	s.mu.Unlock()
}

func (s *shardSet[T]) fold(f func(*T)) {
	s.mu.Lock()
	for _, t := range s.list {
		f(t)
	}
	s.mu.Unlock()
}

// mix is a cheap 64-bit hash combiner for checksums.
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// TreeJoin builds the TJ benchmark: a cross product of two balanced binary
// trees of n nodes each, where each visited pair contributes both nodes'
// payloads to a running sum (Fig 1a's join). The payload is one cache line
// per node, so TJ has the paper's "low computational intensity": nearly all
// time goes to fetching tree data.
func TreeJoin(n int, seed int64) *Instance {
	outer := tree.NewBalanced(n)
	inner := tree.NewBalanced(n)
	valO := make([][8]uint64, n)
	valI := make([][8]uint64, n)
	s := uint64(seed)
	for k := 0; k < n; k++ {
		for w := 0; w < 8; w++ {
			s = s*6364136223846793005 + 1442695040888963407
			valO[k][w] = s
			s = s*6364136223846793005 + 1442695040888963407
			valI[k][w] = s
		}
	}
	type tjCells struct {
		sum   uint64
		works int64
	}
	var base tjCells
	var sh shardSet[tjCells]
	makeSpec := func(c *tjCells) nest.Spec {
		return nest.Spec{
			Outer: outer,
			Inner: inner,
			Work: func(o, i tree.NodeID) {
				c.works++
				vo, vi := &valO[o], &valI[i]
				for w := 0; w < 8; w++ {
					c.sum += vo[w] * vi[w]
				}
			},
		}
	}
	in := &Instance{
		Name:        "TJ",
		Description: fmt.Sprintf("tree join, two %d-node balanced trees", n),
		Reset:       func() { base = tjCells{}; sh.reset() },
		Checksum: func() uint64 {
			total := base.sum
			sh.fold(func(c *tjCells) { total += c.sum })
			return total
		},
		ExtraOps: func() int64 {
			works := base.works
			sh.fold(func(c *tjCells) { works += c.works })
			return works * 16
		},
		Trace: func(o, i tree.NodeID, emit func(memsim.Addr)) {
			emit(baseInnerNodes + memsim.Addr(i)*nodeStride)
			emit(baseOuterNodes + memsim.Addr(o)*nodeStride)
		},
	}
	in.Spec = makeSpec(&base)
	in.ForTask = func(root tree.NodeID, _ nest.Spec) nest.Spec {
		return makeSpec(sh.add())
	}
	return in
}

// rangeTree builds a balanced binary tree whose leaves are the indices
// [0, n) in order, returning the topology and the leaf index of each node
// (-1 for internal nodes). This is the Cilk-style divide-and-conquer
// decomposition of a for loop discussed in §7.2.
func rangeTree(n int) (*tree.Topology, []int32) {
	b := tree.NewBuilder(2*n - 1)
	var idx []int32
	var build func(lo, hi int32) tree.NodeID
	build = func(lo, hi int32) tree.NodeID {
		id := b.Add()
		if hi-lo == 1 {
			idx = append(idx, lo)
			return id
		}
		idx = append(idx, -1)
		mid := lo + (hi-lo)/2
		b.SetLeft(id, build(lo, mid))
		b.SetRight(id, build(mid, hi))
		return id
	}
	root := build(0, int32(n))
	return b.MustBuild(root), idx
}

// MatMul builds the MM benchmark: C = A·B for n×n float64 matrices, with the
// outer recursion dividing the rows of A and the inner recursion dividing
// the columns of B; work(o, i) at a leaf-leaf pair is the dot product of row
// o and column i (§6.1). B is stored column-major so each column is
// contiguous, as a cache-conscious baseline would.
func MatMul(n int, seed int64) *Instance {
	outer, rowIdx := rangeTree(n)
	inner, colIdx := rangeTree(n)
	a := make([]float64, n*n)  // row-major
	bt := make([]float64, n*n) // column-major B (row-major Bᵀ)
	c := make([]float64, n*n)  // row-major
	s := uint64(seed)
	for k := range a {
		s = s*6364136223846793005 + 1442695040888963407
		a[k] = float64(s%1000) / 1000
		s = s*6364136223846793005 + 1442695040888963407
		bt[k] = float64(s%1000) / 1000
	}
	var pairs int64
	var sh shardSet[int64]
	lineFloats := int32(8) // 64B line holds 8 float64s
	in := &Instance{
		Name:        "MM",
		Description: fmt.Sprintf("recursive matrix multiply, %dx%d", n, n),
		Reset: func() {
			pairs = 0
			sh.reset()
			for k := range c {
				c[k] = 0
			}
		},
		Checksum: func() uint64 {
			var h uint64 = 14695981039346656037
			for _, v := range c {
				h = mix(h, uint64(v*1024))
			}
			return h
		},
		ExtraOps: func() int64 {
			p := pairs
			sh.fold(func(n *int64) { p += *n })
			return p * int64(n) * 2
		},
		Trace: func(o, i tree.NodeID, emit func(memsim.Addr)) {
			r, cl := rowIdx[o], colIdx[i]
			if r < 0 || cl < 0 {
				return
			}
			// The dot product streams one column of B and one row of A.
			for k := int32(0); k < int32(n); k += lineFloats {
				emit(baseMatB + memsim.Addr(cl*int32(n)+k)*8)
			}
			for k := int32(0); k < int32(n); k += lineFloats {
				emit(baseMatA + memsim.Addr(r*int32(n)+k)*8)
			}
			emit(baseMatC + memsim.Addr(r*int32(n)+cl)*8)
		},
	}
	makeSpec := func(pairs *int64) nest.Spec {
		return nest.Spec{
			Outer: outer,
			Inner: inner,
			Work: func(o, i tree.NodeID) {
				r, cl := rowIdx[o], colIdx[i]
				if r < 0 || cl < 0 {
					return
				}
				*pairs++
				// C rows are disjoint across outer subtrees, so tasks
				// never write the same cell.
				row := a[int(r)*n : int(r+1)*n]
				col := bt[int(cl)*n : int(cl+1)*n]
				var dot float64
				for k := 0; k < n; k++ {
					dot += row[k] * col[k]
				}
				c[int(r)*n+int(cl)] = dot
			},
		}
	}
	in.Spec = makeSpec(&pairs)
	in.ForTask = func(root tree.NodeID, _ nest.Spec) nest.Spec {
		return makeSpec(sh.add())
	}
	return in
}

// dualTraced builds the shared Trace function for the dual-tree benchmarks:
// each work(o, i) touches the two tree nodes; a leaf-leaf pair additionally
// streams both leaves' point data.
func dualTraced(query, ref interface {
	NodePoints(tree.NodeID) []geom.Point
}, qTopo, rTopo *tree.Topology, qStart, rStart []int32) func(o, i tree.NodeID, emit func(memsim.Addr)) {
	const ptBytes = 24 // 3 float64 coordinates
	return func(o, i tree.NodeID, emit func(memsim.Addr)) {
		emit(baseInnerNodes + memsim.Addr(i)*nodeStride)
		emit(baseOuterNodes + memsim.Addr(o)*nodeStride)
		if !qTopo.IsLeaf(o) || !rTopo.IsLeaf(i) {
			return
		}
		nq := int32(len(query.NodePoints(o)))
		nr := int32(len(ref.NodePoints(i)))
		for k := int32(0); k*64 < nr*ptBytes; k++ {
			emit(baseInnerData + memsim.Addr(rStart[i])*ptBytes + memsim.Addr(k)*64)
		}
		for k := int32(0); k*64 < nq*ptBytes; k++ {
			emit(baseOuterData + memsim.Addr(qStart[o])*ptBytes + memsim.Addr(k)*64)
		}
	}
}

// leafSize is the leaf bucket capacity for all spatial trees.
const leafSize = 8

// PointCorr builds the PC benchmark: dual-tree 2-point correlation of n
// uniform points against themselves with the given radius. The radius
// controls how much of the reference tree each query's traversal visits —
// and hence, as in the paper's Fig 9, whether the per-traversal working set
// fits in cache (small inputs) or thrashes it (large ones).
func PointCorr(n int, radius float64, seed int64) *Instance {
	pts := geom.Generate(geom.Uniform, n, seed)
	ix := kdtree.MustBuild(pts, leafSize)
	pc := dualtree.NewPC(ix, ix, radius)
	type pcCells struct{ count, pairOps int64 }
	var sh shardSet[pcCells]
	return &Instance{
		Name:        "PC",
		Description: fmt.Sprintf("dual-tree point correlation, %d points, r=%.3g", n, radius),
		Spec:        pc.Spec(),
		Reset:       func() { pc.Reset(); sh.reset() },
		Checksum: func() uint64 {
			count := pc.Count
			sh.fold(func(c *pcCells) { count += c.count })
			return uint64(count)
		},
		ExtraOps: func() int64 {
			ops := pc.PairOps
			sh.fold(func(c *pcCells) { ops += c.pairOps })
			return ops * 8
		},
		Trace: dualTraced(ix, ix, ix.Topo, ix.Topo, ix.Start, ix.Start),
		ForTask: func(root tree.NodeID, _ nest.Spec) nest.Spec {
			c := sh.add()
			return pc.SpecInto(&c.count, &c.pairOps)
		},
	}
}

// NearestNeighbor builds the NN benchmark: all-nearest-neighbors of n
// uniform query points in n uniform reference points.
func NearestNeighbor(n int, seed int64) *Instance {
	q := kdtree.MustBuild(geom.Generate(geom.Uniform, n, seed), leafSize)
	r := kdtree.MustBuild(geom.Generate(geom.Uniform, n, seed+1), leafSize)
	nn := dualtree.NewNN(q, r)
	var sh shardSet[int64]
	return &Instance{
		Name:        "NN",
		Description: fmt.Sprintf("dual-tree nearest neighbor, %d queries in %d refs", n, n),
		Spec:        nn.Spec(),
		Reset:       func() { nn.Reset(); sh.reset() },
		Checksum: func() uint64 {
			var h uint64 = 14695981039346656037
			for k := range nn.BestI {
				h = mix(h, uint64(nn.BestI[k]))
			}
			return h
		},
		ExtraOps: func() int64 {
			ops := nn.PairOps
			sh.fold(func(n *int64) { ops += *n })
			return ops * 8
		},
		Trace: dualTraced(q, r, q.Topo, r.Topo, q.Start, r.Start),
		ForTask: func(root tree.NodeID, _ nest.Spec) nest.Spec {
			// Fresh infinite bounds per task: pruning becomes a pure
			// function of the task's subtree (deterministic merged stats),
			// and conservative pruning cannot change the neighbors found.
			return nn.SpecInto(dualtree.InfBounds(q.Topo), sh.add())
		},
	}
}

// KNearest builds the KNN benchmark (k=5 in the paper) over kd-trees.
func KNearest(n, k int, seed int64) *Instance {
	q := kdtree.MustBuild(geom.Generate(geom.Clustered, n, seed), leafSize)
	r := kdtree.MustBuild(geom.Generate(geom.Clustered, n, seed+1), leafSize)
	kn := dualtree.NewKNN(q, r, k)
	var sh shardSet[int64]
	return &Instance{
		Name:        "KNN",
		Description: fmt.Sprintf("dual-tree %d-nearest neighbor, %d points", k, n),
		Spec:        kn.Spec(),
		Reset:       func() { kn.Reset(); sh.reset() },
		Checksum:    func() uint64 { return knnChecksum(kn, n) },
		ExtraOps: func() int64 {
			ops := kn.PairOps
			sh.fold(func(n *int64) { ops += *n })
			return ops * 8
		},
		Trace: dualTraced(q, r, q.Topo, r.Topo, q.Start, r.Start),
		ForTask: func(root tree.NodeID, _ nest.Spec) nest.Spec {
			return kn.SpecInto(dualtree.InfBounds(q.Topo), sh.add())
		},
	}
}

// VPKNearest builds the VP benchmark (k=10 in the paper): k-nearest-neighbor
// self-join over a vantage-point tree.
func VPKNearest(n, k int, seed int64) *Instance {
	ix := vptree.MustBuild(geom.Generate(geom.Clustered, n, seed), leafSize, seed)
	kn := dualtree.NewKNN(ix, ix, k)
	var sh shardSet[int64]
	return &Instance{
		Name:        "VP",
		Description: fmt.Sprintf("vp-tree %d-nearest neighbor self-join, %d points", k, n),
		Spec:        kn.Spec(),
		Reset:       func() { kn.Reset(); sh.reset() },
		Checksum:    func() uint64 { return knnChecksum(kn, n) },
		ExtraOps: func() int64 {
			ops := kn.PairOps
			sh.fold(func(n *int64) { ops += *n })
			return ops * 8
		},
		Trace: dualTraced(ix, ix, ix.Topo, ix.Topo, ix.Start, ix.Start),
		ForTask: func(root tree.NodeID, _ nest.Spec) nest.Spec {
			return kn.SpecInto(dualtree.InfBounds(ix.Topo), sh.add())
		},
	}
}

func knnChecksum(kn *dualtree.KNN, n int) uint64 {
	var h uint64 = 14695981039346656037
	for q := 0; q < n; q++ {
		_, is := kn.Result(q)
		for _, i := range is {
			h = mix(h, uint64(i))
		}
	}
	return h
}

// Names returns the suite benchmark abbreviations in suite order.
func Names() []string {
	return []string{"TJ", "MM", "PC", "NN", "KNN", "VP"}
}

// Irregular reports whether the named benchmark's iteration space is
// irregular (Spec.TruncInner2 set): the dual-tree benchmarks prune inner
// subtrees based on the outer traversal state, while TJ and MM are
// rectangular. The classification is static — it holds at every scale and
// seed — which lets schedule legality (internal/transform/algebra) be
// checked without building an instance. The name must be canonical (see
// CanonicalName).
func Irregular(name string) (bool, error) {
	switch name {
	case "TJ", "MM":
		return false, nil
	case "PC", "NN", "KNN", "VP":
		return true, nil
	}
	return false, fmt.Errorf("workloads: unknown workload %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// CanonicalName maps a benchmark name, case-insensitively, to its canonical
// suite abbreviation, or reports an error naming the valid set.
func CanonicalName(name string) (string, error) {
	for _, n := range Names() {
		if strings.EqualFold(name, n) {
			return n, nil
		}
	}
	return "", fmt.Errorf("workloads: unknown workload %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// ByName builds one suite benchmark at the common scale parameter n, using
// the same per-benchmark sizing rules as Suite. The name must be canonical
// (see CanonicalName).
func ByName(name string, n int, seed int64) (*Instance, error) {
	switch name {
	case "TJ":
		tj := n / 4
		if tj < 64 {
			tj = 64
		}
		return TreeJoin(tj, seed), nil
	case "MM":
		m := n / 64
		if m < 32 {
			m = 32
		}
		return MatMul(m, seed), nil
	case "PC":
		return PointCorr(n, 0.4, seed), nil
	case "NN":
		return NearestNeighbor(n, seed), nil
	case "KNN":
		return KNearest(n, 5, seed), nil
	case "VP":
		return VPKNearest(n, 10, seed), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// Suite returns the paper's six benchmarks at a common scale parameter n.
// Per-benchmark sizes are chosen so each reaches the paper's interesting
// regime at comparable cost: TJ performs Θ(n²) work so it runs at n/4 nodes,
// MM performs Θ(m³) work so it runs at m = n/64, and the dual-tree
// benchmarks run at n points (PC with radius 0.4, which at the default
// scales makes per-query traversals exceed the simulated LLC — the paper's
// large-input regime of Fig 9).
func Suite(n int, seed int64) []*Instance {
	out := make([]*Instance, 0, len(Names()))
	for _, name := range Names() {
		in, err := ByName(name, n, seed)
		if err != nil {
			panic(err) // unreachable: Names() yields only canonical names
		}
		out = append(out, in)
	}
	return out
}
