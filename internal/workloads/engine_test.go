package workloads

import (
	"testing"

	"twist/internal/layout"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/oracle"
	"twist/internal/transform/algebra"
)

// legalVariants enumerates the schedule variants every legal completion of
// the identity schedule lowers onto for this instance's dependence
// witnesses — the algebra-driven axis of the engine differential (inlining
// is disabled: it changes generated code, not the visit order the engines
// must agree on). Duplicate lowerings collapse.
func legalVariants(in *Instance) []nest.Variant {
	ws := algebra.FromSpec(in.Spec)
	legal := algebra.Complete(algebra.Identity(), ws, algebra.CompleteOptions{
		Cutoffs:   []int{0, 16},
		MaxInline: -1,
	})
	seen := map[nest.Variant]bool{}
	var out []nest.Variant
	for _, s := range legal {
		v := s.Variant()
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestEngineSuiteDifferential is the tentpole acceptance suite at the
// workloads level (DESIGN.md §4.13): across all six benchmarks × every
// legal schedule (via algebra.Complete) × layouts × workers {1, 4}, the
// iterative visit engine is bit-identical to the recursive one — same
// Stats, same checksums, same traced address streams — while its
// engine-overhead counter strictly drops on twist-core schedules. Runs
// race-clean under -race via the parallel-executor legs.
func TestEngineSuiteDifferential(t *testing.T) {
	const scale, seed = 256, 11
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := Suite(scale, seed)[k]
			for _, v := range legalVariants(in) {
				// Sequential: merged Stats, checksum, and the overhead axis.
				recStats, recOps, err := in.RunSeq(nil, v, nil)
				if err != nil {
					t.Fatal(err)
				}
				recSum := in.Checksum()
				iterStats, iterOps, err := in.RunSeq(nil, v,
					func(e *nest.Exec) { e.Engine = nest.EngineIterative })
				if err != nil {
					t.Fatal(err)
				}
				if iterStats != recStats {
					t.Errorf("%v: sequential stats diverge:\n iter %+v\n rec  %+v", v, iterStats, recStats)
				}
				if sum := in.Checksum(); sum != recSum {
					t.Errorf("%v: sequential checksum %x != recursive %x", v, sum, recSum)
				}
				if iterOps <= 0 {
					t.Errorf("%v: iterative engine ops %d", v, iterOps)
				}
				if (v.Kind == nest.KindTwisted || v.Kind == nest.KindTwistedCutoff) && iterOps >= recOps {
					t.Errorf("%v: iterative engine ops %d not below recursive %d", v, iterOps, recOps)
				}

				// Layouts: the traced address stream — count and value
				// digest — is engine-invariant under every arena layout.
				for _, kind := range []layout.Kind{layout.BuildOrder, layout.VEB} {
					lin, err := in.UnderLayout(kind, v)
					if err != nil {
						t.Fatalf("%v/%v: %v", v, kind, err)
					}
					digest := func(eng nest.Engine) (int64, uint64) {
						var n int64
						d := uint64(14695981039346656037)
						_, _, err := lin.RunEmit(nil, v, func(a memsim.Addr) {
							n++
							d = mix(d, uint64(a))
						}, func(e *nest.Exec) { e.Engine = eng })
						if err != nil {
							t.Fatalf("%v/%v: %v", v, kind, err)
						}
						return n, d
					}
					rn, rd := digest(nest.EngineRecursive)
					in2, id := digest(nest.EngineIterative)
					if rn != in2 || rd != id {
						t.Errorf("%v/%v: traced streams diverge: iterative %d/%x, recursive %d/%x",
							v, kind, in2, id, rn, rd)
					}
				}

				// Parallel: merged Stats and checksums across engines at
				// workers 1 and 4, with the overhead counter deterministic
				// across worker counts.
				var iterEngineOps []int64
				for _, workers := range []int{1, 4} {
					recRes, err := in.RunWith(nest.RunConfig{
						Variant: v, Workers: workers, Stealing: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					recParSum := in.Checksum()
					iterRes, err := in.RunWith(nest.RunConfig{
						Variant: v, Engine: nest.EngineIterative, Workers: workers, Stealing: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					if iterRes.Stats != recRes.Stats || iterRes.Tasks != recRes.Tasks {
						t.Errorf("%v workers=%d: parallel results diverge:\n iter %+v\n rec  %+v",
							v, workers, iterRes, recRes)
					}
					if sum := in.Checksum(); sum != recParSum {
						t.Errorf("%v workers=%d: parallel checksum %x != recursive %x", v, workers, sum, recParSum)
					}
					iterEngineOps = append(iterEngineOps, iterRes.EngineOps)
				}
				if iterEngineOps[0] != iterEngineOps[1] {
					t.Errorf("%v: iterative engine ops drift across worker counts: %v", v, iterEngineOps)
				}
			}
		})
	}
}

// TestEngineSuiteOracle verdicts the iterative engine against golden traces
// of the recursive baseline: permutation equivalence with per-column order
// intact, sequentially and on the parallel executor — the engine axis is
// invisible to the oracle's model.
func TestEngineSuiteOracle(t *testing.T) {
	const scale, seed = 256, 11
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := Suite(scale, seed)[k]
			spec := in.OracleSpec()
			g, err := oracle.Capture(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range legalVariants(in) {
				if vd := g.CheckVariantOn(spec, nest.EngineIterative, v, nest.FlagCounter, false); !vd.OK {
					t.Fatalf("%s: %v", name, vd)
				}
			}
			vd, err := g.CheckParallel(spec, nest.RunConfig{
				Variant: nest.Twisted(), Engine: nest.EngineIterative, Workers: 4, Stealing: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !vd.OK {
				t.Fatalf("%s parallel: %v", name, vd)
			}
		})
	}
}
