package workloads

import (
	"testing"

	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/tree"
)

var schedules = []nest.Variant{
	nest.Original(), nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(32),
}

// The master soundness check of DESIGN.md §4.3: every benchmark computes an
// identical result under every schedule and both flag representations.
func TestAllBenchmarksAgreeAcrossSchedules(t *testing.T) {
	for _, in := range Suite(1024, 7) {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			in.Run(nest.Original(), nest.FlagCounter)
			want := in.Checksum()
			if want == 0 {
				t.Fatalf("%s: zero baseline checksum (degenerate workload?)", in.Name)
			}
			for _, v := range schedules {
				for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
					in.Run(v, fm)
					if got := in.Checksum(); got != want {
						t.Fatalf("%s/%v/%v: checksum %x, want %x", in.Name, v, fm, got, want)
					}
				}
			}
		})
	}
}

func TestMatMulComputesRealProduct(t *testing.T) {
	const n = 8
	in := MatMul(n, 3)
	in.Run(nest.Twisted(), nest.FlagCounter)
	tw := in.Checksum()
	in.Run(nest.Original(), nest.FlagCounter)
	if in.Checksum() != tw {
		t.Fatal("MM checksum differs between schedules")
	}
	// Cross-check one more property: checksum changes if the input changes.
	other := MatMul(n, 4)
	other.Run(nest.Original(), nest.FlagCounter)
	if other.Checksum() == tw {
		t.Fatal("different inputs gave identical checksums")
	}
}

func TestTreeJoinWorkCount(t *testing.T) {
	in := TreeJoin(255, 1)
	st := in.Run(nest.Twisted(), nest.FlagCounter)
	if st.Work != 255*255 {
		t.Fatalf("TJ work = %d, want %d", st.Work, 255*255)
	}
	if st.ExtraOps == 0 {
		t.Fatal("TJ ExtraOps not reported")
	}
}

func TestRangeTreeShape(t *testing.T) {
	topo, idx := rangeTree(16)
	if topo.Len() != 31 {
		t.Fatalf("range tree over 16 leaves has %d nodes, want 31", topo.Len())
	}
	var leaves []int32
	for n := tree.NodeID(0); int(n) < topo.Len(); n++ {
		if topo.IsLeaf(n) {
			if idx[n] < 0 {
				t.Fatalf("leaf %d has no index", n)
			}
			leaves = append(leaves, idx[n])
		} else if idx[n] >= 0 {
			t.Fatalf("internal node %d has leaf index %d", n, idx[n])
		}
	}
	if len(leaves) != 16 {
		t.Fatalf("%d leaves, want 16", len(leaves))
	}
	seen := map[int32]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Fatalf("leaf index %d duplicated", l)
		}
		seen[l] = true
	}
}

func TestTracedSpecEmitsAccesses(t *testing.T) {
	for _, in := range Suite(256, 9) {
		in.Reset()
		var n int64
		s := in.TracedSpec(func(a memsim.Addr) { n++ })
		e := nest.MustNew(s)
		e.Run(nest.Original())
		if n == 0 {
			t.Fatalf("%s: traced run emitted no accesses", in.Name)
		}
		// The traced spec must not perturb results.
		got := in.Checksum()
		in.Run(nest.Original(), nest.FlagCounter)
		if in.Checksum() != got {
			t.Fatalf("%s: tracing changed the result", in.Name)
		}
	}
}

func TestTraceAddressesDisjointPerStructure(t *testing.T) {
	in := PointCorr(512, 0.05, 3)
	in.Reset()
	regions := map[memsim.Addr]bool{}
	s := in.TracedSpec(func(a memsim.Addr) { regions[a>>30] = true })
	e := nest.MustNew(s)
	e.Run(nest.Original())
	if len(regions) < 3 {
		t.Fatalf("PC trace touched %d regions, want >= 3 (nodes x2, point data)", len(regions))
	}
}

func TestSuiteNamesAndDescriptions(t *testing.T) {
	want := []string{"TJ", "MM", "PC", "NN", "KNN", "VP"}
	suite := Suite(256, 1)
	if len(suite) != len(want) {
		t.Fatalf("suite has %d entries", len(suite))
	}
	for k, in := range suite {
		if in.Name != want[k] {
			t.Fatalf("suite[%d] = %s, want %s", k, in.Name, want[k])
		}
		if in.Description == "" {
			t.Fatalf("%s has empty description", in.Name)
		}
	}
}

// Dual-tree benchmarks must show the §4.2 iteration-overhead shape at suite
// scale: interchange >> twisted >= original.
func TestDualTreeIterationShape(t *testing.T) {
	in := PointCorr(2048, 0.03, 5)
	orig := in.Run(nest.Original(), nest.FlagCounter)
	inter := in.Run(nest.Interchanged(), nest.FlagCounter)
	tw := in.Run(nest.Twisted(), nest.FlagCounter)
	if !(inter.Iterations > tw.Iterations && tw.Iterations >= orig.Iterations) {
		t.Fatalf("iteration shape violated: orig=%d tw=%d inter=%d",
			orig.Iterations, tw.Iterations, inter.Iterations)
	}
}
