package workloads

import (
	"testing"

	"twist/internal/nest"
)

// Every benchmark must produce its sequential checksum under the parallel
// executors, and — thanks to ForTask sharding and per-task pruning bounds —
// merged Stats identical across worker counts (run with -race in CI). Each
// bench gets its own parallel subtest with its own Suite instance, so the
// subtests share no mutable state and the checksum comparisons cannot
// interleave across benches.
func TestSuiteParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker suite sweep")
	}
	grid := []struct {
		workers  int
		stealing bool
	}{
		{2, false}, {2, true}, {4, false}, {4, true}, {8, true},
	}
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := Suite(512, 3)[k]
			if in.ForTask == nil {
				t.Fatalf("%s: no ForTask sharding", in.Name)
			}
			want := in.Run(nest.Twisted(), nest.FlagCounter)
			wantSum := in.Checksum()
			base, err := in.RunWith(nest.RunConfig{Variant: nest.Twisted(), Workers: 1, Stealing: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := in.Checksum(); got != wantSum {
				t.Fatalf("1-worker checksum %#x != sequential %#x", got, wantSum)
			}
			if base.Stats.Work > want.Work*3 {
				t.Fatalf("decomposed run did %d work vs sequential %d — sharded bounds too loose",
					base.Stats.Work, want.Work)
			}
			for _, g := range grid {
				res, err := in.RunWith(nest.RunConfig{Variant: nest.Twisted(), Workers: g.workers, Stealing: g.stealing})
				if err != nil {
					t.Fatal(err)
				}
				if got := in.Checksum(); got != wantSum {
					t.Fatalf("w=%d stealing=%v: checksum %#x != sequential %#x",
						g.workers, g.stealing, got, wantSum)
				}
				if res.Stats != base.Stats {
					t.Fatalf("w=%d stealing=%v: merged stats differ from 1-worker run:\n got %v\nwant %v",
						g.workers, g.stealing, res.Stats, base.Stats)
				}
			}
		})
	}
}
