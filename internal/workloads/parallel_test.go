package workloads

import (
	"testing"

	"twist/internal/nest"
)

// Every benchmark must produce its sequential checksum under the parallel
// executors, and — thanks to ForTask sharding and per-task pruning bounds —
// merged Stats identical across worker counts (run with -race in CI).
func TestSuiteParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker suite sweep")
	}
	for _, in := range Suite(512, 3) {
		if in.ForTask == nil {
			t.Fatalf("%s: no ForTask sharding", in.Name)
		}
		want := in.Run(nest.Twisted(), nest.FlagCounter)
		wantSum := in.Checksum()
		base, err := in.RunWith(nest.RunConfig{Variant: nest.Twisted(), Workers: 1, Stealing: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := in.Checksum(); got != wantSum {
			t.Fatalf("%s: 1-worker checksum %#x != sequential %#x", in.Name, got, wantSum)
		}
		if base.Stats.Work > want.Work*3 {
			t.Fatalf("%s: decomposed run did %d work vs sequential %d — sharded bounds too loose",
				in.Name, base.Stats.Work, want.Work)
		}
		for _, workers := range []int{2, 4} {
			for _, stealing := range []bool{false, true} {
				res, err := in.RunWith(nest.RunConfig{Variant: nest.Twisted(), Workers: workers, Stealing: stealing})
				if err != nil {
					t.Fatal(err)
				}
				if got := in.Checksum(); got != wantSum {
					t.Fatalf("%s w=%d stealing=%v: checksum %#x != sequential %#x",
						in.Name, workers, stealing, got, wantSum)
				}
				if res.Stats != base.Stats {
					t.Fatalf("%s w=%d stealing=%v: merged stats differ from 1-worker run:\n got %v\nwant %v",
						in.Name, workers, stealing, res.Stats, base.Stats)
				}
			}
		}
	}
}
