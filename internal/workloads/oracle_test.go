package workloads

import (
	"testing"

	"twist/internal/nest"
	"twist/internal/oracle"
)

// suiteNames mirrors Suite's fixed benchmark order, letting subtests build
// their own Instance (no shared mutable state) while running in parallel.
var suiteNames = []string{"TJ", "MM", "PC", "NN", "KNN", "VP"}

// The oracle acceptance gate: every workload × every generated schedule
// variant × both flag representations × the §4.2 cut on and off replays the
// baseline visit multiset with per-column order intact, and the parallel
// executors do the same at workers ∈ {1,4,8}, static and stealing.
func TestOracleSuiteDifferential(t *testing.T) {
	const scale, seed = 256, 11
	for k, name := range suiteNames {
		k, name := k, name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			in := Suite(scale, seed)[k]
			spec := in.OracleSpec()
			g, err := oracle.Capture(spec)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if g.Visits() == 0 {
				t.Fatalf("%s: empty golden trace", name)
			}
			for _, v := range []nest.Variant{
				nest.Original(), nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(64),
			} {
				for _, fm := range []nest.FlagMode{nest.FlagSets, nest.FlagCounter} {
					for _, subtree := range []bool{false, true} {
						if vd := g.CheckVariant(spec, v, fm, subtree); !vd.OK {
							t.Fatalf("%s: %v", name, vd)
						}
					}
				}
			}
			if testing.Short() {
				return
			}
			for _, workers := range []int{1, 4, 8} {
				for _, stealing := range []bool{false, true} {
					for _, v := range []nest.Variant{nest.Interchanged(), nest.Twisted()} {
						vd, err := g.CheckParallel(spec, nest.RunConfig{
							Variant: v, Workers: workers, Stealing: stealing,
						})
						if err != nil {
							t.Fatal(err)
						}
						if !vd.OK {
							t.Fatalf("%s workers=%d stealing=%v: %v", name, workers, stealing, vd)
						}
					}
				}
			}
		})
	}
}
