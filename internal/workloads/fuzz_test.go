package workloads

import (
	"testing"

	"twist/internal/nest"
	"twist/internal/oracle"
)

// fuzzOracle drives one workload family through the semantic-equivalence
// oracle: build a small instance from the fuzzed parameters, purify it
// (OracleSpec freezes adaptive pruning bounds), capture the golden trace,
// and check one engine schedule plus one parallel configuration — the
// selector byte picks which — against it.
func fuzzOracle(f *testing.F, minN, maxN int, build func(n int, seed int64) *Instance) {
	f.Add(int64(1), uint16(48), uint8(2))
	f.Add(int64(7), uint16(96), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, rawN uint16, sel uint8) {
		n := minN + int(rawN)%(maxN-minN+1)
		in := build(n, seed)
		spec := in.OracleSpec()
		g, err := oracle.Capture(spec)
		if err != nil {
			t.Fatalf("%s n=%d seed=%d: capture: %v", in.Name, n, seed, err)
		}
		variants := []nest.Variant{
			nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(int(sel) * 4),
		}
		v := variants[int(sel)%len(variants)]
		fm := []nest.FlagMode{nest.FlagSets, nest.FlagCounter}[int(sel/3)%2]
		if vd := g.CheckVariant(spec, v, fm, sel%2 == 0); !vd.OK {
			t.Fatalf("%s n=%d seed=%d: %v", in.Name, n, seed, vd)
		}
		workers := []int{1, 2, 4, 8}[int(sel)%4]
		vd, err := g.CheckParallel(spec, nest.RunConfig{
			Variant: v, Workers: workers, Stealing: sel%2 == 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !vd.OK {
			t.Fatalf("%s n=%d seed=%d workers=%d: %v", in.Name, n, seed, workers, vd)
		}
	})
}

func FuzzOracleTJ(f *testing.F) {
	fuzzOracle(f, 1, 96, func(n int, s int64) *Instance { return TreeJoin(n, s) })
}

func FuzzOracleMM(f *testing.F) {
	fuzzOracle(f, 1, 16, func(n int, s int64) *Instance { return MatMul(n, s) })
}

func FuzzOraclePC(f *testing.F) {
	fuzzOracle(f, 1, 192, func(n int, s int64) *Instance { return PointCorr(n, 0.4, s) })
}

func FuzzOracleNN(f *testing.F) {
	fuzzOracle(f, 1, 160, func(n int, s int64) *Instance { return NearestNeighbor(n, s) })
}

func FuzzOracleKNN(f *testing.F) {
	fuzzOracle(f, 16, 128, func(n int, s int64) *Instance { return KNearest(n, 5, s) })
}

func FuzzOracleVP(f *testing.F) {
	fuzzOracle(f, 16, 128, func(n int, s int64) *Instance { return VPKNearest(n, 10, s) })
}
