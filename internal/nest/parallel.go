package nest

import (
	"fmt"
	"sync"

	"twist/internal/tree"
)

// RunParallel executes the computation with the task-parallel decomposition
// of paper §7.3: the outer recursion is unfolded breadth-wise down to
// spawnDepth, one task is spawned per outer subtree at that depth, and each
// task runs the given schedule (typically Twisted) on its sub-space. Columns
// of outer nodes shallower than spawnDepth are executed sequentially before
// their subtrees' tasks start, preserving the template's per-column
// semantics. At most workers tasks run concurrently (0 means unbounded).
//
// Soundness requires the §3.3 criterion — outer recursions independent of
// each other — and, additionally, that Spec.Work and the truncation
// predicates are safe to call from concurrent goroutines for *distinct*
// outer subtrees (iterations of a single column never run concurrently).
// As the paper notes, a task must not be subdivided further once twisting is
// applied inside it; this decomposition spawns strictly above the twisting.
//
// It returns the per-task statistics (spawn-order; the first entry covers
// the sequential shallow columns).
//
// Deprecated: use Exec.RunWith with a RunConfig — the same decomposition on
// the bounded-worker executors, with deterministic merged Stats,
// cancellation, and work stealing. RunParallel remains as the historical
// unbounded-goroutine form behind the package facade.
func RunParallel(s Spec, v Variant, spawnDepth, workers int, configure func(*Exec)) ([]Stats, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if spawnDepth < 0 {
		return nil, fmt.Errorf("nest: negative spawn depth %d", spawnDepth)
	}

	// Phase 1 (sequential): run the columns of all outer nodes above the
	// spawn depth and collect the task roots at the spawn depth.
	prefix := newConfigured(s, configure)
	iRoot := s.Inner.Root()
	var taskRoots []tree.NodeID
	var walk func(o tree.NodeID, depth int)
	walk = func(o tree.NodeID, depth int) {
		if prefix.truncO(o) {
			return
		}
		if depth == spawnDepth {
			taskRoots = append(taskRoots, o)
			return
		}
		prefix.inner(o, iRoot)
		walk(s.Outer.Left(o), depth+1)
		walk(s.Outer.Right(o), depth+1)
	}
	prefix.Stats = Stats{}
	prefix.prepare()
	walk(s.Outer.Root(), 0)

	// Phase 2 (parallel): one task per subtree, each with its own Exec (and
	// hence its own truncation-flag state).
	stats := make([]Stats, len(taskRoots)+1)
	stats[0] = prefix.Stats
	var sem chan struct{}
	if workers > 0 {
		sem = make(chan struct{}, workers)
	}
	var wg sync.WaitGroup
	for k, root := range taskRoots {
		wg.Add(1)
		go func(k int, root tree.NodeID) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			e := newConfigured(s, configure)
			e.RunFrom(v, root, iRoot)
			stats[k+1] = e.Stats
		}(k, root)
	}
	wg.Wait()
	return stats, nil
}

// newConfigured builds an Exec and applies the caller's configuration hook.
func newConfigured(s Spec, configure func(*Exec)) *Exec {
	e := MustNew(s)
	if configure != nil {
		configure(e)
	}
	return e
}
