package nest

import (
	"reflect"
	"sync"
	"testing"

	"twist/internal/tree"
)

// parallelPairs runs RunParallel collecting iterations thread-safely.
func parallelPairs(t *testing.T, s Spec, v Variant, depth, workers int) []pair {
	t.Helper()
	var mu sync.Mutex
	var got []pair
	s.Work = func(o, i tree.NodeID) {
		mu.Lock()
		got = append(got, pair{o, i})
		mu.Unlock()
	}
	if _, err := RunParallel(s, v, depth, workers, nil); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParallelExecutesSameIterationSet(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewRandomBST(100, 11), tree.NewRandomBST(90, 12)
	for _, irregular := range []bool{false, true} {
		s := regularSpec(outer, inner)
		if irregular {
			s = irregularSpec(outer, inner, 33, true, 0.7)
		}
		want := pairSet(runPairs(t, s, Original(), nil))
		for _, depth := range []int{0, 1, 3, 6} {
			got := pairSet(parallelPairs(t, s, Twisted(), depth, 4))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("irregular=%v depth=%d: parallel iteration set differs", irregular, depth)
			}
		}
	}
}

// Within each column, order is still the sequential one: a column is owned
// entirely by one task (or the sequential prefix).
func TestParallelPreservesColumnOrder(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(63), tree.NewBalanced(63)
	s := irregularSpec(outer, inner, 9, true, 0.6)
	ref := runPairs(t, s, Original(), nil)
	refCols := map[tree.NodeID][]tree.NodeID{}
	for _, p := range ref {
		refCols[p.o] = append(refCols[p.o], p.i)
	}
	var mu sync.Mutex
	gotCols := map[tree.NodeID][]tree.NodeID{}
	s.Work = func(o, i tree.NodeID) {
		mu.Lock()
		gotCols[o] = append(gotCols[o], i)
		mu.Unlock()
	}
	if _, err := RunParallel(s, Twisted(), 3, 0, nil); err != nil {
		t.Fatal(err)
	}
	for o, want := range refCols {
		if !reflect.DeepEqual(gotCols[o], want) {
			t.Fatalf("column %d order differs under parallel execution", o)
		}
	}
}

func TestParallelDepthZeroMatchesSequentialTwisted(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(31), tree.NewBalanced(31)
	s := regularSpec(outer, inner)
	want := runPairs(t, s, Twisted(), nil)
	got := parallelPairs(t, s, Twisted(), 0, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("depth-0 parallel run differs from sequential twisting")
	}
}

func TestParallelStatsCoverAllWork(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(127), tree.NewBalanced(127)
	s := regularSpec(outer, inner)
	s.Work = func(o, i tree.NodeID) {}
	stats, err := RunParallel(s, Twisted(), 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) < 2 {
		t.Fatalf("expected multiple tasks, got %d", len(stats))
	}
	var work int64
	for _, st := range stats {
		work += st.Work
	}
	if work != int64(outer.Len()*inner.Len()) {
		t.Fatalf("parallel tasks performed %d work, want %d", work, outer.Len()*inner.Len())
	}
}

func TestParallelConfigureHook(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(63), tree.NewBalanced(63)
	s := irregularSpec(outer, inner, 5, false, 0.8)
	var mu sync.Mutex
	var a, b []pair
	s.Work = func(o, i tree.NodeID) {
		mu.Lock()
		a = append(a, pair{o, i})
		mu.Unlock()
	}
	if _, err := RunParallel(s, Twisted(), 2, 2, func(e *Exec) { e.Flags = FlagSets }); err != nil {
		t.Fatal(err)
	}
	s.Work = func(o, i tree.NodeID) {
		mu.Lock()
		b = append(b, pair{o, i})
		mu.Unlock()
	}
	if _, err := RunParallel(s, Twisted(), 2, 2, func(e *Exec) { e.Flags = FlagCounter }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pairSet(a), pairSet(b)) {
		t.Fatal("flag modes disagree under parallel execution")
	}
}

func TestParallelErrors(t *testing.T) {
	t.Parallel()
	tr := tree.NewBalanced(3)
	if _, err := RunParallel(Spec{Outer: tr, Inner: tr}, Twisted(), 1, 0, nil); err == nil {
		t.Fatal("invalid spec accepted")
	}
	s := regularSpec(tr, tr)
	s.Work = func(o, i tree.NodeID) {}
	if _, err := RunParallel(s, Twisted(), -1, 0, nil); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestParallelDeepSpawnDepth(t *testing.T) {
	t.Parallel()
	// A spawn depth beyond the tree height leaves no tasks: everything runs
	// in the sequential prefix.
	outer, inner := tree.NewBalanced(7), tree.NewBalanced(7)
	s := regularSpec(outer, inner)
	got := parallelPairs(t, s, Twisted(), 10, 0)
	want := pairSet(runPairs(t, s, Original(), nil))
	if !reflect.DeepEqual(pairSet(got), want) {
		t.Fatal("deep spawn depth lost iterations")
	}
}

func BenchmarkParallelTwisted(b *testing.B) {
	s := benchSpec(1 << 11)
	for _, depth := range []int{0, 4} {
		depth := depth
		b.Run(itoa(depth)+"-tasks", func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				if _, err := RunParallel(s, Twisted(), depth, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
