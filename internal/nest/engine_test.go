package nest

import (
	"context"
	"reflect"
	"testing"

	"twist/internal/tree"
)

// runExact executes variant v of s under the given engine and returns the
// exact work order plus the final Stats.
func runExact(t *testing.T, s Spec, v Variant, eng Engine, tweak func(*Exec)) ([]pair, Stats, int64) {
	t.Helper()
	var got []pair
	s.Work = func(o, i tree.NodeID) { got = append(got, pair{o, i}) }
	e := MustNew(s)
	e.Engine = eng
	if tweak != nil {
		tweak(e)
	}
	e.Run(v)
	return got, e.Stats, e.EngineOps()
}

// The engine contract (DESIGN.md §4.13): the iterative lowering executes the
// *identical* schedule — same work order (not just multiset) and bit-identical
// Stats — across regular and irregular spaces, all variants, both flag
// modes, with and without the §4.2 optimization.
func TestEnginesBitIdentical(t *testing.T) {
	t.Parallel()
	shapes := []struct {
		name         string
		outer, inner *tree.Topology
	}{
		{"perfect", tree.NewPerfect(4), tree.NewPerfect(4)},
		{"balanced-uneven", tree.NewBalanced(37), tree.NewBalanced(61)},
		{"random", tree.NewRandomBST(45, 3), tree.NewRandomBST(33, 4)},
		{"chain-vs-tree", tree.NewChain(17), tree.NewBalanced(31)},
	}
	specs := func(outer, inner *tree.Topology) map[string]Spec {
		return map[string]Spec{
			"regular":          regularSpec(outer, inner),
			"irregular":        irregularSpec(outer, inner, 21, false, 0.6),
			"irregular-dense":  irregularSpec(outer, inner, 22, false, 0.95),
			"hereditary":       irregularSpec(outer, inner, 23, true, 0.6),
			"hereditary-dense": irregularSpec(outer, inner, 24, true, 0.95),
		}
	}
	variants := []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(3)}
	for _, sh := range shapes {
		for sname, s := range specs(sh.outer, sh.inner) {
			for _, v := range variants {
				for _, fm := range []FlagMode{FlagSets, FlagCounter} {
					for _, st := range []bool{false, true} {
						tweak := func(e *Exec) {
							e.Flags = fm
							e.SubtreeTruncation = st
						}
						wantPairs, wantStats, recOps := runExact(t, s, v, EngineRecursive, tweak)
						gotPairs, gotStats, iterOps := runExact(t, s, v, EngineIterative, tweak)
						if !reflect.DeepEqual(gotPairs, wantPairs) {
							t.Fatalf("%s/%s/%v/%v/subtree=%v: iterative work order diverges from recursive",
								sh.name, sname, v, fm, st)
						}
						if gotStats != wantStats {
							t.Fatalf("%s/%s/%v/%v/subtree=%v: stats diverge\n iter %v\n rec  %v",
								sh.name, sname, v, fm, st, gotStats, wantStats)
						}
						if iterOps > recOps {
							t.Fatalf("%s/%s/%v/%v/subtree=%v: iterative engine ops %d exceed recursive %d",
								sh.name, sname, v, fm, st, iterOps, recOps)
						}
					}
				}
			}
		}
	}
}

// The tentpole acceptance bound, at the unit level: on twisted schedules the
// engine-overhead counter must drop by at least 30% (truncated entries never
// become frames; the FlagCounter unwind phase is elided).
func TestIterativeEngineOpsReduction(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(511), tree.NewBalanced(511)
	for sname, s := range map[string]Spec{
		"regular":   regularSpec(outer, inner),
		"irregular": irregularSpec(outer, inner, 7, false, 0.3),
	} {
		for _, v := range []Variant{Twisted(), TwistedCutoff(15)} {
			_, recStats, recOps := runExact(t, s, v, EngineRecursive, nil)
			_, _, iterOps := runExact(t, s, v, EngineIterative, nil)
			if recStats.Work < 10_000 {
				t.Fatalf("%s/%v: degenerate spec (only %d visits), pick another seed", sname, v, recStats.Work)
			}
			red := 1 - float64(iterOps)/float64(recOps)
			if red < 0.30 {
				t.Errorf("%s/%v: engine ops reduction %.1f%% (rec %d, iter %d), want >= 30%%",
					sname, v, red*100, recOps, iterOps)
			}
		}
	}
}

// RunWith contract extension: the Engine axis changes neither the merged
// Stats nor the task decomposition, EngineOps is deterministic across worker
// counts and executors, and the recursive EngineOps equals OuterCalls +
// InnerCalls by construction.
func TestParallelEnginesIdentical(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewRandomBST(300, 5), tree.NewRandomBST(280, 6)
	s := irregularSpec(outer, inner, 31, true, 0.6)
	s.Work = func(o, i tree.NodeID) {}

	base, err := MustNew(s).RunWith(RunConfig{Variant: Twisted(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.EngineOps != base.Stats.OuterCalls+base.Stats.InnerCalls {
		t.Fatalf("recursive EngineOps %d != OuterCalls+InnerCalls %d",
			base.EngineOps, base.Stats.OuterCalls+base.Stats.InnerCalls)
	}
	var iterOps int64
	for _, workers := range []int{1, 3, 8} {
		for _, stealing := range []bool{false, true} {
			res, err := MustNew(s).RunWith(RunConfig{
				Variant:  Twisted(),
				Engine:   EngineIterative,
				Workers:  workers,
				Stealing: stealing,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats != base.Stats {
				t.Fatalf("workers=%d stealing=%v: iterative merged stats diverge\n iter %v\n rec  %v",
					workers, stealing, res.Stats, base.Stats)
			}
			if iterOps == 0 {
				iterOps = res.EngineOps
			} else if res.EngineOps != iterOps {
				t.Fatalf("workers=%d stealing=%v: EngineOps %d not deterministic (first saw %d)",
					workers, stealing, res.EngineOps, iterOps)
			}
		}
	}
	if iterOps >= base.EngineOps {
		t.Fatalf("parallel iterative EngineOps %d not below recursive %d", iterOps, base.EngineOps)
	}
}

// Cancellation still terminates the iterative drain loop promptly and
// surfaces ctx.Err; partial stats are permitted to differ between engines.
func TestIterativeContextCancel(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(1023), tree.NewBalanced(1023)
	s := regularSpec(outer, inner)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	s.Work = func(o, i tree.NodeID) {
		n++
		if n == 400 {
			cancel()
		}
	}
	e := MustNew(s)
	e.Engine = EngineIterative
	if err := e.RunContext(ctx, Twisted()); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Stats.Work >= int64(outer.Len())*int64(inner.Len()) {
		t.Fatal("cancellation did not cut the run short")
	}
}

func TestEngineStrings(t *testing.T) {
	t.Parallel()
	for _, eng := range Engines() {
		got, err := ParseEngine(eng.String())
		if err != nil || got != eng {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", eng.String(), got, err, eng)
		}
	}
	if Engine(99).String() != "unknown" {
		t.Fatal("out-of-range engine should print unknown")
	}
	if _, err := ParseEngine("flat"); err == nil {
		t.Fatal("ParseEngine should reject unknown names")
	}
	if _, err := ParseEngine(""); err == nil {
		t.Fatal("ParseEngine should reject the empty string")
	}
}
