// Work-stealing executor for the §7.3 parallel decomposition.
//
// The static spawn-depth split assigns whole depth-SpawnDepth subtrees to a
// fixed queue; on irregular, truncation-heavy spaces (PC, KNN, VP) the
// subtree costs are wildly uneven, so workers go idle while a straggler
// finishes. Here each worker owns a bounded deque of outer-subtree tasks:
// it pushes and pops at the tail (LIFO) so the task it runs next is the one
// whose outer subtree it touched most recently — the same locality argument
// as twisting itself — and when dry it steals the oldest half of a victim's
// deque (FIFO), taking the largest-grain tasks and leaving the victim its
// hot tail. The task *decomposition* is identical to the static executor's
// (split while depth < SpawnDepth, run the variant at SpawnDepth), so the
// merged Stats are byte-identical across executors and worker counts; only
// the assignment of tasks to workers varies.
package nest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"twist/internal/tree"
)

// task is one schedulable unit: an outer subtree and its split depth.
type task struct {
	root  tree.NodeID
	depth int32
}

// dequeCap bounds each worker's deque. The decomposition produces at most
// 2^(SpawnDepth+1) units total, so 256 is generous at the default depth;
// overflow falls back to running the task inline, which is always correct
// (it just forgoes exposing that task to thieves).
const dequeCap = 256

// deque is a bounded double-ended task queue: the owner pushes and pops at
// the tail, thieves take from the head. A mutex-guarded ring is deliberately
// chosen over a Chase-Lev array: with at most a few hundred coarse tasks per
// run the queue is touched far too rarely for lock-freedom to matter, and
// the mutex keeps the steal-half operation trivially correct.
type deque struct {
	mu         sync.Mutex
	buf        [dequeCap]task
	head, tail int // head = oldest; size = tail - head
}

// push appends t at the tail; it reports false when the deque is full.
func (d *deque) push(t task) bool {
	d.mu.Lock()
	if d.tail-d.head == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[d.tail%dequeCap] = t
	d.tail++
	d.mu.Unlock()
	return true
}

// pop removes and returns the most recently pushed task (LIFO).
func (d *deque) pop() (task, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return task{}, false
	}
	d.tail--
	t := d.buf[d.tail%dequeCap]
	d.mu.Unlock()
	return t, true
}

// stealHalf moves the oldest ceil(half) of d's tasks into scratch (FIFO
// order preserved: scratch[0] is the overall oldest) and returns it.
func (d *deque) stealHalf(scratch []task) []task {
	scratch = scratch[:0]
	d.mu.Lock()
	n := d.tail - d.head
	for k := 0; k < (n+1)/2; k++ {
		scratch = append(scratch, d.buf[d.head%dequeCap])
		d.head++
	}
	d.mu.Unlock()
	return scratch
}

// stealRun is the shared state of one work-stealing execution.
type stealRun struct {
	cfg        *RunConfig
	base       Spec
	spawnDepth int32
	iRoot      tree.NodeID
	deques     []*deque

	// pending counts tasks created but not yet finished; the run is over
	// when it reaches zero. tasks and steals feed RunResult. aborted is the
	// cross-worker cancellation latch.
	pending atomic.Int64
	tasks   atomic.Int64
	steals  atomic.Int64
	aborted atomic.Bool
}

// runStealing executes the decomposition on worker-owned deques.
func (e *Exec) runStealing(cfg RunConfig, workers int, depth int32) (RunResult, error) {
	r := &stealRun{
		cfg:        &cfg,
		base:       e.spec,
		spawnDepth: depth,
		iRoot:      e.spec.Inner.Root(),
		deques:     make([]*deque, workers),
	}
	for w := range r.deques {
		r.deques[w] = &deque{}
	}
	r.pending.Store(1)
	r.tasks.Store(1)
	r.deques[0].push(task{root: r.base.Outer.Root(), depth: 0})

	perWorker := make([]Stats, workers)
	engineOps := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w, e.child(cfg.Ctx), &perWorker[w], &engineOps[w])
		}(w)
	}
	wg.Wait()

	var merged Stats
	var ops int64
	for w, st := range perWorker {
		merged.Add(st)
		ops += engineOps[w]
	}
	res := RunResult{
		Stats:     merged,
		PerWorker: perWorker,
		Workers:   workers,
		Tasks:     r.tasks.Load(),
		Steals:    r.steals.Load(),
		EngineOps: ops,
	}
	if r.aborted.Load() {
		return res, cfg.Ctx.Err()
	}
	return res, nil
}

// worker is one scheduling loop: pop local LIFO; when dry, scan victims
// round-robin and steal the oldest half of the first non-empty deque (run
// the single oldest task, keep the rest locally — the local deque is empty,
// so they always fit); back off when everyone is dry but tasks are still in
// flight; exit when no task is pending anywhere.
func (r *stealRun) worker(w int, e *Exec, out *Stats, ops *int64) {
	var scratch []task
	idle := 0
	for {
		if t, ok := r.deques[w].pop(); ok {
			idle = 0
			r.runTask(e, w, t)
			continue
		}
		if r.pending.Load() == 0 {
			break
		}
		stole := false
		for off := 1; off < len(r.deques); off++ {
			scratch = r.deques[(w+off)%len(r.deques)].stealHalf(scratch)
			if len(scratch) == 0 {
				continue
			}
			r.steals.Add(int64(len(scratch)))
			for _, t := range scratch[1:] {
				r.deques[w].push(t)
			}
			idle, stole = 0, true
			r.runTask(e, w, scratch[0])
			break
		}
		if !stole {
			idle++
			if idle%64 == 0 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
	}
	*out = e.Stats
	*ops = e.EngineOps()
}

// runTask executes one unit on worker w's Exec: split nodes push their
// non-truncated children (exposing them to thieves) and run their own
// column; depth-SpawnDepth nodes run the whole schedule variant on their
// subtree. Pending bookkeeping is exact: every created task is eventually
// passed to runTask exactly once, and runTask decrements pending exactly
// once, so termination detection cannot misfire.
func (r *stealRun) runTask(e *Exec, w int, t task) {
	defer r.pending.Add(-1)
	if r.aborted.Load() {
		return
	}
	if r.cfg.Ctx != nil && e.ctxErr == nil {
		if err := r.cfg.Ctx.Err(); err != nil {
			e.ctxErr = err
		}
	}
	if e.ctxErr != nil {
		r.aborted.Store(true)
		return
	}
	if e.truncO(t.root) {
		return
	}
	spec := taskSpec(r.cfg, w, t.root, r.base)
	e.spec = spec
	if t.depth < r.spawnDepth {
		out := r.base.Outer
		for _, c := range [2]tree.NodeID{out.Left(t.root), out.Right(t.root)} {
			if c == tree.Nil || e.truncO(c) {
				continue
			}
			child := task{root: c, depth: t.depth + 1}
			r.pending.Add(1)
			r.tasks.Add(1)
			if !r.deques[w].push(child) {
				r.runTask(e, w, child)
				e.spec = spec
			}
		}
		e.column(t.root, r.iRoot)
	} else {
		e.runVariant(r.cfg.Variant, t.root, r.iRoot)
	}
	if e.ctxErr != nil {
		r.aborted.Store(true)
	}
}
