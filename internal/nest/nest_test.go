package nest

import (
	"math/rand"
	"reflect"
	"testing"

	"twist/internal/tree"
)

// pair is one iteration (o, i) of the space.
type pair struct{ o, i tree.NodeID }

// runPairs executes variant v of spec s and returns the work order.
func runPairs(t *testing.T, s Spec, v Variant, tweak func(*Exec)) []pair {
	t.Helper()
	var got []pair
	s.Work = func(o, i tree.NodeID) { got = append(got, pair{o, i}) }
	e := MustNew(s)
	if tweak != nil {
		tweak(e)
	}
	e.Run(v)
	return got
}

// regularSpec is the tree-join setup of Fig 1(a): no irregular truncation.
func regularSpec(outer, inner *tree.Topology) Spec {
	return Spec{Outer: outer, Inner: inner}
}

// crossProduct returns column-major (o, i) pairs, the schedule of Fig 1(c).
func crossProduct(outer, inner *tree.Topology) []pair {
	var out []pair
	for _, o := range outer.Preorder(nil) {
		for _, i := range inner.Preorder(nil) {
			out = append(out, pair{o, i})
		}
	}
	return out
}

func TestOriginalIsColumnMajorPreorder(t *testing.T) {
	outer, inner := tree.NewPerfect(2), tree.NewPerfect(2)
	got := runPairs(t, regularSpec(outer, inner), Original(), nil)
	want := crossProduct(outer, inner)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("original schedule:\n got %v\nwant %v", got, want)
	}
}

func TestInterchangedIsRowMajorPreorder(t *testing.T) {
	outer, inner := tree.NewPerfect(2), tree.NewBalanced(5)
	got := runPairs(t, regularSpec(outer, inner), Interchanged(), nil)
	var want []pair
	for _, i := range inner.Preorder(nil) {
		for _, o := range outer.Preorder(nil) {
			want = append(want, pair{o, i})
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interchanged schedule:\n got %v\nwant %v", got, want)
	}
}

// reuseDistances returns, for each access to addr in trace, the number of
// distinct other addresses touched since the previous access to addr
// (-1 encodes the paper's ∞ for the first access). This mirrors the analysis
// of paper §3.2 exactly.
func reuseDistances(trace []string, addr string) []int {
	var out []int
	last := -1
	for k, a := range trace {
		if a != addr {
			continue
		}
		if last < 0 {
			out = append(out, -1)
		} else {
			distinct := map[string]bool{}
			for _, b := range trace[last+1 : k] {
				distinct[b] = true
			}
			out = append(out, len(distinct))
		}
		last = k
	}
	return out
}

// traceOf runs variant v of a tree join over the two paper trees and returns
// the access trace. Following §3.2, work(o, i) "accesses exactly node o and
// node i"; the figures' reuse-distance examples imply the inner node is
// touched first (verified against both the Fig 1(c) and Fig 4(b) sequences).
func traceOf(t *testing.T, outer, inner *tree.Topology, v Variant) []string {
	t.Helper()
	var trace []string
	s := Spec{Outer: outer, Inner: inner, Work: func(o, i tree.NodeID) {
		trace = append(trace, "I"+string(rune('1'+i)))
		trace = append(trace, "O"+string(rune('A'+o)))
	}}
	e := MustNew(s)
	e.Run(v)
	return trace
}

// The paper's running example: inner-tree node 5 (preorder id 4) is accessed
// once per outer node. §3.2: "In the original schedule, the reuse distances
// for node 5 ... are, in order of execution, [∞, 8, 8, 8, 8, 8, 8]. In the
// twisted schedule, the reuse distances are [∞, 10, 3, 3, 10, 3, 3]."
func TestPaperNode5ReuseDistances(t *testing.T) {
	outer, inner := tree.NewPerfect(2), tree.NewPerfect(2)
	node5 := "I5" // paper label 5 == preorder index 4 == rune '1'+4

	orig := reuseDistances(traceOf(t, outer, inner, Original()), node5)
	if want := []int{-1, 8, 8, 8, 8, 8, 8}; !reflect.DeepEqual(orig, want) {
		t.Fatalf("original node-5 reuse distances = %v, want %v", orig, want)
	}

	tw := reuseDistances(traceOf(t, outer, inner, Twisted()), node5)
	if want := []int{-1, 10, 3, 3, 10, 3, 3}; !reflect.DeepEqual(tw, want) {
		t.Fatalf("twisted node-5 reuse distances = %v, want %v", tw, want)
	}
}

// sortPairs returns a canonical ordering for set comparison.
func pairSet(ps []pair) map[pair]int {
	m := make(map[pair]int, len(ps))
	for _, p := range ps {
		m[p]++
	}
	return m
}

// Soundness property 1 (DESIGN.md §4.3): on regular spaces, every schedule
// executes exactly the same multiset of iterations.
func TestAllSchedulesArePermutationsRegular(t *testing.T) {
	shapes := []struct {
		name         string
		outer, inner *tree.Topology
	}{
		{"perfect/perfect", tree.NewPerfect(3), tree.NewPerfect(3)},
		{"balanced/bst", tree.NewBalanced(33), tree.NewRandomBST(21, 3)},
		{"chain/chain", tree.NewChain(12), tree.NewChain(9)},
		{"bst/chain", tree.NewRandomBST(17, 9), tree.NewChain(5)},
		{"single/perfect", tree.NewBalanced(1), tree.NewPerfect(2)},
	}
	for _, sh := range shapes {
		want := pairSet(crossProduct(sh.outer, sh.inner))
		for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(4)} {
			got := pairSet(runPairs(t, regularSpec(sh.outer, sh.inner), v, nil))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%v: iteration multiset differs from cross product", sh.name, v)
			}
			for p, c := range got {
				if c != 1 {
					t.Fatalf("%s/%v: pair %v executed %d times", sh.name, v, p, c)
				}
			}
		}
	}
}

// Soundness property 2 (§3.3): within any fixed outer-tree node ("column"),
// the relative order of iterations is preserved by every schedule — this is
// what makes interchange (and hence twisting) sound for programs whose
// dependences are carried only over the inner recursion.
func TestColumnOrderPreserved(t *testing.T) {
	outer, inner := tree.NewRandomBST(25, 1), tree.NewRandomBST(31, 2)
	column := func(ps []pair, o tree.NodeID) []tree.NodeID {
		var is []tree.NodeID
		for _, p := range ps {
			if p.o == o {
				is = append(is, p.i)
			}
		}
		return is
	}
	ref := runPairs(t, regularSpec(outer, inner), Original(), nil)
	for _, v := range []Variant{Interchanged(), Twisted(), TwistedCutoff(8)} {
		got := runPairs(t, regularSpec(outer, inner), v, nil)
		for o := tree.NodeID(0); int(o) < outer.Len(); o++ {
			if !reflect.DeepEqual(column(got, o), column(ref, o)) {
				t.Fatalf("%v: column %d order differs from original", v, o)
			}
		}
	}
}

// Symmetric property for the transposed dependences: within any fixed inner
// node ("row"), interchange enumerates outer nodes in preorder.
func TestRowOrderUnderInterchangeIsPreorder(t *testing.T) {
	outer, inner := tree.NewRandomBST(15, 4), tree.NewBalanced(9)
	got := runPairs(t, regularSpec(outer, inner), Interchanged(), nil)
	pre := outer.Preorder(nil)
	for i := tree.NodeID(0); int(i) < inner.Len(); i++ {
		var os []tree.NodeID
		for _, p := range got {
			if p.i == i {
				os = append(os, p.o)
			}
		}
		if !reflect.DeepEqual(os, pre) {
			t.Fatalf("row %d under interchange = %v, want preorder %v", i, os, pre)
		}
	}
}

// TwistedCutoff with a cutoff at least the inner tree size never twists and
// must match the original schedule exactly; cutoff 0 must match parameterless
// twisting exactly (§7.1).
func TestCutoffLimits(t *testing.T) {
	outer, inner := tree.NewRandomBST(40, 5), tree.NewRandomBST(40, 6)
	orig := runPairs(t, regularSpec(outer, inner), Original(), nil)
	atCut := runPairs(t, regularSpec(outer, inner), TwistedCutoff(inner.Len()), nil)
	if !reflect.DeepEqual(orig, atCut) {
		t.Fatal("cutoff >= |inner| does not reproduce the original schedule")
	}
	tw := runPairs(t, regularSpec(outer, inner), Twisted(), nil)
	zero := runPairs(t, regularSpec(outer, inner), TwistedCutoff(0), nil)
	if !reflect.DeepEqual(tw, zero) {
		t.Fatal("cutoff 0 does not reproduce parameterless twisting")
	}
}

// Monotonicity of the cutoff: smaller cutoffs twist at least as often.
func TestCutoffMonotoneTwists(t *testing.T) {
	outer, inner := tree.NewBalanced(127), tree.NewBalanced(127)
	s := regularSpec(outer, inner)
	s.Work = func(o, i tree.NodeID) {}
	e := MustNew(s)
	prev := int64(-1)
	for _, c := range []int{127, 63, 31, 15, 7, 3, 1, 0} {
		e.Run(TwistedCutoff(c))
		if prev >= 0 && e.Stats.Twists < prev {
			t.Fatalf("cutoff %d twisted %d times, fewer than larger cutoff (%d)", c, e.Stats.Twists, prev)
		}
		prev = e.Stats.Twists
	}
}

// --- irregular truncation -------------------------------------------------

// irregularSpec builds a deterministic, schedule-independent TruncInner2 from
// a seed. With hereditary=true the predicate is fully hereditary: level is
// nondecreasing down the outer tree and thresh is nonincreasing down the
// inner tree, so level(o) > thresh(i) is monotone in both directions — the
// dual-tree Score property of §4.2.
func irregularSpec(outer, inner *tree.Topology, seed int64, hereditary bool, density float64) Spec {
	rng := rand.New(rand.NewSource(seed))
	level := make([]float64, outer.Len())
	for o := tree.NodeID(0); int(o) < outer.Len(); o++ {
		level[o] = rng.Float64()
	}
	thresh := make([]float64, inner.Len())
	for i := range thresh {
		thresh[i] = 1 - density*rng.Float64()
	}
	if hereditary {
		for _, o := range outer.Preorder(nil) {
			if p := outer.Parent(o); p != tree.Nil && level[o] < level[p] {
				level[o] = level[p]
			}
		}
		for _, i := range inner.Preorder(nil) {
			if p := inner.Parent(i); p != tree.Nil && thresh[i] > thresh[p] {
				thresh[i] = thresh[p]
			}
		}
	}
	return Spec{
		Outer:      outer,
		Inner:      inner,
		Hereditary: hereditary,
		TruncInner2: func(o, i tree.NodeID) bool {
			return level[o] > thresh[i]
		},
	}
}

// expectedIrregular computes the executed iteration set directly from the
// template's semantics: (o, i) runs iff no node on the inner root-to-i path
// truncates column o.
func expectedIrregular(s Spec) []pair {
	var out []pair
	var down func(o, i tree.NodeID)
	for _, o := range s.Outer.Preorder(nil) {
		down = func(o, i tree.NodeID) {
			if i == tree.Nil || s.TruncInner2(o, i) {
				return
			}
			out = append(out, pair{o, i})
			down(o, s.Inner.Left(i))
			down(o, s.Inner.Right(i))
		}
		down(o, s.Inner.Root())
	}
	return out
}

func TestIrregularOriginalMatchesSemantics(t *testing.T) {
	outer, inner := tree.NewRandomBST(20, 7), tree.NewRandomBST(24, 8)
	s := irregularSpec(outer, inner, 99, false, 0.7)
	got := runPairs(t, s, Original(), nil)
	want := expectedIrregular(s)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("original irregular schedule:\n got %v\nwant %v", got, want)
	}
}

// The heart of §4: every transformed schedule must execute exactly the
// iterations the original template semantics dictate (as a set), and
// preserve order within each column — for both flag representations, with
// and without hereditary subtree truncation.
func TestIrregularAllVariantsAllFlagModes(t *testing.T) {
	cases := []struct {
		name       string
		hereditary bool
		density    float64
		seed       int64
	}{
		{"sparse", false, 0.3, 11},
		{"dense", false, 0.9, 12},
		{"hereditary-sparse", true, 0.3, 13},
		{"hereditary-dense", true, 0.9, 14},
	}
	for _, c := range cases {
		outer, inner := tree.NewRandomBST(30, c.seed), tree.NewRandomBST(26, c.seed+100)
		s := irregularSpec(outer, inner, c.seed, c.hereditary, c.density)
		want := pairSet(expectedIrregular(s))
		ref := runPairs(t, s, Original(), nil)
		column := func(ps []pair, o tree.NodeID) []tree.NodeID {
			var is []tree.NodeID
			for _, p := range ps {
				if p.o == o {
					is = append(is, p.i)
				}
			}
			return is
		}
		for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(5)} {
			for _, fm := range []FlagMode{FlagSets, FlagCounter} {
				for _, st := range []bool{false, true} {
					got := runPairs(t, s, v, func(e *Exec) {
						e.Flags = fm
						e.SubtreeTruncation = st
					})
					if !reflect.DeepEqual(pairSet(got), want) {
						t.Fatalf("%s/%v/%v/subtree=%v: executed set differs from template semantics",
							c.name, v, fm, st)
					}
					for o := tree.NodeID(0); int(o) < outer.Len(); o++ {
						if !reflect.DeepEqual(column(got, o), column(ref, o)) {
							t.Fatalf("%s/%v/%v/subtree=%v: column %d order differs",
								c.name, v, fm, st, o)
						}
					}
				}
			}
		}
	}
}

// §4.2's work-overhead ordering: interchange visits the full cross product,
// twisting visits only slightly more than the original, and subtree
// truncation narrows the remaining gap.
func TestIterationOverheadOrdering(t *testing.T) {
	outer, inner := tree.NewBalanced(255), tree.NewBalanced(255)
	s := irregularSpec(outer, inner, 21, true, 0.8)
	s.Work = func(o, i tree.NodeID) {}
	e := MustNew(s)

	run := func(v Variant, subtree bool) Stats {
		e.SubtreeTruncation = subtree
		e.Run(v)
		return e.Stats
	}
	orig := run(Original(), true)
	inter := run(Interchanged(), false)
	twNoSub := run(Twisted(), false)
	twSub := run(Twisted(), true)

	if orig.Iterations != orig.Work {
		t.Fatalf("original: iterations %d != work %d", orig.Iterations, orig.Work)
	}
	if inter.Work != orig.Work {
		t.Fatalf("interchange work %d != original %d", inter.Work, orig.Work)
	}
	if inter.Iterations <= orig.Iterations {
		t.Fatalf("interchange iterations %d not above original %d (no truncation possible)", inter.Iterations, orig.Iterations)
	}
	if twNoSub.Iterations >= inter.Iterations {
		t.Fatalf("twisting iterations %d not below interchange %d", twNoSub.Iterations, inter.Iterations)
	}
	if twSub.Iterations > twNoSub.Iterations {
		t.Fatalf("subtree truncation increased iterations: %d > %d", twSub.Iterations, twNoSub.Iterations)
	}
	if twSub.SubtreeCuts == 0 {
		t.Fatal("subtree truncation never fired on a dense hereditary space")
	}
}

// Flag bookkeeping invariants: counter mode never clears; set mode clears
// exactly what it sets (everything is unwound by the end of the run).
func TestFlagAccounting(t *testing.T) {
	outer, inner := tree.NewBalanced(63), tree.NewBalanced(63)
	s := irregularSpec(outer, inner, 31, false, 0.8)
	s.Work = func(o, i tree.NodeID) {}
	e := MustNew(s)

	e.Flags = FlagSets
	e.Run(Twisted())
	if e.Stats.FlagSets == 0 {
		t.Fatal("dense irregular space set no flags")
	}
	if e.Stats.FlagClears != e.Stats.FlagSets {
		t.Fatalf("FlagClears %d != FlagSets %d", e.Stats.FlagClears, e.Stats.FlagSets)
	}
	for _, f := range e.flag {
		if f {
			t.Fatal("flag left set after run")
		}
	}

	e.Flags = FlagCounter
	e.Run(Twisted())
	if e.Stats.FlagClears != 0 {
		t.Fatalf("counter mode cleared %d flags; the §4.3 point is zero clears", e.Stats.FlagClears)
	}
}

// The engine is reusable: back-to-back runs on the same Exec are independent.
func TestRunsAreIndependent(t *testing.T) {
	outer, inner := tree.NewBalanced(31), tree.NewBalanced(31)
	s := irregularSpec(outer, inner, 17, false, 0.8)
	var first []pair
	s.Work = func(o, i tree.NodeID) { first = append(first, pair{o, i}) }
	e := MustNew(s)
	e.Flags = FlagSets
	e.Run(Twisted())
	a := append([]pair(nil), first...)
	first = first[:0]
	e.Run(Twisted())
	if !reflect.DeepEqual(a, first) {
		t.Fatal("second run on same Exec differs from first")
	}
}

func TestRegularStatsIdentities(t *testing.T) {
	outer, inner := tree.NewBalanced(100), tree.NewBalanced(80)
	s := regularSpec(outer, inner)
	s.Work = func(o, i tree.NodeID) {}
	e := MustNew(s)
	for _, v := range []Variant{Original(), Interchanged(), Twisted()} {
		e.Run(v)
		if e.Stats.Work != int64(outer.Len()*inner.Len()) {
			t.Fatalf("%v: work %d != %d", v, e.Stats.Work, outer.Len()*inner.Len())
		}
		if e.Stats.Iterations != e.Stats.Work {
			t.Fatalf("%v: regular space iterations %d != work %d", v, e.Stats.Iterations, e.Stats.Work)
		}
		if e.Stats.TruncChecks != 0 || e.Stats.FlagSets != 0 {
			t.Fatalf("%v: regular space touched truncation machinery: %v", v, e.Stats)
		}
	}
	e.Run(Original())
	if e.Stats.SizeCompares != 0 || e.Stats.Twists != 0 {
		t.Fatalf("original performed twisting work: %v", e.Stats)
	}
}

func TestTwistingActuallyTwists(t *testing.T) {
	outer, inner := tree.NewBalanced(127), tree.NewBalanced(127)
	s := regularSpec(outer, inner)
	s.Work = func(o, i tree.NodeID) {}
	e := MustNew(s)
	e.Run(Twisted())
	if e.Stats.Twists == 0 {
		t.Fatal("parameterless twisting never switched orientation on equal-size trees")
	}
	tw := runPairs(t, regularSpec(outer, inner), Twisted(), nil)
	orig := runPairs(t, regularSpec(outer, inner), Original(), nil)
	if reflect.DeepEqual(tw, orig) {
		t.Fatal("twisted schedule identical to original")
	}
}

// Degenerate chain trees make the template a doubly-nested loop (§2.1); the
// original schedule must then be exactly the row-major loop nest.
func TestChainsDevolveToLoops(t *testing.T) {
	outer, inner := tree.NewChain(6), tree.NewChain(4)
	got := runPairs(t, regularSpec(outer, inner), Original(), nil)
	var want []pair
	for o := 0; o < 6; o++ {
		for i := 0; i < 4; i++ {
			want = append(want, pair{tree.NodeID(o), tree.NodeID(i)})
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chain original = %v, want loop order %v", got, want)
	}
}

func TestTruncOuterAndInner1(t *testing.T) {
	outer, inner := tree.NewBalanced(15), tree.NewBalanced(15)
	s := Spec{
		Outer:       outer,
		Inner:       inner,
		TruncOuter:  func(o tree.NodeID) bool { return outer.Size(o) <= 2 },
		TruncInner1: func(i tree.NodeID) bool { return inner.Size(i) <= 1 },
	}
	want := pairSet(runPairs(t, s, Original(), nil))
	if len(want) == 0 {
		t.Fatal("truncation test space is empty; pick different predicates")
	}
	// Expected from first principles: o on a path of non-truncated outer
	// ancestors, i likewise for inner.
	okO := map[tree.NodeID]bool{}
	var markO func(o tree.NodeID)
	markO = func(o tree.NodeID) {
		if o == tree.Nil || outer.Size(o) <= 2 {
			return
		}
		okO[o] = true
		markO(outer.Left(o))
		markO(outer.Right(o))
	}
	markO(outer.Root())
	count := 0
	for p := range want {
		if !okO[p.o] || inner.Size(p.i) <= 1 {
			t.Fatalf("pair %v should have been truncated", p)
		}
		count++
	}
	for _, v := range []Variant{Interchanged(), Twisted()} {
		got := pairSet(runPairs(t, s, v, nil))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: truncated space differs from original", v)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tr := tree.NewBalanced(3)
	if _, err := New(Spec{Outer: tr, Inner: tr}); err == nil {
		t.Fatal("New accepted nil Work")
	}
	if _, err := New(Spec{Inner: tr, Work: func(o, i tree.NodeID) {}}); err == nil {
		t.Fatal("New accepted nil Outer")
	}
	if _, err := New(Spec{Outer: tr, Work: func(o, i tree.NodeID) {}}); err == nil {
		t.Fatal("New accepted nil Inner")
	}
}

func TestEmptySpaces(t *testing.T) {
	empty, full := tree.NewBalanced(0), tree.NewBalanced(7)
	for _, v := range []Variant{Original(), Interchanged(), Twisted()} {
		if got := runPairs(t, regularSpec(empty, full), v, nil); len(got) != 0 {
			t.Fatalf("%v: empty outer produced %d iterations", v, len(got))
		}
		if got := runPairs(t, regularSpec(full, empty), v, nil); len(got) != 0 {
			t.Fatalf("%v: empty inner produced %d iterations", v, len(got))
		}
	}
}

func TestSelfJoinSharedTopology(t *testing.T) {
	tr := tree.NewRandomBST(50, 33)
	want := pairSet(crossProduct(tr, tr))
	for _, v := range []Variant{Original(), Interchanged(), Twisted()} {
		got := pairSet(runPairs(t, regularSpec(tr, tr), v, nil))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: self-join space differs from cross product", v)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		Original():        "original",
		Interchanged():    "interchanged",
		Twisted():         "twisted",
		TwistedCutoff(16): "twisted-cutoff:16",
	} {
		if v.String() != want {
			t.Fatalf("Variant.String() = %q, want %q", v.String(), want)
		}
	}
	if FlagSets.String() != "sets" || FlagCounter.String() != "counter" {
		t.Fatal("FlagMode.String mismatch")
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(0), TwistedCutoff(64)} {
		got, err := ParseVariant(v.String())
		if err != nil {
			t.Fatalf("ParseVariant(%q): %v", v.String(), err)
		}
		if got != v {
			t.Fatalf("ParseVariant(%q) = %v, want %v", v.String(), got, v)
		}
	}
	if v, err := ParseVariant("twisted-cutoff"); err != nil || v != TwistedCutoff(0) {
		t.Fatalf("bare twisted-cutoff: %v, %v", v, err)
	}
	if v, err := ParseVariant("interchange"); err != nil || v != Interchanged() {
		t.Fatalf("interchange alias: %v, %v", v, err)
	}
	for _, bad := range []string{"", "zigzag", "twisted:4", "twisted-cutoff:x", "twisted-cutoff:-1", "original:0"} {
		if _, err := ParseVariant(bad); err == nil {
			t.Fatalf("ParseVariant(%q) accepted", bad)
		}
	}
}

func TestStatsOpsAndOverhead(t *testing.T) {
	base := Stats{InnerCalls: 100, Iterations: 100}
	more := Stats{InnerCalls: 150, Iterations: 150}
	if base.Ops() <= 0 {
		t.Fatal("Ops not positive")
	}
	if ov := more.Overhead(base); ov <= 0 {
		t.Fatalf("overhead = %v, want positive", ov)
	}
	if ov := base.Overhead(base); ov != 0 {
		t.Fatalf("self-overhead = %v", ov)
	}
	if (Stats{}).Overhead(Stats{}) != 0 {
		t.Fatal("zero-baseline overhead not 0")
	}
	if base.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

// RunFrom restricts execution to a sub-space: exactly the original
// iterations whose outer node lies in the subtree and whose inner node lies
// under the given inner root.
func TestRunFromSubspace(t *testing.T) {
	outer, inner := tree.NewBalanced(15), tree.NewBalanced(15)
	s := regularSpec(outer, inner)
	var got []pair
	s.Work = func(o, i tree.NodeID) { got = append(got, pair{o, i}) }
	e := MustNew(s)
	oSub := outer.Left(outer.Root())
	iSub := inner.Right(inner.Root())
	for _, v := range []Variant{Original(), Twisted()} {
		got = nil
		e.RunFrom(v, oSub, iSub)
		want := int(outer.Size(oSub)) * int(inner.Size(iSub))
		if len(got) != want {
			t.Fatalf("%v: RunFrom executed %d iterations, want %d", v, len(got), want)
		}
		for _, p := range got {
			if !outer.Ancestors(oSub, p.o) || !inner.Ancestors(iSub, p.i) {
				t.Fatalf("%v: iteration %v outside the sub-space", v, p)
			}
		}
	}
}
