// Iterative visit engine: an explicit-stack lowering of the four schedule
// recursions (outer/inner/outerSwapped/innerSwapped) into one flat work loop.
//
// Motivation (ROADMAP item 5): on the recursive engine every point of the
// iteration space pays a Go function call — prologue, closure environment,
// stack growth checks — even when the call immediately returns because the
// node is truncated. The paper's §4.3 counter optimization already hints that
// the twisted order can be driven by flat state rather than nested calls;
// Insa & Silva's loop↔recursion equivalence (PAPERS.md) is the inverse
// lowering applied here: the scheduled recursion becomes a loop over compact
// frame records.
//
// # Lowering
//
// Each pending recursion activation is a 16-byte iframe{o, i, mark, fn+phase}
// on an explicit stack owned by the Exec. The drain loop pops the top frame
// and executes one activation of the corresponding recursion body, pushing
// child frames in reverse order so the leftmost child runs next (LIFO order
// reproduces the recursion's depth-first order exactly).
//
// The key overhead win is where entry checks run. The recursive engine
// evaluates every truncation test inside the callee, after the call was
// already made; here the *pure* entry predicates (truncO/truncI, which the
// Spec contract requires to be pure functions of the node) are hoisted to
// frame-push time, so a truncated activation never becomes a frame at all —
// it costs one branch instead of a function call. The *stateful* predicates
// (flagged / TruncInner2, which read and write flag state interleaved with
// Work) still run exactly at the frame's scheduled position, which is what
// keeps the flag protocol — and hence Stats, checksums, and oracle verdicts —
// bit-identical to the recursive engine (DESIGN.md §4.13).
//
// # Counter optimization
//
// outerSwapped is the only body with a resumption point after its children
// (the Fig 6(b) line 9 flag unwind). Under FlagCounter mode — the §4.3
// representation — flags expire by themselves, so the frame retires before
// its children and the unwind phase is never materialized: the counter
// optimization applied at the engine level, exactly where the schedule
// permits it. Only FlagSets mode on an irregular space pays the third phase.
//
// # The row register
//
// innerSwapped returns "is this whole outer subtree truncated for the
// region?", an AND over the row's visits that drives the §4.2 region cut.
// Because innerSwapped frames only ever push innerSwapped frames, the row
// started by an outerSwapped activation drains completely before any other
// activation runs: at most one row is in flight at a time, so a single
// engine register (rowAllTrunc) replaces the recursion's bottom-up return
// plumbing — any visit that executes Work clears it.
package nest

import (
	"fmt"
	"strings"

	"twist/internal/tree"
)

// Engine selects the visit-engine implementation an Exec (or RunConfig) uses
// to execute a schedule. Both engines run the identical schedule — same
// Stats, same Work order, same checksums and oracle verdicts — and differ
// only in control-flow machinery; EngineOps quantifies the difference.
type Engine int

const (
	// EngineRecursive is the paper-shaped engine: each of the four schedule
	// functions is a Go recursion (Fig 2/3/4a/6b transcribed). Default.
	EngineRecursive Engine = iota

	// EngineIterative is the explicit-stack lowering described above: one
	// flat loop over compact frame records, pure entry checks hoisted to
	// push time, and the unwind phase elided under FlagCounter.
	EngineIterative
)

// String implements fmt.Stringer. The output round-trips through ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineRecursive:
		return "recursive"
	case EngineIterative:
		return "iterative"
	}
	return "unknown"
}

// ParseEngine parses an engine name as printed by Engine.String —
// "recursive" or "iterative". It is the single engine-parsing entry point
// shared by the command-line tools and the serving layer.
func ParseEngine(s string) (Engine, error) {
	switch strings.TrimSpace(s) {
	case "recursive":
		return EngineRecursive, nil
	case "iterative":
		return EngineIterative, nil
	}
	return 0, fmt.Errorf("nest: unknown engine %q (want recursive or iterative)", s)
}

// Engines returns both engines, in canonical order (recursive first).
func Engines() []Engine { return []Engine{EngineRecursive, EngineIterative} }

// Frame function selectors. fn occupies iframe.fn's low bits; outerSwapped
// additionally carries a phase.
const (
	fnOuter uint8 = iota
	fnInner
	fnOuterSwapped
	fnInnerSwapped
)

// iframe is one pending activation: outer node, inner node, the unTrunc
// watermark for FlagSets unwinding (outerSwapped only), and the function
// selector plus resumption phase. 16 bytes — two or three orders of
// magnitude smaller than a Go stack frame with its closure environment.
type iframe struct {
	o, i  tree.NodeID
	mark  int32
	fn    uint8
	phase uint8
}

// EngineOps reports the engine-overhead counter of the last sequential run:
// the number of schedule-machinery activations the engine performed. For the
// recursive engine that is one Go call per outer/inner entry — truncated or
// not — i.e. Stats.OuterCalls + Stats.InnerCalls; for the iterative engine
// it is the number of frame executions in the drain loop, where truncated
// entries never became frames and the FlagCounter unwind phase was elided.
// The counter is deterministic (a pure function of Spec, schedule, and flag
// mode), which is what lets CI gate the ≥30% twisted-schedule reduction
// exactly even where wall clocks are noise (see BENCH_wallclock.json).
func (e *Exec) EngineOps() int64 {
	if e.Engine == EngineIterative {
		return e.engineSteps
	}
	return e.Stats.OuterCalls + e.Stats.InnerCalls
}

// runIterative is runVariant on the iterative engine: seed the root frame
// under the variant's twisting mode, then drain.
func (e *Exec) runIterative(v Variant, o, i tree.NodeID) {
	switch v.Kind {
	case KindOriginal:
		e.twist = false
		e.pushOuter(o, i)
	case KindInterchanged:
		e.twist = false
		e.pushOuterSwapped(o, i)
	case KindTwisted:
		e.twist, e.cutoff = true, 0
		e.pushOuter(o, i)
	case KindTwistedCutoff:
		e.twist, e.cutoff = true, v.Cutoff
		e.pushOuter(o, i)
	default:
		panic("nest: unknown schedule variant")
	}
	e.drain()
}

// column runs the inner recursion for one outer node under the configured
// engine. It is the split-node column unit of the parallel decomposition
// (§7.3): the executors call it for every split node above SpawnDepth.
func (e *Exec) column(o, i tree.NodeID) {
	if e.Engine == EngineIterative {
		e.pushInner(o, i)
		e.drain()
		return
	}
	e.inner(o, i)
}

// pushOuter replicates outer's entry: count the call, drop truncated or
// canceled activations before they cost a frame.
func (e *Exec) pushOuter(o, i tree.NodeID) {
	e.Stats.OuterCalls++
	if e.truncO(o) || e.canceled() {
		return
	}
	e.stack = append(e.stack, iframe{o: o, i: i, fn: fnOuter})
}

// pushInner replicates inner's pure entry check (truncI); the stateful
// flagged/TruncInner2 check must wait for the frame's scheduled position.
func (e *Exec) pushInner(o, i tree.NodeID) {
	e.Stats.InnerCalls++
	if e.truncI(i) {
		return
	}
	e.stack = append(e.stack, iframe{o: o, i: i, fn: fnInner})
}

// pushOuterSwapped replicates outerSwapped's entry checks, in its order
// (inner-region emptiness first, then the outer guard and the poll).
func (e *Exec) pushOuterSwapped(o, i tree.NodeID) {
	e.Stats.OuterCalls++
	if e.truncI(i) {
		return
	}
	if e.truncO(o) || e.canceled() {
		return
	}
	e.stack = append(e.stack, iframe{o: o, i: i, fn: fnOuterSwapped})
}

// pushInnerSwapped replicates innerSwapped's entry: an empty outer subtree
// is vacuously all-truncated, so it simply contributes nothing to the row
// (leaving rowAllTrunc as the recursion's `&& true` would).
func (e *Exec) pushInnerSwapped(o, i tree.NodeID) {
	e.Stats.InnerCalls++
	if e.truncO(o) {
		return
	}
	e.stack = append(e.stack, iframe{o: o, i: i, fn: fnInnerSwapped})
}

// expandOuterChild applies outer's per-child twisting decision (Fig 4a).
// The decision reads only the static subtree sizes and the run's cutoff, so
// evaluating both children at expansion time is unobservable.
func (e *Exec) expandOuterChild(c, i tree.NodeID, out, in *tree.Topology) {
	if e.twist {
		e.Stats.SizeCompares++
		if out.Size(c) <= in.Size(i) && in.Size(i) > e.cutoff {
			e.Stats.Twists++
			e.pushOuterSwapped(c, i)
			return
		}
	}
	e.pushOuter(c, i)
}

// expandSwappedChild applies outerSwapped's per-child twist-back decision.
func (e *Exec) expandSwappedChild(o, c tree.NodeID, out, in *tree.Topology) {
	if e.twist {
		e.Stats.SizeCompares++
		if in.Size(c) <= out.Size(o) {
			e.Stats.Twists++
			e.pushOuter(o, c)
			return
		}
	}
	e.pushOuterSwapped(o, c)
}

// drain is the flat work loop: pop the top frame, execute one activation,
// push successors. Each iteration is one EngineOps step.
func (e *Exec) drain() {
	for len(e.stack) > 0 {
		e.engineSteps++
		top := len(e.stack) - 1
		f := &e.stack[top]
		switch f.fn {
		case fnInner:
			o, i := f.o, f.i
			e.stack = e.stack[:top]
			if e.irregular {
				e.Stats.TruncChecks++
				if e.flagged(o, i) || e.spec.TruncInner2(o, i) {
					continue
				}
			}
			e.Stats.Iterations++
			e.Stats.Work++
			e.spec.Work(o, i)
			in := e.spec.Inner
			e.pushInner(o, in.Right(i))
			e.pushInner(o, in.Left(i))

		case fnOuter:
			o, i := f.o, f.i
			e.stack = e.stack[:top]
			out, in := e.spec.Outer, e.spec.Inner
			// Successors in reverse order: the column frame lands on top so
			// inner(o, i) runs before either outer child, as in Fig 2.
			e.expandOuterChild(out.Right(o), i, out, in)
			e.expandOuterChild(out.Left(o), i, out, in)
			e.pushInner(o, i)

		case fnOuterSwapped:
			switch f.phase {
			case 0:
				// Start the row. The frame stays put below the row's
				// innerSwapped frames and resumes at phase 1 when the row —
				// which pushes only innerSwapped frames — has drained. The
				// row root's activation is fused into this step (it can never
				// be truncO — pushOuterSwapped checked — so it would pop
				// unconditionally anyway), keeping the step count at or below
				// the recursive engine's call count even on rows the §4.2
				// optimization cuts immediately.
				f.phase = 1
				if e.irregular && e.Flags == FlagSets {
					f.mark = int32(len(e.unTrunc))
				}
				e.rowAllTrunc = true
				o, i := f.o, f.i
				e.Stats.InnerCalls++
				e.stepInnerSwapped(o, i)
			case 1:
				o, i, mark := f.o, f.i, int(f.mark)
				if e.rowAllTrunc && e.SubtreeTruncation && e.irregular {
					// §4.2 region cut, as in outerSwapped.
					e.Stats.SubtreeCuts++
					e.clearFlags(mark)
					e.stack = e.stack[:top]
					continue
				}
				out, in := e.spec.Outer, e.spec.Inner
				if e.irregular && e.Flags == FlagSets {
					// Fig 6(b) line 9: unwind this row's flags after both
					// child regions complete.
					f.phase = 2
				} else {
					// §4.3 at the engine level: counter flags (and regular
					// spaces) need no unwind, so the frame retires now and
					// the resumption phase is never materialized.
					e.stack = e.stack[:top]
				}
				e.expandSwappedChild(o, in.Right(i), out, in)
				e.expandSwappedChild(o, in.Left(i), out, in)
			default:
				e.clearFlags(int(f.mark))
				e.stack = e.stack[:top]
			}

		default: // fnInnerSwapped
			o, i := f.o, f.i
			e.stack = e.stack[:top]
			e.stepInnerSwapped(o, i)
		}
	}
}

// stepInnerSwapped executes one innerSwapped activation body (past the entry
// check): the stateful flag protocol at the scheduled position, the visit,
// and the two child pushes.
func (e *Exec) stepInnerSwapped(o, i tree.NodeID) {
	truncated := false
	if e.irregular {
		e.Stats.TruncChecks++
		if e.flagged(o, i) {
			truncated = true
		} else if e.spec.TruncInner2(o, i) {
			e.setFlag(o, i)
			truncated = true
		}
	}
	e.Stats.Iterations++
	if !truncated {
		e.Stats.Work++
		e.spec.Work(o, i)
		e.rowAllTrunc = false
	} else if e.spec.Hereditary && e.SubtreeTruncation {
		// §4.2 hereditary cut: the whole outer subtree is pruned and
		// contributes vacuously to the row's AND.
		e.Stats.SubtreeCuts++
		return
	}
	out := e.spec.Outer
	e.pushInnerSwapped(out.Right(o), i)
	e.pushInnerSwapped(out.Left(o), i)
}
