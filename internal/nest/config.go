package nest

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"twist/internal/obs"
	"twist/internal/tree"
)

// DefaultSpawnDepth is the outer-tree depth at which the parallel executors
// stop splitting and hand whole subtrees to the schedule variant. It is a
// constant — deliberately independent of the worker count — so that the task
// decomposition, and therefore the merged Stats, are byte-identical across
// every worker count and both executors. At depth 6 a complete outer tree
// yields 64 subtree tasks plus 63 split columns: enough slack for stealing
// to balance irregular truncation without drowning in task overhead.
const DefaultSpawnDepth = 6

// RunConfig configures a parallel run. The zero value (plus a Variant) is a
// sensible default: GOMAXPROCS workers, DefaultSpawnDepth, static
// decomposition, no cancellation.
type RunConfig struct {
	// Variant is the schedule each task runs on its subtree (typically
	// Twisted; the paper's §7.3 "parallelize above, twist below").
	Variant Variant

	// Engine selects the visit-engine implementation every worker uses
	// (recursive or iterative; see Engine). The two engines produce
	// bit-identical merged Stats — the axis only moves the engine-overhead
	// counter reported in RunResult.EngineOps and the "nest.engine.ops"
	// telemetry. Default EngineRecursive.
	Engine Engine

	// Workers is the number of worker goroutines; <= 0 means GOMAXPROCS.
	Workers int

	// SpawnDepth is the outer-tree depth at which subtrees become leaf
	// tasks; <= 0 means DefaultSpawnDepth. The decomposition depends only
	// on this value (never on Workers or on runtime scheduling), which is
	// what makes merged Stats reproducible across worker counts.
	SpawnDepth int

	// Stealing selects the work-stealing executor (per-worker deques, LIFO
	// owner pop, FIFO half-steals) instead of the static task queue. The
	// two produce identical merged Stats; stealing keeps workers busy on
	// irregular, truncation-heavy spaces where static tasks are lopsided.
	Stealing bool

	// Ctx, when non-nil, cancels the run cooperatively: it is polled at
	// task granularity and at outer-subtree granularity inside tasks, and
	// the first observed error is returned with the partial merged Stats.
	Ctx context.Context

	// ForTask, when non-nil, derives the Spec a task runs from the base
	// Spec, given the task's outer root (both subtree tasks and split-node
	// column tasks). Workloads use it to give each task private mutable
	// state — per-task reduction shards, fresh pruning bounds — so the
	// task's behaviour (and stats) is a pure function of its root. The
	// returned Spec must keep the same topologies and the same
	// regular/irregular shape (TruncInner2 nil-ness) as the base.
	ForTask func(root tree.NodeID, base Spec) Spec

	// WrapWork, when non-nil, wraps the task Spec's Work for the worker
	// about to run it (after ForTask). The memsim streaming pipeline uses
	// it to route each worker's node accesses into that worker's TraceSink.
	WrapWork func(worker int, work func(o, i tree.NodeID)) func(o, i tree.NodeID)

	// SimWorkers sizes the trace-driven cache simulation attached to the
	// run, when there is one (a WrapWork hook feeding a memsim Stream):
	// <= 1 keeps the sequential simulator, > 1 asks the harness for a
	// set-partitioned parallel simulator with that many shard workers
	// (memsim.Config.SimWorkers; stats stay bit-identical either way —
	// DESIGN.md §4.8). The executor itself does not simulate; it carries
	// the dimension with the run and reports it as "nest.simworkers" so a
	// run's telemetry pins the simulation configuration it was measured
	// under.
	SimWorkers int

	// Layout names the arena layout (internal/layout) the run's traced
	// addresses are generated under. Like SimWorkers it is a carried
	// dimension: the executor never touches addresses — the harness applies
	// the layout when it builds the trace (workloads.Instance.WithLayout) —
	// but a run's telemetry must pin the layout it was measured under, so
	// the dimension travels with the run and is reported as
	// "nest.layout.<name>". Empty means the legacy build-order arena.
	Layout string

	// Recorder, when non-nil, receives the run's telemetry: the wall clock
	// of the whole run ("nest.run"), the executor counters ("nest.tasks",
	// "nest.steals", "nest.workers") and the merged operation counts
	// ("nest.iterations", "nest.subtree_cuts", ... — see Stats.Record).
	// It must be safe for concurrent use; nil records nothing.
	Recorder obs.Recorder
}

// RunResult reports a parallel run.
type RunResult struct {
	// Stats is the merged operation counts of every task (also mirrored
	// into the Exec's Stats field). For a fixed SpawnDepth it is identical
	// across worker counts and executors.
	Stats Stats

	// PerWorker holds each worker's locally-accumulated Stats; their sum
	// is Stats. Attribution varies run to run under stealing.
	PerWorker []Stats

	// Workers is the number of workers actually used.
	Workers int

	// Tasks is the number of task units executed (split columns plus leaf
	// subtrees); deterministic for a fixed Spec and SpawnDepth.
	Tasks int64

	// Steals counts tasks that moved between workers (always 0 for the
	// static executor and for single-worker runs).
	Steals int64

	// EngineOps is the summed engine-overhead counter of every worker (see
	// Exec.EngineOps): recursion entries for the recursive engine, frame
	// executions for the iterative one. Like Stats it is deterministic for
	// a fixed Spec, schedule, and SpawnDepth — identical across worker
	// counts and executors — which is what makes it gateable in CI.
	EngineOps int64
}

// RunWith executes the computation under cfg, replacing the positional
// RunParallel API. The outer tree is split into tasks down to
// cfg.SpawnDepth — each split node contributes its column as one task, each
// depth-SpawnDepth subtree runs cfg.Variant whole — and the tasks execute on
// cfg.Workers workers, either from a static queue or with work stealing.
// Per-worker Stats are accumulated locally, with no shared state on the hot
// path, and merged once at the end.
//
// Soundness requires the §3.3 criterion (outer recursions independent), and
// Spec.Work plus the truncation predicates must be safe to call from
// concurrent goroutines for distinct outer nodes; iterations of one column
// never run concurrently. Use cfg.ForTask to shard mutable workload state
// per task.
//
// Deprecated: new call sites should go through twist.Run with WithWorkers
// (which builds the RunConfig and calls this method). RunWith remains as
// the facade's parallel building block and for the engine-infrastructure
// packages; depcheck.ScanExecRuns enforces the boundary.
func (e *Exec) RunWith(cfg RunConfig) (RunResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.SpawnDepth
	if depth <= 0 {
		depth = DefaultSpawnDepth
	}
	if depth > math.MaxInt32 {
		return RunResult{}, fmt.Errorf("nest: spawn depth %d out of range", depth)
	}
	e.Engine = cfg.Engine
	done := obs.Span(cfg.Recorder, "nest.run")
	var res RunResult
	var err error
	if cfg.Stealing {
		res, err = e.runStealing(cfg, workers, int32(depth))
	} else {
		res, err = e.runStatic(cfg, workers, depth)
	}
	e.Stats = res.Stats
	done()
	if cfg.Recorder != nil {
		cfg.Recorder.Count("nest.tasks", res.Tasks)
		cfg.Recorder.Count("nest.steals", res.Steals)
		cfg.Recorder.Count("nest.workers", int64(res.Workers))
		cfg.Recorder.Count("nest.engine.ops", res.EngineOps)
		cfg.Recorder.Count("nest.engine."+cfg.Engine.String(), 1)
		if cfg.SimWorkers > 0 {
			cfg.Recorder.Count("nest.simworkers", int64(cfg.SimWorkers))
		}
		if cfg.Layout != "" {
			cfg.Recorder.Count("nest.layout."+cfg.Layout, 1)
		}
		res.Stats.Record(cfg.Recorder, "nest")
	}
	return res, err
}

// child builds a worker-private Exec sharing e's configuration.
func (e *Exec) child(ctx context.Context) *Exec {
	w := &Exec{
		spec:              e.spec,
		Flags:             e.Flags,
		SubtreeTruncation: e.SubtreeTruncation,
		Engine:            e.Engine,
		irregular:         e.irregular,
		ctx:               ctx,
	}
	w.prepare()
	return w
}

// taskSpec derives the Spec a given worker runs for the task rooted at root.
func taskSpec(cfg *RunConfig, worker int, root tree.NodeID, base Spec) Spec {
	s := base
	if cfg.ForTask != nil {
		s = cfg.ForTask(root, s)
	}
	if cfg.WrapWork != nil {
		s.Work = cfg.WrapWork(worker, s.Work)
	}
	return s
}

// runStatic is the static spawn-depth executor: worker 0 runs the split
// columns sequentially while collecting the depth-SpawnDepth task roots,
// then all workers drain the roots from one queue. It is the baseline the
// stealing executor is measured against; both run the identical task set.
func (e *Exec) runStatic(cfg RunConfig, workers, depth int) (RunResult, error) {
	base := e.spec
	iRoot := base.Inner.Root()

	w0 := e.child(cfg.Ctx)
	var roots []tree.NodeID
	var aborted atomic.Bool
	var tasks int64
	var walk func(o tree.NodeID, d int)
	walk = func(o tree.NodeID, d int) {
		if w0.truncO(o) || w0.ctxErr != nil {
			return
		}
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				w0.ctxErr = err
				return
			}
		}
		tasks++
		if d == depth {
			roots = append(roots, o)
			return
		}
		w0.spec = taskSpec(&cfg, 0, o, base)
		w0.column(o, iRoot)
		walk(base.Outer.Left(o), d+1)
		walk(base.Outer.Right(o), d+1)
	}
	walk(base.Outer.Root(), 0)
	if w0.ctxErr != nil {
		aborted.Store(true)
	}

	perWorker := make([]Stats, workers)
	engineOps := make([]int64, workers)
	ch := make(chan tree.NodeID)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ew := w0
			if w != 0 {
				ew = e.child(cfg.Ctx)
			}
			for root := range ch {
				if aborted.Load() {
					continue // keep draining so senders never block
				}
				ew.spec = taskSpec(&cfg, w, root, base)
				ew.runVariant(cfg.Variant, root, iRoot)
				if ew.ctxErr != nil {
					aborted.Store(true)
				}
			}
			perWorker[w] = ew.Stats
			engineOps[w] = ew.EngineOps()
		}(w)
	}
	if !aborted.Load() {
		for _, root := range roots {
			ch <- root
		}
	}
	close(ch)
	wg.Wait()

	var merged Stats
	var ops int64
	for w, st := range perWorker {
		merged.Add(st)
		ops += engineOps[w]
	}
	res := RunResult{Stats: merged, PerWorker: perWorker, Workers: workers, Tasks: tasks, EngineOps: ops}
	if aborted.Load() {
		return res, cfg.Ctx.Err()
	}
	return res, nil
}
