package nest

import (
	"testing"

	"twist/internal/obs"
	"twist/internal/tree"
)

// TestRunWithRecorder checks that a parallel run publishes its executor
// counters and merged operation counts into RunConfig.Recorder, and that
// the counter values agree with the returned RunResult.
func TestRunWithRecorder(t *testing.T) {
	outer := tree.NewPerfect(7)
	inner := tree.NewPerfect(7)
	spec := Spec{Outer: outer, Inner: inner, Work: func(o, i tree.NodeID) {}}

	for _, stealing := range []bool{false, true} {
		m := obs.NewMemory()
		e := MustNew(spec)
		res, err := e.RunWith(RunConfig{
			Variant: Twisted(), Workers: 2, Stealing: stealing, Recorder: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Counter("nest.tasks"); got != res.Tasks {
			t.Fatalf("stealing=%v: nest.tasks counter %d, RunResult.Tasks %d", stealing, got, res.Tasks)
		}
		if got := m.Counter("nest.steals"); got != res.Steals {
			t.Fatalf("stealing=%v: nest.steals counter %d, RunResult.Steals %d", stealing, got, res.Steals)
		}
		if got := m.Counter("nest.iterations"); got != res.Stats.Iterations {
			t.Fatalf("stealing=%v: nest.iterations counter %d, merged %d", stealing, got, res.Stats.Iterations)
		}
		if got := m.Counter("nest.work"); got != res.Stats.Work {
			t.Fatalf("stealing=%v: nest.work counter %d, merged %d", stealing, got, res.Stats.Work)
		}
		if _, ok := m.Timings()["nest.run"]; !ok {
			t.Fatalf("stealing=%v: nest.run span missing (names: %v)", stealing, m.Names())
		}
	}

	// A nil Recorder (the zero RunConfig) must keep working.
	e := MustNew(spec)
	if _, err := e.RunWith(RunConfig{Variant: Twisted(), Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsRecordCoversEveryField(t *testing.T) {
	s := Stats{
		OuterCalls: 1, InnerCalls: 2, Iterations: 3, Work: 4, TruncChecks: 5,
		FlagSets: 6, FlagClears: 7, SizeCompares: 8, Twists: 9, SubtreeCuts: 10,
		ExtraOps: 11,
	}
	m := obs.NewMemory()
	s.Record(m, "nest")
	want := map[string]int64{
		"nest.outer_calls": 1, "nest.inner_calls": 2, "nest.iterations": 3,
		"nest.work": 4, "nest.trunc_checks": 5, "nest.flag_sets": 6,
		"nest.flag_clears": 7, "nest.size_compares": 8, "nest.twists": 9,
		"nest.subtree_cuts": 10, "nest.extra_ops": 11, "nest.ops": s.Ops(),
	}
	got := m.Counters()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("counter %s = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("recorded %d counters, want %d: %v", len(got), len(want), got)
	}
	s.Record(nil, "nest") // must not panic
}
