package nest

import (
	"fmt"

	"twist/internal/obs"
)

// Stats counts the dynamic operations a schedule performed. It is the
// instruction-count model that stands in for the paper's hardware instruction
// counters (Fig 8a, Fig 10a): the paper attributes the instruction overhead
// of the transformed code to extra recursive calls and to tracking/managing
// truncation information (§4.3, §6.2), which are exactly the events counted
// here.
type Stats struct {
	// OuterCalls and InnerCalls count invocations of the outer-recursion and
	// inner-recursion functions respectively (including immediately
	// truncated ones).
	OuterCalls int64
	InnerCalls int64

	// Iterations counts visits to the work position of the template — the
	// paper's unit in §4.2 ("the original code performs 1.25 billion
	// iterations..."). In the original orientation a truncated call never
	// reaches the work position; in the swapped orientation a flagged
	// iteration reaches it but skips the work, which is why interchange
	// "is forced to perform" the full cross product.
	Iterations int64

	// Work counts actual executions of Spec.Work.
	Work int64

	// TruncChecks counts evaluations of the truncation-flag/TruncInner2
	// machinery at the work position.
	TruncChecks int64

	// FlagSets and FlagClears count truncation-flag writes (Fig 6b lines 16
	// and 9). FlagClears is always zero in FlagCounter mode — the absence of
	// the unset loop is the entire point of the §4.3 optimization.
	FlagSets   int64
	FlagClears int64

	// SizeCompares and Twists count the twisting decision sites of Fig 4(a)
	// and how often they switched orientation.
	SizeCompares int64
	Twists       int64

	// SubtreeCuts counts early returns taken by the §4.2 subtree-truncation
	// optimization.
	SubtreeCuts int64

	// ExtraOps is workload-defined extra work attributed to Spec.Work bodies
	// (e.g. point-pair distance computations in the dual-tree base cases).
	// Workloads add to it from inside Work; the engine only resets it.
	ExtraOps int64
}

// Cost weights for Ops. A recursive call costs more than a flag write, which
// costs about as much as a compare; the absolute scale is arbitrary since
// every figure that uses Ops reports a ratio against the baseline schedule.
const (
	costOuterCall  = 8 // call + truncation test + two child recursions
	costInnerCall  = 6
	costTruncCheck = 2
	costFlagSet    = 3 // write + unTrunc push (or counter store)
	costFlagClear  = 3
	costCompare    = 2
	costIteration  = 1
)

// Add accumulates o into s field-wise. The parallel executors use it to
// merge per-worker statistics once at the end of a run; every field is a
// plain sum, so the merge of a deterministic decomposition is itself
// deterministic regardless of worker count or stealing order.
func (s *Stats) Add(o Stats) {
	s.OuterCalls += o.OuterCalls
	s.InnerCalls += o.InnerCalls
	s.Iterations += o.Iterations
	s.Work += o.Work
	s.TruncChecks += o.TruncChecks
	s.FlagSets += o.FlagSets
	s.FlagClears += o.FlagClears
	s.SizeCompares += o.SizeCompares
	s.Twists += o.Twists
	s.SubtreeCuts += o.SubtreeCuts
	s.ExtraOps += o.ExtraOps
}

// Record publishes every field of s as a counter into r under
// prefix.{outer_calls,inner_calls,iterations,work,trunc_checks,flag_sets,
// flag_clears,size_compares,twists,subtree_cuts,extra_ops,ops} — the nest
// half of the observability layer (internal/obs). The truncation-machinery
// counters (trunc_checks, flag_sets, subtree_cuts) are the "truncation
// hits" telemetry the schedules differ most on.
func (s Stats) Record(r obs.Recorder, prefix string) {
	if r == nil {
		return
	}
	r.Count(prefix+".outer_calls", s.OuterCalls)
	r.Count(prefix+".inner_calls", s.InnerCalls)
	r.Count(prefix+".iterations", s.Iterations)
	r.Count(prefix+".work", s.Work)
	r.Count(prefix+".trunc_checks", s.TruncChecks)
	r.Count(prefix+".flag_sets", s.FlagSets)
	r.Count(prefix+".flag_clears", s.FlagClears)
	r.Count(prefix+".size_compares", s.SizeCompares)
	r.Count(prefix+".twists", s.Twists)
	r.Count(prefix+".subtree_cuts", s.SubtreeCuts)
	r.Count(prefix+".extra_ops", s.ExtraOps)
	r.Count(prefix+".ops", s.Ops())
}

// Ops returns the weighted dynamic operation count — the model standing in
// for retired instructions in Fig 8(a)/10(a). Comparisons between schedules
// of the same workload are meaningful; absolute values are model units.
func (s Stats) Ops() int64 {
	return s.OuterCalls*costOuterCall +
		s.InnerCalls*costInnerCall +
		s.TruncChecks*costTruncCheck +
		s.FlagSets*costFlagSet +
		s.FlagClears*costFlagClear +
		s.SizeCompares*costCompare +
		s.Iterations*costIteration +
		s.ExtraOps
}

// Overhead returns the fractional instruction overhead of s relative to the
// baseline run base, e.g. 0.25 for a 25% increase (the y-axis of Fig 8a).
func (s Stats) Overhead(base Stats) float64 {
	b := base.Ops()
	if b == 0 {
		return 0
	}
	return float64(s.Ops()-b) / float64(b)
}

// String implements fmt.Stringer with a compact one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"outer=%d inner=%d iters=%d work=%d truncChecks=%d flagSets=%d flagClears=%d cmps=%d twists=%d subtreeCuts=%d extra=%d ops=%d",
		s.OuterCalls, s.InnerCalls, s.Iterations, s.Work, s.TruncChecks,
		s.FlagSets, s.FlagClears, s.SizeCompares, s.Twists, s.SubtreeCuts,
		s.ExtraOps, s.Ops())
}
