package nest

import (
	"math"
	"testing"
	"testing/quick"
)

// Quick-check property: every representable Variant prints a string that
// ParseVariant inverts exactly (not just the fixed cases in nest_test.go).
// Non-cutoff kinds carry Cutoff 0 by construction, which is what makes the
// representation canonical.
func TestQuickVariantRoundTrip(t *testing.T) {
	t.Parallel()
	prop := func(kind uint8, cutoff uint32) bool {
		v := Variant{Kind: VariantKind(kind % 4)}
		if v.Kind == KindTwistedCutoff {
			v.Cutoff = int32(cutoff % math.MaxInt32)
		}
		rt, err := ParseVariant(v.String())
		return err == nil && rt == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseVariant: arbitrary input never panics, and anything ParseVariant
// accepts must round-trip through Variant.String — the schedule name in a
// BENCH baseline or a flag value stays stable across print/parse cycles.
func FuzzParseVariant(f *testing.F) {
	for _, s := range []string{
		"original", "interchanged", "interchange", "twisted",
		"twisted-cutoff", "twisted-cutoff:64", " twisted ", "twisted-cutoff:-1",
		"twisted-cutoff:9999999999999999999", "bogus", "original:1", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVariant(s)
		if err != nil {
			return
		}
		rt, err := ParseVariant(v.String())
		if err != nil {
			t.Fatalf("ParseVariant(%q) = %v, but its String %q does not reparse: %v", s, v, v, err)
		}
		if rt != v {
			t.Fatalf("ParseVariant(%q) = %v, round-trips to %v", s, v, rt)
		}
	})
}
