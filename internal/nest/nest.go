// Package nest implements the paper's primary contribution: scheduling
// transformations for nested recursive iteration spaces.
//
// A nested recursion in the sense of the paper (Fig 2) is a pair of recursive
// functions — an outer recursion that, at every node o of an "outer tree",
// launches an inner recursion over an "inner tree", executing work(o, i) at
// every visited pair. The engine here executes such a computation under four
// schedules:
//
//   - Original      — the template as written (column-by-column, Fig 2)
//   - Interchanged  — recursion interchange (row-by-row, Fig 3)
//   - Twisted       — recursion twisting (parameterless tiling, Fig 4a)
//   - TwistedCutoff — twisting with the cutoff parameter of §7.1
//
// Irregular, outer-dependent truncation (truncateInner2?, §4) is handled with
// truncation flags per Fig 6(b), optionally using the preorder-counter
// representation of §4.3 and the subtree-truncation optimization of §4.2.
//
// Terminology is the paper's (§2.1): the *outer tree* and *inner tree* are
// fixed properties of the original program, while the *outer recursion* and
// *inner recursion* are roles that twisting exchanges. Throughout this
// package, the variable o is always a node of the outer tree and i is always
// a node of the inner tree, regardless of the current orientation.
//
// # Parallel runs and the RunConfig contract
//
// Exec.Run executes sequentially; Exec.RunWith executes the §7.3 parallel
// decomposition under a RunConfig. The contract callers rely on:
//
//   - The task decomposition is a pure function of the Spec and
//     RunConfig.SpawnDepth — never of Workers, Stealing, or runtime
//     scheduling — so the merged RunResult.Stats (and RunResult.Tasks) are
//     byte-identical across worker counts and across both executors. This
//     determinism is what the observability layer's exact-match regression
//     gating builds on (DESIGN.md §4.7).
//
//   - Soundness needs the §3.3 criterion (outer recursions independent),
//     and Spec.Work plus the truncation predicates must tolerate concurrent
//     calls for distinct outer nodes. Iterations of one outer column never
//     run concurrently.
//
//   - Workloads with mutable per-run state supply RunConfig.ForTask to give
//     each task private shards (reductions, pruning bounds), making task
//     behaviour a pure function of its outer root; RunConfig.WrapWork
//     routes per-worker side channels (e.g. memsim trace sinks); and
//     RunConfig.Recorder receives executor telemetry (tasks, steals, merged
//     operation counts) — see internal/obs.
//
//   - RunConfig.Ctx cancels cooperatively; the first observed error is
//     returned alongside the partial merged Stats.
package nest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"twist/internal/tree"
)

// Spec describes one instance of the nested recursion template (paper Fig 2).
type Spec struct {
	// Outer and Inner are the index spaces of the original outer and inner
	// recursions. They may be the same topology (self-joins are common in the
	// dual-tree benchmarks).
	Outer, Inner *tree.Topology

	// TruncOuter is truncateOuter?(o): a truncation condition on the outer
	// index alone. The engine always treats the absent child (tree.Nil) as
	// truncated; TruncOuter, if non-nil, adds to that. It must be a pure
	// function of o (and of state not mutated by Work).
	TruncOuter func(o tree.NodeID) bool

	// TruncInner1 is truncateInner1?(i): a truncation condition on the inner
	// index alone, with the same conventions as TruncOuter.
	TruncInner1 func(i tree.NodeID) bool

	// TruncInner2 is truncateInner2?(o, i): the outer-dependent truncation of
	// §4 that makes the iteration space irregular. nil means the space is
	// regular (rectangular), as in the tree-join example of Fig 1(a).
	// TruncInner2 may read state updated by Work within the same column o
	// (intra-traversal dependences, §3.3) — the dual-tree bound updates —
	// but must not be influenced by other columns' work in ways that would
	// make the transformed schedules unsound; see §3.3's parallel-outer
	// criterion.
	TruncInner2 func(o, i tree.NodeID) bool

	// Work is the loop body: invoked once per non-truncated iteration (o, i).
	Work func(o, i tree.NodeID)

	// Hereditary asserts TruncInner2(o,i) ⇒ TruncInner2(o',i') for every o'
	// in the subtree of o and every i' in the subtree of i: once a node pair
	// is pruned, every descendant pair is too. Dual-tree Score pruning has
	// this property (shrinking either bounding box can only increase the
	// minimum box distance). It licenses the aggressive form of the
	// subtree-truncation optimization of §4.2, which cuts a truncated node's
	// whole outer subtree without planting flags on the descendants.
	Hereditary bool
}

// validate reports structural problems with the Spec.
func (s *Spec) validate() error {
	if s.Outer == nil || s.Inner == nil {
		return errors.New("nest: Spec.Outer and Spec.Inner must be non-nil")
	}
	if s.Work == nil {
		return errors.New("nest: Spec.Work must be non-nil")
	}
	return nil
}

// FlagMode selects the representation of truncation flags (§4).
type FlagMode int

const (
	// FlagSets is the Fig 6(b) protocol: a boolean flag per outer-tree node
	// plus a per-row unTrunc set, unwound when the truncating inner subtree
	// completes. (Our implementation skips re-evaluating truncateInner2? for
	// an already-flagged node; nested truncating regions are always contained
	// in the flagging region, so a single bit per node suffices. This
	// resolves an under-specification in the paper's pseudocode, where a
	// nested set/clear could prematurely unflag a node.)
	FlagSets FlagMode = iota

	// FlagCounter is the §4.3 optimization: each outer-tree node holds a
	// counter c; an inner node with preorder number v is truncated for that
	// outer node iff v < c. Setting the flag stores Next(i) (the preorder
	// position just past i's subtree), so nodes are untruncated naturally as
	// the traversal passes the truncating subtree — no unset loop at all.
	FlagCounter
)

// String implements fmt.Stringer.
func (m FlagMode) String() string {
	switch m {
	case FlagSets:
		return "sets"
	case FlagCounter:
		return "counter"
	}
	return "unknown"
}

// ParseFlagMode parses a flag-mode name as printed by FlagMode.String —
// "sets" or "counter". It is the single flag-parsing entry point shared by
// the command-line tools and the serving layer.
func ParseFlagMode(s string) (FlagMode, error) {
	switch strings.TrimSpace(s) {
	case "sets":
		return FlagSets, nil
	case "counter":
		return FlagCounter, nil
	}
	return 0, fmt.Errorf("nest: unknown flag mode %q (want sets or counter)", s)
}

// Exec executes one Spec under the transformed schedules. An Exec is not safe
// for concurrent use; create one per goroutine.
type Exec struct {
	spec Spec

	// Flags selects the truncation-flag representation. Default FlagCounter.
	Flags FlagMode

	// SubtreeTruncation enables the §4.2 optimization (requires
	// Spec.Hereditary; ignored otherwise). Default true.
	SubtreeTruncation bool

	// Engine selects the visit-engine implementation (see Engine): the
	// paper-shaped recursive engine, or the explicit-stack iterative
	// lowering. Both execute the identical schedule — Stats, Work order,
	// checksums, and oracle verdicts are bit-identical — differing only in
	// control-flow machinery (EngineOps). Default EngineRecursive.
	Engine Engine

	// Stats accumulates the operation counts for the run; see Stats. Reset
	// before each Run.
	Stats Stats

	irregular bool

	// FlagSets state.
	flag    []bool
	unTrunc []tree.NodeID

	// FlagCounter state.
	ctr []int32

	// Twisting control for the current run.
	twist  bool
	cutoff int32

	// Iterative-engine state: the explicit frame stack (capacity reused
	// across runs), the EngineOps step counter, and the single-active-row
	// all-truncated register (see engine.go).
	stack       []iframe
	engineSteps int64
	rowAllTrunc bool

	// Cancellation state. ctx, when non-nil, is polled at outer-subtree
	// granularity (every outer-recursion entry, rate-limited); the first
	// observed ctx.Err() is latched in ctxErr and the recursion unwinds
	// without further work.
	ctx     context.Context
	ctxErr  error
	ctxPoll uint32
}

// New returns an Exec for the given spec.
func New(s Spec) (*Exec, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	e := &Exec{
		spec:              s,
		Flags:             FlagCounter,
		SubtreeTruncation: true,
		irregular:         s.TruncInner2 != nil,
	}
	return e, nil
}

// MustNew is New that panics on error.
func MustNew(s Spec) *Exec {
	e, err := New(s)
	if err != nil {
		panic(err)
	}
	return e
}

// Spec returns the spec the Exec was built from.
func (e *Exec) Spec() Spec { return e.spec }

// Run executes the computation under the given schedule variant, starting
// from the roots of the two trees, and leaves operation counts in e.Stats.
//
// Deprecated: new call sites should go through the unified facade
// entrypoint, twist.Run (Run(v) is twist.Run(e, WithVariant(v))). The
// method remains as the facade's sequential building block and for the
// engine-infrastructure packages; depcheck.ScanExecRuns enforces the
// boundary.
func (e *Exec) Run(v Variant) {
	e.RunFrom(v, e.spec.Outer.Root(), e.spec.Inner.Root())
}

// RunContext is Run with cooperative cancellation: the context is polled at
// outer-subtree granularity (see canceled), and on cancellation the run
// unwinds early, leaving the partial operation counts in e.Stats and
// returning ctx.Err(). A nil ctx behaves exactly like Run.
//
// Deprecated: new call sites should go through twist.Run with WithContext;
// see Run.
func (e *Exec) RunContext(ctx context.Context, v Variant) error {
	e.ctx = ctx
	defer func() { e.ctx = nil }()
	e.Run(v)
	return e.ctxErr
}

// RunFrom executes the computation on the sub-space rooted at outer node o
// and inner node i. It is the building block of the §7.3 parallel execution
// (twisting applied to an already-spawned task) and of region-restricted
// reruns; most callers want Run.
//
// Deprecated: new call sites outside the executors and the oracle should go
// through twist.Run; see Run.
func (e *Exec) RunFrom(v Variant, o, i tree.NodeID) {
	e.Stats = Stats{}
	e.prepare()
	e.runVariant(v, o, i)
}

// prepare sizes and clears the truncation-flag state (and resets the
// cancellation latch) without running. Callers that drive the recursion
// functions directly — the parallel executors, the sequential prefix of
// RunParallel — invoke it once before their first descent.
func (e *Exec) prepare() {
	e.ctxErr = nil
	e.ctxPoll = 0
	e.engineSteps = 0
	e.stack = e.stack[:0]
	if !e.irregular {
		return
	}
	n := e.spec.Outer.Len()
	switch e.Flags {
	case FlagSets:
		if cap(e.flag) < n {
			e.flag = make([]bool, n)
		} else {
			e.flag = e.flag[:n]
			for k := range e.flag {
				e.flag[k] = false
			}
		}
		e.unTrunc = e.unTrunc[:0]
	case FlagCounter:
		if cap(e.ctr) < n {
			e.ctr = make([]int32, n)
		} else {
			e.ctr = e.ctr[:n]
			for k := range e.ctr {
				e.ctr[k] = 0
			}
		}
	}
}

// runVariant dispatches one schedule on the sub-space rooted at (o, i)
// without resetting Stats or flag state. It is the executor building block:
// RunFrom is prepare + runVariant, and the work-stealing executor calls it
// once per task, accumulating into the worker's Stats.
func (e *Exec) runVariant(v Variant, o, i tree.NodeID) {
	if e.Engine == EngineIterative {
		e.runIterative(v, o, i)
		return
	}
	switch v.Kind {
	case KindOriginal:
		e.twist = false
		e.outer(o, i)
	case KindInterchanged:
		e.twist = false
		e.outerSwapped(o, i)
	case KindTwisted:
		e.twist, e.cutoff = true, 0
		e.outer(o, i)
	case KindTwistedCutoff:
		e.twist, e.cutoff = true, v.Cutoff
		e.outer(o, i)
	default:
		panic("nest: unknown schedule variant")
	}
}

// canceled polls the run's context at outer-subtree granularity. Polling is
// rate-limited to one ctx.Err() call per 64 outer entries (the first entry
// polls immediately) so cancellation support costs nothing measurable on the
// hot path; once an error is observed it is latched and every subsequent
// call returns true, unwinding the recursion.
func (e *Exec) canceled() bool {
	if e.ctx == nil {
		return false
	}
	if e.ctxErr != nil {
		return true
	}
	e.ctxPoll++
	if e.ctxPoll&63 == 1 {
		if err := e.ctx.Err(); err != nil {
			e.ctxErr = err
			return true
		}
	}
	return false
}

// truncO reports whether the outer index o is truncated (absent or rejected
// by truncateOuter?).
func (e *Exec) truncO(o tree.NodeID) bool {
	return o == tree.Nil || (e.spec.TruncOuter != nil && e.spec.TruncOuter(o))
}

// truncI reports whether the inner index i is truncated (absent or rejected
// by truncateInner1?).
func (e *Exec) truncI(i tree.NodeID) bool {
	return i == tree.Nil || (e.spec.TruncInner1 != nil && e.spec.TruncInner1(i))
}

// flagged reports whether outer node o currently has its truncation flag set
// with respect to inner position i.
func (e *Exec) flagged(o, i tree.NodeID) bool {
	if e.Flags == FlagCounter {
		return e.spec.Inner.Order(i) < e.ctr[o]
	}
	return e.flag[o]
}

// setFlag marks outer node o truncated for the subtree of inner node i.
func (e *Exec) setFlag(o, i tree.NodeID) {
	e.Stats.FlagSets++
	if e.Flags == FlagCounter {
		// Monotone: callers only set when not flagged, so Order(i) >= ctr[o]
		// and Next(i) > Order(i); the counter never moves backwards within a
		// column, which is what keeps the §4.3 scheme sound under twisting.
		e.ctr[o] = e.spec.Inner.Next(i)
		return
	}
	e.flag[o] = true
	e.unTrunc = append(e.unTrunc, o)
}

// clearFlags unwinds flags recorded since mark (FlagSets mode only; the
// counter representation expires naturally — that is the point of §4.3).
func (e *Exec) clearFlags(mark int) {
	if e.Flags != FlagSets {
		return
	}
	for k := len(e.unTrunc) - 1; k >= mark; k-- {
		e.flag[e.unTrunc[k]] = false
		e.Stats.FlagClears++
	}
	e.unTrunc = e.unTrunc[:mark]
}

// outer is recurseOuter (Fig 2 / Fig 4a): the outer recursion in the original
// orientation, descending the outer tree. When twisting is enabled it swaps
// orientation whenever the child outer subtree is no larger than the tree the
// inner recursion currently holds (and, with a cutoff, only while that inner
// tree is still larger than the cutoff — §7.1).
func (e *Exec) outer(o, i tree.NodeID) {
	e.Stats.OuterCalls++
	if e.truncO(o) || e.canceled() {
		return
	}
	e.inner(o, i)
	out, in := e.spec.Outer, e.spec.Inner
	for _, c := range [2]tree.NodeID{out.Left(o), out.Right(o)} {
		if e.twist {
			e.Stats.SizeCompares++
			if out.Size(c) <= in.Size(i) && in.Size(i) > e.cutoff {
				e.Stats.Twists++
				e.outerSwapped(c, i)
				continue
			}
		}
		e.outer(c, i)
	}
}

// inner is recurseInner (Fig 2): the inner recursion in the original
// orientation, descending the inner tree for a fixed outer node o. In this
// orientation truncateInner2? cuts the recursion directly, exactly as in the
// original program; the truncation flag is consulted too, because an
// enclosing swapped-orientation row may already have truncated o for the
// region containing i (§4.1, final paragraph).
func (e *Exec) inner(o, i tree.NodeID) {
	e.Stats.InnerCalls++
	if e.truncI(i) {
		return
	}
	if e.irregular {
		e.Stats.TruncChecks++
		if e.flagged(o, i) || e.spec.TruncInner2(o, i) {
			return
		}
	}
	e.Stats.Iterations++
	e.Stats.Work++
	e.spec.Work(o, i)
	in := e.spec.Inner
	e.inner(o, in.Left(i))
	e.inner(o, in.Right(i))
}

// outerSwapped is recurseOuterSwapped (Fig 3 / Fig 4a / Fig 6b): the outer
// recursion in the swapped orientation, descending the inner tree. Flags set
// by its row (innerSwapped) are scoped to the subtree of i and unwound when
// that subtree completes, per Fig 6(b) line 9.
//
// Deviation from the paper's pseudocode: we also return immediately when the
// outer region is empty (o truncated). The literal Fig 3 code would traverse
// the entire inner tree performing no work in that case; every realistic
// implementation guards it.
func (e *Exec) outerSwapped(o, i tree.NodeID) {
	e.Stats.OuterCalls++
	if e.truncI(i) {
		return
	}
	if e.truncO(o) || e.canceled() {
		return
	}
	mark := len(e.unTrunc)
	allTrunc := e.innerSwapped(o, i)
	if allTrunc && e.SubtreeTruncation && e.irregular {
		// §4.2 region cut: every node of the outer subtree is truncated for
		// the whole region of i (its flag — literal or heredity-implied —
		// persists until i's subtree completes), so the deeper rows can do
		// no work at all. "If at any point every node in a subtree ... has
		// the truncation flag set ..., then the inner tree recursion
		// (performed by recurseOuterSwapped) can be truncated early."
		e.Stats.SubtreeCuts++
		e.clearFlags(mark)
		return
	}
	out, in := e.spec.Outer, e.spec.Inner
	for _, c := range [2]tree.NodeID{in.Left(i), in.Right(i)} {
		if e.twist {
			e.Stats.SizeCompares++
			if in.Size(c) <= out.Size(o) {
				e.Stats.Twists++
				e.outer(o, c)
				continue
			}
		}
		e.outerSwapped(o, c)
	}
	e.clearFlags(mark)
}

// innerSwapped is recurseInnerSwapped (Fig 3 / Fig 6b): the inner recursion
// in the swapped orientation, descending the outer tree for a fixed inner
// node i. Because recursion in this orientation descends the outer tree, it
// cannot use truncateInner2? to cut recursion; instead truncation is recorded
// in flags and the work call is skipped (Fig 6b line 20).
//
// It returns whether every node of the outer subtree rooted at o is truncated
// for (the region of) i, which drives the §4.2 subtree-truncation
// optimization in two forms:
//
//   - With a fully Hereditary condition, a truncated node's whole outer
//     subtree is skipped outright — its descendants are pruned for every
//     remaining pair of the region, so neither their work nor their flags
//     are needed.
//   - In all cases, an all-truncated report lets outerSwapped cut the
//     remaining descent of the inner subtree (the region cut).
func (e *Exec) innerSwapped(o, i tree.NodeID) bool {
	e.Stats.InnerCalls++
	if e.truncO(o) {
		return true // an empty outer subtree is vacuously all-truncated
	}
	truncated := false
	if e.irregular {
		e.Stats.TruncChecks++
		if e.flagged(o, i) {
			truncated = true
		} else if e.spec.TruncInner2(o, i) {
			e.setFlag(o, i)
			truncated = true
		}
	}
	e.Stats.Iterations++
	if !truncated {
		e.Stats.Work++
		e.spec.Work(o, i)
	} else if e.spec.Hereditary && e.SubtreeTruncation {
		e.Stats.SubtreeCuts++
		return true
	}
	out := e.spec.Outer
	l := e.innerSwapped(out.Left(o), i)
	r := e.innerSwapped(out.Right(o), i)
	return truncated && l && r
}

// VariantKind enumerates the schedules the engine can run.
type VariantKind int

// The four schedules of the paper: the untransformed baseline (§2), full
// interchange (§3), recursion twisting (§4), and twisting with the §7.1
// size cutoff.
const (
	KindOriginal VariantKind = iota
	KindInterchanged
	KindTwisted
	KindTwistedCutoff
)

// Variant selects an engine schedule; construct one with Original,
// Interchanged, Twisted, or TwistedCutoff. Variant is the engine's lowered
// schedule representation: the four constructors are exactly the canonical
// points of the composable schedule algebra (internal/transform/algebra),
// and new code should express schedules there — algebra.Schedule.Variant
// lowers any inline-free schedule onto this type.
type Variant struct {
	Kind   VariantKind
	Cutoff int32 // for KindTwistedCutoff: twist only while Size(inner) > Cutoff
}

// Original is the untransformed column-by-column schedule (Fig 2).
func Original() Variant { return Variant{Kind: KindOriginal} }

// Interchanged is the row-by-row schedule of recursion interchange (Fig 3).
func Interchanged() Variant { return Variant{Kind: KindInterchanged} }

// Twisted is parameterless recursion twisting (Fig 4a).
func Twisted() Variant { return Variant{Kind: KindTwisted} }

// TwistedCutoff is twisting with the §7.1 cutoff: the schedule switches from
// the original to the interchanged order only while the inner tree is larger
// than cutoff.
func TwistedCutoff(cutoff int) Variant {
	if cutoff < 0 || cutoff > math.MaxInt32 {
		panic("nest: cutoff out of range")
	}
	return Variant{Kind: KindTwistedCutoff, Cutoff: int32(cutoff)}
}

// String implements fmt.Stringer. The output round-trips through
// ParseVariant.
func (v Variant) String() string {
	switch v.Kind {
	case KindOriginal:
		return "original"
	case KindInterchanged:
		return "interchanged"
	case KindTwisted:
		return "twisted"
	case KindTwistedCutoff:
		return fmt.Sprintf("twisted-cutoff:%d", v.Cutoff)
	}
	return "unknown"
}

// ParseVariant parses a schedule name as printed by Variant.String — one of
// "original", "interchanged", "twisted", "twisted-cutoff" (cutoff 0, i.e.
// plain twisting with the §7.1 guard site), or "twisted-cutoff:N" for an
// explicit cutoff.
//
// Deprecated: the variant names are the four canonical points of the
// schedule algebra; parse schedule expressions (a superset of these names)
// with internal/transform/algebra.ParseSchedule and lower with
// Schedule.Variant. ParseVariant remains as the algebra's legacy-name
// backend and for external callers.
func ParseVariant(s string) (Variant, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(s), ":")
	switch name {
	case "original":
		if hasArg {
			return Variant{}, fmt.Errorf("nest: schedule %q takes no argument", s)
		}
		return Original(), nil
	case "interchanged", "interchange":
		if hasArg {
			return Variant{}, fmt.Errorf("nest: schedule %q takes no argument", s)
		}
		return Interchanged(), nil
	case "twisted":
		if hasArg {
			return Variant{}, fmt.Errorf("nest: schedule %q takes no argument (use twisted-cutoff:N)", s)
		}
		return Twisted(), nil
	case "twisted-cutoff":
		if !hasArg {
			return TwistedCutoff(0), nil
		}
		c, err := strconv.Atoi(arg)
		if err != nil || c < 0 || c > math.MaxInt32 {
			return Variant{}, fmt.Errorf("nest: bad cutoff %q in schedule %q", arg, s)
		}
		return TwistedCutoff(c), nil
	}
	return Variant{}, fmt.Errorf("nest: unknown schedule %q (want original, interchanged, twisted, or twisted-cutoff[:N])", s)
}
