package nest

import (
	"testing"

	"twist/internal/tree"
)

// benchSpec is a regular tree join over two n-node balanced trees with a
// trivial work body, isolating scheduling overhead.
func benchSpec(n int) Spec {
	var sink int64
	return Spec{
		Outer: tree.NewBalanced(n),
		Inner: tree.NewBalanced(n),
		Work:  func(o, i tree.NodeID) { sink += int64(o) ^ int64(i) },
	}
}

// irregularBenchSpec adds a hereditary outer-dependent truncation with
// roughly the given surviving fraction.
func irregularBenchSpec(n int, survive float64) Spec {
	s := benchSpec(n)
	outer, inner := s.Outer, s.Inner
	s.Hereditary = true
	s.TruncInner2 = func(o, i tree.NodeID) bool {
		// Deeper outer nodes are truncated for more of the inner tree;
		// monotone down both trees.
		depthO := outer.Order(o) - outer.Order(tree.NodeID(0))
		return float64(depthO)*float64(inner.Order(i)) > survive*float64(n)*float64(n)
	}
	return s
}

// BenchmarkSchedules compares raw engine throughput of the four schedules on
// a regular space.
func BenchmarkSchedules(b *testing.B) {
	s := benchSpec(1 << 10)
	e := MustNew(s)
	for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(64)} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				e.Run(v)
			}
			b.ReportMetric(float64(e.Stats.Work*int64(b.N))/b.Elapsed().Seconds()/1e6, "Miters/s")
		})
	}
}

// BenchmarkFlagModes is the §4.3 ablation: the Fig 6(b) set protocol vs the
// counter representation, on an irregular space under twisting.
func BenchmarkFlagModes(b *testing.B) {
	s := irregularBenchSpec(1<<10, 0.3)
	e := MustNew(s)
	for _, fm := range []FlagMode{FlagSets, FlagCounter} {
		fm := fm
		b.Run(fm.String(), func(b *testing.B) {
			e.Flags = fm
			for k := 0; k < b.N; k++ {
				e.Run(Twisted())
			}
		})
	}
}

// BenchmarkSubtreeTruncation is the §4.2 ablation: twisting with and without
// the subtree-truncation cut on a sparse hereditary space.
func BenchmarkSubtreeTruncation(b *testing.B) {
	s := irregularBenchSpec(1<<10, 0.1)
	e := MustNew(s)
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			e.SubtreeTruncation = on
			for k := 0; k < b.N; k++ {
				e.Run(Twisted())
			}
			b.ReportMetric(float64(e.Stats.Iterations), "iters/run")
		})
	}
}

// BenchmarkCutoffSweep is the §7.1 ablation: instruction cost of twisting as
// the cutoff varies.
func BenchmarkCutoffSweep(b *testing.B) {
	s := benchSpec(1 << 10)
	e := MustNew(s)
	for _, c := range []int{0, 16, 64, 256, 1024} {
		c := c
		b.Run(Variant{Kind: KindTwistedCutoff, Cutoff: int32(c)}.String()+"-"+itoa(c), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				e.Run(TwistedCutoff(c))
			}
			b.ReportMetric(float64(e.Stats.Twists), "twists/run")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	k := len(buf)
	for n > 0 {
		k--
		buf[k] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[k:])
}
