package nest

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"twist/internal/tree"
)

// reference is a literal transcription of the paper's pseudocode — Fig 2
// (original), Fig 3 + Fig 6(b) (interchange with truncation flags), and
// Fig 4(a) (twisting) — with none of the engine's refinements: no
// empty-region guards, no counter representation, no subtree truncation.
// The engine must produce exactly the same work sequences; the refinements
// may only skip no-work traversal.
type reference struct {
	s    Spec
	out  []pair
	flag []bool
}

func newReference(s Spec) *reference {
	return &reference{s: s, flag: make([]bool, s.Outer.Len())}
}

func (r *reference) truncO(o tree.NodeID) bool {
	return o == tree.Nil || (r.s.TruncOuter != nil && r.s.TruncOuter(o))
}

func (r *reference) truncI(i tree.NodeID) bool {
	return i == tree.Nil || (r.s.TruncInner1 != nil && r.s.TruncInner1(i))
}

func (r *reference) trunc2(o, i tree.NodeID) bool {
	return r.s.TruncInner2 != nil && r.s.TruncInner2(o, i)
}

// --- Fig 2: the original template -----------------------------------------

func (r *reference) outer(o, i tree.NodeID) {
	if r.truncO(o) {
		return
	}
	r.inner(o, i)
	r.outer(r.s.Outer.Left(o), i)
	r.outer(r.s.Outer.Right(o), i)
}

func (r *reference) inner(o, i tree.NodeID) {
	if r.truncI(i) || r.flag[o] || r.trunc2(o, i) {
		return
	}
	r.out = append(r.out, pair{o, i})
	r.inner(o, r.s.Inner.Left(i))
	r.inner(o, r.s.Inner.Right(i))
}

// --- Fig 3 + Fig 6(b): interchange with truncation flags -------------------

func (r *reference) outerSwapped(o, i tree.NodeID) {
	if r.truncI(i) {
		return
	}
	var unTrunc []tree.NodeID
	r.innerSwapped(o, i, &unTrunc)
	r.outerSwapped(o, r.s.Inner.Left(i))
	r.outerSwapped(o, r.s.Inner.Right(i))
	for _, n := range unTrunc {
		r.flag[n] = false
	}
}

func (r *reference) innerSwapped(o, i tree.NodeID, unTrunc *[]tree.NodeID) {
	if r.truncO(o) {
		return
	}
	if !r.flag[o] && r.trunc2(o, i) {
		r.flag[o] = true
		*unTrunc = append(*unTrunc, o)
	}
	if !r.flag[o] {
		r.out = append(r.out, pair{o, i})
	}
	r.innerSwapped(r.s.Outer.Left(o), i, unTrunc)
	r.innerSwapped(r.s.Outer.Right(o), i, unTrunc)
}

// --- Fig 4(a): recursion twisting -------------------------------------------

func (r *reference) twistedOuter(o, i tree.NodeID) {
	if r.truncO(o) {
		return
	}
	r.inner(o, i) // flag-aware per §4.1's closing remark
	for _, c := range [2]tree.NodeID{r.s.Outer.Left(o), r.s.Outer.Right(o)} {
		if r.s.Outer.Size(c) <= r.s.Inner.Size(i) {
			r.twistedOuterSwapped(c, i)
		} else {
			r.twistedOuter(c, i)
		}
	}
}

func (r *reference) twistedOuterSwapped(o, i tree.NodeID) {
	if r.truncI(i) {
		return
	}
	var unTrunc []tree.NodeID
	r.innerSwapped(o, i, &unTrunc)
	for _, c := range [2]tree.NodeID{r.s.Inner.Left(i), r.s.Inner.Right(i)} {
		if r.s.Inner.Size(c) <= r.s.Outer.Size(o) {
			r.twistedOuter(o, c)
		} else {
			r.twistedOuterSwapped(o, c)
		}
	}
	for _, n := range unTrunc {
		r.flag[n] = false
	}
}

// run executes the literal pseudocode for a variant.
func (r *reference) run(v Variant) []pair {
	r.out = nil
	for k := range r.flag {
		r.flag[k] = false
	}
	o, i := r.s.Outer.Root(), r.s.Inner.Root()
	if o == tree.Nil || i == tree.Nil {
		return nil
	}
	switch v.Kind {
	case KindOriginal:
		r.outer(o, i)
	case KindInterchanged:
		r.outerSwapped(o, i)
	case KindTwisted:
		r.twistedOuter(o, i)
	}
	return r.out
}

// engineRun executes the engine with the given flag mode and subtree option.
func engineRun(s Spec, v Variant, fm FlagMode, subtree bool) []pair {
	var out []pair
	s.Work = func(o, i tree.NodeID) { out = append(out, pair{o, i}) }
	e := MustNew(s)
	e.Flags = fm
	e.SubtreeTruncation = subtree
	e.Run(v)
	return out
}

func equalOrBothEmpty(a, b []pair) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestEngineMatchesLiteralPseudocode(t *testing.T) {
	shapes := []struct {
		name         string
		outer, inner *tree.Topology
	}{
		{"paper-example", tree.NewPerfect(2), tree.NewPerfect(2)},
		{"balanced", tree.NewBalanced(41), tree.NewBalanced(29)},
		{"bst/bst", tree.NewRandomBST(37, 5), tree.NewRandomBST(23, 6)},
		{"chain/bst", tree.NewChain(11), tree.NewRandomBST(19, 7)},
	}
	for _, sh := range shapes {
		for _, irregular := range []bool{false, true} {
			s := Spec{Outer: sh.outer, Inner: sh.inner}
			if irregular {
				s = irregularSpec(sh.outer, sh.inner, 77, false, 0.6)
			}
			ref := newReference(s)
			for _, v := range []Variant{Original(), Interchanged(), Twisted()} {
				want := ref.run(v)
				for _, fm := range []FlagMode{FlagSets, FlagCounter} {
					got := engineRun(s, v, fm, false)
					if !equalOrBothEmpty(got, want) {
						t.Fatalf("%s irregular=%v %v/%v: engine diverges from literal pseudocode\n got %v\nwant %v",
							sh.name, irregular, v, fm, got, want)
					}
				}
			}
			// Subtree truncation requires full heredity; check the work
			// sequence still matches on a hereditary space.
			if irregular {
				hs := irregularSpec(sh.outer, sh.inner, 78, true, 0.6)
				href := newReference(hs)
				for _, v := range []Variant{Interchanged(), Twisted()} {
					want := href.run(v)
					got := engineRun(hs, v, FlagCounter, true)
					if !equalOrBothEmpty(got, want) {
						t.Fatalf("%s hereditary %v: subtree truncation changed the work sequence",
							sh.name, v)
					}
				}
			}
		}
	}
}

// Property: on random tree shapes with random irregular truncation, the
// engine's twisted schedule equals the literal Fig 4(a)+6(b) pseudocode.
func TestQuickEngineVsReference(t *testing.T) {
	f := func(seedO, seedI, seedTrunc int64, rawNO, rawNI uint8) bool {
		no, ni := int(rawNO%60)+1, int(rawNI%60)+1
		outer := tree.NewRandomBST(no, seedO)
		inner := tree.NewRandomBST(ni, seedI)
		s := irregularSpec(outer, inner, seedTrunc, false, 0.8)
		ref := newReference(s)
		for _, v := range []Variant{Original(), Interchanged(), Twisted()} {
			if !equalOrBothEmpty(engineRun(s, v, FlagSets, false), ref.run(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: with both parameters drawn at random, cutoff schedules are
// always sound (permutation + column order) even on irregular spaces.
func TestQuickCutoffSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		outer := tree.NewRandomBST(rng.Intn(50)+1, rng.Int63())
		inner := tree.NewRandomBST(rng.Intn(50)+1, rng.Int63())
		s := irregularSpec(outer, inner, rng.Int63(), rng.Intn(2) == 0, rng.Float64())
		ref := engineRun(s, Original(), FlagCounter, true)
		cutoff := rng.Intn(inner.Len() + 2)
		got := engineRun(s, TwistedCutoff(cutoff), FlagCounter, true)
		if !equalOrBothEmpty(sortCanon(ref), sortCanon(got)) {
			t.Fatalf("trial %d cutoff %d: iteration sets differ", trial, cutoff)
		}
	}
}

// sortCanon returns a canonical ordering for set comparison.
func sortCanon(ps []pair) []pair {
	out := append([]pair(nil), ps...)
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && less(out[b], out[b-1]); b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

func less(a, b pair) bool {
	return a.o < b.o || (a.o == b.o && a.i < b.i)
}
