package nest

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"twist/internal/tree"
)

// runWithPairs executes RunWith collecting iterations thread-safely.
func runWithPairs(t *testing.T, s Spec, cfg RunConfig) ([]pair, RunResult) {
	t.Helper()
	var mu sync.Mutex
	var got []pair
	s.Work = func(o, i tree.NodeID) {
		mu.Lock()
		got = append(got, pair{o, i})
		mu.Unlock()
	}
	res, err := MustNew(s).RunWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func stealSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	outer, inner := tree.NewRandomBST(300, 7), tree.NewRandomBST(280, 8)
	return map[string]Spec{
		"regular":   regularSpec(outer, inner),
		"irregular": irregularSpec(outer, inner, 21, true, 0.6),
	}
}

// The core tentpole property: for every variant, on regular and TruncInner2
// workloads alike, the work-stealing run executes exactly the sequential
// iteration set, and its merged Stats are identical to the single-worker
// aggregate of the same decomposition (run with -race in CI).
func TestStealingMergeMatchesSequentialAggregate(t *testing.T) {
	t.Parallel()
	for name, s := range stealSpecs(t) {
		for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(8)} {
			wantPairs := pairSet(runPairs(t, s, Original(), nil))
			seqPairs, seq := runWithPairs(t, s, RunConfig{Variant: v, Workers: 1, Stealing: true})
			if !reflect.DeepEqual(pairSet(seqPairs), wantPairs) {
				t.Fatalf("%s/%v: 1-worker stealing iteration set differs from sequential", name, v)
			}
			for _, workers := range []int{2, 3, 8} {
				gotPairs, got := runWithPairs(t, s, RunConfig{Variant: v, Workers: workers, Stealing: true})
				if !reflect.DeepEqual(pairSet(gotPairs), wantPairs) {
					t.Fatalf("%s/%v/w=%d: stolen iteration set differs", name, v, workers)
				}
				if got.Stats != seq.Stats {
					t.Fatalf("%s/%v/w=%d: merged stats differ from 1-worker aggregate:\n got %v\nwant %v",
						name, v, workers, got.Stats, seq.Stats)
				}
				var sum Stats
				for _, st := range got.PerWorker {
					sum.Add(st)
				}
				if sum != got.Stats {
					t.Fatalf("%s/%v/w=%d: PerWorker does not sum to merged Stats", name, v, workers)
				}
			}
		}
	}
}

// Static and stealing executors run the identical task decomposition, so
// their merged Stats agree exactly, at every spawn depth.
func TestStaticAndStealingAgree(t *testing.T) {
	t.Parallel()
	for name, s := range stealSpecs(t) {
		for _, depth := range []int{1, 3, DefaultSpawnDepth, 30} {
			_, static := runWithPairs(t, s, RunConfig{Variant: Twisted(), Workers: 4, SpawnDepth: depth})
			_, steal := runWithPairs(t, s, RunConfig{Variant: Twisted(), Workers: 4, SpawnDepth: depth, Stealing: true})
			if static.Stats != steal.Stats {
				t.Fatalf("%s depth=%d: executors disagree:\nstatic %v\n steal %v", name, depth, static.Stats, steal.Stats)
			}
			if static.Tasks != steal.Tasks {
				t.Fatalf("%s depth=%d: task counts differ: %d vs %d", name, depth, static.Tasks, steal.Tasks)
			}
			if static.Steals != 0 {
				t.Fatalf("static executor reported %d steals", static.Steals)
			}
		}
	}
}

// Every column is owned by exactly one task, so per-column iteration order
// is the sequential one regardless of stealing.
func TestStealingPreservesColumnOrder(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(255), tree.NewBalanced(255)
	s := irregularSpec(outer, inner, 9, true, 0.6)
	ref := runPairs(t, s, Original(), nil)
	refCols := map[tree.NodeID][]tree.NodeID{}
	for _, p := range ref {
		refCols[p.o] = append(refCols[p.o], p.i)
	}
	var mu sync.Mutex
	gotCols := map[tree.NodeID][]tree.NodeID{}
	s.Work = func(o, i tree.NodeID) {
		mu.Lock()
		gotCols[o] = append(gotCols[o], i)
		mu.Unlock()
	}
	if _, err := MustNew(s).RunWith(RunConfig{Variant: Twisted(), Workers: 4, SpawnDepth: 3, Stealing: true}); err != nil {
		t.Fatal(err)
	}
	for o, want := range refCols {
		if !reflect.DeepEqual(gotCols[o], want) {
			t.Fatalf("column %d order differs under stealing", o)
		}
	}
}

// ForTask derives each task's Spec from its root; WrapWork tags the worker.
// Together they must cover every executed unit exactly once.
func TestRunWithForTaskAndWrapWork(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(127), tree.NewBalanced(127)
	s := regularSpec(outer, inner)
	s.Work = func(o, i tree.NodeID) {}
	var mu sync.Mutex
	taskRoots := map[tree.NodeID]int{}
	workerSeen := map[int]bool{}
	cfg := RunConfig{
		Variant:    Twisted(),
		Workers:    4,
		SpawnDepth: 3,
		Stealing:   true,
		ForTask: func(root tree.NodeID, base Spec) Spec {
			mu.Lock()
			taskRoots[root]++
			mu.Unlock()
			return base
		},
		WrapWork: func(worker int, work func(o, i tree.NodeID)) func(o, i tree.NodeID) {
			mu.Lock()
			workerSeen[worker] = true
			mu.Unlock()
			return work
		},
	}
	res, err := MustNew(s).RunWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(taskRoots)) != res.Tasks {
		t.Fatalf("ForTask saw %d distinct roots, executor reports %d tasks", len(taskRoots), res.Tasks)
	}
	for root, n := range taskRoots {
		if n != 1 {
			t.Fatalf("task root %d derived %d times", root, n)
		}
	}
	for w := range workerSeen {
		if w < 0 || w >= res.Workers {
			t.Fatalf("WrapWork saw out-of-range worker %d", w)
		}
	}
}

// A pre-canceled context aborts promptly: the run returns ctx.Err() and the
// partial Stats stay well below a full execution.
func TestRunWithCancellation(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(1023), tree.NewBalanced(1023)
	s := regularSpec(outer, inner)
	s.Work = func(o, i tree.NodeID) {}
	e := MustNew(s)
	full, err := e.RunWith(RunConfig{Variant: Twisted(), Workers: 2, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, stealing := range []bool{false, true} {
		res, err := e.RunWith(RunConfig{Variant: Twisted(), Workers: 2, Stealing: stealing, Ctx: ctx})
		if err != context.Canceled {
			t.Fatalf("stealing=%v: err = %v, want context.Canceled", stealing, err)
		}
		if res.Stats.Work >= full.Stats.Work {
			t.Fatalf("stealing=%v: canceled run did all the work", stealing)
		}
	}
}

// Sequential RunContext honors cancellation too, returning partial Stats.
func TestRunContextCancellation(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewBalanced(1023), tree.NewBalanced(1023)
	s := regularSpec(outer, inner)
	var full int64
	s.Work = func(o, i tree.NodeID) { full++ }
	e := MustNew(s)
	if err := e.RunContext(context.Background(), Twisted()); err != nil {
		t.Fatal(err)
	}
	want := e.Stats.Work
	ctx, cancel := context.WithCancel(context.Background())
	var calls int64
	s.Work = func(o, i tree.NodeID) {
		if calls++; calls == 100 {
			cancel()
		}
	}
	e2 := MustNew(s)
	if err := e2.RunContext(ctx, Twisted()); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e2.Stats.Work == 0 || e2.Stats.Work >= want {
		t.Fatalf("partial work %d not in (0, %d)", e2.Stats.Work, want)
	}
	// And a nil-ctx RunContext is exactly Run.
	s3 := regularSpec(outer, inner)
	s3.Work = func(o, i tree.NodeID) {}
	if err := MustNew(s3).RunContext(nil, Twisted()); err != nil {
		t.Fatal(err)
	}
}

func TestDeque(t *testing.T) {
	t.Parallel()
	d := &deque{}
	if _, ok := d.pop(); ok {
		t.Fatal("pop from empty deque")
	}
	for k := 0; k < dequeCap; k++ {
		if !d.push(task{root: tree.NodeID(k)}) {
			t.Fatalf("push %d failed below capacity", k)
		}
	}
	if d.push(task{}) {
		t.Fatal("push beyond capacity succeeded")
	}
	if got, ok := d.pop(); !ok || got.root != dequeCap-1 {
		t.Fatalf("pop = %v, want LIFO tail", got)
	}
	stolen := d.stealHalf(nil)
	if len(stolen) != dequeCap/2 {
		t.Fatalf("stole %d, want %d", len(stolen), dequeCap/2)
	}
	if stolen[0].root != 0 || stolen[1].root != 1 {
		t.Fatal("steal not FIFO from the head")
	}
	// Remaining: tasks dequeCap/2 .. dequeCap-2 (255 popped, 0..127 stolen).
	if got, ok := d.pop(); !ok || got.root != dequeCap-2 {
		t.Fatalf("pop after steal = %v", got)
	}
	n := 1 // already popped one
	for {
		if _, ok := d.pop(); !ok {
			break
		}
		n++
	}
	if n != dequeCap-1-dequeCap/2 {
		t.Fatalf("drained %d tasks, want %d", n, dequeCap-1-dequeCap/2)
	}
}

func BenchmarkRunWithStealing(b *testing.B) {
	s := benchSpec(1 << 11)
	for _, workers := range []int{1, 4} {
		b.Run("w"+itoa(workers), func(b *testing.B) {
			e := MustNew(s)
			for k := 0; k < b.N; k++ {
				if _, err := e.RunWith(RunConfig{Variant: Twisted(), Workers: workers, Stealing: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
