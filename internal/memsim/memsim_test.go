package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveReuse is the O(n²) reference: distinct addresses between consecutive
// accesses to the same address.
func naiveReuse(trace []Addr) []int {
	out := make([]int, len(trace))
	last := map[Addr]int{}
	for k, a := range trace {
		if t0, ok := last[a]; ok {
			distinct := map[Addr]bool{}
			for _, b := range trace[t0+1 : k] {
				distinct[b] = true
			}
			out[k] = len(distinct)
		} else {
			out[k] = Infinite
		}
		last[a] = k
	}
	return out
}

func TestReuseAnalyzerSmallSequences(t *testing.T) {
	cases := []struct {
		trace []Addr
		want  []int
	}{
		{[]Addr{1}, []int{Infinite}},
		{[]Addr{1, 1}, []int{Infinite, 0}},
		{[]Addr{1, 2, 1}, []int{Infinite, Infinite, 1}},
		{[]Addr{1, 2, 3, 1, 2, 3}, []int{Infinite, Infinite, Infinite, 2, 2, 2}},
		{[]Addr{1, 2, 2, 2, 1}, []int{Infinite, Infinite, 0, 0, 1}},
		{[]Addr{5, 4, 3, 4, 5}, []int{Infinite, Infinite, Infinite, 1, 2}},
	}
	for _, c := range cases {
		r := NewReuseAnalyzer()
		for k, a := range c.trace {
			if got := r.Access(a); got != c.want[k] {
				t.Fatalf("trace %v access %d: got %d, want %d", c.trace, k, got, c.want[k])
			}
		}
	}
}

func TestReuseAnalyzerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(400)
		alphabet := 1 + rng.Intn(30)
		trace := make([]Addr, n)
		for k := range trace {
			trace[k] = Addr(rng.Intn(alphabet))
		}
		want := naiveReuse(trace)
		r := NewReuseAnalyzer()
		for k, a := range trace {
			if got := r.Access(a); got != want[k] {
				t.Fatalf("trial %d access %d (addr %d): got %d, want %d", trial, k, a, got, want[k])
			}
		}
		if r.Distinct() > alphabet {
			t.Fatalf("Distinct=%d > alphabet %d", r.Distinct(), alphabet)
		}
	}
}

// Property: reuse distance is always in [0, distinct-1] for non-first
// accesses, and a repeat access immediately after has distance 0.
func TestQuickReuseBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		r := NewReuseAnalyzer()
		seen := map[Addr]bool{}
		for _, b := range raw {
			a := Addr(b % 16)
			d := r.Access(a)
			if seen[a] {
				if d < 0 || d >= len(seen) {
					return false
				}
			} else if d != Infinite {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for _, d := range []int{Infinite, 0, 1, 1, 5, 100} {
		h.Add(d)
	}
	if h.Total() != 6 || h.InfiniteCount() != 1 {
		t.Fatalf("total=%d inf=%d", h.Total(), h.InfiniteCount())
	}
	if got := h.CDF(0); got != 0 {
		t.Fatalf("CDF(0)=%v", got)
	}
	if got := h.CDF(1); got != 1.0/6 {
		t.Fatalf("CDF(1)=%v", got)
	}
	if got := h.CDF(2); got != 3.0/6 {
		t.Fatalf("CDF(2)=%v", got)
	}
	if got := h.CDF(1000); got != 5.0/6 { // infinite access never counts
		t.Fatalf("CDF(1000)=%v", got)
	}
	if h.Max() != 100 {
		t.Fatalf("Max=%d", h.Max())
	}
	if got, want := h.Mean(), (0.0+1+1+5+100)/5; got != want {
		t.Fatalf("Mean=%v want %v", got, want)
	}
	s := h.Series([]int{1, 2, 1000})
	if s[0] != 1.0/6 || s[1] != 3.0/6 || s[2] != 5.0/6 {
		t.Fatalf("Series=%v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.CDF(10) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

// --- cache simulator -------------------------------------------------------

func tiny(ways, lines int) CacheConfig {
	return CacheConfig{Name: "T", SizeBytes: lines * 64, LineBytes: 64, Ways: ways}
}

func TestCacheHitOnRepeat(t *testing.T) {
	h := MustNewHierarchy(tiny(2, 4))
	h.Access(0)
	h.Access(0)
	s := h.Stats()[0]
	if s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestCacheSameLineDifferentBytes(t *testing.T) {
	h := MustNewHierarchy(tiny(2, 4))
	h.Access(0)
	h.Access(63) // same 64B line
	h.Access(64) // next line
	s := h.Stats()[0]
	if s.Misses != 2 {
		t.Fatalf("misses = %d, want 2", s.Misses)
	}
}

// LRU within a set: a 2-way set holding lines A,B evicts A when C arrives;
// touching A again misses, but B... was evicted by A's refill. Classic LRU
// sequence check.
func TestCacheLRUWithinSet(t *testing.T) {
	// 2 ways, 2 sets; lines 0,2,4 all map to set 0 (line index mod 2).
	h := MustNewHierarchy(tiny(2, 4))
	a, b, c := Addr(0), Addr(2*64), Addr(4*64)
	h.Access(a) // miss, set0: [a]
	h.Access(b) // miss, set0: [b,a]
	h.Access(a) // hit,  set0: [a,b]
	h.Access(c) // miss, evict b (LRU), set0: [c,a]
	h.Access(a) // hit
	h.Access(b) // miss (was evicted)
	s := h.Stats()[0]
	if s.Accesses != 6 || s.Misses != 4 {
		t.Fatalf("stats = %+v; want 6 accesses, 4 misses", s)
	}
}

func TestWorkingSetFitsLevel(t *testing.T) {
	h := MustNewHierarchy(
		CacheConfig{Name: "L1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 4},
		CacheConfig{Name: "L2", SizeBytes: 8 << 10, LineBytes: 64, Ways: 8},
	)
	// Working set of 32 lines = 2 KiB: exceeds L1 (16 lines), fits L2.
	const lines = 32
	for pass := 0; pass < 50; pass++ {
		for k := 0; k < lines; k++ {
			h.Access(Addr(k * 64))
		}
	}
	st := h.Stats()
	l1, l2 := st[0], st[1]
	if l1.MissRate() < 0.9 {
		t.Fatalf("L1 miss rate %v; cyclic overflow under LRU should thrash", l1.MissRate())
	}
	// L2 sees the L1 misses; after the first pass everything hits there.
	if l2.MissRate() > 0.05 {
		t.Fatalf("L2 miss rate %v; working set fits L2", l2.MissRate())
	}
}

func TestHierarchyDescendsOnMiss(t *testing.T) {
	h := MustNewHierarchy(tiny(2, 4), tiny(4, 16))
	h.Access(0)
	st := h.Stats()
	if st[0].Accesses != 1 || st[1].Accesses != 1 {
		t.Fatalf("stats = %+v; cold miss must reach both levels", st)
	}
	h.Access(0)
	st = h.Stats()
	if st[1].Accesses != 1 {
		t.Fatalf("L1 hit leaked to L2: %+v", st)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := MustNewHierarchy(tiny(2, 4))
	h.Access(0)
	h.Reset()
	st := h.Stats()[0]
	if st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	h.Access(0)
	if h.Stats()[0].Misses != 1 {
		t.Fatal("reset did not clear contents")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "neg", SizeBytes: -1, LineBytes: 64, Ways: 2},
		{Name: "line", SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{Name: "ways", SizeBytes: 64, LineBytes: 64, Ways: 2},
		{Name: "sets", SizeBytes: 3 * 64, LineBytes: 64, Ways: 1},
	}
	for _, c := range bad {
		if _, err := NewHierarchy(c); err == nil {
			t.Fatalf("config %q accepted", c.Name)
		}
	}
	if _, err := NewHierarchy(); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(tiny(2, 4), CacheConfig{Name: "L2", SizeBytes: 4096, LineBytes: 128, Ways: 2}); err == nil {
		t.Fatal("mixed line sizes accepted")
	}
}

func TestDefaultHierarchyGeometry(t *testing.T) {
	h := Default()
	st := h.Stats()
	if len(st) != 3 || st[0].Name != "L1" || st[2].Name != "L3" {
		t.Fatalf("default levels = %+v", st)
	}
}

func TestMapperDisjoint(t *testing.T) {
	ms := DisjointMappers(3, 64)
	if ms[0].Addr(1<<20) >= ms[1].Addr(0) {
		t.Fatal("tree 0 range overlaps tree 1")
	}
	if ms[1].Addr(5)-ms[1].Addr(4) != 64 {
		t.Fatal("stride not honored")
	}
}

func TestRemapper(t *testing.T) {
	m := Remapper{Base: 1 << 30, Stride: 32, Perm: []int32{2, 0, 1}}
	for id, slot := range m.Perm {
		if got, want := m.Addr(int32(id)), Addr(1<<30)+Addr(slot)*32; got != want {
			t.Fatalf("Addr(%d) = %#x, want %#x", id, got, want)
		}
	}
	ident := Remapper{Base: 1 << 30, Stride: 64}
	if ident.Addr(7) != (Mapper{Base: 1 << 30, Stride: 64}).Addr(7) {
		t.Fatal("nil-perm Remapper disagrees with Mapper")
	}
}

// Simulated LRU miss counts must agree with reuse-distance theory for a
// fully-associative cache: an access misses iff its reuse distance (in
// lines) is >= capacity. We emulate full associativity with a 1-set config.
func TestCacheAgreesWithStackDistance(t *testing.T) {
	const ways = 8
	h := MustNewHierarchy(CacheConfig{Name: "FA", SizeBytes: ways * 64, LineBytes: 64, Ways: ways})
	r := NewReuseAnalyzer()
	rng := rand.New(rand.NewSource(9))
	var wantMisses int64
	for k := 0; k < 5000; k++ {
		line := Addr(rng.Intn(32))
		d := r.Access(line)
		if d == Infinite || d >= ways {
			wantMisses++
		}
		h.Access(line * 64)
	}
	if got := h.Stats()[0].Misses; got != wantMisses {
		t.Fatalf("simulator misses %d, stack-distance theory %d", got, wantMisses)
	}
}

func BenchmarkReuseAnalyzer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trace := make([]Addr, 1<<16)
	for k := range trace {
		trace[k] = Addr(rng.Intn(1 << 12))
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		r := NewReuseAnalyzer()
		for _, a := range trace {
			r.Access(a)
		}
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := Default()
	rng := rand.New(rand.NewSource(1))
	trace := make([]Addr, 1<<16)
	for k := range trace {
		trace[k] = Addr(rng.Intn(1<<22)) &^ 63
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, a := range trace {
			h.Access(a)
		}
	}
}
