package memsim

import (
	"math/rand"
	"testing"
)

func TestPredictMissesHandComputed(t *testing.T) {
	h := NewHistogram()
	for _, d := range []int{Infinite, Infinite, 0, 1, 3, 3, 8} {
		h.Add(d)
	}
	cases := []struct {
		cap  int
		want int64
	}{
		{1, 2 + 4}, // every finite distance >= 1 misses (d=0 hits)
		{2, 2 + 3}, // d=1 now hits; 3,3,8 miss
		{4, 2 + 1}, // only d=8 misses
		{16, 2},    // compulsory only
	}
	for _, c := range cases {
		if got := PredictMisses(h, c.cap); got != c.want {
			t.Fatalf("cap %d: predicted %d, want %d", c.cap, got, c.want)
		}
	}
}

// The inclusion property: a bigger cache never misses more.
func TestMissCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewHistogram()
	ra := NewReuseAnalyzer()
	for k := 0; k < 20000; k++ {
		h.Add(ra.Access(Addr(rng.Intn(700))))
	}
	caps := []int{1, 2, 4, 8, 16, 64, 256, 1024}
	curve := MissCurve(h, caps)
	for k := 1; k < len(curve); k++ {
		if curve[k] > curve[k-1] {
			t.Fatalf("miss curve not monotone at capacity %d: %v", caps[k], curve)
		}
	}
	if curve[0] <= curve[len(curve)-1] && curve[0] == 0 {
		t.Fatal("degenerate curve")
	}
}

// Cross-validation: the analytical prediction must equal the simulator
// exactly for a fully-associative LRU cache (single set).
func TestPredictionMatchesSimulatorExactly(t *testing.T) {
	for _, ways := range []int{4, 16, 64} {
		h := MustNewHierarchy(CacheConfig{Name: "FA", SizeBytes: ways * 64, LineBytes: 64, Ways: ways})
		hist := NewHistogram()
		ra := NewReuseAnalyzer()
		rng := rand.New(rand.NewSource(int64(ways)))
		for k := 0; k < 30000; k++ {
			line := Addr(rng.Intn(300))
			hist.Add(ra.Access(line))
			h.Access(line * 64)
		}
		if got, want := h.Stats()[0].Misses, PredictMisses(hist, ways); got != want {
			t.Fatalf("ways=%d: simulator %d, prediction %d", ways, got, want)
		}
	}
}

func TestPredictEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if PredictMisses(h, 8) != 0 || PredictMissRatio(h, 8) != 0 {
		t.Fatal("empty histogram predicted misses")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := MustNewHierarchy(CacheConfig{Name: "T", SizeBytes: 4 * 64, LineBytes: 64, Ways: 2})
	h.Access(0)
	h.Access(64)
	h.ResetStats()
	st := h.Stats()[0]
	if st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("stats not cleared: %+v", st)
	}
	h.Access(0) // still resident: must hit
	st = h.Stats()[0]
	if st.Misses != 0 {
		t.Fatal("ResetStats evicted contents")
	}
}
