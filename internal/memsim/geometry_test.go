package memsim

import (
	"math/rand"
	"reflect"
	"testing"
)

// Quick-check property over randomly constructed *valid* hierarchies: every
// geometry FormatGeometry can print reparses to the identical configs, and
// the printed form is a fixpoint (format ∘ parse ∘ format = format). The
// generator builds levels from (sets, ways, line) triples so validity —
// power-of-two sets and lines, uniform line size — holds by construction;
// fixed-case coverage lives in config_test.go.
func TestQuickGeometryRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(41))
	lines := []int{32, 64, 128}
	for trial := 0; trial < 500; trial++ {
		line := lines[rng.Intn(len(lines))]
		cfgs := make([]CacheConfig, rng.Intn(4)+1)
		for k := range cfgs {
			sets := 1 << rng.Intn(12)
			ways := rng.Intn(24) + 1
			cfgs[k] = CacheConfig{
				Name:      "L" + string(rune('1'+k)),
				SizeBytes: sets * ways * line,
				LineBytes: line,
				Ways:      ways,
			}
		}
		s := FormatGeometry(cfgs)
		got, err := ParseGeometry(s)
		if err != nil {
			t.Fatalf("FormatGeometry(%+v) = %q does not parse: %v", cfgs, s, err)
		}
		if !reflect.DeepEqual(got, cfgs) {
			t.Fatalf("round trip through %q:\n got %+v\nwant %+v", s, got, cfgs)
		}
		if again := FormatGeometry(got); again != s {
			t.Fatalf("format not a fixpoint: %q reformats to %q", s, again)
		}
	}
}

// FuzzParseGeometry: arbitrary input never panics, and any accepted geometry
// round-trips through FormatGeometry to equal configs — the invariant the
// BENCH baselines rely on when they pin a geometry string.
func FuzzParseGeometry(f *testing.F) {
	for _, s := range []string{
		"32K/64:8,256K/64:8,20M/64:20", "64/64:1", "1G/128:16",
		"32K/64:8,", "32K/48:8", "0/64:8", "-32K/64:8", "junk", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfgs, err := ParseGeometry(s)
		if err != nil {
			return
		}
		out := FormatGeometry(cfgs)
		rt, err := ParseGeometry(out)
		if err != nil {
			t.Fatalf("ParseGeometry(%q) ok, but its format %q does not reparse: %v", s, out, err)
		}
		if !reflect.DeepEqual(rt, cfgs) {
			t.Fatalf("ParseGeometry(%q) round-trips through %q to different configs", s, out)
		}
	})
}
