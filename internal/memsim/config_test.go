package memsim

import "testing"

func TestNewSelectsEngine(t *testing.T) {
	for workers, want := range map[int]string{0: "*memsim.Hierarchy", 1: "*memsim.Hierarchy"} {
		sim := MustNew(Config{Levels: DefaultLevels(), SimWorkers: workers})
		if got := typeName(sim); got != want {
			t.Fatalf("SimWorkers=%d built %s, want %s", workers, got, want)
		}
		sim.Close()
	}
	sim := MustNew(Config{Levels: DefaultLevels(), SimWorkers: 4})
	defer sim.Close()
	sh, ok := sim.(*ShardedHierarchy)
	if !ok {
		t.Fatalf("SimWorkers=4 built %T, want *ShardedHierarchy", sim)
	}
	if sh.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sh.Shards())
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Levels: DefaultLevels()[:1], SimWorkers: 2}); err != nil {
		t.Fatalf("single-level sharded config rejected: %v", err)
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *Hierarchy:
		return "*memsim.Hierarchy"
	case *ShardedHierarchy:
		return "*memsim.ShardedHierarchy"
	}
	return "?"
}

func TestParseGeometryPaper(t *testing.T) {
	cfgs, err := ParseGeometry("32K/64:8,256K/64:8,20M/64:20")
	if err != nil {
		t.Fatal(err)
	}
	want := PaperLevels()
	if len(cfgs) != len(want) {
		t.Fatalf("parsed %d levels, want %d", len(cfgs), len(want))
	}
	for k := range want {
		if cfgs[k] != want[k] {
			t.Fatalf("level %d = %+v, want %+v", k, cfgs[k], want[k])
		}
	}
}

func TestGeometryRoundTrip(t *testing.T) {
	for _, levels := range [][]CacheConfig{PaperLevels(), DefaultLevels(), threeLevels()} {
		s := FormatGeometry(levels)
		back, err := ParseGeometry(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got := FormatGeometry(back); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		for k := range levels {
			if back[k].SizeBytes != levels[k].SizeBytes ||
				back[k].LineBytes != levels[k].LineBytes ||
				back[k].Ways != levels[k].Ways {
				t.Fatalf("%q level %d = %+v, want %+v", s, k, back[k], levels[k])
			}
		}
	}
}

func TestParseGeometryRejects(t *testing.T) {
	bad := []string{
		"",                    // no levels
		"32K",                 // missing line/ways
		"32K/64",              // missing ways
		"32K:8",               // missing line
		"32K/48:8",            // non-power-of-two line
		"32K/64:7",            // sets not a power of two
		"20M/64:16",           // 20480 sets: not a power of two
		"-32K/64:8",           // negative size
		"32K/64:8,256K/128:8", // mixed line sizes
		"32K/64:eight",        // non-numeric ways
		"one/64:8",            // non-numeric size
	}
	for _, s := range bad {
		if _, err := ParseGeometry(s); err == nil {
			t.Fatalf("geometry %q accepted", s)
		}
	}
}
