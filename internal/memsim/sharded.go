package memsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"twist/internal/obs"
)

// Set-partitioned parallel cache simulation.
//
// Set-associative LRU state is independent per cache set: the contents and
// the hit/miss/eviction outcome of a set depend only on the subsequence of
// accesses that map to it. A ShardedHierarchy exploits that by routing every
// address to one of W shards keyed on the set bits of the line address, and
// running W single-owner sequential simulators concurrently on lock-free
// SPSC batch queues. Because the set masks of a validated hierarchy are
// nested (power-of-two set counts sharing their low line-address bits), one
// routing key — the set bits of the smallest level — colocates all levels'
// sets, so every shard replays an order-preserved subsequence of the
// sequential trace against the exact sets it owns. The merged per-level
// totals are therefore bit-identical to the sequential simulator's, not
// approximately equal; DESIGN.md §4.8 gives the argument in full.

// shardQueueCap is the per-shard work-queue depth in batches. Deep enough to
// ride out shard imbalance bursts, shallow enough that a drain is prompt.
const shardQueueCap = 64

// ShardedHierarchy is the parallel Simulator: the routing half runs on the
// caller's goroutine, the LRU walks run on the shard workers. Like
// Hierarchy, the producer side (Access, AccessBatch, and the quiescing
// methods Stats/Reset/ResetStats/Publish/Close) must be confined to one
// goroutine at a time; Stream provides that serialization for concurrent
// trace producers.
type ShardedHierarchy struct {
	cfgs      []CacheConfig
	lineShift uint
	routeMask uint64 // set mask of the smallest level: the routing key bits
	batch     int

	shards  []*simShard
	stage   [][]Addr // per-shard partial batches, owned by the producer side
	pending atomic.Int64
	wg      sync.WaitGroup
	closed  bool
}

// simShard is one single-owner slice of the simulation. The counters are
// written only by the shard's worker goroutine and read by the producer side
// after a drain — the pending-counter handoff establishes the ordering.
type simShard struct {
	h    *Hierarchy
	q    *spscRing // router → worker: full batches
	free *spscRing // worker → router: spent buffers for reuse

	batches int64
	addrs   int64
	busy    time.Duration
}

// NewSharded builds a set-partitioned simulator with up to workers shards
// over the given levels (closest first). workers is clamped to the number of
// distinct routing keys — the set count of the smallest level — since finer
// partitioning than one shard per set cannot exist. batch <= 0 means
// DefaultBatch. Callers normally reach this through New with
// Config.SimWorkers > 1.
func NewSharded(cfgs []CacheConfig, workers, batch int) (*ShardedHierarchy, error) {
	if workers < 1 {
		return nil, fmt.Errorf("memsim: sharded simulator needs at least one worker, got %d", workers)
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	// Validate once up front (and compute the routing mask) before building
	// any per-shard state.
	probe, err := NewHierarchy(cfgs...)
	if err != nil {
		return nil, err
	}
	minSets := int(probe.levels[0].setMask) + 1
	for _, l := range probe.levels {
		if sets := int(l.setMask) + 1; sets < minSets {
			minSets = sets
		}
	}
	if workers > minSets {
		workers = minSets
	}
	s := &ShardedHierarchy{
		cfgs:      append([]CacheConfig(nil), cfgs...),
		lineShift: probe.levels[0].lineShift,
		routeMask: uint64(minSets - 1),
		batch:     batch,
		shards:    make([]*simShard, workers),
		stage:     make([][]Addr, workers),
	}
	for k := range s.shards {
		h, err := NewHierarchy(cfgs...)
		if err != nil {
			return nil, err
		}
		s.shards[k] = &simShard{h: h, q: newSPSC(shardQueueCap), free: newSPSC(shardQueueCap)}
		s.stage[k] = make([]Addr, 0, batch)
		s.wg.Add(1)
		go s.worker(s.shards[k])
	}
	return s, nil
}

// worker is one shard's consumer loop: pop a batch, walk the LRU state,
// recycle the buffer, signal completion. Decrementing pending after the walk
// is what lets a drained producer read this shard's state race-free.
func (s *ShardedHierarchy) worker(sh *simShard) {
	defer s.wg.Done()
	for {
		b, ok := sh.q.pop()
		if !ok {
			return
		}
		t0 := time.Now()
		sh.h.AccessBatch(b)
		sh.busy += time.Since(t0)
		sh.batches++
		sh.addrs += int64(len(b))
		sh.free.tryPush(b[:0])
		s.pending.Add(-1)
	}
}

// shardOf routes an address: the set bits of the smallest level pick the
// owning shard. Two addresses that share any level's set always share these
// bits (the masks are nested), so a set is owned by exactly one shard.
func (s *ShardedHierarchy) shardOf(a Addr) int {
	line := uint64(a) >> s.lineShift
	return int((line & s.routeMask) % uint64(len(s.shards)))
}

// Access routes one load to its owning shard, dispatching the shard's batch
// when it fills. The hot path is a shift, a mask, and an append.
func (s *ShardedHierarchy) Access(a Addr) {
	k := s.shardOf(a)
	s.stage[k] = append(s.stage[k], a)
	if len(s.stage[k]) == cap(s.stage[k]) {
		s.dispatch(k)
	}
}

// AccessBatch routes the loads of as in order. Per-shard order is the
// arrival order, so a sequential trace reaches every set in its sequential
// order — the invariant behind the bit-identical merge.
func (s *ShardedHierarchy) AccessBatch(as []Addr) {
	for _, a := range as {
		s.Access(a)
	}
}

// dispatch hands shard k's staged batch to its worker and arms a fresh
// buffer, preferring a recycled one. pending is raised before the push so a
// concurrent drain can never observe the batch as neither staged nor
// pending.
func (s *ShardedHierarchy) dispatch(k int) {
	sh := s.shards[k]
	s.pending.Add(1)
	if !sh.q.push(s.stage[k]) {
		s.pending.Add(-1) // closed ring: the batch is dropped, not in flight
		return
	}
	if nb, ok := sh.free.tryPop(); ok {
		s.stage[k] = nb
	} else {
		s.stage[k] = make([]Addr, 0, s.batch)
	}
}

// drain dispatches every partial staged batch and blocks until the shard
// workers have consumed everything in flight. On return, all shard state and
// counters are visible to the caller.
func (s *ShardedHierarchy) drain() {
	for k := range s.stage {
		if len(s.stage[k]) > 0 {
			s.dispatch(k)
		}
	}
	var w backoff
	for s.pending.Load() != 0 {
		w.wait()
	}
}

// Shards returns the number of shard workers actually running (NewSharded
// may have clamped the requested count to the routable set count).
func (s *ShardedHierarchy) Shards() int { return len(s.shards) }

// Stats drains the pipeline and returns the merged per-level statistics, L1
// first. Each set lives in exactly one shard, so the merge is an exact sum —
// bit-identical to the sequential simulator on the same trace.
func (s *ShardedHierarchy) Stats() []LevelStats {
	s.drain()
	out := make([]LevelStats, len(s.cfgs))
	for li, c := range s.cfgs {
		out[li].Name = c.Name
	}
	for _, sh := range s.shards {
		for li, st := range sh.h.Stats() {
			out[li].Accesses += st.Accesses
			out[li].Misses += st.Misses
			out[li].Evictions += st.Evictions
		}
	}
	return out
}

// Reset drains the pipeline, then clears every shard's contents and
// statistics, keeping the geometry.
func (s *ShardedHierarchy) Reset() {
	s.drain()
	for _, sh := range s.shards {
		sh.h.Reset()
	}
}

// ResetStats drains the pipeline, then clears the counters but keeps cache
// contents — the warmup/measure protocol of Hierarchy.ResetStats.
func (s *ShardedHierarchy) ResetStats() {
	s.drain()
	for _, sh := range s.shards {
		sh.h.ResetStats()
	}
}

// Publish drains the pipeline and emits the merged per-level counters under
// prefix.<level>.{accesses,hits,misses,evictions} exactly like
// Hierarchy.Publish, plus the per-shard pipeline view under
// prefix.shard<k>: batch and address counts and the shard's busy span (time
// spent walking LRU state, the parallelized portion of the simulation).
func (s *ShardedHierarchy) Publish(r obs.Recorder, prefix string) {
	if r == nil {
		return
	}
	s.drain()
	publishLevels(r, prefix, s.Stats())
	for k, sh := range s.shards {
		p := fmt.Sprintf("%s.shard%d", prefix, k)
		r.Count(p+".batches", sh.batches)
		r.Count(p+".addresses", sh.addrs)
		r.Time(p+".busy", sh.busy)
	}
}

// Close drains the pipeline and stops the shard workers. The merged Stats
// remain readable afterwards; further Access calls are dropped. Close is
// idempotent.
func (s *ShardedHierarchy) Close() {
	if s.closed {
		return
	}
	s.drain()
	for _, sh := range s.shards {
		sh.q.close()
	}
	s.wg.Wait()
	s.closed = true
}
