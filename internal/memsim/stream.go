package memsim

import (
	"sync"

	"twist/internal/obs"
)

// Streaming trace pipeline.
//
// The original simulation flow materialized a full []Addr trace before
// feeding the hierarchy — O(iterations) memory, which at fig8b/fig9 scales
// dwarfs the caches being modeled. A Stream inverts that: each producer
// (worker goroutine) owns a Sink, a small ring buffer of addresses, and the
// hierarchy consumes full batches as they fill. Memory is
// O(cache geometry + workers·batch), independent of trace length.
//
// With a single Sink the simulated access order is exactly the emission
// order, so sequential results are bit-identical to the eager flow. With
// several Sinks (one per worker) the Stream becomes the merge mode: batches
// from different workers interleave in completion order, modeling the
// workers sharing one cache — the honest analogue of hardware threads on a
// shared LLC, where the interleaving is likewise timing-dependent.

// DefaultBatch is the default Sink capacity in addresses (32 KiB per sink).
const DefaultBatch = 4096

// Stream owns a Hierarchy and serializes batched access to it.
type Stream struct {
	mu      sync.Mutex
	h       *Hierarchy
	batch   int
	sinks   []*Sink
	batches int64
	emitted int64
}

// NewStream wraps h. batch <= 0 means DefaultBatch.
func NewStream(h *Hierarchy, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Stream{h: h, batch: batch}
}

// Sink registers and returns a new producer buffer. Each concurrent
// producer must own its own Sink; a Sink itself is not safe for concurrent
// use.
func (st *Stream) Sink() *Sink {
	sk := &Sink{st: st, buf: make([]Addr, st.batch)}
	st.mu.Lock()
	st.sinks = append(st.sinks, sk)
	st.mu.Unlock()
	return sk
}

// consume replays one full batch into the hierarchy.
func (st *Stream) consume(as []Addr) {
	st.mu.Lock()
	st.h.AccessBatch(as)
	st.batches++
	st.emitted += int64(len(as))
	st.mu.Unlock()
}

// Publish emits the stream's pipeline counters into r under
// prefix.{batches,addresses,sinks}: how many batch flushes the hierarchy
// consumed, how many addresses flowed through in total, and how many
// producer sinks are registered. Counters accumulate across runs until the
// Stream is discarded.
func (st *Stream) Publish(r obs.Recorder, prefix string) {
	if r == nil {
		return
	}
	st.mu.Lock()
	batches, emitted, sinks := st.batches, st.emitted, int64(len(st.sinks))
	st.mu.Unlock()
	r.Count(prefix+".batches", batches)
	r.Count(prefix+".addresses", emitted)
	r.Count(prefix+".sinks", sinks)
}

// Close flushes every registered sink's partial batch. Call it after all
// producers have stopped emitting; afterwards the hierarchy's Stats cover
// the complete trace and the sinks may be reused for another run.
func (st *Stream) Close() {
	st.mu.Lock()
	sinks := st.sinks
	st.mu.Unlock()
	for _, sk := range sinks {
		sk.Flush()
	}
}

// Sink is one producer's ring buffer of trace addresses.
type Sink struct {
	st  *Stream
	buf []Addr
	n   int
}

// Emit appends one address, flushing the batch into the hierarchy when the
// buffer fills. The hot path is an array store and a counter increment; the
// Stream lock is only touched once per batch.
func (sk *Sink) Emit(a Addr) {
	sk.buf[sk.n] = a
	sk.n++
	if sk.n == len(sk.buf) {
		sk.st.consume(sk.buf)
		sk.n = 0
	}
}

// Flush pushes any partial batch into the hierarchy.
func (sk *Sink) Flush() {
	if sk.n > 0 {
		sk.st.consume(sk.buf[:sk.n])
		sk.n = 0
	}
}
