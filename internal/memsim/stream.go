package memsim

import (
	"sync"

	"twist/internal/obs"
)

// Streaming trace pipeline.
//
// The original simulation flow materialized a full []Addr trace before
// feeding the hierarchy — O(iterations) memory, which at fig8b/fig9 scales
// dwarfs the caches being modeled. A Stream inverts that: each producer
// (worker goroutine) owns a Sink, a small ring buffer of addresses, and the
// simulator consumes full batches as they fill. Memory is
// O(cache geometry + workers·batch), independent of trace length.
//
// With a single Sink the simulated access order is exactly the emission
// order, so sequential results are bit-identical to the eager flow. With
// several Sinks (one per worker) the Stream becomes the merge mode: batches
// from different workers interleave in completion order, modeling the
// workers sharing one cache — the honest analogue of hardware threads on a
// shared LLC, where the interleaving is likewise timing-dependent.
//
// A Stream fronts any Simulator. Over the sequential Hierarchy the consume
// path runs the LRU walk inline under the stream lock; over a
// ShardedHierarchy the consume path only routes — the walk happens on the
// shard workers, so trace production and simulation pipeline.

// DefaultBatch is the default Sink capacity in addresses (32 KiB per sink).
const DefaultBatch = 4096

// Stream owns a Simulator and serializes batched access to it. A Stream is
// single-shot: Close flushes every sink and seals the stream; to replay
// another trace into the same simulator, build a fresh Stream around it.
type Stream struct {
	mu      sync.Mutex
	sim     Simulator
	batch   int
	sinks   []*Sink
	batches int64
	emitted int64
	closed  bool
	dropped int64 // addresses arriving after Close, counted and discarded
}

// NewStream wraps sim. batch <= 0 means DefaultBatch.
func NewStream(sim Simulator, batch int) *Stream {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Stream{sim: sim, batch: batch}
}

// Sink registers and returns a new producer buffer. Each concurrent
// producer must own its own Sink; a Sink itself is not safe for concurrent
// use.
func (st *Stream) Sink() *Sink {
	sk := &Sink{st: st, buf: make([]Addr, st.batch)}
	st.mu.Lock()
	st.sinks = append(st.sinks, sk)
	st.mu.Unlock()
	return sk
}

// consume replays one full batch into the simulator. After Close the batch
// is dropped and counted instead of silently extending the finished trace.
func (st *Stream) consume(as []Addr) {
	st.mu.Lock()
	if st.closed {
		st.dropped += int64(len(as))
		st.mu.Unlock()
		return
	}
	st.sim.AccessBatch(as)
	st.batches++
	st.emitted += int64(len(as))
	st.mu.Unlock()
}

// Publish emits the stream's pipeline counters into r under
// prefix.{batches,addresses,sinks,dropped}: how many batch flushes the
// simulator consumed, how many addresses flowed through in total, how many
// producer sinks are registered, and how many addresses arrived after Close
// and were discarded (nonzero dropped indicates a producer outliving the
// pipeline shutdown — a bug in the harness driving the stream).
func (st *Stream) Publish(r obs.Recorder, prefix string) {
	if r == nil {
		return
	}
	st.mu.Lock()
	batches, emitted, sinks, dropped := st.batches, st.emitted, int64(len(st.sinks)), st.dropped
	st.mu.Unlock()
	r.Count(prefix+".batches", batches)
	r.Count(prefix+".addresses", emitted)
	r.Count(prefix+".sinks", sinks)
	r.Count(prefix+".dropped", dropped)
}

// Dropped reports how many addresses were flushed or emitted after Close
// and discarded.
func (st *Stream) Dropped() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Close flushes every registered sink's partial batch and seals the stream.
// Call it after all producers have stopped emitting; afterwards the
// simulator's Stats cover the complete trace. Any flush or emission arriving
// after Close is a no-op recorded in the dropped counter — it can no longer
// silently append to a trace that consumers already treated as complete.
// Close is idempotent; a second Close drops nothing new.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	sinks := st.sinks
	st.mu.Unlock()
	for _, sk := range sinks {
		sk.Flush()
	}
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// Sink is one producer's ring buffer of trace addresses.
type Sink struct {
	st  *Stream
	buf []Addr
	n   int
}

// Emit appends one address, flushing the batch into the simulator when the
// buffer fills. The hot path is an array store and a counter increment; the
// Stream lock is only touched once per batch.
func (sk *Sink) Emit(a Addr) {
	sk.buf[sk.n] = a
	sk.n++
	if sk.n == len(sk.buf) {
		sk.st.consume(sk.buf)
		sk.n = 0
	}
}

// EmitBatch appends a whole run of addresses in order, flushing exactly as
// the buffer fills. It is equivalent to calling Emit for each element —
// identical batch boundaries, so simulated stats are bit-identical — but
// costs one copy and one flush test per run instead of per address. The
// traced-run harnesses use it to emit each visit's accesses as one batch
// (workloads.Instance.RunSink).
func (sk *Sink) EmitBatch(as []Addr) {
	for len(as) > 0 {
		n := copy(sk.buf[sk.n:], as)
		sk.n += n
		as = as[n:]
		if sk.n == len(sk.buf) {
			sk.st.consume(sk.buf)
			sk.n = 0
		}
	}
}

// Flush pushes any partial batch into the simulator. Flushing a closed
// Stream discards the batch and counts it as dropped.
func (sk *Sink) Flush() {
	if sk.n > 0 {
		sk.st.consume(sk.buf[:sk.n])
		sk.n = 0
	}
}
