package memsim

import (
	"testing"

	"twist/internal/obs"
)

// TestEvictionCounting pins the eviction counter's semantics on a
// direct-mapped two-set cache: installs into empty ways are misses but not
// evictions; replacing a resident line is both.
func TestEvictionCounting(t *testing.T) {
	h := MustNewHierarchy(CacheConfig{Name: "L1", SizeBytes: 128, LineBytes: 64, Ways: 1})
	line := func(k int) Addr { return Addr(k * 64) }

	h.Access(line(0)) // cold install, set 0
	h.Access(line(1)) // cold install, set 1
	st := h.Stats()[0]
	if st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("cold installs: misses=%d evictions=%d, want 2/0", st.Misses, st.Evictions)
	}

	h.Access(line(2)) // set 0, evicts line 0
	h.Access(line(0)) // set 0, evicts line 2
	h.Access(line(0)) // hit
	st = h.Stats()[0]
	if st.Accesses != 5 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("got accesses=%d misses=%d evictions=%d, want 5/4/2", st.Accesses, st.Misses, st.Evictions)
	}

	h.ResetStats()
	if st = h.Stats()[0]; st.Evictions != 0 {
		t.Fatalf("ResetStats left evictions=%d", st.Evictions)
	}
	h.Access(line(1)) // still resident: contents survive ResetStats
	if st = h.Stats()[0]; st.Misses != 0 {
		t.Fatalf("line 1 evicted by ResetStats: %+v", st)
	}
	h.Reset()
	h.Access(line(1))
	if st = h.Stats()[0]; st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("Reset did not clear contents: %+v", st)
	}
}

func TestHierarchyAndStreamPublish(t *testing.T) {
	h := MustNewHierarchy(
		CacheConfig{Name: "L1", SizeBytes: 128, LineBytes: 64, Ways: 1},
		CacheConfig{Name: "L2", SizeBytes: 256, LineBytes: 64, Ways: 1},
	)
	st := NewStream(h, 4)
	sk := st.Sink()
	for k := 0; k < 10; k++ {
		sk.Emit(Addr(k * 64))
	}
	st.Close()

	m := obs.NewMemory()
	h.Publish(m, "memsim")
	st.Publish(m, "memsim.stream")
	if got := m.Counter("memsim.L1.accesses"); got != 10 {
		t.Fatalf("L1 accesses counter = %d, want 10", got)
	}
	stats := h.Stats()[0]
	if got := m.Counter("memsim.L1.hits"); got != stats.Accesses-stats.Misses {
		t.Fatalf("L1 hits counter = %d, want %d", got, stats.Accesses-stats.Misses)
	}
	if got := m.Counter("memsim.L1.evictions"); got != stats.Evictions {
		t.Fatalf("L1 evictions counter = %d, want %d", got, stats.Evictions)
	}
	// 10 addresses at batch 4 = 2 full batches + 1 partial flush.
	if got := m.Counter("memsim.stream.batches"); got != 3 {
		t.Fatalf("stream batches = %d, want 3", got)
	}
	if got := m.Counter("memsim.stream.addresses"); got != 10 {
		t.Fatalf("stream addresses = %d, want 10", got)
	}
	// Publishing into a nil recorder must be a no-op, not a panic.
	h.Publish(nil, "x")
	st.Publish(nil, "x")
}
