package memsim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Lock-free SPSC batch queues for the sharded simulator (sharded.go).
//
// Each shard owns two rings: the router pushes full address batches into the
// shard's work ring, and the shard worker pushes spent buffers back through a
// recycle ring so the steady state allocates nothing. Both directions are
// strictly single-producer/single-consumer, which is what makes the
// wait-free fast path possible: each side owns one index, publishes it with
// a release store, and observes the other side's index with an acquire load
// (Go's sync/atomic provides the ordering). No mutex is ever taken on the
// address hot path.

// spscRing is a bounded single-producer single-consumer ring of address
// batches. The producer alone calls push/tryPush and the consumer alone
// calls pop/tryPop; head is advanced only by the consumer, tail only by the
// producer. The pads keep the two indices on separate cache lines so the
// sides do not false-share.
type spscRing struct {
	slots []([]Addr)
	mask  uint64
	_     [56]byte
	head  atomic.Uint64 // next slot to pop
	_     [56]byte
	tail  atomic.Uint64 // next slot to push
	_     [56]byte
	done  atomic.Bool
}

// newSPSC returns a ring with capacity rounded up to a power of two.
func newSPSC(capacity int) *spscRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &spscRing{slots: make([][]Addr, c), mask: uint64(c - 1)}
}

// close marks the ring finished. The producer calls it after its final push;
// a blocked pop then drains the remaining slots and returns false.
func (q *spscRing) close() { q.done.Store(true) }

// push enqueues b, blocking while the ring is full. It reports false if the
// ring was closed instead.
func (q *spscRing) push(b []Addr) bool {
	tail := q.tail.Load()
	var w backoff
	for tail-q.head.Load() == uint64(len(q.slots)) {
		if q.done.Load() {
			return false
		}
		w.wait()
	}
	q.slots[tail&q.mask] = b
	q.tail.Store(tail + 1)
	return true
}

// tryPush enqueues b if the ring has room, reporting whether it did.
func (q *spscRing) tryPush(b []Addr) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() == uint64(len(q.slots)) || q.done.Load() {
		return false
	}
	q.slots[tail&q.mask] = b
	q.tail.Store(tail + 1)
	return true
}

// pop dequeues the next batch, blocking while the ring is empty. It reports
// false once the ring is closed and fully drained.
func (q *spscRing) pop() ([]Addr, bool) {
	head := q.head.Load()
	var w backoff
	for head == q.tail.Load() {
		if q.done.Load() && head == q.tail.Load() {
			return nil, false
		}
		w.wait()
	}
	b := q.slots[head&q.mask]
	q.slots[head&q.mask] = nil
	q.head.Store(head + 1)
	return b, true
}

// tryPop dequeues the next batch if one is ready, reporting whether it did.
func (q *spscRing) tryPop() ([]Addr, bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return nil, false
	}
	b := q.slots[head&q.mask]
	q.slots[head&q.mask] = nil
	q.head.Store(head + 1)
	return b, true
}

// backoff escalates a wait from scheduler yields to short sleeps, so a side
// blocked on a full or empty ring stops burning its core while staying
// responsive in the common case where the other side is only a batch away.
type backoff int

func (w *backoff) wait() {
	*w++
	if *w < 64 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}
