// Package memsim provides the trace-driven memory-hierarchy analysis that
// stands in for the paper's hardware measurements (DESIGN.md §1): an exact
// LRU stack/reuse-distance analyzer (for Fig 5) and a multi-level
// set-associative cache simulator (for Fig 8b and Fig 9b).
//
// Both consume abstract address traces. The schedules under study emit one
// address per tree-node access, produced by a Mapper from the arena node
// index, so the simulated behaviour is a pure function of the schedule — the
// quantity the paper's transformations change.
//
// # Streaming traces
//
// Long traces are fed through the Stream/Sink pipeline rather than
// materialized: each producer goroutine owns one Sink (a fixed ring buffer
// whose Emit is an array store — a Sink is NOT safe for concurrent use) and
// the Stream serializes full batches into its Hierarchy, so memory stays
// O(cache geometry + sinks·batch) regardless of trace length. The ordering
// contract is the foundation of the regression gate (DESIGN.md §4.7): with
// exactly one Sink the simulated access order is the emission order and the
// resulting LevelStats are bit-identical to calling Hierarchy.Access
// directly; with several Sinks batches interleave in completion order
// (merge mode), which simulates every access exactly once but is not
// deterministic. Call Stream.Close after all producers stop to flush
// partial batches; only then do the Hierarchy's Stats cover the full trace.
//
// Telemetry: Hierarchy.Publish and Stream.Publish export per-level
// hit/miss/eviction counters and pipeline counters into an obs.Recorder.
package memsim

// Addr is an abstract memory address (byte-granular).
type Addr uint64

// Infinite is the reuse distance reported for the first access to an address
// (the paper's ∞ entries in §3.2).
const Infinite = -1

// ReuseAnalyzer computes exact LRU stack distances ("reuse distances",
// Mattson et al. [24]) online: for each access, the number of *distinct*
// other addresses touched since the previous access to the same address.
//
// The implementation is the classic Bennett–Kruskal scheme: each address
// remembers the time of its last access; a Fenwick tree over time holds a 1
// at the most recent access position of every address; the stack distance of
// an access at time t to an address last touched at time t0 is the number of
// ones in (t0, t).
type ReuseAnalyzer struct {
	last map[Addr]int
	bit  []int // Fenwick tree, 1-indexed over access times
	time int
}

// NewReuseAnalyzer returns an analyzer with no history.
func NewReuseAnalyzer() *ReuseAnalyzer {
	return &ReuseAnalyzer{last: make(map[Addr]int), bit: make([]int, 1)}
}

func (r *ReuseAnalyzer) bitAdd(i, v int) {
	for ; i < len(r.bit); i += i & (-i) {
		r.bit[i] += v
	}
}

func (r *ReuseAnalyzer) bitSum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += r.bit[i]
	}
	return s
}

// Access records an access to a and returns its reuse distance, or Infinite
// if a has never been accessed before.
func (r *ReuseAnalyzer) Access(a Addr) int {
	r.time++
	t := r.time
	// Grow the Fenwick tree by exactly one slot. A new node at index t
	// covers the range (t-lowbit(t), t]; its initial value is the sum of the
	// existing marks in that range (the mark at t itself is added below).
	lb := t & (-t)
	r.bit = append(r.bit, r.bitSum(t-1)-r.bitSum(t-lb))
	d := Infinite
	if t0, ok := r.last[a]; ok {
		// Ones strictly between t0 and t: distinct addresses since t0.
		d = r.bitSum(t-1) - r.bitSum(t0)
		r.bitAdd(t0, -1)
	}
	r.last[a] = t
	r.bitAdd(t, 1)
	return d
}

// Distinct reports how many distinct addresses have been accessed so far.
func (r *ReuseAnalyzer) Distinct() int { return len(r.last) }

// Histogram aggregates reuse distances into the CDF the paper plots in Fig 5:
// "percentage of accesses with reuse distance less than r".
type Histogram struct {
	counts   map[int]int64
	total    int64
	infinite int64
	max      int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add records one reuse distance (Infinite for a cold access).
func (h *Histogram) Add(d int) {
	h.total++
	if d == Infinite {
		h.infinite++
		return
	}
	h.counts[d]++
	if d > h.max {
		h.max = d
	}
}

// Total returns the number of recorded accesses.
func (h *Histogram) Total() int64 { return h.total }

// InfiniteCount returns the number of cold (first-touch) accesses.
func (h *Histogram) InfiniteCount() int64 { return h.infinite }

// CDF returns the fraction of all accesses whose reuse distance is strictly
// less than r. Cold accesses never count (their distance is infinite).
func (h *Histogram) CDF(r int) float64 {
	if h.total == 0 {
		return 0
	}
	var n int64
	for d, c := range h.counts {
		if d < r {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Series evaluates the CDF at each of rs and returns the fractions; rs is
// typically a log-spaced grid matching the paper's log-scale x axis.
func (h *Histogram) Series(rs []int) []float64 {
	out := make([]float64, len(rs))
	for k, r := range rs {
		out[k] = h.CDF(r)
	}
	return out
}

// Max returns the largest finite distance recorded (0 if none).
func (h *Histogram) Max() int { return h.max }

// Mean returns the mean finite reuse distance (0 if none recorded).
func (h *Histogram) Mean() float64 {
	var sum, n int64
	for d, c := range h.counts {
		sum += int64(d) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
