package memsim

// PredictMisses estimates, from a reuse-distance histogram over *line*
// addresses, the number of misses a fully-associative LRU cache of the given
// capacity (in lines) would incur: an access misses iff its stack distance
// is at least the capacity, plus one compulsory miss per cold access
// (Mattson et al. [24] — the "one-pass, all cache sizes" property of stack
// distances, and the analytical tool behind the paper's §3.2 reasoning that
// distances below the cache size are hits and above are misses).
func PredictMisses(h *Histogram, capacityLines int) int64 {
	misses := h.InfiniteCount()
	for d, c := range h.counts {
		if d >= capacityLines {
			misses += c
		}
	}
	return misses
}

// PredictMissRatio is PredictMisses normalized by the total access count
// (0 for an empty histogram).
func PredictMissRatio(h *Histogram, capacityLines int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(PredictMisses(h, capacityLines)) / float64(h.total)
}

// MissCurve evaluates the predicted miss ratio at each capacity, yielding
// the classic miss-ratio curve of the trace. Capacities are in lines.
func MissCurve(h *Histogram, capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for k, c := range capacities {
		out[k] = PredictMissRatio(h, c)
	}
	return out
}
