package memsim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// threeLevels is a small validated geometry whose smallest level has 8 sets,
// so up to 8 shards carry distinct routing keys.
func threeLevels() []CacheConfig {
	return []CacheConfig{
		{Name: "L1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2},  // 8 sets
		{Name: "L2", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4},  // 16 sets
		{Name: "L3", SizeBytes: 16 << 10, LineBytes: 64, Ways: 8}, // 32 sets
	}
}

func randomTrace(n int, spread int, seed int64) []Addr {
	rng := rand.New(rand.NewSource(seed))
	trace := make([]Addr, n)
	for k := range trace {
		// Unaligned byte addresses: routing must key on the line, not the
		// raw address.
		trace[k] = Addr(rng.Intn(spread)*64 + rng.Intn(64))
	}
	return trace
}

// The tentpole invariant: the sharded simulator's merged Stats are
// bit-identical to the sequential simulator's, for every worker count —
// including W greater than the routable set count (clamped) and batch sizes
// that leave partial staged batches at drain time.
func TestShardedMatchesSequential(t *testing.T) {
	t.Parallel()
	trace := randomTrace(200_000, 1<<12, 7)
	seq := MustNew(Config{Levels: threeLevels()})
	seq.AccessBatch(trace)
	want := seq.Stats()
	for _, workers := range []int{1, 2, 3, 4, 8, 64} {
		for _, batch := range []int{1, 37, 512} {
			sim, err := New(Config{Levels: threeLevels(), SimWorkers: workers, Batch: batch})
			if err != nil {
				t.Fatal(err)
			}
			sim.AccessBatch(trace)
			got := sim.Stats()
			sim.Close()
			for li := range want {
				if got[li] != want[li] {
					t.Fatalf("W=%d batch=%d level %s: %+v, want %+v",
						workers, batch, want[li].Name, got[li], want[li])
				}
			}
		}
	}
}

// Warmup/measure protocol: ResetStats must drain in-flight batches first,
// and the steady-state stats must still match the sequential engine's.
func TestShardedResetStatsMatchesSequential(t *testing.T) {
	t.Parallel()
	trace := randomTrace(50_000, 1<<10, 11)
	run := func(sim Simulator) []LevelStats {
		sim.AccessBatch(trace)
		sim.ResetStats()
		sim.AccessBatch(trace)
		st := sim.Stats()
		sim.Close()
		return st
	}
	want := run(MustNew(Config{Levels: threeLevels()}))
	got := run(MustNew(Config{Levels: threeLevels(), SimWorkers: 4, Batch: 64}))
	for li := range want {
		if got[li] != want[li] {
			t.Fatalf("level %s: %+v, want %+v", want[li].Name, got[li], want[li])
		}
	}
}

// The worker clamp: requesting more shards than the smallest level has sets
// must cap at the routable key count, never spawn idle mis-routed shards.
func TestShardedWorkerClamp(t *testing.T) {
	t.Parallel()
	sh, err := NewSharded(threeLevels(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if got := sh.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8 (L1 set count)", got)
	}
	if _, err := NewSharded(threeLevels(), 0, 0); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := NewSharded(nil, 2, 0); err == nil {
		t.Fatal("empty geometry accepted")
	}
}

// Every address must land on the shard its smallest-level set bits name, so
// any two addresses sharing any level's set share a shard.
func TestShardRoutingColocatesSets(t *testing.T) {
	t.Parallel()
	sh, err := NewSharded(threeLevels(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10_000; trial++ {
		a := Addr(rng.Uint64() >> 16)
		b := a + Addr(8*1024*(1+rng.Intn(64))) // same low set bits, different tag
		ka, kb := sh.shardOf(a), sh.shardOf(b)
		if ka != kb {
			t.Fatalf("addresses %#x and %#x share all set indices but map to shards %d and %d", a, b, ka, kb)
		}
		if ka < 0 || ka >= sh.Shards() {
			t.Fatalf("shard %d out of range", ka)
		}
	}
}

// Close is idempotent and Stats stay readable afterwards.
func TestShardedCloseIdempotent(t *testing.T) {
	t.Parallel()
	sim := MustNew(Config{Levels: threeLevels(), SimWorkers: 4})
	sim.AccessBatch(randomTrace(10_000, 1<<10, 5))
	want := sim.Stats()
	sim.Close()
	sim.Close()
	got := sim.Stats()
	for li := range want {
		if got[li] != want[li] {
			t.Fatalf("stats changed across Close: %+v, want %+v", got[li], want[li])
		}
	}
}

// A Stream over the sharded engine with concurrent producer sinks must
// count every emitted address exactly once (merge mode), and the run must
// be race-clean — this is the -race coverage of the router called out in
// the CI satellite.
func TestStreamOverShardedCountsAllAccesses(t *testing.T) {
	t.Parallel()
	sim := MustNew(Config{Levels: threeLevels(), SimWorkers: 4, Batch: 128})
	defer sim.Close()
	st := NewStream(sim, 64)
	const producers, each = 8, 10_000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		sk := st.Sink()
		wg.Add(1)
		go func(p int, sk *Sink) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				sk.Emit(Addr((p*each + k) * 64))
			}
		}(p, sk)
	}
	wg.Wait()
	st.Close()
	if got := sim.Stats()[0].Accesses; got != producers*each {
		t.Fatalf("L1 saw %d accesses, want %d", got, producers*each)
	}
}

// FuzzShardRouting drives the set-index router with arbitrary address
// material and checks the bit-identical contract differentially: whatever
// the trace, the sharded merge must equal the sequential walk.
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 254, 17}, uint8(4))
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1}, uint8(8))
	f.Fuzz(func(t *testing.T, raw []byte, w uint8) {
		workers := int(w)%9 + 1
		if len(raw) > 1<<14 {
			raw = raw[:1<<14]
		}
		trace := make([]Addr, 0, len(raw)/2)
		for k := 0; k+1 < len(raw); k += 2 {
			// Two fuzz bytes pick a line and an offset within it.
			trace = append(trace, Addr(int(raw[k])*64+int(raw[k+1])%64))
		}
		levels := []CacheConfig{
			{Name: "L1", SizeBytes: 512, LineBytes: 64, Ways: 2}, // 4 sets
			{Name: "L2", SizeBytes: 2 << 10, LineBytes: 64, Ways: 4},
		}
		seq := MustNew(Config{Levels: levels})
		seq.AccessBatch(trace)
		want := seq.Stats()
		sim := MustNew(Config{Levels: levels, SimWorkers: workers, Batch: 16})
		sim.AccessBatch(trace)
		got := sim.Stats()
		sim.Close()
		for li := range want {
			if got[li] != want[li] {
				t.Fatalf("W=%d level %s: %+v, want %+v", workers, want[li].Name, got[li], want[li])
			}
		}
	})
}

// --- SPSC ring -------------------------------------------------------------

// One producer, one consumer: every batch arrives exactly once, in order.
func TestSPSCOrderPreserved(t *testing.T) {
	t.Parallel()
	q := newSPSC(8)
	const n = 10_000
	go func() {
		for k := 0; k < n; k++ {
			q.push([]Addr{Addr(k)})
		}
		q.close()
	}()
	for k := 0; k < n; k++ {
		b, ok := q.pop()
		if !ok {
			t.Fatalf("ring closed after %d of %d batches", k, n)
		}
		if len(b) != 1 || b[0] != Addr(k) {
			t.Fatalf("batch %d out of order: %v", k, b)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded past close")
	}
}

func TestSPSCTryOps(t *testing.T) {
	t.Parallel()
	q := newSPSC(2)
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop on empty ring succeeded")
	}
	if !q.tryPush([]Addr{1}) || !q.tryPush([]Addr{2}) {
		t.Fatal("tryPush failed with room available")
	}
	if q.tryPush([]Addr{3}) {
		t.Fatal("tryPush succeeded on a full ring")
	}
	b, ok := q.tryPop()
	if !ok || b[0] != 1 {
		t.Fatalf("tryPop = %v, %v", b, ok)
	}
}

// BenchmarkShardedAccess compares the sequential walk against the sharded
// pipeline at several worker counts over one reused trace; each iteration
// ends with a drain so the timed region always covers the full LRU work.
func BenchmarkShardedAccess(b *testing.B) {
	trace := randomTrace(1<<16, 1<<22, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("w%d", workers)
		if workers <= 1 {
			name = "seq"
		}
		b.Run(name, func(b *testing.B) {
			sim := MustNew(Config{Levels: DefaultLevels(), SimWorkers: workers})
			defer sim.Close()
			b.SetBytes(int64(len(trace) * 8))
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				sim.AccessBatch(trace)
				sim.Stats()
			}
		})
	}
}
