package memsim

import (
	"fmt"
	"strconv"
	"strings"

	"twist/internal/obs"
)

// The unified construction path. Earlier revisions grew four entry points —
// NewHierarchy, MustNewHierarchy, Default, and NewStream(h, batch) — with
// the parallel simulator about to add more. New(Config) replaces them: one
// config, one constructor, one Simulator interface that both the sequential
// Hierarchy and the set-partitioned ShardedHierarchy satisfy, so every
// consumer (experiments, workloads, nestbench) is written against the
// interface and picks sequential or parallel simulation with a single field.

// Config describes a simulator: the cache levels (closest first) and how to
// run them.
type Config struct {
	// Levels are the cache levels, L1 first. Required.
	Levels []CacheConfig

	// SimWorkers selects the engine: <= 1 builds the sequential Hierarchy,
	// > 1 builds a ShardedHierarchy with that many set-partitioned shard
	// workers (clamped to the set count of the smallest level; see
	// NewSharded). Both engines produce bit-identical Stats for the same
	// trace (DESIGN.md §4.8).
	SimWorkers int

	// Batch is the shard dispatch granularity in addresses for the parallel
	// engine; <= 0 means DefaultBatch. The sequential engine ignores it.
	Batch int
}

// Simulator is the trace-driven cache simulation behind every miss-rate
// figure: feed it line-aligned addresses, read per-level statistics.
// Hierarchy implements it sequentially; ShardedHierarchy implements it with
// set-partitioned parallel shards and bit-identical merged Stats. The
// producer side (Access/AccessBatch and the inspection methods) must be
// confined to one goroutine at a time — Stream serializes concurrent trace
// producers on top of either engine.
type Simulator interface {
	// Access simulates one load of the byte at a.
	Access(a Addr)
	// AccessBatch simulates the loads of as in order.
	AccessBatch(as []Addr)
	// Stats returns the per-level statistics, L1 first, complete with
	// respect to every access already submitted.
	Stats() []LevelStats
	// Reset clears contents and statistics, keeping the geometry.
	Reset()
	// ResetStats clears the counters but keeps cache contents (the
	// warmup/measure protocol).
	ResetStats()
	// Publish emits the simulator's counters into r under prefix
	// (per-level merged counts; the parallel engine adds per-shard views).
	Publish(r obs.Recorder, prefix string)
	// Close releases any background resources (shard workers). The
	// sequential engine's Close is a no-op; Stats remain readable after.
	Close()
}

// New builds the simulator described by cfg: a *Hierarchy when
// cfg.SimWorkers <= 1, a *ShardedHierarchy otherwise.
func New(cfg Config) (Simulator, error) {
	if cfg.SimWorkers > 1 {
		return NewSharded(cfg.Levels, cfg.SimWorkers, cfg.Batch)
	}
	return NewHierarchy(cfg.Levels...)
}

// MustNew is New that panics on error, for geometries known valid at
// compile time.
func MustNew(cfg Config) Simulator {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// PaperLevels returns the paper's Xeon hierarchy (§6): 32K/8-way L1,
// 256K/8-way L2, 20M/20-way LLC (the Xeon E5's 20 MiB LLC is 20-way, which
// is also what keeps the set count a power of two), 64-byte lines — the
// geometry spelled "32K/64:8,256K/64:8,20M/64:20" in ParseGeometry form.
func PaperLevels() []CacheConfig {
	return []CacheConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		{Name: "L3", SizeBytes: 20 << 20, LineBytes: 64, Ways: 20},
	}
}

// ParseGeometry parses a compact hierarchy description into level configs
// named L1..Ln, closest level first. The grammar is comma-separated levels,
// each SIZE/LINE:WAYS, with sizes taking optional binary suffixes K, M, or
// G — "32K/64:8,256K/64:8,20M/64:16" is the paper's machine. The configs
// are validated as a hierarchy (power-of-two geometry, uniform line size).
func ParseGeometry(s string) ([]CacheConfig, error) {
	parts := strings.Split(s, ",")
	cfgs := make([]CacheConfig, 0, len(parts))
	for k, part := range parts {
		part = strings.TrimSpace(part)
		sizeLine, ways, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("memsim: geometry level %q: want SIZE/LINE:WAYS", part)
		}
		size, line, ok := strings.Cut(sizeLine, "/")
		if !ok {
			return nil, fmt.Errorf("memsim: geometry level %q: want SIZE/LINE:WAYS", part)
		}
		sz, err := parseSize(size)
		if err != nil {
			return nil, fmt.Errorf("memsim: geometry level %q: size: %v", part, err)
		}
		ln, err := parseSize(line)
		if err != nil {
			return nil, fmt.Errorf("memsim: geometry level %q: line: %v", part, err)
		}
		w, err := strconv.Atoi(strings.TrimSpace(ways))
		if err != nil {
			return nil, fmt.Errorf("memsim: geometry level %q: ways: %v", part, err)
		}
		cfgs = append(cfgs, CacheConfig{
			Name:      fmt.Sprintf("L%d", k+1),
			SizeBytes: sz,
			LineBytes: ln,
			Ways:      w,
		})
	}
	// Borrow the hierarchy constructor's validation so a parsed geometry is
	// always buildable.
	if _, err := NewHierarchy(cfgs...); err != nil {
		return nil, err
	}
	return cfgs, nil
}

// FormatGeometry renders levels in ParseGeometry's grammar, using the
// largest binary suffix that divides each size. It round-trips with
// ParseGeometry; nestbench records it in the BENCH report params so a
// baseline pins the simulated geometry.
func FormatGeometry(cfgs []CacheConfig) string {
	var b strings.Builder
	for k, c := range cfgs {
		if k > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s/%s:%d", formatSize(c.SizeBytes), formatSize(c.LineBytes), c.Ways)
	}
	return b.String()
}

// parseSize reads a positive byte count with an optional binary K/M/G
// suffix.
func parseSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	mult := 1
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'K', 'k':
			mult, s = 1<<10, s[:n-1]
		case 'M', 'm':
			mult, s = 1<<20, s[:n-1]
		case 'G', 'g':
			mult, s = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("size %d not positive", v*mult)
	}
	return v * mult, nil
}

// formatSize renders a byte count with the largest binary suffix that
// divides it exactly.
func formatSize(v int) string {
	switch {
	case v >= 1<<30 && v%(1<<30) == 0:
		return strconv.Itoa(v>>30) + "G"
	case v >= 1<<20 && v%(1<<20) == 0:
		return strconv.Itoa(v>>20) + "M"
	case v >= 1<<10 && v%(1<<10) == 0:
		return strconv.Itoa(v>>10) + "K"
	}
	return strconv.Itoa(v)
}
