package memsim

import (
	"fmt"
	"math/bits"

	"twist/internal/obs"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
}

func (c CacheConfig) validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("memsim: %s: sizes and ways must be positive", c.Name)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("memsim: %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("memsim: %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets == 0 {
		return fmt.Errorf("memsim: %s: fewer lines (%d) than ways (%d)", c.Name, lines, c.Ways)
	}
	if sets*c.Ways != lines {
		return fmt.Errorf("memsim: %s: %d lines not divisible into %d ways", c.Name, lines, c.Ways)
	}
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("memsim: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// LevelStats is the per-level outcome of a simulation. Accesses - Misses is
// the hit count; Evictions counts misses that displaced a resident line
// (capacity/conflict replacement), so Misses - Evictions is the number of
// cold installs into empty ways.
type LevelStats struct {
	Name      string
	Accesses  int64
	Misses    int64
	Evictions int64
}

// MissRate returns Misses/Accesses (0 for an untouched level). This is the
// quantity plotted in Fig 8(b) and Fig 9(b): the local miss rate of each
// level over the accesses that reach it.
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// level is one set-associative true-LRU cache level.
type level struct {
	name      string
	lineShift uint
	setMask   uint64
	ways      int
	// tags[set*ways : (set+1)*ways] ordered most- to least-recently used;
	// zero means empty (tag 0 is reserved by biasing real tags by +1).
	tags      []uint64
	accesses  int64
	misses    int64
	evictions int64
}

func newLevel(c CacheConfig) *level {
	sets := c.SizeBytes / c.LineBytes / c.Ways
	return &level{
		name:      c.Name,
		lineShift: uint(bits.TrailingZeros(uint(c.LineBytes))),
		setMask:   uint64(sets - 1),
		ways:      c.Ways,
		tags:      make([]uint64, sets*c.Ways),
	}
}

// access probes the level with a line-aligned address and reports a hit. On
// a miss the line is installed (allocate-on-miss), evicting the LRU way.
func (l *level) access(line uint64) bool {
	l.accesses++
	set := int(line & l.setMask)
	tag := line + 1 // bias so 0 marks an empty way
	ws := l.tags[set*l.ways : (set+1)*l.ways]
	for k, t := range ws {
		if t == tag {
			copy(ws[1:k+1], ws[:k]) // move to MRU position
			ws[0] = tag
			return true
		}
	}
	l.misses++
	if ws[l.ways-1] != 0 {
		l.evictions++
	}
	copy(ws[1:], ws[:l.ways-1])
	ws[0] = tag
	return false
}

// Hierarchy is a multi-level cache: an access probes L1 first and descends
// on miss, installing the line at every level it missed in (a simple
// mostly-inclusive model, adequate for the miss-rate *shape* comparisons the
// paper makes — see DESIGN.md §1).
type Hierarchy struct {
	levels []*level
}

// NewHierarchy builds a hierarchy from the given level configs, ordered from
// closest (L1) to farthest (LLC).
//
// Deprecated: construct simulators through New(Config{Levels: cfgs}); this
// remains as the sequential engine behind it and for existing callers.
func NewHierarchy(cfgs ...CacheConfig) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("memsim: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	line := cfgs[0].LineBytes
	for _, c := range cfgs {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if c.LineBytes != line {
			return nil, fmt.Errorf("memsim: mixed line sizes %d and %d", line, c.LineBytes)
		}
		h.levels = append(h.levels, newLevel(c))
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy that panics on error.
//
// Deprecated: use MustNew(Config{Levels: cfgs}) instead.
func MustNewHierarchy(cfgs ...CacheConfig) *Hierarchy {
	h, err := NewHierarchy(cfgs...)
	if err != nil {
		panic(err)
	}
	return h
}

// Default returns the scaled three-level hierarchy used throughout the
// evaluation: 32K/8-way L1 and 256K/8-way L2 matching the paper's Xeon, and
// a 2M/16-way LLC scaled down from the paper's 20M so that the paper's
// "working set exceeds the LLC" regime is reached at laptop-scale inputs
// (the substitution documented in DESIGN.md §1).
//
// Deprecated: use MustNew(Config{Levels: DefaultLevels()}) — or pass
// SimWorkers for the parallel engine over the same geometry.
func Default() *Hierarchy {
	return MustNewHierarchy(DefaultLevels()...)
}

// DefaultLevels returns the scaled three-level geometry behind Default, in
// Config form.
func DefaultLevels() []CacheConfig {
	return []CacheConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		{Name: "L3", SizeBytes: 2 << 20, LineBytes: 64, Ways: 16},
	}
}

// Access simulates one load of the byte at a.
func (h *Hierarchy) Access(a Addr) {
	line := uint64(a) >> h.levels[0].lineShift
	for _, l := range h.levels {
		if l.access(line) {
			return
		}
	}
}

// AccessBatch simulates the loads of as in order. It is the consumption
// side of the streaming trace pipeline (see Stream): batching amortizes the
// Stream's lock over thousands of accesses.
func (h *Hierarchy) AccessBatch(as []Addr) {
	for _, a := range as {
		h.Access(a)
	}
}

// Stats returns the per-level statistics, L1 first.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for k, l := range h.levels {
		out[k] = LevelStats{Name: l.name, Accesses: l.accesses, Misses: l.misses, Evictions: l.evictions}
	}
	return out
}

// Reset clears contents and statistics, keeping the geometry.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		for k := range l.tags {
			l.tags[k] = 0
		}
		l.accesses, l.misses, l.evictions = 0, 0, 0
	}
}

// ResetStats clears the counters but keeps cache contents. Run a warmup pass
// of a trace, call ResetStats, and replay to measure steady-state miss rates
// without cold-start compulsory misses — the regime hardware counters see on
// a long-running program.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.levels {
		l.accesses, l.misses, l.evictions = 0, 0, 0
	}
}

// Publish emits the hierarchy's per-level counters into r under
// prefix.<level>.{accesses,hits,misses,evictions} — the memsim half of the
// observability layer (internal/obs). Call it after a simulation completes;
// like Stats, it reads the counters without clearing them.
func (h *Hierarchy) Publish(r obs.Recorder, prefix string) {
	if r == nil {
		return
	}
	publishLevels(r, prefix, h.Stats())
}

// publishLevels emits per-level stats under prefix.<level>.*: the shared
// wire format of both simulator engines.
func publishLevels(r obs.Recorder, prefix string, stats []LevelStats) {
	for _, s := range stats {
		p := prefix + "." + s.Name
		r.Count(p+".accesses", s.Accesses)
		r.Count(p+".hits", s.Accesses-s.Misses)
		r.Count(p+".misses", s.Misses)
		r.Count(p+".evictions", s.Evictions)
	}
}

// Close implements Simulator; the sequential engine has no background
// resources, so it is a no-op.
func (h *Hierarchy) Close() {}

// Mapper assigns addresses to arena tree nodes: node k of the tree lives at
// Base + k*Stride. With Stride 64 (one line per node) the simulation is the
// pure temporal-locality study of the paper's §3.2, where work(o, i) touches
// exactly node o and node i; smaller strides add spatial sharing between
// preorder-adjacent nodes (an ablation; see DESIGN.md §4.5).
type Mapper struct {
	Base   Addr
	Stride Addr
}

// Addr returns the address of node id.
func (m Mapper) Addr(id int32) Addr { return m.Base + Addr(id)*m.Stride }

// DisjointMappers returns n mappers with address ranges spaced far apart, so
// distinct trees never alias (each tree gets a 1 GiB region).
func DisjointMappers(n int, stride Addr) []Mapper {
	out := make([]Mapper, n)
	for k := range out {
		out[k] = Mapper{Base: Addr(k+1) << 30, Stride: stride}
	}
	return out
}

// Remapper is a Mapper composed with an old→new storage-slot permutation:
// node id lives at Base + Perm[id]*Stride (Base + id*Stride when Perm is
// nil). It is the address-generation form of an arena repacking pass
// (internal/layout): the traversal keeps emitting node IDs, and the
// Remapper realizes whatever packing the layout chose — which is equivalent
// to physically rebuilding the arena, because simulated addresses are the
// only observable the cache model has (DESIGN.md §4.12).
type Remapper struct {
	Base   Addr
	Stride Addr
	Perm   []int32 // old→new slot table; nil = identity
}

// Addr returns the address of node id under the permuted packing.
func (r Remapper) Addr(id int32) Addr {
	if r.Perm != nil {
		id = r.Perm[id]
	}
	return r.Base + Addr(id)*r.Stride
}
