package memsim

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func smallHierarchy() *Hierarchy {
	return MustNewHierarchy(
		CacheConfig{Name: "L1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2},
		CacheConfig{Name: "L2", SizeBytes: 8 << 10, LineBytes: 64, Ways: 4},
	)
}

// A single-sink stream simulates the exact access order, so its stats are
// bit-identical to feeding the hierarchy directly.
func TestStreamMatchesDirectAccess(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	trace := make([]Addr, 100_000)
	for k := range trace {
		trace[k] = Addr(rng.Intn(1<<14) * 64)
	}
	direct := smallHierarchy()
	for _, a := range trace {
		direct.Access(a)
	}
	for _, batch := range []int{0, 1, 7, 4096} {
		streamed := smallHierarchy()
		st := NewStream(streamed, batch)
		sk := st.Sink()
		for _, a := range trace {
			sk.Emit(a)
		}
		st.Close()
		for k, want := range direct.Stats() {
			if got := streamed.Stats()[k]; got != want {
				t.Fatalf("batch %d, level %s: %+v, want %+v", batch, want.Name, got, want)
			}
		}
	}
}

// Merge mode: concurrent sinks interleave batches nondeterministically, but
// no access is lost — every level's access count matches the total emitted.
func TestStreamMergeCountsAllAccesses(t *testing.T) {
	t.Parallel()
	h := smallHierarchy()
	st := NewStream(h, 64)
	const producers, each = 8, 10_000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		sk := st.Sink()
		wg.Add(1)
		go func(p int, sk *Sink) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				sk.Emit(Addr((p*each + k) * 64))
			}
		}(p, sk)
	}
	wg.Wait()
	st.Close()
	if got := h.Stats()[0].Accesses; got != producers*each {
		t.Fatalf("L1 saw %d accesses, want %d", got, producers*each)
	}
}

// Regression test for the Close/Flush ordering bug: a Flush (or Emit batch)
// arriving after Close used to silently append to a trace that consumers
// had already treated as complete. Now it is a no-op with a recorded drop
// count.
func TestStreamFlushAfterCloseDropsAndCounts(t *testing.T) {
	t.Parallel()
	h := smallHierarchy()
	st := NewStream(h, 8)
	sk := st.Sink()
	for k := 0; k < 10; k++ {
		sk.Emit(Addr(k * 64))
	}
	st.Close()
	want := h.Stats()[0]
	if want.Accesses != 10 {
		t.Fatalf("pre-close accesses = %d, want 10", want.Accesses)
	}

	// A straggling producer keeps emitting after the pipeline shut down.
	for k := 0; k < 20; k++ {
		sk.Emit(Addr(k * 64))
	}
	sk.Flush()
	if got := h.Stats()[0]; got != want {
		t.Fatalf("post-close emissions reached the simulator: %+v, want %+v", got, want)
	}
	if got := st.Dropped(); got != 20 {
		t.Fatalf("Dropped() = %d, want 20", got)
	}

	// Close is idempotent and drops nothing new.
	st.Close()
	if got := st.Dropped(); got != 20 {
		t.Fatalf("Dropped() after second Close = %d, want 20", got)
	}

	// The drop counter reaches the observability layer.
	rec := recorderMap{}
	st.Publish(rec, "stream")
	if rec["stream.dropped"] != 20 || rec["stream.addresses"] != 10 {
		t.Fatalf("published counters = %v", rec)
	}
}

// recorderMap is a minimal obs.Recorder for counter assertions.
type recorderMap map[string]int64

func (m recorderMap) Count(name string, delta int64) { m[name] += delta }
func (m recorderMap) Time(string, time.Duration)     {}

// The streaming pipeline's point: emitting a long trace allocates nothing
// after setup — memory stays O(cache geometry + batch), not O(trace).
func TestStreamEmitDoesNotAllocate(t *testing.T) {
	t.Parallel()
	h := smallHierarchy()
	st := NewStream(h, 0)
	sk := st.Sink()
	var next Addr
	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < 3*DefaultBatch; k++ {
			sk.Emit(next)
			next += 64
		}
		sk.Flush()
	})
	if allocs != 0 {
		t.Fatalf("streaming emit allocated %.1f times per run, want 0", allocs)
	}
}
