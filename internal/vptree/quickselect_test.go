package vptree

import (
	"math/rand"
	"testing"

	"twist/internal/geom"
)

func TestQuickselectDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := int32(2 + rng.Intn(100))
		pts := make([]geom.Point, n)
		perm := make([]int32, n)
		d := make([]float64, n)
		for k := range d {
			d[k] = rng.Float64()
			perm[k] = int32(k)
		}
		k := n / 2
		quickselect(pts, perm, d, 0, 0, n, k)
		for a := int32(0); a < k; a++ {
			if d[a] > d[k] {
				t.Fatalf("trial %d: d[%d]=%v > d[k=%d]=%v", trial, a, d[a], k, d[k])
			}
		}
		for a := k + 1; a < n; a++ {
			if d[a] < d[k] {
				t.Fatalf("trial %d: d[%d]=%v < d[k=%d]=%v", trial, a, d[a], k, d[k])
			}
		}
	}
}
