// Package vptree builds vantage-point trees: each internal node picks a
// vantage point and splits its points at the median *distance* from it, so
// the left child holds the inside of a ball and the right child the outside.
// The VP benchmark of paper §6.1 runs k-nearest-neighbor over a vp-tree
// instead of a kd-tree; only the tree shape differs, which is exactly what
// changes the nested recursion's schedule and locality.
package vptree

import (
	"math/rand"

	"twist/internal/geom"
	"twist/internal/spatial"
)

// Build constructs a vp-tree over pts with at most leafSize points per leaf.
// The vantage at each node is chosen pseudo-randomly from the node's points
// using seed, so construction is deterministic.
func Build(pts []geom.Point, leafSize int, seed int64) (*spatial.Index, error) {
	rng := rand.New(rand.NewSource(seed))
	return spatial.Construct(pts, leafSize, func(p []geom.Point, perm []int32, lo, hi int32) int32 {
		return vantageSplit(rng, p, perm, lo, hi)
	})
}

// MustBuild is Build that panics on error.
func MustBuild(pts []geom.Point, leafSize int, seed int64) *spatial.Index {
	ix, err := Build(pts, leafSize, seed)
	if err != nil {
		panic(err)
	}
	return ix
}

// vantageSplit partitions [lo, hi) at the median distance from a randomly
// chosen vantage point. The vantage is swapped to the front and kept in the
// inside (left) half.
func vantageSplit(rng *rand.Rand, pts []geom.Point, perm []int32, lo, hi int32) int32 {
	v := lo + int32(rng.Intn(int(hi-lo)))
	pts[lo], pts[v] = pts[v], pts[lo]
	perm[lo], perm[v] = perm[v], perm[lo]
	vp := pts[lo]

	d := make([]float64, hi-lo)
	allEqual := true
	for k := lo; k < hi; k++ {
		d[k-lo] = geom.Dist2(vp, pts[k])
		if d[k-lo] != d[0] {
			allEqual = false
		}
	}
	if allEqual {
		return lo // all points coincide with the vantage; stay a leaf
	}
	mid := lo + (hi-lo)/2
	quickselect(pts, perm, d, lo, lo, hi, mid)
	// Avoid empty sides when many points share the median distance.
	for mid > lo+1 && d[mid-1-lo] == d[mid-lo] {
		mid--
	}
	if mid == lo {
		mid = lo + 1
	}
	return mid
}

// quickselect rearranges pts[lo:hi] (and perm, and the distance key d, which
// is indexed relative to base) so the element with rank k is in position.
func quickselect(pts []geom.Point, perm []int32, d []float64, base, lo, hi, k int32) {
	for hi-lo > 1 {
		p := d[(lo+(hi-lo)/2)-base]
		i, j := lo, hi-1
		for i <= j {
			for d[i-base] < p {
				i++
			}
			for d[j-base] > p {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				perm[i], perm[j] = perm[j], perm[i]
				d[i-base], d[j-base] = d[j-base], d[i-base]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
}
