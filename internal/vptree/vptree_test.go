package vptree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twist/internal/geom"
)

func TestBuildValidatesAcrossSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1000} {
		for _, leaf := range []int{1, 4, 16} {
			pts := geom.Generate(geom.Clustered, n, int64(n))
			ix := MustBuild(pts, leaf, 42)
			if err := ix.Validate(); err != nil {
				t.Fatalf("n=%d leaf=%d: %v", n, leaf, err)
			}
			if ix.Len() != n {
				t.Fatalf("n=%d: index holds %d points", n, ix.Len())
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 300, 9)
	a := MustBuild(pts, 8, 7)
	b := MustBuild(pts, 8, 7)
	if a.Topo.Len() != b.Topo.Len() {
		t.Fatal("same seed produced different shapes")
	}
	for k := range a.Points {
		if a.Points[k] != b.Points[k] {
			t.Fatalf("same seed produced different point order at %d", k)
		}
	}
}

// The partition invariant holds at split time: the inside half is no farther
// from the vantage than the outside half. (It cannot be checked on the built
// Index, because descendants rearrange their parents' point ranges.)
func TestInsideHalfIsCloserToVantage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := int32(4 + rng.Intn(400))
		pts := geom.Generate(geom.Uniform, int(n), int64(trial))
		perm := make([]int32, n)
		for k := range perm {
			perm[k] = int32(k)
		}
		mid := vantageSplit(rng, pts, perm, 0, n)
		if mid <= 0 || mid >= n {
			t.Fatalf("trial %d: split produced empty side (mid=%d, n=%d)", trial, mid, n)
		}
		// The vantage is some inside point with distance 0 to itself; use
		// the inside point that minimizes the maximum inside distance bound:
		// every point's d was measured from the vantage, which quickselect
		// keeps in the inside half (it has the minimum distance, 0). Find it
		// as the inside point whose max-inside/min-outside ordering holds.
		ok := false
		for v := int32(0); v < mid && !ok; v++ {
			vp := pts[v]
			var maxIn float64
			for _, p := range pts[:mid] {
				if d := geom.Dist2(vp, p); d > maxIn {
					maxIn = d
				}
			}
			minOut := math.Inf(1)
			for _, p := range pts[mid:] {
				if d := geom.Dist2(vp, p); d < minOut {
					minOut = d
				}
			}
			ok = maxIn <= minOut
		}
		if !ok {
			t.Fatalf("trial %d: no inside point witnesses the vantage partition", trial)
		}
	}
}

func TestDuplicatePointsDoNotLoop(t *testing.T) {
	pts := make([]geom.Point, 64)
	for k := range pts {
		pts[k] = geom.Point{0.1, 0.2, 0.3}
	}
	ix := MustBuild(pts, 4, 1)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Topo.Len() != 1 {
		t.Fatalf("identical points built %d nodes, want 1", ix.Topo.Len())
	}
}

func TestShapeDiffersFromBalanced(t *testing.T) {
	// vp-trees on clustered data should still be reasonably shallow
	// (median splits halve the range).
	pts := geom.Generate(geom.Clustered, 1<<10, 13)
	ix := MustBuild(pts, 8, 5)
	if h := ix.Topo.Height(); h > 2*11 {
		t.Fatalf("vp-tree height %d too deep for %d points", h, len(pts))
	}
}

func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw)%200 + 1
		pts := geom.Generate(geom.Uniform, n, seed)
		ix, err := Build(pts, 4, seed)
		if err != nil || ix.Validate() != nil {
			return false
		}
		return ix.Boxes[ix.Topo.Root()] == geom.BoxOf(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	pts := geom.Generate(geom.Uniform, 1<<14, 1)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		MustBuild(pts, 16, 1)
	}
}
