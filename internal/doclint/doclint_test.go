// Package doclint is a test-only lint: it fails the build's test step when a
// package loses its godoc package comment, when one of the contract-bearing
// packages (obs, nest, memsim, sched) exports an undocumented identifier, or
// when an internal package is missing from the DESIGN.md §2 system
// inventory. CI runs it as the doc-comment gate next to go vet.
package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// strict lists the packages whose exported API must be fully documented:
// they carry the cross-package contracts (Recorder, RunConfig, Stream/Sink,
// schedule recording) that the rest of the repo programs against.
var strict = map[string]bool{
	"internal/obs":    true,
	"internal/nest":   true,
	"internal/memsim": true,
	"internal/sched":  true,
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestEveryPackageHasDocComment parses every non-test source directory under
// the module and requires at least one file to carry a package comment.
func TestEveryPackageHasDocComment(t *testing.T) {
	root := repoRoot(t)
	dirs := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir, files := range dirs {
		rel, _ := filepath.Rel(root, dir)
		documented := false
		for _, f := range files {
			file, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package doc comment in any of its files", rel)
		}
	}
}

// TestEveryInternalPackageIsInventoried requires every internal package to
// hold a row in the DESIGN.md §2 system inventory: the section between the
// "## 2." and "## 3." headings must mention the package's module-relative
// import path. The inventory is the map readers navigate the repo by; a
// package absent from it is a subsystem the documentation does not admit
// exists.
func TestEveryInternalPackageIsInventoried(t *testing.T) {
	root := repoRoot(t)
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	section := string(design)
	if i := strings.Index(section, "\n## 2."); i >= 0 {
		section = section[i:]
	} else {
		t.Fatal("DESIGN.md has no \"## 2.\" heading")
	}
	if i := strings.Index(section[1:], "\n## "); i >= 0 {
		section = section[:1+i]
	}
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "testdata" {
			continue
		}
		pkg := "internal/" + e.Name()
		if !strings.Contains(section, pkg) {
			t.Errorf("%s has no row in the DESIGN.md §2 system inventory", pkg)
		}
	}
}

// TestStrictPackagesDocumentExports requires a doc comment on every exported
// top-level declaration of the strict packages.
func TestStrictPackagesDocumentExports(t *testing.T) {
	root := repoRoot(t)
	for rel := range strict {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			checkFileExports(t, filepath.Join(rel, name), file)
		}
	}
}

func checkFileExports(t *testing.T, path string, file *ast.File) {
	t.Helper()
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				t.Errorf("%s: exported func %s has no doc comment", path, funcName(d))
			}
		case *ast.GenDecl:
			// A documented group (e.g. a const block with one comment)
			// covers its members.
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						t.Errorf("%s: exported type %s has no doc comment", path, s.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							t.Errorf("%s: exported %s %s has no doc comment", path, d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether d is a plain function or a method whose
// receiver type is itself exported — methods on unexported types are not
// part of the package's godoc surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	rt := d.Recv.List[0].Type
	if st, ok := rt.(*ast.StarExpr); ok {
		rt = st.X
	}
	if idx, ok := rt.(*ast.IndexExpr); ok { // generic receiver T[P]
		rt = idx.X
	}
	id, ok := rt.(*ast.Ident)
	return !ok || id.IsExported()
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	switch rt := d.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := rt.X.(*ast.Ident); ok {
			b.WriteString("(*" + id.Name + ").")
		}
	case *ast.Ident:
		b.WriteString(rt.Name + ".")
	}
	b.WriteString(d.Name.Name)
	return b.String()
}
