package sched

import (
	"math/rand"
	"strings"
	"testing"

	"twist/internal/nest"
	"twist/internal/tree"
)

func paperSpec() nest.Spec {
	return nest.Spec{Outer: tree.NewPerfect(2), Inner: tree.NewPerfect(2)}
}

func TestRecordOriginalOrder(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	pairs, err := Record(s, nest.Original())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 49 {
		t.Fatalf("%d pairs, want 49", len(pairs))
	}
	// First column: (A,1)..(A,7).
	for k := 0; k < 7; k++ {
		if pairs[k].O != 0 || pairs[k].I != tree.NodeID(k) {
			t.Fatalf("pair %d = %+v", k, pairs[k])
		}
	}
}

// The first 28 iterations of the twisted schedule, hand-derived from
// Fig 4(a) on the paper's example trees (and consistent with the Fig 4(b)
// reuse distances pinned in internal/nest's tests).
func TestRecordTwistedPrefix(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	pairs, err := Record(s, nest.Twisted())
	if err != nil {
		t.Fatal(err)
	}
	outer, inner := s.Outer, s.Inner
	var got []string
	for _, p := range pairs[:28] {
		got = append(got, "("+OuterLabel(outer, p.O)+","+InnerLabel(inner, p.I)+")")
	}
	want := strings.Fields(
		"(A,1) (A,2) (A,3) (A,4) (A,5) (A,6) (A,7) " +
			"(B,1) (C,1) (D,1) " +
			"(B,2) (B,3) (B,4) (C,2) (C,3) (C,4) (D,2) (D,3) (D,4) " +
			"(B,5) (B,6) (B,7) (C,5) (C,6) (C,7) (D,5) (D,6) (D,7)")
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("twisted iteration %d = %s, want %s\nfull: %v", k, got[k], want[k], got)
		}
	}
}

func TestLabels(t *testing.T) {
	t.Parallel()
	tr := tree.NewBalanced(30)
	if OuterLabel(tr, tr.ByPreorder(0)) != "A" {
		t.Fatal("first outer label not A")
	}
	if OuterLabel(tr, tr.ByPreorder(26)) != "A1" {
		t.Fatalf("label 26 = %s", OuterLabel(tr, tr.ByPreorder(26)))
	}
	if InnerLabel(tr, tr.ByPreorder(0)) != "1" {
		t.Fatal("first inner label not 1")
	}
}

func TestGridContainsAllPositions(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	pairs, _ := Record(s, nest.Twisted())
	g := Grid(s.Outer, s.Inner, pairs)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 8 { // header + 7 rows
		t.Fatalf("grid has %d lines:\n%s", len(lines), g)
	}
	for _, n := range []string{" 1", "49", " A", " G"} {
		if !strings.Contains(g, n) {
			t.Fatalf("grid missing %q:\n%s", n, g)
		}
	}
}

func TestGridMarksSkippedIterations(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	// Fig 6(a)'s irregular space: skip (B, 2) and descendants.
	s.TruncInner2 = func(o, i tree.NodeID) bool { return o == 1 && i == 1 }
	pairs, err := Record(s, nest.Original())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 49-3 {
		t.Fatalf("%d pairs, want 46 (B column loses nodes 2,3,4)", len(pairs))
	}
	g := Grid(s.Outer, s.Inner, pairs)
	if !strings.Contains(g, ".") {
		t.Fatalf("grid does not mark skipped iterations:\n%s", g)
	}
}

func TestOrderRendering(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	pairs, _ := Record(s, nest.Original())
	o := Order(s.Outer, s.Inner, pairs, 7)
	if !strings.HasPrefix(o, "(A,1) (A,2)") {
		t.Fatalf("order rendering starts %q", o[:20])
	}
	if lines := strings.Count(o, "\n"); lines != 7 {
		t.Fatalf("order rendering has %d lines, want 7", lines)
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	ref, _ := Record(s, nest.Original())
	tw, _ := Record(s, nest.Twisted())
	if err := Check(ref, tw); err != nil {
		t.Fatalf("twisted schedule flagged unsound: %v", err)
	}
	// Missing iteration.
	if err := Check(ref, tw[:len(tw)-1]); err == nil {
		t.Fatal("missing iteration not detected")
	}
	// Column reorder: swap two iterations of column A.
	bad := append([]Pair(nil), ref...)
	bad[1], bad[2] = bad[2], bad[1]
	if err := Check(ref, bad); err == nil {
		t.Fatal("column reorder not detected")
	}
	// Row-major is a valid permutation with intact column order.
	inter, _ := Record(s, nest.Interchanged())
	if err := Check(ref, inter); err != nil {
		t.Fatalf("interchange flagged unsound: %v", err)
	}
}

func TestRecordPreservesUserWork(t *testing.T) {
	t.Parallel()
	s := paperSpec()
	var n int
	s.Work = func(o, i tree.NodeID) { n++ }
	pairs, err := Record(s, nest.Twisted())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pairs) {
		t.Fatalf("user work ran %d times for %d pairs", n, len(pairs))
	}
}

func TestRecordPropagatesSpecError(t *testing.T) {
	t.Parallel()
	if _, err := Record(nest.Spec{}, nest.Original()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// The parallel executors' per-worker traces must jointly be the reference
// schedule, with every column whole and in order inside one worker — on
// regular and irregular (outer-dependent truncation) spaces, for all four
// variants and both executors. Run with -race in CI.
func TestCheckShardedParallelTraces(t *testing.T) {
	t.Parallel()
	outer, inner := tree.NewRandomBST(300, 1), tree.NewRandomBST(280, 2)
	// Hereditary truncation (monotone down both trees), so the executed
	// iteration set is schedule-independent per the template's semantics.
	rng := rand.New(rand.NewSource(7))
	level := make([]float64, outer.Len())
	for o := range level {
		level[o] = rng.Float64()
	}
	thresh := make([]float64, inner.Len())
	for i := range thresh {
		thresh[i] = 1 - 0.6*rng.Float64()
	}
	for _, o := range outer.Preorder(nil) {
		if p := outer.Parent(o); p != tree.Nil && level[o] < level[p] {
			level[o] = level[p]
		}
	}
	for _, i := range inner.Preorder(nil) {
		if p := inner.Parent(i); p != tree.Nil && thresh[i] > thresh[p] {
			thresh[i] = thresh[p]
		}
	}
	specs := map[string]nest.Spec{
		"regular": {Outer: outer, Inner: inner},
		"irregular": {
			Outer:       outer,
			Inner:       inner,
			Hereditary:  true,
			TruncInner2: func(o, i tree.NodeID) bool { return level[o] > thresh[i] },
		},
	}
	variants := []nest.Variant{nest.Original(), nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(8)}
	for name, s := range specs {
		for _, v := range variants {
			s := s
			s.Work = func(o, i tree.NodeID) {}
			ref, err := Record(s, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, stealing := range []bool{false, true} {
				const workers = 4
				shards := make([][]Pair, workers)
				e := nest.MustNew(s)
				_, err := e.RunWith(nest.RunConfig{
					Variant:  v,
					Workers:  workers,
					Stealing: stealing,
					WrapWork: func(w int, work func(o, i tree.NodeID)) func(o, i tree.NodeID) {
						return func(o, i tree.NodeID) {
							shards[w] = append(shards[w], Pair{O: o, I: i})
							work(o, i)
						}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckSharded(ref, shards); err != nil {
					t.Fatalf("%s %v stealing=%v: %v", name, v, stealing, err)
				}
			}
			// A single worker's trace is a full permutation; the sequential
			// Check must accept it too.
			one := make([][]Pair, 1)
			e := nest.MustNew(s)
			if _, err := e.RunWith(nest.RunConfig{Variant: v, Workers: 1, Stealing: true,
				WrapWork: func(w int, work func(o, i tree.NodeID)) func(o, i tree.NodeID) {
					return func(o, i tree.NodeID) {
						one[w] = append(one[w], Pair{O: o, I: i})
						work(o, i)
					}
				}}); err != nil {
				t.Fatal(err)
			}
			if err := Check(ref, one[0]); err != nil {
				t.Fatalf("%s %v single-worker trace: %v", name, v, err)
			}
		}
	}
}

func TestCheckShardedDetectsViolations(t *testing.T) {
	t.Parallel()
	ref := []Pair{{O: 0, I: 0}, {O: 0, I: 1}, {O: 1, I: 0}}
	ok := [][]Pair{{{O: 0, I: 0}, {O: 0, I: 1}}, {{O: 1, I: 0}}}
	if err := CheckSharded(ref, ok); err != nil {
		t.Fatalf("valid sharding rejected: %v", err)
	}
	split := [][]Pair{{{O: 0, I: 0}}, {{O: 0, I: 1}, {O: 1, I: 0}}}
	if err := CheckSharded(ref, split); err == nil {
		t.Fatal("column split across shards accepted")
	}
	reordered := [][]Pair{{{O: 0, I: 1}, {O: 0, I: 0}}, {{O: 1, I: 0}}}
	if err := CheckSharded(ref, reordered); err == nil {
		t.Fatal("reordered column accepted")
	}
	missing := [][]Pair{{{O: 0, I: 0}, {O: 0, I: 1}}}
	if err := CheckSharded(ref, missing); err == nil {
		t.Fatal("missing iteration accepted")
	}
}
