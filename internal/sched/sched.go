// Package sched records and renders the schedules the transformations in
// internal/nest produce. Its grid rendering reproduces the iteration-space
// pictures of the paper's Fig 1(c) (original, column-by-column) and Fig 4(b)
// (twisted, with its emergent nested tiles) as text.
package sched

import (
	"fmt"
	"strings"

	"twist/internal/nest"
	"twist/internal/tree"
)

// Pair is one iteration of a nested recursive iteration space: an outer-tree
// node and an inner-tree node.
type Pair struct {
	O, I tree.NodeID
}

// Record executes variant v of spec s and returns the sequence of iterations
// in execution order. The spec's own Work (if any) still runs.
func Record(s nest.Spec, v nest.Variant) ([]Pair, error) {
	var pairs []Pair
	work := s.Work
	if work == nil {
		work = func(o, i tree.NodeID) {}
	}
	s.Work = func(o, i tree.NodeID) {
		pairs = append(pairs, Pair{O: o, I: i})
		work(o, i)
	}
	e, err := nest.New(s)
	if err != nil {
		return nil, err
	}
	e.Run(v)
	return pairs, nil
}

// OuterLabel names outer-tree nodes the way the paper's figures do:
// A, B, C, … in preorder (wrapping to A1, B1, … beyond 26 nodes).
func OuterLabel(t *tree.Topology, n tree.NodeID) string {
	k := t.Order(n)
	letter := rune('A' + k%26)
	if cycle := k / 26; cycle > 0 {
		return fmt.Sprintf("%c%d", letter, cycle)
	}
	return string(letter)
}

// InnerLabel names inner-tree nodes 1, 2, 3, … in preorder, as in the paper.
func InnerLabel(t *tree.Topology, n tree.NodeID) string {
	return fmt.Sprintf("%d", t.Order(n)+1)
}

// Grid renders the iteration order as a matrix: one column per outer-tree
// node (preorder), one row per inner-tree node (preorder), each cell holding
// the 1-based position of that iteration in the schedule (". ." for skipped
// iterations of an irregular space). Reading the numbers in sequence traces
// the arrows of Fig 1(c)/4(b); tiles appear as blocks of consecutive values.
func Grid(outer, inner *tree.Topology, pairs []Pair) string {
	no, ni := outer.Len(), inner.Len()
	seq := make(map[Pair]int, len(pairs))
	for k, p := range pairs {
		seq[p] = k + 1
	}
	width := len(fmt.Sprint(len(pairs)))
	if width < 2 {
		width = 2
	}
	var b strings.Builder
	// Header row: outer labels.
	fmt.Fprintf(&b, "%*s", 4, "")
	for ok := int32(0); ok < int32(no); ok++ {
		fmt.Fprintf(&b, " %*s", width, OuterLabel(outer, outer.ByPreorder(ok)))
	}
	b.WriteByte('\n')
	for ik := int32(0); ik < int32(ni); ik++ {
		i := inner.ByPreorder(ik)
		fmt.Fprintf(&b, "%*s", 4, InnerLabel(inner, i))
		for ok := int32(0); ok < int32(no); ok++ {
			o := outer.ByPreorder(ok)
			if s, ok2 := seq[Pair{O: o, I: i}]; ok2 {
				fmt.Fprintf(&b, " %*d", width, s)
			} else {
				fmt.Fprintf(&b, " %*s", width, ".")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Order renders the schedule as the paper writes it: a sequence of labeled
// iterations "(A,1) (A,2) …", wrapped at the given number of entries per
// line (0 for a single line).
func Order(outer, inner *tree.Topology, pairs []Pair, perLine int) string {
	var b strings.Builder
	for k, p := range pairs {
		if k > 0 {
			if perLine > 0 && k%perLine == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(&b, "(%s,%s)", OuterLabel(outer, p.O), InnerLabel(inner, p.I))
	}
	b.WriteByte('\n')
	return b.String()
}

// Check verifies that a recorded schedule is a permutation of the reference
// schedule (same iterations, each exactly once) and preserves the relative
// order of iterations within every column (fixed outer node) — the §3.3
// soundness conditions for programs with inner-recursion-carried
// dependences. It returns nil if both hold.
func Check(reference, got []Pair) error {
	refCount := make(map[Pair]int, len(reference))
	for _, p := range reference {
		refCount[p]++
	}
	for _, p := range got {
		refCount[p]--
	}
	for p, c := range refCount {
		if c != 0 {
			return fmt.Errorf("sched: iteration (%d,%d) count differs by %d", p.O, p.I, -c)
		}
	}
	refCols := map[tree.NodeID][]tree.NodeID{}
	for _, p := range reference {
		refCols[p.O] = append(refCols[p.O], p.I)
	}
	gotCols := map[tree.NodeID][]tree.NodeID{}
	for _, p := range got {
		gotCols[p.O] = append(gotCols[p.O], p.I)
	}
	for o, ref := range refCols {
		g := gotCols[o]
		for k := range ref {
			if g[k] != ref[k] {
				return fmt.Errorf("sched: column %d reordered at position %d: %d vs %d", o, k, g[k], ref[k])
			}
		}
	}
	return nil
}

// CheckSharded verifies that the shards — per-worker traces of a parallel
// run — jointly cover the reference schedule exactly once, and that every
// column (fixed outer node) lives entirely within one shard with its
// reference order intact. That is the parallel form of Check's §3.3
// soundness conditions: a column is one task's work, a task runs on one
// worker, and within the worker it runs in schedule order.
func CheckSharded(reference []Pair, shards [][]Pair) error {
	refCount := make(map[Pair]int, len(reference))
	for _, p := range reference {
		refCount[p]++
	}
	owner := map[tree.NodeID]int{}
	for k, shard := range shards {
		for _, p := range shard {
			refCount[p]--
			if prev, ok := owner[p.O]; ok && prev != k {
				return fmt.Errorf("sched: column %d split across shards %d and %d", p.O, prev, k)
			}
			owner[p.O] = k
		}
	}
	for p, c := range refCount {
		if c != 0 {
			return fmt.Errorf("sched: iteration (%d,%d) count differs by %d", p.O, p.I, -c)
		}
	}
	refCols := map[tree.NodeID][]tree.NodeID{}
	for _, p := range reference {
		refCols[p.O] = append(refCols[p.O], p.I)
	}
	for k, shard := range shards {
		cols := map[tree.NodeID][]tree.NodeID{}
		for _, p := range shard {
			cols[p.O] = append(cols[p.O], p.I)
		}
		for o, got := range cols {
			ref := refCols[o]
			for n := range ref {
				if got[n] != ref[n] {
					return fmt.Errorf("sched: shard %d column %d reordered at position %d: %d vs %d",
						k, o, n, got[n], ref[n])
				}
			}
		}
	}
	return nil
}
