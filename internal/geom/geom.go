// Package geom provides the geometric substrate for the dual-tree n-body
// benchmarks of paper §6: points, Euclidean metrics, axis-aligned bounding
// boxes with min/max box-to-box distances (the pruning rules of Curtin et
// al.'s tree-independent dual-tree framework), and deterministic synthetic
// point generators standing in for the paper's undisclosed inputs.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Dim is the dimensionality of all points in this repository. The paper's
// dual-tree benchmarks are low-dimensional n-body style workloads; we fix
// d=3, which keeps kd-tree pruning effective (the O(n log n) iteration regime
// of paper §4.2) while exercising real multi-dimensional box arithmetic.
const Dim = 3

// Point is a point in Dim-dimensional Euclidean space.
type Point [Dim]float64

// Dist2 returns the squared Euclidean distance between p and q. All pruning
// and neighbor comparisons work in squared distances to avoid sqrt in hot
// loops; distances are exposed to users via math.Sqrt at the boundary.
func Dist2(p, q Point) float64 {
	var s float64
	for d := 0; d < Dim; d++ {
		diff := p[d] - q[d]
		s += diff * diff
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Sqrt(Dist2(p, q)) }

// Box is an axis-aligned bounding box.
type Box struct {
	Min, Max Point
}

// EmptyBox returns a box that contains nothing; Extend-ing it with a point
// yields the degenerate box at that point.
func EmptyBox() Box {
	var b Box
	for d := 0; d < Dim; d++ {
		b.Min[d] = math.Inf(1)
		b.Max[d] = math.Inf(-1)
	}
	return b
}

// Extend grows the box to include p.
func (b *Box) Extend(p Point) {
	for d := 0; d < Dim; d++ {
		if p[d] < b.Min[d] {
			b.Min[d] = p[d]
		}
		if p[d] > b.Max[d] {
			b.Max[d] = p[d]
		}
	}
}

// Union grows the box to include every point of o.
func (b *Box) Union(o Box) {
	b.Extend(o.Min)
	b.Extend(o.Max)
}

// Contains reports whether p lies inside the (closed) box.
func (b Box) Contains(p Point) bool {
	for d := 0; d < Dim; d++ {
		if p[d] < b.Min[d] || p[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.Min[0] > b.Max[0] }

// LongestAxis returns the axis along which the box is widest, and its width.
func (b Box) LongestAxis() (axis int, width float64) {
	for d := 0; d < Dim; d++ {
		if w := b.Max[d] - b.Min[d]; w > width {
			width, axis = w, d
		}
	}
	return axis, width
}

// MinDist2 returns the squared minimum distance between any point of a and
// any point of o (0 if the boxes overlap). This is the lower bound used by
// dual-tree Score functions: if MinDist2 exceeds the search radius/bound, the
// node pair is pruned — the truncateInner2?(o,i) of the paper's template.
func (b Box) MinDist2(o Box) float64 {
	var s float64
	for d := 0; d < Dim; d++ {
		var gap float64
		if b.Max[d] < o.Min[d] {
			gap = o.Min[d] - b.Max[d]
		} else if o.Max[d] < b.Min[d] {
			gap = b.Min[d] - o.Max[d]
		}
		s += gap * gap
	}
	return s
}

// MaxDist2 returns the squared maximum distance between any point of b and
// any point of o — the upper bound used to tighten nearest-neighbor bounds.
func (b Box) MaxDist2(o Box) float64 {
	var s float64
	for d := 0; d < Dim; d++ {
		lo := b.Min[d] - o.Max[d]
		hi := b.Max[d] - o.Min[d]
		m := math.Max(math.Abs(lo), math.Abs(hi))
		s += m * m
	}
	return s
}

// MinDistToPoint2 returns the squared minimum distance from the box to p.
func (b Box) MinDistToPoint2(p Point) float64 {
	var s float64
	for d := 0; d < Dim; d++ {
		var gap float64
		if p[d] < b.Min[d] {
			gap = b.Min[d] - p[d]
		} else if p[d] > b.Max[d] {
			gap = p[d] - b.Max[d]
		}
		s += gap * gap
	}
	return s
}

// BoxOf returns the tight bounding box of pts.
func BoxOf(pts []Point) Box {
	b := EmptyBox()
	for _, p := range pts {
		b.Extend(p)
	}
	return b
}

// Distribution selects a synthetic point distribution. The paper does not
// publish its inputs; these generators are the substitution (DESIGN.md §1):
// Uniform gives the worst-case "everything interacts" regime, Clustered gives
// the realistic n-body regime where dual-tree pruning is effective.
type Distribution int

const (
	// Uniform draws points i.i.d. uniform in the unit cube.
	Uniform Distribution = iota
	// Clustered draws points from a mixture of Gaussian blobs whose centers
	// are uniform in the unit cube — the clustered inputs that make
	// point-correlation interesting (paper §6.1: PC "determines how
	// clustered a data set is").
	Clustered
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Generate produces n deterministic pseudo-random points for the given
// distribution and seed.
func Generate(dist Distribution, n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	switch dist {
	case Uniform:
		for i := range pts {
			for d := 0; d < Dim; d++ {
				pts[i][d] = rng.Float64()
			}
		}
	case Clustered:
		// ~sqrt(n) clusters with sigma chosen so clusters are tight relative
		// to the unit cube but still overlap occasionally.
		k := int(math.Sqrt(float64(n)))
		if k < 1 {
			k = 1
		}
		centers := make([]Point, k)
		for i := range centers {
			for d := 0; d < Dim; d++ {
				centers[i][d] = rng.Float64()
			}
		}
		const sigma = 0.02
		for i := range pts {
			c := centers[rng.Intn(k)]
			for d := 0; d < Dim; d++ {
				pts[i][d] = c[d] + rng.NormFloat64()*sigma
			}
		}
	default:
		panic(fmt.Sprintf("geom: unknown distribution %d", int(dist)))
	}
	return pts
}
