package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(rng *rand.Rand, scale float64) Point {
	var p Point
	for d := 0; d < Dim; d++ {
		p[d] = (rng.Float64() - 0.5) * scale
	}
	return p
}

func TestDistSymmetricAndNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 200; k++ {
		p, q := randPoint(rng, 10), randPoint(rng, 10)
		if Dist2(p, q) < 0 {
			t.Fatalf("negative squared distance for %v %v", p, q)
		}
		if Dist2(p, q) != Dist2(q, p) {
			t.Fatalf("asymmetric distance for %v %v", p, q)
		}
		if Dist2(p, p) != 0 {
			t.Fatalf("Dist2(p,p) = %v", Dist2(p, p))
		}
		if got, want := Dist(p, q), math.Sqrt(Dist2(p, q)); got != want {
			t.Fatalf("Dist=%v, sqrt(Dist2)=%v", got, want)
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(a, b, c [Dim]float64) bool {
		p, q, r := Point(a), Point(b), Point(c)
		return Dist(p, r) <= Dist(p, q)+Dist(q, r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxExtendContains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = randPoint(rng, 5)
	}
	b := BoxOf(pts)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("box %v does not contain member point %v", b, p)
		}
	}
}

func TestEmptyBox(t *testing.T) {
	b := EmptyBox()
	if !b.Empty() {
		t.Fatal("EmptyBox not Empty")
	}
	if b.Contains(Point{}) {
		t.Fatal("empty box contains the origin")
	}
	b.Extend(Point{1, 2, 3})
	if b.Empty() {
		t.Fatal("extended box still empty")
	}
	if b.Min != (Point{1, 2, 3}) || b.Max != (Point{1, 2, 3}) {
		t.Fatalf("degenerate box = %v", b)
	}
}

func TestBoxUnion(t *testing.T) {
	a := BoxOf([]Point{{0, 0, 0}, {1, 1, 1}})
	b := BoxOf([]Point{{2, -1, 0.5}})
	a.Union(b)
	for _, p := range []Point{{0, 0, 0}, {1, 1, 1}, {2, -1, 0.5}} {
		if !a.Contains(p) {
			t.Fatalf("union missing %v", p)
		}
	}
}

// The central soundness property for dual-tree pruning: for any two point
// sets, MinDist2 of their boxes lower-bounds and MaxDist2 upper-bounds every
// cross pair distance.
func TestMinMaxDistBoundEveryPair(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(20), 1+rng.Intn(20)
		as := make([]Point, na)
		bs := make([]Point, nb)
		for i := range as {
			as[i] = randPoint(rng, 4)
		}
		for i := range bs {
			bs[i] = randPoint(rng, 4)
		}
		ba, bb := BoxOf(as), BoxOf(bs)
		lo, hi := ba.MinDist2(bb), ba.MaxDist2(bb)
		for _, p := range as {
			for _, q := range bs {
				d := Dist2(p, q)
				if d < lo-1e-12 {
					t.Fatalf("pair dist2 %v below box MinDist2 %v", d, lo)
				}
				if d > hi+1e-12 {
					t.Fatalf("pair dist2 %v above box MaxDist2 %v", d, hi)
				}
			}
		}
	}
}

func TestMinDistOverlappingBoxesIsZero(t *testing.T) {
	a := BoxOf([]Point{{0, 0, 0}, {2, 2, 2}})
	b := BoxOf([]Point{{1, 1, 1}, {3, 3, 3}})
	if got := a.MinDist2(b); got != 0 {
		t.Fatalf("overlapping MinDist2 = %v", got)
	}
	if got := a.MinDist2(a); got != 0 {
		t.Fatalf("self MinDist2 = %v", got)
	}
}

func TestMinDistDisjointBoxes(t *testing.T) {
	a := BoxOf([]Point{{0, 0, 0}, {1, 1, 1}})
	b := BoxOf([]Point{{4, 0, 0}, {5, 1, 1}})
	if got, want := a.MinDist2(b), 9.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MinDist2 = %v, want %v", got, want)
	}
	// Symmetric.
	if a.MinDist2(b) != b.MinDist2(a) {
		t.Fatal("MinDist2 not symmetric")
	}
}

func TestMinDistToPoint(t *testing.T) {
	b := BoxOf([]Point{{0, 0, 0}, {1, 1, 1}})
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{0.5, 0.5, 0.5}, 0},
		{Point{2, 0.5, 0.5}, 1},
		{Point{2, 2, 0.5}, 2},
		{Point{-1, -1, -1}, 3},
	}
	for _, c := range cases {
		if got := b.MinDistToPoint2(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("MinDistToPoint2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLongestAxis(t *testing.T) {
	b := BoxOf([]Point{{0, 0, 0}, {1, 3, 2}})
	axis, width := b.LongestAxis()
	if axis != 1 || width != 3 {
		t.Fatalf("LongestAxis = %d,%v; want 1,3", axis, width)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Clustered} {
		a := Generate(dist, 100, 99)
		b := Generate(dist, 100, 99)
		if len(a) != 100 || len(b) != 100 {
			t.Fatalf("%v: wrong lengths %d %d", dist, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic at %d: %v vs %v", dist, i, a[i], b[i])
			}
		}
		c := Generate(dist, 100, 100)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds produced identical points", dist)
		}
	}
}

func TestGenerateUniformInUnitCube(t *testing.T) {
	for _, p := range Generate(Uniform, 1000, 5) {
		for d := 0; d < Dim; d++ {
			if p[d] < 0 || p[d] >= 1 {
				t.Fatalf("uniform point %v outside unit cube", p)
			}
		}
	}
}

func TestClusteredIsActuallyClustered(t *testing.T) {
	// Mean nearest-neighbor distance of clustered points should be well
	// below that of uniform points at the same n.
	mean := func(pts []Point) float64 {
		var sum float64
		for i, p := range pts {
			best := math.Inf(1)
			for j, q := range pts {
				if i == j {
					continue
				}
				if d := Dist2(p, q); d < best {
					best = d
				}
			}
			sum += math.Sqrt(best)
		}
		return sum / float64(len(pts))
	}
	u := mean(Generate(Uniform, 400, 7))
	c := mean(Generate(Clustered, 400, 7))
	if c >= u {
		t.Fatalf("clustered NN distance %v not below uniform %v", c, u)
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Clustered.String() != "clustered" {
		t.Fatal("Distribution.String mismatch")
	}
	if Distribution(42).String() == "" {
		t.Fatal("unknown distribution has empty String")
	}
}
