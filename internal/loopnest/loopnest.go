// Package loopnest is the §7.2 front-end: it translates a doubly-nested for
// loop into a nested recursion (the divide-and-conquer decomposition
// languages like Cilk apply to loops) so that recursion twisting can act as
// an automatic, parameterless multi-level loop-tiling transformation.
//
// The iteration space of
//
//	for o := 0; o < n; o++ {
//	    for i := 0; i < m; i++ { body(o, i) }
//	}
//
// becomes the cross product of two balanced range trees whose leaves are the
// index values; work fires at leaf×leaf pairs. Running the Twisted schedule
// then yields the nested-tile order the paper relates to cache-oblivious
// algorithms and to Yi, Adve & Kennedy's divide-and-conquer loop schedules
// (§7.2, §8) — with no tile-size or cache parameters.
package loopnest

import (
	"fmt"

	"twist/internal/nest"
	"twist/internal/tree"
)

// Nest is a doubly-nested loop recast as a nested recursive iteration space.
type Nest struct {
	n, m             int
	outerTopo        *tree.Topology
	innerTopo        *tree.Topology
	outerLo, outerHi []int32 // leaf -> index run [lo, hi) (-1 for internal nodes)
	innerLo, innerHi []int32
}

// rangeTree builds a balanced binary recursion over [0, n) whose leaves are
// runs of at most leaf consecutive indices; los/his give each leaf's run
// [lo, hi) (-1/-1 for internal nodes).
func rangeTree(n int, leaf int32) (topo *tree.Topology, los, his []int32) {
	b := tree.NewBuilder(2*n - 1)
	var build func(lo, hi int32) tree.NodeID
	build = func(lo, hi int32) tree.NodeID {
		id := b.Add()
		if hi-lo <= leaf {
			los = append(los, lo)
			his = append(his, hi)
			return id
		}
		los = append(los, -1)
		his = append(his, -1)
		mid := lo + (hi-lo)/2
		b.SetLeft(id, build(lo, mid))
		b.SetRight(id, build(mid, hi))
		return id
	}
	root := build(0, int32(n))
	return b.MustBuild(root), los, his
}

// New builds the recursive decomposition of an n×m loop nest. leafRun is the
// granularity cutoff — the number of consecutive indices handled by one leaf
// (Cilk's grain size); 1 decomposes fully.
func New(n, m, leafRun int) (*Nest, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("loopnest: bounds must be positive, got %d x %d", n, m)
	}
	if leafRun < 1 {
		return nil, fmt.Errorf("loopnest: leafRun must be >= 1, got %d", leafRun)
	}
	ln := &Nest{n: n, m: m}
	ln.outerTopo, ln.outerLo, ln.outerHi = rangeTree(n, int32(leafRun))
	ln.innerTopo, ln.innerLo, ln.innerHi = rangeTree(m, int32(leafRun))
	return ln, nil
}

// MustNew is New that panics on error.
func MustNew(n, m, leafRun int) *Nest {
	ln, err := New(n, m, leafRun)
	if err != nil {
		panic(err)
	}
	return ln
}

// Bounds returns the loop bounds (n, m).
func (ln *Nest) Bounds() (n, m int) { return ln.n, ln.m }

// Spec assembles the nested recursion whose leaf×leaf work runs body over
// the corresponding index runs, in ascending order within each run pair.
func (ln *Nest) Spec(body func(o, i int)) nest.Spec {
	outT, inT := ln.outerTopo, ln.innerTopo
	oLo, oHi, iLo, iHi := ln.outerLo, ln.outerHi, ln.innerLo, ln.innerHi
	return nest.Spec{
		Outer: outT,
		Inner: inT,
		Work: func(o, i tree.NodeID) {
			ob, ib := oLo[o], iLo[i]
			if ob < 0 || ib < 0 {
				return
			}
			for x := ob; x < oHi[o]; x++ {
				for y := ib; y < iHi[i]; y++ {
					body(int(x), int(y))
				}
			}
		},
	}
}

// Run executes the loop nest under the given schedule. Original() gives the
// source loop order (row-major); Twisted() gives the parameterless
// multi-level-tiled order.
func (ln *Nest) Run(body func(o, i int), v nest.Variant) *nest.Exec {
	e := nest.MustNew(ln.Spec(body))
	e.Run(v)
	return e
}
