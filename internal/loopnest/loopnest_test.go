package loopnest

import (
	"reflect"
	"testing"

	"twist/internal/memsim"
	"twist/internal/nest"
)

type it struct{ o, i int }

func collect(ln *Nest, v nest.Variant) []it {
	var out []it
	ln.Run(func(o, i int) { out = append(out, it{o, i}) }, v)
	return out
}

func TestOriginalIsSourceLoopOrder(t *testing.T) {
	// With full decomposition (leafRun 1) the Original schedule is exactly
	// the source loop order; coarser grains iterate leaf blocks but keep
	// each row's inner indices ascending (checked separately below).
	ln := MustNew(7, 5, 1)
	got := collect(ln, nest.Original())
	var want []it
	for o := 0; o < 7; o++ {
		for i := 0; i < 5; i++ {
			want = append(want, it{o, i})
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("original order is not the source loop order:\n%v", got)
	}
}

func TestCoarseGrainRowOrderAscending(t *testing.T) {
	for _, leafRun := range []int{2, 3, 4} {
		ln := MustNew(7, 5, leafRun)
		for _, v := range []nest.Variant{nest.Original(), nest.Twisted()} {
			last := map[int]int{}
			count := 0
			ln.Run(func(o, i int) {
				if prev, ok := last[o]; ok && i <= prev {
					t.Fatalf("leafRun=%d %v: row %d visits i=%d after i=%d", leafRun, v, o, i, prev)
				}
				last[o] = i
				count++
			}, v)
			if count != 35 {
				t.Fatalf("leafRun=%d %v: %d iterations", leafRun, v, count)
			}
		}
	}
}

func TestTwistedIsPermutation(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {16, 4}, {5, 31}, {1, 9}, {9, 1}} {
		ln := MustNew(dims[0], dims[1], 1)
		got := collect(ln, nest.Twisted())
		if len(got) != dims[0]*dims[1] {
			t.Fatalf("%v: %d iterations", dims, len(got))
		}
		seen := map[it]bool{}
		for _, x := range got {
			if seen[x] {
				t.Fatalf("%v: iteration %v executed twice", dims, x)
			}
			if x.o < 0 || x.o >= dims[0] || x.i < 0 || x.i >= dims[1] {
				t.Fatalf("%v: iteration %v out of bounds", dims, x)
			}
			seen[x] = true
		}
	}
}

// Per-column order (fixed o, ascending i) is preserved by every schedule —
// the loop-nest analog of §3.3's intra-traversal dependence preservation.
func TestColumnOrderAscending(t *testing.T) {
	ln := MustNew(12, 12, 1)
	for _, v := range []nest.Variant{nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(4)} {
		got := collect(ln, v)
		last := map[int]int{}
		for _, x := range got {
			if prev, ok := last[x.o]; ok && x.i <= prev {
				t.Fatalf("%v: column %d visits i=%d after i=%d", v, x.o, x.i, prev)
			}
			last[x.o] = x.i
		}
	}
}

// The point of §7.2: twisting the recursive decomposition tiles the loop
// nest. Measured as the mean reuse distance of inner-index "accesses", which
// the original order keeps at Θ(m) while twisting collapses it.
func TestTwistingTilesTheLoopNest(t *testing.T) {
	const n, m = 64, 64
	mean := func(v nest.Variant) float64 {
		ln := MustNew(n, m, 1)
		ra := memsim.NewReuseAnalyzer()
		h := memsim.NewHistogram()
		ln.Run(func(o, i int) { h.Add(ra.Access(memsim.Addr(i))) }, v)
		return h.Mean()
	}
	orig := mean(nest.Original())
	tw := mean(nest.Twisted())
	if orig < float64(m)-2 {
		t.Fatalf("original mean inner reuse distance %v, want ≈ %d", orig, m)
	}
	if tw > orig/2 {
		t.Fatalf("twisted mean reuse distance %v not well below original %v", tw, orig)
	}
}

func TestLeafRunGranularity(t *testing.T) {
	// Larger leaf runs mean fewer recursion nodes but identical iterations.
	fine := MustNew(33, 17, 1)
	coarse := MustNew(33, 17, 8)
	if coarse.outerTopo.Len() >= fine.outerTopo.Len() {
		t.Fatal("coarser grain did not shrink the recursion")
	}
	a := collect(fine, nest.Twisted())
	b := collect(coarse, nest.Twisted())
	seen := map[it]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			t.Fatalf("coarse run executed unknown iteration %v", x)
		}
	}
	if len(a) != len(b) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a), len(b))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(5, -1, 1); err == nil {
		t.Fatal("m<0 accepted")
	}
	if _, err := New(5, 5, 0); err == nil {
		t.Fatal("leafRun=0 accepted")
	}
}

func TestBounds(t *testing.T) {
	ln := MustNew(6, 9, 2)
	if n, m := ln.Bounds(); n != 6 || m != 9 {
		t.Fatalf("Bounds = %d,%d", n, m)
	}
}

// Matrix-vector multiply through the loop front-end: the §7.2 example of
// getting cache-oblivious-like behaviour from plain loops.
func TestMatVecThroughLoopNest(t *testing.T) {
	const n, m = 37, 23
	a := make([]float64, n*m)
	x := make([]float64, m)
	for k := range a {
		a[k] = float64(k%7) / 3
	}
	for k := range x {
		x[k] = float64(k%5) + 0.5
	}
	want := make([]float64, n)
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			want[o] += a[o*m+i] * x[i]
		}
	}
	ln := MustNew(n, m, 2)
	got := make([]float64, n)
	ln.Run(func(o, i int) { got[o] += a[o*m+i] * x[i] }, nest.Twisted())
	// Within a row, i ascends under every schedule (column-order property),
	// so even float accumulation is bit-identical.
	if !reflect.DeepEqual(got, want) {
		t.Fatal("twisted matrix-vector product differs from loop order")
	}
}

func BenchmarkLoopNestSchedules(b *testing.B) {
	ln := MustNew(256, 256, 4)
	var sink float64
	body := func(o, i int) { sink += float64(o ^ i) }
	for _, v := range []nest.Variant{nest.Original(), nest.Twisted()} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				ln.Run(body, v)
			}
		})
	}
	_ = sink
}
