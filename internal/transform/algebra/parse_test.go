package algebra

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"twist/internal/nest"
)

func TestParseSchedule(t *testing.T) {
	t.Parallel()
	cases := []struct {
		src  string
		want string
	}{
		{"identity", "identity"},
		{"  identity  ", "identity"},
		{"interchange", "interchange"},
		{"twist", "twist"},
		{"twist(flagged)", "twist(flagged)"},
		{"stripmine(64)∘twist(flagged)", "stripmine(64)∘twist(flagged)"},
		{"inline(2)∘stripmine(64)∘twist(flagged)", "inline(2)∘stripmine(64)∘twist(flagged)"},
		// Non-canonical compositions normalize.
		{"interchange∘interchange", "identity"},
		{"interchange∘twist(flagged)", "twist(flagged)"},
		{"twist∘twist(flagged)", "twist(flagged)"},
		{"inline(1)∘inline(1)", "inline(2)"},
		{"stripmine(8)∘stripmine(64)∘twist", "stripmine(64)∘twist"},
		// ASCII composition operator and whitespace.
		{"interchange.twist(flagged)", "twist(flagged)"},
		{"inline(2) ∘ twist(flagged)", "inline(2)∘twist(flagged)"},
		{"stripmine( 64 )∘twist", "stripmine(64)∘twist"},
		// Legacy variant names are schedule expressions too.
		{"original", "identity"},
		{"interchanged", "interchange"},
		{"twisted", "twist(flagged)"},
		{"twisted-cutoff", "stripmine(0)∘twist(flagged)"},
		{"twisted-cutoff:64", "stripmine(64)∘twist(flagged)"},
		{"inline(1)∘twisted", "inline(1)∘twist(flagged)"},
	}
	for _, c := range cases {
		s, err := ParseSchedule(c.src)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", c.src, err)
			continue
		}
		if got := s.String(); got != c.want {
			t.Errorf("ParseSchedule(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "empty schedule expression"},
		{"   ", "empty schedule expression"},
		{"twist∘", "empty term"},
		{"∘twist", "empty term"},
		{"twist∘∘twist", "empty term"},
		{"frobnicate", "unknown term"},
		{"twist(flagged", "missing closing parenthesis"},
		{"twist(bogus)", "bad twist argument"},
		{"identity(x)", "takes no argument"},
		{"interchange(x)", "takes no argument"},
		{"stripmine", "needs a cutoff argument"},
		{"stripmine(x)", "bad stripmine cutoff"},
		{"stripmine(-1)∘twist", "out of range"},
		{"stripmine(64)", "must compose over a twist core"},
		{"stripmine(64)∘interchange", "must compose over a twist core"},
		{"inline", "needs a depth argument"},
		{"inline(x)", "bad inline depth"},
		{"inline(0)", "out of range"},
		{"inline(9)", "out of range"},
		{"inline(5)∘inline(5)", "exceeds the limit"},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.src)
		if err == nil {
			t.Errorf("ParseSchedule(%q) unexpectedly succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSchedule(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

// randomSchedule draws a uniformly-shaped canonical schedule; shared by the
// quick-check round-trip and the oracle differential test.
func randomSchedule(rng *rand.Rand) Schedule {
	s := Schedule{core: coreKind(rng.Intn(3))}
	if s.core == coreTwist {
		s.flagged = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			s.strip = true
			s.cutoff = int32(rng.Intn(256))
		}
	}
	s.inline = int32(rng.Intn(MaxInlineDepth + 1))
	return s
}

// Quick-check: every canonical schedule round-trips through its String
// rendering (the grammar analogue of nest's TestQuickVariantRoundTrip).
func TestQuickScheduleRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	prop := func() bool {
		s := randomSchedule(rng)
		rt, err := ParseSchedule(s.String())
		return err == nil && rt == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The ∘ and ASCII "." spellings of the same expression parse identically.
func TestQuickOperatorEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(13))
	prop := func() bool {
		s := randomSchedule(rng)
		ascii := strings.ReplaceAll(s.String(), "∘", ".")
		rt, err := ParseSchedule(ascii)
		return err == nil && rt == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// parseLegacyTerm owns the colon-argument variant spellings, so this test
// pins its grammar to the engine's: every nest.Variant prints to a term that
// parses back to FromVariant's canonical schedule, and the argument errors
// the engine parser rejects stay rejected here.
func TestLegacyTermsMatchVariantGrammar(t *testing.T) {
	t.Parallel()
	variants := []nest.Variant{
		nest.Original(),
		nest.Interchanged(),
		nest.Twisted(),
		nest.TwistedCutoff(0),
		nest.TwistedCutoff(64),
	}
	for _, v := range variants {
		want, err := FromVariant(v)
		if err != nil {
			t.Fatalf("FromVariant(%v): %v", v, err)
		}
		got, err := ParseSchedule(v.String())
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", v.String(), err)
			continue
		}
		if got != want {
			t.Errorf("ParseSchedule(%q) = %v, want %v", v.String(), got, want)
		}
	}
	for _, src := range []string{"twisted:3", "twisted-cutoff:x", "twisted-cutoff:-1"} {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("ParseSchedule(%q) unexpectedly succeeded", src)
		}
	}
}

func TestMustParseSchedulePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseSchedule on a bad expression did not panic")
		}
	}()
	MustParseSchedule("frobnicate")
}
