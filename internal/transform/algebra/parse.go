package algebra

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchedule parses a schedule expression: terms joined by the
// composition operator ∘ (ASCII alternative: "."), outermost first. Terms:
//
//	identity                  the original program order
//	interchange               recursion interchange
//	twist                     recursion twisting (asserts a regular space)
//	twist(flagged)            twisting with the Fig 6(b) flag protocol
//	stripmine(N)              the §7.1 cutoff, composed over a twist
//	inline(K)                 unroll the work-executing recursion K levels
//
// The four legacy variant names — original, interchanged (or interchange),
// twisted, twisted-cutoff[:N] — are accepted as terms and denote their
// canonical schedules (see FromVariant), so every nest.ParseVariant input is
// also a valid schedule expression. The result is canonical:
// ParseSchedule(s.String()) == s for every schedule s, and whitespace around
// terms is ignored.
func ParseSchedule(src string) (Schedule, error) {
	expr := strings.TrimSpace(src)
	if expr == "" {
		return Schedule{}, fmt.Errorf("algebra: empty schedule expression")
	}
	var ops []Transformation
	for _, term := range splitTerms(expr) {
		term = strings.TrimSpace(term)
		if term == "" {
			return Schedule{}, fmt.Errorf("algebra: empty term in schedule %q", src)
		}
		termOps, err := parseTerm(term)
		if err != nil {
			return Schedule{}, err
		}
		ops = append(ops, termOps...)
	}
	return New(ops...)
}

// MustParseSchedule is ParseSchedule that panics on error, for
// statically-known expressions.
func MustParseSchedule(src string) Schedule {
	s, err := ParseSchedule(src)
	if err != nil {
		panic(err)
	}
	return s
}

// splitTerms splits a schedule expression on the composition operator,
// accepting both ∘ and the ASCII "." (empty terms are kept so the caller
// can reject dangling operators).
func splitTerms(expr string) []string {
	return strings.Split(strings.ReplaceAll(expr, "∘", "."), ".")
}

// parseTerm parses one term into the transformation chain it denotes
// (outermost first; legacy names can denote more than one op).
func parseTerm(term string) ([]Transformation, error) {
	name, arg, hasArg := term, "", false
	if k := strings.IndexByte(term, '('); k >= 0 {
		if !strings.HasSuffix(term, ")") {
			return nil, fmt.Errorf("algebra: malformed term %q (missing closing parenthesis)", term)
		}
		name, arg, hasArg = strings.TrimSpace(term[:k]), strings.TrimSpace(term[k+1:len(term)-1]), true
	}
	switch name {
	case "identity", "original":
		if hasArg {
			return nil, fmt.Errorf("algebra: %s takes no argument", name)
		}
		return nil, nil
	case "interchange", "interchanged":
		if hasArg {
			return nil, fmt.Errorf("algebra: %s takes no argument", name)
		}
		return []Transformation{Interchange{}}, nil
	case "twist":
		switch arg {
		case "":
			if hasArg {
				return nil, fmt.Errorf("algebra: twist() takes either no argument or (flagged)")
			}
			return []Transformation{CodeMotion{}}, nil
		case "flagged":
			return []Transformation{CodeMotion{Flagged: true}}, nil
		}
		return nil, fmt.Errorf("algebra: bad twist argument %q (want twist or twist(flagged))", arg)
	case "stripmine":
		if !hasArg {
			return nil, fmt.Errorf("algebra: stripmine needs a cutoff argument, e.g. stripmine(64)")
		}
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("algebra: bad stripmine cutoff %q", arg)
		}
		return []Transformation{StripMine{Cutoff: n}}, nil
	case "inline":
		if !hasArg {
			return nil, fmt.Errorf("algebra: inline needs a depth argument, e.g. inline(2)")
		}
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("algebra: bad inline depth %q", arg)
		}
		return []Transformation{Inlining{Depth: n}}, nil
	}
	// Legacy spellings that are not bare identifiers ("twisted",
	// "twisted-cutoff[:N]") are parsed here against the canonical schedules
	// FromVariant assigns them; TestLegacyTermsMatchVariantGrammar pins the
	// two grammars together so they cannot drift apart.
	if !hasArg {
		if ops, ok, err := parseLegacyTerm(name); ok {
			return ops, err
		}
	}
	return nil, fmt.Errorf("algebra: unknown term %q (want identity, interchange, twist[(flagged)], stripmine(N), inline(K), or a legacy variant name)", term)
}

// parseLegacyTerm handles the colon-argument variant spellings of
// nest.Variant.String that parseTerm's switch does not: "twisted" denotes
// twist(flagged) and "twisted-cutoff[:N]" denotes stripmine(N)∘twist(flagged)
// (N defaults to 0, the bare §7.1 guard site). ok reports whether the term is
// a legacy spelling at all; err reports a malformed argument on one that is.
func parseLegacyTerm(term string) (ops []Transformation, ok bool, err error) {
	name, arg, hasArg := strings.Cut(term, ":")
	switch name {
	case "twisted":
		if hasArg {
			return nil, true, fmt.Errorf("algebra: term %q takes no argument (use twisted-cutoff:N)", term)
		}
		return []Transformation{CodeMotion{Flagged: true}}, true, nil
	case "twisted-cutoff":
		cutoff := 0
		if hasArg {
			n, aerr := strconv.Atoi(arg)
			if aerr != nil || n < 0 {
				return nil, true, fmt.Errorf("algebra: bad cutoff %q in term %q", arg, term)
			}
			cutoff = n
		}
		return []Transformation{StripMine{Cutoff: cutoff}, CodeMotion{Flagged: true}}, true, nil
	}
	return nil, false, nil
}
