package algebra

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"

	"twist/internal/depcheck"
	"twist/internal/nest"
	"twist/internal/transform"
)

// WitnessKind classifies a dependence witness by the schedule property it
// constrains (paper §3.3).
type WitnessKind int

const (
	// WitnessCrossColumn: a dependence between iterations in *different*
	// outer columns, (o,i) → (o',i'), o ≠ o'. The §3.3 sufficient condition
	// — a parallel outer recursion — fails, so any transformation that
	// reorders columns (interchange, twist) is illegal.
	WitnessCrossColumn WitnessKind = iota
	// WitnessOuterTrunc: the inner truncation decision at (o, i) depends on
	// the outer index, so columns o ≠ o' may disagree about truncating the
	// same inner node i. Row-major traversal over such a space needs the
	// Fig 6(b) truncation-flag protocol: an unflagged twist is illegal.
	WitnessOuterTrunc
	// WitnessColumnOrder: a dependence carried along one column,
	// (o,i) → (o,i'). Every transformation in the algebra preserves
	// per-column inner order (the §3.3 guarantee), so this witness is
	// recorded for the legality proof but never violated.
	WitnessColumnOrder
)

// String implements fmt.Stringer.
func (k WitnessKind) String() string {
	switch k {
	case WitnessCrossColumn:
		return "cross-column"
	case WitnessOuterTrunc:
		return "outer-dependent-truncation"
	case WitnessColumnOrder:
		return "column-order"
	}
	return "unknown"
}

// Witness is one dependence witness tuple: a pair of symbolic (or, for
// dynamic witnesses, concrete) iteration-space points with the evidence
// that relates them. A legality rejection returns the witness the schedule
// would violate.
type Witness struct {
	// Kind is the schedule property the witness constrains.
	Kind WitnessKind
	// Source and Sink are the two related iteration-space points, written
	// as tuples over the template's index names, e.g. "(o, i)" → "(o', i)".
	Source, Sink string
	// Evidence is what establishes the dependence: the offending statement
	// or truncation expression for static witnesses, the conflicting
	// location for dynamic ones.
	Evidence string
}

// String implements fmt.Stringer.
func (w Witness) String() string {
	return fmt.Sprintf("%s witness %s → %s: %s", w.Kind, w.Source, w.Sink, w.Evidence)
}

// WitnessSet is the dependence witnesses of one nested recursion, extracted
// from a parsed template (FromTemplate), an engine spec (FromSpec), or a
// dynamic dependence analysis (FromDependences).
type WitnessSet struct {
	list []Witness
}

// Add appends a witness.
func (ws *WitnessSet) Add(w Witness) { ws.list = append(ws.list, w) }

// Witnesses returns the witnesses in extraction order.
func (ws WitnessSet) Witnesses() []Witness { return ws.list }

// First returns the first witness of the given kind.
func (ws WitnessSet) First(k WitnessKind) (Witness, bool) {
	for _, w := range ws.list {
		if w.Kind == k {
			return w, true
		}
	}
	return Witness{}, false
}

// Violation is a legality rejection: the transformation of a schedule that
// would reorder across a dependence witness. It implements error, and the
// message spells out the witness rather than a bare "illegal".
type Violation struct {
	// Schedule is the rejected composition.
	Schedule Schedule
	// Op is the offending transformation within it.
	Op Transformation
	// Witness is the dependence witness the transformation would violate.
	Witness Witness
}

// Error implements error.
func (v *Violation) Error() string {
	switch v.Witness.Kind {
	case WitnessOuterTrunc:
		return fmt.Sprintf("algebra: schedule %v is illegal: %v without the truncation-flag protocol reorders an irregular space — %v; compose twist(flagged) instead", v.Schedule, v.Op, v.Witness)
	default:
		return fmt.Sprintf("algebra: schedule %v is illegal: %v reorders outer columns, violating the §3.3 criterion — %v", v.Schedule, v.Op, v.Witness)
	}
}

// Check evaluates the schedule against a witness set and returns the first
// violation, or nil when the composition is legal. The rules, from §3.3 and
// §4 of the paper:
//
//   - any column-reordering core (interchange or twist) is illegal when a
//     cross-column witness exists;
//   - an unflagged twist is illegal when an outer-dependent-truncation
//     witness exists (interchange and twist(flagged) carry the Fig 6(b)
//     protocol and remain legal);
//   - column-order witnesses are preserved by construction: every core
//     keeps each column's inner visits in order, and inlining does not
//     reorder at all.
func (s Schedule) Check(ws WitnessSet) *Violation {
	if s.core != coreIdentity {
		if w, ok := ws.First(WitnessCrossColumn); ok {
			var op Transformation = Interchange{}
			if s.core == coreTwist {
				op = CodeMotion{Flagged: s.flagged}
			}
			return &Violation{Schedule: s, Op: op, Witness: w}
		}
	}
	if s.core == coreTwist && !s.flagged {
		if w, ok := ws.First(WitnessOuterTrunc); ok {
			return &Violation{Schedule: s, Op: CodeMotion{}, Witness: w}
		}
	}
	return nil
}

// FromTemplate extracts the dependence witnesses of a parsed source
// template. Two sources:
//
//   - an outer-dependent inner truncation (Template.Irregular) yields an
//     OuterTrunc witness quoting the truncation expression;
//   - the work statements are scanned for plain assignments. A write
//     through the inner index (i.field = …) or to a package-level variable
//     is visible to every column and yields a CrossColumn witness; a write
//     through the outer index stays inside its column and yields a
//     ColumnOrder witness. Compound assignments (+=, |=, …), increments,
//     and writes to work-local variables are treated as commutative
//     reductions or private state and yield no witness, matching how the
//     paper (and internal/depcheck) discount reductions.
//
// Like the paper's tool, opaque calls in the work body are trusted — the
// annotation asserts their soundness; the dynamic analysis in
// internal/depcheck (see FromDependences) is the cross-check.
func FromTemplate(t *transform.Template) WitnessSet {
	var ws WitnessSet
	o, i := t.OName, t.IName
	if t.Irregular() {
		ws.Add(Witness{
			Kind:   WitnessOuterTrunc,
			Source: fmt.Sprintf("(%s, %s)", o, i),
			Sink:   fmt.Sprintf("(%s', %s)", o, i),
			Evidence: fmt.Sprintf("inner truncation depends on the outer index: `%s`",
				renderExpr(token.NewFileSet(), t.TruncInner2)),
		})
	}
	locals := workLocals(t.Work)
	for _, st := range t.Work {
		ast.Inspect(st, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				root, isBare := rootIdent(lhs)
				if root == "" || root == "_" || locals[root] {
					continue
				}
				if isBare && (root == o || root == i) {
					continue // rebinding a parameter: private state
				}
				switch root {
				case i:
					ws.Add(Witness{
						Kind:   WitnessCrossColumn,
						Source: fmt.Sprintf("(%s, %s)", o, i),
						Sink:   fmt.Sprintf("(%s', %s)", o, i),
						Evidence: fmt.Sprintf("work writes through the inner index, visible to every outer column: `%s`",
							renderStmt(st)),
					})
				case o:
					ws.Add(Witness{
						Kind:   WitnessColumnOrder,
						Source: fmt.Sprintf("(%s, %s)", o, i),
						Sink:   fmt.Sprintf("(%s, %s')", o, i),
						Evidence: fmt.Sprintf("work writes through the outer index; the column's inner order must be preserved: `%s`",
							renderStmt(st)),
					})
				default:
					ws.Add(Witness{
						Kind:   WitnessCrossColumn,
						Source: fmt.Sprintf("(%s, %s)", o, i),
						Sink:   fmt.Sprintf("(%s', %s')", o, i),
						Evidence: fmt.Sprintf("work overwrites shared state `%s`: `%s`",
							root, renderStmt(st)),
					})
				}
			}
			return true
		})
	}
	return ws
}

// ForNest returns the witness set of a well-formed engine spec: engine
// workloads honor the nest contract (columns independent up to commutative
// reductions), so the only static witness is the OuterTrunc one of an
// irregular space.
func ForNest(irregular bool) WitnessSet {
	var ws WitnessSet
	if irregular {
		ws.Add(Witness{
			Kind:     WitnessOuterTrunc,
			Source:   "(o, i)",
			Sink:     "(o', i)",
			Evidence: "Spec.TruncInner2 is set (outer-dependent truncation)",
		})
	}
	return ws
}

// FromSpec is ForNest for a concrete engine spec.
func FromSpec(s nest.Spec) WitnessSet { return ForNest(s.TruncInner2 != nil) }

// FromDependences converts a dynamic dependence analysis into witnesses:
// each sampled cross-column conflict becomes a concrete CrossColumn witness
// tuple, and an inner-carried result becomes a ColumnOrder witness. This is
// how a depcheck run certifies (or refutes) a schedule for a concrete
// input.
func FromDependences(r depcheck.Result) WitnessSet {
	var ws WitnessSet
	switch r.Kind {
	case depcheck.CrossColumn:
		for _, c := range r.Conflicts {
			ws.Add(Witness{
				Kind:     WitnessCrossColumn,
				Source:   fmt.Sprintf("(o=%d, ·)", c.FirstOuter),
				Sink:     fmt.Sprintf("(o=%d, ·)", c.SecondOuter),
				Evidence: c.String(),
			})
		}
		if len(r.Conflicts) == 0 {
			ws.Add(Witness{
				Kind:     WitnessCrossColumn,
				Source:   "(o, i)",
				Sink:     "(o', i')",
				Evidence: "dynamic analysis found a cross-column dependence (no sample retained)",
			})
		}
	case depcheck.InnerCarried:
		ws.Add(Witness{
			Kind:     WitnessColumnOrder,
			Source:   "(o, i)",
			Sink:     "(o, i')",
			Evidence: "dynamic analysis found inner-carried dependences",
		})
	}
	return ws
}

// workLocals collects the names a work body declares itself (:=, var);
// writes to them are private per iteration and carry no dependence.
func workLocals(work []ast.Stmt) map[string]bool {
	locals := map[string]bool{}
	for _, st := range work {
		ast.Inspect(st, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if v.Tok == token.DEFINE {
					for _, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							locals[id.Name] = true
						}
					}
				}
			case *ast.ValueSpec:
				for _, id := range v.Names {
					locals[id.Name] = true
				}
			case *ast.RangeStmt:
				if v.Tok == token.DEFINE {
					for _, e := range []ast.Expr{v.Key, v.Value} {
						if id, ok := e.(*ast.Ident); ok {
							locals[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return locals
}

// rootIdent unwraps an assignment target to its base identifier, reporting
// whether the target is the bare identifier itself (x = …) rather than a
// path through it (x.f = …, x[k] = …, *x = …).
func rootIdent(e ast.Expr) (name string, bare bool) {
	descended := false
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v.Name, !descended
		case *ast.SelectorExpr:
			e, descended = v.X, true
		case *ast.IndexExpr:
			e, descended = v.X, true
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e, descended = v.X, true
		default:
			return "", false
		}
	}
}

// renderExpr pretty-prints an expression against its file set.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return b.String()
}

// renderStmt pretty-prints a statement (template work statements carry no
// original positions, so a fresh file set suffices).
func renderStmt(st ast.Stmt) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, token.NewFileSet(), st); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return b.String()
}
