package algebra

import (
	"strings"
	"testing"
)

// FuzzParseSchedule: arbitrary input never panics, and anything the parser
// accepts must round-trip through Schedule.String — a schedule expression in
// a serve job, a -schedule flag, or a BENCH baseline stays stable across
// print/parse cycles. Accepted schedules must also be structurally sound
// (rebuilding from Ops succeeds and is a fixed point).
func FuzzParseSchedule(f *testing.F) {
	for _, s := range []string{
		"identity", "interchange", "twist", "twist(flagged)",
		"stripmine(64)∘twist(flagged)", "inline(2)∘stripmine(64)∘twist(flagged)",
		"interchange∘interchange", "interchange.twist(flagged)",
		"original", "twisted", "twisted-cutoff:64", "inline(1)∘twisted",
		"stripmine(64)", "twist∘", "twist(bogus)", "inline(99)", "", "∘",
		"stripmine(9999999999999999999)∘twist",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSchedule(src)
		if err != nil {
			// Errors must identify themselves as schedule errors.
			if !strings.Contains(err.Error(), "algebra:") {
				t.Fatalf("ParseSchedule(%q) error %q lacks the algebra: prefix", src, err)
			}
			return
		}
		rt, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("ParseSchedule(%q) = %v, but its String %q does not reparse: %v", src, s, s, err)
		}
		if rt != s {
			t.Fatalf("ParseSchedule(%q) = %v, round-trips to %v", src, s, rt)
		}
		if rebuilt, err := New(s.Ops()...); err != nil || rebuilt != s {
			t.Fatalf("New(%v.Ops()) = %v, %v", s, rebuilt, err)
		}
	})
}
