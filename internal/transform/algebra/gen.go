package algebra

import (
	"fmt"

	"twist/internal/nest"
	"twist/internal/transform"
)

// GenerateSchedules is schedule-driven code generation: it checks every
// requested schedule for legality against the witnesses extracted from the
// template (FromTemplate) and emits the corresponding variants. A nil or
// empty list selects the three legacy families, making the output
// byte-identical to transform.Generate; schedules without Inlining lower
// onto the legacy families byte-identically too. The identity schedule is
// rejected (the input template already is that schedule), and an illegal
// schedule returns its *Violation as the error — the violated dependence
// witness, not just a refusal.
func GenerateSchedules(t *transform.Template, scheds []Schedule) ([]byte, error) {
	if len(scheds) == 0 {
		scheds = []Schedule{
			MustNew(Interchange{}),
			MustNew(CodeMotion{Flagged: true}),
			MustNew(StripMine{Cutoff: 0}, CodeMotion{Flagged: true}),
		}
	}
	ws := FromTemplate(t)
	var variants []nest.Variant
	var inline []transform.InlineRequest
	for _, s := range scheds {
		if v := s.Check(ws); v != nil {
			return nil, v
		}
		lowered := s.Variant()
		if s.InlineDepth() == 0 {
			if lowered.Kind == nest.KindOriginal {
				return nil, fmt.Errorf("algebra: %q is the input schedule; nothing to generate", s)
			}
			variants = append(variants, lowered)
			continue
		}
		fam, err := inlineFamily(lowered)
		if err != nil {
			return nil, err
		}
		inline = append(inline, transform.InlineRequest{Family: fam, Depth: s.InlineDepth()})
	}
	return transform.GenerateWithInline(t, variants, inline)
}

// inlineFamily maps a lowered engine variant onto the generator's inline
// family.
func inlineFamily(v nest.Variant) (transform.InlineFamily, error) {
	switch v.Kind {
	case nest.KindOriginal:
		return transform.InlineOriginal, nil
	case nest.KindInterchanged:
		return transform.InlineInterchanged, nil
	case nest.KindTwisted:
		return transform.InlineTwisted, nil
	case nest.KindTwistedCutoff:
		return transform.InlineTwistedCutoff, nil
	}
	return 0, fmt.Errorf("algebra: unknown variant kind %d", v.Kind)
}
