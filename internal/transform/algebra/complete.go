package algebra

import "sort"

// CompleteOptions bounds the catalog Complete draws extensions from. The
// algebra's canonical space is finite only up to the parameter choices, so
// completion enumerates over a caller-supplied (or default) grid.
type CompleteOptions struct {
	// Cutoffs are the StripMine cutoffs to consider. Default {0, 64}: the
	// bare §7.1 guard site and the paper's tuned cutoff.
	Cutoffs []int
	// MaxInline is the largest Inlining depth to consider. The zero value
	// means the default of 2; a negative value disables inlining extensions.
	MaxInline int
}

// defaults fills in the default catalog.
func (o CompleteOptions) defaults() CompleteOptions {
	if o.Cutoffs == nil {
		o.Cutoffs = []int{0, 64}
	}
	if o.MaxInline == 0 {
		o.MaxInline = 2
	} else if o.MaxInline < 0 {
		o.MaxInline = 0
	}
	return o
}

// Complete extends a partial schedule to every legal completion: the set of
// canonical schedules reachable by composing catalog transformations over
// (outside) partial that pass the legality check against ws. The partial
// schedule itself is included when legal. Completion works up to
// normalization, so a composition may cancel an orientation core
// (interchange∘interchange = identity): an illegal interchange partial still
// completes to its cancellations, while a twist core — which no catalog
// transformation removes — restricts completions to twists. Results are
// deterministic: duplicates collapse through normalization and the slice is
// sorted canonically (identity < interchange < twist cores, then by flag,
// cutoff, and inline depth).
func Complete(partial Schedule, ws WitnessSet, opts CompleteOptions) []Schedule {
	opts = opts.defaults()
	var catalog []Transformation
	catalog = append(catalog, Interchange{}, CodeMotion{}, CodeMotion{Flagged: true})
	for _, c := range opts.Cutoffs {
		catalog = append(catalog, StripMine{Cutoff: c})
	}
	if opts.MaxInline > 0 {
		catalog = append(catalog, Inlining{Depth: 1})
	}

	seen := map[Schedule]bool{partial: true}
	frontier := []Schedule{partial}
	for len(frontier) > 0 {
		var next []Schedule
		for _, s := range frontier {
			for _, op := range catalog {
				ext, err := s.apply(op)
				if err != nil || ext.InlineDepth() > opts.MaxInline || seen[ext] {
					continue
				}
				seen[ext] = true
				next = append(next, ext)
			}
		}
		frontier = next
	}

	var legal []Schedule
	for s := range seen {
		if s.Check(ws) == nil {
			legal = append(legal, s)
		}
	}
	sort.Slice(legal, func(a, b int) bool { return scheduleLess(legal[a], legal[b]) })
	return legal
}

// scheduleLess is the canonical enumeration order.
func scheduleLess(a, b Schedule) bool {
	if a.core != b.core {
		return a.core < b.core
	}
	if a.flagged != b.flagged {
		return !a.flagged
	}
	if a.strip != b.strip {
		return !a.strip
	}
	if a.cutoff != b.cutoff {
		return a.cutoff < b.cutoff
	}
	return a.inline < b.inline
}
