package algebra

import (
	"testing"

	"twist/internal/nest"
)

// contains reports whether scheds includes the schedule denoted by expr.
func contains(scheds []Schedule, expr string) bool {
	want := MustParseSchedule(expr)
	for _, s := range scheds {
		if s == want {
			return true
		}
	}
	return false
}

// Completing the identity over a regular space reaches every core, both
// cutoffs, and inlined forms — and nothing illegal.
func TestCompleteRegular(t *testing.T) {
	t.Parallel()
	scheds := Complete(Identity(), ForNest(false), CompleteOptions{})
	for _, expr := range []string{
		"identity",
		"interchange",
		"twist",
		"twist(flagged)",
		"stripmine(0)∘twist(flagged)",
		"stripmine(64)∘twist",
		"inline(2)∘stripmine(64)∘twist(flagged)",
		"inline(1)∘interchange",
	} {
		if !contains(scheds, expr) {
			t.Errorf("completion missing %s", expr)
		}
	}
	ws := ForNest(false)
	for _, s := range scheds {
		if v := s.Check(ws); v != nil {
			t.Errorf("completion emitted illegal schedule %v: %v", s, v)
		}
		if s.InlineDepth() > 2 {
			t.Errorf("completion exceeded default MaxInline: %v", s)
		}
	}
}

// On an irregular space the unflagged twists drop out; flagged twists,
// interchange, and identity remain.
func TestCompleteIrregular(t *testing.T) {
	t.Parallel()
	ws := ForNest(true)
	scheds := Complete(Identity(), ws, CompleteOptions{})
	for _, s := range scheds {
		if v := s.Check(ws); v != nil {
			t.Errorf("completion emitted illegal schedule %v: %v", s, v)
		}
	}
	for _, expr := range []string{"identity", "interchange", "twist(flagged)", "stripmine(64)∘twist(flagged)"} {
		if !contains(scheds, expr) {
			t.Errorf("completion missing %s", expr)
		}
	}
	for _, expr := range []string{"twist", "stripmine(64)∘twist"} {
		if contains(scheds, expr) {
			t.Errorf("completion includes illegal %s", expr)
		}
	}
}

// An illegal interchange partial completes only through cancellation
// (interchange∘interchange = identity): no completion keeps a reordering
// core. An illegal twist partial — whose core nothing cancels — has no
// legal completions at all.
func TestCompleteIllegalPartial(t *testing.T) {
	t.Parallel()
	var ws WitnessSet
	ws.Add(Witness{Kind: WitnessCrossColumn, Source: "(o, i)", Sink: "(o', i')", Evidence: "test"})
	got := Complete(MustParseSchedule("interchange"), ws, CompleteOptions{})
	if !contains(got, "identity") {
		t.Error("cancellation completion identity missing")
	}
	for _, s := range got {
		if s.Check(ws) != nil {
			t.Errorf("illegal completion %v", s)
		}
		if s.Variant().Kind != nest.KindOriginal {
			t.Errorf("completion %v kept a reordering core", s)
		}
	}
	if got := Complete(MustParseSchedule("twist(flagged)"), ws, CompleteOptions{}); len(got) != 0 {
		t.Fatalf("illegal twist partial completed to %v", got)
	}
}

// Completion respects a custom catalog and includes the partial itself.
func TestCompleteOptions(t *testing.T) {
	t.Parallel()
	partial := MustParseSchedule("twist(flagged)")
	scheds := Complete(partial, ForNest(true), CompleteOptions{Cutoffs: []int{17}, MaxInline: -1})
	if !contains(scheds, "twist(flagged)") {
		t.Error("completion dropped the legal partial itself")
	}
	if !contains(scheds, "stripmine(17)∘twist(flagged)") {
		t.Error("completion ignored the custom cutoff")
	}
	for _, s := range scheds {
		if s.InlineDepth() != 0 {
			t.Errorf("MaxInline<0 still produced inlined schedule %v", s)
		}
		// A twist core is never cancelled: every completion stays a twist.
		if k := s.Variant().Kind; k != nest.KindTwisted && k != nest.KindTwistedCutoff {
			t.Errorf("completion %v lost the twist core", s)
		}
	}
}
