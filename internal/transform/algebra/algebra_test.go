package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twist/internal/nest"
)

// The four legacy variants must be expressible as schedules, round-trip
// through FromVariant/Variant, and print their canonical forms.
func TestLegacyVariantSchedules(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    nest.Variant
		want string
	}{
		{nest.Original(), "identity"},
		{nest.Interchanged(), "interchange"},
		{nest.Twisted(), "twist(flagged)"},
		{nest.TwistedCutoff(0), "stripmine(0)∘twist(flagged)"},
		{nest.TwistedCutoff(64), "stripmine(64)∘twist(flagged)"},
	}
	for _, c := range cases {
		s, err := FromVariant(c.v)
		if err != nil {
			t.Fatalf("FromVariant(%v): %v", c.v, err)
		}
		if got := s.String(); got != c.want {
			t.Errorf("FromVariant(%v).String() = %q, want %q", c.v, got, c.want)
		}
		if got := s.Variant(); got != c.v {
			t.Errorf("FromVariant(%v).Variant() = %v", c.v, got)
		}
		// The legacy name itself must parse to the same schedule.
		rt, err := ParseSchedule(c.v.String())
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", c.v, err)
		}
		if rt != s {
			t.Errorf("ParseSchedule(%q) = %v, want %v", c.v, rt, s)
		}
	}
}

// Normalization laws of the algebra.
func TestNormalization(t *testing.T) {
	t.Parallel()
	cases := []struct {
		ops  []Transformation
		want string
	}{
		{nil, "identity"},
		{[]Transformation{Interchange{}, Interchange{}}, "identity"},
		{[]Transformation{Interchange{}, Interchange{}, Interchange{}}, "interchange"},
		// Twist absorbs orientation flips on either side.
		{[]Transformation{Interchange{}, CodeMotion{Flagged: true}}, "twist(flagged)"},
		{[]Transformation{CodeMotion{}, Interchange{}}, "twist"},
		// Flaggedness is sticky across merged twists.
		{[]Transformation{CodeMotion{}, CodeMotion{Flagged: true}}, "twist(flagged)"},
		{[]Transformation{CodeMotion{Flagged: true}, CodeMotion{}}, "twist(flagged)"},
		// Strip mines merge to the larger cutoff; inline depths add.
		{[]Transformation{StripMine{Cutoff: 8}, StripMine{Cutoff: 64}, CodeMotion{}}, "stripmine(64)∘twist"},
		{[]Transformation{StripMine{Cutoff: 64}, StripMine{Cutoff: 8}, CodeMotion{}}, "stripmine(64)∘twist"},
		{[]Transformation{Inlining{Depth: 1}, Inlining{Depth: 2}, CodeMotion{Flagged: true}}, "inline(3)∘twist(flagged)"},
		{[]Transformation{Inlining{Depth: 2}}, "inline(2)"},
	}
	for _, c := range cases {
		s, err := New(c.ops...)
		if err != nil {
			t.Fatalf("New(%v): %v", c.ops, err)
		}
		if got := s.String(); got != c.want {
			t.Errorf("New(%v) = %q, want %q", c.ops, got, c.want)
		}
		// Canonical form is a fixed point: rebuilding from Ops is identity.
		rt, err := New(s.Ops()...)
		if err != nil || rt != s {
			t.Errorf("New(%v.Ops()) = %v, %v; want %v", s, rt, err, s)
		}
	}
}

// A pure-inline schedule prints without an explicit identity term; its
// String output must still round-trip.
func TestPureInlineString(t *testing.T) {
	t.Parallel()
	s := MustNew(Inlining{Depth: 2})
	got := s.String()
	rt, err := ParseSchedule(got)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", got, err)
	}
	if rt != s {
		t.Fatalf("round-trip of %q: got %v", got, rt)
	}
}

// Structural errors are not legality violations: they come from malformed
// chains regardless of any witness set.
func TestStructuralErrors(t *testing.T) {
	t.Parallel()
	for _, ops := range [][]Transformation{
		{StripMine{Cutoff: 64}},                  // no twist to bound
		{StripMine{Cutoff: 64}, Interchange{}},   // interchange core
		{CodeMotion{}, StripMine{Cutoff: 64}},    // stripmine applies before the twist exists
		{Inlining{Depth: 0}},                     // zero depth
		{Inlining{Depth: MaxInlineDepth + 1}},    // over the cap
		{Inlining{Depth: 5}, Inlining{Depth: 5}}, // sums over the cap
		{StripMine{Cutoff: -1}, CodeMotion{}},    // negative cutoff
	} {
		if _, err := New(ops...); err == nil {
			t.Errorf("New(%v) unexpectedly succeeded", ops)
		}
	}
}

// Compose must agree with New on concatenated chains and verify
// associativity on randomly generated operand splits.
func TestComposeAssociativity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	randSchedule := func() Schedule {
		var ops []Transformation
		// Build a structurally valid chain: start from a random core.
		switch rng.Intn(3) {
		case 1:
			ops = append(ops, Interchange{})
		case 2:
			ops = append(ops, CodeMotion{Flagged: rng.Intn(2) == 0})
		}
		if len(ops) > 0 {
			if _, isTwist := ops[0].(CodeMotion); isTwist && rng.Intn(2) == 0 {
				ops = append([]Transformation{StripMine{Cutoff: rng.Intn(128)}}, ops...)
			}
		}
		if rng.Intn(3) == 0 {
			ops = append([]Transformation{Inlining{Depth: 1 + rng.Intn(2)}}, ops...)
		}
		return MustNew(ops...)
	}
	for trial := 0; trial < 500; trial++ {
		parts := make([]Schedule, 2+rng.Intn(3))
		for k := range parts {
			parts[k] = randSchedule()
		}
		got, err := Compose(parts...)
		if err != nil {
			t.Fatalf("Compose(%v): %v", parts, err)
		}
		var ops []Transformation
		for _, p := range parts {
			ops = append(ops, p.Ops()...)
		}
		want, err := New(ops...)
		if err != nil {
			t.Fatalf("New(concat %v): %v", parts, err)
		}
		if got != want {
			t.Fatalf("Compose(%v) = %v, want %v", parts, got, want)
		}
	}
}

// Quick-check: lowering any inline-free schedule to a variant and lifting
// it back is the identity (the four canonical schedules are a bijection
// with the legacy enum).
func TestQuickVariantBijection(t *testing.T) {
	t.Parallel()
	prop := func(kind uint8, cutoff uint16) bool {
		v := nest.Variant{Kind: nest.VariantKind(kind % 4)}
		if v.Kind == nest.KindTwistedCutoff {
			v.Cutoff = int32(cutoff)
		}
		s, err := FromVariant(v)
		return err == nil && s.Variant() == v && s.InlineDepth() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
