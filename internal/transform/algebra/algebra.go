// Package algebra is the composable schedule algebra over the nested
// recursion template: the general form of the paper's fixed schedule menu,
// after "Composable, Sound Transformations of Nested Recursion and Loops"
// (PolyRec, PLDI 2019).
//
// The unit of composition is a Transformation — CodeMotion (recursion
// twisting), Interchange, StripMine (the §7.1 cutoff), and Inlining — and a
// Schedule is a composition of transformations, written outermost first with
// the ∘ operator, e.g.
//
//	inline(2)∘stripmine(64)∘twist(flagged)
//
// Compose normalizes every composition into a canonical form
//
//	[inline(k) ∘] [stripmine(c) ∘] core
//
// with core one of identity, interchange, twist, or twist(flagged); the
// normalization rules (see apply) make composition associative, which
// Compose verifies on each call. ParseSchedule and Schedule.String
// round-trip the canonical form and also accept the four legacy variant
// names, each of which is exactly one canonical schedule:
//
//	original          = identity
//	interchanged      = interchange
//	twisted           = twist(flagged)
//	twisted-cutoff:N  = stripmine(N)∘twist(flagged)
//
// Legality is checked against dependence witnesses (see WitnessSet): a
// rejected composition returns the violated witness, not just false, and
// Complete enumerates every legal completion of a partial schedule.
// Schedules with no Inlining lower exactly onto the engine's nest.Variant
// (Schedule.Variant); Inlining changes generated code only
// (GenerateSchedules), never the visit order.
package algebra

import (
	"fmt"
	"math"
	"strings"

	"twist/internal/nest"
)

// MaxInlineDepth bounds the total Inlining depth of a schedule: unrolling
// the inner recursion k levels multiplies the generated work body 2^k-fold,
// so the algebra refuses depths with no plausible payoff.
const MaxInlineDepth = 8

// Transformation is one schedulable rewrite of the nested recursion. The
// concrete types are CodeMotion, Interchange, StripMine, and Inlining; the
// set is closed (sealed by isTransformation), which is what lets the
// normalizer enumerate every composition shape.
type Transformation interface {
	fmt.Stringer
	isTransformation()
}

// Interchange is recursion interchange (paper §3, Fig 3): the outer
// recursion traverses the inner tree and vice versa, turning the
// column-by-column schedule row-by-row. Interchange is an involution —
// interchange∘interchange = identity — and is absorbed by CodeMotion, which
// already re-decides orientation at every step.
type Interchange struct{}

func (Interchange) String() string    { return "interchange" }
func (Interchange) isTransformation() {}

// CodeMotion is recursion twisting (paper §4, Fig 4a): the code-motion
// transformation that switches orientation whenever the remaining outer
// subtree is no larger than the tree held by the inner recursion. Flagged
// composes the Fig 6(b) truncation-flag protocol over the twist; a plain
// (unflagged) twist asserts the iteration space is regular and is illegal —
// with an OuterTrunc witness — when the inner truncation depends on the
// outer index.
type CodeMotion struct {
	// Flagged enables the truncation-flag protocol for irregular spaces.
	Flagged bool
}

func (c CodeMotion) String() string {
	if c.Flagged {
		return "twist(flagged)"
	}
	return "twist"
}
func (CodeMotion) isTransformation() {}

// StripMine bounds a twist with the §7.1 cutoff: orientation only switches
// while the inner recursion's tree is larger than Cutoff, shedding
// bookkeeping on the small-subproblem fringe. StripMine is only meaningful
// over a CodeMotion core — composing it over identity or interchange is a
// structural error — and two strip mines merge to the larger cutoff.
type StripMine struct {
	// Cutoff is the inner-subtree size below which twisting stops (>= 0).
	Cutoff int
}

func (s StripMine) String() string { return fmt.Sprintf("stripmine(%d)", s.Cutoff) }
func (StripMine) isTransformation() {}

// Inlining unrolls the recursion that executes the work Depth levels per
// call, amortizing call and truncation-test overhead. It is a pure
// code-generation transformation: the visit order — and therefore the
// engine lowering Schedule.Variant — is unchanged, so Inlining is always
// legal. Depths of consecutive inlinings add.
type Inlining struct {
	// Depth is the number of unrolled levels, 1..MaxInlineDepth.
	Depth int
}

func (i Inlining) String() string { return fmt.Sprintf("inline(%d)", i.Depth) }
func (Inlining) isTransformation() {}

// coreKind is the reordering core of a canonical schedule.
type coreKind int8

const (
	coreIdentity coreKind = iota
	coreInterchange
	coreTwist
)

// Schedule is a normalized composition of transformations. The zero value
// is the identity schedule; values are comparable, and two schedules are
// equal exactly when they denote the same canonical composition. Build one
// with New, Compose, ParseSchedule, or FromVariant.
type Schedule struct {
	core    coreKind
	flagged bool  // coreTwist: the Fig 6(b) flag protocol is composed over the twist
	strip   bool  // coreTwist: a StripMine bounds the twist
	cutoff  int32 // strip: the merged (maximum) cutoff
	inline  int32 // total Inlining depth (0 = none)
}

// Identity returns the identity schedule (the original program order).
func Identity() Schedule { return Schedule{} }

// New builds the canonical schedule denoted by the composition
// ops[0]∘ops[1]∘…∘ops[n-1] (outermost first: the last op applies first).
// It returns a structural error — distinct from a legality Violation — when
// the chain is malformed: a StripMine with no CodeMotion under it, an
// Inlining depth outside 1..MaxInlineDepth, or a cutoff outside 0..2^31-1.
func New(ops ...Transformation) (Schedule, error) {
	s := Schedule{}
	for k := len(ops) - 1; k >= 0; k-- {
		var err error
		if s, err = s.apply(ops[k]); err != nil {
			return Schedule{}, err
		}
	}
	return s, nil
}

// MustNew is New that panics on error, for statically-known compositions.
func MustNew(ops ...Transformation) Schedule {
	s, err := New(ops...)
	if err != nil {
		panic(err)
	}
	return s
}

// apply composes op over (outside) the already-built schedule s,
// normalizing as it goes. The rules:
//
//   - interchange toggles identity↔interchange and is absorbed by a twist
//     core (twisting re-decides orientation at every recursive step, with
//     the entry orientation pinned to the template's, so composing a fixed
//     orientation flip over it denotes the same schedule);
//   - twist replaces either orientation core, and flaggedness is sticky:
//     once any twist in the chain carries the flag protocol, the canonical
//     form does;
//   - stripmine requires a twist core and merges by maximum cutoff;
//   - inline depths add, bounded by MaxInlineDepth.
func (s Schedule) apply(op Transformation) (Schedule, error) {
	switch t := op.(type) {
	case Interchange:
		if s.core == coreTwist {
			return s, nil // absorbed
		}
		if s.core == coreInterchange {
			s.core = coreIdentity
		} else {
			s.core = coreInterchange
		}
	case CodeMotion:
		s.core = coreTwist
		s.flagged = s.flagged || t.Flagged
	case StripMine:
		if t.Cutoff < 0 || t.Cutoff > math.MaxInt32 {
			return Schedule{}, fmt.Errorf("algebra: stripmine cutoff %d out of range 0..%d", t.Cutoff, math.MaxInt32)
		}
		if s.core != coreTwist {
			return Schedule{}, fmt.Errorf("algebra: %v must compose over a twist core (it bounds the twist's orientation switching); compose it over twist or twist(flagged)", t)
		}
		s.strip = true
		if int32(t.Cutoff) > s.cutoff {
			s.cutoff = int32(t.Cutoff)
		}
	case Inlining:
		if t.Depth < 1 || t.Depth > MaxInlineDepth {
			return Schedule{}, fmt.Errorf("algebra: inline depth %d out of range 1..%d", t.Depth, MaxInlineDepth)
		}
		if int(s.inline)+t.Depth > MaxInlineDepth {
			return Schedule{}, fmt.Errorf("algebra: total inline depth %d exceeds the limit %d", int(s.inline)+t.Depth, MaxInlineDepth)
		}
		s.inline += int32(t.Depth)
	default:
		return Schedule{}, fmt.Errorf("algebra: unknown transformation %T", op)
	}
	return s, nil
}

// Compose returns the composition parts[0]∘parts[1]∘…∘parts[n-1] (outermost
// first). Normalization makes composition associative; Compose checks the
// law on its operands — folding the parts left- and right-associated must
// produce the same canonical schedule — and reports an internal error if
// the normalizer ever breaks it. Structural errors (e.g. a part-boundary
// StripMine landing on a non-twist core) surface like New's.
func Compose(parts ...Schedule) (Schedule, error) {
	if len(parts) == 0 {
		return Schedule{}, nil
	}
	pair := func(a, b Schedule) (Schedule, error) {
		return New(append(a.Ops(), b.Ops()...)...)
	}
	// Left-associated fold: ((p0∘p1)∘p2)∘…
	left := parts[0]
	for _, p := range parts[1:] {
		var err error
		if left, err = pair(left, p); err != nil {
			return Schedule{}, err
		}
	}
	// Right-associated fold: p0∘(p1∘(p2∘…)).
	right := parts[len(parts)-1]
	for k := len(parts) - 2; k >= 0; k-- {
		var err error
		if right, err = pair(parts[k], right); err != nil {
			return Schedule{}, err
		}
	}
	if left != right {
		return Schedule{}, fmt.Errorf("algebra: composition is not associative: %v vs %v (normalizer bug)", left, right)
	}
	return left, nil
}

// Ops returns the canonical transformation chain, outermost first:
// [Inlining,] [StripMine,] core. The identity schedule returns nil.
// New(s.Ops()...) reproduces s exactly.
func (s Schedule) Ops() []Transformation {
	var ops []Transformation
	if s.inline > 0 {
		ops = append(ops, Inlining{Depth: int(s.inline)})
	}
	if s.strip {
		ops = append(ops, StripMine{Cutoff: int(s.cutoff)})
	}
	switch s.core {
	case coreInterchange:
		ops = append(ops, Interchange{})
	case coreTwist:
		ops = append(ops, CodeMotion{Flagged: s.flagged})
	}
	return ops
}

// String renders the canonical form, terms joined by ∘ and outermost first;
// the identity schedule prints as "identity". The output round-trips
// through ParseSchedule.
func (s Schedule) String() string {
	ops := s.Ops()
	if len(ops) == 0 {
		return "identity"
	}
	parts := make([]string, len(ops))
	for k, op := range ops {
		parts[k] = op.String()
	}
	return strings.Join(parts, "∘")
}

// InlineDepth reports the schedule's total Inlining depth (0 = none).
func (s Schedule) InlineDepth() int { return int(s.inline) }

// Variant lowers the schedule onto the engine's four canonical schedules.
// Inlining is dropped: it changes generated code, not the visit order, so
// the lowering is exact for engine purposes. The mapping is the inverse of
// FromVariant on inline-free schedules.
func (s Schedule) Variant() nest.Variant {
	switch {
	case s.core == coreTwist && s.strip:
		return nest.TwistedCutoff(int(s.cutoff))
	case s.core == coreTwist:
		return nest.Twisted()
	case s.core == coreInterchange:
		return nest.Interchanged()
	}
	return nest.Original()
}

// FromVariant expresses a legacy engine variant as its canonical schedule:
// original = identity, interchanged = interchange, twisted = twist(flagged),
// twisted-cutoff:N = stripmine(N)∘twist(flagged). The engine variants always
// carry the truncation-flag protocol on irregular spaces, which is why the
// twisting variants map to the flagged twist.
func FromVariant(v nest.Variant) (Schedule, error) {
	switch v.Kind {
	case nest.KindOriginal:
		return Schedule{}, nil
	case nest.KindInterchanged:
		return Schedule{core: coreInterchange}, nil
	case nest.KindTwisted:
		return Schedule{core: coreTwist, flagged: true}, nil
	case nest.KindTwistedCutoff:
		return Schedule{core: coreTwist, flagged: true, strip: true, cutoff: v.Cutoff}, nil
	}
	return Schedule{}, fmt.Errorf("algebra: unknown variant kind %d", v.Kind)
}
