package algebra

import (
	"bytes"
	"errors"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twist/internal/nest"
	"twist/internal/transform"
)

// The four legacy variants expressed as schedules must generate code
// byte-identical to the enum-driven generator — the redesign changes the
// API, not one byte of output.
func TestGenerateSchedulesByteIdentity(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name, guard string
	}{
		{"regular", "i == nil"},
		{"irregular", "i == nil || prune(o, i)"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tmpl := parseTemplate(t, templateSrc(tc.guard, "work(o, i)"))
			legacy, err := transform.Generate(tmpl)
			if err != nil {
				t.Fatal(err)
			}

			// Default invocation: nil schedules means the legacy families.
			got, err := GenerateSchedules(tmpl, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, legacy) {
				t.Error("GenerateSchedules(nil) differs from transform.Generate")
			}

			// The same families spelled as schedule expressions.
			scheds := []Schedule{
				MustParseSchedule("interchanged"),
				MustParseSchedule("twisted"),
				MustParseSchedule("twisted-cutoff"),
			}
			got, err = GenerateSchedules(tmpl, scheds)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, legacy) {
				t.Error("GenerateSchedules(legacy schedules) differs from transform.Generate")
			}

			// And per-variant: each schedule alone matches GenerateVariants.
			for _, s := range scheds {
				want, err := transform.GenerateVariants(tmpl, []nest.Variant{s.Variant()})
				if err != nil {
					t.Fatal(err)
				}
				got, err := GenerateSchedules(tmpl, []Schedule{s})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("GenerateSchedules(%v) differs from GenerateVariants(%v)", s, s.Variant())
				}
			}
		})
	}
}

// Inline schedules emit Inline-suffixed drivers that parse and contain the
// unrolled work at the requested depth.
func TestGenerateSchedulesInline(t *testing.T) {
	t.Parallel()
	tmpl := parseTemplate(t, templateSrc("i == nil", "work(o, i)"))
	out, err := GenerateSchedules(tmpl, []Schedule{MustParseSchedule("inline(2)∘twist(flagged)")})
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	for _, want := range []string{"OuterTwistedInline2", "InnerInline2", "work(o, i)"} {
		if !strings.Contains(src, want) {
			t.Errorf("inline output missing %q", want)
		}
	}
	// Depth 2 unrolls the binary inner recursion into 4 leaf recursive calls
	// per driver body; the work call appears at every unrolled level.
	if n := strings.Count(src, "work(o, i)"); n < 3 {
		t.Errorf("inline(2) output has %d work sites, want >= 3", n)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "gen.go", out, 0); err != nil {
		t.Fatalf("inline output does not parse: %v", err)
	}

	// Mixing legacy and inline schedules keeps the legacy text intact.
	mixed, err := GenerateSchedules(tmpl, []Schedule{
		MustParseSchedule("twisted"),
		MustParseSchedule("inline(1)∘interchange"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OuterTwisted(", "OuterSwappedInline1"} {
		if !strings.Contains(string(mixed), want) {
			t.Errorf("mixed output missing %q", want)
		}
	}
}

// The identity schedule is rejected — the input template is already that
// schedule — and illegal schedules return the concrete *Violation.
func TestGenerateSchedulesRejections(t *testing.T) {
	t.Parallel()
	regular := parseTemplate(t, templateSrc("i == nil", "work(o, i)"))
	if _, err := GenerateSchedules(regular, []Schedule{Identity()}); err == nil {
		t.Error("identity schedule accepted")
	} else if !strings.Contains(err.Error(), "nothing to generate") {
		t.Errorf("identity rejection %q", err)
	}

	irregular := parseTemplate(t, templateSrc("i == nil || prune(o, i)", "work(o, i)"))
	_, err := GenerateSchedules(irregular, []Schedule{MustParseSchedule("twist")})
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("illegal schedule error %v is not a *Violation", err)
	}
	if v.Witness.Kind != WitnessOuterTrunc {
		t.Errorf("violation witness %v, want OuterTrunc", v.Witness.Kind)
	}

	// Inlining on an irregular template is a generator limitation surfaced
	// as an error (unrolling through the flag protocol is not implemented).
	if _, err := GenerateSchedules(irregular, []Schedule{MustParseSchedule("inline(1)∘twist(flagged)")}); err == nil {
		t.Error("inline on irregular template accepted")
	}
}

// The committed example corpus includes one schedule-expression product:
// examples/transform/join_inline.go must stay in sync with what
// GenerateSchedules emits for inline(2)∘twist(flagged) — the algebra
// counterpart of the transform package's TestExampleCorpusInSync.
func TestExampleInlineCorpusInSync(t *testing.T) {
	t.Parallel()
	dir := filepath.Join("..", "..", "..", "examples", "transform")
	src, err := os.ReadFile(filepath.Join(dir, "join.go"))
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := transform.ParseFile("join.go", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateSchedules(tmpl, []Schedule{MustParseSchedule("inline(2)∘twist(flagged)")})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "join_inline.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("join_inline.go out of sync with cmd/twist output; regenerate with:\n  go run ./cmd/twist -in examples/transform/join.go -out examples/transform/join_inline.go -schedules 'inline(2)∘twist(flagged)'")
	}
}
