package algebra

import (
	"strings"
	"testing"

	"twist/internal/depcheck"
	"twist/internal/nest"
	"twist/internal/transform"
	"twist/internal/tree"
)

// parseTemplate parses a template source, failing the test on error.
func parseTemplate(t *testing.T, src string) *transform.Template {
	t.Helper()
	tmpl, err := transform.ParseFile("test.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// templateSrc builds a two-function template with the given inner guard and
// work statement.
func templateSrc(innerGuard, work string) string {
	return `package p

//twist:outer
func Outer(o *Node, i *Node) {
	if o == nil {
		return
	}
	Inner(o, i)
	Outer(o.Left, i)
	Outer(o.Right, i)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if ` + innerGuard + ` {
		return
	}
	` + work + `
	Inner(o, i.Left)
	Inner(o, i.Right)
}
`
}

// Illegal composition 1: an unflagged twist over an irregular space. The
// violation must carry the outer-dependent-truncation witness quoting the
// truncation expression, not a bare refusal.
func TestUnflaggedTwistOnIrregularSpace(t *testing.T) {
	t.Parallel()
	tmpl := parseTemplate(t, templateSrc("i == nil || prune(o, i)", "work(o, i)"))
	ws := FromTemplate(tmpl)
	if _, ok := ws.First(WitnessOuterTrunc); !ok {
		t.Fatal("no OuterTrunc witness extracted from irregular template")
	}

	v := MustParseSchedule("twist").Check(ws)
	if v == nil {
		t.Fatal("unflagged twist accepted on an irregular space")
	}
	msg := v.Error()
	for _, want := range []string{
		"truncation-flag protocol",
		"outer-dependent-truncation witness",
		"prune(o, i)",
		"compose twist(flagged) instead",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation %q missing %q", msg, want)
		}
	}

	// Illegal composition 2: strip mining does not launder the missing flag
	// protocol — stripmine(64)∘twist is just as illegal.
	if v := MustParseSchedule("stripmine(64)∘twist").Check(ws); v == nil {
		t.Error("stripmine(64)∘twist accepted on an irregular space")
	} else if v.Witness.Kind != WitnessOuterTrunc {
		t.Errorf("witness kind %v, want OuterTrunc", v.Witness.Kind)
	}

	// The flagged twist and interchange carry / don't need the protocol.
	for _, expr := range []string{"twist(flagged)", "stripmine(64)∘twist(flagged)", "interchange", "identity", "inline(2)∘twist(flagged)"} {
		if v := MustParseSchedule(expr).Check(ws); v != nil {
			t.Errorf("%s rejected on an irregular space: %v", expr, v)
		}
	}
}

// Illegal composition 3: interchange over a template whose work writes
// through the inner index — a cross-column dependence. The §3.3 criterion
// fails for every reordering core.
func TestInterchangeOnCrossColumnWrite(t *testing.T) {
	t.Parallel()
	tmpl := parseTemplate(t, templateSrc("i == nil", "i.acc = o.val"))
	ws := FromTemplate(tmpl)

	v := MustParseSchedule("interchange").Check(ws)
	if v == nil {
		t.Fatal("interchange accepted despite a cross-column write")
	}
	msg := v.Error()
	for _, want := range []string{
		"reorders outer columns",
		"§3.3",
		"cross-column witness",
		"writes through the inner index",
		"i.acc = o.val",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation %q missing %q", msg, want)
		}
	}

	// Illegal composition 4: the flag protocol is about truncation, not
	// cross-column writes — twist(flagged) is illegal here too.
	if v := MustParseSchedule("twist(flagged)").Check(ws); v == nil {
		t.Error("twist(flagged) accepted despite a cross-column write")
	} else if v.Witness.Kind != WitnessCrossColumn {
		t.Errorf("witness kind %v, want CrossColumn", v.Witness.Kind)
	}

	// Identity (and pure inlining) never reorders; both stay legal.
	for _, expr := range []string{"identity", "inline(2)"} {
		if v := MustParseSchedule(expr).Check(ws); v != nil {
			t.Errorf("%s rejected: %v", expr, v)
		}
	}
}

// Writes to package-level shared state are cross-column witnesses too.
func TestSharedStateWrite(t *testing.T) {
	t.Parallel()
	tmpl := parseTemplate(t, templateSrc("i == nil", "total.sum = o.val + i.val"))
	ws := FromTemplate(tmpl)
	w, ok := ws.First(WitnessCrossColumn)
	if !ok {
		t.Fatal("no CrossColumn witness for shared-state write")
	}
	if !strings.Contains(w.Evidence, "shared state `total`") {
		t.Errorf("evidence %q does not name the shared state", w.Evidence)
	}
	if v := MustParseSchedule("twisted").Check(ws); v == nil {
		t.Error("twisted accepted despite shared-state write")
	}
}

// Writes through the outer index stay within their column: a ColumnOrder
// witness is recorded (for the proof) but never violated, matching §3.3's
// per-column order preservation.
func TestColumnOrderWitnessNeverViolated(t *testing.T) {
	t.Parallel()
	tmpl := parseTemplate(t, templateSrc("i == nil", "o.acc = o.acc + i.val"))
	ws := FromTemplate(tmpl)
	if _, ok := ws.First(WitnessColumnOrder); !ok {
		t.Fatal("no ColumnOrder witness for outer-index write")
	}
	if _, ok := ws.First(WitnessCrossColumn); ok {
		t.Fatal("outer-index write misclassified as cross-column")
	}
	for _, expr := range []string{"interchange", "twist(flagged)", "stripmine(64)∘twist(flagged)", "twist"} {
		if v := MustParseSchedule(expr).Check(ws); v != nil {
			t.Errorf("%s rejected by a column-order witness: %v", expr, v)
		}
	}
}

// Commutative reductions (+=), work-local variables, and blank writes carry
// no dependence witness — the paper's reduction discount.
func TestReductionAndLocalWritesDiscounted(t *testing.T) {
	t.Parallel()
	for _, work := range []string{
		"i.acc += o.val",
		"tmp := o.val + i.val; _ = tmp",
		"var buf int; buf = i.val; _ = buf",
	} {
		tmpl := parseTemplate(t, templateSrc("i == nil", work))
		ws := FromTemplate(tmpl)
		if _, ok := ws.First(WitnessCrossColumn); ok {
			t.Errorf("work %q yielded a spurious cross-column witness", work)
		}
	}
}

func TestForNestAndFromSpec(t *testing.T) {
	t.Parallel()
	if got := len(ForNest(false).Witnesses()); got != 0 {
		t.Fatalf("regular nest has %d witnesses, want 0", got)
	}
	ws := ForNest(true)
	if _, ok := ws.First(WitnessOuterTrunc); !ok {
		t.Fatal("irregular nest missing OuterTrunc witness")
	}
	var spec nest.Spec
	if got := len(FromSpec(spec).Witnesses()); got != 0 {
		t.Fatalf("zero spec has %d witnesses, want 0", got)
	}
	spec.TruncInner2 = func(o, i tree.NodeID) bool { return false }
	if _, ok := FromSpec(spec).First(WitnessOuterTrunc); !ok {
		t.Fatal("spec with TruncInner2 missing OuterTrunc witness")
	}
}

func TestFromDependences(t *testing.T) {
	t.Parallel()
	ws := FromDependences(depcheck.Result{Kind: depcheck.CrossColumn})
	w, ok := ws.First(WitnessCrossColumn)
	if !ok {
		t.Fatal("CrossColumn result yielded no witness")
	}
	if !strings.Contains(w.Evidence, "cross-column") {
		t.Errorf("fallback evidence %q", w.Evidence)
	}
	if v := MustParseSchedule("interchange").Check(ws); v == nil {
		t.Error("interchange accepted against a dynamic cross-column result")
	}

	ws = FromDependences(depcheck.Result{Kind: depcheck.InnerCarried})
	if _, ok := ws.First(WitnessColumnOrder); !ok {
		t.Fatal("InnerCarried result yielded no ColumnOrder witness")
	}
	if v := MustParseSchedule("twisted").Check(ws); v != nil {
		t.Errorf("twisted rejected against inner-carried-only result: %v", v)
	}

	if got := len(FromDependences(depcheck.Result{Kind: depcheck.Independent}).Witnesses()); got != 0 {
		t.Fatalf("independent result has %d witnesses, want 0", got)
	}
}

// The witness kinds print their documented names.
func TestWitnessKindString(t *testing.T) {
	t.Parallel()
	for k, want := range map[WitnessKind]string{
		WitnessCrossColumn: "cross-column",
		WitnessOuterTrunc:  "outer-dependent-truncation",
		WitnessColumnOrder: "column-order",
		WitnessKind(42):    "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("WitnessKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
