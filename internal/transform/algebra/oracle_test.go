package algebra

import (
	"testing"

	"twist/internal/nest"
	"twist/internal/oracle"
	"twist/internal/workloads"
)

// loweredVariants lowers a schedule list onto the deduplicated engine
// variants it denotes (inlining does not change the visit order, so two
// schedules differing only in inline depth lower identically).
func loweredVariants(scheds []Schedule) []nest.Variant {
	seen := map[nest.Variant]bool{}
	var vs []nest.Variant
	for _, s := range scheds {
		v := s.Variant()
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	return vs
}

// Every schedule the legality checker accepts must be semantically
// equivalent to the original program order — checked with the PR 4 oracle
// across all six paper workloads.
func TestLegalSchedulesPassOracleAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle differential over the full suite")
	}
	for _, in := range workloads.Suite(256, 1) {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			t.Parallel()
			spec := in.OracleSpec()
			ws := FromSpec(spec)
			legal := Complete(Identity(), ws, CompleteOptions{})
			if len(legal) == 0 {
				t.Fatal("no legal schedules")
			}
			g, err := oracle.Capture(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range loweredVariants(legal) {
				if vd := g.CheckVariant(spec, v, nest.FlagCounter, true); !vd.OK {
					t.Errorf("legal schedule lowering %v failed the oracle: %v", v, vd)
				}
			}
		})
	}
}

// Oracle differential over randomly sampled iteration spaces: for each
// seeded spec, every legal completion must replay the golden trace, and on
// irregular spaces the checker must have pruned the unflagged twists.
func TestLegalSchedulesPassOracleRandomSpecs(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 24; seed++ {
		spec, desc := oracle.RandomSpec(seed, 40)
		ws := FromSpec(spec)
		legal := Complete(Identity(), ws, CompleteOptions{Cutoffs: []int{0, 4}})
		g, err := oracle.Capture(spec)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if spec.TruncInner2 != nil && contains(legal, "twist") {
			t.Fatalf("%s: unflagged twist accepted on an irregular space", desc)
		}
		for _, v := range loweredVariants(legal) {
			if vd := g.CheckVariant(spec, v, nest.FlagCounter, true); !vd.OK {
				t.Errorf("%s: legal schedule lowering %v failed the oracle: %v", desc, v, vd)
			}
		}
	}
}
