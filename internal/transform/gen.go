package transform

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strings"

	"twist/internal/nest"
)

// render pretty-prints an AST node.
func render(fset *token.FileSet, n ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, n); err != nil {
		panic(err)
	}
	return b.String()
}

func renderNoFset(n ast.Node) string { return render(token.NewFileSet(), n) }

// renameIdents returns a copy of expression e with free identifiers renamed
// per the map. Copying goes through print+reparse, which keeps the
// implementation independent of the AST's many node types.
func renameIdents(e ast.Expr, rename map[string]string) ast.Expr {
	src := renderNoFset(e)
	ne, err := parser.ParseExpr(src)
	if err != nil {
		panic(fmt.Sprintf("transform: reparse %q: %v", src, err))
	}
	applyRename(ne, rename)
	return ne
}

// renameIdentsStmt is renameIdents for a statement.
func renameIdentsStmt(st ast.Stmt, rename map[string]string) ast.Stmt {
	src := "package p\nfunc _() {\n" + renderNoFset(st) + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stmt.go", src, 0)
	if err != nil {
		panic(fmt.Sprintf("transform: reparse stmt: %v", err))
	}
	body := f.Decls[0].(*ast.FuncDecl).Body.List
	if len(body) != 1 {
		panic("transform: statement reparse produced multiple statements")
	}
	applyRename(body[0], rename)
	return body[0]
}

// applyRename renames identifiers in place, skipping selector field names.
func applyRename(n ast.Node, rename map[string]string) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			applyRename(v.X, rename)
			return false
		case *ast.Ident:
			if nn, ok := rename[v.Name]; ok {
				v.Name = nn
			}
		}
		return true
	})
}

// Generate synthesizes the transformed schedules for the template: recursion
// interchange (Fig 3), parameterless recursion twisting (Fig 4a), and — for
// templates with irregular truncation — the truncation-flag code of
// Fig 6(b). The result is a complete Go source file in the template's
// package.
func Generate(t *Template) ([]byte, error) {
	return GenerateVariants(t, nil)
}

// variantSet records which schedule families to emit.
type variantSet struct {
	interchanged, twisted, cutoff bool
}

// GenerateVariants is Generate restricted to the requested schedule
// families. Variants are matched by kind (a TwistedCutoff's cutoff value is
// irrelevant — the generated function takes it as a parameter); Original is
// rejected, since the input template already is that schedule. A nil or
// empty list selects every family. Helpers a family needs — the swapped
// inner recursion, and for irregular templates the flag-aware inner
// recursion — are emitted exactly once regardless of how many families
// share them.
func GenerateVariants(t *Template, variants []nest.Variant) ([]byte, error) {
	var want variantSet
	if len(variants) == 0 {
		want = variantSet{interchanged: true, twisted: true, cutoff: true}
	}
	for _, v := range variants {
		switch v.Kind {
		case nest.KindInterchanged:
			want.interchanged = true
		case nest.KindTwisted:
			want.twisted = true
		case nest.KindTwistedCutoff:
			want.cutoff = true
		case nest.KindOriginal:
			return nil, fmt.Errorf("transform: %q is the input schedule; nothing to generate", v)
		default:
			return nil, fmt.Errorf("transform: unknown variant kind %d", v.Kind)
		}
	}
	return generate(t, want, nil)
}

// InlineFamily names the schedule family an inlined variant is based on.
type InlineFamily int

// The four families an InlineRequest can unroll: the original schedule and
// the three transformed ones.
const (
	InlineOriginal InlineFamily = iota
	InlineInterchanged
	InlineTwisted
	InlineTwistedCutoff
)

// InlineRequest asks for one inlined variant: the family's work-executing
// inner recursion unrolled Depth levels per call (the schedule algebra's
// inline(K) transformation). Inlining is supported for regular templates
// only — unrolling through the Fig 6(b) truncation-flag protocol is not.
type InlineRequest struct {
	Family InlineFamily
	Depth  int
}

// GenerateWithInline is the schedule-driven generator entry point: it emits
// the requested legacy families (here an empty variants list means *none*,
// unlike GenerateVariants) followed by the requested inlined variants. With
// no inline requests and the same families the output is byte-identical to
// GenerateVariants. Inlined variants use only their own Inline<N>-suffixed
// helpers, so a file holding them composes with a separately generated
// legacy file.
func GenerateWithInline(t *Template, variants []nest.Variant, inline []InlineRequest) ([]byte, error) {
	var want variantSet
	for _, v := range variants {
		switch v.Kind {
		case nest.KindInterchanged:
			want.interchanged = true
		case nest.KindTwisted:
			want.twisted = true
		case nest.KindTwistedCutoff:
			want.cutoff = true
		case nest.KindOriginal:
			return nil, fmt.Errorf("transform: %q is the input schedule; nothing to generate", v)
		default:
			return nil, fmt.Errorf("transform: unknown variant kind %d", v.Kind)
		}
	}
	reqs, err := normalizeInline(t, inline)
	if err != nil {
		return nil, err
	}
	if !want.interchanged && !want.twisted && !want.cutoff && len(reqs) == 0 {
		return nil, fmt.Errorf("transform: nothing to generate (no families or inline requests)")
	}
	return generate(t, want, reqs)
}

// maxInlineDepth mirrors the schedule algebra's bound on inline(K).
const maxInlineDepth = 8

// normalizeInline validates, deduplicates, and sorts inline requests.
func normalizeInline(t *Template, inline []InlineRequest) ([]InlineRequest, error) {
	if len(inline) == 0 {
		return nil, nil
	}
	if t.Irregular() {
		return nil, fmt.Errorf("transform: inlining is not supported on irregular templates (unrolling through the truncation-flag protocol)")
	}
	seen := map[InlineRequest]bool{}
	var reqs []InlineRequest
	for _, r := range inline {
		if r.Family < InlineOriginal || r.Family > InlineTwistedCutoff {
			return nil, fmt.Errorf("transform: unknown inline family %d", r.Family)
		}
		if r.Depth < 1 || r.Depth > maxInlineDepth {
			return nil, fmt.Errorf("transform: inline depth %d out of range 1..%d", r.Depth, maxInlineDepth)
		}
		if !seen[r] {
			seen[r] = true
			reqs = append(reqs, r)
		}
	}
	sort.Slice(reqs, func(a, b int) bool {
		if reqs[a].Family != reqs[b].Family {
			return reqs[a].Family < reqs[b].Family
		}
		return reqs[a].Depth < reqs[b].Depth
	})
	return reqs, nil
}

// generate runs the generator and the format/parse sanity gates.
func generate(t *Template, want variantSet, inline []InlineRequest) ([]byte, error) {
	g := &generator{t: t, want: want, inline: inline}
	src, err := g.file()
	if err != nil {
		return nil, err
	}
	out, err := format.Source(src)
	if err != nil {
		return nil, fmt.Errorf("transform: generated code does not format (tool bug): %v\n%s", err, src)
	}
	// Belt and braces: the output must parse.
	if _, err := parser.ParseFile(token.NewFileSet(), "generated.go", out, 0); err != nil {
		return nil, fmt.Errorf("transform: generated code does not parse (tool bug): %v", err)
	}
	return out, nil
}

type generator struct {
	t      *Template
	want   variantSet
	inline []InlineRequest
	b      bytes.Buffer
}

func (g *generator) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// names for the synthesized functions.
func (g *generator) outerName() string      { return g.t.Outer.Name.Name }
func (g *generator) innerName() string      { return g.t.Inner.Name.Name }
func (g *generator) outerSwName() string    { return g.t.Outer.Name.Name + "Swapped" }
func (g *generator) innerSwName() string    { return g.t.Inner.Name.Name + "Swapped" }
func (g *generator) outerTwName() string    { return g.t.Outer.Name.Name + "Twisted" }
func (g *generator) outerTwSwName() string  { return g.t.Outer.Name.Name + "SwappedTwisted" }
func (g *generator) innerTwName() string    { return g.t.Inner.Name.Name + "Twisted" }
func (g *generator) outerCutName() string   { return g.t.Outer.Name.Name + "TwistedCutoff" }
func (g *generator) outerCutSwName() string { return g.t.Outer.Name.Name + "SwappedTwistedCutoff" }

func (g *generator) expr(e ast.Expr) string { return render(g.t.Fset, e) }

// sig renders the common two-index parameter list.
func (g *generator) sig() string {
	return fmt.Sprintf("%s %s, %s %s", g.t.OName, g.expr(g.t.OType), g.t.IName, g.expr(g.t.IType))
}

func (g *generator) workBody(indent string) string {
	var sb strings.Builder
	for _, st := range g.t.Work {
		sb.WriteString(indent)
		sb.WriteString(render(g.t.Fset, st))
		sb.WriteString("\n")
	}
	return sb.String()
}

func (g *generator) file() ([]byte, error) {
	t := g.t
	g.pf("// Code generated by cmd/twist from the //twist:outer/inner template\n")
	g.pf("// (%s / %s). DO NOT EDIT.\n", g.outerName(), g.innerName())
	g.pf("//\n")
	g.pf("// Schedules synthesized per \"Locality Transformations for Nested\n")
	g.pf("// Recursive Iteration Spaces\" (ASPLOS 2017): recursion interchange\n")
	g.pf("// (Fig 3) and parameterless recursion twisting (Fig 4a)")
	if t.Irregular() {
		g.pf(",\n// with truncation flags for the irregular iteration space (Fig 6b)")
	}
	if len(g.inline) > 0 {
		g.pf(",\n// plus inlined variants (the schedule algebra's inline(K) transformation)")
	}
	g.pf(".\n\n")
	g.pf("package %s\n\n", t.File.Name.Name)

	// Decl order is fixed — outerSw, innerSw, outerTw, outerTwSw,
	// innerTw (irregular only), outerCut, outerCutSw — so that the full
	// set reproduces Generate's historical output byte for byte. The
	// swapped inner recursion is a helper of every family; the flag-aware
	// inner recursion serves both twisting families.
	if g.want.interchanged {
		g.outerSwapped()
	}
	if g.want.interchanged || g.want.twisted || g.want.cutoff {
		g.innerSwapped()
	}
	if g.want.twisted {
		g.twistedPair()
	}
	if t.Irregular() && (g.want.twisted || g.want.cutoff) {
		g.innerTwisted()
	}
	if g.want.cutoff {
		g.twistedCutoff()
	}
	g.inlineDecls()
	return g.b.Bytes(), nil
}

// twistedCutoff emits the §7.1 variant: twist only while the tree held by
// the inner recursion is larger than the cutoff, reverting to the standard
// recursive schedule for small subproblems to shed instruction overhead.
func (g *generator) twistedCutoff() {
	t := g.t
	o, i := t.OName, t.IName

	innerCall := g.innerName()
	if t.Irregular() {
		innerCall = g.innerTwName()
	}

	g.pf("// %s is recursion twisting with the cutoff parameter of §7.1:\n", g.outerCutName())
	g.pf("// orientation only switches while the inner recursion's tree is larger\n")
	g.pf("// than cutoff, trading a little locality for much less bookkeeping.\n")
	g.pf("func %s(%s, cutoff int) {\n", g.outerCutName(), g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	g.pf("\t%s(%s, %s)\n", innerCall, o, i)
	for _, c := range t.OuterChildren {
		ce := g.expr(c)
		g.pf("\tif %s(%s) <= %s(%s) && %s(%s) > cutoff {\n", t.SizeFn, ce, t.SizeFn, i, t.SizeFn, i)
		g.pf("\t\t%s(%s, %s, cutoff)\n", g.outerCutSwName(), ce, i)
		g.pf("\t} else {\n")
		g.pf("\t\t%s(%s, %s, cutoff)\n", g.outerCutName(), ce, i)
		g.pf("\t}\n")
	}
	g.pf("}\n\n")

	g.pf("// %s is the swapped orientation of cutoff twisting.\n", g.outerCutSwName())
	g.pf("func %s(%s, cutoff int) {\n", g.outerCutSwName(), g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncInner1))
	g.pf("\tif %s { // empty outer region: nothing to traverse\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	if t.Irregular() {
		g.pf("\tvar unTrunc []%s\n", g.expr(t.OType))
		g.pf("\t%s(%s, %s, &unTrunc)\n", g.innerSwName(), o, i)
	} else {
		g.pf("\t%s(%s, %s)\n", g.innerSwName(), o, i)
	}
	for _, c := range t.InnerChildren {
		ce := g.expr(c)
		g.pf("\tif %s(%s) <= %s(%s) {\n", t.SizeFn, ce, t.SizeFn, o)
		g.pf("\t\t%s(%s, %s, cutoff)\n", g.outerCutName(), o, ce)
		g.pf("\t} else {\n")
		g.pf("\t\t%s(%s, %s, cutoff)\n", g.outerCutSwName(), o, ce)
		g.pf("\t}\n")
	}
	if t.Irregular() {
		g.pf("\tfor _, n := range unTrunc {\n\t\t%s(n, false)\n\t}\n", t.SetTruncFn)
	}
	g.pf("}\n")
}

// outerSwapped emits the interchanged outer recursion (Fig 3 / Fig 6b).
func (g *generator) outerSwapped() {
	t := g.t
	o, i := t.OName, t.IName

	g.pf("// %s is %s under recursion interchange: the outer recursion\n", g.outerSwName(), g.outerName())
	g.pf("// traverses the inner tree and vice versa (row-by-row order).\n")
	g.pf("func %s(%s) {\n", g.outerSwName(), g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncInner1))
	g.pf("\tif %s { // empty outer region: nothing to traverse\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	if t.Irregular() {
		g.pf("\tvar unTrunc []%s\n", g.expr(t.OType))
		g.pf("\t%s(%s, %s, &unTrunc)\n", g.innerSwName(), o, i)
	} else {
		g.pf("\t%s(%s, %s)\n", g.innerSwName(), o, i)
	}
	for _, c := range t.InnerChildren {
		g.pf("\t%s(%s, %s)\n", g.outerSwName(), o, g.expr(c))
	}
	if t.Irregular() {
		g.pf("\tfor _, n := range unTrunc {\n\t\t%s(n, false)\n\t}\n", t.SetTruncFn)
	}
	g.pf("}\n\n")
}

// innerSwapped emits the interchanged inner recursion, the helper every
// transformed schedule traverses rows with.
func (g *generator) innerSwapped() {
	t := g.t
	o, i := t.OName, t.IName

	g.pf("// %s is %s under recursion interchange, traversing the\n", g.innerSwName(), g.innerName())
	g.pf("// outer tree for a fixed inner node.\n")
	if t.Irregular() {
		g.pf("func %s(%s, unTrunc *[]%s) {\n", g.innerSwName(), g.sig(), g.expr(t.OType))
	} else {
		g.pf("func %s(%s) {\n", g.innerSwName(), g.sig())
	}
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	if t.Irregular() {
		// Fig 6(b): record fresh truncations; skip work while flagged. An
		// already-flagged node is not re-evaluated (nested truncating
		// regions are contained in the flagging region).
		g.pf("\tif !%s(%s) && (%s) {\n", t.TruncFn, o, g.expr(t.TruncInner2))
		g.pf("\t\t%s(%s, true)\n", t.SetTruncFn, o)
		g.pf("\t\t*unTrunc = append(*unTrunc, %s)\n", o)
		g.pf("\t}\n")
		g.pf("\tif !%s(%s) {\n", t.TruncFn, o)
		g.b.WriteString(g.workBody("		"))
		g.pf("\t}\n")
		for _, c := range t.OuterChildren {
			g.pf("\t%s(%s, %s, unTrunc)\n", g.innerSwName(), g.expr(c), i)
		}
	} else {
		g.b.WriteString(g.workBody("	"))
		for _, c := range t.OuterChildren {
			g.pf("\t%s(%s, %s)\n", g.innerSwName(), g.expr(c), i)
		}
	}
	g.pf("}\n\n")
}

// twistedPair emits the twisting pair (Fig 4a).
func (g *generator) twistedPair() {
	t := g.t
	o, i := t.OName, t.IName

	innerCall := g.innerName()
	if t.Irregular() {
		innerCall = g.innerTwName()
	}

	g.pf("// %s is the entry point of parameterless recursion twisting\n", g.outerTwName())
	g.pf("// (Fig 4a): it follows the original orientation but switches the two\n")
	g.pf("// recursions whenever the remaining outer subtree is no larger than the\n")
	g.pf("// tree held by the inner recursion.\n")
	g.pf("func %s(%s) {\n", g.outerTwName(), g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	g.pf("\t%s(%s, %s)\n", innerCall, o, i)
	for _, c := range t.OuterChildren {
		ce := g.expr(c)
		g.pf("\tif %s(%s) <= %s(%s) {\n", t.SizeFn, ce, t.SizeFn, i)
		g.pf("\t\t%s(%s, %s)\n", g.outerTwSwName(), ce, i)
		g.pf("\t} else {\n")
		g.pf("\t\t%s(%s, %s)\n", g.outerTwName(), ce, i)
		g.pf("\t}\n")
	}
	g.pf("}\n\n")

	g.pf("// %s is the swapped orientation of recursion twisting.\n", g.outerTwSwName())
	g.pf("func %s(%s) {\n", g.outerTwSwName(), g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncInner1))
	g.pf("\tif %s { // empty outer region: nothing to traverse\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	if t.Irregular() {
		g.pf("\tvar unTrunc []%s\n", g.expr(t.OType))
		g.pf("\t%s(%s, %s, &unTrunc)\n", g.innerSwName(), o, i)
	} else {
		g.pf("\t%s(%s, %s)\n", g.innerSwName(), o, i)
	}
	for _, c := range t.InnerChildren {
		ce := g.expr(c)
		g.pf("\tif %s(%s) <= %s(%s) {\n", t.SizeFn, ce, t.SizeFn, o)
		g.pf("\t\t%s(%s, %s)\n", g.outerTwName(), o, ce)
		g.pf("\t} else {\n")
		g.pf("\t\t%s(%s, %s)\n", g.outerTwSwName(), o, ce)
		g.pf("\t}\n")
	}
	if t.Irregular() {
		g.pf("\tfor _, n := range unTrunc {\n\t\t%s(n, false)\n\t}\n", t.SetTruncFn)
	}
	g.pf("}\n\n")
}

// innerTwisted emits the flag-aware variant of the original-orientation
// inner recursion that both twisting families call on irregular templates.
func (g *generator) innerTwisted() {
	t := g.t
	o := t.OName

	g.pf("// %s is %s for use inside the twisted schedule: in the\n", g.innerTwName(), g.innerName())
	g.pf("// original orientation the truncation flag must be consulted in\n")
	g.pf("// addition to the truncation condition (§4.1).\n")
	g.pf("func %s(%s) {\n", g.innerTwName(), g.sig())
	g.pf("\tif %s || %s(%s) || (%s) {\n\t\treturn\n\t}\n",
		g.expr(t.TruncInner1), t.TruncFn, o, g.expr(t.TruncInner2))
	g.b.WriteString(g.workBody("	"))
	for _, c := range t.InnerChildren {
		g.pf("\t%s(%s, %s)\n", g.innerTwName(), o, g.expr(c))
	}
	g.pf("}\n")
}

// --- inlined variants (schedule algebra inline(K)) ----------------------
//
// Unrolling uses shadowed index rebinding — `i := i.Left` inside a nested
// block — so the template's work, truncation, and child expressions are
// reused verbatim at every unrolled level, with no identifier substitution.
// The unrolled frontier recurses into the inlined function itself, keeping
// the visit order exactly that of the un-inlined family.

// inlineName suffixes a generated function name for an inline depth.
func inlineName(base string, depth int) string {
	return fmt.Sprintf("%sInline%d", base, depth)
}

// inlineDecls emits the requested inlined variants: first the shared
// inlined inner recursions (one per orientation and depth), then one driver
// set per requested family.
func (g *generator) inlineDecls() {
	if len(g.inline) == 0 {
		return
	}
	needInner := map[int]bool{}   // original-orientation inlined inner
	needInnerSw := map[int]bool{} // swapped-orientation inlined inner
	for _, r := range g.inline {
		switch r.Family {
		case InlineOriginal:
			needInner[r.Depth] = true
		case InlineInterchanged:
			needInnerSw[r.Depth] = true
		default: // twisting families visit both orientations
			needInner[r.Depth] = true
			needInnerSw[r.Depth] = true
		}
	}
	g.pf("\n")
	for _, d := range sortedKeys(needInner) {
		g.innerInlined(d, false)
	}
	for _, d := range sortedKeys(needInnerSw) {
		g.innerInlined(d, true)
	}
	for _, r := range g.inline {
		switch r.Family {
		case InlineOriginal:
			g.originalInlined(r.Depth)
		case InlineInterchanged:
			g.interchangedInlined(r.Depth)
		case InlineTwisted:
			g.twistedInlined(r.Depth, false)
		case InlineTwistedCutoff:
			g.twistedInlined(r.Depth, true)
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// innerInlined emits the work-executing recursion of one orientation with
// depth levels unrolled per call. swapped selects the interchanged
// orientation (fixed inner node, outer tree descent).
func (g *generator) innerInlined(depth int, swapped bool) {
	t := g.t
	base, moving, guard, children := g.innerName(), t.IName, t.TruncInner1, t.InnerChildren
	orient := "original"
	if swapped {
		base, moving, guard, children = g.innerSwName(), t.OName, t.TruncOuter, t.OuterChildren
		orient = "interchanged"
	}
	name := inlineName(base, depth)
	g.pf("// %s runs the %s-orientation work recursion with %d level(s)\n", name, orient, depth)
	g.pf("// unrolled per call (inline(%d)): each unrolled level rebinds the moving\n", depth)
	g.pf("// index in a nested scope, so call and truncation-test overhead is paid\n")
	g.pf("// once per unrolled subtree. The visit order is unchanged.\n")
	g.pf("func %s(%s) {\n", name, g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(guard))
	g.b.WriteString(g.workBody("\t"))
	g.inlineLevel(name, moving, guard, children, swapped, depth, 1)
	g.pf("}\n\n")
}

// inlineLevel emits one unrolled descent level: a nested scope per child
// that rebinds the moving index, re-tests truncation, runs the work, and
// either unrolls further or falls back to the recursive call.
func (g *generator) inlineLevel(self, moving string, guard ast.Expr, children []ast.Expr, swapped bool, remaining, depth int) {
	t := g.t
	ind := strings.Repeat("\t", depth)
	for _, c := range children {
		ce := g.expr(c)
		if remaining == 0 {
			if swapped {
				g.pf("%s%s(%s, %s)\n", ind, self, ce, t.IName)
			} else {
				g.pf("%s%s(%s, %s)\n", ind, self, t.OName, ce)
			}
			continue
		}
		g.pf("%s{\n", ind)
		g.pf("%s\t%s := %s\n", ind, moving, ce)
		g.pf("%s\tif !(%s) {\n", ind, g.expr(guard))
		g.b.WriteString(g.workBody(strings.Repeat("\t", depth+2)))
		g.inlineLevel(self, moving, guard, children, swapped, remaining-1, depth+2)
		g.pf("%s\t}\n", ind)
		g.pf("%s}\n", ind)
	}
}

// originalInlined emits the original schedule driving the inlined inner
// recursion.
func (g *generator) originalInlined(depth int) {
	t := g.t
	o, i := t.OName, t.IName
	name := inlineName(g.outerName(), depth)
	g.pf("// %s is the original schedule with the inner recursion\n", name)
	g.pf("// unrolled %d level(s) (inline(%d)∘identity).\n", depth, depth)
	g.pf("func %s(%s) {\n", name, g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	g.pf("\t%s(%s, %s)\n", inlineName(g.innerName(), depth), o, i)
	for _, c := range t.OuterChildren {
		g.pf("\t%s(%s, %s)\n", name, g.expr(c), i)
	}
	g.pf("}\n\n")
}

// interchangedInlined emits the interchanged schedule driving the inlined
// swapped inner recursion.
func (g *generator) interchangedInlined(depth int) {
	t := g.t
	o, i := t.OName, t.IName
	name := inlineName(g.outerSwName(), depth)
	g.pf("// %s is recursion interchange with the swapped inner recursion\n", name)
	g.pf("// unrolled %d level(s) (inline(%d)∘interchange).\n", depth, depth)
	g.pf("func %s(%s) {\n", name, g.sig())
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncInner1))
	g.pf("\tif %s { // empty outer region: nothing to traverse\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	g.pf("\t%s(%s, %s)\n", inlineName(g.innerSwName(), depth), o, i)
	for _, c := range t.InnerChildren {
		g.pf("\t%s(%s, %s)\n", name, o, g.expr(c))
	}
	g.pf("}\n\n")
}

// twistedInlined emits the twisting pair (optionally cutoff-bounded)
// driving the inlined inner recursions of both orientations.
func (g *generator) twistedInlined(depth int, cutoff bool) {
	t := g.t
	o, i := t.OName, t.IName
	fwdBase, swBase, comp := g.outerTwName(), g.outerTwSwName(), "twist"
	param, arg := "", ""
	if cutoff {
		fwdBase, swBase, comp = g.outerCutName(), g.outerCutSwName(), "stripmine(N)∘twist"
		param, arg = ", cutoff int", ", cutoff"
	}
	fwd, sw := inlineName(fwdBase, depth), inlineName(swBase, depth)

	g.pf("// %s is recursion twisting (%s) with the work recursions\n", fwd, comp)
	g.pf("// of both orientations unrolled %d level(s) (inline(%d)).\n", depth, depth)
	g.pf("func %s(%s%s) {\n", fwd, g.sig(), param)
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	g.pf("\t%s(%s, %s)\n", inlineName(g.innerName(), depth), o, i)
	for _, c := range t.OuterChildren {
		ce := g.expr(c)
		if cutoff {
			g.pf("\tif %s(%s) <= %s(%s) && %s(%s) > cutoff {\n", t.SizeFn, ce, t.SizeFn, i, t.SizeFn, i)
		} else {
			g.pf("\tif %s(%s) <= %s(%s) {\n", t.SizeFn, ce, t.SizeFn, i)
		}
		g.pf("\t\t%s(%s, %s%s)\n", sw, ce, i, arg)
		g.pf("\t} else {\n")
		g.pf("\t\t%s(%s, %s%s)\n", fwd, ce, i, arg)
		g.pf("\t}\n")
	}
	g.pf("}\n\n")

	g.pf("// %s is the swapped orientation of %s.\n", sw, fwd)
	g.pf("func %s(%s%s) {\n", sw, g.sig(), param)
	g.pf("\tif %s {\n\t\treturn\n\t}\n", g.expr(t.TruncInner1))
	g.pf("\tif %s { // empty outer region: nothing to traverse\n\t\treturn\n\t}\n", g.expr(t.TruncOuter))
	g.pf("\t%s(%s, %s)\n", inlineName(g.innerSwName(), depth), o, i)
	for _, c := range t.InnerChildren {
		ce := g.expr(c)
		g.pf("\tif %s(%s) <= %s(%s) {\n", t.SizeFn, ce, t.SizeFn, o)
		g.pf("\t\t%s(%s, %s%s)\n", fwd, o, ce, arg)
		g.pf("\t} else {\n")
		g.pf("\t\t%s(%s, %s%s)\n", sw, o, ce, arg)
		g.pf("\t}\n")
	}
	g.pf("}\n\n")
}
