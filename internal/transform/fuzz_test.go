package transform

import "testing"

// FuzzParseFile checks the §5 sanity checker never panics on arbitrary Go
// source: malformed templates must be rejected with errors, not crashes.
func FuzzParseFile(f *testing.F) {
	f.Add([]byte(regularSrc))
	f.Add([]byte("package p"))
	f.Add([]byte("//twist:outer\nfunc f() {}"))
	f.Add([]byte(`package p

//twist:outer
func Outer(o *Node, i *Node) {
	if o == nil {
		return
	}
	Inner(o, i)
	Outer(o.Left, i)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if i == nil || far(o, i) {
		return
	}
	work(o, i)
	Inner(o, i.Right)
}
`))
	f.Fuzz(func(t *testing.T, src []byte) {
		tmpl, err := ParseFile("fuzz.go", src)
		if err != nil || tmpl == nil {
			return
		}
		// Anything the checker accepts must generate valid Go.
		if _, err := Generate(tmpl); err != nil {
			t.Fatalf("accepted template failed to generate: %v", err)
		}
	})
}
