// Package transform is the source-to-source transformation tool of paper §5,
// retargeted from Clang/C++ to Go's go/ast. Given a file containing two
// annotated recursive functions that conform to the nested recursion
// template (Fig 2), it
//
//  1. performs the syntactic sanity check that the functions match the
//     template,
//  2. analyzes the inner recursion's truncation condition to decide whether
//     irregular (outer-dependent) truncation is present, and
//  3. synthesizes interchange and parameterless recursion-twisting code,
//     including the truncation-flag machinery of Fig 6(b) when needed.
//
// Annotations are comment directives on the two functions:
//
//	//twist:outer size=subtreeSize trunc=truncFlag settrunc=setTruncFlag
//	func RecurseOuter(o, i *Node) { ... }
//
//	//twist:inner
//	func RecurseInner(o, i *Node) { ... }
//
// size names a function reporting the size of a subtree (§5: "the tool
// assumes that a method can be called to determine the size of the current
// sub-recursion"); trunc/settrunc name the truncation-flag accessors used by
// the synthesized irregular-truncation code. All three default to the names
// above and need only exist when used (size always; the flag helpers only
// for irregular truncation).
//
// Like the paper's prototype, the tool does not prove soundness (§3.3); the
// programmer must only annotate nested recursions for which recursion
// interchange is sound.
package transform

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
)

// Template is the parsed, validated nested recursion template of one
// annotated pair of functions.
type Template struct {
	Fset *token.FileSet
	File *ast.File

	Outer, Inner *ast.FuncDecl

	// Parameter names of the outer function, adopted for all generated code.
	OName, IName string
	// Parameter types (as written) of the two indices.
	OType, IType ast.Expr

	// TruncOuter is the outer function's truncation condition.
	TruncOuter ast.Expr
	// TruncInner1 holds ||-conjuncts of the inner truncation that depend
	// only on the inner index; TruncInner2 holds those that (also) depend on
	// the outer index. Both are rewritten to the outer function's parameter
	// names. TruncInner2 == nil means the space is regular.
	TruncInner1, TruncInner2 ast.Expr

	// Work is the inner function's body between truncation and recursion,
	// rewritten to the outer parameter names.
	Work []ast.Stmt

	// OuterChildren and InnerChildren are the "increment" expressions the
	// recursive calls descend into (e.g. o.Left, o.Right), rewritten to the
	// outer parameter names.
	OuterChildren, InnerChildren []ast.Expr

	// Helper names from the directive.
	SizeFn, TruncFn, SetTruncFn string
}

// Irregular reports whether the template has outer-dependent truncation
// (a non-trivial truncateInner2?).
func (t *Template) Irregular() bool { return t.TruncInner2 != nil }

// directive holds the parsed //twist: comment of one function.
type directive struct {
	role string // "outer" or "inner"
	opts map[string]string
}

// parseDirective extracts a //twist: directive from a doc comment, if any.
func parseDirective(doc *ast.CommentGroup) *directive {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, "twist:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, "twist:"))
		if len(fields) == 0 {
			continue
		}
		d := &directive{role: fields[0], opts: map[string]string{}}
		for _, f := range fields[1:] {
			if k, v, ok := strings.Cut(f, "="); ok {
				d.opts[k] = v
			}
		}
		return d
	}
	return nil
}

// ParseFile parses src (a Go source file; filename is used for positions)
// and extracts its annotated nested recursion template.
func ParseFile(filename string, src []byte) (*Template, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	t := &Template{Fset: fset, File: file}
	var outerDir *directive
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		d := parseDirective(fn.Doc)
		if d == nil {
			continue
		}
		switch d.role {
		case "outer":
			if t.Outer != nil {
				return nil, fmt.Errorf("transform: multiple //twist:outer functions")
			}
			t.Outer, outerDir = fn, d
		case "inner":
			if t.Inner != nil {
				return nil, fmt.Errorf("transform: multiple //twist:inner functions")
			}
			t.Inner = fn
		default:
			return nil, fmt.Errorf("transform: unknown directive //twist:%s on %s", d.role, fn.Name.Name)
		}
	}
	if t.Outer == nil || t.Inner == nil {
		return nil, fmt.Errorf("transform: need exactly one //twist:outer and one //twist:inner function")
	}
	t.SizeFn = opt(outerDir, "size", "subtreeSize")
	t.TruncFn = opt(outerDir, "trunc", "truncFlag")
	t.SetTruncFn = opt(outerDir, "settrunc", "setTruncFlag")
	if err := t.check(); err != nil {
		return nil, err
	}
	return t, nil
}

func opt(d *directive, key, def string) string {
	if d != nil {
		if v, ok := d.opts[key]; ok {
			return v
		}
	}
	return def
}

// params extracts the two parameter names and types of a template function.
func params(fn *ast.FuncDecl) (names [2]string, types [2]ast.Expr, err error) {
	var flat []*ast.Field
	n := 0
	for _, f := range fn.Type.Params.List {
		flat = append(flat, f)
		n += len(f.Names)
	}
	if n != 2 {
		return names, types, fmt.Errorf("transform: %s must take exactly two parameters (outer index, inner index), has %d",
			fn.Name.Name, n)
	}
	k := 0
	for _, f := range flat {
		for _, nm := range f.Names {
			names[k] = nm.Name
			types[k] = f.Type
			k++
		}
	}
	return names, types, nil
}

// check is the §5 syntactic sanity check: both functions must conform to the
// Fig 2 template. On success it fills in the Template fields.
func (t *Template) check() error {
	if t.Outer.Body == nil || t.Inner.Body == nil {
		return fmt.Errorf("transform: annotated functions must have bodies")
	}
	oNames, oTypes, err := params(t.Outer)
	if err != nil {
		return err
	}
	iNames, iTypes, err := params(t.Inner)
	if err != nil {
		return err
	}
	t.OName, t.IName = oNames[0], oNames[1]
	t.OType, t.IType = oTypes[0], oTypes[1]
	if render(t.Fset, oTypes[0]) != render(t.Fset, iTypes[0]) ||
		render(t.Fset, oTypes[1]) != render(t.Fset, iTypes[1]) {
		return fmt.Errorf("transform: %s and %s must have identical parameter types",
			t.Outer.Name.Name, t.Inner.Name.Name)
	}

	// --- outer function -------------------------------------------------
	ob := t.Outer.Body.List
	if len(ob) < 3 {
		return fmt.Errorf("transform: %s: template needs truncation, an inner call, and recursive calls", t.Outer.Name.Name)
	}
	cond, err := truncationIf(ob[0], t.Outer.Name.Name)
	if err != nil {
		return err
	}
	if usesIdent(cond, oNames[1]) {
		return fmt.Errorf("transform: %s: outer truncation may only test the outer index %s",
			t.Outer.Name.Name, oNames[0])
	}
	t.TruncOuter = cond

	call, err := callStmt(ob[1])
	if err != nil || !isIdentCall(call, t.Inner.Name.Name, oNames[0], oNames[1]) {
		return fmt.Errorf("transform: %s: second statement must be %s(%s, %s)",
			t.Outer.Name.Name, t.Inner.Name.Name, oNames[0], oNames[1])
	}
	for k, st := range ob[2:] {
		rec, err := callStmt(st)
		if err != nil {
			return fmt.Errorf("transform: %s: statement %d is not a recursive call", t.Outer.Name.Name, k+3)
		}
		child, err := recursiveCall(rec, t.Outer.Name.Name, oNames[0], oNames[1], 0)
		if err != nil {
			return err
		}
		t.OuterChildren = append(t.OuterChildren, child)
	}
	if len(t.OuterChildren) == 0 {
		return fmt.Errorf("transform: %s: no recursive calls", t.Outer.Name.Name)
	}

	// --- inner function -------------------------------------------------
	ib := t.Inner.Body.List
	if len(ib) < 2 {
		return fmt.Errorf("transform: %s: template needs truncation and recursive calls", t.Inner.Name.Name)
	}
	icond, err := truncationIf(ib[0], t.Inner.Name.Name)
	if err != nil {
		return err
	}
	rename := map[string]string{iNames[0]: oNames[0], iNames[1]: oNames[1]}
	var i1, i2 []ast.Expr
	for _, c := range splitOr(icond) {
		c = renameIdents(c, rename)
		if usesIdent(c, oNames[0]) {
			i2 = append(i2, c)
		} else {
			i1 = append(i1, c)
		}
	}
	t.TruncInner1 = joinOr(i1)
	t.TruncInner2 = joinOr(i2)
	if t.TruncInner1 == nil {
		return fmt.Errorf("transform: %s: truncation must include a condition on the inner index alone "+
			"(the recursion cannot terminate otherwise)", t.Inner.Name.Name)
	}

	// Split the remaining statements into work and recursive calls: the
	// recursive calls are the trailing self-calls.
	rest := ib[1:]
	firstRec := len(rest)
	for k := len(rest) - 1; k >= 0; k-- {
		if call, err := callStmt(rest[k]); err == nil {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == t.Inner.Name.Name {
				firstRec = k
				continue
			}
		}
		break
	}
	for _, st := range rest[:firstRec] {
		if callsFunc(st, t.Inner.Name.Name) || callsFunc(st, t.Outer.Name.Name) {
			return fmt.Errorf("transform: %s: work statements may not call the recursive functions", t.Inner.Name.Name)
		}
		t.Work = append(t.Work, renameIdentsStmt(st, rename))
	}
	for _, st := range rest[firstRec:] {
		call, _ := callStmt(st)
		child, err := recursiveCall(call, t.Inner.Name.Name, iNames[0], iNames[1], 1)
		if err != nil {
			return err
		}
		t.InnerChildren = append(t.InnerChildren, renameIdents(child, rename))
	}
	if len(t.InnerChildren) == 0 {
		return fmt.Errorf("transform: %s: no recursive calls", t.Inner.Name.Name)
	}
	return nil
}

// truncationIf checks that st is `if cond { return }` and returns cond.
func truncationIf(st ast.Stmt, fname string) (ast.Expr, error) {
	ifst, ok := st.(*ast.IfStmt)
	if !ok || ifst.Init != nil || ifst.Else != nil {
		return nil, fmt.Errorf("transform: %s: first statement must be `if <truncation> { return }`", fname)
	}
	if len(ifst.Body.List) != 1 {
		return nil, fmt.Errorf("transform: %s: truncation body must be a single return", fname)
	}
	ret, ok := ifst.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 0 {
		return nil, fmt.Errorf("transform: %s: truncation body must be a bare return", fname)
	}
	return ifst.Cond, nil
}

// callStmt unwraps an expression statement holding a call.
func callStmt(st ast.Stmt) (*ast.CallExpr, error) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil, fmt.Errorf("not a call statement")
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, fmt.Errorf("not a call statement")
	}
	return call, nil
}

// isIdentCall reports whether call is name(arg0, arg1) with bare identifier
// arguments.
func isIdentCall(call *ast.CallExpr, name, arg0, arg1 string) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != name || len(call.Args) != 2 {
		return false
	}
	a0, ok0 := call.Args[0].(*ast.Ident)
	a1, ok1 := call.Args[1].(*ast.Ident)
	return ok0 && ok1 && a0.Name == arg0 && a1.Name == arg1
}

// recursiveCall validates a template self-call: name(child, i) for the outer
// recursion (descend = 0) or name(o, child) for the inner (descend = 1),
// returning the child expression.
func recursiveCall(call *ast.CallExpr, name, o, i string, descend int) (ast.Expr, error) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != name || len(call.Args) != 2 {
		return nil, fmt.Errorf("transform: %s: recursive calls must be %s(_, _)", name, name)
	}
	fixed := 1 - descend
	fixedName := [2]string{o, i}[fixed]
	id, ok := call.Args[fixed].(*ast.Ident)
	if !ok || id.Name != fixedName {
		return nil, fmt.Errorf("transform: %s: argument %d of recursive calls must be %s", name, fixed, fixedName)
	}
	child := call.Args[descend]
	movingName := [2]string{o, i}[descend]
	if !usesIdent(child, movingName) {
		return nil, fmt.Errorf("transform: %s: descend expression %s does not reference %s",
			name, renderNoFset(child), movingName)
	}
	return child, nil
}

// splitOr flattens a || b || c into its operands.
func splitOr(e ast.Expr) []ast.Expr {
	if p, ok := e.(*ast.ParenExpr); ok {
		return splitOr(p.X)
	}
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LOR {
		return append(splitOr(b.X), splitOr(b.Y)...)
	}
	return []ast.Expr{e}
}

// joinOr rebuilds operands into a || chain (nil for no operands).
func joinOr(es []ast.Expr) ast.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &ast.BinaryExpr{X: out, Op: token.LOR, Y: e}
	}
	return out
}

// usesIdent reports whether e references the identifier name (excluding
// selector fields: x.name does not count as a use of name).
func usesIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if sel, ok := x.(*ast.SelectorExpr); ok {
			// Only the operand side of a selector can reference the ident.
			if usesIdent(sel.X, name) {
				found = true
			}
			return false
		}
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// callsFunc reports whether the statement contains a call to name.
func callsFunc(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}
