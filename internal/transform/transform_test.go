package transform

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twist/internal/nest"
)

// parseOK parses a template from source, failing the test on error.
func parseOK(t *testing.T, src string) *Template {
	t.Helper()
	tmpl, err := ParseFile("test.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

const regularSrc = `package p

//twist:outer
func Outer(o *Node, i *Node) {
	if o == nil {
		return
	}
	Inner(o, i)
	Outer(o.Left, i)
	Outer(o.Right, i)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if i == nil {
		return
	}
	work(o, i)
	Inner(o, i.Left)
	Inner(o, i.Right)
}
`

func TestParseRegularTemplate(t *testing.T) {
	tmpl := parseOK(t, regularSrc)
	if tmpl.Irregular() {
		t.Fatal("regular template classified irregular")
	}
	if tmpl.OName != "o" || tmpl.IName != "i" {
		t.Fatalf("params %s/%s", tmpl.OName, tmpl.IName)
	}
	if len(tmpl.OuterChildren) != 2 || len(tmpl.InnerChildren) != 2 {
		t.Fatalf("children %d/%d", len(tmpl.OuterChildren), len(tmpl.InnerChildren))
	}
	if len(tmpl.Work) != 1 {
		t.Fatalf("%d work statements", len(tmpl.Work))
	}
	if tmpl.SizeFn != "subtreeSize" {
		t.Fatalf("default size fn %q", tmpl.SizeFn)
	}
}

func TestIrregularClassification(t *testing.T) {
	src := strings.Replace(regularSrc, "if i == nil {", "if i == nil || prune(o, i) || i.skip {", 1)
	tmpl := parseOK(t, src)
	if !tmpl.Irregular() {
		t.Fatal("outer-dependent truncation not detected")
	}
	// The o-free conjuncts stay in TruncInner1; the o-using one moves.
	i1 := renderNoFset(tmpl.TruncInner1)
	i2 := renderNoFset(tmpl.TruncInner2)
	if !strings.Contains(i1, "i == nil") || !strings.Contains(i1, "i.skip") {
		t.Fatalf("TruncInner1 = %s", i1)
	}
	if !strings.Contains(i2, "prune(o, i)") {
		t.Fatalf("TruncInner2 = %s", i2)
	}
}

func TestParamRenaming(t *testing.T) {
	// The inner function uses different parameter names; conditions, work,
	// and children must be rewritten to the outer names.
	src := `package p

//twist:outer
func Outer(a *Node, b *Node) {
	if a == nil {
		return
	}
	Inner(a, b)
	Outer(a.Left, b)
}

//twist:inner
func Inner(x *Node, y *Node) {
	if y == nil || x.Val > y.Val {
		return
	}
	work(x, y)
	Inner(x, y.Right)
}
`
	tmpl := parseOK(t, src)
	if got := renderNoFset(tmpl.TruncInner2); got != "a.Val > b.Val" {
		t.Fatalf("TruncInner2 = %s", got)
	}
	if got := renderNoFset(tmpl.Work[0]); got != "work(a, b)" {
		t.Fatalf("work = %s", got)
	}
	if got := renderNoFset(tmpl.InnerChildren[0]); got != "b.Right" {
		t.Fatalf("inner child = %s", got)
	}
}

func TestSelectorFieldNotRenamed(t *testing.T) {
	// A field named like a parameter must not be rewritten: x.o stays .o.
	src := `package p

//twist:outer
func Outer(a *Node, b *Node) {
	if a == nil {
		return
	}
	Inner(a, b)
	Outer(a.Left, b)
}

//twist:inner
func Inner(o *Node, i *Node) {
	if i == nil {
		return
	}
	work(o.i, i)
	Inner(o, i.Left)
}
`
	tmpl := parseOK(t, src)
	if got := renderNoFset(tmpl.Work[0]); got != "work(a.i, b)" {
		t.Fatalf("work = %s (selector field renamed?)", got)
	}
}

func TestDirectiveOptions(t *testing.T) {
	src := strings.Replace(regularSrc, "//twist:outer",
		"//twist:outer size=sz trunc=tf settrunc=stf", 1)
	tmpl := parseOK(t, src)
	if tmpl.SizeFn != "sz" || tmpl.TruncFn != "tf" || tmpl.SetTruncFn != "stf" {
		t.Fatalf("options not honored: %s/%s/%s", tmpl.SizeFn, tmpl.TruncFn, tmpl.SetTruncFn)
	}
}

// The §5 sanity check: malformed templates are rejected with a clear error.
func TestSanityCheckRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"no outer", func(s string) string { return strings.Replace(s, "//twist:outer\n", "", 1) },
			"exactly one"},
		{"no inner", func(s string) string { return strings.Replace(s, "//twist:inner\n", "", 1) },
			"exactly one"},
		{"unknown role", func(s string) string { return strings.Replace(s, "//twist:inner", "//twist:sideways", 1) },
			"unknown directive"},
		{"three params", func(s string) string {
			return strings.Replace(s, "func Outer(o *Node, i *Node)", "func Outer(o *Node, i *Node, k int)", 1)
		}, "exactly two parameters"},
		{"outer truncation uses inner index", func(s string) string {
			return strings.Replace(s, "if o == nil {", "if o == nil || i == nil {", 1)
		}, "only test the outer index"},
		{"missing inner call", func(s string) string {
			return strings.Replace(s, "\tInner(o, i)\n", "", 1)
		}, "second statement must be"},
		{"wrong fixed argument", func(s string) string {
			return strings.Replace(s, "Outer(o.Left, i)", "Outer(o.Left, i.Left)", 1)
		}, "must be"},
		{"no inner-only truncation", func(s string) string {
			return strings.Replace(s, "if i == nil {", "if prune(o, i) {", 1)
		}, "inner index alone"},
		{"work calls recursion", func(s string) string {
			return strings.Replace(s, "work(o, i)", "work(o, i); Outer(o, i)", 1)
		}, "may not call"},
		{"truncation with else", func(s string) string {
			return strings.Replace(s, "if o == nil {\n\t\treturn\n\t}", "if o == nil {\n\t\treturn\n\t} else {\n\t\twork(o, i)\n\t}", 1)
		}, "first statement must be"},
		{"descend does not move", func(s string) string {
			return strings.Replace(s, "Inner(o, i.Left)", "Inner(o, other)", 1)
		}, "does not reference"},
	}
	for _, c := range cases {
		src := c.mutate(regularSrc)
		if src == regularSrc {
			t.Fatalf("%s: mutation had no effect", c.name)
		}
		_, err := ParseFile("test.go", []byte(src))
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

func TestGenerateRegular(t *testing.T) {
	tmpl := parseOK(t, regularSrc)
	out, err := Generate(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		"func OuterSwapped(o *Node, i *Node)",
		"func InnerSwapped(o *Node, i *Node)",
		"func OuterTwisted(o *Node, i *Node)",
		"func OuterSwappedTwisted(o *Node, i *Node)",
		"func OuterTwistedCutoff(o *Node, i *Node, cutoff int)",
		"func OuterSwappedTwistedCutoff(o *Node, i *Node, cutoff int)",
		"subtreeSize(o.Left) <= subtreeSize(i)",
		"subtreeSize(i) > cutoff",
		"Code generated",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("generated code missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "unTrunc") {
		t.Fatal("regular template generated flag machinery")
	}
}

func TestGenerateIrregular(t *testing.T) {
	src := strings.Replace(regularSrc, "if i == nil {", "if i == nil || prune(o, i) {", 1)
	tmpl := parseOK(t, src)
	out, err := Generate(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		"var unTrunc []*Node",
		"setTruncFlag(o, true)",
		"setTruncFlag(n, false)",
		"func InnerTwisted(o *Node, i *Node)",
		"truncFlag(o) || (prune(o, i))",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("generated code missing %q:\n%s", want, s)
		}
	}
}

// The checked-in example corpus must be exactly what the tool generates —
// this keeps examples/transform/*_twisted.go in sync.
func TestExampleCorpusInSync(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "transform")
	for _, base := range []string{"join", "prune"} {
		src, err := os.ReadFile(filepath.Join(dir, base+".go"))
		if err != nil {
			t.Fatal(err)
		}
		tmpl, err := ParseFile(base+".go", src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(dir, base+"_twisted.go"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Generate(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s_twisted.go out of sync with cmd/twist output; regenerate with:\n  go run ./cmd/twist -in examples/transform/%s.go", base, base)
		}
	}
}

func TestGeneratedCodeStable(t *testing.T) {
	tmpl := parseOK(t, regularSrc)
	a, err := Generate(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenerateVariantsSubsets(t *testing.T) {
	regular := parseOK(t, regularSrc)
	irregular := parseOK(t, strings.Replace(regularSrc, "if i == nil {", "if i == nil || prune(o, i) {", 1))

	// The full set must be byte-identical to Generate.
	full, err := Generate(irregular)
	if err != nil {
		t.Fatal(err)
	}
	all := []nest.Variant{nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(64)}
	if got, err := GenerateVariants(irregular, all); err != nil || string(got) != string(full) {
		t.Fatalf("full variant set differs from Generate (err %v)", err)
	}

	cases := []struct {
		name     string
		tmpl     *Template
		variants []nest.Variant
		want     []string
		absent   []string
	}{
		{
			name:     "interchanged only",
			tmpl:     regular,
			variants: []nest.Variant{nest.Interchanged()},
			want:     []string{"func OuterSwapped(", "func InnerSwapped("},
			absent:   []string{"func OuterTwisted(", "func OuterTwistedCutoff("},
		},
		{
			name:     "twisted only",
			tmpl:     regular,
			variants: []nest.Variant{nest.Twisted()},
			want:     []string{"func InnerSwapped(", "func OuterTwisted(", "func OuterSwappedTwisted("},
			absent:   []string{"func OuterSwapped(o", "func OuterTwistedCutoff("},
		},
		{
			name:     "cutoff only, irregular",
			tmpl:     irregular,
			variants: []nest.Variant{nest.TwistedCutoff(16)},
			want:     []string{"func InnerSwapped(", "func InnerTwisted(", "func OuterTwistedCutoff(", "func OuterSwappedTwistedCutoff("},
			absent:   []string{"func OuterSwapped(o", "func OuterTwisted(o", "func OuterSwappedTwisted(o"},
		},
	}
	for _, c := range cases {
		out, err := GenerateVariants(c.tmpl, c.variants)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s := string(out)
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Fatalf("%s: missing %q:\n%s", c.name, w, s)
			}
		}
		for _, a := range c.absent {
			if strings.Contains(s, a) {
				t.Fatalf("%s: unexpectedly contains %q:\n%s", c.name, a, s)
			}
		}
	}

	if _, err := GenerateVariants(regular, []nest.Variant{nest.Original()}); err == nil {
		t.Fatal("original accepted as a generation target")
	}
}
