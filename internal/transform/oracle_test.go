package transform

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"twist/internal/nest"
	"twist/internal/oracle"
	"twist/internal/tree"
)

// The source-to-source path must satisfy the same oracle as the engine:
// each GenerateVariants output is compiled together with a tiny pointer-tree
// harness, every schedule is executed out of process, and the printed visit
// sequences are checked for permutation equivalence against the template's
// own (original-schedule) output. The harness builds its trees with the same
// preorder id assignment as tree.NewBalanced, so the original sequence is
// additionally cross-checked against the in-repo engine's golden trace —
// tying the generated code, the engine, and the oracle to one semantics.

const (
	harnessOuterN = 13
	harnessInnerN = 9
)

// harnessSupport is the runtime the generated code needs: the Node struct,
// the default helper names (subtreeSize/truncFlag/setTruncFlag), a pure
// prune predicate over ids, work printing visits, and a balanced builder
// mirroring tree.NewBalanced's preorder ids.
const harnessSupport = `
type Node struct {
	id          int
	size        int
	trunc       bool
	Left, Right *Node
}

func subtreeSize(n *Node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func truncFlag(o *Node) bool       { return o.trunc }
func setTruncFlag(o *Node, v bool) { o.trunc = v }

func prune(o, i *Node) bool {
	return (uint32(o.id)*2654435761+uint32(i.id)*2246822519)%5 == 0
}

func work(o, i *Node) { fmt.Printf("v %d %d\n", o.id, i.id) }

func build(count int, next *int, all *[]*Node) *Node {
	if count == 0 {
		return nil
	}
	n := &Node{id: *next}
	*next++
	*all = append(*all, n)
	lc := (count - 1) / 2
	n.Left = build(lc, next, all)
	n.Right = build(count-1-lc, next, all)
	n.size = 1 + subtreeSize(n.Left) + subtreeSize(n.Right)
	return n
}

func main() {
	var no, ni int
	var outerNodes, innerNodes []*Node
	outer := build(NO, &no, &outerNodes)
	inner := build(NI, &ni, &innerNodes)
	_ = innerNodes
	section := func(name string, f func()) {
		fmt.Println("==", name)
		for _, n := range outerNodes {
			n.trunc = false
		}
		f()
	}
	section("original", func() { Outer(outer, inner) })
	section("interchanged", func() { OuterSwapped(outer, inner) })
	section("twisted", func() { OuterTwisted(outer, inner) })
	section("cutoff", func() { OuterTwistedCutoff(outer, inner, 3) })
}
`

// harnessPrune mirrors the harness's prune over engine NodeIDs (ids match by
// construction).
func harnessPrune(o, i tree.NodeID) bool {
	return (uint32(o)*2654435761+uint32(i)*2246822519)%5 == 0
}

// runHarness writes a temp module holding the template, the generated
// variants, and the support runtime, executes it, and parses the printed
// visit sections.
func runHarness(t *testing.T, templateSrc string) map[string][]oracle.Visit {
	t.Helper()
	tmpl, err := ParseFile("template.go", []byte(templateSrc))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := GenerateVariants(tmpl, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	support := strings.NewReplacer(
		"NO", strconv.Itoa(harnessOuterN),
		"NI", strconv.Itoa(harnessInnerN),
	).Replace(harnessSupport)
	mainSrc := "package main\n\nimport \"fmt\"\n\n" +
		strings.TrimPrefix(templateSrc, "package main\n") + support
	for name, data := range map[string]string{
		"go.mod":  "module oracleharness\n\ngo 1.22\n",
		"main.go": mainSrc,
		"gen.go":  string(gen),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}

	sections := make(map[string][]oracle.Visit)
	var cur string
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		switch {
		case len(fields) == 2 && fields[0] == "==":
			cur = fields[1]
			sections[cur] = nil
		case len(fields) == 3 && fields[0] == "v":
			o, err1 := strconv.Atoi(fields[1])
			i, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || cur == "" {
				t.Fatalf("malformed harness output line %q", line)
			}
			sections[cur] = append(sections[cur], oracle.Visit{O: tree.NodeID(o), I: tree.NodeID(i)})
		case len(fields) != 0:
			t.Fatalf("unexpected harness output line %q", line)
		}
	}
	return sections
}

func TestGeneratedVariantsPassOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a child Go program")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go binary not available")
	}
	regular := strings.Replace(regularSrc, "package p", "package main", 1)
	irregular := strings.Replace(regular, "if i == nil {", "if i == nil || prune(o, i) {", 1)
	for _, tc := range []struct {
		name, src string
		prune     func(o, i tree.NodeID) bool
	}{
		{"regular", regular, nil},
		{"irregular", irregular, harnessPrune},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sections := runHarness(t, tc.src)
			orig := sections["original"]
			if len(orig) == 0 {
				t.Fatal("empty original section")
			}
			golden := oracle.FromSequence(orig)
			for _, name := range []string{"interchanged", "twisted", "cutoff"} {
				seq, ok := sections[name]
				if !ok {
					t.Fatalf("missing harness section %q", name)
				}
				if v := golden.CheckSequence("generated "+name, seq); !v.OK {
					t.Error(v)
				}
			}

			// Cross-check: the engine on the same space must produce the same
			// golden trace (ids and shapes align by construction).
			spec := nest.Spec{
				Outer:       tree.NewBalanced(harnessOuterN),
				Inner:       tree.NewBalanced(harnessInnerN),
				TruncInner2: tc.prune,
				Work:        func(o, i tree.NodeID) {},
			}
			eg, err := oracle.Capture(spec)
			if err != nil {
				t.Fatal(err)
			}
			if eg.Digest() != golden.Digest() || eg.ColumnDigest() != golden.ColumnDigest() {
				t.Fatalf("engine golden trace (%d visits) differs from generated code's (%d visits)",
					eg.Visits(), golden.Visits())
			}
		})
	}
}
