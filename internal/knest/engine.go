package knest

import (
	"errors"
	"math"
)

// Spec is the k-ary nested recursion template: the paper's Fig 2 with any
// number of recursive calls per invocation.
type Spec struct {
	Outer, Inner *Topology
	TruncOuter   func(o NodeID) bool
	TruncInner1  func(i NodeID) bool
	TruncInner2  func(o, i NodeID) bool // nil ⇒ regular space
	Work         func(o, i NodeID)
	// Hereditary as in the binary engine: TruncInner2(o,i) implies the same
	// for every descendant pair; enables subtree truncation (§4.2).
	Hereditary bool
}

func (s *Spec) validate() error {
	if s.Outer == nil || s.Inner == nil {
		return errors.New("knest: Outer and Inner must be non-nil")
	}
	if s.Work == nil {
		return errors.New("knest: Work must be non-nil")
	}
	return nil
}

// Stats mirrors the binary engine's operation counts.
type Stats struct {
	OuterCalls, InnerCalls int64
	Iterations, Work       int64
	TruncChecks, FlagSets  int64
	SizeCompares, Twists   int64
	SubtreeCuts            int64
}

// Variant selects a schedule.
type Variant struct {
	kind   int
	cutoff int32
}

// The four schedules of the paper, k-ary editions.
func Original() Variant     { return Variant{kind: 0} }
func Interchanged() Variant { return Variant{kind: 1} }
func Twisted() Variant      { return Variant{kind: 2} }
func TwistedCutoff(c int) Variant {
	if c < 0 || c > math.MaxInt32 {
		panic("knest: cutoff out of range")
	}
	return Variant{kind: 3, cutoff: int32(c)}
}

// String implements fmt.Stringer.
func (v Variant) String() string {
	return [...]string{"original", "interchanged", "twisted", "twisted-cutoff"}[v.kind]
}

// Exec executes a Spec. Truncation flags use the §4.3 counter representation
// (the set protocol's equivalence is established by the binary engine's
// tests; only the optimized form is carried to the k-ary generalization).
type Exec struct {
	spec Spec
	// SubtreeTruncation enables the §4.2 cut (needs Spec.Hereditary).
	SubtreeTruncation bool
	Stats             Stats

	irregular bool
	ctr       []int32
	twist     bool
	cutoff    int32
}

// New returns an Exec for the spec.
func New(s Spec) (*Exec, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &Exec{spec: s, SubtreeTruncation: true, irregular: s.TruncInner2 != nil}, nil
}

// MustNew is New that panics on error.
func MustNew(s Spec) *Exec {
	e, err := New(s)
	if err != nil {
		panic(err)
	}
	return e
}

// Run executes the schedule from the roots.
func (e *Exec) Run(v Variant) {
	e.Stats = Stats{}
	if e.irregular {
		n := e.spec.Outer.Len()
		if cap(e.ctr) < n {
			e.ctr = make([]int32, n)
		} else {
			e.ctr = e.ctr[:n]
			for k := range e.ctr {
				e.ctr[k] = 0
			}
		}
	}
	o, i := e.spec.Outer.Root(), e.spec.Inner.Root()
	switch v.kind {
	case 0:
		e.twist = false
		e.outer(o, i)
	case 1:
		e.twist = false
		e.outerSwapped(o, i)
	case 2:
		e.twist, e.cutoff = true, 0
		e.outer(o, i)
	case 3:
		e.twist, e.cutoff = true, v.cutoff
		e.outer(o, i)
	}
}

func (e *Exec) truncO(o NodeID) bool {
	return o == Nil || (e.spec.TruncOuter != nil && e.spec.TruncOuter(o))
}

func (e *Exec) truncI(i NodeID) bool {
	return i == Nil || (e.spec.TruncInner1 != nil && e.spec.TruncInner1(i))
}

func (e *Exec) flagged(o, i NodeID) bool { return e.spec.Inner.Order(i) < e.ctr[o] }

func (e *Exec) setFlag(o, i NodeID) {
	e.Stats.FlagSets++
	e.ctr[o] = e.spec.Inner.Next(i)
}

// outer is the original orientation (descends the outer tree), twisting per
// child exactly as Fig 4(a), with the cutoff gate of §7.1.
func (e *Exec) outer(o, i NodeID) {
	e.Stats.OuterCalls++
	if e.truncO(o) {
		return
	}
	e.inner(o, i)
	out, in := e.spec.Outer, e.spec.Inner
	for _, c := range out.Kids(o) {
		if e.twist {
			e.Stats.SizeCompares++
			if out.Size(c) <= in.Size(i) && in.Size(i) > e.cutoff {
				e.Stats.Twists++
				e.outerSwapped(c, i)
				continue
			}
		}
		e.outer(c, i)
	}
}

func (e *Exec) inner(o, i NodeID) {
	e.Stats.InnerCalls++
	if e.truncI(i) {
		return
	}
	if e.irregular {
		e.Stats.TruncChecks++
		if e.flagged(o, i) || e.spec.TruncInner2(o, i) {
			return
		}
	}
	e.Stats.Iterations++
	e.Stats.Work++
	e.spec.Work(o, i)
	for _, c := range e.spec.Inner.Kids(i) {
		e.inner(o, c)
	}
}

// outerSwapped is the swapped orientation (descends the inner tree).
func (e *Exec) outerSwapped(o, i NodeID) {
	e.Stats.OuterCalls++
	if e.truncI(i) {
		return
	}
	if e.truncO(o) {
		return
	}
	allTrunc := e.innerSwapped(o, i)
	if allTrunc && e.SubtreeTruncation && e.irregular {
		e.Stats.SubtreeCuts++
		return
	}
	out, in := e.spec.Outer, e.spec.Inner
	for _, c := range in.Kids(i) {
		if e.twist {
			e.Stats.SizeCompares++
			if in.Size(c) <= out.Size(o) {
				e.Stats.Twists++
				e.outer(o, c)
				continue
			}
		}
		e.outerSwapped(o, c)
	}
}

func (e *Exec) innerSwapped(o, i NodeID) bool {
	e.Stats.InnerCalls++
	if e.truncO(o) {
		return true
	}
	truncated := false
	if e.irregular {
		e.Stats.TruncChecks++
		if e.flagged(o, i) {
			truncated = true
		} else if e.spec.TruncInner2(o, i) {
			e.setFlag(o, i)
			truncated = true
		}
	}
	e.Stats.Iterations++
	if !truncated {
		e.Stats.Work++
		e.spec.Work(o, i)
	} else if e.spec.Hereditary && e.SubtreeTruncation {
		e.Stats.SubtreeCuts++
		return true
	}
	all := truncated
	for _, c := range e.spec.Outer.Kids(o) {
		if !e.innerSwapped(c, i) {
			all = false
		}
	}
	return all
}
