package knest

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"twist/internal/dualtree"
	"twist/internal/geom"
)

// randomKTree builds a random tree with arities in [1, maxArity].
func randomKTree(n, maxArity int, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	root := b.Add()
	open := []NodeID{root}
	for len(b.kids)+1 <= n && len(open) > 0 {
		k := rng.Intn(len(open))
		p := open[k]
		open[k] = open[len(open)-1]
		open = open[:len(open)-1]
		arity := rng.Intn(maxArity) + 1
		for a := 0; a < arity && len(b.kids) < n; a++ {
			c := b.Add()
			b.AddChild(p, c)
			open = append(open, c)
		}
	}
	return b.MustBuild(root)
}

type kpair struct{ o, i NodeID }

func runK(t *testing.T, s Spec, v Variant, subtree bool) []kpair {
	t.Helper()
	var out []kpair
	s.Work = func(o, i NodeID) { out = append(out, kpair{o, i}) }
	e := MustNew(s)
	e.SubtreeTruncation = subtree
	e.Run(v)
	return out
}

func kset(ps []kpair) map[kpair]int {
	m := map[kpair]int{}
	for _, p := range ps {
		m[p]++
	}
	return m
}

func TestTopologyBuilderAndValidate(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := randomKTree(200, 5, seed)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.Size(tr.Root()) != int32(tr.Len()) {
			t.Fatalf("seed %d: root size %d of %d", seed, tr.Size(tr.Root()), tr.Len())
		}
		pre := tr.Preorder(nil)
		if len(pre) != tr.Len() {
			t.Fatalf("seed %d: preorder covers %d of %d", seed, len(pre), tr.Len())
		}
		for k, id := range pre {
			if tr.Order(id) != int32(k) || tr.ByPreorder(int32(k)) != id {
				t.Fatalf("seed %d: preorder map broken at %d", seed, k)
			}
			if tr.Next(id) != tr.Order(id)+tr.Size(id) {
				t.Fatalf("seed %d: next broken at %d", seed, id)
			}
		}
	}
}

func TestEmptyTopology(t *testing.T) {
	tr := NewBuilder(0).MustBuild(Nil)
	if tr.Len() != 0 || tr.Root() != Nil || tr.Validate() != nil {
		t.Fatal("empty k-ary topology malformed")
	}
}

// Regular k-ary spaces: every schedule executes the exact cross product.
func TestKAryPermutationProperty(t *testing.T) {
	outer := randomKTree(40, 4, 1)
	inner := randomKTree(35, 6, 2)
	want := map[kpair]int{}
	for _, o := range outer.Preorder(nil) {
		for _, i := range inner.Preorder(nil) {
			want[kpair{o, i}] = 1
		}
	}
	for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(6)} {
		got := kset(runK(t, Spec{Outer: outer, Inner: inner}, v, true))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: iteration multiset differs from cross product", v)
		}
	}
}

// Column order (fixed outer node, inner preorder) is preserved, as in §3.3.
func TestKAryColumnOrderPreserved(t *testing.T) {
	outer := randomKTree(30, 3, 3)
	inner := randomKTree(30, 5, 4)
	s := Spec{Outer: outer, Inner: inner}
	column := func(ps []kpair, o NodeID) []NodeID {
		var is []NodeID
		for _, p := range ps {
			if p.o == o {
				is = append(is, p.i)
			}
		}
		return is
	}
	ref := runK(t, s, Original(), true)
	for _, v := range []Variant{Interchanged(), Twisted()} {
		got := runK(t, s, v, true)
		for o := NodeID(0); int(o) < outer.Len(); o++ {
			if !reflect.DeepEqual(column(got, o), column(ref, o)) {
				t.Fatalf("%v: column %d reordered", v, o)
			}
		}
	}
}

// Irregular k-ary truncation: the executed set matches the template
// semantics under every schedule.
func TestKAryIrregularTruncation(t *testing.T) {
	outer := randomKTree(35, 4, 5)
	inner := randomKTree(30, 4, 6)
	rng := rand.New(rand.NewSource(7))
	level := make([]float64, outer.Len())
	thresh := make([]float64, inner.Len())
	for k := range level {
		level[k] = rng.Float64()
	}
	for k := range thresh {
		thresh[k] = rng.Float64()
	}
	// Make it fully hereditary for the subtree-truncation runs.
	for _, o := range outer.Preorder(nil) {
		if p := outer.Parent(o); p != Nil && level[o] < level[p] {
			level[o] = level[p]
		}
	}
	for _, i := range inner.Preorder(nil) {
		if p := inner.Parent(i); p != Nil && thresh[i] > thresh[p] {
			thresh[i] = thresh[p]
		}
	}
	s := Spec{
		Outer:       outer,
		Inner:       inner,
		Hereditary:  true,
		TruncInner2: func(o, i NodeID) bool { return level[o] > thresh[i] },
	}
	// Expected set from template semantics.
	want := map[kpair]int{}
	var down func(o, i NodeID)
	for _, o := range outer.Preorder(nil) {
		down = func(o, i NodeID) {
			if s.TruncInner2(o, i) {
				return
			}
			want[kpair{o, i}] = 1
			for _, c := range inner.Kids(i) {
				down(o, c)
			}
		}
		down(o, inner.Root())
	}
	for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(4)} {
		for _, subtree := range []bool{false, true} {
			got := kset(runK(t, s, v, subtree))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v subtree=%v: executed set differs from template semantics", v, subtree)
			}
		}
	}
}

func TestKArySpecValidation(t *testing.T) {
	tr := randomKTree(5, 3, 9)
	if _, err := New(Spec{Outer: tr, Inner: tr}); err == nil {
		t.Fatal("nil Work accepted")
	}
	if _, err := New(Spec{Inner: tr, Work: func(o, i NodeID) {}}); err == nil {
		t.Fatal("nil Outer accepted")
	}
}

// --- octree -----------------------------------------------------------------

func TestOctreeBuildValidates(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 2000} {
		for _, dist := range []geom.Distribution{geom.Uniform, geom.Clustered} {
			pts := geom.Generate(dist, n, int64(n))
			oc := MustBuildOctree(pts, 8)
			if oc.Topo.Len() == 0 {
				t.Fatalf("n=%d: empty octree", n)
			}
			if got := oc.End[oc.Topo.Root()] - oc.Start[oc.Topo.Root()]; got != int32(n) {
				t.Fatalf("n=%d: root owns %d points", n, got)
			}
		}
	}
}

func TestOctreeArityUpToEight(t *testing.T) {
	pts := geom.Generate(geom.Uniform, 4096, 11)
	oc := MustBuildOctree(pts, 8)
	maxArity := 0
	for _, id := range oc.Topo.Preorder(nil) {
		if a := oc.Topo.Arity(id); a > maxArity {
			maxArity = a
		}
		if oc.Topo.Arity(id) > 8 {
			t.Fatalf("node %d has arity %d", id, oc.Topo.Arity(id))
		}
	}
	if maxArity < 7 {
		t.Fatalf("uniform points never produced a high-arity split (max %d)", maxArity)
	}
}

func TestOctreeIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 50)
	for k := range pts {
		pts[k] = geom.Point{0.3, 0.3, 0.3}
	}
	oc := MustBuildOctree(pts, 4)
	if oc.Topo.Len() != 1 {
		t.Fatalf("identical points built %d nodes", oc.Topo.Len())
	}
}

func TestOctreeRejectsBadLeafSize(t *testing.T) {
	if _, err := BuildOctree(geom.Generate(geom.Uniform, 5, 1), 0); err == nil {
		t.Fatal("leafSize 0 accepted")
	}
}

// The full k-ary pipeline: dual-tree point correlation on octrees agrees
// with brute force under every schedule — the generalized template end to
// end, truncation flags included.
func TestOctreePCMatchesBruteForceAllSchedules(t *testing.T) {
	qpts := geom.Generate(geom.Clustered, 600, 13)
	rpts := geom.Generate(geom.Clustered, 500, 14)
	const radius = 0.1
	want := dualtree.BrutePC(qpts, rpts, radius, false)
	if want == 0 {
		t.Fatal("degenerate oracle")
	}
	q := MustBuildOctree(qpts, 8)
	r := MustBuildOctree(rpts, 8)
	var count int64
	spec := PCSpec(q, r, radius, &count)
	e := MustNew(spec)
	for _, v := range []Variant{Original(), Interchanged(), Twisted(), TwistedCutoff(32)} {
		count = 0
		e.Run(v)
		if count != want {
			t.Fatalf("%v: count %d, want %d", v, count, want)
		}
	}
}

// The §4.2 iteration shape carries over to k-ary spaces.
func TestOctreeIterationShape(t *testing.T) {
	pts := geom.Generate(geom.Clustered, 3000, 15)
	oc := MustBuildOctree(pts, 8)
	var count int64
	e := MustNew(PCSpec(oc, oc, 0.05, &count))
	run := func(v Variant, subtree bool) Stats {
		count = 0
		e.SubtreeTruncation = subtree
		e.Run(v)
		return e.Stats
	}
	orig := run(Original(), true)
	inter := run(Interchanged(), false)
	tw := run(Twisted(), true)
	if !(inter.Iterations > tw.Iterations && tw.Iterations >= orig.Iterations) {
		t.Fatalf("k-ary §4.2 ordering violated: orig=%d tw=%d inter=%d",
			orig.Iterations, tw.Iterations, inter.Iterations)
	}
	if tw.Twists == 0 {
		t.Fatal("k-ary twisting never twisted")
	}
}

// Property: random k-ary shapes keep the permutation property under
// twisting.
func TestQuickKAryTwistedPermutation(t *testing.T) {
	f := func(seedO, seedI int64, rawNO, rawNI, rawA uint8) bool {
		no, ni := int(rawNO%50)+1, int(rawNI%50)+1
		arity := int(rawA%6) + 1
		outer := randomKTree(no, arity, seedO)
		inner := randomKTree(ni, arity, seedI)
		var got []kpair
		s := Spec{Outer: outer, Inner: inner, Work: func(o, i NodeID) {
			got = append(got, kpair{o, i})
		}}
		e := MustNew(s)
		e.Run(Twisted())
		if len(got) != no*ni {
			return false
		}
		seen := map[kpair]bool{}
		for _, p := range got {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOctreePC(b *testing.B) {
	pts := geom.Generate(geom.Clustered, 1<<12, 1)
	oc := MustBuildOctree(pts, 8)
	var count int64
	e := MustNew(PCSpec(oc, oc, 0.05, &count))
	for _, v := range []Variant{Original(), Twisted()} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				count = 0
				e.Run(v)
			}
		})
	}
}
