// Package knest generalizes the scheduling transformations of internal/nest
// to recursions with an arbitrary number of recursive calls per invocation.
// The paper's template explicitly permits this (§2.1: "there is no reason
// there cannot be additional recursive calls in each of the recursions"),
// but its prototype tool — like the binary engine — handles exactly two.
// k-ary index spaces arise naturally from quadtrees and octrees, the usual
// spatial structures of n-body codes.
//
// The package provides the k-ary arena topology, an octree builder over 3-D
// points, and the four schedules (Original, Interchanged, Twisted,
// TwistedCutoff) with the §4 truncation machinery in its §4.3 counter
// representation.
package knest

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within a Topology; Nil is the absent node.
type NodeID int32

// Nil is the absent-node sentinel.
const Nil NodeID = -1

// Topology is the shape of a tree with per-node variable arity, stored in
// flat arrays: node n's children are kids[kidStart[n]:kidStart[n+1]].
type Topology struct {
	kidStart []int32
	kids     []NodeID
	parent   []NodeID
	size     []int32
	order    []int32
	next     []int32
	byPre    []NodeID
	root     NodeID
}

// Len reports the number of nodes.
func (t *Topology) Len() int { return len(t.parent) }

// Root returns the root node, or Nil for an empty tree.
func (t *Topology) Root() NodeID { return t.root }

// Kids returns node n's children (shared slice; do not modify).
func (t *Topology) Kids(n NodeID) []NodeID {
	return t.kids[t.kidStart[n]:t.kidStart[n+1]]
}

// Arity returns the number of children of n.
func (t *Topology) Arity(n NodeID) int { return int(t.kidStart[n+1] - t.kidStart[n]) }

// IsLeaf reports whether n has no children.
func (t *Topology) IsLeaf(n NodeID) bool { return t.Arity(n) == 0 }

// Parent returns n's parent, or Nil for the root.
func (t *Topology) Parent(n NodeID) NodeID { return t.parent[n] }

// Size returns the subtree size of n (0 for Nil).
func (t *Topology) Size(n NodeID) int32 {
	if n == Nil {
		return 0
	}
	return t.size[n]
}

// Order returns n's preorder index; Next the first preorder index past n's
// subtree (the §4.3 counter pair).
func (t *Topology) Order(n NodeID) int32 { return t.order[n] }

// Next returns Order(n) + Size(n).
func (t *Topology) Next(n NodeID) int32 { return t.next[n] }

// ByPreorder returns the node with preorder index k.
func (t *Topology) ByPreorder(k int32) NodeID { return t.byPre[k] }

// Preorder appends all nodes in preorder to dst.
func (t *Topology) Preorder(dst []NodeID) []NodeID {
	var walk func(n NodeID)
	walk = func(n NodeID) {
		dst = append(dst, n)
		for _, c := range t.Kids(n) {
			walk(c)
		}
	}
	if t.root != Nil {
		walk(t.root)
	}
	return dst
}

// Validate checks reachability, parent links, sizes, and the preorder maps.
func (t *Topology) Validate() error {
	n := t.Len()
	if n == 0 {
		if t.root != Nil {
			return errors.New("knest: empty topology with root")
		}
		return nil
	}
	if t.root < 0 || int(t.root) >= n || t.parent[t.root] != Nil {
		return fmt.Errorf("knest: bad root %d", t.root)
	}
	seen := make([]bool, n)
	count := 0
	var walk func(id NodeID) (int32, error)
	walk = func(id NodeID) (int32, error) {
		if id < 0 || int(id) >= n {
			return 0, fmt.Errorf("knest: node %d out of range", id)
		}
		if seen[id] {
			return 0, fmt.Errorf("knest: node %d reachable twice", id)
		}
		seen[id] = true
		count++
		sz := int32(1)
		for _, c := range t.Kids(id) {
			if t.parent[c] != id {
				return 0, fmt.Errorf("knest: child %d of %d has parent %d", c, id, t.parent[c])
			}
			cs, err := walk(c)
			if err != nil {
				return 0, err
			}
			sz += cs
		}
		if t.size[id] != sz {
			return 0, fmt.Errorf("knest: node %d size %d, computed %d", id, t.size[id], sz)
		}
		if t.next[id] != t.order[id]+sz {
			return 0, fmt.Errorf("knest: node %d next/order/size inconsistent", id)
		}
		return sz, nil
	}
	if _, err := walk(t.root); err != nil {
		return err
	}
	if count != n {
		return fmt.Errorf("knest: %d of %d nodes reachable", count, n)
	}
	for k := int32(0); int(k) < n; k++ {
		if t.order[t.byPre[k]] != k {
			return fmt.Errorf("knest: preorder map broken at %d", k)
		}
	}
	return nil
}

// Builder assembles a k-ary topology. Children must be attached to a node
// before that node is attached to its own parent is NOT required — links
// may be made in any order before Build.
type Builder struct {
	kids   [][]NodeID
	parent []NodeID
}

// NewBuilder returns a Builder with capacity for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{kids: make([][]NodeID, 0, n), parent: make([]NodeID, 0, n)}
}

// Add appends a childless node and returns its id.
func (b *Builder) Add() NodeID {
	id := NodeID(len(b.kids))
	b.kids = append(b.kids, nil)
	b.parent = append(b.parent, Nil)
	return id
}

// AddChild appends c to p's child list.
func (b *Builder) AddChild(p, c NodeID) {
	b.kids[p] = append(b.kids[p], c)
	b.parent[c] = p
}

// Build finalizes and validates the topology.
func (b *Builder) Build(root NodeID) (*Topology, error) {
	n := len(b.kids)
	t := &Topology{
		kidStart: make([]int32, n+1),
		parent:   b.parent,
		size:     make([]int32, n),
		order:    make([]int32, n),
		next:     make([]int32, n),
		byPre:    make([]NodeID, n),
		root:     root,
	}
	if n == 0 {
		t.root = Nil
		return t, nil
	}
	for id, ks := range b.kids {
		t.kidStart[id+1] = t.kidStart[id] + int32(len(ks))
		t.kids = append(t.kids, ks...)
	}
	var pre int32
	visited := make([]bool, n)
	var walk func(id NodeID) int32
	walk = func(id NodeID) int32 {
		if id < 0 || int(id) >= n || visited[id] {
			return 0
		}
		visited[id] = true
		t.order[id] = pre
		t.byPre[pre] = id
		pre++
		sz := int32(1)
		for _, c := range t.Kids(id) {
			sz += walk(c)
		}
		t.size[id] = sz
		t.next[id] = t.order[id] + sz
		return sz
	}
	if root >= 0 && int(root) < n {
		walk(root)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild(root NodeID) *Topology {
	t, err := b.Build(root)
	if err != nil {
		panic(err)
	}
	return t
}
