package knest

import (
	"errors"

	"twist/internal/geom"
)

// Octree is a space-partitioning tree over 3-D points where each internal
// node splits its box at the center into up to 8 occupied octants — the
// spatial structure of classic n-body codes, and a natural k-ary index
// space for the generalized template (arity varies from 1 to 8 per node).
type Octree struct {
	Topo   *Topology
	Points []geom.Point // permuted: each node's subtree owns a contiguous range
	Boxes  []geom.Box   // tight bounding box per node
	Start  []int32
	End    []int32
}

// BuildOctree constructs an octree over pts with at most leafSize points per
// leaf. Octants with no points produce no child. Splitting stops when all
// points coincide.
func BuildOctree(pts []geom.Point, leafSize int) (*Octree, error) {
	if leafSize < 1 {
		return nil, errors.New("knest: leafSize must be >= 1")
	}
	oc := &Octree{Points: append([]geom.Point(nil), pts...)}
	b := NewBuilder(2 * len(pts))
	var root NodeID = Nil
	if len(pts) > 0 {
		root = oc.build(b, 0, int32(len(pts)), int32(leafSize))
	}
	topo, err := b.Build(root)
	if err != nil {
		return nil, err
	}
	oc.Topo = topo
	if err := oc.validate(); err != nil {
		return nil, err
	}
	return oc, nil
}

// MustBuildOctree is BuildOctree that panics on error.
func MustBuildOctree(pts []geom.Point, leafSize int) *Octree {
	oc, err := BuildOctree(pts, leafSize)
	if err != nil {
		panic(err)
	}
	return oc
}

// octant returns the 3-bit octant index of p relative to center.
func octant(p, center geom.Point) int {
	k := 0
	for d := 0; d < geom.Dim; d++ {
		if p[d] >= center[d] {
			k |= 1 << d
		}
	}
	return k
}

func (oc *Octree) build(b *Builder, lo, hi, leafSize int32) NodeID {
	id := b.Add()
	box := geom.BoxOf(oc.Points[lo:hi])
	oc.Boxes = append(oc.Boxes, box)
	oc.Start = append(oc.Start, lo)
	oc.End = append(oc.End, hi)
	if hi-lo <= leafSize {
		return id
	}
	var center geom.Point
	for d := 0; d < geom.Dim; d++ {
		center[d] = (box.Min[d] + box.Max[d]) / 2
	}
	// Counting sort of the range into octants. Because the box is tight,
	// every non-degenerate dimension separates its min- and max-points into
	// different octants; all points landing in one octant therefore means
	// every dimension is degenerate — the points coincide — and the node
	// stays a leaf. Splits always make progress.
	var counts [8]int32
	for _, p := range oc.Points[lo:hi] {
		counts[octant(p, center)]++
	}
	if counts[octant(oc.Points[lo], center)] == hi-lo {
		return id
	}
	var starts [9]int32
	for k := 0; k < 8; k++ {
		starts[k+1] = starts[k] + counts[k]
	}
	tmp := make([]geom.Point, hi-lo)
	var fill [8]int32
	for _, p := range oc.Points[lo:hi] {
		k := octant(p, center)
		tmp[starts[k]+fill[k]] = p
		fill[k]++
	}
	copy(oc.Points[lo:hi], tmp)
	for k := 0; k < 8; k++ {
		if counts[k] == 0 {
			continue
		}
		cl := lo + starts[k]
		child := oc.build(b, cl, cl+counts[k], leafSize)
		b.AddChild(id, child)
	}
	return id
}

// validate checks ranges, boxes, and child tiling.
func (oc *Octree) validate() error {
	n := oc.Topo.Len()
	if len(oc.Boxes) != n || len(oc.Start) != n || len(oc.End) != n {
		return errors.New("knest: octree parallel slices inconsistent")
	}
	for _, id := range oc.Topo.Preorder(nil) {
		s, e := oc.Start[id], oc.End[id]
		if s >= e {
			return errors.New("knest: octree node owns no points")
		}
		for _, p := range oc.Points[s:e] {
			if !oc.Boxes[id].Contains(p) {
				return errors.New("knest: octree box does not contain its points")
			}
		}
		kids := oc.Topo.Kids(id)
		if len(kids) == 0 {
			continue
		}
		var covered int32
		for _, c := range kids {
			covered += oc.End[c] - oc.Start[c]
		}
		if covered != e-s {
			return errors.New("knest: octree children do not tile parent range")
		}
	}
	return nil
}

// NodePoints returns the points of node n's subtree.
func (oc *Octree) NodePoints(n NodeID) []geom.Point {
	return oc.Points[oc.Start[n]:oc.End[n]]
}

// MinDist2 is the squared minimum box distance between node a of oc and node
// b of other — the dual-tree Score bound.
func (oc *Octree) MinDist2(a NodeID, other *Octree, b NodeID) float64 {
	return oc.Boxes[a].MinDist2(other.Boxes[b])
}

// PCSpec assembles dual-tree point correlation over two octrees as a k-ary
// nested recursion. count must point at the result accumulator.
func PCSpec(query, ref *Octree, radius float64, count *int64) Spec {
	r2 := radius * radius
	return Spec{
		Outer:      query.Topo,
		Inner:      ref.Topo,
		Hereditary: true,
		TruncInner2: func(o, i NodeID) bool {
			return query.MinDist2(o, ref, i) > r2
		},
		Work: func(o, i NodeID) {
			if !query.Topo.IsLeaf(o) || !ref.Topo.IsLeaf(i) {
				return
			}
			for _, q := range query.NodePoints(o) {
				for _, r := range ref.NodePoints(i) {
					if geom.Dist2(q, r) <= r2 {
						*count++
					}
				}
			}
		},
	}
}
