package loopfront

import (
	"os"
	"path/filepath"
	"testing"

	"twist/internal/transform"
	"twist/internal/transform/algebra"
)

// The checked-in loop-sourced examples must be exactly what the front-end
// generates — this keeps the committed *_template.go and *_twisted.go files
// in sync with cmd/twist -from-loops, mirroring the recursive corpus's
// TestExampleCorpusInSync.
func TestLoopCorpusInSync(t *testing.T) {
	cases := []struct {
		dir, base string
	}{
		{filepath.Join("..", "..", "examples", "transform"), "loopjoin"},
		{filepath.Join("..", "..", "examples", "transform"), "looptri"},
		{filepath.Join("..", "..", "examples", "looptiling"), "kernel"},
	}
	for _, c := range cases {
		t.Run(c.base, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(c.dir, c.base+".go"))
			if err != nil {
				t.Fatal(err)
			}
			// Convert under the repo-root-relative name cmd/twist is run
			// with, so the generated header's position matches byte for
			// byte.
			in := "examples/" + filepath.Base(c.dir) + "/" + c.base + ".go"
			unit, err := Single(in, src, "")
			if err != nil {
				t.Fatal(err)
			}
			wantTmpl, err := os.ReadFile(filepath.Join(c.dir, c.base+"_template.go"))
			if err != nil {
				t.Fatal(err)
			}
			if string(unit.Source) != string(wantTmpl) {
				t.Fatalf("%s_template.go out of sync with the loop front-end; regenerate with:\n  go run ./cmd/twist -in examples/%s/%s.go -from-loops",
					c.base, filepath.Base(c.dir), c.base)
			}
			tmpl, err := transform.ParseFile(c.base+"_template.go", unit.Source)
			if err != nil {
				t.Fatal(err)
			}
			got, err := algebra.GenerateSchedules(tmpl, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantTw, err := os.ReadFile(filepath.Join(c.dir, c.base+"_twisted.go"))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(wantTw) {
				t.Fatalf("%s_twisted.go out of sync with cmd/twist -from-loops output; regenerate with:\n  go run ./cmd/twist -in examples/%s/%s.go -from-loops",
					c.base, filepath.Base(c.dir), c.base)
			}
		})
	}
}
