// Package loopfront is the loop front door of the transformation pipeline:
// a go/ast source-to-source pass that converts plain Go loop nests into the
// nested-recursion template of paper §5, so that imperative code reaches
// recursion interchange, twisting, the schedule algebra, and the serving
// fleet without being rewritten by hand.
//
// The conversion follows Insa & Silva, "Transforming while/do/for/
// foreach-Loops into Recursive Methods" (PAPERS.md): each recognized loop
// level becomes a recursive descent, here over a balanced binary *range
// tree* of half-open index spans, with the loop body executing at leaf×leaf
// span pairs. Section 7.2 of the source paper is the payoff: twisting a
// loop-derived recursion is parameterless multi-level loop tiling, so a
// plain `for o { for i { work } }` nest gains the paper's locality
// transformations for free once it is in template form.
//
// # Recognized input
//
// A function opts in with a `//twist:loops` directive:
//
//	//twist:loops leafrun=8
//	func kernel(n, m int) {
//		for o := 0; o < n; o++ {
//			for i := 0; i < m; i++ {
//				visit(o, i)
//			}
//		}
//	}
//
// Each top-level loop in such a function must be a perfectly nested pair of
// integer loops in one of the canonical shapes Insa & Silva handle:
//
//   - counted: `for i := lo; i < hi; i++` (also `<=`, and `i += 1`)
//   - while:   `i := lo` followed by `for i < hi { body; i++ }`
//   - do:      `i := lo` followed by `for { body; i++; if i >= hi { break } }`
//     (the body runs at least once, like do/while)
//   - range:   `for i := range n` (Go 1.22 integer range)
//
// The inner loop's body is arbitrary Go, embedded verbatim, subject to the
// restrictions below. The inner lower bound must not depend on the outer
// index; the inner *upper* bound may — that is the paper's irregular
// iteration space, and the pass then emits the Fig 6(b) truncation-flag
// machinery (per-span bound maxima and flag accessors) so that interchange
// and twisting stay legal.
//
// Unsupported forms are rejected with positional diagnostics
// (`loopfront: file:line:col: message`), never silently mis-translated:
// imperfect nests, non-canonical headers, `break`/`goto`/`return`/`defer`/
// labels inside the body, writes to the loop indices, outer-dependent lower
// bounds, and references to function-local state declared outside the nest
// (hoist those to package level; the generated recursion lives in new
// top-level functions and cannot see them). Index variables are assumed to
// be `int`, and bound expressions must be pure — they are re-evaluated by
// the generated code.
//
// # Generated output
//
// For a nest named kernel the pass emits one self-contained Go file (same
// package as the source) holding the range-tree node type, a balanced tree
// builder, the subtree-size helper named by the `size=` directive option,
// the `//twist:outer`/`//twist:inner` recursion pair, and two entry points:
// kernelNest (evaluates the source bounds and builds the two trees) and
// kernelRun (same parameters as the source function; visits exactly the
// source loop's iterations in exactly its order). The file round-trips
// transform.ParseFile unmodified — gen.go re-parses it as a gate — so
// cmd/twist, the schedule algebra, and twistd's `frontend: "loops"` axis can
// chain on it directly.
package loopfront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
)

// Shape names the source form of one recognized loop level.
type Shape string

// The four canonical loop shapes of Insa & Silva's conversion.
const (
	ShapeFor   Shape = "for"   // counted: for i := lo; i < hi; i++
	ShapeWhile Shape = "while" // i := lo; for i < hi { ...; i++ }
	ShapeDo    Shape = "do"    // i := lo; for { ...; i++; if i >= hi { break } }
	ShapeRange Shape = "range" // for i := range n
)

// Unit is one converted loop nest: the recognized facts plus the generated
// template file.
type Unit struct {
	// Name is the nest name (directive option `name=`, default the function
	// name), the prefix of every generated identifier.
	Name string
	// Func is the annotated source function holding the nest.
	Func string
	// Pkg is the package name of the source file (and the generated file).
	Pkg string

	// OuterIdx and InnerIdx are the source index variable names.
	OuterIdx, InnerIdx string
	// OuterShape and InnerShape are the recognized loop shapes.
	OuterShape, InnerShape Shape
	// Bounds of the two levels as written (upper bounds exclusive as
	// rendered; `<=` sources are rendered with a +1 wrap). For an irregular
	// nest InnerHi is the outer-dependent row bound expression.
	OuterLo, OuterHi, InnerLo, InnerHi string
	// Irregular reports an outer-dependent inner upper bound (paper §4).
	Irregular bool
	// LeafRun is the consecutive-iteration count under one inner leaf
	// (directive option `leafrun=`, default 1). The outer tree always uses
	// single-iteration leaves so the Original schedule is the source order.
	LeafRun int
	// Pos is the source position of the nest's outer loop.
	Pos token.Position

	// Generated identifier names.
	NodeType, NestFn, RunFn, OuterFn, InnerFn string
	SizeFn, TruncFn, SetTruncFn               string

	// Source is the generated template file; it parses with
	// transform.ParseFile unmodified.
	Source []byte
}

// errf formats a positional diagnostic.
func errf(fset *token.FileSet, pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("loopfront: %s: %s", fset.Position(pos), fmt.Sprintf(format, args...))
}

// directive is the parsed //twist:loops comment of one function.
type directive struct {
	name    string
	leafRun int
	pos     token.Pos
}

// maxLeafRun bounds the leafrun= option; beyond this the inner tree is a
// single leaf for any realistic range and tiling is meaningless.
const maxLeafRun = 1 << 16

// parseLoopsDirective extracts a //twist:loops directive from a doc comment.
func parseLoopsDirective(fset *token.FileSet, doc *ast.CommentGroup) (*directive, error) {
	if doc == nil {
		return nil, nil
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, "twist:loops") {
			continue
		}
		rest := strings.TrimPrefix(text, "twist:loops")
		if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
			continue // e.g. //twist:loopsmash — not ours
		}
		d := &directive{leafRun: 1, pos: c.Pos()}
		for _, f := range strings.Fields(rest) {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, errf(fset, c.Pos(), "malformed //twist:loops option %q (want key=value)", f)
			}
			switch k {
			case "name":
				if !token.IsIdentifier(v) {
					return nil, errf(fset, c.Pos(), "//twist:loops name=%q is not a valid identifier", v)
				}
				d.name = v
			case "leafrun":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 || n > maxLeafRun {
					return nil, errf(fset, c.Pos(), "//twist:loops leafrun=%q must be an integer in 1..%d", v, maxLeafRun)
				}
				d.leafRun = n
			default:
				return nil, errf(fset, c.Pos(), "unknown //twist:loops option %q", k)
			}
		}
		return d, nil
	}
	return nil, nil
}

// File converts every //twist:loops function in src, returning one Unit per
// recognized nest (a function holding several top-level nests yields several
// units, suffixed name2, name3, ...). It is an error if the file has no
// //twist:loops function, or if any annotated loop fails to convert.
func File(filename string, src []byte) ([]*Unit, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("loopfront: %v", err)
	}
	var units []*Unit
	seen := map[string]token.Pos{}
	annotated := 0
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		d, err := parseLoopsDirective(fset, fn.Doc)
		if err != nil {
			return nil, err
		}
		if d == nil {
			continue
		}
		annotated++
		us, err := convertFunc(fset, file, fn, d)
		if err != nil {
			return nil, err
		}
		for _, u := range us {
			if prev, dup := seen[u.Name]; dup {
				return nil, errf(fset, fn.Pos(), "nest name %q already used at %s; disambiguate with //twist:loops name=",
					u.Name, fset.Position(prev))
			}
			seen[u.Name] = fn.Pos()
			units = append(units, u)
		}
	}
	if annotated == 0 {
		return nil, fmt.Errorf("loopfront: %s: no //twist:loops functions", filename)
	}
	return units, nil
}

// Single is File restricted to one nest: with name == "" the file must hold
// exactly one nest; otherwise the nest with that name is selected.
func Single(filename string, src []byte, name string) (*Unit, error) {
	units, err := File(filename, src)
	if err != nil {
		return nil, err
	}
	if name == "" {
		if len(units) != 1 {
			return nil, fmt.Errorf("loopfront: %s holds %d nests (%s); select one by name", filename, len(units), nestNames(units))
		}
		return units[0], nil
	}
	for _, u := range units {
		if u.Name == name {
			return u, nil
		}
	}
	return nil, fmt.Errorf("loopfront: %s has no nest %q (have %s)", filename, name, nestNames(units))
}

func nestNames(units []*Unit) string {
	names := make([]string, len(units))
	for i, u := range units {
		names[i] = u.Name
	}
	return strings.Join(names, ", ")
}
