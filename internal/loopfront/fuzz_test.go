package loopfront

import (
	"strings"
	"testing"

	"twist/internal/transform"
)

// FuzzLoopFront checks the front end on arbitrary Go source: every input is
// either rejected with a diagnostic or converted into units whose generated
// templates round-trip transform.ParseFile and the downstream generator
// without error. Internal "(tool bug)" failures — the generator emitting
// something its own gates reject — are crashes for the fuzzer to minimize,
// not acceptable rejections.
func FuzzLoopFront(f *testing.F) {
	f.Add([]byte("package p\n\nvar visit func(o, i int)\n\n//twist:loops\nfunc kernel(n, m int) {\n\tfor o := 0; o < n; o++ {\n\t\tfor i := 0; i < m; i++ {\n\t\t\tvisit(o, i)\n\t\t}\n\t}\n}\n"))
	f.Add([]byte("package p\n\nvar visit func(o, i int)\n\n//twist:loops leafrun=4\nfunc tri(n int) {\n\tfor o := 0; o < n; o++ {\n\t\tfor i := 0; i < o; i++ {\n\t\t\tvisit(o, i)\n\t\t}\n\t}\n}\n"))
	f.Add([]byte("package p\n\nvar visit func(o, i int)\n\n//twist:loops\nfunc dd(n, m int) {\n\to := 0\n\tfor {\n\t\ti := 0\n\t\tfor {\n\t\t\tvisit(o, i)\n\t\t\ti++\n\t\t\tif i >= m {\n\t\t\t\tbreak\n\t\t\t}\n\t\t}\n\t\to++\n\t\tif o >= n {\n\t\t\tbreak\n\t\t}\n\t}\n}\n"))
	f.Add([]byte("package p\n\n//twist:loops\nfunc bad(n int) {\n\tfor o := 0; o < n; o++ {\n\t\tprintln(o)\n\t\tfor i := 0; i < n; i++ {\n\t\t}\n\t}\n}\n"))
	f.Add([]byte("package p\n\n//twist:loops\nfunc ww(n, m int) {\n\to := 2\n\tfor o < n {\n\t\ti := 1\n\t\tfor i <= m {\n\t\t\tprintln(o, i)\n\t\t\ti++\n\t\t}\n\t\to++\n\t}\n}\n"))
	f.Add([]byte("package p"))
	f.Fuzz(func(t *testing.T, src []byte) {
		units, err := File("fuzz.go", src)
		if err != nil {
			if strings.Contains(err.Error(), "tool bug") {
				t.Fatalf("generator self-gate tripped: %v", err)
			}
			return // rejected with a diagnostic: fine
		}
		for _, u := range units {
			tmpl, err := transform.ParseFile(u.Name+"_template.go", u.Source)
			if err != nil {
				t.Fatalf("accepted nest %s does not round-trip transform.ParseFile: %v\n%s", u.Name, err, u.Source)
			}
			if tmpl.Irregular() != u.Irregular {
				t.Fatalf("nest %s irregularity mismatch: template %v, unit %v", u.Name, tmpl.Irregular(), u.Irregular)
			}
			if _, err := transform.Generate(tmpl); err != nil {
				t.Fatalf("accepted nest %s fails downstream generation: %v", u.Name, err)
			}
		}
	})
}
