package loopfront

// Generation: emit the template file for one recognized nest. The output
// must conform to the Fig 2 template *by construction* — gen re-parses its
// own output through transform.ParseFile as a gate, so a unit that reaches
// the caller is guaranteed to chain into the downstream generator, the
// schedule algebra, and twistd.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/printer"
	"go/token"
	"strings"

	"twist/internal/transform"
)

// render pretty-prints an AST node with the source file's position table.
func render(fset *token.FileSet, n ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, n); err != nil {
		panic(err)
	}
	return b.String()
}

// maybeParens renders an expression, parenthesized unless atomic.
func maybeParens(fset *token.FileSet, e ast.Expr) string {
	s := render(fset, e)
	switch e.(type) {
	case *ast.Ident, *ast.BasicLit, *ast.SelectorExpr, *ast.CallExpr, *ast.ParenExpr, *ast.IndexExpr:
		return s
	}
	return "(" + s + ")"
}

// variantSuffixes are the names internal/transform will later derive from
// the recursion pair; the collision check covers them so the *whole*
// pipeline is clash-free, not just the template file.
var variantSuffixes = []string{
	"OuterSwapped", "InnerSwapped", "OuterTwisted", "OuterSwappedTwisted",
	"InnerTwisted", "OuterTwistedCutoff", "OuterSwappedTwistedCutoff",
}

// names holds every identifier the generated file declares or binds.
type names struct {
	node, leafConst, tree, size, bound, trunc, setTrunc, mark string
	nest, run, outer, inner                                   string
	on, in                                                    string // recursion parameter names
	oLo, oHi, iLo, iHi, h, ov, iv                             string // entry-point locals
}

// fresh picks base, or base2, base3, ... — the first name not in used —
// and reserves it.
func fresh(base string, used map[string]bool) string {
	name := base
	for k := 2; used[name]; k++ {
		name = fmt.Sprintf("%s%d", base, k)
	}
	used[name] = true
	return name
}

// identSet collects every identifier appearing under a node.
func identSet(n ast.Node, out map[string]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
}

// pickNames resolves all generated identifiers for a nest named prefix,
// erroring when a prefix-derived top-level name collides with the source.
func pickNames(fset *token.FileSet, file *ast.File, fn *ast.FuncDecl, n *loNest, prefix string, irregular bool) (*names, error) {
	used := map[string]bool{}
	identSet(fn, used)
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			used[d.Name.Name] = true
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, id := range s.Names {
						used[id.Name] = true
					}
				case *ast.TypeSpec:
					used[s.Name.Name] = true
				}
			}
		}
	}

	nm := &names{
		node: prefix + "Node", leafConst: prefix + "LeafRun",
		tree: prefix + "Tree", size: prefix + "Size",
		nest: prefix + "Nest", run: prefix + "Run",
		outer: prefix + "Outer", inner: prefix + "Inner",
	}
	topLevel := []string{nm.node, nm.leafConst, nm.tree, nm.size, nm.nest, nm.run, nm.outer, nm.inner}
	if irregular {
		nm.bound, nm.trunc, nm.setTrunc = prefix+"Bound", prefix+"Trunc", prefix+"SetTrunc"
		topLevel = append(topLevel, nm.bound, nm.trunc, nm.setTrunc)
		if n.inner.shape == ShapeDo {
			nm.mark = prefix + "Mark"
			topLevel = append(topLevel, nm.mark)
		}
	}
	for _, suf := range variantSuffixes {
		topLevel = append(topLevel, prefix+suf)
	}
	for _, name := range topLevel {
		if used[name] {
			return nil, errf(fset, fn.Pos(), "generated identifier %s collides with an existing name; pick another nest name with //twist:loops name=", name)
		}
	}
	for _, name := range topLevel {
		used[name] = true
	}

	// Recursion parameters: must not collide with anything the embedded
	// body or bounds reference, nor with the index names they sit beside.
	nm.on = fresh("on", used)
	nm.in = fresh("in", used)

	// Entry-point locals: must not shadow anything the bound expressions
	// (embedded into pNest) or the parameter forwarding (pRun) reference.
	entryUsed := map[string]bool{n.outer.idx: true, n.inner.idx: true}
	for _, f := range fn.Type.Params.List {
		for _, id := range f.Names {
			entryUsed[id.Name] = true
		}
	}
	for _, e := range []ast.Expr{n.outer.lo, n.outer.hi, n.inner.lo, n.inner.hi} {
		if e != nil {
			identSet(e, entryUsed)
		}
	}
	for _, name := range topLevel {
		entryUsed[name] = true
	}
	nm.oLo = fresh("oLo", entryUsed)
	nm.oHi = fresh("oHi", entryUsed)
	nm.iLo = fresh("iLo", entryUsed)
	nm.iHi = fresh("iHi", entryUsed)
	nm.h = fresh("h", entryUsed)
	nm.ov = fresh("outer", entryUsed)
	nm.iv = fresh("inner", entryUsed)
	return nm, nil
}

// convertNest runs checks, naming, emission, and the round-trip gate for
// one nest, producing its Unit.
func convertNest(fset *token.FileSet, file *ast.File, fn *ast.FuncDecl, n *loNest, name string, leafRun int) (*Unit, error) {
	irregular, err := checkNest(fset, fn, n)
	if err != nil {
		return nil, err
	}
	nm, err := pickNames(fset, file, fn, n, name, irregular)
	if err != nil {
		return nil, err
	}
	g := &emitter{fset: fset, file: file, fn: fn, n: n, nm: nm, name: name, leafRun: leafRun, irregular: irregular}
	raw := g.emit()
	src, err := format.Source(raw)
	if err != nil {
		return nil, fmt.Errorf("loopfront: generated code does not format (tool bug): %v\n%s", err, raw)
	}
	tmpl, err := transform.ParseFile(name+"_template.go", src)
	if err != nil {
		return nil, fmt.Errorf("loopfront: generated template does not round-trip transform.ParseFile (tool bug): %v\n%s", err, src)
	}
	if tmpl.Irregular() != irregular {
		return nil, fmt.Errorf("loopfront: generated template irregularity %v disagrees with the recognizer's %v (tool bug)", tmpl.Irregular(), irregular)
	}

	u := &Unit{
		Name: name, Func: fn.Name.Name, Pkg: file.Name.Name,
		OuterIdx: n.outer.idx, InnerIdx: n.inner.idx,
		OuterShape: n.outer.shape, InnerShape: n.inner.shape,
		OuterLo: g.loString(n.outer), OuterHi: g.hiString(n.outer),
		InnerLo: g.loString(n.inner), InnerHi: g.hiString(n.inner),
		Irregular: irregular, LeafRun: leafRun,
		Pos:      fset.Position(n.outer.pos),
		NodeType: nm.node, NestFn: nm.nest, RunFn: nm.run,
		OuterFn: nm.outer, InnerFn: nm.inner, SizeFn: nm.size,
		TruncFn: nm.trunc, SetTruncFn: nm.setTrunc,
		Source: src,
	}
	return u, nil
}

// emitter writes the template file for one nest.
type emitter struct {
	fset      *token.FileSet
	file      *ast.File
	fn        *ast.FuncDecl
	n         *loNest
	nm        *names
	name      string
	leafRun   int
	irregular bool
	b         bytes.Buffer
}

func (g *emitter) pf(format string, args ...any) { fmt.Fprintf(&g.b, format, args...) }

// loString renders a level's lower bound (range loops have an implicit 0).
func (g *emitter) loString(l *loop) string {
	if l.lo == nil {
		return "0"
	}
	return render(g.fset, l.lo)
}

// hiString renders a level's exclusive upper bound; `<=` headers get a +1
// wrap so the rendered space is always half-open.
func (g *emitter) hiString(l *loop) string {
	if l.incl {
		return maybeParens(g.fset, l.hi) + "+1"
	}
	return render(g.fset, l.hi)
}

// params renders the source function's parameter list and its forwarding
// argument list.
func (g *emitter) params() (decl, fwd string) {
	var ds, fs []string
	for _, f := range g.fn.Type.Params.List {
		var names []string
		for _, id := range f.Names {
			names = append(names, id.Name)
			fs = append(fs, id.Name)
		}
		ds = append(ds, strings.Join(names, ", ")+" "+render(g.fset, f.Type))
	}
	return strings.Join(ds, ", "), strings.Join(fs, ", ")
}

func (g *emitter) emit() []byte {
	n, nm := g.n, g.nm
	g.pf("// Code generated by the twist loop front-end (internal/loopfront) from the\n")
	g.pf("// //twist:loops nest %q (function %s, %s). DO NOT EDIT.\n", g.name, g.fn.Name.Name, g.fset.Position(n.outer.pos))
	g.pf("//\n")
	g.pf("// The source nest — a %s-shaped outer loop over %s in [%s, %s) nesting a\n", n.outer.shape, n.outer.idx, g.loString(n.outer), g.hiString(n.outer))
	if g.irregular {
		g.pf("// %s-shaped inner loop over %s whose upper bound %s depends on %s —\n", n.inner.shape, n.inner.idx, g.hiString(n.inner), n.outer.idx)
	} else {
		g.pf("// %s-shaped inner loop over %s in [%s, %s) —\n", n.inner.shape, n.inner.idx, g.loString(n.inner), g.hiString(n.inner))
	}
	g.pf("// is re-expressed as two balanced-divide recursions over binary range\n")
	g.pf("// trees of half-open index spans, conforming to the paper's §5 nested\n")
	g.pf("// recursion template (Fig 2): %s walks the outer tree, %s the\n", nm.outer, nm.inner)
	g.pf("// inner, and the loop body runs verbatim at leaf×leaf span pairs. Under\n")
	g.pf("// the Original schedule the visit order is exactly the source loop's;\n")
	g.pf("// interchange and twisting then apply — per §7.2, twisting a loop-derived\n")
	g.pf("// recursion is parameterless multi-level loop tiling.\n")
	if g.irregular {
		g.pf("//\n")
		g.pf("// The outer-dependent inner bound makes the space irregular (§4): every\n")
		g.pf("// outer node carries bmax, the largest row bound over its span, so\n")
		g.pf("// truncation (%s.lo >= %s.bmax) prunes exactly the all-empty pairs, and\n", nm.in, nm.on)
		g.pf("// the %s/%s flag accessors carry the Fig 6(b) protocol for the\n", nm.trunc, nm.setTrunc)
		g.pf("// twisted schedules.\n")
	}
	g.pf("\npackage %s\n\n", g.file.Name.Name)

	g.nodeType()
	g.leafRunConst()
	g.treeBuilder()
	g.sizeFn()
	if g.irregular {
		g.boundFn()
		g.truncFns()
		if n.inner.shape == ShapeDo {
			g.markFn()
		}
	}
	g.nestFn()
	g.runFn()
	g.outerFn()
	g.innerFn()
	return g.b.Bytes()
}

func (g *emitter) nodeType() {
	nm := g.nm
	g.pf("// %s is one half-open span [lo, hi) of an iteration range: a node of a\n", nm.node)
	g.pf("// balanced binary range tree. size counts subtree nodes (the twisting\n")
	g.pf("// balance oracle)")
	if g.irregular {
		g.pf("; bmax is the largest inner row bound over the span and\n")
		g.pf("// trunc the Fig 6(b) region flag")
		if g.nm.mark != "" {
			g.pf("; dlo marks the row start a do-shaped\n// source loop executes unconditionally")
		}
	}
	g.pf(".\n")
	g.pf("type %s struct {\n", nm.node)
	g.pf("\tleft, right *%s\n", nm.node)
	g.pf("\tlo, hi      int\n")
	g.pf("\tsize        int\n")
	if g.irregular {
		g.pf("\tbmax  int\n")
		g.pf("\ttrunc bool\n")
		if nm.mark != "" {
			g.pf("\tdlo int\n")
		}
	}
	g.pf("}\n\n")
}

func (g *emitter) leafRunConst() {
	g.pf("// %s is the consecutive-iteration count under one inner leaf\n", g.nm.leafConst)
	g.pf("// (//twist:loops leafrun=%d). The outer tree always uses run-1 leaves so\n", g.leafRun)
	g.pf("// the Original schedule reproduces the source order exactly.\n")
	g.pf("const %s = %d\n\n", g.nm.leafConst, g.leafRun)
}

func (g *emitter) treeBuilder() {
	nm := g.nm
	g.pf("// %s builds a balanced binary range tree over [lo, hi): leaves cover at\n", nm.tree)
	g.pf("// most leaf consecutive iterations, internal nodes split the leaf count\n")
	g.pf("// in half. An empty span is a nil tree.\n")
	g.pf("func %s(lo, hi, leaf int) *%s {\n", nm.tree, nm.node)
	g.pf("\tif hi <= lo {\n\t\treturn nil\n\t}\n")
	g.pf("\tn := (hi - lo + leaf - 1) / leaf\n")
	g.pf("\tif n <= 1 {\n")
	g.pf("\t\treturn &%s{lo: lo, hi: hi, size: 1}\n", nm.node)
	g.pf("\t}\n")
	g.pf("\tmid := lo + (n/2)*leaf\n")
	g.pf("\tl := %s(lo, mid, leaf)\n", nm.tree)
	g.pf("\tr := %s(mid, hi, leaf)\n", nm.tree)
	g.pf("\treturn &%s{left: l, right: r, lo: lo, hi: hi, size: l.size + r.size + 1}\n", nm.node)
	g.pf("}\n\n")
}

func (g *emitter) sizeFn() {
	nm := g.nm
	g.pf("// %s reports the node count of a subtree, nil-safe: the §5 size oracle\n", nm.size)
	g.pf("// the twisted schedules balance the two recursions with.\n")
	g.pf("func %s(nd *%s) int {\n", nm.size, nm.node)
	g.pf("\tif nd == nil {\n\t\treturn 0\n\t}\n")
	g.pf("\treturn nd.size\n")
	g.pf("}\n\n")
}

func (g *emitter) boundFn() {
	nm := g.nm
	g.pf("// %s fills bmax — the maximum inner row bound over each outer span —\n", nm.bound)
	g.pf("// by post-order reduction, returning the root's value. floor (the inner\n")
	g.pf("// lower bound) is the value for all-empty spans, making the truncation\n")
	g.pf("// test `%s.lo >= %s.bmax` prune exactly the empty column pairs.\n", nm.in, nm.on)
	g.pf("func %s(nd *%s, floor int, rowHi func(int) int) int {\n", nm.bound, nm.node)
	g.pf("\tif nd == nil {\n\t\treturn floor\n\t}\n")
	g.pf("\tif nd.left == nil {\n")
	g.pf("\t\tm := floor\n")
	g.pf("\t\tfor x := nd.lo; x < nd.hi; x++ {\n")
	g.pf("\t\t\tif h := rowHi(x); h > m {\n\t\t\t\tm = h\n\t\t\t}\n")
	g.pf("\t\t}\n")
	g.pf("\t\tnd.bmax = m\n")
	g.pf("\t\treturn m\n")
	g.pf("\t}\n")
	g.pf("\tm := %s(nd.left, floor, rowHi)\n", nm.bound)
	g.pf("\tif r := %s(nd.right, floor, rowHi); r > m {\n\t\tm = r\n\t}\n", nm.bound)
	g.pf("\tnd.bmax = m\n")
	g.pf("\treturn m\n")
	g.pf("}\n\n")
}

func (g *emitter) truncFns() {
	nm := g.nm
	g.pf("// %s reads the Fig 6(b) truncation flag of an outer-tree node.\n", nm.trunc)
	g.pf("func %s(nd *%s) bool {\n", nm.trunc, nm.node)
	g.pf("\treturn nd != nil && nd.trunc\n")
	g.pf("}\n\n")
	g.pf("// %s writes the Fig 6(b) truncation flag of an outer-tree node.\n", nm.setTrunc)
	g.pf("func %s(nd *%s, v bool) {\n", nm.setTrunc, nm.node)
	g.pf("\tif nd != nil {\n\t\tnd.trunc = v\n\t}\n")
	g.pf("}\n\n")
}

func (g *emitter) markFn() {
	nm := g.nm
	g.pf("// %s records the first inner iteration on every node: the do-shaped\n", nm.mark)
	g.pf("// source loop executes it unconditionally, so the leaf guard must not\n")
	g.pf("// skip it even on rows whose bound has already been passed.\n")
	g.pf("func %s(nd *%s, dlo int) {\n", nm.mark, nm.node)
	g.pf("\tif nd == nil {\n\t\treturn\n\t}\n")
	g.pf("\tnd.dlo = dlo\n")
	g.pf("\t%s(nd.left, dlo)\n", nm.mark)
	g.pf("\t%s(nd.right, dlo)\n", nm.mark)
	g.pf("}\n\n")
}

func (g *emitter) nestFn() {
	n, nm := g.n, g.nm
	decl, _ := g.params()
	g.pf("// %s evaluates the source bounds and builds the two range trees; pass\n", nm.nest)
	g.pf("// the pair to %s or any schedule cmd/twist generates from the\n", nm.outer)
	g.pf("// template. Parameters are those of the source function %s.\n", g.fn.Name.Name)
	g.pf("func %s(%s) (%s, %s *%s) {\n", nm.nest, decl, nm.ov, nm.iv, nm.node)
	g.pf("\t%s, %s := %s, %s\n", nm.oLo, nm.oHi, g.loString(n.outer), g.hiString(n.outer))
	if n.outer.shape == ShapeDo {
		g.pf("\tif %s < %s+1 { // do-shaped: the outer body runs at least once\n", nm.oHi, nm.oLo)
		g.pf("\t\t%s = %s + 1\n", nm.oHi, nm.oLo)
		g.pf("\t}\n")
	}
	g.pf("\t%s = %s(%s, %s, 1)\n", nm.ov, nm.tree, nm.oLo, nm.oHi)
	if g.irregular {
		g.pf("\t%s := %s\n", nm.iLo, g.loString(n.inner))
		g.pf("\t%s := %s(%s, %s, func(%s int) int {\n", nm.iHi, nm.bound, nm.ov, nm.iLo, n.outer.idx)
		if n.inner.shape == ShapeDo {
			g.pf("\t\t%s := %s\n", nm.h, g.hiString(n.inner))
			g.pf("\t\tif %s < %s+1 { // do-shaped: every row runs at least once\n", nm.h, nm.iLo)
			g.pf("\t\t\t%s = %s + 1\n", nm.h, nm.iLo)
			g.pf("\t\t}\n")
			g.pf("\t\treturn %s\n", nm.h)
		} else {
			g.pf("\t\treturn %s\n", g.hiString(n.inner))
		}
		g.pf("\t})\n")
		g.pf("\t%s = %s(%s, %s, %s)\n", nm.iv, nm.tree, nm.iLo, nm.iHi, nm.leafConst)
		if n.inner.shape == ShapeDo {
			g.pf("\t%s(%s, %s)\n", nm.mark, nm.iv, nm.iLo)
		}
	} else {
		g.pf("\t%s, %s := %s, %s\n", nm.iLo, nm.iHi, g.loString(n.inner), g.hiString(n.inner))
		if n.inner.shape == ShapeDo {
			g.pf("\tif %s < %s+1 { // do-shaped: the inner body runs at least once\n", nm.iHi, nm.iLo)
			g.pf("\t\t%s = %s + 1\n", nm.iHi, nm.iLo)
			g.pf("\t}\n")
		}
		g.pf("\t%s = %s(%s, %s, %s)\n", nm.iv, nm.tree, nm.iLo, nm.iHi, nm.leafConst)
	}
	g.pf("\treturn %s, %s\n", nm.ov, nm.iv)
	g.pf("}\n\n")
}

func (g *emitter) runFn() {
	nm := g.nm
	decl, fwd := g.params()
	g.pf("// %s executes the nest through the generated recursion under the\n", nm.run)
	g.pf("// Original schedule: same parameters as %s, same iterations,\n", g.fn.Name.Name)
	g.pf("// same order.\n")
	g.pf("func %s(%s) {\n", nm.run, decl)
	g.pf("\t%s, %s := %s(%s)\n", nm.ov, nm.iv, nm.nest, fwd)
	g.pf("\t%s(%s, %s)\n", nm.outer, nm.ov, nm.iv)
	g.pf("}\n\n")
}

func (g *emitter) outerFn() {
	nm := g.nm
	g.pf("// %s is the outer half of the recursion pair: preorder descent over\n", nm.outer)
	g.pf("// the outer range tree, visiting the whole inner tree at every node.\n")
	g.pf("//\n")
	if g.irregular {
		g.pf("//twist:outer size=%s trunc=%s settrunc=%s\n", nm.size, nm.trunc, nm.setTrunc)
	} else {
		g.pf("//twist:outer size=%s\n", nm.size)
	}
	g.pf("func %s(%s *%s, %s *%s) {\n", nm.outer, nm.on, nm.node, nm.in, nm.node)
	g.pf("\tif %s == nil {\n\t\treturn\n\t}\n", nm.on)
	g.pf("\t%s(%s, %s)\n", nm.inner, nm.on, nm.in)
	g.pf("\t%s(%s.left, %s)\n", nm.outer, nm.on, nm.in)
	g.pf("\t%s(%s.right, %s)\n", nm.outer, nm.on, nm.in)
	g.pf("}\n\n")
}

func (g *emitter) innerFn() {
	n, nm := g.n, g.nm
	g.pf("// %s is the inner half of the recursion pair: preorder descent over\n", nm.inner)
	g.pf("// the inner range tree with the source body running at leaf×leaf pairs.\n")
	g.pf("//\n")
	g.pf("//twist:inner\n")
	g.pf("func %s(%s *%s, %s *%s) {\n", nm.inner, nm.on, nm.node, nm.in, nm.node)
	if g.irregular {
		g.pf("\tif %s == nil || %s.lo >= %s.bmax {\n\t\treturn\n\t}\n", nm.in, nm.in, nm.on)
	} else {
		g.pf("\tif %s == nil {\n\t\treturn\n\t}\n", nm.in)
	}
	g.pf("\tif %s.left == nil && %s.left == nil {\n", nm.on, nm.in)
	g.pf("\t\tfor %s := %s.lo; %s < %s.hi; %s++ {\n", n.outer.idx, nm.on, n.outer.idx, nm.on, n.outer.idx)
	g.pf("\t\t\tfor %s := %s.lo; %s < %s.hi; %s++ {\n", n.inner.idx, nm.in, n.inner.idx, nm.in, n.inner.idx)
	if g.irregular {
		op := ">="
		hi := maybeParens(g.fset, n.inner.hi)
		if n.inner.incl {
			op = ">"
		}
		switch n.inner.shape {
		case ShapeDo:
			g.pf("\t\t\t\tif %s %s %s && %s != %s.dlo {\n\t\t\t\t\tcontinue\n\t\t\t\t}\n", n.inner.idx, op, hi, n.inner.idx, nm.in)
		default:
			g.pf("\t\t\t\tif %s %s %s {\n\t\t\t\t\tcontinue\n\t\t\t\t}\n", n.inner.idx, op, hi)
		}
	}
	for _, st := range n.inner.body {
		g.pf("\t\t\t\t%s\n", render(g.fset, st))
	}
	g.pf("\t\t\t}\n")
	g.pf("\t\t}\n")
	g.pf("\t}\n")
	g.pf("\t%s(%s, %s.left)\n", nm.inner, nm.on, nm.in)
	g.pf("\t%s(%s, %s.right)\n", nm.inner, nm.on, nm.in)
	g.pf("}\n")
}
