package loopfront

import (
	"strings"
	"testing"

	"twist/internal/transform"
)

// wrap builds a minimal source file around a //twist:loops function body;
// label becomes a doc-comment line above the directive.
func wrap(label, sig, body string) []byte {
	return []byte(`package p

var visit func(o, i int)

func bnd(o int) int { return o * 2 }

// ` + label + `
//twist:loops
func ` + sig + ` {
` + body + `
}
`)
}

const rectBody = `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}`

func TestConvertRect(t *testing.T) {
	src := wrap("rect", "kernel(n, m int)", rectBody)
	units, err := File("input.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	u := units[0]
	if u.Name != "kernel" || u.Func != "kernel" || u.Pkg != "p" {
		t.Errorf("unit identity = %q/%q/%q", u.Name, u.Func, u.Pkg)
	}
	if u.OuterShape != ShapeFor || u.InnerShape != ShapeFor {
		t.Errorf("shapes = %s/%s, want for/for", u.OuterShape, u.InnerShape)
	}
	if u.Irregular {
		t.Error("rectangular nest classified irregular")
	}
	if u.OuterIdx != "o" || u.InnerIdx != "i" {
		t.Errorf("indices = %s/%s", u.OuterIdx, u.InnerIdx)
	}
	if u.OuterLo != "0" || u.OuterHi != "n" || u.InnerLo != "0" || u.InnerHi != "m" {
		t.Errorf("bounds = [%s,%s) [%s,%s)", u.OuterLo, u.OuterHi, u.InnerLo, u.InnerHi)
	}
	if u.LeafRun != 1 {
		t.Errorf("LeafRun = %d, want 1", u.LeafRun)
	}

	// The tentpole contract: the emitted template chains into the existing
	// transformer without modification.
	tmpl, err := transform.ParseFile("kernel_template.go", u.Source)
	if err != nil {
		t.Fatalf("generated template rejected by transform.ParseFile: %v\n%s", err, u.Source)
	}
	if tmpl.Irregular() {
		t.Error("template irregular, recognizer said regular")
	}
	if _, err := transform.Generate(tmpl); err != nil {
		t.Fatalf("transform.Generate on the template: %v", err)
	}
	for _, want := range []string{"kernelNode", "kernelTree", "kernelSize", "kernelNest", "kernelRun", "//twist:outer size=kernelSize", "//twist:inner", "DO NOT EDIT"} {
		if !strings.Contains(string(u.Source), want) {
			t.Errorf("generated template missing %q", want)
		}
	}
}

func TestConvertIrregular(t *testing.T) {
	cases := []struct {
		name string
		sig  string
		body string
		do   bool
	}{
		{"triangular-for", "tri(n int)", `	for o := 0; o < n; o++ {
		for i := 0; i < o; i++ {
			visit(o, i)
		}
	}`, false},
		{"call-bound-while", "tri(n int)", `	for o := 0; o < n; o++ {
		i := 0
		for i < bnd(o) {
			visit(o, i)
			i++
		}
	}`, false},
		{"do-inner", "tri(n int)", `	for o := 0; o < n; o++ {
		i := 0
		for {
			visit(o, i)
			i++
			if i >= o {
				break
			}
		}
	}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, err := Single("input.go", wrap(tc.name, tc.sig, tc.body), "")
			if err != nil {
				t.Fatal(err)
			}
			if !u.Irregular {
				t.Fatal("outer-dependent inner bound not classified irregular")
			}
			tmpl, err := transform.ParseFile("tri_template.go", u.Source)
			if err != nil {
				t.Fatalf("template rejected: %v\n%s", err, u.Source)
			}
			if !tmpl.Irregular() {
				t.Error("template regular, recognizer said irregular")
			}
			if _, err := transform.Generate(tmpl); err != nil {
				t.Fatalf("transform.Generate: %v", err)
			}
			for _, want := range []string{"triBound", "triTrunc", "triSetTrunc", "trunc=triTrunc settrunc=triSetTrunc"} {
				if !strings.Contains(string(u.Source), want) {
					t.Errorf("irregular template missing %q", want)
				}
			}
			if tc.do && !strings.Contains(string(u.Source), "triMark") {
				t.Error("do-shaped irregular template missing the dlo marker")
			}
		})
	}
}

func TestConvertShapes(t *testing.T) {
	cases := []struct {
		name         string
		body         string
		outer, inner Shape
	}{
		{"while-while", `	o := 2
	for o < n {
		i := 1
		for i < m {
			visit(o, i)
			i++
		}
		o++
	}`, ShapeWhile, ShapeWhile},
		{"do-do", `	o := 0
	for {
		i := 0
		for {
			visit(o, i)
			i++
			if i >= m {
				break
			}
		}
		o++
		if o >= n {
			break
		}
	}`, ShapeDo, ShapeDo},
		{"range-range", `	for o := range n {
		for i := range m {
			visit(o, i)
		}
	}`, ShapeRange, ShapeRange},
		{"incl-for", `	for o := 1; o <= n; o++ {
		for i := 1; i <= m; i++ {
			visit(o, i)
		}
	}`, ShapeFor, ShapeFor},
		{"plus-assign", `	for o := 0; o < n; o += 1 {
		for i := 0; i < m; i += 1 {
			visit(o, i)
		}
	}`, ShapeFor, ShapeFor},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, err := Single("input.go", wrap(tc.name, "kernel(n, m int)", tc.body), "")
			if err != nil {
				t.Fatal(err)
			}
			if u.OuterShape != tc.outer || u.InnerShape != tc.inner {
				t.Errorf("shapes = %s/%s, want %s/%s", u.OuterShape, u.InnerShape, tc.outer, tc.inner)
			}
			if u.Irregular {
				t.Error("rectangular nest classified irregular")
			}
			if _, err := transform.ParseFile("kernel_template.go", u.Source); err != nil {
				t.Fatalf("template rejected: %v\n%s", err, u.Source)
			}
			if tc.name == "incl-for" {
				if u.OuterHi != "n+1" || u.InnerHi != "m+1" {
					t.Errorf("inclusive bounds rendered as [%s] [%s], want n+1/m+1", u.OuterHi, u.InnerHi)
				}
			}
		})
	}
}

// TestReject is the diagnostics table: every unsupported form must fail
// with a positional loopfront error naming the problem.
func TestReject(t *testing.T) {
	cases := []struct {
		name string
		sig  string
		body string
		want string
	}{
		{"imperfect-nest", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		visit(o, 0)
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}`, "perfect nest"},
		{"no-loops", "kernel(n int)", `	visit(n, n)`, "holds no loops"},
		{"single-level", "kernel(n int)", `	for o := 0; o < n; o++ {
		visit(o, o)
	}`, "outer loop body must be exactly the inner loop"},
		{"decreasing", "kernel(n, m int)", `	for o := n; o > 0; o-- {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}`, "loop condition must be"},
		{"weird-post", "kernel(n, m int)", `	for o := 0; o < n; o += 2 {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}`, "post statement must be"},
		{"break-in-body", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			if i > o {
				break
			}
			visit(o, i)
		}
	}`, "break out of the converted loop"},
		{"return-in-body", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			if i > o {
				return
			}
			visit(o, i)
		}
	}`, "return inside the nest body"},
		{"goto-in-body", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			goto done
		}
	}
done:`, "goto inside the nest body"},
		{"defer-in-body", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			defer visit(o, i)
		}
	}`, "defer inside the nest body"},
		{"index-write", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			i = i + 1
		}
	}`, "assignment to the loop index"},
		{"index-incdec", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			o++
		}
	}`, "update of the loop index"},
		{"index-addr", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(*&i, o)
		}
	}`, "taking the address of the loop index"},
		{"irregular-lo", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := o; i < m; i++ {
			visit(o, i)
		}
	}`, "inner lower bound depends on the outer index"},
		{"bound-uses-inner-idx", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < i+m; i++ {
			visit(o, i)
		}
	}`, "inner upper bound references the inner index"},
		{"captured-local", "kernel(n, m int)", `	acc := 0
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			acc += o * i
		}
	}`, "hoist it to package level"},
		{"captured-bound", "kernel(n int)", `	m := n * 2
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}`, "hoist it to package level"},
		{"same-index", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for o := 0; o < m; o++ {
			visit(o, o)
		}
	}`, "reuses the outer index name"},
		{"while-no-init", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i < m {
			visit(o, i)
			i++
		}
	}`, "needs a preceding"},
		{"while-no-increment", "kernel(n, m int)", `	o := 0
	for o < n {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}`, "must end with `o++`"},
		{"while-continue", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		i := 0
		for i < m {
			if i == 3 {
				continue
			}
			visit(o, i)
			i++
		}
	}`, "skips the `i++` tail"},
		{"range-value", "kernel(vs []int)", `	for o := 0; o < len(vs); o++ {
		for i, v := range vs {
			visit(o, i+v)
		}
	}`, "must take only an index"},
		{"range-blank", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for _ = range m {
			visit(o, 0)
		}
	}`, "range loop must declare its index"},
		{"labeled-break", "kernel(n, m int)", `outer:
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			if i > o {
				break outer
			}
		}
	}`, "labeled loops are not supported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := File("input.go", wrap(tc.name, tc.sig, tc.body))
			if err == nil {
				t.Fatal("conversion unexpectedly succeeded")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "loopfront: input.go:") {
				t.Errorf("error %q lacks a positional input.go prefix", err)
			}
		})
	}
}

func TestRejectFunctionForms(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"method", `package p

type T struct{}

//twist:loops
func (T) kernel(n int) {}
`, "methods are not supported"},
		{"generic", `package p

//twist:loops
func kernel[T any](n int) {}
`, "type parameters are not supported"},
		{"unnamed-param", `package p

//twist:loops
func kernel(int) {}
`, "parameters must be named"},
		{"variadic", `package p

//twist:loops
func kernel(ns ...int) {}
`, "variadic parameters are not supported"},
		{"no-directive", `package p

func kernel(n int) {}
`, "no //twist:loops functions"},
		{"bad-option", `package p

//twist:loops leafrun=zero
func kernel(n int) {}
`, "leafrun"},
		{"unknown-option", `package p

//twist:loops tile=8
func kernel(n int) {}
`, "unknown //twist:loops option"},
		{"bad-name-option", `package p

//twist:loops name=2fast
func kernel(n int) {}
`, "not a valid identifier"},
		{"syntax-error", "package p\nfunc {", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := File("input.go", []byte(tc.src))
			if err == nil {
				t.Fatal("conversion unexpectedly succeeded")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDirectiveOptions(t *testing.T) {
	src := []byte(`package p

var visit func(o, i int)

//twist:loops name=tile leafrun=8
func kernel(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}
}
`)
	u, err := Single("input.go", src, "tile")
	if err != nil {
		t.Fatal(err)
	}
	if u.Name != "tile" || u.LeafRun != 8 {
		t.Errorf("name/leafrun = %q/%d, want tile/8", u.Name, u.LeafRun)
	}
	if !strings.Contains(string(u.Source), "const tileLeafRun = 8") {
		t.Error("leafrun option not reflected in the generated constant")
	}
	if _, err := Single("input.go", src, "nosuch"); err == nil || !strings.Contains(err.Error(), `no nest "nosuch"`) {
		t.Errorf("selecting a missing nest: %v", err)
	}
}

func TestMultipleNests(t *testing.T) {
	src := []byte(`package p

var visit func(o, i int)

//twist:loops
func kernel(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}
	for o := 0; o < m; o++ {
		for i := 0; i < n; i++ {
			visit(i, o)
		}
	}
}
`)
	units, err := File("input.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 || units[0].Name != "kernel" || units[1].Name != "kernel2" {
		t.Fatalf("multi-nest names: %v", nestNames(units))
	}
	for _, u := range units {
		if _, err := transform.ParseFile(u.Name+"_template.go", u.Source); err != nil {
			t.Errorf("nest %s template rejected: %v", u.Name, err)
		}
	}
	if _, err := Single("input.go", src, ""); err == nil || !strings.Contains(err.Error(), "select one by name") {
		t.Errorf("Single on a multi-nest file: %v", err)
	}
}

func TestNameCollision(t *testing.T) {
	src := []byte(`package p

var visit func(o, i int)

func kernelNode() {}

//twist:loops
func kernel(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}
}
`)
	_, err := File("input.go", src)
	if err == nil || !strings.Contains(err.Error(), "collides with an existing name") {
		t.Errorf("collision not diagnosed: %v", err)
	}
}

// TestParamNamesAvoidBody: a body using the default recursion parameter
// names must push the generator to fresh ones.
func TestParamNamesAvoidBody(t *testing.T) {
	src := []byte(`package p

var sink func(o, i, on, in int)

var on, in int

//twist:loops
func kernel(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			sink(o, i, on, in)
		}
	}
}
`)
	u, err := Single("input.go", src, "")
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := transform.ParseFile("kernel_template.go", u.Source)
	if err != nil {
		t.Fatalf("template rejected: %v\n%s", err, u.Source)
	}
	if tmpl.OName == "on" || tmpl.IName == "in" {
		t.Errorf("recursion parameters %s/%s shadow package identifiers used by the body", tmpl.OName, tmpl.IName)
	}
}

func TestNakedContinueAllowedInCountedLoops(t *testing.T) {
	src := wrap("cont", "kernel(n, m int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			if i == o {
				continue
			}
			visit(o, i)
		}
	}`)
	u, err := Single("input.go", src, "")
	if err != nil {
		t.Fatalf("naked continue in a counted loop must be preserved, got: %v", err)
	}
	if !strings.Contains(string(u.Source), "continue") {
		t.Error("continue statement lost from the embedded body")
	}
}

func TestNestedLoopInBodyAllowed(t *testing.T) {
	src := wrap("third", "kernel(n, m, k int)", `	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				if j > i {
					break
				}
				visit(o, i+j)
			}
		}
	}`)
	if _, err := Single("input.go", src, ""); err != nil {
		t.Fatalf("third-level loop inside the body must embed verbatim, got: %v", err)
	}
}
