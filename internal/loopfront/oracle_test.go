package loopfront

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"twist/internal/oracle"
	"twist/internal/transform"
	"twist/internal/tree"
)

// The front-end's acceptance bar (ISSUE 10): for every corpus loop nest the
// generated recursion under the Original schedule must visit *exactly* the
// source loop's iteration order — element-wise, not as a multiset — and the
// interchanged/twisted/cutoff schedules generated downstream must be
// permutation-equivalent per the oracle's verdict (multiset + per-column
// order). Both properties are checked out of process: the source function,
// the emitted template, and cmd/twist's generated variants are compiled
// into one child program whose printed visit sections are compared here.

const (
	harnessOuterN = 13
	harnessInnerN = 9
)

// oracleCorpus is one loop-nest source plus how to invoke it. Sources are
// package main fragments sharing the `visit` hook; NO/NI are substituted
// with the harness extents.
var oracleCorpus = []struct {
	name string
	src  string
	args string // argument list for the source function / entry points
}{
	{"counted-rect", `
//twist:loops
func kernel(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visit(o, i)
		}
	}
}
`, "NO, NI"},
	{"while-while", `
//twist:loops leafrun=2
func kernel(n, m int) {
	o := 2
	for o < n {
		i := 1
		for i < m {
			visit(o, i)
			i++
		}
		o++
	}
}
`, "NO, NI"},
	{"do-do", `
//twist:loops
func kernel(n, m int) {
	o := 0
	for {
		i := 0
		for {
			visit(o, i)
			i++
			if i >= m {
				break
			}
		}
		o++
		if o >= n {
			break
		}
	}
}
`, "NO, NI"},
	{"range-range", `
//twist:loops leafrun=4
func kernel(n, m int) {
	for o := range n {
		for i := range m {
			visit(o, i)
		}
	}
}
`, "NO, NI"},
	{"inclusive-bounds", `
//twist:loops
func kernel(n, m int) {
	for o := 1; o <= n; o++ {
		for i := 1; i <= m; i++ {
			visit(o, i)
		}
	}
}
`, "NO, NI"},
	{"triangular", `
//twist:loops
func kernel(n int) {
	for o := 0; o < n; o++ {
		for i := 0; i < o; i++ {
			visit(o, i)
		}
	}
}
`, "NO"},
	{"nonmonotone-bound", `
func rowBound(o int) int { return (o * 7) % NI }

//twist:loops leafrun=4
func kernel(n int) {
	for o := 0; o < n; o++ {
		i := 0
		for i < rowBound(o) {
			visit(o, i)
			i++
		}
	}
}
`, "NO"},
	{"irregular-do", `
//twist:loops
func kernel(n int) {
	for o := 0; o < n; o++ {
		i := 0
		for {
			visit(o, i)
			i++
			if i >= o-2 {
				break
			}
		}
	}
}
`, "NO"},
	{"body-continue", `
//twist:loops leafrun=2
func kernel(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			if (o+i)%3 == 0 {
				continue
			}
			visit(o, i)
		}
	}
}
`, "NO, NI"},
}

// runLoopHarness converts src, generates the downstream variants, compiles
// everything with a driver into a temp module, and returns the printed
// visit sections.
func runLoopHarness(t *testing.T, src, args string) map[string][]oracle.Visit {
	t.Helper()
	sub := strings.NewReplacer(
		"NO", strconv.Itoa(harnessOuterN),
		"NI", strconv.Itoa(harnessInnerN),
	)
	full := "package main\n\nvar visit func(o, i int)\n" + sub.Replace(src)
	u, err := Single("input.go", []byte(full), "")
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := transform.ParseFile(u.Name+"_template.go", u.Source)
	if err != nil {
		t.Fatalf("template rejected: %v\n%s", err, u.Source)
	}
	gen, err := transform.Generate(tmpl)
	if err != nil {
		t.Fatal(err)
	}

	callArgs := sub.Replace(args)
	driver := fmt.Sprintf(`package main

import "fmt"

func main() {
	visit = func(o, i int) { fmt.Printf("v %%d %%d\n", o, i) }
	sec := func(name string, f func()) { fmt.Println("==", name); f() }
	sec("source", func() { %[1]s(%[2]s) })
	sec("original", func() { %[3]s(%[2]s) })
	sec("interchanged", func() { o, i := %[4]s(%[2]s); %[5]sSwapped(o, i) })
	sec("twisted", func() { o, i := %[4]s(%[2]s); %[5]sTwisted(o, i) })
	sec("cutoff", func() { o, i := %[4]s(%[2]s); %[5]sTwistedCutoff(o, i, 3) })
}
`, u.Func, callArgs, u.RunFn, u.NestFn, u.OuterFn)

	dir := t.TempDir()
	for name, data := range map[string]string{
		"go.mod":      "module loopfrontharness\n\ngo 1.22\n",
		"src.go":      full,
		"template.go": string(u.Source),
		"gen.go":      string(gen),
		"main.go":     driver,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}

	sections := make(map[string][]oracle.Visit)
	var cur string
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		switch {
		case len(fields) == 2 && fields[0] == "==":
			cur = fields[1]
			sections[cur] = nil
		case len(fields) == 3 && fields[0] == "v":
			o, err1 := strconv.Atoi(fields[1])
			i, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || cur == "" {
				t.Fatalf("malformed harness output line %q", line)
			}
			sections[cur] = append(sections[cur], oracle.Visit{O: tree.NodeID(o), I: tree.NodeID(i)})
		case len(fields) != 0:
			t.Fatalf("unexpected harness output line %q", line)
		}
	}
	return sections
}

func TestLoopNestsPassOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a child Go program")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go binary not available")
	}
	for _, tc := range oracleCorpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sections := runLoopHarness(t, tc.src, tc.args)
			source := sections["source"]
			if len(source) == 0 {
				t.Fatal("empty source section")
			}

			// Original must be byte-identical in iteration order.
			orig := sections["original"]
			if len(orig) != len(source) {
				t.Fatalf("original visits %d iterations, source %d", len(orig), len(source))
			}
			for k := range source {
				if orig[k] != source[k] {
					t.Fatalf("original diverges from the source loop at visit %d: %v vs %v", k, orig[k], source[k])
				}
			}

			// Transformed schedules must be legal permutations.
			golden := oracle.FromSequence(source)
			for _, name := range []string{"interchanged", "twisted", "cutoff"} {
				seq, ok := sections[name]
				if !ok {
					t.Fatalf("missing harness section %q", name)
				}
				if v := golden.CheckSequence("loops "+name, seq); !v.OK {
					t.Error(v)
				}
			}
		})
	}
}
