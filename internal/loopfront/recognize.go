package loopfront

// Recognition: assemble the perfectly-nested loop pairs of a //twist:loops
// function, classify each level's shape, and enforce the restrictions that
// keep the verbatim-embedded body semantically identical inside the
// generated recursion. Everything here is syntactic — no go/types — so the
// diagnostics name the expected canonical forms rather than inferred types.

import (
	"fmt"
	"go/ast"
	"go/token"
)

// loop is one recognized loop level with its control tail stripped.
type loop struct {
	shape Shape
	idx   string
	lo    ast.Expr // nil for range (implicit 0)
	hi    ast.Expr
	incl  bool // `<=` header: iteration space [lo, hi] inclusive
	body  []ast.Stmt
	pos   token.Pos // the for/range keyword
}

// loNest is one assembled outer/inner pair plus the fn-body statements it
// consumed (the loops and any while/do init statements).
type loNest struct {
	outer, inner *loop
	consumed     map[ast.Stmt]bool
}

// convertFunc assembles and converts every top-level nest of an annotated
// function.
func convertFunc(fset *token.FileSet, file *ast.File, fn *ast.FuncDecl, d *directive) ([]*Unit, error) {
	if fn.Recv != nil {
		return nil, errf(fset, fn.Pos(), "//twist:loops on method %s: methods are not supported; use a plain function", fn.Name.Name)
	}
	if fn.Type.TypeParams != nil {
		return nil, errf(fset, fn.Pos(), "//twist:loops on generic function %s: type parameters are not supported", fn.Name.Name)
	}
	if fn.Body == nil {
		return nil, errf(fset, fn.Pos(), "//twist:loops function %s has no body", fn.Name.Name)
	}
	for _, f := range fn.Type.Params.List {
		if len(f.Names) == 0 {
			return nil, errf(fset, f.Pos(), "%s: parameters must be named (the generated entry points forward them)", fn.Name.Name)
		}
		for _, nm := range f.Names {
			if nm.Name == "_" {
				return nil, errf(fset, nm.Pos(), "%s: blank parameter; parameters must be named", fn.Name.Name)
			}
		}
		if _, variadic := f.Type.(*ast.Ellipsis); variadic {
			return nil, errf(fset, f.Pos(), "%s: variadic parameters are not supported", fn.Name.Name)
		}
	}

	nests, err := assembleNests(fset, fn)
	if err != nil {
		return nil, err
	}
	if len(nests) == 0 {
		return nil, errf(fset, fn.Pos(), "//twist:loops function %s holds no loops", fn.Name.Name)
	}

	base := d.name
	if base == "" {
		base = fn.Name.Name
	}
	var units []*Unit
	for k, n := range nests {
		name := base
		if k > 0 {
			name = fmt.Sprintf("%s%d", base, k+1)
		}
		u, err := convertNest(fset, file, fn, n, name, d.leafRun)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// assembleNests scans the function's top-level statements for loop pairs.
// Every top-level loop must form a recognizable nest; other statements are
// left alone (but see the capture analysis — the nest body may not use names
// they declare).
func assembleNests(fset *token.FileSet, fn *ast.FuncDecl) ([]*loNest, error) {
	list := fn.Body.List
	var nests []*loNest
	for k, st := range list {
		if lab, ok := st.(*ast.LabeledStmt); ok && isLoopStart(lab.Stmt) {
			return nil, errf(fset, lab.Pos(), "labeled loops are not supported (the recursion has no label to break to)")
		}
		if !isLoopStart(st) {
			continue
		}
		outer, usedPrev, err := loopAt(fset, list, k)
		if err != nil {
			return nil, err
		}
		n := &loNest{outer: outer, consumed: map[ast.Stmt]bool{st: true}}
		if usedPrev {
			if k == 0 {
				return nil, errf(fset, st.Pos(), "while/do loop needs a preceding `%s := <lo>` statement", outer.idx)
			}
			n.consumed[list[k-1]] = true
		}
		inner, err := innerLoop(fset, outer)
		if err != nil {
			return nil, err
		}
		n.inner = inner
		nests = append(nests, n)
	}
	return nests, nil
}

func isLoopStart(st ast.Stmt) bool {
	switch st.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

// innerLoop recognizes the inner level inside the outer loop's stripped
// body: exactly the inner loop construct (one statement, or init + for for
// the while/do shapes) — a perfect nest.
func innerLoop(fset *token.FileSet, outer *loop) (*loop, error) {
	body := outer.body
	switch len(body) {
	case 0:
		return nil, errf(fset, outer.pos, "outer loop body is empty; the template needs a nested pair")
	case 1:
		if !isLoopStart(body[0]) {
			return nil, errf(fset, body[0].Pos(), "outer loop body must be exactly the inner loop (perfect nest); found a non-loop statement")
		}
		inner, usedPrev, err := loopAt(fset, body, 0)
		if err != nil {
			return nil, err
		}
		if usedPrev {
			return nil, errf(fset, body[0].Pos(), "inner while/do loop needs a preceding `%s := <lo>` statement", inner.idx)
		}
		return inner, nil
	case 2:
		if !isLoopStart(body[1]) {
			return nil, errf(fset, outer.pos, "outer loop body must be exactly the inner loop (perfect nest); found %d statements", len(body))
		}
		inner, usedPrev, err := loopAt(fset, body, 1)
		if err != nil {
			return nil, err
		}
		if !usedPrev {
			return nil, errf(fset, body[0].Pos(), "statement before the inner loop is not its init; the outer body must hold the inner loop alone (perfect nest)")
		}
		return inner, nil
	default:
		return nil, errf(fset, outer.pos, "outer loop body must be exactly the inner loop (perfect nest); found %d statements", len(body))
	}
}

// loopAt recognizes the loop whose for/range statement is list[k]. The
// while/do shapes keep their index in a preceding `idx := lo` statement;
// usedPrev reports that list[k-1] was consumed as that init.
func loopAt(fset *token.FileSet, list []ast.Stmt, k int) (lp *loop, usedPrev bool, err error) {
	switch st := list[k].(type) {
	case *ast.RangeStmt:
		lp, err = rangeLoop(fset, st)
		return lp, false, err
	case *ast.ForStmt:
		switch {
		case st.Init != nil || st.Post != nil:
			lp, err = countedLoop(fset, st)
			return lp, false, err
		case st.Cond != nil:
			lp, err = whileLoop(fset, st, prevStmt(list, k))
			return lp, true, err
		default:
			lp, err = doLoop(fset, st, prevStmt(list, k))
			return lp, true, err
		}
	}
	return nil, false, errf(fset, list[k].Pos(), "not a loop statement")
}

func prevStmt(list []ast.Stmt, k int) ast.Stmt {
	if k == 0 {
		return nil
	}
	return list[k-1]
}

// countedLoop recognizes `for i := lo; i < hi; i++ { body }` (and `<=`,
// `i += 1`).
func countedLoop(fset *token.FileSet, st *ast.ForStmt) (*loop, error) {
	if st.Init == nil || st.Cond == nil || st.Post == nil {
		return nil, errf(fset, st.Pos(), "unsupported loop header: want the counted form `for i := lo; i < hi; i++`")
	}
	idx, lo, ok := initDefine(st.Init)
	if !ok {
		return nil, errf(fset, st.Init.Pos(), "loop init must be `i := <lo>` with a single new variable")
	}
	hi, incl, ok := upperBound(st.Cond, idx)
	if !ok {
		return nil, errf(fset, st.Cond.Pos(), "loop condition must be `%s < <hi>` or `%s <= <hi>`", idx, idx)
	}
	if !isIncrement(st.Post, idx) {
		return nil, errf(fset, st.Post.Pos(), "loop post statement must be `%s++` (or `%s += 1`)", idx, idx)
	}
	return &loop{shape: ShapeFor, idx: idx, lo: lo, hi: hi, incl: incl, body: st.Body.List, pos: st.Pos()}, nil
}

// whileLoop recognizes `i := lo` + `for i < hi { body; i++ }`.
func whileLoop(fset *token.FileSet, st *ast.ForStmt, init ast.Stmt) (*loop, error) {
	hi, incl, condIdx, ok := upperBoundAnyIdx(st.Cond)
	if !ok {
		return nil, errf(fset, st.Cond.Pos(), "while-shaped loop condition must be `i < <hi>` or `i <= <hi>`")
	}
	idx, lo, ok := initDefine(init)
	if !ok || idx != condIdx {
		return nil, errf(fset, st.Pos(), "while-shaped loop needs a preceding `%s := <lo>` statement", condIdx)
	}
	body := st.Body.List
	if len(body) == 0 || !isIncrement(body[len(body)-1], idx) {
		return nil, errf(fset, st.Pos(), "while-shaped loop body must end with `%s++`", idx)
	}
	return &loop{shape: ShapeWhile, idx: idx, lo: lo, hi: hi, incl: incl, body: body[:len(body)-1], pos: st.Pos()}, nil
}

// doLoop recognizes `i := lo` + `for { body; i++; if i >= hi { break } }`
// — a do/while: the body runs at least once, so the iteration space is
// [lo, max(hi, lo+1)).
func doLoop(fset *token.FileSet, st *ast.ForStmt, init ast.Stmt) (*loop, error) {
	body := st.Body.List
	if len(body) < 2 {
		return nil, errf(fset, st.Pos(), "do-shaped loop body must end with `i++; if i >= <hi> { break }`")
	}
	hi, idx, ok := breakGuard(body[len(body)-1])
	if !ok {
		return nil, errf(fset, body[len(body)-1].Pos(), "do-shaped loop must end with `if i >= <hi> { break }`")
	}
	if !isIncrement(body[len(body)-2], idx) {
		return nil, errf(fset, body[len(body)-2].Pos(), "do-shaped loop needs `%s++` immediately before its break guard", idx)
	}
	initIdx, lo, ok := initDefine(init)
	if !ok || initIdx != idx {
		return nil, errf(fset, st.Pos(), "do-shaped loop needs a preceding `%s := <lo>` statement", idx)
	}
	return &loop{shape: ShapeDo, idx: idx, lo: lo, hi: hi, body: body[:len(body)-2], pos: st.Pos()}, nil
}

// rangeLoop recognizes `for i := range n` (Go 1.22 integer range; ranging
// over slices or maps is not an integer iteration space — write a counted
// loop).
func rangeLoop(fset *token.FileSet, st *ast.RangeStmt) (*loop, error) {
	if st.Tok != token.DEFINE {
		return nil, errf(fset, st.Pos(), "range loop must declare its index (`for i := range ...`)")
	}
	key, ok := st.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil, errf(fset, st.Pos(), "range loop must name its index variable")
	}
	if st.Value != nil {
		return nil, errf(fset, st.Value.Pos(), "range loop must take only an index (`for %s := range n` over an integer)", key.Name)
	}
	return &loop{shape: ShapeRange, idx: key.Name, lo: nil, hi: st.X, body: st.Body.List, pos: st.Pos()}, nil
}

// initDefine matches `i := lo`.
func initDefine(st ast.Stmt) (idx string, lo ast.Expr, ok bool) {
	as, isAssign := st.(*ast.AssignStmt)
	if !isAssign || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", nil, false
	}
	id, isIdent := as.Lhs[0].(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return "", nil, false
	}
	return id.Name, as.Rhs[0], true
}

// upperBound matches `idx < hi` / `idx <= hi` for a known index.
func upperBound(cond ast.Expr, idx string) (hi ast.Expr, incl, ok bool) {
	hi, incl, condIdx, ok := upperBoundAnyIdx(cond)
	if !ok || condIdx != idx {
		return nil, false, false
	}
	return hi, incl, true
}

// upperBoundAnyIdx matches `i < hi` / `i <= hi`, reporting which identifier
// is compared.
func upperBoundAnyIdx(cond ast.Expr) (hi ast.Expr, incl bool, idx string, ok bool) {
	b, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (b.Op != token.LSS && b.Op != token.LEQ) {
		return nil, false, "", false
	}
	id, isIdent := b.X.(*ast.Ident)
	if !isIdent {
		return nil, false, "", false
	}
	return b.Y, b.Op == token.LEQ, id.Name, true
}

// isIncrement matches `i++` or `i += 1`.
func isIncrement(st ast.Stmt, idx string) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		id, ok := s.X.(*ast.Ident)
		return ok && s.Tok == token.INC && id.Name == idx
	case *ast.AssignStmt:
		if s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok || id.Name != idx {
			return false
		}
		lit, ok := s.Rhs[0].(*ast.BasicLit)
		return ok && lit.Kind == token.INT && lit.Value == "1"
	}
	return false
}

// breakGuard matches `if i >= hi { break }` (no init, no else, naked break).
func breakGuard(st ast.Stmt) (hi ast.Expr, idx string, ok bool) {
	ifst, isIf := st.(*ast.IfStmt)
	if !isIf || ifst.Init != nil || ifst.Else != nil || len(ifst.Body.List) != 1 {
		return nil, "", false
	}
	br, isBr := ifst.Body.List[0].(*ast.BranchStmt)
	if !isBr || br.Tok != token.BREAK || br.Label != nil {
		return nil, "", false
	}
	b, isBin := ifst.Cond.(*ast.BinaryExpr)
	if !isBin || b.Op != token.GEQ {
		return nil, "", false
	}
	id, isIdent := b.X.(*ast.Ident)
	if !isIdent {
		return nil, "", false
	}
	return b.Y, id.Name, true
}

// --- restrictions and capture analysis ----------------------------------

// checkNest enforces every restriction that keeps the verbatim body legal
// inside the generated leaf loops, and returns whether the nest is
// irregular (inner upper bound depends on the outer index).
func checkNest(fset *token.FileSet, fn *ast.FuncDecl, n *loNest) (irregular bool, err error) {
	o, i := n.outer, n.inner
	if o.idx == i.idx {
		return false, errf(fset, i.pos, "inner loop reuses the outer index name %q", o.idx)
	}
	// Bounds must not reference the indices (the index does not exist yet
	// where the generated code evaluates them) — except the inner upper
	// bound's use of the outer index, which is the irregular case.
	for _, b := range []struct {
		e     ast.Expr
		which string
	}{{o.lo, "outer lower"}, {o.hi, "outer upper"}, {i.lo, "inner lower"}} {
		if b.e == nil {
			continue
		}
		for _, idx := range []string{o.idx, i.idx} {
			if usesName(b.e, idx) {
				if b.which == "inner lower" && idx == o.idx {
					return false, errf(fset, b.e.Pos(),
						"inner lower bound depends on the outer index %s; only the upper bound may (hoist the dependence into a body guard)", idx)
				}
				return false, errf(fset, b.e.Pos(), "%s bound references the loop index %s", b.which, idx)
			}
		}
	}
	if usesName(i.hi, i.idx) {
		return false, errf(fset, i.hi.Pos(), "inner upper bound references the inner index %s", i.idx)
	}
	irregular = usesName(i.hi, o.idx)

	if err := checkBody(fset, n); err != nil {
		return false, err
	}
	if err := checkCaptures(fset, fn, n, irregular); err != nil {
		return false, err
	}
	return irregular, nil
}

// checkBody walks the inner loop body rejecting constructs whose meaning
// would change inside the generated leaf loops.
func checkBody(fset *token.FileSet, n *loNest) error {
	o, i := n.outer, n.inner
	var walkErr error
	fail := func(pos token.Pos, format string, args ...any) {
		if walkErr == nil {
			walkErr = errf(fset, pos, format, args...)
		}
	}
	// breakDepth counts enclosing break targets (loops, switch, select)
	// inside the body; continueDepth counts enclosing loops only.
	var walk func(st ast.Stmt, breakDepth, continueDepth int)
	walkList := func(list []ast.Stmt, b, c int) {
		for _, st := range list {
			walk(st, b, c)
		}
	}
	walk = func(st ast.Stmt, breakDepth, continueDepth int) {
		if walkErr != nil || st == nil {
			return
		}
		switch s := st.(type) {
		case *ast.ReturnStmt:
			fail(s.Pos(), "return inside the nest body (the generated recursion cannot early-exit)")
		case *ast.DeferStmt:
			fail(s.Pos(), "defer inside the nest body (its scope changes under the conversion)")
		case *ast.LabeledStmt:
			fail(s.Pos(), "labeled statement inside the nest body")
		case *ast.BranchStmt:
			switch {
			case s.Label != nil:
				fail(s.Pos(), "labeled %s inside the nest body", s.Tok)
			case s.Tok == token.GOTO:
				fail(s.Pos(), "goto inside the nest body")
			case s.Tok == token.BREAK && breakDepth == 0:
				fail(s.Pos(), "break out of the converted loop (the recursion visits spans out of source order; restructure with a guard)")
			case s.Tok == token.CONTINUE && continueDepth == 0 && (i.shape == ShapeWhile || i.shape == ShapeDo):
				fail(s.Pos(), "continue in a %s-shaped loop skips the `%s++` tail in the source; make the increment a counted-for header first", i.shape, i.idx)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (id.Name == o.idx || id.Name == i.idx) && s.Tok != token.DEFINE {
					fail(s.Pos(), "assignment to the loop index %s inside the body", id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && (id.Name == o.idx || id.Name == i.idx) {
				fail(s.Pos(), "update of the loop index %s inside the body", id.Name)
			}
		case *ast.BlockStmt:
			walkList(s.List, breakDepth, continueDepth)
		case *ast.IfStmt:
			walk(s.Init, breakDepth, continueDepth)
			walk(s.Body, breakDepth, continueDepth)
			walk(s.Else, breakDepth, continueDepth)
		case *ast.ForStmt:
			walk(s.Init, breakDepth, continueDepth)
			walk(s.Post, breakDepth+1, continueDepth+1)
			walk(s.Body, breakDepth+1, continueDepth+1)
		case *ast.RangeStmt:
			walk(s.Body, breakDepth+1, continueDepth+1)
		case *ast.SwitchStmt:
			walk(s.Init, breakDepth, continueDepth)
			walk(s.Body, breakDepth+1, continueDepth)
		case *ast.TypeSwitchStmt:
			walk(s.Init, breakDepth, continueDepth)
			walk(s.Body, breakDepth+1, continueDepth)
		case *ast.SelectStmt:
			walk(s.Body, breakDepth+1, continueDepth)
		case *ast.CaseClause:
			walkList(s.Body, breakDepth, continueDepth)
		case *ast.CommClause:
			walkList(s.Body, breakDepth, continueDepth)
		default:
			// Expression, send, go, decl, empty statements: nothing to do at
			// the statement level.
		}
	}
	walkList(i.body, 0, 0)
	if walkErr != nil {
		return walkErr
	}

	// Address-of the indices anywhere in the body defeats the per-leaf
	// rebinding of the index variables.
	for _, st := range i.body {
		ast.Inspect(st, func(x ast.Node) bool {
			if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.AND {
				if id, ok := u.X.(*ast.Ident); ok && (id.Name == o.idx || id.Name == i.idx) {
					fail(u.Pos(), "taking the address of the loop index %s", id.Name)
				}
			}
			return walkErr == nil
		})
		if walkErr != nil {
			return walkErr
		}
	}
	return nil
}

// checkCaptures rejects references from the nest (body and bound
// expressions) to names declared locally in the function outside the nest:
// the generated recursion lives in new top-level functions, where such
// state is unreachable. Function parameters are fine — the generated entry
// points redeclare them.
func checkCaptures(fset *token.FileSet, fn *ast.FuncDecl, n *loNest, irregular bool) error {
	locals := map[string]token.Pos{}
	for _, st := range fn.Body.List {
		if n.consumed[st] {
			continue
		}
		collectDecls(st, locals)
	}
	if len(locals) == 0 {
		return nil
	}

	declared := map[string]bool{n.outer.idx: true, n.inner.idx: true}
	for _, st := range n.inner.body {
		collectDeclsBool(st, declared)
	}

	check := func(node ast.Node, what string) error {
		var err error
		forEachRef(node, func(id *ast.Ident) {
			if err != nil || declared[id.Name] {
				return
			}
			if pos, isLocal := locals[id.Name]; isLocal {
				err = errf(fset, id.Pos(), "%s references %s, declared at %s outside the nest; hoist it to package level",
					what, id.Name, fset.Position(pos))
			}
		})
		return err
	}
	for _, st := range n.inner.body {
		if err := check(st, "nest body"); err != nil {
			return err
		}
	}
	for _, b := range []struct {
		e    ast.Expr
		what string
	}{
		{n.outer.lo, "outer lower bound"}, {n.outer.hi, "outer upper bound"},
		{n.inner.lo, "inner lower bound"}, {n.inner.hi, "inner upper bound"},
	} {
		if b.e == nil {
			continue
		}
		if err := check(b.e, b.what); err != nil {
			return err
		}
	}
	return nil
}

// collectDecls records every name a statement declares (at any nesting
// depth — coarser than Go's scoping, which only ever widens the capture
// check, never narrows it).
func collectDecls(st ast.Stmt, out map[string]token.Pos) {
	ast.Inspect(st, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						out[id.Name] = id.Pos()
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range v.Names {
				if id.Name != "_" {
					out[id.Name] = id.Pos()
				}
			}
		case *ast.TypeSpec:
			out[v.Name.Name] = v.Name.Pos()
		case *ast.RangeStmt:
			if v.Tok == token.DEFINE {
				for _, e := range []ast.Expr{v.Key, v.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						out[id.Name] = id.Pos()
					}
				}
			}
		}
		return true
	})
}

func collectDeclsBool(st ast.Stmt, out map[string]bool) {
	tmp := map[string]token.Pos{}
	collectDecls(st, tmp)
	for k := range tmp {
		out[k] = true
	}
}

// forEachRef visits every identifier that reads a value: selector field
// names are skipped (x.f references x, not f), as are the names a composite
// literal's struct-field keys would shadow.
func forEachRef(n ast.Node, f func(*ast.Ident)) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			forEachRef(v.X, f)
			return false
		case *ast.KeyValueExpr:
			// A struct literal's key is a field name, not a reference; a
			// map/array key is. Without types, visit the value only — a
			// captured local used solely as a map key escapes this check and
			// surfaces when the generated file is compiled.
			forEachRef(v.Value, f)
			return false
		case *ast.Ident:
			if v.Name != "_" {
				f(v)
			}
		}
		return true
	})
}

// usesName reports whether the expression references the identifier
// (selector fields excluded).
func usesName(n ast.Node, name string) bool {
	if n == nil {
		return false
	}
	found := false
	forEachRef(n, func(id *ast.Ident) {
		if id.Name == name {
			found = true
		}
	})
	return found
}
