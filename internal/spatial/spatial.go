// Package spatial defines the common shape of the space-partitioning trees
// the dual-tree benchmarks traverse (paper §6): an arena tree.Topology whose
// every node owns a contiguous range of points and a bounding box over them.
//
// Both the kd-tree (internal/kdtree) and the vantage-point tree
// (internal/vptree) build this representation; they differ only in how they
// *partition* points, i.e. in the tree shape. The dual-tree algorithms in
// internal/dualtree prune with box-to-box distances, which are valid bounds
// for any Index because every node's box tightly contains its points.
package spatial

import (
	"errors"
	"fmt"

	"twist/internal/geom"
	"twist/internal/tree"
)

// Index is a space-partitioning tree over a point set.
type Index struct {
	// Topo is the tree shape; node IDs index the parallel slices below.
	Topo *tree.Topology

	// Points holds the point set, permuted so that every node's subtree owns
	// the contiguous range [Start[n], End[n]).
	Points []geom.Point

	// Boxes[n] is the tight bounding box of the points in node n's range.
	Boxes []geom.Box

	// Start and End delimit node n's point range within Points.
	Start, End []int32

	// Perm maps permuted positions back to original point indices:
	// Points[k] == original[Perm[k]]. Queries report original indices.
	Perm []int32
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.Points) }

// NodePoints returns the points owned by node n's subtree.
func (ix *Index) NodePoints(n tree.NodeID) []geom.Point {
	return ix.Points[ix.Start[n]:ix.End[n]]
}

// Count returns how many points node n's subtree owns.
func (ix *Index) Count(n tree.NodeID) int32 { return ix.End[n] - ix.Start[n] }

// MinDist2 returns a lower bound on the squared distance between any point
// of node a in ix and any point of node b in other.
func (ix *Index) MinDist2(a tree.NodeID, other *Index, b tree.NodeID) float64 {
	return ix.Boxes[a].MinDist2(other.Boxes[b])
}

// MaxDist2 returns an upper bound on the squared distance between any point
// of node a in ix and any point of node b in other.
func (ix *Index) MaxDist2(a tree.NodeID, other *Index, b tree.NodeID) float64 {
	return ix.Boxes[a].MaxDist2(other.Boxes[b])
}

// Validate checks the structural invariants an Index must satisfy: a valid
// topology, nesting point ranges that exactly tile each parent's range,
// boxes that contain their points, and a permutation that is a bijection.
func (ix *Index) Validate() error {
	if ix.Topo == nil {
		return errors.New("spatial: nil topology")
	}
	if err := ix.Topo.Validate(); err != nil {
		return err
	}
	n := ix.Topo.Len()
	if len(ix.Boxes) != n || len(ix.Start) != n || len(ix.End) != n {
		return fmt.Errorf("spatial: parallel slices sized %d/%d/%d for %d nodes",
			len(ix.Boxes), len(ix.Start), len(ix.End), n)
	}
	if len(ix.Perm) != len(ix.Points) {
		return fmt.Errorf("spatial: perm len %d != points len %d", len(ix.Perm), len(ix.Points))
	}
	seen := make([]bool, len(ix.Perm))
	for _, p := range ix.Perm {
		if p < 0 || int(p) >= len(seen) || seen[p] {
			return fmt.Errorf("spatial: perm is not a bijection at %d", p)
		}
		seen[p] = true
	}
	if n == 0 {
		if len(ix.Points) != 0 {
			return errors.New("spatial: points without nodes")
		}
		return nil
	}
	root := ix.Topo.Root()
	if ix.Start[root] != 0 || ix.End[root] != int32(len(ix.Points)) {
		return fmt.Errorf("spatial: root range [%d,%d) does not cover %d points",
			ix.Start[root], ix.End[root], len(ix.Points))
	}
	var walk func(id tree.NodeID) error
	walk = func(id tree.NodeID) error {
		s, e := ix.Start[id], ix.End[id]
		if s > e {
			return fmt.Errorf("spatial: node %d has inverted range [%d,%d)", id, s, e)
		}
		if e == s {
			return fmt.Errorf("spatial: node %d owns no points", id)
		}
		for _, p := range ix.Points[s:e] {
			if !ix.Boxes[id].Contains(p) {
				return fmt.Errorf("spatial: node %d box does not contain its point %v", id, p)
			}
		}
		l, r := ix.Topo.Left(id), ix.Topo.Right(id)
		switch {
		case l == tree.Nil && r == tree.Nil:
			return nil
		case l != tree.Nil && r != tree.Nil:
			if ix.Start[l] != s || ix.End[l] != ix.Start[r] || ix.End[r] != e {
				return fmt.Errorf("spatial: node %d children ranges [%d,%d)+[%d,%d) do not tile [%d,%d)",
					id, ix.Start[l], ix.End[l], ix.Start[r], ix.End[r], s, e)
			}
			if err := walk(l); err != nil {
				return err
			}
			return walk(r)
		case l != tree.Nil:
			if ix.Start[l] != s || ix.End[l] != e {
				return fmt.Errorf("spatial: node %d single child does not cover its range", id)
			}
			return walk(l)
		default:
			if ix.Start[r] != s || ix.End[r] != e {
				return fmt.Errorf("spatial: node %d single child does not cover its range", id)
			}
			return walk(r)
		}
	}
	return walk(root)
}

// builder accumulates nodes during top-down construction; shared by the
// kd-tree and vp-tree builders via Construct.
type builder struct {
	tb    *tree.Builder
	boxes []geom.Box
	start []int32
	end   []int32
}

// Partitioner splits the point range [lo, hi) (in permuted order) around a
// pivot mid with lo < mid < hi, rearranging pts/perm in place so the left
// child owns [lo, mid) and the right child owns [mid, hi). Returning lo or
// hi (or any out-of-range mid) makes the node a leaf.
type Partitioner func(pts []geom.Point, perm []int32, lo, hi int32) (mid int32)

// Construct builds an Index over pts using the given partitioner and leaf
// capacity. It copies pts; the caller's slice is not modified.
func Construct(pts []geom.Point, leafSize int, split Partitioner) (*Index, error) {
	if leafSize < 1 {
		return nil, errors.New("spatial: leafSize must be >= 1")
	}
	ix := &Index{
		Points: append([]geom.Point(nil), pts...),
		Perm:   make([]int32, len(pts)),
	}
	for k := range ix.Perm {
		ix.Perm[k] = int32(k)
	}
	b := &builder{tb: tree.NewBuilder(2 * len(pts))}
	var root tree.NodeID = tree.Nil
	if len(pts) > 0 {
		root = b.build(ix, 0, int32(len(pts)), int32(leafSize), split)
	}
	topo, err := b.tb.Build(root)
	if err != nil {
		return nil, err
	}
	ix.Topo = topo
	ix.Boxes, ix.Start, ix.End = b.boxes, b.start, b.end
	if err := ix.Validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

func (b *builder) build(ix *Index, lo, hi, leafSize int32, split Partitioner) tree.NodeID {
	id := b.tb.Add()
	b.boxes = append(b.boxes, geom.BoxOf(ix.Points[lo:hi]))
	b.start = append(b.start, lo)
	b.end = append(b.end, hi)
	if hi-lo > leafSize {
		mid := split(ix.Points, ix.Perm, lo, hi)
		if mid > lo && mid < hi {
			l := b.build(ix, lo, mid, leafSize, split)
			r := b.build(ix, mid, hi, leafSize, split)
			b.tb.SetLeft(id, l)
			b.tb.SetRight(id, r)
		}
	}
	return id
}
