package spatial

import (
	"testing"

	"twist/internal/geom"
	"twist/internal/tree"
)

// midSplit is a trivial partitioner: split the range in half.
func midSplit(pts []geom.Point, perm []int32, lo, hi int32) int32 {
	return lo + (hi-lo)/2
}

func somePoints(n int) []geom.Point {
	return geom.Generate(geom.Uniform, n, int64(n)+1)
}

func TestConstructBasic(t *testing.T) {
	pts := somePoints(100)
	ix, err := Construct(pts, 4, midSplit)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Fatalf("Len=%d", ix.Len())
	}
	root := ix.Topo.Root()
	if ix.Count(root) != 100 {
		t.Fatalf("root count %d", ix.Count(root))
	}
	if got := len(ix.NodePoints(root)); got != 100 {
		t.Fatalf("root NodePoints %d", got)
	}
}

func TestConstructLeafOnly(t *testing.T) {
	ix, err := Construct(somePoints(3), 8, midSplit)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Topo.Len() != 1 {
		t.Fatalf("%d nodes for under-leaf-size input", ix.Topo.Len())
	}
}

func TestConstructEmpty(t *testing.T) {
	ix, err := Construct(nil, 4, midSplit)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Topo.Len() != 0 || ix.Topo.Root() != tree.Nil {
		t.Fatal("empty construct built nodes")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstructRejectsBadLeafSize(t *testing.T) {
	if _, err := Construct(somePoints(4), 0, midSplit); err == nil {
		t.Fatal("leafSize 0 accepted")
	}
}

func TestDegenerateSplitterMakesLeaf(t *testing.T) {
	// A splitter that refuses to split must yield a single (oversized) leaf
	// rather than loop.
	refuse := func(pts []geom.Point, perm []int32, lo, hi int32) int32 { return lo }
	ix, err := Construct(somePoints(50), 4, refuse)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Topo.Len() != 1 {
		t.Fatalf("%d nodes", ix.Topo.Len())
	}
}

func TestOutOfRangeSplitterMakesLeaf(t *testing.T) {
	wild := func(pts []geom.Point, perm []int32, lo, hi int32) int32 { return hi + 5 }
	ix, err := Construct(somePoints(20), 4, wild)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Topo.Len() != 1 {
		t.Fatalf("%d nodes", ix.Topo.Len())
	}
}

func TestMinMaxDistDelegation(t *testing.T) {
	a, err := Construct([]geom.Point{{0, 0, 0}, {1, 1, 1}}, 8, midSplit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct([]geom.Point{{4, 0, 0}, {5, 1, 1}}, 8, midSplit)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Topo.Root(), b.Topo.Root()
	if got := a.MinDist2(ra, b, rb); got != 9 {
		t.Fatalf("MinDist2 = %v", got)
	}
	if got := a.MaxDist2(ra, b, rb); got < 9 {
		t.Fatalf("MaxDist2 = %v below MinDist2", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Index {
		ix, err := Construct(somePoints(64), 4, midSplit)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}

	ix := fresh()
	ix.Start[ix.Topo.Root()] = 1
	if ix.Validate() == nil {
		t.Fatal("root range corruption not caught")
	}

	ix = fresh()
	ix.Boxes[0] = geom.EmptyBox()
	if ix.Validate() == nil {
		t.Fatal("box corruption not caught")
	}

	ix = fresh()
	ix.Perm[0] = ix.Perm[1]
	if ix.Validate() == nil {
		t.Fatal("perm corruption not caught")
	}

	ix = fresh()
	l := ix.Topo.Left(ix.Topo.Root())
	if l != tree.Nil {
		ix.End[l]--
		if ix.Validate() == nil {
			t.Fatal("child tiling corruption not caught")
		}
	}

	ix = fresh()
	ix.Perm = ix.Perm[:len(ix.Perm)-1]
	if ix.Validate() == nil {
		t.Fatal("perm length corruption not caught")
	}
}
